// libFuzzer harness for the program parser. The parser is the only
// component that consumes untrusted bytes (files on disk, snapshot
// round-trips), so it must never crash, hang, or read out of bounds on
// malformed input — only return a diagnostic.
//
// Build (clang required for the fuzzer runtime):
//   cmake -B build-fuzz -S . -DGQE_FUZZ=ON -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build-fuzz -j
//   ./build-fuzz/fuzz/fuzz_parser -max_total_time=30 fuzz/corpus

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "parser/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  gqe::ParseResult result = gqe::ParseProgram(text);
  if (!result.ok) {
    // Diagnostics must be printable and positioned: a raw NUL or a
    // nonsensical position in the message is a bug even when the parse
    // correctly fails.
    if (result.error.find('\0') != std::string::npos) __builtin_trap();
    if (result.error_line < 1) __builtin_trap();
    if (result.error_column < 0) __builtin_trap();
  } else {
    // Accepted programs have internally consistent components; touching
    // them shakes out lazily-triggered UB under ASan/UBSan.
    (void)result.program.database.ToString();
    for (const auto& tgd : result.program.tgds) (void)tgd.IsGuarded();
    for (const auto& [name, ucq] : result.program.queries) {
      (void)name;
      (void)ucq.num_disjuncts();
    }
  }
  return 0;
}
