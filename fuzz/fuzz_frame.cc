// libFuzzer harness for the network frame codec (net/frame.h). Two
// properties under arbitrary byte streams and arbitrary read
// fragmentation:
//
//  1. The decoder never crashes, never allocates past its payload cap,
//     and once failed stays failed (framing errors are not recoverable).
//  2. Round-trip fidelity: frames the decoder *does* produce from a
//     stream that begins with valid encodings are bit-identical to what
//     was encoded — the decoder must not fabricate or alter a frame.
//
// The input drives both at once: the first byte picks a fragmentation
// pattern, the rest is fed to a decoder twice — once raw (property 1),
// once re-encoded as a payload inside a valid frame and split at
// fuzzer-chosen points (property 2).
//
// Build (clang required for the fuzzer runtime):
//   cmake -B build-fuzz -S . -DGQE_FUZZ=ON -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build-fuzz -j
//   ./build-fuzz/fuzz/fuzz_frame -max_total_time=30 fuzz/corpus-frame

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/frame.h"

namespace {

// Small cap so oversized-length handling is hit constantly and a cap
// violation would be a fast, loud allocation failure under ASan.
constexpr size_t kFuzzPayloadCap = 4096;

void FeedFragmented(gqe::FrameDecoder* decoder, std::string_view bytes,
                    size_t step) {
  if (step == 0) step = 1;
  for (size_t off = 0; off < bytes.size(); off += step) {
    const size_t n = bytes.size() - off < step ? bytes.size() - off : step;
    decoder->Feed(bytes.substr(off, n));
  }
}

void DrainAll(gqe::FrameDecoder* decoder) {
  gqe::Frame frame;
  std::string error;
  bool failed_seen = false;
  for (int i = 0; i < 1 << 16; ++i) {
    switch (decoder->Next(&frame, &error)) {
      case gqe::FrameDecoder::Result::kFrame:
        // A failed decoder must never produce another frame.
        if (failed_seen) __builtin_trap();
        if (frame.payload.size() > kFuzzPayloadCap) __builtin_trap();
        continue;
      case gqe::FrameDecoder::Result::kError:
        if (error.empty()) __builtin_trap();
        if (!decoder->failed()) __builtin_trap();
        failed_seen = true;
        continue;  // must stay kError forever; loop a few more times
      case gqe::FrameDecoder::Result::kNeedMore:
        if (failed_seen) __builtin_trap();  // sticky failure violated
        return;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 2) return 0;
  const size_t step = static_cast<size_t>(data[0]) + 1;  // 1..256
  const std::string_view bytes(reinterpret_cast<const char*>(data + 1),
                               size - 1);

  // Property 1: arbitrary bytes, arbitrary fragmentation.
  {
    gqe::FrameDecoder decoder(kFuzzPayloadCap);
    FeedFragmented(&decoder, bytes, step);
    DrainAll(&decoder);
  }

  // Property 2: the same bytes wrapped as payloads of valid frames must
  // decode back bit-identically no matter how the stream is split.
  {
    const std::string_view payload = bytes.substr(
        0, bytes.size() < kFuzzPayloadCap ? bytes.size() : kFuzzPayloadCap);
    const gqe::FrameType types[] = {gqe::FrameType::kRequest,
                                    gqe::FrameType::kResult,
                                    gqe::FrameType::kPing};
    std::string stream;
    for (gqe::FrameType type : types) {
      stream += gqe::EncodeFrame(type, payload);
    }
    gqe::FrameDecoder decoder(kFuzzPayloadCap);
    FeedFragmented(&decoder, stream, step);
    gqe::Frame frame;
    std::string error;
    for (gqe::FrameType type : types) {
      if (decoder.Next(&frame, &error) != gqe::FrameDecoder::Result::kFrame) {
        __builtin_trap();  // a valid stream must always decode
      }
      if (frame.type != type || frame.payload != payload) __builtin_trap();
    }
    if (decoder.Next(&frame, &error) != gqe::FrameDecoder::Result::kNeedMore) {
      __builtin_trap();  // no trailing bytes were fed
    }
    if (decoder.mid_frame()) __builtin_trap();
  }
  return 0;
}
