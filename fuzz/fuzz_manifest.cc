// libFuzzer harness for the serve manifest parser (serve/request.h).
// The manifest is the daemon's other untrusted-bytes surface besides the
// program parser: operator-written files with per-line key=value fields,
// budgets, rlimits and fault pins. Malformed input must produce a
// positioned diagnostic — never a crash, hang, or out-of-bounds read.
//
// Build (clang required for the fuzzer runtime):
//   cmake -B build-fuzz -S . -DGQE_FUZZ=ON -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build-fuzz -j
//   ./build-fuzz/fuzz/fuzz_manifest -max_total_time=30 fuzz/corpus-manifest

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "serve/request.h"
#include "serve/service.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);

  gqe::Manifest manifest;
  std::string error;
  if (!gqe::ParseManifest(text, "/fuzz/base", &manifest, &error)) {
    // A rejection must carry a printable diagnostic.
    if (error.empty()) __builtin_trap();
    if (error.find('\0') != std::string::npos) __builtin_trap();
  } else {
    // Accepted manifests have internally consistent requests; touch the
    // fields workers consume to shake out lazily-triggered UB.
    for (const auto& request : manifest.requests) {
      if (request.id.empty()) __builtin_trap();
      (void)request.program_path.size();
      (void)request.budget.max_facts;
      (void)request.fault.at_checkpoint;
    }
  }

  // The chaos spec shares the manifest's hand-written key=value idiom —
  // fuzz it from the same bytes (first line only, cheap).
  gqe::ChaosConfig chaos;
  std::string_view first_line = text.substr(0, text.find('\n'));
  std::string spec_error;
  if (!gqe::ParseChaosSpec(first_line, &chaos, &spec_error)) {
    if (spec_error.find('\0') != std::string::npos) __builtin_trap();
  }
  return 0;
}
