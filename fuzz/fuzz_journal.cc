// libFuzzer harness for the write-ahead journal codec (serve/journal.h).
// Two properties under arbitrary byte streams:
//
//  1. Segment decoding never crashes and never lies about its valid
//     prefix: DecodeJournalSegment(bytes) returns a length `kept` such
//     that re-decoding bytes[0,kept) consumes it completely, without
//     error, into the same records — what recovery keeps is stable, not
//     an artifact of where the damage happened to sit. (Byte-identity of
//     a re-encoding is deliberately NOT claimed here: the envelope
//     version field accepts older versions and re-encodes as the current
//     one.) Folding the decoded records (ApplyJournalRecords) is total:
//     any record sequence, orphans and duplicates included, folds
//     without crashing.
//
//  2. Round-trip fidelity: records built from fuzzer-chosen field bytes
//     encode and decode back identically, and truncating the encoded
//     stream at a fuzzer-chosen cut yields exactly the whole records
//     before the cut (the every-byte-boundary torn-tail property the
//     unit tests check exhaustively, here under arbitrary field data).
//
// Build (clang required for the fuzzer runtime):
//   cmake -B build-fuzz -S . -DGQE_FUZZ=ON -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build-fuzz -j
//   ./build-fuzz/fuzz/fuzz_journal -max_total_time=30 fuzz/corpus-journal

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/journal.h"

namespace {

std::string Reencode(const std::vector<gqe::JournalRecord>& records) {
  std::string bytes;
  for (const gqe::JournalRecord& r : records) {
    bytes += gqe::EncodeJournalRecord(r);
  }
  return bytes;
}

bool Equal(const gqe::JournalRecord& a, const gqe::JournalRecord& b) {
  return a.type == b.type && a.id == b.id &&
         a.request_line == b.request_line && a.attempt == b.attempt &&
         a.degraded == b.degraded && a.cause == b.cause &&
         a.state == b.state && a.result_line == b.result_line &&
         a.worker_result == b.worker_result;
}

bool Equal(const std::vector<gqe::JournalRecord>& a,
           const std::vector<gqe::JournalRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!Equal(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 4) return 0;
  const uint8_t knob0 = data[0];
  const uint8_t knob1 = data[1];
  const std::string_view bytes(reinterpret_cast<const char*>(data + 2),
                               size - 2);

  // Property 1: arbitrary bytes. The kept prefix must re-encode
  // bit-identically, and errors must be named whenever bytes remain.
  {
    std::vector<gqe::JournalRecord> records;
    std::string error;
    const size_t kept = gqe::DecodeJournalSegment(bytes, &records, &error);
    if (kept > bytes.size()) __builtin_trap();
    if (kept < bytes.size() && error.empty()) __builtin_trap();

    std::vector<gqe::JournalRecord> again;
    std::string error2;
    if (gqe::DecodeJournalSegment(bytes.substr(0, kept), &again, &error2) !=
        kept) {
      __builtin_trap();  // the kept prefix must re-decode completely
    }
    if (!error2.empty() || !Equal(again, records)) __builtin_trap();

    gqe::JournalRecovery recovery;
    gqe::ApplyJournalRecords(records, &recovery);
    if (recovery.entries.size() > records.size()) __builtin_trap();
  }

  // Property 2: fuzzer-built records round-trip whole, and a truncated
  // stream keeps exactly the records whose bytes arrived in full.
  {
    gqe::JournalRecord admitted;
    admitted.type = gqe::JournalRecordType::kAdmitted;
    admitted.id = std::string(bytes.substr(0, bytes.size() / 3));
    admitted.request_line = std::string(bytes.substr(bytes.size() / 3));

    gqe::JournalRecord attempt;
    attempt.type = gqe::JournalRecordType::kAttempt;
    attempt.id = admitted.id;
    attempt.attempt = knob0;
    attempt.degraded = (knob1 & 1) != 0;
    attempt.cause = admitted.id;

    gqe::JournalRecord result;
    result.type = gqe::JournalRecordType::kResult;
    result.id = admitted.id;
    result.state = static_cast<gqe::TerminalState>(knob1 % 4);
    result.result_line = admitted.request_line;
    result.worker_result = std::string(bytes);

    const std::vector<gqe::JournalRecord> in = {admitted, attempt, result};
    const std::string stream = Reencode(in);

    std::vector<gqe::JournalRecord> out;
    std::string error;
    if (gqe::DecodeJournalSegment(stream, &out, &error) != stream.size()) {
      __builtin_trap();  // a clean stream must decode completely
    }
    if (!error.empty() || out.size() != in.size()) __builtin_trap();
    if (Reencode(out) != stream) __builtin_trap();
    if (out[2].result_line != result.result_line ||
        out[2].worker_result != result.worker_result ||
        out[1].attempt != attempt.attempt) {
      __builtin_trap();
    }

    const size_t cut =
        (static_cast<size_t>(knob0) << 8 | knob1) % (stream.size() + 1);
    std::vector<gqe::JournalRecord> torn;
    const size_t kept = gqe::DecodeJournalSegment(
        std::string_view(stream).substr(0, cut), &torn, &error);
    if (kept > cut) __builtin_trap();
    if (Reencode(torn) != stream.substr(0, kept)) __builtin_trap();
    if (kept != cut && error.empty()) __builtin_trap();
  }
  return 0;
}
