// libFuzzer harness for the open-addressing FlatSet/FlatMap
// (base/flat_table.h). The fuzzer input is an op-sequence program:
// each 3-byte record is (opcode, key16) and drives the flat table and a
// shadow std::unordered_map in lockstep. Any divergence — membership,
// size, stored value, or iteration covering a different key multiset —
// traps. Keys are folded into 16 bits so erase actually hits and the
// tables churn through tombstone-heavy states; an occasional clear and
// reserve mixes in the remaining mutating entry points.
//
// Build (clang required for the fuzzer runtime):
//   cmake -B build-fuzz -S . -DGQE_FUZZ=ON -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build-fuzz -j
//   ./build-fuzz/fuzz/fuzz_flat_table -max_total_time=30 fuzz/corpus-flat-table

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "base/flat_table.h"

namespace {

// Degrade the hash on demand: low opcode bit 0x40 selects a colliding
// hash table so probe runs and tombstone clusters get long.
struct FoldedHash {
  size_t operator()(uint64_t key) const { return key & 0x3f; }
};

template <typename Map>
void CheckAgainstShadow(const Map& map,
                        const std::unordered_map<uint64_t, uint64_t>& shadow) {
  if (map.size() != shadow.size()) __builtin_trap();
  size_t seen = 0;
  for (const auto& [key, value] : map) {
    auto it = shadow.find(key);
    if (it == shadow.end()) __builtin_trap();
    if (it->second != value) __builtin_trap();
    ++seen;
  }
  if (seen != shadow.size()) __builtin_trap();
}

template <typename Map>
void RunProgram(const uint8_t* data, size_t size) {
  Map map;
  std::unordered_map<uint64_t, uint64_t> shadow;
  uint64_t tick = 0;
  for (size_t i = 0; i + 3 <= size; i += 3) {
    const uint8_t op = data[i];
    const uint64_t key =
        static_cast<uint64_t>(data[i + 1]) << 8 | data[i + 2];
    switch (op & 0x7) {
      case 0:
      case 1: {  // upsert (biased: tables must actually grow)
        const uint64_t value = ++tick;
        map[key] = value;
        shadow[key] = value;
        break;
      }
      case 2: {  // insert-if-absent
        const uint64_t value = ++tick;
        auto [slot, fresh] = map.try_emplace(key, value);
        bool shadow_fresh = shadow.try_emplace(key, value).second;
        if (fresh != shadow_fresh) __builtin_trap();
        if (slot->second != shadow.at(key)) __builtin_trap();
        break;
      }
      case 3: {  // erase
        if (map.erase(key) != (shadow.erase(key) == 1)) __builtin_trap();
        break;
      }
      case 4: {  // point lookup
        const uint64_t* value = map.value(key);
        auto it = shadow.find(key);
        if ((value != nullptr) != (it != shadow.end())) __builtin_trap();
        if (value != nullptr && *value != it->second) __builtin_trap();
        break;
      }
      case 5: {  // membership
        if (map.contains(key) != (shadow.count(key) == 1)) __builtin_trap();
        break;
      }
      case 6: {  // reserve: must be a pure capacity hint
        map.reserve(key & 0x3ff);
        break;
      }
      case 7: {  // occasional full reset
        if ((op & 0x38) == 0) {
          map.clear();
          shadow.clear();
        }
        break;
      }
    }
    if (map.size() != shadow.size()) __builtin_trap();
  }
  CheckAgainstShadow(map, shadow);

  // Copying must preserve contents (and iteration must still cover the
  // same key multiset afterwards).
  Map copy(map);
  CheckAgainstShadow(copy, shadow);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 1 << 16) return 0;  // keep per-input work bounded
  const bool awful_hash = size > 0 && (data[0] & 0x40) != 0;
  if (awful_hash) {
    RunProgram<gqe::FlatMap<uint64_t, uint64_t, FoldedHash>>(data, size);
  } else {
    RunProgram<gqe::FlatMap<uint64_t, uint64_t>>(data, size);
  }
  return 0;
}
