#include <gtest/gtest.h>

#include "grohe/clique.h"
#include "graph/treewidth.h"
#include "query/acyclic.h"
#include "query/core.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

TEST(GeneratorTest, RandomGraphDeterministic) {
  Graph g1 = RandomGraph(10, 40, 7);
  Graph g2 = RandomGraph(10, 40, 7);
  EXPECT_EQ(g1.Edges(), g2.Edges());
  Graph g3 = RandomGraph(10, 40, 8);
  EXPECT_NE(g1.Edges(), g3.Edges());
}

TEST(GeneratorTest, PlantedCliqueExists) {
  for (int seed = 0; seed < 5; ++seed) {
    Graph g = PlantedCliqueGraph(12, 10, 4, seed);
    EXPECT_TRUE(HasClique(g, 4)) << seed;
  }
}

TEST(GeneratorTest, RandomDatabaseRespectsBounds) {
  Instance db = RandomBinaryDatabase("wge", 20, 50, 3, "wg");
  EXPECT_LE(db.size(), 50u);  // duplicates collapse
  EXPECT_LE(db.ActiveDomain().size(), 20u);
  for (const Atom& atom : db.atoms()) {
    EXPECT_EQ(atom.arity(), 2);
  }
}

TEST(GeneratorTest, GridDatabaseShape) {
  Instance db = GridDatabase("wgh", "wgv", 3, 4);
  EXPECT_EQ(db.size(), static_cast<size_t>(3 * 3 + 2 * 4));
  EXPECT_EQ(db.ActiveDomain().size(), 12u);
}

TEST(GeneratorTest, QueryShapes) {
  CQ path = PathQuery("wqe", 5);
  EXPECT_EQ(path.atoms().size(), 5u);
  EXPECT_EQ(path.TreewidthOfExistentialPart(), 1);
  EXPECT_TRUE(IsAcyclicCq(path));

  CQ grid = GridQuery("wqh", "wqv", 3, 3);
  EXPECT_EQ(grid.AllVariables().size(), 9u);
  EXPECT_EQ(grid.TreewidthOfExistentialPart(), 3);
  EXPECT_TRUE(IsCore(grid));

  CQ clique = CliqueQuery("wqe", 4);
  EXPECT_EQ(clique.AllVariables().size(), 4u);
  EXPECT_EQ(clique.TreewidthOfExistentialPart(), 3);
  EXPECT_FALSE(IsAcyclicCq(clique));
}

TEST(GeneratorTest, UnaryChainIsLinearGuardedFull) {
  TgdSet chain = UnaryChainOntology("wgc", 5);
  EXPECT_EQ(chain.size(), 5u);
  EXPECT_TRUE(IsLinearSet(chain));
  EXPECT_TRUE(IsGuardedSet(chain));
  EXPECT_TRUE(IsFullSet(chain));
  EXPECT_TRUE(IsWeaklyAcyclic(chain));
}

TEST(GeneratorTest, InclusionDependenciesAreLinear) {
  TgdSet tgds = RandomInclusionDependencies("wgi", 4, 8, 30, 5);
  EXPECT_EQ(tgds.size(), 8u);
  EXPECT_TRUE(IsLinearSet(tgds));
  EXPECT_TRUE(IsGuardedSet(tgds));
}

TEST(ReportTest, TableFormatsAndPrints) {
  ReportTable table({"a", "bb"});
  table.AddRow({ReportTable::Cell(1), ReportTable::Cell(2.5)});
  table.AddRow({ReportTable::Cell(true), ReportTable::Cell(size_t{42})});
  // Printing must not crash; cells format per type.
  EXPECT_EQ(ReportTable::Cell(2.5), "2.500");
  EXPECT_EQ(ReportTable::Cell(true), "yes");
  EXPECT_EQ(ReportTable::Cell(size_t{42}), "42");
  table.Print("report test");
}

TEST(ReportTest, StopwatchMovesForward) {
  Stopwatch watch;
  volatile int sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(watch.ElapsedMs(), 0.0);
  watch.Reset();
  EXPECT_GE(watch.ElapsedMs(), 0.0);
}

}  // namespace
}  // namespace gqe
