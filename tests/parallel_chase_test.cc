// Differential-testing oracle for the parallel engines: at every thread
// count the chase must produce a *bit-identical* result (same facts in
// the same insertion order, same labelled-null ids, same levels map, same
// triggers_fired) as the sequential threads=1 run, and the parallel
// homomorphism engine must enumerate the same result sets. Randomized
// over ~50 generated TGD sets / databases / queries.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "base/thread_pool.h"
#include "chase/chase.h"
#include "query/homomorphism.h"
#include "tgd/tgd.h"
#include "verify/verifier.h"
#include "verify/witness.h"
#include "workload/generators.h"

namespace gqe {
namespace {

// ---------------------------------------------------------------------
// Random weakly-acyclic workloads (reusing the workload generators plus
// a multi-atom-body variant so joins are exercised, not just linear
// rules).
// ---------------------------------------------------------------------

TgdSet RandomJoinTgds(const std::string& prefix, int num_preds, int num_tgds,
                      uint64_t seed) {
  WorkloadRng rng(seed);
  Term x = Term::Variable("X");
  Term y = Term::Variable("Y");
  Term z = Term::Variable("Z");
  Term w = Term::Variable("W");
  auto pred = [&prefix](uint32_t i) { return prefix + std::to_string(i); };
  TgdSet tgds;
  for (int i = 0; i < num_tgds; ++i) {
    std::vector<Atom> body;
    body.push_back(Atom::Make(pred(rng.Below(num_preds)), {x, y}));
    if (rng.Chance(50)) {
      // Join a second body atom through Y.
      body.push_back(Atom::Make(pred(rng.Below(num_preds)), {y, z}));
    }
    std::vector<Atom> head;
    const bool join = body.size() == 2;
    Term tail = join ? z : y;
    if (rng.Chance(30)) {
      head.push_back(Atom::Make(pred(rng.Below(num_preds)), {x, w}));  // ∃W
    } else if (rng.Chance(50)) {
      head.push_back(Atom::Make(pred(rng.Below(num_preds)), {tail, x}));
    } else {
      head.push_back(Atom::Make(pred(rng.Below(num_preds)), {x, tail}));
    }
    if (rng.Chance(30)) {
      head.push_back(Atom::Make(pred(rng.Below(num_preds)), {x, x}));
    }
    tgds.push_back(Tgd(std::move(body), std::move(head)));
  }
  return tgds;
}

struct RandomWorkload {
  TgdSet sigma;
  Instance db;
};

RandomWorkload MakeWorkload(int seed) {
  const std::string prefix = "pdt" + std::to_string(seed % 7) + "p";
  WorkloadRng rng(seed * 31 + 5);
  RandomWorkload w;
  // Alternate between the linear inclusion-dependency generator and the
  // join generator; prefer weakly-acyclic draws (bounded retries) so most
  // runs reach a true fixpoint, but keep non-terminating draws too — the
  // budget-truncated chase must also be deterministic.
  for (int attempt = 0; attempt < 8; ++attempt) {
    uint64_t s = static_cast<uint64_t>(seed) * 131 + attempt;
    w.sigma = (seed % 2 == 0)
                  ? RandomInclusionDependencies(prefix, 4, 5,
                                                /*existential=*/35, s)
                  : RandomJoinTgds(prefix, 4, 4, s);
    if (IsObliviousChaseTerminating(w.sigma)) break;
  }
  for (int p = 0; p < 2; ++p) {
    w.db.InsertAll(RandomBinaryDatabase(prefix + std::to_string(p), 6,
                                        5 + rng.Below(6), seed * 13 + p,
                                        "pd" + std::to_string(seed % 5)));
  }
  return w;
}

ChaseResult RunAt(const RandomWorkload& w, int threads, uint32_t null_base) {
  Term::SetNextNullId(null_base);
  ChaseOptions options;
  options.threads = threads;
  options.budget.max_facts = 1200;  // caps the (rare) non-terminating draws
  return Chase(w.db, w.sigma, options);
}

class ParallelChaseDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ParallelChaseDifferential, BitIdenticalAcrossThreadCounts) {
  const int seed = GetParam();
  RandomWorkload w = MakeWorkload(seed);
  const uint32_t null_base = Term::NextNullId();
  ChaseResult reference = RunAt(w, 1, null_base);
  ASSERT_LE(reference.instance.size(), 1200u);
  for (int threads : {2, 4, 8}) {
    ChaseResult parallel = RunAt(w, threads, null_base);
    EXPECT_EQ(parallel.threads_used, static_cast<size_t>(threads));
    // Bit-identical instance: same facts in the same insertion order,
    // with the same labelled-null ids.
    ASSERT_EQ(parallel.instance.size(), reference.instance.size())
        << "seed " << seed << " threads " << threads;
    for (size_t i = 0; i < reference.instance.size(); ++i) {
      ASSERT_EQ(parallel.instance.atom(i), reference.instance.atom(i))
          << "seed " << seed << " threads " << threads << " fact " << i;
    }
    EXPECT_EQ(parallel.levels, reference.levels)
        << "seed " << seed << " threads " << threads;
    EXPECT_EQ(parallel.triggers_fired, reference.triggers_fired)
        << "seed " << seed << " threads " << threads;
    EXPECT_EQ(parallel.complete, reference.complete)
        << "seed " << seed << " threads " << threads;
    EXPECT_EQ(parallel.max_level_built, reference.max_level_built)
        << "seed " << seed << " threads " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelChaseDifferential,
                         ::testing::Range(0, 50));

// ---------------------------------------------------------------------
// Witness-certificate oracle: the PR-5 derivation log is part of the
// determinism contract. At every thread count the collected witness must
// compare equal field-for-field (same steps, same final_facts, same
// instance_crc), the InstanceTextCrc of the result must match the
// sequential run, and the independent verifier must accept the log —
// this is the regression lock that pins the data-layout overhaul to the
// pre-overhaul observable behavior.
// ---------------------------------------------------------------------

class ParallelChaseWitnessOracle : public ::testing::TestWithParam<int> {};

TEST_P(ParallelChaseWitnessOracle, CertificatesIdenticalAcrossThreads) {
  const int seed = GetParam();
  RandomWorkload w = MakeWorkload(seed);
  const uint32_t null_base = Term::NextNullId();

  auto run = [&](int threads) {
    Term::SetNextNullId(null_base);
    ChaseOptions options;
    options.threads = threads;
    options.budget.max_facts = 1200;
    options.collect_witness = true;
    return Chase(w.db, w.sigma, options);
  };

  ChaseResult reference = run(1);
  ASSERT_TRUE(reference.derivation.collected) << "seed " << seed;
  const uint32_t reference_crc = InstanceTextCrc(reference.instance);

  // The witness the sequential engine emits is self-consistent: the
  // independent checker replays it from the database alone.
  if (reference.derivation.replay_exact) {
    Instance replayed;
    VerifyResult check =
        VerifyDerivation(w.db, w.sigma, reference.derivation, &replayed);
    ASSERT_TRUE(check.ok())
        << "seed " << seed << ": " << VerifyCodeName(check.code) << " — "
        << check.reason;
    EXPECT_EQ(replayed.atoms(), reference.instance.atoms()) << "seed " << seed;
  }

  for (int threads : {2, 8}) {
    ChaseResult parallel = run(threads);
    EXPECT_EQ(parallel.derivation, reference.derivation)
        << "seed " << seed << " threads " << threads;
    EXPECT_EQ(InstanceTextCrc(parallel.instance), reference_crc)
        << "seed " << seed << " threads " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelChaseWitnessOracle,
                         ::testing::Range(0, 20));

// ---------------------------------------------------------------------
// Cooperative cancellation determinism: a fault injector trips
// kCancelled at the Nth governor checkpoint — typically mid-round — and
// because rounds are transactional (a round cut by a trip is discarded
// whole), the committed prefix must be bit-identical at every thread
// count, not just "some prefix".
// ---------------------------------------------------------------------

TEST(ParallelChaseCancellation, InjectedCancelCommitsIdenticalPrefixes) {
  // Diverging workload (never reaches a fixpoint) with enough parallel
  // branches and joins that rounds have many triggers.
  TgdSet sigma;
  Term x = Term::Variable("X");
  Term y = Term::Variable("Y");
  Term z = Term::Variable("Z");
  Term w = Term::Variable("W");
  sigma.push_back(Tgd({Atom::Make("pcc", {x, y}), Atom::Make("pcc", {y, z})},
                      {Atom::Make("pcc", {x, z})}));
  sigma.push_back(Tgd({Atom::Make("pcc", {x, y})},
                      {Atom::Make("pcc", {y, w})}));
  Instance db;
  for (int i = 0; i < 4; ++i) {
    db.Insert(Atom::Make("pcc",
                         {Term::Constant("pc" + std::to_string(i)),
                          Term::Constant("pc" + std::to_string(i + 1))}));
  }

  for (uint64_t at : {30u, 150u, 600u}) {
    const uint32_t null_base = Term::NextNullId();
    ChaseResult reference;
    bool have_reference = false;
    for (int threads : {1, 2, 8}) {
      Term::SetNextNullId(null_base);
      TestFaultInjector injector(Status::kCancelled, at);
      ExecutionBudget budget;
      budget.max_facts = 0;  // the injector is the only guard rail
      Governor governor(budget, &injector);
      ChaseOptions options;
      options.threads = threads;
      options.governor = &governor;
      ChaseResult result = Chase(db, sigma, options);
      EXPECT_EQ(result.outcome.status, Status::kCancelled)
          << "at " << at << " threads " << threads;
      EXPECT_FALSE(result.complete)
          << "at " << at << " threads " << threads;
      if (!have_reference) {
        reference = std::move(result);
        have_reference = true;
        continue;
      }
      ASSERT_EQ(result.instance.size(), reference.instance.size())
          << "at " << at << " threads " << threads;
      for (size_t i = 0; i < reference.instance.size(); ++i) {
        ASSERT_EQ(result.instance.atom(i), reference.instance.atom(i))
            << "at " << at << " threads " << threads << " fact " << i;
      }
      EXPECT_EQ(result.levels, reference.levels)
          << "at " << at << " threads " << threads;
      EXPECT_EQ(result.triggers_fired, reference.triggers_fired)
          << "at " << at << " threads " << threads;
    }
  }
}

// ---------------------------------------------------------------------
// Homomorphism engine: FindAll result sets agree (sorted) at every
// thread count; Exists and ForEach counts agree.
// ---------------------------------------------------------------------

using FlatSub = std::vector<std::pair<uint32_t, uint32_t>>;

FlatSub Flatten(const Substitution& sub) {
  FlatSub flat;
  flat.reserve(sub.size());
  for (const auto& [from, to] : sub.entries()) {
    flat.emplace_back(from.bits(), to.bits());
  }
  std::sort(flat.begin(), flat.end());
  return flat;
}

std::vector<FlatSub> SortedResults(const std::vector<Substitution>& subs) {
  std::vector<FlatSub> out;
  out.reserve(subs.size());
  for (const Substitution& sub : subs) out.push_back(Flatten(sub));
  std::sort(out.begin(), out.end());
  return out;
}

class ParallelHomDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ParallelHomDifferential, FindAllAgreesAcrossThreadCounts) {
  const int seed = GetParam();
  WorkloadRng rng(seed * 17 + 3);
  Instance db = RandomBinaryDatabase("phr", 8, 20 + rng.Below(20), seed, "ph");
  // Random CQ pattern: 2-4 atoms over 2-4 variables.
  const int num_vars = 2 + rng.Below(3);
  const int num_atoms = 2 + rng.Below(3);
  std::vector<Atom> pattern;
  for (int i = 0; i < num_atoms; ++i) {
    pattern.push_back(Atom::Make(
        "phr", {Term::Variable("phv" + std::to_string(rng.Below(num_vars))),
                Term::Variable("phv" + std::to_string(rng.Below(num_vars)))}));
  }
  HomomorphismSearch sequential(pattern, db);
  std::vector<Substitution> reference = sequential.FindAll();
  const std::vector<FlatSub> reference_sorted = SortedResults(reference);
  for (int threads : {2, 4, 8}) {
    HomOptions options;
    options.threads = threads;
    HomomorphismSearch parallel(pattern, db, options);
    std::vector<Substitution> results = parallel.FindAll();
    EXPECT_EQ(SortedResults(results), reference_sorted)
        << "seed " << seed << " threads " << threads;
    // The parallel shard order reproduces sequential enumeration order
    // exactly, not just as a set.
    ASSERT_EQ(results.size(), reference.size());
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(Flatten(results[i]), Flatten(reference[i])) << "position " << i;
    }
    EXPECT_EQ(parallel.Exists(), sequential.Exists())
        << "seed " << seed << " threads " << threads;
    size_t count = parallel.ForEach([](const Substitution&) { return true; });
    EXPECT_EQ(count, reference.size())
        << "seed " << seed << " threads " << threads;
    // Limited FindAll returns the same prefix.
    if (reference.size() > 1) {
      const size_t limit = reference.size() / 2;
      std::vector<Substitution> limited =
          HomomorphismSearch(pattern, db, options).FindAll(limit);
      ASSERT_EQ(limited.size(), limit);
      for (size_t i = 0; i < limit; ++i) {
        EXPECT_EQ(Flatten(limited[i]), Flatten(reference[i]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelHomDifferential,
                         ::testing::Range(0, 30));

// ---------------------------------------------------------------------
// ThreadPool basics.
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(4), 4u);
  EXPECT_EQ(ThreadPool::ResolveThreads(-3), 1u);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(hits.size(), [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads " << threads << " i " << i;
    }
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, [&](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

}  // namespace
}  // namespace gqe
