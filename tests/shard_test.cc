// Fault-tolerant sharded chase tests (shard/): the hash-partitioned
// multi-process saturation must be bit-identical to the in-process chase
// at every shard count — including N=1 vs N=8, across mid-run resharding
// N→M, under the full chaos matrix {SIGKILL, RLIMIT_AS OOM, SIGSTOP
// stall, corrupt exchange payload} injected at every round boundary, and
// across a kill + reshard + resume cycle through on-disk checkpoints.
// "Bit-identical" is checked at every layer: facts in insertion order,
// levels, labelled-null ids, derivation-witness certificates (re-verified
// by the independent checker), the instance text CRC and the durable
// checkpoint bytes themselves.

#include <gtest/gtest.h>

#include <errno.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "base/serialize.h"
#include "chase/chase.h"
#include "chase/checkpoint.h"
#include "parser/parser.h"
#include "shard/exchange.h"
#include "shard/shard_chase.h"
#include "verify/verifier.h"
#include "verify/witness.h"

namespace gqe {
namespace {

/// University-style existential rules (labelled nulls) plus transitive
/// closure (several rounds of joins): nulls, levels and multi-round
/// delta frontiers are all in play, so every discovery-order mistake a
/// shard merge could make would show up as a different instance.
TgdSet ShSigma() {
  return ParseTgds(R"(
    shgrad(X) -> shstud(X).
    shstud(X) -> shenr(X, U), shuni(U).
    shenr(X, U) -> shactive(X).
    she(X, Y), she(Y, Z) -> she(X, Z).
  )");
}

Instance ShDb() {
  Instance db;
  for (int i = 0; i < 4; ++i) {
    db.Insert(
        Atom::Make("shgrad", {Term::Constant("shs" + std::to_string(i))}));
  }
  for (int i = 0; i < 12; ++i) {
    db.Insert(Atom::Make("she",
                         {Term::Constant("sha" + std::to_string(i)),
                          Term::Constant("sha" + std::to_string(i + 1))}));
  }
  return db;
}

std::string FreshDir(const std::string& name) {
  // Pid-suffixed so concurrent invocations of this binary (stress runs,
  // parallel CI shards) never share checkpoint directories.
  std::string dir = ::testing::TempDir() + "gqe_shard_" +
                    std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectBitIdentical(const ChaseResult& got, const ChaseResult& want,
                        const std::string& label) {
  ASSERT_EQ(got.instance.size(), want.instance.size()) << label;
  for (size_t i = 0; i < want.instance.size(); ++i) {
    ASSERT_EQ(got.instance.atom(i), want.instance.atom(i))
        << label << " fact " << i;
  }
  EXPECT_EQ(got.levels, want.levels) << label;
  EXPECT_EQ(got.complete, want.complete) << label;
  EXPECT_EQ(got.max_level_built, want.max_level_built) << label;
  EXPECT_EQ(got.rounds_completed, want.rounds_completed) << label;
  EXPECT_EQ(InstanceTextCrc(got.instance), InstanceTextCrc(want.instance))
      << label;
}

/// The full certificate-level comparison: equal replayable derivation
/// logs, each independently re-verified.
void ExpectWitnessIdentical(const Instance& db, const TgdSet& sigma,
                            const ChaseResult& got, const ChaseResult& want,
                            const std::string& label) {
  ASSERT_TRUE(got.derivation.collected) << label;
  ASSERT_TRUE(want.derivation.collected) << label;
  EXPECT_TRUE(got.derivation == want.derivation) << label;
  const VerifyResult verdict = VerifyDerivation(db, sigma, got.derivation);
  EXPECT_TRUE(verdict.ok()) << label << ": " << verdict.reason;
}

/// Fast-failure shard options for tests: tight heartbeat + backoff so
/// injected stalls resolve in ~100ms instead of seconds.
ShardOptions FastShardOptions(int shards) {
  ShardOptions options;
  options.shards = shards;
  options.heartbeat_interval_ms = 3.0;
  // Short enough that injected SIGSTOP stalls resolve quickly, long
  // enough that a healthy worker on a loaded CI machine is not
  // spuriously declared dead. (Spurious timeouts would still converge
  // bit-identically via respawn — they just make counter assertions
  // noisy.)
  options.heartbeat_timeout_ms = 400.0;
  options.backoff_base_ms = 1.0;
  options.backoff_cap_ms = 8.0;
  return options;
}

ChaseOptions WitnessChaseOptions() {
  ChaseOptions options;
  options.collect_witness = true;
  return options;
}

/// No zombie children may survive a supervision cycle: after every
/// handle is reaped/destroyed, the process must have no waitable
/// children left at all.
void ExpectNoZombies(const std::string& label) {
  errno = 0;
  const pid_t r = ::waitpid(-1, nullptr, WNOHANG);
  EXPECT_TRUE(r == 0 || (r == -1 && errno == ECHILD))
      << label << ": leaked a child (waitpid returned " << r << ")";
  EXPECT_NE(r, -1 * (errno == EINTR)) << label;
}

TEST(ShardExchangeTest, CodecRoundTripsAndDetectsDamage) {
  ShardExchange exchange;
  exchange.shard_id = 3;
  exchange.num_shards = 8;
  exchange.attempt = 2;
  exchange.round = 41;
  exchange.delta_start = 100;
  exchange.delta_end = 130;
  exchange.instance_size = 130;
  ShardCandidateGroup group;
  group.unit_index = 7;
  group.fact_index = 105;
  Substitution sub;
  sub.Set(Term::Variable("X"), Term::Constant("shc1"));
  sub.Set(Term::Variable("Y"), Term::FreshNull());
  group.subs.push_back(sub);
  exchange.groups.push_back(group);

  const std::string bytes = EncodeShardExchange(exchange);
  // Deterministic encoding: equal exchanges → equal bytes.
  EXPECT_EQ(bytes, EncodeShardExchange(exchange));

  ShardExchange decoded;
  ASSERT_TRUE(DecodeShardExchange(bytes, &decoded).ok());
  EXPECT_EQ(decoded.shard_id, exchange.shard_id);
  EXPECT_EQ(decoded.num_shards, exchange.num_shards);
  EXPECT_EQ(decoded.attempt, exchange.attempt);
  EXPECT_EQ(decoded.round, exchange.round);
  EXPECT_EQ(decoded.delta_start, exchange.delta_start);
  EXPECT_EQ(decoded.delta_end, exchange.delta_end);
  EXPECT_EQ(decoded.instance_size, exchange.instance_size);
  ASSERT_EQ(decoded.groups.size(), 1u);
  EXPECT_EQ(decoded.groups[0].unit_index, 7u);
  EXPECT_EQ(decoded.groups[0].fact_index, 105u);
  ASSERT_EQ(decoded.groups[0].subs.size(), 1u);
  EXPECT_TRUE(decoded.groups[0].subs[0].SameMapping(sub));

  // Every single-bit flip anywhere in the message must be detected by
  // the envelope (CRC or header checks) — this is the property the
  // corrupt-exchange fault path relies on.
  for (size_t i = 0; i < bytes.size(); i += 7) {
    std::string flipped = bytes;
    flipped[i] ^= 0x10;
    ShardExchange sink;
    EXPECT_FALSE(DecodeShardExchange(flipped, &sink).ok())
        << "flip at byte " << i;
  }
  // Truncations too.
  for (size_t keep : {size_t{0}, size_t{5}, bytes.size() / 2,
                      bytes.size() - 1}) {
    ShardExchange sink;
    EXPECT_FALSE(DecodeShardExchange(bytes.substr(0, keep), &sink).ok())
        << "truncated to " << keep;
  }
}

TEST(ShardChaseTest, OwnershipIsATotalDeterministicPartition) {
  Instance db = ShDb();
  for (uint32_t n : {1u, 2u, 8u}) {
    for (size_t f = 0; f < db.size(); ++f) {
      const uint32_t owner = ShardOfFact(db, f, n);
      EXPECT_LT(owner, n);
      EXPECT_EQ(owner, ShardOfFact(db, f, n));
    }
    for (size_t t = 0; t < 4; ++t) {
      EXPECT_LT(ShardOfFullPass(t, n), n);
    }
  }
}

TEST(ShardChaseTest, AnyShardCountIsBitIdenticalToInProcessChase) {
  Instance db = ShDb();
  TgdSet sigma = ShSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseResult reference = Chase(db, sigma, WitnessChaseOptions());
  ASSERT_TRUE(reference.complete);
  ASSERT_GE(reference.rounds_completed, 4u);

  for (int shards : {1, 2, 3, 8}) {
    const std::string label = "shards=" + std::to_string(shards);
    Term::SetNextNullId(null_base);
    ShardStats stats;
    ChaseResult sharded = ShardedChase(db, sigma, WitnessChaseOptions(),
                                       FastShardOptions(shards), &stats);
    ASSERT_TRUE(sharded.complete) << label;
    ExpectBitIdentical(sharded, reference, label);
    ExpectWitnessIdentical(db, sigma, sharded, reference, label);
    EXPECT_EQ(stats.max_shards_used, shards) << label;
    EXPECT_GE(stats.workers_spawned, static_cast<size_t>(shards)) << label;
    // No corrupt exchanges without injection; respawns are normally 0
    // but a loaded machine may trip spurious heartbeat timeouts, which
    // must recover bit-identically rather than fail — so they are not
    // asserted to be absent.
    EXPECT_EQ(stats.corrupt_exchanges, 0u) << label;
  }
  ExpectNoZombies("shard-count sweep");
  Term::SetNextNullId(null_base);
}

TEST(ShardChaseTest, MidRunReshardIsBitIdentical) {
  Instance db = ShDb();
  TgdSet sigma = ShSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseResult reference = Chase(db, sigma, WitnessChaseOptions());
  ASSERT_TRUE(reference.complete);

  struct Reshard {
    int from;
    int to;
    int64_t at;
  };
  for (const Reshard& plan : {Reshard{2, 5, 2}, Reshard{8, 3, 1},
                              Reshard{1, 8, 3}}) {
    const std::string label = "reshard " + std::to_string(plan.from) + "->" +
                              std::to_string(plan.to) + "@" +
                              std::to_string(plan.at);
    Term::SetNextNullId(null_base);
    ShardOptions options = FastShardOptions(plan.from);
    options.reshard_at_round = plan.at;
    options.reshard_to = plan.to;
    ShardStats stats;
    ChaseResult sharded =
        ShardedChase(db, sigma, WitnessChaseOptions(), options, &stats);
    ASSERT_TRUE(sharded.complete) << label;
    ExpectBitIdentical(sharded, reference, label);
    ExpectWitnessIdentical(db, sigma, sharded, reference, label);
    EXPECT_EQ(stats.max_shards_used, std::max(plan.from, plan.to)) << label;
  }
  Term::SetNextNullId(null_base);
}

/// The acceptance-criteria chaos matrix: every fault kind at every round
/// boundary, for shard counts {2, 8} and a mid-run reshard layout, each
/// run diffed against the fault-free single-process reference — result,
/// witness certificates and durable checkpoint bytes all bit-identical.
TEST(ShardChaseTest, ChaosMatrixAtEveryRoundBoundaryIsBitIdentical) {
  Instance db = ShDb();
  TgdSet sigma = ShSigma();
  const uint32_t null_base = Term::NextNullId();

  // Fault-free single-process reference, durable: its newest checkpoint
  // bytes are the golden durable state every chaos run must reproduce.
  const std::string ref_dir = FreshDir("chaos_ref");
  Term::SetNextNullId(null_base);
  ChaseResult reference =
      ResumeChase(ref_dir, db, sigma, WitnessChaseOptions());
  ASSERT_TRUE(reference.complete);
  const uint64_t rounds = reference.rounds_completed;
  ASSERT_GE(rounds, 4u);
  CheckpointDir ref_checkpoints(ref_dir);
  ASSERT_FALSE(ref_checkpoints.Generations().empty());
  std::string ref_bytes;
  ASSERT_TRUE(ReadFileBytes(ref_checkpoints.GenerationPath(
                                ref_checkpoints.Generations().back()),
                            &ref_bytes)
                  .ok());

  const ShardFault::Kind kinds[] = {
      ShardFault::Kind::kKill, ShardFault::Kind::kOom,
      ShardFault::Kind::kStall, ShardFault::Kind::kCorrupt};
  size_t runs = 0;
  for (int shards : {2, 8}) {
    for (ShardFault::Kind kind : kinds) {
      for (uint64_t round = 0; round <= rounds; ++round) {
        const std::string label = std::string("kind=") +
                                  ShardFaultKindName(kind) +
                                  " shards=" + std::to_string(shards) +
                                  " round=" + std::to_string(round);
        const std::string dir =
            FreshDir("chaos_" + std::to_string(shards) + "_" +
                     std::string(ShardFaultKindName(kind)) + "_" +
                     std::to_string(round));
        ShardOptions options = FastShardOptions(shards);
        ShardFault fault;
        fault.round = round;
        fault.shard = static_cast<uint32_t>(round % shards);
        fault.attempt = 1;
        fault.kind = kind;
        options.faults.push_back(fault);

        Term::SetNextNullId(null_base);
        ShardStats stats;
        ChaseResult chaotic = ResumeShardedChase(
            dir, db, sigma, WitnessChaseOptions(), options, nullptr, &stats);
        ASSERT_TRUE(chaotic.complete) << label;
        ExpectBitIdentical(chaotic, reference, label);
        ExpectWitnessIdentical(db, sigma, chaotic, reference, label);
        EXPECT_GE(stats.events.size(), 1u) << label;
        EXPECT_GE(stats.respawns + stats.inline_fallbacks, 1u) << label;
        if (kind == ShardFault::Kind::kCorrupt) {
          EXPECT_GE(stats.corrupt_exchanges, 1u) << label;
        }
        if (kind == ShardFault::Kind::kStall) {
          EXPECT_GE(stats.heartbeat_timeouts, 1u) << label;
        }

        // Durable state: the newest checkpoint written under chaos must
        // be byte-identical to the fault-free reference's.
        CheckpointDir checkpoints(dir);
        ASSERT_FALSE(checkpoints.Generations().empty()) << label;
        std::string chaos_bytes;
        ASSERT_TRUE(ReadFileBytes(checkpoints.GenerationPath(
                                      checkpoints.Generations().back()),
                                  &chaos_bytes)
                        .ok())
            << label;
        EXPECT_EQ(chaos_bytes, ref_bytes) << label;

        std::filesystem::remove_all(dir);
        ++runs;
      }
    }
  }
  // A mid-run reshard layout under a kill fault on both sides of the
  // switch.
  {
    const std::string label = "reshard chaos";
    ShardOptions options = FastShardOptions(2);
    options.reshard_at_round = 2;
    options.reshard_to = 8;
    options.faults.push_back({1, 0, 1, ShardFault::Kind::kKill});
    options.faults.push_back({3, 5, 1, ShardFault::Kind::kCorrupt});
    Term::SetNextNullId(null_base);
    ShardStats stats;
    ChaseResult chaotic = ShardedChase(db, sigma, WitnessChaseOptions(),
                                       options, &stats);
    ASSERT_TRUE(chaotic.complete) << label;
    ExpectBitIdentical(chaotic, reference, label);
    ExpectWitnessIdentical(db, sigma, chaotic, reference, label);
    EXPECT_GE(stats.respawns, 2u) << label;
  }
  EXPECT_GE(runs, 8 * (rounds + 1));
  ExpectNoZombies("chaos matrix");
  std::filesystem::remove_all(ref_dir);
  Term::SetNextNullId(null_base);
}

TEST(ShardChaseTest, RetryStormOnOneShardStillConverges) {
  Instance db = ShDb();
  TgdSet sigma = ShSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseResult reference = Chase(db, sigma, WitnessChaseOptions());

  // Two consecutive faults on the same shard + round: the second attempt
  // fails too, the third succeeds (max_attempts = 3).
  ShardOptions options = FastShardOptions(2);
  options.faults.push_back({1, 1, 1, ShardFault::Kind::kKill});
  options.faults.push_back({1, 1, 2, ShardFault::Kind::kCorrupt});
  Term::SetNextNullId(null_base);
  ShardStats stats;
  ChaseResult sharded =
      ShardedChase(db, sigma, WitnessChaseOptions(), options, &stats);
  ASSERT_TRUE(sharded.complete);
  ExpectBitIdentical(sharded, reference, "retry storm");
  EXPECT_GE(stats.respawns, 2u);
  EXPECT_GE(stats.backoff_wait_ms, 0.0);
  Term::SetNextNullId(null_base);
}

TEST(ShardChaseTest, ExhaustedRetriesDegradeToInlineFallback) {
  Instance db = ShDb();
  TgdSet sigma = ShSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseResult reference = Chase(db, sigma, WitnessChaseOptions());

  // Kill every attempt of shard 0 at round 1: the retry budget burns out
  // and the coordinator absorbs the slice inline — still bit-identical.
  ShardOptions options = FastShardOptions(2);
  options.max_attempts = 2;
  options.faults.push_back({1, 0, 1, ShardFault::Kind::kKill});
  options.faults.push_back({1, 0, 2, ShardFault::Kind::kKill});
  Term::SetNextNullId(null_base);
  ShardStats stats;
  ChaseResult sharded =
      ShardedChase(db, sigma, WitnessChaseOptions(), options, &stats);
  ASSERT_TRUE(sharded.complete);
  ExpectBitIdentical(sharded, reference, "inline fallback");
  ExpectWitnessIdentical(db, sigma, sharded, reference, "inline fallback");
  EXPECT_GE(stats.inline_fallbacks, 1u);
  Term::SetNextNullId(null_base);
}

TEST(ShardChaseTest, IrrecoverableShardStopsAtCommittedBoundaryAndResumes) {
  Instance db = ShDb();
  TgdSet sigma = ShSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseResult reference = Chase(db, sigma, WitnessChaseOptions());
  ASSERT_TRUE(reference.complete);

  // No fallback allowed: losing shard 1 of round 2 on every attempt is a
  // structured failure — Status::kShardLost, last committed boundary on
  // disk.
  const std::string dir = FreshDir("irrecoverable");
  ShardOptions doomed = FastShardOptions(4);
  doomed.inline_fallback = false;
  doomed.max_attempts = 2;
  doomed.faults.push_back({2, 1, 1, ShardFault::Kind::kKill});
  doomed.faults.push_back({2, 1, 2, ShardFault::Kind::kOom});
  Term::SetNextNullId(null_base);
  ShardStats stats;
  ChaseResult lost = ResumeShardedChase(dir, db, sigma, WitnessChaseOptions(),
                                        doomed, nullptr, &stats);
  EXPECT_EQ(lost.outcome.status, Status::kShardLost);
  EXPECT_FALSE(lost.complete);
  EXPECT_EQ(lost.rounds_completed, 2u);
  ExpectNoZombies("irrecoverable shard");

  // Recovery resumes from that boundary — under a different shard count —
  // and lands bit-identical to the uninterrupted run.
  Term::SetNextNullId(null_base + 4321);
  ResumeInfo info;
  ChaseResult resumed = ResumeShardedChase(dir, db, sigma,
                                           WitnessChaseOptions(),
                                           FastShardOptions(3), &info);
  EXPECT_TRUE(info.resumed);
  ASSERT_TRUE(resumed.complete);
  ExpectBitIdentical(resumed, reference, "resume after shard loss");
  ExpectWitnessIdentical(db, sigma, resumed, reference,
                         "resume after shard loss");

  std::filesystem::remove_all(dir);
  Term::SetNextNullId(null_base);
}

/// Satellite 3: chase to round k under N shards, restart under M shards
/// from the on-disk checkpoints, and require the durable CRC, checkpoint
/// bytes and witness certificates to be bit-identical to an
/// uninterrupted single-process run.
TEST(ShardChaseTest, ReshardAcrossRestartFromCheckpoints) {
  Instance db = ShDb();
  TgdSet sigma = ShSigma();
  const uint32_t null_base = Term::NextNullId();

  // Uninterrupted single-process durable reference.
  const std::string ref_dir = FreshDir("restart_ref");
  Term::SetNextNullId(null_base);
  ChaseResult reference =
      ResumeChase(ref_dir, db, sigma, WitnessChaseOptions());
  ASSERT_TRUE(reference.complete);
  CheckpointDir ref_checkpoints(ref_dir);
  std::string ref_bytes;
  ASSERT_TRUE(ReadFileBytes(ref_checkpoints.GenerationPath(
                                ref_checkpoints.Generations().back()),
                            &ref_bytes)
                  .ok());

  for (const auto& [n, m] : {std::pair<int, int>{2, 3},
                             std::pair<int, int>{8, 2},
                             std::pair<int, int>{1, 8}}) {
    const std::string label =
        "restart " + std::to_string(n) + "->" + std::to_string(m);
    const std::string dir = FreshDir("restart_" + std::to_string(n) + "_" +
                                     std::to_string(m));

    // Phase 1: N shards, killed by a governor cancel partway through.
    // Only the checkpoints it wrote survive.
    Term::SetNextNullId(null_base);
    TestFaultInjector injector(Status::kCancelled, 40);
    ExecutionBudget budget;
    budget.max_facts = 0;
    Governor governor(budget, &injector);
    ChaseOptions killed_options = WitnessChaseOptions();
    killed_options.governor = &governor;
    ChaseResult killed = ResumeShardedChase(dir, db, sigma, killed_options,
                                            FastShardOptions(n));
    ASSERT_EQ(killed.outcome.status, Status::kCancelled) << label;
    ASSERT_FALSE(killed.complete) << label;

    // Phase 2: restart under M shards from the same directory.
    Term::SetNextNullId(null_base + 9999);
    ResumeInfo info;
    ChaseResult resumed = ResumeShardedChase(
        dir, db, sigma, WitnessChaseOptions(), FastShardOptions(m), &info);
    EXPECT_TRUE(info.resumed) << label;
    ASSERT_TRUE(resumed.complete) << label;
    ExpectBitIdentical(resumed, reference, label);
    ExpectWitnessIdentical(db, sigma, resumed, reference, label);

    // Durable bytes: the resharded run's newest checkpoint equals the
    // uninterrupted single-process run's, byte for byte.
    CheckpointDir checkpoints(dir);
    ASSERT_FALSE(checkpoints.Generations().empty()) << label;
    std::string resumed_bytes;
    ASSERT_TRUE(ReadFileBytes(checkpoints.GenerationPath(
                                  checkpoints.Generations().back()),
                              &resumed_bytes)
                    .ok())
        << label;
    EXPECT_EQ(resumed_bytes, ref_bytes) << label;

    std::filesystem::remove_all(dir);
  }
  std::filesystem::remove_all(ref_dir);
  ExpectNoZombies("reshard across restart");
  Term::SetNextNullId(null_base);
}

TEST(ShardChaseTest, GovernorDeadlineStopsShardedRunCleanly) {
  Instance db = ShDb();
  TgdSet sigma = ShSigma();
  const uint32_t null_base = Term::NextNullId();

  // A cancel token tripped before the run starts: the coordinator's
  // barrier must notice, put every worker down and return the committed
  // (empty-progress) prefix rather than hang.
  Term::SetNextNullId(null_base);
  ChaseOptions options;
  options.budget.cancel = CancelToken::Create();
  options.budget.cancel.RequestCancel();
  ShardStats stats;
  ChaseResult result =
      ShardedChase(db, sigma, options, FastShardOptions(4), &stats);
  EXPECT_EQ(result.outcome.status, Status::kCancelled);
  EXPECT_FALSE(result.complete);
  ExpectNoZombies("cancelled sharded run");
  Term::SetNextNullId(null_base);
}

}  // namespace
}  // namespace gqe
