#include <gtest/gtest.h>

#include "chase/chase.h"
#include "cqs/evaluation.h"
#include "fc/witness.h"
#include "guarded/omq_eval.h"
#include "omq/evaluation.h"
#include "parser/parser.h"
#include "query/evaluation.h"

namespace gqe {
namespace {


TEST(WitnessTest, TerminatingChaseIsExact) {
  TgdSet sigma = ParseTgds("wstud(X) -> wenr(X, U), wuni(U).");
  Instance db = ParseDatabase("wstud(amy).");
  FiniteWitness witness = BuildFiniteWitness(db, sigma, 3);
  EXPECT_TRUE(witness.is_model);
  EXPECT_TRUE(witness.from_terminating_chase);
  EXPECT_TRUE(Satisfies(witness.model, sigma));
  EXPECT_TRUE(db.SubsetOf(witness.model));
}

TEST(WitnessTest, InfiniteChaseFoldsToFiniteModel) {
  // person(X) -> parent(X,Y), person(Y): infinite chase, folded witness.
  TgdSet sigma = ParseTgds("fperson(X) -> fparent(X, Y), fperson(Y).");
  Instance db = ParseDatabase("fperson(eve2).");
  FiniteWitness witness = BuildFiniteWitness(db, sigma, 2);
  EXPECT_TRUE(witness.is_model);
  EXPECT_FALSE(witness.from_terminating_chase);
  EXPECT_GT(witness.folds, 0u);
  EXPECT_TRUE(Satisfies(witness.model, sigma));
  EXPECT_TRUE(db.SubsetOf(witness.model));
  EXPECT_LT(witness.model.size(), 100u);
}

TEST(WitnessTest, FoldedCyclesInvisibleToSmallQueries) {
  // The n-fold blocking must keep ancestor cycles longer than the query.
  TgdSet sigma = ParseTgds("gperson2(X) -> gparent2(X, Y), gperson2(Y).");
  Instance db = ParseDatabase("gperson2(adam2).");
  const int n = 3;
  FiniteWitness witness = BuildFiniteWitness(db, sigma, n);
  ASSERT_TRUE(witness.is_model);
  // Queries with <= n variables agree with the chase.
  UCQ q1 = ParseUcq("wq1(X) :- gparent2(X, Y).");
  UCQ q2 = ParseUcq("wq2() :- gparent2(X, Y), gparent2(Y, Z).");
  // A 2-cycle query: certainly false over the chase (it is a tree).
  UCQ q3 = ParseUcq("wq3() :- gparent2(X, Y), gparent2(Y, X).");
  EXPECT_TRUE(WitnessAgreesOnQuery(witness, db, sigma, q1));
  EXPECT_TRUE(WitnessAgreesOnQuery(witness, db, sigma, q2));
  EXPECT_TRUE(WitnessAgreesOnQuery(witness, db, sigma, q3));
}

TEST(WitnessTest, AgreementSweepOverBlockingDepths) {
  TgdSet sigma = ParseTgds(R"(
    hsub(X, Y) -> hrel(X, Y).
    hrel(X, Y) -> hrel2(Y, Z).
    hrel2(X, Y) -> hrel(X, Y).
  )");
  Instance db = ParseDatabase("hsub(h8, h9).");
  for (int n = 1; n <= 4; ++n) {
    FiniteWitness witness = BuildFiniteWitness(db, sigma, n);
    EXPECT_TRUE(witness.is_model) << "n=" << n;
    UCQ q = ParseUcq("hq8() :- hrel(X, Y), hrel2(Y, Z).");
    if (static_cast<int>(3) <= n + 1) {
      EXPECT_TRUE(WitnessAgreesOnQuery(witness, db, sigma, q)) << "n=" << n;
    }
  }
}

TEST(OmqToCqsTest, DstarSatisfiesSigma) {
  // Proposition 5.8 / Lemma 6.8 item (1).
  TgdSet sigma = ParseTgds("remp(X) -> rboss(X, Y), remp(Y).");
  Instance db = ParseDatabase("remp(rob).");
  Omq omq = Omq::WithFullDataSchema(sigma, ParseUcq("rq(X) :- rboss(X, Y)."));
  OmqToCqsReduction reduction = ReduceOmqToCqs(omq, db);
  EXPECT_TRUE(reduction.exact);
  EXPECT_TRUE(Satisfies(reduction.dstar, sigma));
}

TEST(OmqToCqsTest, ClosedWorldAnswersMatchCertainAnswers) {
  // Proposition 5.8 / Lemma 6.8 item (2): Q(D) = q(D*).
  TgdSet sigma = ParseTgds(R"(
    semp2(X) -> sworks2(X, D2), sdept2(D2).
    smgr2(X, Y) -> semp2(X), semp2(Y).
  )");
  Instance db = ParseDatabase("smgr2(sue, tom). sworks2(uma2, hr2).");
  UCQ q = ParseUcq("sq2(X) :- sworks2(X, D2).");
  Omq omq = Omq::WithFullDataSchema(sigma, q);
  OmqToCqsReduction reduction = ReduceOmqToCqs(omq, db);
  ASSERT_TRUE(reduction.exact);
  ASSERT_TRUE(Satisfies(reduction.dstar, sigma));

  auto certain = EvaluateOmq(omq, db).answers;
  // Closed-world evaluation of q over D*, restricted to dom(D).
  std::vector<std::vector<Term>> closed;
  for (auto& tuple : EvaluateUCQ(q, reduction.dstar)) {
    bool over_db = true;
    for (Term t : tuple) {
      if (!db.InDomain(t)) over_db = false;
    }
    if (over_db) closed.push_back(std::move(tuple));
  }
  EXPECT_EQ(closed, certain);
  EXPECT_EQ(closed.size(), 3u);  // sue, tom, uma2
}

TEST(OmqToCqsTest, JoinQueriesAcrossWitnesses) {
  // A query joining the ground part with the anonymous part.
  TgdSet sigma = ParseTgds("tcustomer(X) -> torder(X, O), tord(O).");
  Instance db = ParseDatabase("tcustomer(tina). tcustomer(theo).");
  UCQ q = ParseUcq("tq9(X) :- torder(X, O), tord(O).");
  Omq omq = Omq::WithFullDataSchema(sigma, q);
  OmqToCqsReduction reduction = ReduceOmqToCqs(omq, db);
  ASSERT_TRUE(reduction.exact);
  std::vector<std::vector<Term>> closed;
  for (auto& tuple : EvaluateUCQ(q, reduction.dstar)) {
    if (db.InDomain(tuple[0])) closed.push_back(std::move(tuple));
  }
  EXPECT_EQ(closed.size(), 2u);
  // And no cross-talk: distinct customers do not share anonymous orders.
  UCQ cross = ParseUcq("tq10(X, Y) :- torder(X, O), torder(Y, O).");
  auto certain_cross = GuardedCertainAnswers(db, sigma, cross);
  std::vector<std::vector<Term>> closed_cross;
  for (auto& tuple : EvaluateUCQ(cross, reduction.dstar)) {
    if (db.InDomain(tuple[0]) && db.InDomain(tuple[1])) {
      closed_cross.push_back(std::move(tuple));
    }
  }
  EXPECT_EQ(closed_cross, certain_cross);
}

}  // namespace
}  // namespace gqe
