// Failure injection: exhausted budgets, truncations and malformed inputs
// must be reported honestly (flags, not wrong answers) and never crash.

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "fc/witness.h"
#include "guarded/chase_tree.h"
#include "linear/rewriting.h"
#include "omq/evaluation.h"
#include "parser/parser.h"
#include "query/evaluation.h"

namespace gqe {
namespace {

TEST(FailureTest, ChaseFactBudgetReportsIncomplete) {
  TgdSet sigma = ParseTgds("fla(X) -> flb(X, Y), fla(Y).");
  Instance db = ParseDatabase("fla(f1).");
  ChaseOptions options;
  options.budget.max_facts = 10;
  ChaseResult result = Chase(db, sigma, options);
  EXPECT_FALSE(result.complete);
  EXPECT_LE(result.instance.size(), 13u);
  // The produced prefix is still a sound chase portion.
  EXPECT_TRUE(db.SubsetOf(result.instance));
}

TEST(FailureTest, ChaseLevelBudgetIsSharp) {
  TgdSet sigma = ParseTgds("flc(X) -> fld(X, Y), flc(Y).");
  Instance db = ParseDatabase("flc(f2).");
  for (int budget : {0, 1, 2}) {
    ChaseOptions options;
    options.max_level = budget;
    ChaseResult result = Chase(db, sigma, options);
    EXPECT_LE(result.max_level_built, budget) << budget;
  }
}

TEST(FailureTest, ChaseTreeTruncationFlagged) {
  TgdSet sigma = ParseTgds("fle(X) -> flf(X, Y), fle(Y).");
  Instance db = ParseDatabase("fle(f3).");
  ChaseTreeOptions options;
  options.budget.max_facts = 5;
  options.blocking_repeats = 100;  // effectively no blocking
  ChaseTree tree = BuildChaseTree(db, sigma, options);
  EXPECT_TRUE(tree.truncated);
}

TEST(FailureTest, BoundedChaseFallbackNeverClaimsExactness) {
  // A non-guarded, non-terminating set forces the fallback.
  TgdSet sigma = ParseTgds(R"(
    flg(X, Y), flg(Y, Z) -> flh(X).
    flg(X, W) -> flg(W, V).
  )");
  Omq omq = Omq::WithFullDataSchema(sigma, ParseUcq("flq(X) :- flh(X)."));
  Instance db = ParseDatabase("flg(f4, f5).");
  OmqEvalOptions options;
  options.fallback_chase_level = 2;
  OmqEvalResult result = EvaluateOmq(omq, db, options);
  EXPECT_FALSE(result.exact);
  EXPECT_EQ(result.method, "bounded-chase");
}

TEST(FailureTest, RewritingCapReportsIncomplete) {
  // A rewriting that would explode: many mutually-feeding inclusion
  // dependencies with a tiny disjunct cap.
  TgdSet sigma = ParseTgds(R"(
    fwa(X, Y) -> fwb(X, Y).
    fwb(X, Y) -> fwc(X, Y).
    fwc(X, Y) -> fwa(Y, X).
    fwa(X, Y) -> fwc(Y, X).
  )");
  UCQ q = ParseUcq("fwq() :- fwa(X, Y), fwb(Y, Z).");
  RewriteOptions options;
  options.max_disjuncts = 3;
  RewriteResult result = RewriteUnderLinearTgds(q, sigma, options);
  EXPECT_FALSE(result.complete);
  EXPECT_LE(result.rewriting.num_disjuncts(), 3u);
}

TEST(FailureTest, WitnessBudgetFailureIsHonest) {
  // Starve the witness builder: it must either produce a *validated*
  // model or say is_model = false — never an unvalidated instance.
  TgdSet sigma = ParseTgds("fva(X) -> fvb(X, Y), fva(Y).");
  Instance db = ParseDatabase("fva(f6).");
  FiniteWitnessOptions options;
  options.restricted_chase_facts = 3;
  options.budget.max_facts = 4;
  FiniteWitness witness = BuildFiniteWitness(db, sigma, 2, options);
  if (witness.is_model) {
    EXPECT_TRUE(Satisfies(witness.model, sigma));
  }
  // Either way the database is contained.
  EXPECT_TRUE(db.SubsetOf(witness.model));
}

TEST(FailureTest, ParserRecoversPositionOnGarbage) {
  struct BadCase {
    const char* text;
  };
  const BadCase cases[] = {
      {"pxq( ."},
      {"pxr(a b)."},
      {"pxr(a, b)"},            // missing dot
      {"-> ."},                 // empty head
      {"pxr(a,b). pxr(a)."},    // arity clash
      {"pxq(X) :- ."},          // empty body
      {"$$$."},
  };
  for (const BadCase& c : cases) {
    ParseResult result = ParseProgram(c.text);
    EXPECT_FALSE(result.ok) << c.text;
    EXPECT_FALSE(result.error.empty()) << c.text;
  }
}

TEST(FailureTest, EmptyProgramIsFine) {
  ParseResult result = ParseProgram("  % nothing but comments\n");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.program.database.size(), 0u);
}

TEST(FailureTest, EvaluationOnEmptyDatabase) {
  Instance empty;
  CQ cq = ParseCq("feq(X) :- fee(X, Y).");
  EXPECT_TRUE(EvaluateCQ(cq, empty).empty());
  EXPECT_FALSE(HoldsCQ(cq, empty, {Term::Constant("nobody")}));
}

TEST(FailureTest, ArityMismatchedCandidateIsNotAnAnswer) {
  CQ cq = ParseCq("fez(X) :- fee(X, Y).");
  Instance db = ParseDatabase("fee(a, b).");
  EXPECT_FALSE(HoldsCQ(cq, db, {}));  // too few components
  EXPECT_FALSE(HoldsCQ(cq, db, {Term::Constant("a"), Term::Constant("b")}));
  EXPECT_TRUE(HoldsCQ(cq, db, {Term::Constant("a")}));
}

TEST(FailureTest, OmqOnEmptyDatabase) {
  TgdSet sigma = ParseTgds("fga(X) -> fgb(X).");
  Omq omq = Omq::WithFullDataSchema(sigma, ParseUcq("fgq(X) :- fgb(X)."));
  Instance empty;
  OmqEvalResult result = EvaluateOmq(omq, empty);
  EXPECT_TRUE(result.exact);
  EXPECT_TRUE(result.answers.empty());
}

TEST(FailureTest, EmptyBodyTgdOnEmptyDatabase) {
  // An empty-body rule fires even over the empty database.
  TgdSet sigma = ParseTgds("-> fha(Z).");
  Instance empty;
  ChaseResult result = Chase(empty, sigma);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.instance.size(), 1u);
}

}  // namespace
}  // namespace gqe
