#include <gtest/gtest.h>

#include "parser/parser.h"

namespace gqe {
namespace {

TEST(ParserTest, FactsAndComments) {
  ParseResult result = ParseProgram(R"(
    % a friendly comment
    pedge(a, b).  # trailing comment style two
    pedge(b, c).
    plabel(a).
  )");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.program.database.size(), 3u);
  EXPECT_TRUE(result.program.database.Contains(
      Atom::Make("pedge", {Term::Constant("a"), Term::Constant("b")})));
}

TEST(ParserTest, TgdWithExistential) {
  ParseResult result = ParseProgram(R"(
    pperson(X) -> pparent(X, Y), pperson(Y).
  )");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.program.tgds.size(), 1u);
  const Tgd& tgd = result.program.tgds[0];
  EXPECT_TRUE(tgd.IsGuarded());
  EXPECT_EQ(tgd.ExistentialVariables().size(), 1u);
  EXPECT_EQ(tgd.head().size(), 2u);
}

TEST(ParserTest, EmptyBodyTgd) {
  ParseResult result = ParseProgram("-> pinit(Z).");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.program.tgds.size(), 1u);
  EXPECT_TRUE(result.program.tgds[0].body().empty());
}

TEST(ParserTest, UcqFromRepeatedHeads) {
  ParseResult result = ParseProgram(R"(
    pq(X) :- pedge(X, Y).
    pq(X) :- plabel(X).
  )");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.program.queries.size(), 1u);
  const UCQ& ucq = result.program.queries.at("pq");
  EXPECT_EQ(ucq.num_disjuncts(), 2u);
  EXPECT_EQ(ucq.arity(), 1);
}

TEST(ParserTest, BooleanQuery) {
  ParseResult result = ParseProgram("pqb() :- pedge(X, Y), pedge(Y, X).");
  ASSERT_TRUE(result.ok) << result.error;
  const UCQ& ucq = result.program.queries.at("pqb");
  EXPECT_TRUE(ucq.IsBoolean());
}

TEST(ParserTest, ZeroAryPredicate) {
  ParseResult result = ParseProgram(R"(
    pflag().
    pedge(X, Y) -> pans().
  )");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.program.database.size(), 1u);
  EXPECT_EQ(result.program.tgds.size(), 1u);
}

TEST(ParserTest, ErrorOnVariableInFact) {
  ParseResult result = ParseProgram("pedge(X, b).");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("variable"), std::string::npos);
}

TEST(ParserTest, ErrorOnArityMismatch) {
  ParseResult result = ParseProgram(R"(
    pbin(a, b).
    pbin(c).
  )");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("arity"), std::string::npos);
}

TEST(ParserTest, ErrorOnConstantInTgd) {
  ParseResult result = ParseProgram("pedge(X, Y) -> plabel2(X, c).");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("constant"), std::string::npos);
}

TEST(ParserTest, ErrorOnUnsafeQuery) {
  ParseResult result = ParseProgram("pq2(X) :- pedge(Y, Z).");
  EXPECT_FALSE(result.ok);
}

TEST(ParserTest, ErrorLineNumbers) {
  ParseResult result = ParseProgram("pedge(a, b).\npedge(X, b).\n");
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_line, 2);
}

TEST(ParserTest, ConvenienceParsers) {
  Instance db = ParseDatabase("pedge(a,b). pedge(b,c).");
  EXPECT_EQ(db.size(), 2u);
  TgdSet tgds = ParseTgds("pedge(X,Y) -> pedge(Y,X).");
  EXPECT_EQ(tgds.size(), 1u);
  CQ cq = ParseCq("pq3(X) :- pedge(X, Y).");
  EXPECT_EQ(cq.arity(), 1);
  UCQ ucq = ParseUcq("pq4() :- pedge(X,Y). pq4() :- plabel(X).");
  EXPECT_EQ(ucq.num_disjuncts(), 2u);
}

TEST(ParserTest, MixedProgram) {
  ParseResult result = ParseProgram(R"(
    % a database
    memployee(ann). mmanages(ann, bob).
    % an ontology
    memployee(X) -> mworksin(X, D), mdept(D).
    mmanages(X, Y), mworksin(Y, D) -> mbigboss(X).
    % a query
    mq(X) :- mworksin(X, D), mdept(D).
  )");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.program.database.size(), 2u);
  EXPECT_EQ(result.program.tgds.size(), 2u);
  EXPECT_EQ(result.program.queries.size(), 1u);
  EXPECT_FALSE(result.program.tgds[1].IsGuarded());
  EXPECT_TRUE(result.program.tgds[1].IsFrontierGuarded());
}

}  // namespace
}  // namespace gqe
