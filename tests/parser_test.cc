#include <gtest/gtest.h>

#include "parser/parser.h"

namespace gqe {
namespace {

TEST(ParserTest, FactsAndComments) {
  ParseResult result = ParseProgram(R"(
    % a friendly comment
    pedge(a, b).  # trailing comment style two
    pedge(b, c).
    plabel(a).
  )");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.program.database.size(), 3u);
  EXPECT_TRUE(result.program.database.Contains(
      Atom::Make("pedge", {Term::Constant("a"), Term::Constant("b")})));
}

TEST(ParserTest, TgdWithExistential) {
  ParseResult result = ParseProgram(R"(
    pperson(X) -> pparent(X, Y), pperson(Y).
  )");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.program.tgds.size(), 1u);
  const Tgd& tgd = result.program.tgds[0];
  EXPECT_TRUE(tgd.IsGuarded());
  EXPECT_EQ(tgd.ExistentialVariables().size(), 1u);
  EXPECT_EQ(tgd.head().size(), 2u);
}

TEST(ParserTest, EmptyBodyTgd) {
  ParseResult result = ParseProgram("-> pinit(Z).");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.program.tgds.size(), 1u);
  EXPECT_TRUE(result.program.tgds[0].body().empty());
}

TEST(ParserTest, UcqFromRepeatedHeads) {
  ParseResult result = ParseProgram(R"(
    pq(X) :- pedge(X, Y).
    pq(X) :- plabel(X).
  )");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.program.queries.size(), 1u);
  const UCQ& ucq = result.program.queries.at("pq");
  EXPECT_EQ(ucq.num_disjuncts(), 2u);
  EXPECT_EQ(ucq.arity(), 1);
}

TEST(ParserTest, BooleanQuery) {
  ParseResult result = ParseProgram("pqb() :- pedge(X, Y), pedge(Y, X).");
  ASSERT_TRUE(result.ok) << result.error;
  const UCQ& ucq = result.program.queries.at("pqb");
  EXPECT_TRUE(ucq.IsBoolean());
}

TEST(ParserTest, ZeroAryPredicate) {
  ParseResult result = ParseProgram(R"(
    pflag().
    pedge(X, Y) -> pans().
  )");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.program.database.size(), 1u);
  EXPECT_EQ(result.program.tgds.size(), 1u);
}

TEST(ParserTest, ErrorOnVariableInFact) {
  ParseResult result = ParseProgram("pedge(X, b).");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("variable"), std::string::npos);
}

TEST(ParserTest, ErrorOnArityMismatch) {
  ParseResult result = ParseProgram(R"(
    pbin(a, b).
    pbin(c).
  )");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("arity"), std::string::npos);
}

TEST(ParserTest, ErrorOnConstantInTgd) {
  ParseResult result = ParseProgram("pedge(X, Y) -> plabel2(X, c).");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("constant"), std::string::npos);
}

TEST(ParserTest, ErrorOnUnsafeQuery) {
  ParseResult result = ParseProgram("pq2(X) :- pedge(Y, Z).");
  EXPECT_FALSE(result.ok);
}

TEST(ParserTest, ErrorLineNumbers) {
  ParseResult result = ParseProgram("pedge(a, b).\npedge(X, b).\n");
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_line, 2);
}

TEST(ParserTest, ConvenienceParsers) {
  Instance db = ParseDatabase("pedge(a,b). pedge(b,c).");
  EXPECT_EQ(db.size(), 2u);
  TgdSet tgds = ParseTgds("pedge(X,Y) -> pedge(Y,X).");
  EXPECT_EQ(tgds.size(), 1u);
  CQ cq = ParseCq("pq3(X) :- pedge(X, Y).");
  EXPECT_EQ(cq.arity(), 1);
  UCQ ucq = ParseUcq("pq4() :- pedge(X,Y). pq4() :- plabel(X).");
  EXPECT_EQ(ucq.num_disjuncts(), 2u);
}

TEST(ParserTest, ErrorCarriesColumnAndToken) {
  // The second ',' on line 2 (column 12) is where a term was expected.
  ParseResult result = ParseProgram("pedge(a, b).\npedge(a, b,, ).\n");
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error_line, 2);
  EXPECT_EQ(result.error_column, 12);
  EXPECT_EQ(result.error_token, ",");
}

TEST(ParserTest, TruncatedRuleReportsEndOfInput) {
  ParseResult result = ParseProgram("pedge(X, Y) ->");
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error_token, "end of input");
  EXPECT_NE(result.error.find("end of input"), std::string::npos);
  EXPECT_EQ(result.error_line, 1);
  EXPECT_GT(result.error_column, 0);

  // Truncated mid-atom, mid-statement and after a head atom.
  for (const char* text :
       {"pedge(a", "pedge(a, b). pother(", "pq(X) :- ", "pedge(a,"}) {
    ParseResult truncated = ParseProgram(text);
    EXPECT_FALSE(truncated.ok) << text;
    EXPECT_EQ(truncated.error_token, "end of input") << text;
  }
}

TEST(ParserTest, UnbalancedParens) {
  ParseResult missing_close = ParseProgram("pedge(a, b.");
  ASSERT_FALSE(missing_close.ok);
  EXPECT_NE(missing_close.error.find("')'"), std::string::npos);
  EXPECT_EQ(missing_close.error_token, ".");

  ParseResult extra_close = ParseProgram("pedge(a, b)).");
  ASSERT_FALSE(extra_close.ok);
  EXPECT_EQ(extra_close.error_token, ")");

  ParseResult bare_open = ParseProgram("(a, b).");
  ASSERT_FALSE(bare_open.ok);
  EXPECT_EQ(bare_open.error_column, 1);
}

TEST(ParserTest, EmbeddedNulRejectedPrintably) {
  const char text[] = "pedge(a\0b, c).";
  ParseResult result = ParseProgram(std::string_view(text, sizeof(text) - 1));
  ASSERT_FALSE(result.ok);
  // The diagnostic must stay printable: the NUL appears as an escape,
  // never as a raw byte.
  EXPECT_EQ(result.error.find('\0'), std::string::npos);
  EXPECT_NE(result.error.find("\\x00"), std::string::npos);
  EXPECT_EQ(result.error_line, 1);
  EXPECT_EQ(result.error_column, 8);
  EXPECT_EQ(result.error_token, "\\x00");
}

TEST(ParserTest, LexerErrorHasPosition) {
  ParseResult result = ParseProgram("pedge(a, b).\n  pedge(a ! b).\n");
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error_line, 2);
  EXPECT_EQ(result.error_column, 11);
  EXPECT_EQ(result.error_token, "!");
}

TEST(ParserTest, LabelledNullTermsParse) {
  ParseResult result = ParseProgram("pedge(_:n3, _:n7). plabel(_:n3).");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.program.database.size(), 2u);
  EXPECT_TRUE(result.program.database.Contains(
      Atom::Make("pedge", {Term::Null(3), Term::Null(7)})));
  // Parsing a null advances the global counter past it: fresh nulls can
  // no longer collide with the program's.
  EXPECT_GE(Term::NextNullId(), 8u);
}

TEST(ParserTest, LabelledNullOutOfRange) {
  // 2^30 does not fit the 30-bit id payload.
  ParseResult result = ParseProgram("pedge(_:n1073741824, a).");
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("out of range"), std::string::npos);
}

TEST(ParserTest, UnderscoreIdentifierStillConstant) {
  // `_` and `_:x` do not form a null token; plain `_`-led names stay
  // ordinary constants.
  ParseResult result = ParseProgram("pedge(_abc, _).");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.program.database.Contains(
      Atom::Make("pedge", {Term::Constant("_abc"), Term::Constant("_")})));
}

TEST(ParserTest, MixedProgram) {
  ParseResult result = ParseProgram(R"(
    % a database
    memployee(ann). mmanages(ann, bob).
    % an ontology
    memployee(X) -> mworksin(X, D), mdept(D).
    mmanages(X, Y), mworksin(Y, D) -> mbigboss(X).
    % a query
    mq(X) :- mworksin(X, D), mdept(D).
  )");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.program.database.size(), 2u);
  EXPECT_EQ(result.program.tgds.size(), 2u);
  EXPECT_EQ(result.program.queries.size(), 1u);
  EXPECT_FALSE(result.program.tgds[1].IsGuarded());
  EXPECT_TRUE(result.program.tgds[1].IsFrontierGuarded());
}

}  // namespace
}  // namespace gqe
