#include <gtest/gtest.h>

#include "chase/chase.h"
#include "query/evaluation.h"
#include "query/homomorphism.h"

namespace gqe {
namespace {

Term C(const char* name) { return Term::Constant(name); }
Term V(const char* name) { return Term::Variable(name); }

TEST(ChaseTest, FullTgdsReachFixpoint) {
  // Transitive closure: E(X,Y), E(Y,Z) -> E(X,Z) on a path of 4.
  TgdSet sigma = {Tgd({Atom::Make("CE", {V("X"), V("Y")}),
                       Atom::Make("CE", {V("Y"), V("Z")})},
                      {Atom::Make("CE", {V("X"), V("Z")})})};
  Instance db;
  db.Insert(Atom::Make("CE", {C("c1"), C("c2")}));
  db.Insert(Atom::Make("CE", {C("c2"), C("c3")}));
  db.Insert(Atom::Make("CE", {C("c3"), C("c4")}));
  ChaseResult result = Chase(db, sigma);
  EXPECT_TRUE(result.complete);
  // Transitive closure of a 4-path: 3+2+1 = 6 edges.
  EXPECT_EQ(result.instance.size(), 6u);
  EXPECT_TRUE(result.instance.Contains(Atom::Make("CE", {C("c1"), C("c4")})));
  EXPECT_TRUE(Satisfies(result.instance, sigma));
}

TEST(ChaseTest, ExistentialCreatesNulls) {
  // Person(X) -> exists Y. HasParent(X,Y), Person(Y): infinite chase;
  // bound the level.
  TgdSet sigma = {Tgd({Atom::Make("CPerson", {V("X")})},
                      {Atom::Make("CHasParent", {V("X"), V("Y")}),
                       Atom::Make("CPerson", {V("Y")})})};
  Instance db;
  db.Insert(Atom::Make("CPerson", {C("alice")}));
  ChaseOptions options;
  options.max_level = 3;
  ChaseResult result = Chase(db, sigma, options);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.max_level_built, 3);
  // Levels: 1 person at 0; each level adds one person + one edge.
  EXPECT_EQ(result.instance.size(), 1u + 2u * 3u);
  // The new parent is a labelled null.
  bool found_null = false;
  for (const Atom& atom : result.instance.atoms()) {
    for (Term t : atom.args()) {
      if (t.IsNull()) found_null = true;
    }
  }
  EXPECT_TRUE(found_null);
}

TEST(ChaseTest, LevelsFollowLemmaA1) {
  // Linear rules forming a chain: A(X) -> B(X) -> C(X).
  TgdSet sigma = {
      Tgd({Atom::Make("CA", {V("X")})}, {Atom::Make("CB", {V("X")})}),
      Tgd({Atom::Make("CB", {V("X")})}, {Atom::Make("CC", {V("X")})})};
  Instance db;
  db.Insert(Atom::Make("CA", {C("lv")}));
  ChaseResult result = Chase(db, sigma);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.levels.at(Atom::Make("CA", {C("lv")})), 0);
  EXPECT_EQ(result.levels.at(Atom::Make("CB", {C("lv")})), 1);
  EXPECT_EQ(result.levels.at(Atom::Make("CC", {C("lv")})), 2);
  Instance level1 = result.UpToLevel(1);
  EXPECT_EQ(level1.size(), 2u);
  EXPECT_FALSE(level1.Contains(Atom::Make("CC", {C("lv")})));
}

TEST(ChaseTest, ObliviousFiresSatisfiedTriggers) {
  // R(X,Y) -> exists Z. R(X,Z): oblivious chase fires even though the
  // head is already satisfied; restricted chase does not.
  TgdSet sigma = {Tgd({Atom::Make("CR", {V("X"), V("Y")})},
                      {Atom::Make("CR", {V("X"), V("Z")})})};
  Instance db;
  db.Insert(Atom::Make("CR", {C("r1"), C("r2")}));
  ChaseOptions oblivious;
  oblivious.max_level = 2;
  ChaseResult ob = Chase(db, sigma, oblivious);
  EXPECT_GT(ob.instance.size(), 1u);

  ChaseOptions restricted;
  restricted.restricted = true;
  ChaseResult re = Chase(db, sigma, restricted);
  EXPECT_TRUE(re.complete);
  EXPECT_EQ(re.instance.size(), 1u);
}

TEST(ChaseTest, UniversalityHomomorphismIntoAnyModel) {
  // Proposition 2.2: chase(D, Σ) maps homomorphically into every model of
  // D and Σ fixing dom(D).
  TgdSet sigma = {Tgd({Atom::Make("CPj", {V("X")})},
                      {Atom::Make("CWorksAt", {V("X"), V("Y")}),
                       Atom::Make("CDept", {V("Y")})})};
  Instance db;
  db.Insert(Atom::Make("CPj", {C("uma")}));
  ChaseResult chase = Chase(db, sigma);
  EXPECT_TRUE(chase.complete);

  // A hand-built model: uma works at d0.
  Instance model;
  model.Insert(Atom::Make("CPj", {C("uma")}));
  model.Insert(Atom::Make("CWorksAt", {C("uma"), C("d0")}));
  model.Insert(Atom::Make("CDept", {C("d0")}));
  ASSERT_TRUE(Satisfies(model, sigma));
  auto hom = InstanceHomomorphism(chase.instance, model, {C("uma")});
  EXPECT_TRUE(hom.has_value());
}

TEST(ChaseTest, EmptyBodyTgdFiresOnce) {
  TgdSet sigma = {Tgd({}, {Atom::Make("CInit", {V("Z")})})};
  Instance db;
  db.Insert(Atom::Make("CSeed", {C("s")}));
  ChaseResult result = Chase(db, sigma);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.instance.FactsWithPredicate(predicates::Lookup("CInit"))
                .size(),
            1u);
}

TEST(ChaseTest, FactBudgetStopsCleanly) {
  TgdSet sigma = {Tgd({Atom::Make("CPerson", {V("X")})},
                      {Atom::Make("CHasParent", {V("X"), V("Y")}),
                       Atom::Make("CPerson", {V("Y")})})};
  Instance db;
  db.Insert(Atom::Make("CPerson", {C("fb")}));
  ChaseOptions options;
  options.budget.max_facts = 20;
  ChaseResult result = Chase(db, sigma, options);
  EXPECT_FALSE(result.complete);
  EXPECT_LE(result.instance.size(), 25u);
}

TEST(ChaseTest, FactBudgetNeverOvershoots) {
  // Multi-atom heads used to overshoot: the budget was only checked after
  // a trigger's whole head had been inserted. It now gates every single
  // insertion, so the instance never exceeds max_facts — even budgets that
  // land mid-head.
  TgdSet sigma = {Tgd({Atom::Make("CBud", {V("X")})},
                      {Atom::Make("CBudNext", {V("X"), V("Y")}),
                       Atom::Make("CBud", {V("Y")}),
                       Atom::Make("CBudMark", {V("X")})})};
  Instance db;
  db.Insert(Atom::Make("CBud", {C("fb0")}));
  db.Insert(Atom::Make("CBud", {C("fb1")}));
  for (size_t budget : {3u, 4u, 5u, 6u, 7u}) {
    ChaseOptions options;
    options.budget.max_facts = budget;
    ChaseResult result = Chase(db, sigma, options);
    EXPECT_LE(result.instance.size(), budget) << "budget " << budget;
    EXPECT_FALSE(result.complete) << "budget " << budget;
    EXPECT_TRUE(db.SubsetOf(result.instance)) << "budget " << budget;
  }
}

TEST(SatisfiesTest, DetectsViolation) {
  TgdSet sigma = {Tgd({Atom::Make("CE", {V("X"), V("Y")})},
                      {Atom::Make("CE", {V("Y"), V("X")})})};
  Instance db;
  db.Insert(Atom::Make("CE", {C("s1"), C("s2")}));
  EXPECT_FALSE(Satisfies(db, sigma));
  db.Insert(Atom::Make("CE", {C("s2"), C("s1")}));
  EXPECT_TRUE(Satisfies(db, sigma));
}

TEST(SatisfiesTest, ExistentialHeadSatisfiedByAnyWitness) {
  TgdSet sigma = {Tgd({Atom::Make("CPj", {V("X")})},
                      {Atom::Make("CWorksAt", {V("X"), V("Y")})})};
  Instance db;
  db.Insert(Atom::Make("CPj", {C("w")}));
  EXPECT_FALSE(Satisfies(db, sigma));
  db.Insert(Atom::Make("CWorksAt", {C("w"), C("anywhere")}));
  EXPECT_TRUE(Satisfies(db, sigma));
}

TEST(ChaseTest, ChaseAnswersCertainly) {
  // Proposition 3.1 shape: Q(D) = q(chase(D,Σ)) for a terminating chase.
  TgdSet sigma = {
      Tgd({Atom::Make("CGrad", {V("X")})}, {Atom::Make("CStudent", {V("X")})}),
      Tgd({Atom::Make("CStudent", {V("X")})},
          {Atom::Make("CEnrolled", {V("X"), V("Y")})})};
  Instance db;
  db.Insert(Atom::Make("CGrad", {C("gina")}));
  ChaseResult chase = Chase(db, sigma);
  ASSERT_TRUE(chase.complete);
  CQ q({V("X")}, {Atom::Make("CEnrolled", {V("X"), V("Y")})});
  auto answers = EvaluateCQ(q, chase.instance);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], C("gina"));
}

}  // namespace
}  // namespace gqe
