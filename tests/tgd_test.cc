#include <gtest/gtest.h>

#include "tgd/tgd.h"

namespace gqe {
namespace {

Term V(const char* name) { return Term::Variable(name); }

TEST(TgdTest, FrontierAndExistentials) {
  // R(X,Y) -> exists Z. S(X,Z)
  Tgd tgd({Atom::Make("TR", {V("X"), V("Y")})},
          {Atom::Make("TS", {V("X"), V("Z")})});
  auto frontier = tgd.Frontier();
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0], V("X"));
  auto existential = tgd.ExistentialVariables();
  ASSERT_EQ(existential.size(), 1u);
  EXPECT_EQ(existential[0], V("Z"));
  EXPECT_FALSE(tgd.IsFull());
  EXPECT_TRUE(tgd.IsLinear());
  EXPECT_TRUE(tgd.IsGuarded());
}

TEST(TgdTest, GuardednessClassification) {
  // Guarded: G(X,Y,Z), R(X,Y) -> S(X)   (G guards all body vars)
  Tgd guarded({Atom::Make("TG3", {V("X"), V("Y"), V("Z")}),
               Atom::Make("TR", {V("X"), V("Y")})},
              {Atom::Make("TS1", {V("X")})});
  EXPECT_TRUE(guarded.IsGuarded());
  EXPECT_EQ(guarded.GuardIndex(), 0);
  EXPECT_TRUE(guarded.IsFrontierGuarded());

  // Frontier-guarded but not guarded: R(X,Y), R(Y,Z) -> S(X)
  // frontier {X} is guarded by R(X,Y) but no atom has X,Y,Z.
  Tgd fg({Atom::Make("TR", {V("X"), V("Y")}),
          Atom::Make("TR", {V("Y"), V("Z")})},
         {Atom::Make("TS1", {V("X")})});
  EXPECT_FALSE(fg.IsGuarded());
  EXPECT_TRUE(fg.IsFrontierGuarded());
  EXPECT_EQ(fg.FrontierGuardIndex(), 0);

  // Not frontier-guarded: R(X,Y), R(Y,Z) -> S(X,Z)
  Tgd not_fg({Atom::Make("TR", {V("X"), V("Y")}),
              Atom::Make("TR", {V("Y"), V("Z")})},
             {Atom::Make("TS", {V("X"), V("Z")})});
  EXPECT_FALSE(not_fg.IsGuarded());
  EXPECT_FALSE(not_fg.IsFrontierGuarded());
}

TEST(TgdTest, EmptyBodyIsGuarded) {
  Tgd tgd({}, {Atom::Make("TS1", {V("Z")})});
  EXPECT_TRUE(tgd.IsGuarded());
  EXPECT_TRUE(tgd.IsFrontierGuarded());
  EXPECT_FALSE(tgd.IsFull());
}

TEST(TgdTest, BooleanCqAsFrontierGuardedTgd) {
  // Section 3: ϕ(x̄) -> Ans with 0-ary Ans is frontier-guarded (empty
  // frontier).
  Tgd tgd({Atom::Make("TR", {V("X"), V("Y")}),
           Atom::Make("TR", {V("Y"), V("Z")}),
           Atom::Make("TR", {V("Z"), V("X")})},
          {Atom::Make("TAns", std::vector<Term>{})});
  EXPECT_TRUE(tgd.Frontier().empty());
  EXPECT_TRUE(tgd.IsFrontierGuarded());
  EXPECT_FALSE(tgd.IsGuarded());
}

TEST(TgdTest, SetClassification) {
  Tgd linear({Atom::Make("TR", {V("X"), V("Y")})},
             {Atom::Make("TS", {V("Y"), V("X")})});
  Tgd guarded_not_linear({Atom::Make("TG3", {V("X"), V("Y"), V("Z")}),
                          Atom::Make("TR", {V("X"), V("Y")})},
                         {Atom::Make("TS1", {V("X")})});
  TgdSet set = {linear, guarded_not_linear};
  EXPECT_TRUE(IsGuardedSet(set));
  EXPECT_FALSE(IsLinearSet(set));
  EXPECT_TRUE(IsFullSet(set));
  EXPECT_EQ(MaxHeadAtoms(set), 1);
  EXPECT_GE(MaxRuleVariables(set), 3);
  Schema schema = SchemaOf(set);
  EXPECT_TRUE(schema.Contains(predicates::Lookup("TR")));
  EXPECT_TRUE(schema.Contains(predicates::Lookup("TG3")));
}

TEST(TgdTest, ValidateRejectsConstants) {
  Tgd bad({Atom::Make("TR", {V("X"), Term::Constant("c")})},
          {Atom::Make("TS1", {V("X")})});
  std::string why;
  EXPECT_FALSE(bad.Validate(&why));
}

TEST(WeakAcyclicityTest, FullSetsAreWeaklyAcyclic) {
  TgdSet set = {Tgd({Atom::Make("TR", {V("X"), V("Y")})},
                    {Atom::Make("TR", {V("Y"), V("X")})})};
  EXPECT_TRUE(IsWeaklyAcyclic(set));
}

TEST(WeakAcyclicityTest, SelfFeedingExistentialCycles) {
  // R(X,Y) -> exists Z. R(Y,Z): classic non-terminating chase.
  TgdSet set = {Tgd({Atom::Make("TR", {V("X"), V("Y")})},
                    {Atom::Make("TR", {V("Y"), V("Z")})})};
  EXPECT_FALSE(IsWeaklyAcyclic(set));
}

TEST(WeakAcyclicityTest, AcyclicExistentialOk) {
  // R(X,Y) -> exists Z. S(Y,Z): S never feeds back into R.
  TgdSet set = {Tgd({Atom::Make("TR", {V("X"), V("Y")})},
                    {Atom::Make("TS", {V("Y"), V("Z")})})};
  EXPECT_TRUE(IsWeaklyAcyclic(set));
}

TEST(WeakAcyclicityTest, TwoStepExistentialCycle) {
  // R(X,Y) -> exists Z. S(Y,Z) and S(X,Y) -> R(Y,X). The restricted
  // chase terminates (weakly acyclic: the null only ever reaches R's
  // first position, which creates no new nulls), but the oblivious chase
  // loops because trigger identity depends on the non-frontier body
  // variable X.
  TgdSet set = {Tgd({Atom::Make("TR", {V("X"), V("Y")})},
                    {Atom::Make("TS", {V("Y"), V("Z")})}),
                Tgd({Atom::Make("TS", {V("X"), V("Y")})},
                    {Atom::Make("TR", {V("Y"), V("X")})})};
  EXPECT_TRUE(IsWeaklyAcyclic(set));
  EXPECT_FALSE(IsObliviousChaseTerminating(set));
}

TEST(WeakAcyclicityTest, ObliviousTerminationImpliesWeakAcyclicity) {
  TgdSet ok = {Tgd({Atom::Make("TR", {V("X"), V("Y")})},
                   {Atom::Make("TS", {V("Y"), V("Z")})})};
  EXPECT_TRUE(IsObliviousChaseTerminating(ok));
  EXPECT_TRUE(IsWeaklyAcyclic(ok));
  TgdSet loop = {Tgd({Atom::Make("TR", {V("X"), V("Y")})},
                     {Atom::Make("TR", {V("Y"), V("Z")})})};
  EXPECT_FALSE(IsObliviousChaseTerminating(loop));
}

}  // namespace
}  // namespace gqe
