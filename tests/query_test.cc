#include <gtest/gtest.h>

#include <algorithm>

#include "base/instance.h"
#include "query/containment.h"
#include "query/contraction.h"
#include "query/core.h"
#include "query/cq.h"
#include "query/evaluation.h"
#include "query/homomorphism.h"
#include "query/tw_evaluation.h"

namespace gqe {
namespace {

Term C(const char* name) { return Term::Constant(name); }
Term V(const char* name) { return Term::Variable(name); }

/// A small directed-edge database: a path a->b->c->d plus a loop at e.
Instance PathDb() {
  Instance db;
  db.Insert(Atom::Make("E", {C("pa"), C("pb")}));
  db.Insert(Atom::Make("E", {C("pb"), C("pc")}));
  db.Insert(Atom::Make("E", {C("pc"), C("pd")}));
  db.Insert(Atom::Make("E", {C("pe"), C("pe")}));
  return db;
}

TEST(CqTest, ValidationCatchesUnsafeAnswerVar) {
  CQ bad({V("X")}, {Atom::Make("E", {V("Y"), V("Z")})});
  std::string why;
  EXPECT_FALSE(bad.Validate(&why));
  EXPECT_NE(why.find("unsafe"), std::string::npos);
  CQ good({V("X")}, {Atom::Make("E", {V("X"), V("Z")})});
  EXPECT_TRUE(good.Validate(&why)) << why;
}

TEST(CqTest, VariablePartition) {
  CQ cq({V("X")}, {Atom::Make("E", {V("X"), V("Y")}),
                   Atom::Make("E", {V("Y"), V("Z")})});
  EXPECT_EQ(cq.AllVariables().size(), 3u);
  auto existential = cq.ExistentialVariables();
  EXPECT_EQ(existential.size(), 2u);
  EXPECT_TRUE(std::find(existential.begin(), existential.end(), V("X")) ==
              existential.end());
}

TEST(CqTest, CanonicalInstanceFreezesVariables) {
  CQ cq({V("X")}, {Atom::Make("E", {V("X"), V("Y")})});
  std::unordered_map<Term, Term> frozen;
  Instance canonical = cq.CanonicalInstance(&frozen);
  EXPECT_EQ(canonical.size(), 1u);
  EXPECT_EQ(frozen.size(), 2u);
  EXPECT_TRUE(canonical.Contains(
      Atom::Make("E", {CQ::FrozenConstant(V("X")), CQ::FrozenConstant(V("Y"))})));
}

TEST(EvaluationTest, PathQueryAnswers) {
  // q(X, Z) :- E(X, Y), E(Y, Z): pairs two steps apart.
  CQ cq({V("X"), V("Z")},
        {Atom::Make("E", {V("X"), V("Y")}), Atom::Make("E", {V("Y"), V("Z")})});
  auto answers = EvaluateCQ(cq, PathDb());
  // (pa,pc), (pb,pd), (pe,pe).
  EXPECT_EQ(answers.size(), 3u);
  EXPECT_TRUE(HoldsCQ(cq, PathDb(), {C("pa"), C("pc")}));
  EXPECT_TRUE(HoldsCQ(cq, PathDb(), {C("pe"), C("pe")}));
  EXPECT_FALSE(HoldsCQ(cq, PathDb(), {C("pa"), C("pd")}));
}

TEST(EvaluationTest, BooleanQueries) {
  CQ three_path({}, {Atom::Make("E", {V("X1"), V("X2")}),
                     Atom::Make("E", {V("X2"), V("X3")}),
                     Atom::Make("E", {V("X3"), V("X4")})});
  EXPECT_TRUE(HoldsBooleanCQ(three_path, PathDb()));
  CQ triangle({}, {Atom::Make("E", {V("A"), V("B")}),
                   Atom::Make("E", {V("B"), V("C")}),
                   Atom::Make("E", {V("C"), V("A")})});
  Instance db = PathDb();
  EXPECT_TRUE(HoldsBooleanCQ(triangle, db));  // the loop at pe matches
  Instance no_loop;
  no_loop.Insert(Atom::Make("E", {C("pa"), C("pb")}));
  no_loop.Insert(Atom::Make("E", {C("pb"), C("pc")}));
  EXPECT_FALSE(HoldsBooleanCQ(triangle, no_loop));
}

TEST(EvaluationTest, ConstantsInQuery) {
  CQ cq({V("X")}, {Atom::Make("E", {C("pa"), V("X")})});
  auto answers = EvaluateCQ(cq, PathDb());
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], C("pb"));
}

TEST(EvaluationTest, UcqUnionsAnswers) {
  CQ q1({V("X")}, {Atom::Make("E", {C("pa"), V("X")})});
  CQ q2({V("Y")}, {Atom::Make("E", {V("Y"), C("pd")})});
  UCQ ucq({q1, q2});
  auto answers = EvaluateUCQ(ucq, PathDb());
  EXPECT_EQ(answers.size(), 2u);  // pb and pc
}

TEST(HomomorphismTest, InjectiveSearch) {
  // Pattern: two E-atoms sharing the middle variable.
  std::vector<Atom> pattern = {Atom::Make("E", {V("H1"), V("H2")}),
                               Atom::Make("E", {V("H2"), V("H3")})};
  Instance db = PathDb();
  HomOptions injective;
  injective.injective = true;
  // Injective homs exist (the path), but the loop solution pe,pe,pe is
  // excluded.
  auto all = HomomorphismSearch(pattern, db, injective).FindAll();
  for (const auto& sub : all) {
    EXPECT_TRUE(sub.IsInjective());
  }
  EXPECT_EQ(all.size(), 2u);  // pa-pb-pc and pb-pc-pd
  auto unrestricted = HomomorphismSearch(pattern, db).FindAll();
  EXPECT_EQ(unrestricted.size(), 3u);
}

TEST(HomomorphismTest, InstanceHomomorphismWithFixedElements) {
  Instance from;
  from.Insert(Atom::Make("E", {C("u1"), C("u2")}));
  Instance to = PathDb();
  // Unrestricted: u1,u2 can map anywhere along an edge.
  EXPECT_TRUE(InstanceHomomorphism(from, to).has_value());
  // Fixing u1 fails: u1 is not in the target domain.
  EXPECT_FALSE(InstanceHomomorphism(from, to, {C("u1")}).has_value());
}

TEST(HomomorphismTest, InjectivelyOnly) {
  // q() :- E(A,B), E(B,C). On a pure path every hom is injective; with a
  // loop there is a non-injective one.
  CQ cq({}, {Atom::Make("E", {V("A"), V("B")}),
             Atom::Make("E", {V("B"), V("C")})});
  Instance pure_path;
  pure_path.Insert(Atom::Make("E", {C("w1"), C("w2")}));
  pure_path.Insert(Atom::Make("E", {C("w2"), C("w3")}));
  EXPECT_TRUE(HoldsInjectivelyOnly(cq, pure_path, {}));
  EXPECT_FALSE(HoldsInjectivelyOnly(cq, PathDb(), {}));  // loop at pe
}

TEST(ContainmentTest, PathContainments) {
  // Longer path queries are contained in shorter ones (Boolean).
  CQ p2({}, {Atom::Make("E", {V("X1"), V("X2")}),
             Atom::Make("E", {V("X2"), V("X3")})});
  CQ p1({}, {Atom::Make("E", {V("Y1"), V("Y2")})});
  EXPECT_TRUE(CqContained(p2, p1));
  EXPECT_FALSE(CqContained(p1, p2));
  EXPECT_FALSE(CqEquivalent(p1, p2));
}

TEST(ContainmentTest, EquivalentRenamedQueries) {
  CQ q1({V("X")}, {Atom::Make("E", {V("X"), V("Y")})});
  CQ q2({V("A")}, {Atom::Make("E", {V("A"), V("B")})});
  EXPECT_TRUE(CqEquivalent(q1, q2));
}

TEST(ContainmentTest, UcqMinimization) {
  CQ p1({}, {Atom::Make("E", {V("Y1"), V("Y2")})});
  CQ p2({}, {Atom::Make("E", {V("X1"), V("X2")}),
             Atom::Make("E", {V("X2"), V("X3")})});
  UCQ ucq({p1, p2});
  UCQ minimized = MinimizeUcq(ucq);
  // p2 ⊆ p1, so p2 is redundant.
  EXPECT_EQ(minimized.num_disjuncts(), 1u);
  EXPECT_TRUE(UcqEquivalent(ucq, minimized));
}

TEST(CoreTest, RedundantPathAtomFolds) {
  // q() :- E(X,Y), E(X,Y'): core is a single atom.
  CQ cq({}, {Atom::Make("E", {V("X"), V("Y")}),
             Atom::Make("E", {V("X"), V("Yp")})});
  CQ core = CqCore(cq);
  EXPECT_EQ(core.atoms().size(), 1u);
  EXPECT_TRUE(CqEquivalent(cq, core));
  EXPECT_TRUE(IsCore(core));
  EXPECT_FALSE(IsCore(cq));
}

TEST(CoreTest, GridIsItsOwnCore) {
  // The 2x2 grid query with distinct relations per direction is a core.
  CQ cq({}, {Atom::Make("H", {V("G11"), V("G12")}),
             Atom::Make("H", {V("G21"), V("G22")}),
             Atom::Make("Vv", {V("G11"), V("G21")}),
             Atom::Make("Vv", {V("G12"), V("G22")})});
  EXPECT_TRUE(IsCore(cq));
}

TEST(CoreTest, AnswerVariablesPreserved) {
  CQ cq({V("X")}, {Atom::Make("E", {V("X"), V("Y")}),
                   Atom::Make("E", {V("X"), V("Z")})});
  CQ core = CqCore(cq);
  ASSERT_EQ(core.answer_vars().size(), 1u);
  EXPECT_EQ(core.answer_vars()[0], V("X"));
  EXPECT_EQ(core.atoms().size(), 1u);
}

TEST(ContractionTest, CountsForTriangleQuery) {
  // Boolean query with 3 variables: admissible partitions = Bell(3) = 5.
  CQ cq({}, {Atom::Make("E", {V("T1"), V("T2")}),
             Atom::Make("E", {V("T2"), V("T3")})});
  size_t count = ForEachContraction(
      cq, [](const CQ&, const Substitution&) { return true; });
  EXPECT_EQ(count, 5u);
}

TEST(ContractionTest, AnswerVariablesNeverMerged) {
  CQ cq({V("X"), V("Y")}, {Atom::Make("E", {V("X"), V("Y")})});
  std::vector<CQ> contractions = AllContractions(cq);
  // Only the identity: X and Y are both answer variables.
  EXPECT_EQ(contractions.size(), 1u);
}

TEST(ContractionTest, AnswerVariableAbsorbsExistential) {
  CQ cq({V("X")}, {Atom::Make("E", {V("X"), V("Y")})});
  bool found_loop = false;
  ForEachContraction(cq, [&](const CQ& contraction, const Substitution&) {
    if (contraction.atoms().size() == 1 &&
        contraction.atoms()[0] == Atom::Make("E", {V("X"), V("X")})) {
      found_loop = true;
    }
    return true;
  });
  EXPECT_TRUE(found_loop);
}

TEST(ContractionTest, TreewidthFilter) {
  // 2x2 grid query (Boolean): treewidth 2; contractions include
  // treewidth-1 queries.
  CQ grid({}, {Atom::Make("P2", {V("W2"), V("W1")}),
               Atom::Make("P2", {V("W4"), V("W1")}),
               Atom::Make("P2", {V("W2"), V("W3")}),
               Atom::Make("P2", {V("W4"), V("W3")})});
  EXPECT_EQ(grid.TreewidthOfExistentialPart(), 2);
  std::vector<CQ> narrow = ContractionsWithTreewidthAtMost(grid, 1);
  EXPECT_FALSE(narrow.empty());
  for (const CQ& cq : narrow) {
    EXPECT_LE(cq.TreewidthOfExistentialPart(), 1);
  }
  // The identity contraction has treewidth 2 and is excluded.
  for (const CQ& cq : narrow) {
    EXPECT_LT(cq.AllVariables().size(), 4u);
  }
}

TEST(TreewidthOfQueryTest, AnswerVariablesExcluded) {
  // A triangle of answer variables has no existential part: treewidth 1
  // by the paper's convention.
  CQ cq({V("X"), V("Y"), V("Z")},
        {Atom::Make("E", {V("X"), V("Y")}), Atom::Make("E", {V("Y"), V("Z")}),
         Atom::Make("E", {V("Z"), V("X")})});
  EXPECT_EQ(cq.TreewidthOfExistentialPart(), 1);
  // All existential: treewidth 2.
  CQ boolean_triangle({}, {Atom::Make("E", {V("X"), V("Y")}),
                           Atom::Make("E", {V("Y"), V("Z")}),
                           Atom::Make("E", {V("Z"), V("X")})});
  EXPECT_EQ(boolean_triangle.TreewidthOfExistentialPart(), 2);
}

class TreeDpAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TreeDpAgreementTest, MatchesBacktrackingOnPaths) {
  auto [path_db_length, query_length] = GetParam();
  Instance db;
  for (int i = 0; i < path_db_length; ++i) {
    db.Insert(Atom::Make("E", {Term::Constant("n" + std::to_string(i)),
                               Term::Constant("n" + std::to_string(i + 1))}));
  }
  std::vector<Atom> atoms;
  for (int i = 0; i < query_length; ++i) {
    atoms.push_back(
        Atom::Make("E", {Term::Variable("q" + std::to_string(i)),
                         Term::Variable("q" + std::to_string(i + 1))}));
  }
  CQ cq({}, atoms);
  EXPECT_EQ(HoldsBooleanCQ(cq, db), HoldsBooleanCqTreeDp(cq, db));
  EXPECT_EQ(HoldsBooleanCqTreeDp(cq, db), query_length <= path_db_length);
}

INSTANTIATE_TEST_SUITE_P(PathSweep, TreeDpAgreementTest,
                         ::testing::Combine(::testing::Values(1, 3, 5),
                                            ::testing::Values(1, 2, 4, 6)));

TEST(TreeDpTest, CandidateAnswerDecision) {
  CQ cq({V("X"), V("Z")},
        {Atom::Make("E", {V("X"), V("Y")}), Atom::Make("E", {V("Y"), V("Z")})});
  EXPECT_TRUE(HoldsCqTreeDp(cq, PathDb(), {C("pa"), C("pc")}));
  EXPECT_FALSE(HoldsCqTreeDp(cq, PathDb(), {C("pa"), C("pd")}));
}

TEST(TreeDpTest, GridQueryOnGridData) {
  // 3x3 grid data, 2x2 grid Boolean query: satisfiable.
  Instance db;
  auto cell = [](int i, int j) {
    return Term::Constant("g" + std::to_string(i) + "_" + std::to_string(j));
  };
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i + 1 < 3) db.Insert(Atom::Make("GV", {cell(i, j), cell(i + 1, j)}));
      if (j + 1 < 3) db.Insert(Atom::Make("GH", {cell(i, j), cell(i, j + 1)}));
    }
  }
  auto qvar = [](int i, int j) {
    return Term::Variable("x" + std::to_string(i) + "_" + std::to_string(j));
  };
  std::vector<Atom> atoms;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      if (i + 1 < 2) atoms.push_back(Atom::Make("GV", {qvar(i, j), qvar(i + 1, j)}));
      if (j + 1 < 2) atoms.push_back(Atom::Make("GH", {qvar(i, j), qvar(i, j + 1)}));
    }
  }
  CQ cq({}, atoms);
  EXPECT_TRUE(HoldsBooleanCqTreeDp(cq, db));
  EXPECT_TRUE(HoldsBooleanCQ(cq, db));
  // A 4x2 grid query does not fit in a 3x3 grid with directed relations.
  std::vector<Atom> big;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 2; ++j) {
      if (i + 1 < 4) big.push_back(Atom::Make("GV", {qvar(i, j), qvar(i + 1, j)}));
      if (j + 1 < 2) big.push_back(Atom::Make("GH", {qvar(i, j), qvar(i, j + 1)}));
    }
  }
  CQ big_cq({}, big);
  EXPECT_FALSE(HoldsBooleanCqTreeDp(big_cq, db));
  EXPECT_FALSE(HoldsBooleanCQ(big_cq, db));
}

}  // namespace
}  // namespace gqe
