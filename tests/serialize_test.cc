// Round-trip and corruption tests for the snapshot layer
// (base/serialize): writer/reader primitives, the checksummed envelope,
// interner and instance codecs, and the ToString -> parse -> serialize ->
// deserialize identity including labelled-null numbering.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "base/serialize.h"
#include "chase/chase.h"
#include "chase/checkpoint.h"
#include "parser/parser.h"

namespace gqe {
namespace {

TEST(SerializeTest, WriterReaderRoundTrip) {
  BinaryWriter writer;
  writer.WriteU8(7);
  writer.WriteU16(300);
  writer.WriteU32(70000);
  writer.WriteU64(0x0123456789abcdefull);
  writer.WriteI32(-42);
  writer.WriteBool(true);
  writer.WriteString("hello\0world");  // literal truncates at NUL — fine
  writer.WriteString(std::string("a\0b", 3));

  BinaryReader reader(writer.buffer());
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  bool flag = false;
  std::string s1, s2;
  EXPECT_TRUE(reader.ReadU8(&u8));
  EXPECT_TRUE(reader.ReadU16(&u16));
  EXPECT_TRUE(reader.ReadU32(&u32));
  EXPECT_TRUE(reader.ReadU64(&u64));
  EXPECT_TRUE(reader.ReadI32(&i32));
  EXPECT_TRUE(reader.ReadBool(&flag));
  EXPECT_TRUE(reader.ReadString(&s1));
  EXPECT_TRUE(reader.ReadString(&s2));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u16, 300);
  EXPECT_EQ(u32, 70000u);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(i32, -42);
  EXPECT_TRUE(flag);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, std::string("a\0b", 3));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, ReaderIsStickyAndBoundsChecked) {
  BinaryWriter writer;
  writer.WriteU16(9);
  BinaryReader reader(writer.buffer());
  uint32_t u32 = 0;
  EXPECT_FALSE(reader.ReadU32(&u32));  // only 2 bytes available
  EXPECT_FALSE(reader.ok());
  uint8_t u8 = 0;
  EXPECT_FALSE(reader.ReadU8(&u8));  // sticky after first failure
}

TEST(SerializeTest, Crc32KnownVector) {
  // The IEEE CRC-32 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(SerializeTest, EnvelopeRoundTrip) {
  const std::string payload = "some payload bytes";
  std::string bytes = WrapSnapshot(kSnapshotKindChase, payload);
  std::string_view out;
  SnapshotStatus status = UnwrapSnapshot(bytes, kSnapshotKindChase, &out);
  ASSERT_TRUE(status.ok()) << status.message;
  EXPECT_EQ(out, payload);
}

TEST(SerializeTest, EnvelopeRejectsCorruption) {
  const std::string payload(64, 'x');
  const std::string good = WrapSnapshot(kSnapshotKindChase, payload);
  std::string_view out;

  // Bit flip in the payload: checksum mismatch.
  std::string flipped = good;
  flipped[flipped.size() - 5] ^= 0x01;
  EXPECT_EQ(UnwrapSnapshot(flipped, kSnapshotKindChase, &out).error,
            SnapshotError::kChecksumMismatch);

  // Truncated tail.
  EXPECT_EQ(UnwrapSnapshot(std::string_view(good).substr(0, good.size() - 8),
                           kSnapshotKindChase, &out)
                .error,
            SnapshotError::kTruncated);

  // Shorter than the header itself.
  EXPECT_EQ(UnwrapSnapshot("GQ", kSnapshotKindChase, &out).error,
            SnapshotError::kTruncated);

  // Wrong magic.
  std::string magic = good;
  magic[0] = 'X';
  EXPECT_EQ(UnwrapSnapshot(magic, kSnapshotKindChase, &out).error,
            SnapshotError::kBadMagic);

  // Wrong kind.
  EXPECT_EQ(UnwrapSnapshot(good, kSnapshotKindChaseTree, &out).error,
            SnapshotError::kFormatError);

  // Every rejection has a distinct, printable name.
  EXPECT_STREQ(SnapshotErrorName(SnapshotError::kChecksumMismatch),
               "checksum-mismatch");
  EXPECT_STREQ(SnapshotErrorName(SnapshotError::kTruncated), "truncated");
}

TEST(SerializeTest, FileRoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "serialize_file_test.bin";
  const std::string bytes = "atomic write payload";
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
  std::string back;
  ASSERT_TRUE(ReadFileBytes(path, &back).ok());
  EXPECT_EQ(back, bytes);
  std::remove(path.c_str());
  EXPECT_EQ(ReadFileBytes(path, &back).error, SnapshotError::kNotFound);
}

TEST(SerializeTest, InstanceRoundTripWithNulls) {
  Instance original;
  original.Insert(Atom::Make("sedge", {Term::Constant("sa"), Term::Null(11)}));
  original.Insert(Atom::Make("sedge", {Term::Null(11), Term::Null(12)}));
  original.Insert(Atom::Make("slabel", {Term::Constant("sb")}));

  BinaryWriter writer;
  EncodeInterner(&writer);
  EncodeInstance(original, &writer);

  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(DecodeInterner(&reader).ok());
  Instance decoded;
  ASSERT_TRUE(DecodeInstance(&reader, &decoded).ok());
  ASSERT_EQ(decoded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    // Bit-identical atoms in the same insertion order.
    EXPECT_EQ(decoded.atom(i), original.atom(i)) << i;
  }
}

TEST(SerializeTest, InstanceDecodeRejectsGarbage) {
  BinaryWriter writer;
  EncodeInterner(&writer);
  writer.WriteU64(1);           // one fact
  writer.WriteU32(0xFFFFFF);    // nonexistent predicate id
  writer.WriteU32(2);
  writer.WriteU32(0);
  writer.WriteU32(0);
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(DecodeInterner(&reader).ok());
  Instance decoded;
  EXPECT_EQ(DecodeInstance(&reader, &decoded).error,
            SnapshotError::kFormatError);
}

TEST(SerializeTest, ToStringParseSerializeRoundTrip) {
  // The full loop of the round-trip guarantee: an instance with labelled
  // nulls prints (Instance::ToString), the text parses back, and the
  // parsed instance serializes to the same bytes — null numbering
  // included.
  Instance original;
  original.Insert(
      Atom::Make("rtedge", {Term::Constant("rta"), Term::Constant("rtb")}));
  original.Insert(Atom::Make("rtedge", {Term::Constant("rtb"), Term::Null(21)}));
  original.Insert(Atom::Make("rtlives", {Term::Null(21), Term::Null(23)}));

  // ToString renders `{f1, f2, ...}`; strip the braces and terminate each
  // fact to form a parseable program. Facts end with ')', so splitting on
  // "), " never cuts inside an atom's argument list.
  std::string text = original.ToString();
  ASSERT_GE(text.size(), 2u);
  ASSERT_EQ(text.front(), '{');
  ASSERT_EQ(text.back(), '}');
  std::string program_text = text.substr(1, text.size() - 2);
  size_t pos = 0;
  while ((pos = program_text.find("), ", pos)) != std::string::npos) {
    program_text.replace(pos, 3, ").\n");
  }
  program_text += ".";

  ParseResult parsed = ParseProgram(program_text);
  ASSERT_TRUE(parsed.ok) << parsed.error << "\nprogram:\n" << program_text;

  // ToString sorts facts, so compare order-insensitively first...
  EXPECT_EQ(parsed.program.database.ToString(), original.ToString());

  // ...then serialize both and require bit-identical payloads: the same
  // facts, the same term bits, the same labelled-null ids.
  BinaryWriter a, b;
  EncodeInstance(parsed.program.database, &a);
  Instance reordered;
  // Rebuild `original` in ToString (sorted) order so insertion order
  // matches what the parser saw.
  {
    ParseResult reparse = ParseProgram(program_text);
    ASSERT_TRUE(reparse.ok);
    reordered = reparse.program.database;
  }
  EncodeInstance(reordered, &b);
  ASSERT_EQ(a.buffer(), b.buffer());

  // And the serialized form itself round-trips bit-identically.
  BinaryWriter with_interner;
  EncodeInterner(&with_interner);
  EncodeInstance(parsed.program.database, &with_interner);
  BinaryReader reader(with_interner.buffer());
  ASSERT_TRUE(DecodeInterner(&reader).ok());
  Instance decoded;
  ASSERT_TRUE(DecodeInstance(&reader, &decoded).ok());
  BinaryWriter c;
  EncodeInstance(decoded, &c);
  EXPECT_EQ(c.buffer(), a.buffer());
}

TEST(SerializeTest, ToStringRoundTripCommaInsideAtoms) {
  // Multi-argument atoms carry ", " inside their parens; round-tripping a
  // ternary atom checks the null token and argument list survive intact.
  Instance original;
  original.Insert(Atom::Make("rt3", {Term::Constant("u"), Term::Constant("v"),
                                     Term::Null(31)}));
  std::string text = original.ToString();
  // One fact: no top-level ", " split needed at all.
  std::string program_text = text.substr(1, text.size() - 2) + ".";
  ParseResult parsed = ParseProgram(program_text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.program.database.size(), 1u);
  EXPECT_EQ(parsed.program.database.atom(0), original.atom(0));
}

/// Clears the write fault injector even when an ASSERT unwinds the test.
struct ScopedWriteFault {
  explicit ScopedWriteFault(WriteFaultInjectorForTest* injector) {
    SetWriteFaultInjectorForTest(injector);
  }
  ~ScopedWriteFault() { SetWriteFaultInjectorForTest(nullptr); }
};

TEST(SerializeTest, EnospcDuringAtomicWriteKeepsPreviousFile) {
  const std::string path = ::testing::TempDir() + "gqe_fault_enospc.snap";
  std::filesystem::remove(path);
  ASSERT_TRUE(WriteFileAtomic(path, "generation-one").ok());

  // The "device" fills up immediately: the very first write fails with
  // ENOSPC. The failure must be a clean kIoError — and the previously
  // renamed file must be untouched (the tmp file never reached it).
  WriteFaultInjectorForTest injector;
  injector.fail_after_bytes = 0;
  injector.error = ENOSPC;
  {
    ScopedWriteFault scoped(&injector);
    SnapshotStatus status = WriteFileAtomic(path, "generation-two");
    EXPECT_EQ(status.error, SnapshotError::kIoError);
    EXPECT_NE(status.message.find("No space"), std::string::npos)
        << status.message;
  }
  std::string back;
  ASSERT_TRUE(ReadFileBytes(path, &back).ok());
  EXPECT_EQ(back, "generation-one");
}

TEST(SerializeTest, ShortWritesThenFailureKeepsPreviousFile) {
  const std::string path = ::testing::TempDir() + "gqe_fault_short.snap";
  std::filesystem::remove(path);
  ASSERT_TRUE(WriteFileAtomic(path, "old-snapshot-bytes").ok());

  // Room for 7 bytes: the write loop sees short writes (exercising its
  // resume-at-offset arithmetic) before the hard ENOSPC. Still kIoError,
  // still the old file.
  WriteFaultInjectorForTest injector;
  injector.fail_after_bytes = 7;
  injector.error = ENOSPC;
  {
    ScopedWriteFault scoped(&injector);
    SnapshotStatus status =
        WriteFileAtomic(path, "a-much-longer-new-snapshot-payload");
    EXPECT_EQ(status.error, SnapshotError::kIoError);
    EXPECT_EQ(injector.written, 7u);  // the short write happened
  }
  std::string back;
  ASSERT_TRUE(ReadFileBytes(path, &back).ok());
  EXPECT_EQ(back, "old-snapshot-bytes");
  // No half-written tmp file left behind next to the snapshot.
  const std::string dir = ::testing::TempDir();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find("gqe_fault_short.snap.tmp"),
              std::string::npos)
        << entry.path();
  }
}

TEST(SerializeTest, CheckpointSaveFaultKeepsPreviousGeneration) {
  // A real two-round chase provides genuine checkpoint states.
  TgdSet sigma = ParseTgds("swa(X) -> swb(X). swb(X) -> swc(X).");
  Instance db;
  db.Insert(Atom::Make("swa", {Term::Constant("sw1")}));
  db.Insert(Atom::Make("swa", {Term::Constant("sw2")}));

  struct CollectingSink : ChaseCheckpointSink {
    std::vector<ChaseCheckpointState> states;
    void Write(const ChaseCheckpointState& state, bool) override {
      states.push_back(state);
    }
  } sink;
  ChaseOptions options;
  options.checkpoint_sink = &sink;
  options.checkpoint_every = 1;
  Chase(db, sigma, options);
  ASSERT_GE(sink.states.size(), 2u);
  const uint32_t fingerprint = ChaseWorkloadFingerprint(db, sigma, options);

  const std::string dir = ::testing::TempDir() + "gqe_fault_ckpt_dir";
  std::filesystem::remove_all(dir);
  CheckpointDir checkpoints(dir);
  ASSERT_TRUE(checkpoints.Save(sink.states[0], fingerprint).ok());

  // The next generation's save hits ENOSPC mid-snapshot: a clean
  // kIoError, and the directory still loads the previous generation.
  WriteFaultInjectorForTest injector;
  injector.fail_after_bytes = 32;
  injector.error = ENOSPC;
  {
    ScopedWriteFault scoped(&injector);
    SnapshotStatus status = checkpoints.Save(sink.states[1], fingerprint);
    EXPECT_EQ(status.error, SnapshotError::kIoError);
  }

  ChaseCheckpointState loaded;
  uint32_t loaded_fingerprint = 0;
  uint64_t generation = 0;
  ASSERT_TRUE(
      checkpoints.LoadLatest(&loaded, &loaded_fingerprint, &generation).ok());
  EXPECT_EQ(generation, sink.states[0].rounds_completed);
  EXPECT_EQ(loaded_fingerprint, fingerprint);
  EXPECT_EQ(loaded.rounds_completed, sink.states[0].rounds_completed);

  // With space back, the interrupted generation saves and wins.
  ASSERT_TRUE(checkpoints.Save(sink.states[1], fingerprint).ok());
  ASSERT_TRUE(
      checkpoints.LoadLatest(&loaded, &loaded_fingerprint, &generation).ok());
  EXPECT_EQ(generation, sink.states[1].rounds_completed);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gqe
