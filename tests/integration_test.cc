// End-to-end integration tests: full programs through the parser, the
// two evaluation semantics, semantic-treewidth rewriting, and the
// hardness reduction — the workflows the examples and benches exercise.

#include <gtest/gtest.h>

#include "approx/meta.h"
#include "chase/chase.h"
#include "cqs/evaluation.h"
#include "fc/witness.h"
#include "grohe/clique.h"
#include "grohe/reduction.h"
#include "omq/evaluation.h"
#include "parser/parser.h"
#include "query/evaluation.h"
#include "workload/generators.h"

namespace gqe {
namespace {

Term C(const char* name) { return Term::Constant(name); }

TEST(IntegrationTest, UniversityScenarioEndToEnd) {
  ParseResult parsed = ParseProgram(R"(
    iundergrad(uma). igrad(gil).
    iadvises(ada, gil).
    iundergrad(X) -> istudent(X).
    igrad(X) -> istudent(X).
    istudent(X) -> ienrolled(X, U), iuniversity(U).
    igrad(S) -> iadvises(Q, S), iprof(Q).
    iadvises(P, S) -> iprof(P).
    enrolled_q(X) :- ienrolled(X, U), iuniversity(U).
    advised_q(S) :- iadvises(P, S), iprof(P).
  )");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const Program& p = parsed.program;
  ASSERT_TRUE(IsGuardedSet(p.tgds));

  Omq enrolled = Omq::WithFullDataSchema(p.tgds, p.queries.at("enrolled_q"));
  OmqEvalResult r1 = EvaluateOmq(enrolled, p.database);
  EXPECT_TRUE(r1.exact);
  EXPECT_EQ(r1.answers.size(), 2u);  // uma and gil

  Omq advised = Omq::WithFullDataSchema(p.tgds, p.queries.at("advised_q"));
  OmqEvalResult r2 = EvaluateOmq(advised, p.database);
  ASSERT_EQ(r2.answers.size(), 1u);
  EXPECT_EQ(r2.answers[0][0], C("gil"));

  // Closed world sees only recorded facts.
  Cqs cqs{p.tgds, p.queries.at("enrolled_q")};
  EXPECT_EQ(EvaluateCqs(cqs, p.database).answers.size(), 0u);
}

TEST(IntegrationTest, RewritingSpeedsUpAndPreservesAnswers) {
  // Example 4.4 pipeline: decide equivalence, rewrite, compare answers on
  // a constraint-satisfying database.
  Cqs cqs;
  cqs.sigma = ParseTgds("ir2(X) -> ir4(X).");
  cqs.query = ParseUcq(R"(
    iq() :- ip(X2,X1), ip(X4,X1), ip(X2,X3), ip(X4,X3),
            ir1(X1), ir2(X2), ir3(X3), ir4(X4).
  )");
  MetaResult meta = DecideUniformUcqkEquivalenceCqs(cqs, 1);
  ASSERT_TRUE(meta.equivalent);

  for (int seed = 0; seed < 5; ++seed) {
    WorkloadRng rng(seed);
    Instance db;
    auto constant = [seed](uint32_t i) {
      return Term::Constant("i" + std::to_string(seed) + "_" +
                            std::to_string(i));
    };
    for (int i = 0; i < 40; ++i) {
      db.Insert(Atom::Make("ip", {constant(rng.Below(12)),
                                  constant(rng.Below(12))}));
    }
    for (uint32_t i = 0; i < 12; ++i) {
      if (rng.Chance(50)) db.Insert(Atom::Make("ir1", {constant(i)}));
      if (rng.Chance(50)) {
        db.Insert(Atom::Make("ir2", {constant(i)}));
        db.Insert(Atom::Make("ir4", {constant(i)}));
      }
      if (rng.Chance(50)) db.Insert(Atom::Make("ir3", {constant(i)}));
    }
    ASSERT_TRUE(Satisfies(db, cqs.sigma));
    EXPECT_EQ(HoldsBooleanUCQ(cqs.query, db),
              HoldsBooleanUCQ(meta.rewriting, db))
        << "seed " << seed;
  }
}

TEST(IntegrationTest, HardnessReductionSweep) {
  // The full Theorem 5.13 pipeline over a batch of graphs, both with and
  // without constraints.
  TgdSet sigma = ParseTgds(R"(
    izh(X, Y) -> ize(X, Y).
    izv(X, Y) -> ize(X, Y).
  )");
  CliqueReduction with_sigma =
      MakeGridCliqueReduction(3, 3, 3, "izh", "izv", sigma);
  for (int seed = 20; seed < 26; ++seed) {
    Graph g = RandomGraph(6, 50, seed);
    ReductionOutcome outcome = RunVariantReduction(g, with_sigma);
    EXPECT_TRUE(outcome.satisfies_sigma) << "seed " << seed;
    EXPECT_EQ(outcome.query_holds, HasClique(g, 3)) << "seed " << seed;
  }
}

TEST(IntegrationTest, OpenWorldReductionToClosedWorld) {
  // Prop 5.8 pipeline on a parsed program: certain answers through the
  // closed-world engine on D*.
  ParseResult parsed = ParseProgram(R"(
    jcust(cora). jcust(dave). jvip(cora).
    jcust(X) -> jorder(X, O), jord(O).
    jvip(X) -> jpriority(X).
    jq(X) :- jorder(X, O), jord(O).
  )");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const Program& p = parsed.program;
  Omq omq = Omq::WithFullDataSchema(p.tgds, p.queries.at("jq"));
  OmqToCqsReduction reduction = ReduceOmqToCqs(omq, p.database);
  ASSERT_TRUE(reduction.exact);
  ASSERT_TRUE(Satisfies(reduction.dstar, p.tgds));
  std::vector<std::vector<Term>> closed;
  for (auto& tuple : EvaluateUCQ(p.queries.at("jq"), reduction.dstar)) {
    if (p.database.InDomain(tuple[0])) closed.push_back(std::move(tuple));
  }
  EXPECT_EQ(closed, EvaluateOmq(omq, p.database).answers);
}

TEST(IntegrationTest, TwoSemanticsCoincideOnSatisfyingData) {
  // On databases satisfying Σ, open and closed world agree for guarded
  // full sets (no anonymous part): randomized sweep.
  TgdSet sigma = ParseTgds(R"(
    ka(X, Y) -> kb(Y, X).
    kb(X, Y) -> kc(X).
  )");
  UCQ q = ParseUcq("kq(X) :- kb(X, Y), kc(X).");
  for (int seed = 0; seed < 6; ++seed) {
    Instance raw = RandomBinaryDatabase("ka", 7, 9, seed, "k");
    ChaseResult chased = Chase(raw, sigma);
    ASSERT_TRUE(chased.complete);
    const Instance& db = chased.instance;
    ASSERT_TRUE(Satisfies(db, sigma));
    Omq omq = Omq::WithFullDataSchema(sigma, q);
    Cqs cqs{sigma, q};
    EXPECT_EQ(EvaluateOmq(omq, db).answers, EvaluateCqs(cqs, db).answers)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace gqe
