// Network serving tier tests (net/*): the frame codec must reject every
// malformed byte stream (bad magic/version/type, CRC mismatch, oversized
// length prefix) without ever mis-framing; the epoll server must deliver
// responses in request order, byte-identical to the file-manifest path
// whether a request arrives in one write or one byte at a time; and the
// socket-level chaos matrix — mid-frame disconnects, truncated streams,
// bit flips, slow-loris stalls, connection and queue floods — must end
// every time in a structured error frame or a clean close with the
// server still answering, across 1 and 16 concurrent connections.
//
// Everything runs single-threaded: the tests drive NetServer::PollOnce
// directly, interleaved with nonblocking client reads, because workers
// fork without exec and forking is only safe from a single-threaded
// process (base/subprocess.h). This also keeps the suite deterministic
// under TSan/ASan.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "serve/request.h"
#include "serve/service.h"

namespace gqe {
namespace {

constexpr const char* kNetProgram = R"(
nv0(a). nv0(b). nv0(c).
nvlink(a, b). nvlink(b, c).
nv0(X) -> nv1(X).
nv1(X) -> nv2(X).
nv2(X) -> nv3(X).
nvlink(X, Y) -> nvconn(X, Y).
nvq(X) :- nv3(X).
)";

std::string WriteProgram(const std::string& name) {
  std::string path = ::testing::TempDir() + "gqe_net_" + name + ".gqe";
  std::FILE* file = std::fopen(path.c_str(), "w");
  EXPECT_NE(file, nullptr) << path;
  if (file != nullptr) {
    std::fputs(kNetProgram, file);
    std::fclose(file);
  }
  return path;
}

ServeOptions FastServeOptions() {
  ServeOptions options;
  options.concurrency = 4;
  options.backoff_base_ms = 2.0;
  options.backoff_cap_ms = 20.0;
  options.heartbeat_timeout_ms = 400.0;
  return options;
}

NetServerOptions FastNetOptions() {
  NetServerOptions options;
  options.port = 0;
  options.frame_read_timeout_ms = 30000.0;
  options.idle_timeout_ms = 60000.0;
  return options;
}

std::string RequestLine(const std::string& id, const std::string& program,
                        const std::string& query = "nvq") {
  return "id=" + id + " kind=cq program=" + program + " query=" + query;
}

/// What the batch path prints for this request — the golden bytes every
/// network test compares result frames against.
std::string FileManifestLine(const std::string& line) {
  Manifest manifest;
  std::string error;
  EXPECT_TRUE(ParseManifest(line, ".", &manifest, &error)) << error;
  ServeReport report = ServeManifest(manifest, FastServeOptions());
  return report.DeterministicText();
}

class NetFixture : public ::testing::Test {
 protected:
  void Start(const ServeOptions& serve_options,
             const NetServerOptions& net_options) {
    server_ = std::make_unique<NetServer>(serve_options, net_options);
    std::string error;
    ASSERT_TRUE(server_->Listen(&error)) << error;
  }

  std::unique_ptr<NetClient> Connect() {
    auto client = std::make_unique<NetClient>();
    std::string error;
    EXPECT_TRUE(client->Connect("127.0.0.1", server_->port(), 2000, &error))
        << error;
    // The accept happens on the server's next poll turn.
    server_->PollOnce(0);
    return client;
  }

  /// Interleaves server turns with one nonblocking client read until a
  /// non-timeout outcome. Bounded, so a server bug reads as a test
  /// failure instead of a hung suite.
  NetClient::RecvResult PumpRecv(NetClient* client, Frame* frame,
                                 int max_turns = 20000) {
    std::string error;
    for (int i = 0; i < max_turns; ++i) {
      server_->PollOnce(1);
      const NetClient::RecvResult r = client->RecvFrame(frame, 0, &error);
      if (r != NetClient::RecvResult::kTimeout) return r;
    }
    return NetClient::RecvResult::kTimeout;
  }

  bool PumpUntil(const std::function<bool()>& done, int max_turns = 20000) {
    for (int i = 0; i < max_turns; ++i) {
      if (done()) return true;
      server_->PollOnce(1);
    }
    return done();
  }

  std::unique_ptr<NetServer> server_;
};

// ---------------------------------------------------------------------------
// Frame codec.

TEST(FrameCodec, RoundTripsMixedFramesFedWhole) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(FrameType::kRequest, "id=r1 kind=cq"));
  decoder.Feed(EncodeFrame(FrameType::kResult, "result: ok\n"));
  decoder.Feed(EncodeFrame(FrameType::kPing, ""));

  Frame frame;
  std::string error;
  ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.type, FrameType::kRequest);
  EXPECT_EQ(frame.payload, "id=r1 kind=cq");
  ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.type, FrameType::kResult);
  EXPECT_EQ(frame.payload, "result: ok\n");
  ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kNeedMore);
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(FrameCodec, DecodesOneByteAtATime) {
  const std::string bytes =
      EncodeFrame(FrameType::kRequest, "id=r1 kind=chase program=p.gqe");
  FrameDecoder decoder;
  Frame frame;
  std::string error;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(std::string_view(bytes).substr(i, 1));
    EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kNeedMore);
    EXPECT_TRUE(decoder.mid_frame());
  }
  decoder.Feed(std::string_view(bytes).substr(bytes.size() - 1));
  ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.payload, "id=r1 kind=chase program=p.gqe");
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(FrameCodec, EveryPayloadBitFlipIsCaught) {
  const std::string clean = EncodeFrame(FrameType::kRequest, "id=r kind=cq");
  for (size_t byte = kFrameHeaderSize; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = clean;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1u << bit));
      FrameDecoder decoder;
      decoder.Feed(damaged);
      Frame frame;
      std::string error;
      EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError)
          << "byte " << byte << " bit " << bit;
      EXPECT_TRUE(decoder.failed());
    }
  }
}

TEST(FrameCodec, RejectsBadMagicVersionAndType) {
  const std::string clean = EncodeFrame(FrameType::kRequest, "x");
  const size_t damage_offsets[] = {0, 2, 3};  // magic, version, type
  for (size_t offset : damage_offsets) {
    std::string damaged = clean;
    damaged[offset] = '\x63';
    FrameDecoder decoder;
    decoder.Feed(damaged);
    Frame frame;
    std::string error;
    EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError)
        << "offset " << offset;
    EXPECT_FALSE(error.empty());
  }
}

TEST(FrameCodec, OversizedLengthPrefixRejectedFromHeaderAlone) {
  // Only the 12 header bytes arrive; the advertised 2 GiB payload never
  // does. The decoder must fail on the header, not wait (or allocate).
  std::string header = EncodeFrame(FrameType::kRequest, "x");
  header.resize(kFrameHeaderSize);
  header[4] = '\xff';
  header[5] = '\xff';
  header[6] = '\xff';
  header[7] = '\x7f';
  FrameDecoder decoder(1 << 20);
  decoder.Feed(header);
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  EXPECT_NE(error.find("payload"), std::string::npos);
}

TEST(FrameCodec, FailureIsSticky) {
  FrameDecoder decoder;
  decoder.Feed("garbage that is not a frame");
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  // A valid frame after the damage must NOT resynchronize the stream —
  // alignment is gone and resyncing could fabricate frames.
  decoder.Feed(EncodeFrame(FrameType::kPing, ""));
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
}

TEST(FrameCodec, ErrorPayloadSplits) {
  std::string code, detail;
  SplitErrorPayload(MakeErrorPayload("OVERLOADED", "queue full"), &code,
                    &detail);
  EXPECT_EQ(code, "OVERLOADED");
  EXPECT_EQ(detail, "queue full");
  SplitErrorPayload("BARE", &code, &detail);
  EXPECT_EQ(code, "BARE");
  EXPECT_TRUE(detail.empty());
  SplitErrorPayload("CODE only-code-wanted", &code, nullptr);
  EXPECT_EQ(code, "CODE");
}

// ---------------------------------------------------------------------------
// Server behavior over real sockets.

TEST_F(NetFixture, ResultFrameIsByteIdenticalToFileManifestPath) {
  const std::string program = WriteProgram("ident");
  const std::string line = RequestLine("r1", program);
  const std::string golden = FileManifestLine(line);

  Start(FastServeOptions(), FastNetOptions());
  auto client = Connect();
  ASSERT_TRUE(client->SendRequest(line));
  Frame frame;
  ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
  EXPECT_EQ(frame.type, FrameType::kResult);
  EXPECT_EQ(frame.payload, golden);
}

TEST_F(NetFixture, ByteAtATimeRequestMatchesSingleWriteByteForByte) {
  const std::string program = WriteProgram("slow");
  const std::string line = RequestLine("r1", program);
  const std::string bytes = EncodeFrame(FrameType::kRequest, line);

  Start(FastServeOptions(), FastNetOptions());
  auto fast = Connect();
  ASSERT_TRUE(fast->SendRaw(bytes));
  Frame fast_frame;
  ASSERT_EQ(PumpRecv(fast.get(), &fast_frame), NetClient::RecvResult::kFrame);

  // Same request, delivered one byte per server turn: the decoder sees
  // 40+ partial reads instead of one.
  auto slow = Connect();
  for (size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_TRUE(slow->SendRaw(std::string_view(bytes).substr(i, 1)));
    server_->PollOnce(0);
  }
  Frame slow_frame;
  ASSERT_EQ(PumpRecv(slow.get(), &slow_frame), NetClient::RecvResult::kFrame);

  EXPECT_EQ(fast_frame.type, FrameType::kResult);
  EXPECT_EQ(slow_frame.type, FrameType::kResult);
  EXPECT_EQ(slow_frame.payload, fast_frame.payload);
}

TEST_F(NetFixture, ResponsesComeBackInRequestOrder) {
  const std::string program = WriteProgram("order");
  Start(FastServeOptions(), FastNetOptions());
  auto client = Connect();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        client->SendRequest(RequestLine("r" + std::to_string(i), program)));
  }
  for (int i = 0; i < 6; ++i) {
    Frame frame;
    ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
    ASSERT_EQ(frame.type, FrameType::kResult);
    EXPECT_NE(frame.payload.find("id=r" + std::to_string(i) + " "),
              std::string::npos)
        << frame.payload;
  }
}

TEST_F(NetFixture, PingPongAndHalfCloseDrain) {
  const std::string program = WriteProgram("half");
  Start(FastServeOptions(), FastNetOptions());
  auto client = Connect();
  ASSERT_TRUE(client->SendFrame(FrameType::kPing, "probe"));
  Frame frame;
  ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
  EXPECT_EQ(frame.type, FrameType::kPong);
  EXPECT_EQ(frame.payload, "probe");

  // Half-close with a request still owed: the response must arrive,
  // then the server closes cleanly.
  ASSERT_TRUE(client->SendRequest(RequestLine("r1", program)));
  client->ShutdownWrite();
  ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
  EXPECT_EQ(frame.type, FrameType::kResult);
  EXPECT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kClosed);
  EXPECT_TRUE(PumpUntil([&] { return server_->connections() == 0; }));
}

TEST_F(NetFixture, BadRequestKeepsConnectionUsable) {
  const std::string program = WriteProgram("bad");
  Start(FastServeOptions(), FastNetOptions());
  auto client = Connect();
  ASSERT_TRUE(client->SendRequest("id=r1 kind=cq bogus-field=1"));
  Frame frame;
  ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kError);
  std::string code;
  SplitErrorPayload(frame.payload, &code, nullptr);
  EXPECT_EQ(code, "BAD_REQUEST");

  // Request-scoped error: the same connection still serves.
  ASSERT_TRUE(client->SendRequest(RequestLine("r2", program)));
  ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
  EXPECT_EQ(frame.type, FrameType::kResult);
  EXPECT_EQ(server_->stats().bad_requests, 1u);
}

TEST_F(NetFixture, ConnectionCapShedsWithStructuredOverload) {
  const std::string program = WriteProgram("cap");
  NetServerOptions net = FastNetOptions();
  net.max_connections = 2;
  Start(FastServeOptions(), net);
  auto a = Connect();
  auto b = Connect();
  auto c = Connect();  // over the cap
  Frame frame;
  ASSERT_EQ(PumpRecv(c.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kError);
  std::string code;
  SplitErrorPayload(frame.payload, &code, nullptr);
  EXPECT_EQ(code, "OVERLOADED");
  EXPECT_EQ(PumpRecv(c.get(), &frame), NetClient::RecvResult::kClosed);

  // The under-cap connections were untouched.
  ASSERT_TRUE(a->SendRequest(RequestLine("r1", program)));
  ASSERT_EQ(PumpRecv(a.get(), &frame), NetClient::RecvResult::kFrame);
  EXPECT_EQ(frame.type, FrameType::kResult);
  EXPECT_EQ(server_->stats().shed_overloaded, 1u);
}

TEST_F(NetFixture, QueueCapacityShedsLaterRequestsInOrder) {
  const std::string program = WriteProgram("queue");
  NetServerOptions net = FastNetOptions();
  net.queue_capacity = 1;
  net.coalesce = false;  // identical requests must not share one slot here
  ServeOptions serve = FastServeOptions();
  serve.concurrency = 1;
  Start(serve, net);
  auto client = Connect();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        client->SendRequest(RequestLine("r" + std::to_string(i), program)));
  }
  // All four frames land before the engine runs: r0 admitted, r1–r3
  // shed. FIFO ordering still holds — the shed errors queue behind r0's
  // result.
  Frame frame;
  ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kResult);
  EXPECT_NE(frame.payload.find("id=r0 "), std::string::npos);
  for (int i = 1; i < 4; ++i) {
    ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
    ASSERT_EQ(frame.type, FrameType::kError) << i;
    std::string code;
    SplitErrorPayload(frame.payload, &code, nullptr);
    EXPECT_EQ(code, "OVERLOADED");
  }
  EXPECT_EQ(server_->stats().shed_overloaded, 3u);
  EXPECT_EQ(server_->stats().admitted, 1u);
}

TEST_F(NetFixture, CoalescingSharesOneEvaluationAcrossWaiters) {
  const std::string program = WriteProgram("coalesce");
  Start(FastServeOptions(), FastNetOptions());
  auto a = Connect();
  auto b = Connect();
  // Same evaluation (ids differ — the coalesce key ignores them), two
  // on one connection and one on another, all in flight together.
  ASSERT_TRUE(a->SendRequest(RequestLine("a1", program)));
  ASSERT_TRUE(a->SendRequest(RequestLine("a2", program)));
  ASSERT_TRUE(b->SendRequest(RequestLine("b1", program)));

  Frame frame;
  ASSERT_EQ(PumpRecv(a.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kResult);
  EXPECT_NE(frame.payload.find("id=a1 "), std::string::npos);
  ASSERT_EQ(PumpRecv(a.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kResult);
  EXPECT_NE(frame.payload.find("id=a2 "), std::string::npos);
  ASSERT_EQ(PumpRecv(b.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kResult);
  EXPECT_NE(frame.payload.find("id=b1 "), std::string::npos);

  // One worker evaluation served all three (the frames arrived in one
  // turn, before the engine could finish the first).
  EXPECT_EQ(server_->stats().admitted, 1u);
  EXPECT_EQ(server_->stats().coalesced, 2u);
}

TEST_F(NetFixture, SlowLorisGetsTimeoutFrameAndClose) {
  NetServerOptions net = FastNetOptions();
  net.frame_read_timeout_ms = 30.0;
  Start(FastServeOptions(), net);
  auto client = Connect();
  // Six header bytes, then silence.
  const std::string bytes = EncodeFrame(FrameType::kRequest, "id=x kind=cq");
  ASSERT_TRUE(client->SendRaw(std::string_view(bytes).substr(0, 6)));
  Frame frame;
  ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kError);
  std::string code;
  SplitErrorPayload(frame.payload, &code, nullptr);
  EXPECT_EQ(code, "TIMEOUT");
  EXPECT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kClosed);
  EXPECT_EQ(server_->stats().timeouts, 1u);
}

TEST_F(NetFixture, IdleConnectionsAreReaped) {
  NetServerOptions net = FastNetOptions();
  net.idle_timeout_ms = 20.0;
  Start(FastServeOptions(), net);
  auto client = Connect();
  EXPECT_EQ(server_->connections(), 1u);
  EXPECT_TRUE(PumpUntil([&] { return server_->connections() == 0; }));
  Frame frame;
  std::string error;
  EXPECT_EQ(client->RecvFrame(&frame, 100, &error),
            NetClient::RecvResult::kClosed);
}

TEST_F(NetFixture, GracefulDrainFinishesInFlightThenExits) {
  const std::string program = WriteProgram("drain");
  Start(FastServeOptions(), FastNetOptions());
  auto client = Connect();
  ASSERT_TRUE(client->SendRequest(RequestLine("r1", program)));
  // Let the request frame reach the engine, then start draining.
  EXPECT_TRUE(PumpUntil([&] { return server_->stats().admitted == 1; }));
  server_->RequestDrain();

  // A request submitted after the drain began is refused, structured.
  ASSERT_TRUE(client->SendRequest(RequestLine("r2", program)));
  Frame frame;
  ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kResult);  // r1 finishes first (FIFO)
  EXPECT_NE(frame.payload.find("id=r1 "), std::string::npos);
  ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kError);
  std::string code;
  SplitErrorPayload(frame.payload, &code, nullptr);
  EXPECT_EQ(code, "SHUTTING_DOWN");

  // With nothing owed, the drain completes: PollOnce reports done.
  EXPECT_TRUE(PumpUntil([&] { return !server_->PollOnce(1); }));
  EXPECT_EQ(server_->connections(), 0u);
}

// ---------------------------------------------------------------------------
// Chaos matrix: every fault, at 1 and 16 concurrent connections, ends in
// a structured error or a clean close — and the server still answers.

enum class ChaosFault {
  kMidframeDisconnect,
  kTruncateThenEof,
  kBitflip,
  kOversize,
  kBadMagic,
  kUnknownType,
};

class NetChaosTest : public NetFixture,
                     public ::testing::WithParamInterface<int> {};

TEST_P(NetChaosTest, EveryFaultEndsStructuredAndServerSurvives) {
  const int n_conns = GetParam();
  const std::string program = WriteProgram("chaos" + std::to_string(n_conns));
  const std::string line = RequestLine("c", program);
  const std::string valid = EncodeFrame(FrameType::kRequest, line);

  NetServerOptions net = FastNetOptions();
  net.max_connections = 64;
  Start(FastServeOptions(), net);

  const ChaosFault faults[] = {
      ChaosFault::kMidframeDisconnect, ChaosFault::kTruncateThenEof,
      ChaosFault::kBitflip,            ChaosFault::kOversize,
      ChaosFault::kBadMagic,           ChaosFault::kUnknownType,
  };
  std::vector<std::unique_ptr<NetClient>> clients;
  std::vector<ChaosFault> applied;
  for (int i = 0; i < n_conns; ++i) {
    auto client = Connect();
    const ChaosFault fault = faults[i % (sizeof(faults) / sizeof(faults[0]))];
    std::string damaged = valid;
    switch (fault) {
      case ChaosFault::kMidframeDisconnect:
        ASSERT_TRUE(client->SendRaw(
            std::string_view(damaged).substr(0, kFrameHeaderSize + 3)));
        client->Close();
        break;
      case ChaosFault::kTruncateThenEof:
        ASSERT_TRUE(client->SendRaw(
            std::string_view(damaged).substr(0, damaged.size() - 4)));
        client->ShutdownWrite();
        break;
      case ChaosFault::kBitflip:
        damaged[kFrameHeaderSize + (i % 7)] ^= 0x10;
        ASSERT_TRUE(client->SendRaw(damaged));
        break;
      case ChaosFault::kOversize:
        damaged[4] = '\xff';
        damaged[5] = '\xff';
        damaged[6] = '\xff';
        damaged[7] = '\x7f';
        ASSERT_TRUE(client->SendRaw(damaged));
        break;
      case ChaosFault::kBadMagic:
        damaged[0] = '\x00';
        ASSERT_TRUE(client->SendRaw(damaged));
        break;
      case ChaosFault::kUnknownType:
        damaged[3] = '\x4d';
        ASSERT_TRUE(client->SendRaw(damaged));
        break;
    }
    applied.push_back(fault);
    clients.push_back(std::move(client));
    server_->PollOnce(0);
  }

  // Every faulted connection resolves: a structured PROTOCOL error, a
  // clean close, or a reset — never a hang, never a result for a
  // corrupted request.
  for (int i = 0; i < n_conns; ++i) {
    NetClient* client = clients[i].get();
    if (!client->connected()) continue;  // mid-frame disconnect case
    bool resolved = false;
    for (int turns = 0; turns < 20000 && !resolved; ++turns) {
      Frame frame;
      std::string error;
      switch (PumpRecv(client, &frame, 1)) {
        case NetClient::RecvResult::kFrame: {
          ASSERT_EQ(frame.type, FrameType::kError)
              << "conn " << i << " fault " << static_cast<int>(applied[i]);
          std::string code;
          SplitErrorPayload(frame.payload, &code, nullptr);
          EXPECT_EQ(code, "PROTOCOL");
          break;  // close follows
        }
        case NetClient::RecvResult::kClosed:
        case NetClient::RecvResult::kError:
          resolved = true;
          break;
        case NetClient::RecvResult::kTimeout:
          break;
      }
    }
    EXPECT_TRUE(resolved) << "conn " << i << " never resolved";
  }
  EXPECT_TRUE(PumpUntil([&] { return server_->connections() == 0; }));

  // The proof of survival: a clean request still round-trips, and its
  // bytes still match the file-manifest path.
  const std::string golden = FileManifestLine(line);
  auto survivor = Connect();
  ASSERT_TRUE(survivor->SendRaw(valid));
  Frame frame;
  ASSERT_EQ(PumpRecv(survivor.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kResult);
  EXPECT_EQ(frame.payload, golden);
}

INSTANTIATE_TEST_SUITE_P(Conns, NetChaosTest, ::testing::Values(1, 16));

// ---------------------------------------------------------------------------
// Durable serving: the write-ahead journal across daemon death.

/// A fresh journal directory per test case.
std::string JournalDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "gqe_net_journal_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

ServeOptions JournaledServeOptions(const std::string& dir) {
  ServeOptions options = FastServeOptions();
  options.journal_dir = dir;
  options.journal_fsync = false;  // the tests kill processes, not power
  return options;
}

TEST_F(NetFixture, CrashRestartUnderLoadRepliesByteIdentically) {
  // The PR's acceptance contract: kill the daemon mid-flight under >= 4
  // concurrent connections, restart it on the same journal, have every
  // client reconnect and resend — and every result line must be
  // byte-identical to a fault-free run of the same requests. Destroying
  // the NetServer is this harness's `kill -9`: in-flight workers die
  // un-reaped and nothing is flushed beyond what the journal already
  // recorded at admission time.
  const std::string program = WriteProgram("crashload");
  const std::string dir = JournalDir("crashload");
  constexpr int kConns = 4;
  constexpr int kRequests = 8;

  std::vector<std::string> lines;
  std::vector<std::string> golden;
  for (int i = 0; i < kRequests; ++i) {
    // Distinct budgets: eight real evaluations, not one coalesced one.
    std::string line = RequestLine("n" + std::to_string(i), program) +
                       " max_facts=" + std::to_string(10000 + i);
    golden.push_back(FileManifestLine(line));
    lines.push_back(std::move(line));
  }

  Start(JournaledServeOptions(dir), FastNetOptions());
  std::vector<std::unique_ptr<NetClient>> clients;
  for (int c = 0; c < kConns; ++c) clients.push_back(Connect());
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(clients[i % kConns]->SendRequest(lines[i]));
  }
  // Let the load get genuinely mid-flight: everything admitted, some
  // (but not necessarily all) completed.
  EXPECT_TRUE(PumpUntil([&] {
    return server_->stats().admitted == kRequests &&
           server_->stats().completed >= 2;
  }));
  server_.reset();  // kill -9

  // Restart on the same journal; clients reconnect and resend all.
  Start(JournaledServeOptions(dir), FastNetOptions());
  clients.clear();
  for (int c = 0; c < kConns; ++c) clients.push_back(Connect());
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(clients[i % kConns]->SendRequest(lines[i]));
  }
  for (int i = 0; i < kRequests; ++i) {
    Frame frame;
    ASSERT_EQ(PumpRecv(clients[i % kConns].get(), &frame),
              NetClient::RecvResult::kFrame)
        << "request " << i;
    ASSERT_EQ(frame.type, FrameType::kResult) << frame.payload;
    EXPECT_EQ(frame.payload, golden[i]) << "request " << i;
  }
  // Completed-before-crash requests came from the journal cache or were
  // reattached to their recovered evaluation — never re-admitted.
  EXPECT_GT(server_->stats().journal_hits + server_->stats().reattached, 0u);
}

TEST_F(NetFixture, DrainThenRestartServesFromJournalWithoutRecompute) {
  // SIGTERM drain flushes the journal before exit 0; the restarted
  // daemon then serves the same id straight from the journal cache:
  // byte-identical bytes, zero admissions, zero workers.
  const std::string program = WriteProgram("drainrestart");
  const std::string dir = JournalDir("drainrestart");
  const std::string line = RequestLine("dr1", program);

  Start(JournaledServeOptions(dir), FastNetOptions());
  auto client = Connect();
  ASSERT_TRUE(client->SendRequest(line));
  Frame frame;
  ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kResult);
  const std::string first = frame.payload;

  server_->RequestDrain();
  client.reset();
  EXPECT_TRUE(PumpUntil([&] { return !server_->PollOnce(1); }));
  server_.reset();

  Start(JournaledServeOptions(dir), FastNetOptions());
  auto again = Connect();
  ASSERT_TRUE(again->SendRequest(line));
  ASSERT_EQ(PumpRecv(again.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kResult);
  EXPECT_EQ(frame.payload, first);
  EXPECT_EQ(server_->stats().journal_hits, 1u);
  EXPECT_EQ(server_->stats().admitted, 0u);
}

TEST_F(NetFixture, DuplicateIdServedFromJournalNotAWorker) {
  // Idempotent replay inside one daemon lifetime: a resend of an id
  // that already completed answers from the journal-backed cache —
  // byte-identical, no second admission. An id reused for a DIFFERENT
  // request is rejected as a bad request instead.
  const std::string program = WriteProgram("dupid");
  const std::string dir = JournalDir("dupid");
  const std::string line = RequestLine("dup1", program);

  Start(JournaledServeOptions(dir), FastNetOptions());
  auto client = Connect();
  ASSERT_TRUE(client->SendRequest(line));
  Frame frame;
  ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kResult);
  const std::string first = frame.payload;

  ASSERT_TRUE(client->SendRequest(line));
  ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kResult);
  EXPECT_EQ(frame.payload, first);
  EXPECT_EQ(server_->stats().journal_hits, 1u);
  EXPECT_EQ(server_->stats().admitted, 1u);

  ASSERT_TRUE(client->SendRequest(line + " max_facts=77"));
  ASSERT_EQ(PumpRecv(client.get(), &frame), NetClient::RecvResult::kFrame);
  ASSERT_EQ(frame.type, FrameType::kError);
  std::string code;
  SplitErrorPayload(frame.payload, &code, nullptr);
  EXPECT_EQ(code, "BAD_REQUEST");
}

TEST_F(NetFixture, FdExhaustionShedsWithBackoffAndRecovers) {
  // accept4 failing with EMFILE must not melt into a hot accept loop:
  // the listener is unregistered with backoff and re-armed as soon as a
  // connection close frees an fd — at which point the queued connection
  // is accepted and served normally.
  NetServerOptions net = FastNetOptions();
  net.fd_limit_for_test = 2;
  net.accept_backoff_ms = 30.0;
  Start(FastServeOptions(), net);

  auto c1 = Connect();
  auto c2 = Connect();
  EXPECT_EQ(server_->connections(), 2u);

  // The third connect lands in the listen backlog; the server's accept
  // attempt trips the (simulated) EMFILE and pauses the listener.
  NetClient c3;
  std::string error;
  ASSERT_TRUE(c3.Connect("127.0.0.1", server_->port(), 2000, &error)) << error;
  EXPECT_TRUE(PumpUntil([&] { return server_->stats().fd_exhausted > 0; }));
  EXPECT_EQ(server_->connections(), 2u);

  // Freeing one fd re-arms the listener; c3 gets accepted and served.
  c1.reset();
  EXPECT_TRUE(PumpUntil([&] {
    server_->PollOnce(1);
    return server_->stats().accepted == 3;
  }));
  ASSERT_TRUE(c3.SendFrame(FrameType::kPing, "still-there"));
  Frame frame;
  ASSERT_EQ(PumpRecv(&c3, &frame), NetClient::RecvResult::kFrame);
  EXPECT_EQ(frame.type, FrameType::kPong);
  EXPECT_EQ(frame.payload, "still-there");
}

}  // namespace
}  // namespace gqe
