#include <gtest/gtest.h>

#include "parser/parser.h"
#include "query/acyclic.h"
#include "query/evaluation.h"
#include "query/tw_evaluation.h"
#include "workload/generators.h"

namespace gqe {
namespace {

TEST(GyoTest, PathIsAcyclic) {
  CQ cq = ParseCq("ay1() :- aye(X, Y), aye(Y, Z), aye(Z, W).");
  EXPECT_TRUE(IsAcyclicCq(cq));
}

TEST(GyoTest, TriangleIsCyclic) {
  CQ cq = ParseCq("ay2() :- aye(X, Y), aye(Y, Z), aye(Z, X).");
  EXPECT_FALSE(IsAcyclicCq(cq));
}

TEST(GyoTest, TernaryGuardMakesTriangleAcyclic) {
  // alpha-acyclicity: the triangle plus a covering ternary atom IS
  // acyclic (the guard is an ear witness).
  CQ cq = ParseCq(
      "ay3() :- aye(X, Y), aye(Y, Z), aye(Z, X), ayg(X, Y, Z).");
  EXPECT_TRUE(IsAcyclicCq(cq));
}

TEST(GyoTest, StarIsAcyclic) {
  CQ cq = ParseCq("ay4() :- aye(C, A), aye(C, B), aye(C, D2).");
  EXPECT_TRUE(IsAcyclicCq(cq));
}

TEST(GyoTest, CycleLengthFourIsCyclic) {
  CQ cq = ParseCq("ay5() :- aye(A, B), aye(B, C), aye(C, D2), aye(D2, A).");
  EXPECT_FALSE(IsAcyclicCq(cq));
}

TEST(YannakakisTest, MatchesBacktrackingOnPaths) {
  Instance db = GridDatabase("ayh", "ayv", 4, 4);
  for (int len : {1, 2, 3, 5}) {
    CQ cq = PathQuery("ayh", len);
    auto result = HoldsAcyclicCq(cq, db, {});
    ASSERT_TRUE(result.has_value()) << len;
    EXPECT_EQ(*result, HoldsBooleanCQ(cq, db)) << len;
  }
}

TEST(YannakakisTest, RejectsCyclicQueries) {
  CQ cq = ParseCq("ay6() :- aye(X, Y), aye(Y, Z), aye(Z, X).");
  Instance db = RandomBinaryDatabase("aye", 6, 12, 3, "ay");
  EXPECT_FALSE(HoldsAcyclicCq(cq, db, {}).has_value());
}

TEST(YannakakisTest, CandidateAnswers) {
  Instance db = ParseDatabase("aye(a, b). aye(b, c). ayl(c).");
  CQ cq = ParseCq("ay7(X) :- aye(X, Y), ayl(Y).");
  auto yes = HoldsAcyclicCq(cq, db, {Term::Constant("b")});
  ASSERT_TRUE(yes.has_value());
  EXPECT_TRUE(*yes);
  auto no = HoldsAcyclicCq(cq, db, {Term::Constant("a")});
  ASSERT_TRUE(no.has_value());
  EXPECT_FALSE(*no);
}

TEST(YannakakisTest, DisconnectedComponentsBothChecked) {
  CQ cq = ParseCq("ay8() :- aye(X, Y), ayl(Z).");
  Instance with_both = ParseDatabase("aye(a, b). ayl(c).");
  Instance missing = ParseDatabase("aye(a, b).");
  EXPECT_TRUE(*HoldsAcyclicCq(cq, with_both, {}));
  EXPECT_FALSE(*HoldsAcyclicCq(cq, missing, {}));
}

class YannakakisRandomAgreement : public ::testing::TestWithParam<int> {};

TEST_P(YannakakisRandomAgreement, AgreesWithTreeDpAndBacktracking) {
  const int seed = GetParam();
  WorkloadRng rng(seed);
  Instance db = RandomBinaryDatabase("aye", 8, 20, seed, "ar");
  // Random acyclic (star/path-shaped) query.
  std::vector<Atom> atoms;
  const int len = 2 + rng.Below(3);
  for (int i = 0; i < len; ++i) {
    atoms.push_back(
        Atom::Make("aye", {Term::Variable("av" + std::to_string(i)),
                           Term::Variable("av" + std::to_string(i + 1))}));
  }
  CQ cq({}, atoms);
  auto yannakakis = HoldsAcyclicCq(cq, db, {});
  ASSERT_TRUE(yannakakis.has_value());
  EXPECT_EQ(*yannakakis, HoldsBooleanCQ(cq, db));
  EXPECT_EQ(*yannakakis, HoldsBooleanCqTreeDp(cq, db));
}

INSTANTIATE_TEST_SUITE_P(Seeds, YannakakisRandomAgreement,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace gqe
