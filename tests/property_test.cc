// Property-based tests: randomized cross-checks of independent engines
// and classical invariants, swept over seeds with TEST_P.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>

#include "chase/chase.h"
#include "graph/treewidth.h"
#include "guarded/omq_eval.h"
#include "linear/linear_chase.h"
#include "query/acyclic.h"
#include "query/containment.h"
#include "query/contraction.h"
#include "query/core.h"
#include "query/evaluation.h"
#include "query/homomorphism.h"
#include "query/substitution.h"
#include "query/tw_evaluation.h"
#include "verify/verifier.h"
#include "verify/witness.h"
#include "workload/generators.h"

namespace gqe {
namespace {

// ---------------------------------------------------------------------
// Random CQ evaluation: backtracking join vs Prop 2.1 tree DP.
// ---------------------------------------------------------------------

class RandomCqAgreement : public ::testing::TestWithParam<int> {};

TEST_P(RandomCqAgreement, TreeDpMatchesBacktracking) {
  const int seed = GetParam();
  WorkloadRng rng(seed);
  Instance db = RandomBinaryDatabase("pr1e", 10, 25, seed, "p1");
  // Random Boolean CQ: 3-5 atoms over 3-5 variables.
  const int num_vars = 3 + rng.Below(3);
  const int num_atoms = 3 + rng.Below(3);
  std::vector<Atom> atoms;
  for (int i = 0; i < num_atoms; ++i) {
    atoms.push_back(Atom::Make(
        "pr1e",
        {Term::Variable("pv" + std::to_string(rng.Below(num_vars))),
         Term::Variable("pv" + std::to_string(rng.Below(num_vars)))}));
  }
  CQ cq({}, atoms);
  EXPECT_EQ(HoldsBooleanCQ(cq, db), HoldsBooleanCqTreeDp(cq, db))
      << cq.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCqAgreement, ::testing::Range(0, 25));

// ---------------------------------------------------------------------
// Three-engine oracle agreement at the *certificate* level (ISSUE 5):
// the generic backtracking join, the Prop 2.1 tree-decomposition DP,
// and Yannakakis (on acyclic queries) must decide c̄ ∈ q(D) identically,
// AND every positive verdict must come with a certificate the
// independent checker accepts — the DP's stitched homomorphism, the
// Yannakakis join tree plus traceback homomorphism. A plausible "yes"
// whose witness does not re-check counts as a disagreement. Failures
// print a minimized reproducer — schema, database and query in parser
// syntax — replayable directly through ParseProgram.
// ---------------------------------------------------------------------

struct OracleVerdicts {
  bool backtracking = false;
  bool tree_dp = false;
  std::optional<bool> yannakakis;  // nullopt: query not acyclic
  /// Non-empty when a positive verdict's certificate failed the
  /// independent checker (names the engine and the structured reason).
  std::string certificate_error;

  bool Agree() const {
    if (!certificate_error.empty()) return false;
    if (backtracking != tree_dp) return false;
    return !yannakakis.has_value() || *yannakakis == backtracking;
  }
  std::string ToString() const {
    std::string out = "backtracking=";
    out += backtracking ? "true" : "false";
    out += " tree_dp=";
    out += tree_dp ? "true" : "false";
    out += " yannakakis=";
    out += !yannakakis.has_value() ? "n/a (cyclic)"
                                   : (*yannakakis ? "true" : "false");
    if (!certificate_error.empty()) {
      out += " certificate: " + certificate_error;
    }
    return out;
  }
};

OracleVerdicts EvaluateOracles(const CQ& cq, const Instance& db,
                               const std::vector<Term>& answer) {
  OracleVerdicts v;
  v.backtracking = HoldsCQ(cq, db, answer);
  HomWitness dp_hom;
  v.tree_dp = HoldsCqTreeDpWithWitness(cq, db, answer, &dp_hom);
  if (v.tree_dp) {
    VerifyResult check = VerifyHomomorphism(UCQ({cq}), db, dp_hom);
    if (!check.ok()) {
      v.certificate_error = "tree-dp [" +
                            std::string(VerifyCodeName(check.code)) + "] " +
                            check.reason;
    }
  }
  JoinTreeWitness tree;
  HomWitness yan_hom;
  v.yannakakis = HoldsAcyclicCq(cq, db, answer, &tree, &yan_hom);
  if (v.yannakakis.has_value() && v.certificate_error.empty()) {
    // The engine's tree is for the candidate-grounded query (see
    // acyclic.h) — check it against exactly that.
    Substitution candidate;
    for (size_t i = 0; i < cq.answer_vars().size(); ++i) {
      candidate.Set(cq.answer_vars()[i], answer[i]);
    }
    std::vector<Atom> grounded_atoms;
    for (const Atom& atom : cq.atoms()) {
      grounded_atoms.push_back(candidate.Apply(atom));
    }
    CQ grounded({}, grounded_atoms);
    VerifyResult tree_check = VerifyJoinTree(grounded, tree);
    if (!tree_check.ok()) {
      v.certificate_error = "join-tree [" +
                            std::string(VerifyCodeName(tree_check.code)) +
                            "] " + tree_check.reason;
    } else if (*v.yannakakis) {
      VerifyResult hom_check = VerifyHomomorphism(UCQ({cq}), db, yan_hom);
      if (!hom_check.ok()) {
        v.certificate_error = "yannakakis [" +
                              std::string(VerifyCodeName(hom_check.code)) +
                              "] " + hom_check.reason;
      }
    }
  }
  return v;
}

/// Renders a disagreement as a runnable parser-syntax program. Generated
/// variables are uppercase and constants lowercase, so the text parses
/// back to the same instance/query.
std::string FormatReproducer(const CQ& cq, const Instance& db,
                             const std::vector<Term>& answer,
                             const OracleVerdicts& verdicts) {
  std::string out = "% oracle disagreement: " + verdicts.ToString() + "\n";
  if (!answer.empty()) {
    out += "% candidate answer: (";
    for (size_t i = 0; i < answer.size(); ++i) {
      if (i > 0) out += ", ";
      out += answer[i].ToString();
    }
    out += ")\n";
  }
  for (const Atom& fact : db.atoms()) out += fact.ToString() + ".\n";
  out += "q(";
  for (size_t i = 0; i < cq.answer_vars().size(); ++i) {
    if (i > 0) out += ", ";
    out += cq.answer_vars()[i].ToString();
  }
  out += ") :- " + AtomsToString(cq.atoms()) + ".\n";
  return out;
}

/// Greedy delta-minimization: drop database facts, then query atoms, as
/// long as the engines still disagree. Quadratic, but reproducers start
/// tiny.
std::string MinimizeAndFormat(CQ cq, Instance db, std::vector<Term> answer) {
  auto disagrees = [&answer](const CQ& q, const Instance& d) {
    return !EvaluateOracles(q, d, answer).Agree();
  };
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (size_t drop = 0; drop < db.size(); ++drop) {
      Instance smaller;
      for (size_t i = 0; i < db.size(); ++i) {
        if (i != drop) smaller.Insert(db.atom(i));
      }
      if (disagrees(cq, smaller)) {
        db = std::move(smaller);
        shrunk = true;
        break;
      }
    }
    if (shrunk) continue;
    for (size_t drop = 0; cq.atoms().size() > 1 && drop < cq.atoms().size();
         ++drop) {
      std::vector<Atom> fewer;
      for (size_t i = 0; i < cq.atoms().size(); ++i) {
        if (i != drop) fewer.push_back(cq.atoms()[i]);
      }
      CQ candidate(cq.answer_vars(), std::move(fewer));
      if (!candidate.Validate()) continue;
      if (disagrees(candidate, db)) {
        cq = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return FormatReproducer(cq, db, answer, EvaluateOracles(cq, db, answer));
}

class OracleAgreement : public ::testing::TestWithParam<int> {};

TEST_P(OracleAgreement, BacktrackingTreeDpYannakakisAgree) {
  const int seed = GetParam();
  WorkloadRng rng(seed * 9176 + 17);
  Instance db = RandomBinaryDatabase("oag0", 8, 18, seed * 3 + 1, "oa");
  db.InsertAll(RandomBinaryDatabase("oag1", 8, 14, seed * 3 + 2, "oa"));
  // Random query over both predicates: 2-4 atoms, 2-4 variables, answer
  // variable OV0. Roughly half the draws are acyclic, exercising the
  // Yannakakis oracle too.
  const int num_vars = 2 + rng.Below(3);
  const int num_atoms = 2 + rng.Below(3);
  std::vector<Atom> atoms;
  auto var = [&](uint32_t i) {
    return Term::Variable("OV" + std::to_string(i));
  };
  atoms.push_back(Atom::Make("oag0", {var(0), var(rng.Below(num_vars))}));
  for (int i = 1; i < num_atoms; ++i) {
    atoms.push_back(
        Atom::Make(rng.Chance(50) ? "oag0" : "oag1",
                   {var(rng.Below(num_vars)), var(rng.Below(num_vars))}));
  }
  // Boolean agreement.
  CQ boolean_cq({}, atoms);
  OracleVerdicts verdict = EvaluateOracles(boolean_cq, db, {});
  EXPECT_TRUE(verdict.Agree())
      << MinimizeAndFormat(boolean_cq, db, {});
  // Per-candidate agreement for the unary query q(OV0).
  CQ unary_cq({var(0)}, atoms);
  size_t checked = 0;
  for (Term candidate : db.ActiveDomain()) {
    if (++checked > 6) break;  // keep the sweep cheap
    OracleVerdicts v = EvaluateOracles(unary_cq, db, {candidate});
    EXPECT_TRUE(v.Agree()) << MinimizeAndFormat(unary_cq, db, {candidate});
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleAgreement, ::testing::Range(0, 30));

// ---------------------------------------------------------------------
// Chase universality (Prop 2.2) on random weakly-acyclic guarded sets.
// ---------------------------------------------------------------------

class ChaseUniversality : public ::testing::TestWithParam<int> {};

TEST_P(ChaseUniversality, ChaseMapsIntoEveryModel) {
  const int seed = GetParam();
  // Acyclic inclusion dependencies: pr2a -> pr2b -> pr2c (with random
  // argument permutations), so the chase terminates.
  WorkloadRng rng(seed);
  Term x = Term::Variable("X");
  Term y = Term::Variable("Y");
  Term z = Term::Variable("Z");
  TgdSet sigma;
  sigma.push_back(Tgd({Atom::Make("pr2a", {x, y})},
                      {rng.Chance(50) ? Atom::Make("pr2b", {x, y})
                                      : Atom::Make("pr2b", {y, x})}));
  sigma.push_back(Tgd({Atom::Make("pr2b", {x, y})},
                      {rng.Chance(50) ? Atom::Make("pr2c", {x, z})
                                      : Atom::Make("pr2c", {y, z})}));
  ASSERT_TRUE(IsObliviousChaseTerminating(sigma));
  Instance db = RandomBinaryDatabase("pr2a", 5, 6, seed, "p2");
  ChaseResult chased = Chase(db, sigma);
  ASSERT_TRUE(chased.complete);
  // Build another model by over-saturating: add pr2b/pr2c facts over a
  // fixed constant.
  Instance model;
  model.InsertAll(db);
  Term w = Term::Constant("p2w");
  for (Term t : db.ActiveDomain()) {
    model.Insert(Atom::Make("pr2b", {t, w}));
    model.Insert(Atom::Make("pr2b", {w, t}));
    model.Insert(Atom::Make("pr2c", {t, w}));
    model.Insert(Atom::Make("pr2c", {w, t}));
  }
  model.Insert(Atom::Make("pr2b", {w, w}));
  model.Insert(Atom::Make("pr2c", {w, w}));
  if (!Satisfies(model, sigma)) return;  // rare orientation mismatch: skip
  std::vector<Term> fixed = db.ActiveDomain();
  EXPECT_TRUE(
      InstanceHomomorphism(chased.instance, model, fixed).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseUniversality, ::testing::Range(0, 15));

// ---------------------------------------------------------------------
// Witness-certificate determinism (PR 5 regression lock): the chase's
// derivation log must replay through the independent verifier, its
// serialized wire bytes must be identical across repeated runs, and the
// instance digest recorded in the witness must match the instance. Any
// data-layout change that perturbs insertion order or null assignment
// trips these before it can reach the serve pipeline.
// ---------------------------------------------------------------------

class WitnessDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(WitnessDeterminism, DerivationWitnessReplaysAndEncodesStably) {
  const int seed = GetParam();
  WorkloadRng rng(seed * 23 + 11);
  TgdSet sigma = RandomInclusionDependencies(
      "pwd" + std::to_string(seed % 5) + "p", 4, 4, /*existential=*/40,
      static_cast<uint64_t>(seed) * 101 + 7);
  Instance db = RandomBinaryDatabase("pwd" + std::to_string(seed % 5) + "p0",
                                     5, 6 + rng.Below(5), seed, "pw");

  auto run = [&](uint32_t null_base) {
    Term::SetNextNullId(null_base);
    ChaseOptions options;
    options.collect_witness = true;
    options.budget.max_facts = 800;
    return Chase(db, sigma, options);
  };

  const uint32_t null_base = Term::NextNullId();
  ChaseResult first = run(null_base);
  ASSERT_TRUE(first.derivation.collected);

  if (first.derivation.replay_exact) {
    // Only an exact log commits to the digest fields.
    EXPECT_EQ(first.derivation.final_facts, first.instance.size());
    EXPECT_EQ(first.derivation.instance_crc, InstanceTextCrc(first.instance));
    Instance replayed;
    VerifyResult check =
        VerifyDerivation(db, sigma, first.derivation, &replayed);
    ASSERT_TRUE(check.ok())
        << "seed " << seed << ": " << VerifyCodeName(check.code) << " — "
        << check.reason;
    EXPECT_EQ(replayed.atoms(), first.instance.atoms());
  }

  // Re-running from the same null base reproduces the identical witness,
  // and the wire encoding is byte-stable.
  ChaseResult second = run(null_base);
  EXPECT_EQ(second.derivation, first.derivation);
  EvalWitness wire_first;
  wire_first.kind = EvalWitness::Kind::kDerivation;
  wire_first.method = "chase";
  wire_first.certified = first.derivation.replay_exact;
  wire_first.derivation = first.derivation;
  EvalWitness wire_second = wire_first;
  wire_second.derivation = second.derivation;
  EXPECT_EQ(EncodeEvalWitnessToString(wire_first),
            EncodeEvalWitnessToString(wire_second));

  // The codec round-trips to an equal witness.
  EvalWitness decoded;
  SnapshotStatus status = DecodeEvalWitnessFromString(
      EncodeEvalWitnessToString(wire_first), &decoded);
  ASSERT_TRUE(status.ok()) << status.message;
  EXPECT_EQ(decoded.derivation, first.derivation);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessDeterminism, ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// Core invariants on random queries.
// ---------------------------------------------------------------------

class CoreProperties : public ::testing::TestWithParam<int> {};

TEST_P(CoreProperties, CoreIsEquivalentMinimalAndIdempotent) {
  const int seed = GetParam();
  WorkloadRng rng(seed);
  const int num_vars = 3 + rng.Below(3);
  std::vector<Atom> atoms;
  for (int i = 0; i < 4; ++i) {
    atoms.push_back(Atom::Make(
        "pr3e",
        {Term::Variable("cv" + std::to_string(rng.Below(num_vars))),
         Term::Variable("cv" + std::to_string(rng.Below(num_vars)))}));
  }
  CQ cq({}, atoms);
  CQ core = CqCore(cq);
  EXPECT_TRUE(CqEquivalent(cq, core));
  EXPECT_TRUE(IsCore(core));
  EXPECT_LE(core.atoms().size(), cq.atoms().size());
  CQ core2 = CqCore(core);
  EXPECT_EQ(core2.atoms().size(), core.atoms().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreProperties, ::testing::Range(0, 20));

// ---------------------------------------------------------------------
// Contraction counts equal admissible-partition counts (Bell numbers).
// ---------------------------------------------------------------------

TEST(ContractionCounts, BellNumbersForBooleanQueries) {
  // Boolean CQs with v variables: count = Bell(v).
  const size_t bell[] = {1, 1, 2, 5, 15, 52};
  for (int v = 2; v <= 5; ++v) {
    std::vector<Atom> atoms;
    for (int i = 0; i + 1 < v; ++i) {
      atoms.push_back(
          Atom::Make("pr4e", {Term::Variable("bv" + std::to_string(i)),
                              Term::Variable("bv" + std::to_string(i + 1))}));
    }
    CQ cq({}, atoms);
    size_t count = ForEachContraction(
        cq, [](const CQ&, const Substitution&) { return true; });
    EXPECT_EQ(count, bell[v]) << "v=" << v;
  }
}

TEST(ContractionCounts, AnswerVariableRestrictions) {
  // 1 answer var + 2 existential vars: partitions of 3 elements where the
  // answer var's block constraint is vacuous (only one answer var) = 5.
  CQ cq({Term::Variable("AV")},
        {Atom::Make("pr4e", {Term::Variable("AV"), Term::Variable("E1")}),
         Atom::Make("pr4e", {Term::Variable("E1"), Term::Variable("E2")})});
  size_t count = ForEachContraction(
      cq, [](const CQ&, const Substitution&) { return true; });
  EXPECT_EQ(count, 5u);
}

// ---------------------------------------------------------------------
// Containment sanity: contraction => containment; core equivalence.
// ---------------------------------------------------------------------

class ContractionContainment : public ::testing::TestWithParam<int> {};

TEST_P(ContractionContainment, EveryContractionIsContained) {
  const int seed = GetParam();
  WorkloadRng rng(seed);
  std::vector<Atom> atoms;
  for (int i = 0; i < 3; ++i) {
    atoms.push_back(Atom::Make(
        "pr5e", {Term::Variable("kv" + std::to_string(rng.Below(4))),
                 Term::Variable("kv" + std::to_string(rng.Below(4)))}));
  }
  CQ cq({}, atoms);
  for (const CQ& contraction : AllContractions(cq)) {
    EXPECT_TRUE(CqContained(contraction, cq))
        << contraction.ToString() << " vs " << cq.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContractionContainment,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------
// Linear engines agree on random inclusion-dependency workloads.
// ---------------------------------------------------------------------

class LinearEnginesAgree : public ::testing::TestWithParam<int> {};

TEST_P(LinearEnginesAgree, RewritingVsChaseVsGuarded) {
  const int seed = GetParam();
  TgdSet sigma =
      RandomInclusionDependencies("pr6r", 3, 4, /*existential=*/25, seed);
  Instance db = RandomBinaryDatabase("pr6r0", 8, 10, seed * 7 + 1, "p6");
  db.InsertAll(RandomBinaryDatabase("pr6r1", 8, 10, seed * 7 + 2, "p6"));
  CQ q({Term::Variable("QX")},
       {Atom::Make("pr6r" + std::to_string(seed % 3),
                   {Term::Variable("QX"), Term::Variable("QY")})});
  UCQ ucq({q});
  std::vector<RewriteWitness> provenance;
  auto via_rewriting =
      LinearCertainAnswersViaRewriting(db, sigma, ucq, &provenance);
  auto via_chase = LinearCertainAnswersViaChase(db, sigma, ucq, 14).answers;
  auto via_guarded = GuardedCertainAnswers(db, sigma, ucq);
  EXPECT_EQ(via_rewriting, via_chase) << "seed " << seed;
  EXPECT_EQ(via_rewriting, via_guarded) << "seed " << seed;
  // Certificate level: every rewriting answer ships a provenance record
  // the independent checker accepts — the fired disjunct holds in D and
  // its chased image satisfies the original query.
  ASSERT_EQ(provenance.size(), via_rewriting.size()) << "seed " << seed;
  for (size_t i = 0; i < provenance.size(); ++i) {
    VerifyResult check =
        VerifyRewriteProvenance(db, sigma, ucq, provenance[i]);
    EXPECT_TRUE(check.ok())
        << "seed " << seed << " answer " << i << " ["
        << VerifyCodeName(check.code) << "] " << check.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearEnginesAgree, ::testing::Range(0, 15));

// ---------------------------------------------------------------------
// Treewidth invariants on random graphs.
// ---------------------------------------------------------------------

class TreewidthInvariants : public ::testing::TestWithParam<int> {};

TEST_P(TreewidthInvariants, BoundsAndValidDecompositions) {
  const int seed = GetParam();
  Graph g = RandomGraph(11, 25 + (seed % 4) * 15, seed);
  TreewidthResult result = ComputeTreewidth(g);
  ASSERT_TRUE(result.exact());
  std::string why;
  EXPECT_TRUE(result.decomposition.Validate(g, &why)) << why;
  EXPECT_EQ(result.decomposition.Width(), result.upper_bound);
  EXPECT_GE(result.upper_bound, Degeneracy(g));
  // Heuristics are upper bounds.
  int min_fill =
      DecompositionFromEliminationOrder(g, MinFillOrder(g)).Width();
  EXPECT_GE(min_fill, result.upper_bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreewidthInvariants, ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// Homomorphism composition: hom(A->B) and hom(B->C) compose.
// ---------------------------------------------------------------------

class HomComposition : public ::testing::TestWithParam<int> {};

TEST_P(HomComposition, ComposesThroughChase) {
  const int seed = GetParam();
  Instance a = RandomBinaryDatabase("pr7e", 4, 5, seed, "p7a");
  Instance b = RandomBinaryDatabase("pr7e", 6, 14, seed + 100, "p7b");
  Instance c = RandomBinaryDatabase("pr7e", 8, 30, seed + 200, "p7c");
  auto ab = InstanceHomomorphism(a, b);
  auto bc = InstanceHomomorphism(b, c);
  if (ab.has_value() && bc.has_value()) {
    // The composition witnesses a -> c.
    EXPECT_TRUE(InstanceHomomorphism(a, c).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HomComposition, ::testing::Range(0, 15));

}  // namespace
}  // namespace gqe
