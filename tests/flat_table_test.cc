// Differential property tests for the open-addressing FlatSet/FlatMap
// (src/base/flat_table.h) against the std::unordered_* containers they
// replaced on the hot paths. Every randomized test uses a fixed seed, so
// a failure reproduces exactly; the iteration-determinism tests pin the
// contract the chase/checkpoint/witness layers rely on — the same
// insertion sequence yields the same iteration order, including when the
// same sequence is replayed concurrently from many threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/flat_table.h"

namespace gqe {
namespace {

// splitmix64: deterministic across platforms, unlike std::mt19937
// distributions. Each test constructs its own stream from a literal seed.
class TestRng {
 public:
  explicit TestRng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t Below(uint64_t n) { return Next() % n; }

 private:
  uint64_t state_;
};

// An intentionally colliding hash: maps keys into 16 buckets before the
// table's own shuffle, forcing long probe runs and clustered tombstones.
struct AwfulHash {
  size_t operator()(uint64_t key) const { return key & 0xf; }
};

std::vector<uint64_t> SetOrder(const FlatSet<uint64_t>& set) {
  std::vector<uint64_t> order;
  for (const uint64_t& key : set) order.push_back(key);
  return order;
}

TEST(FlatSetTest, EmptyTableQueries) {
  FlatSet<uint64_t> set;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(42));
  EXPECT_EQ(set.find(42), nullptr);
  EXPECT_FALSE(set.erase(42));
  EXPECT_EQ(set.begin(), set.end());
}

TEST(FlatSetTest, InsertFindEraseBasics) {
  FlatSet<uint64_t> set;
  auto [slot, fresh] = set.insert(7);
  EXPECT_TRUE(fresh);
  EXPECT_EQ(*slot, 7u);
  EXPECT_FALSE(set.insert(7).second);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.contains(7));
  EXPECT_TRUE(set.erase(7));
  EXPECT_FALSE(set.contains(7));
  EXPECT_FALSE(set.erase(7));
  EXPECT_EQ(set.size(), 0u);
}

TEST(FlatSetTest, DifferentialRandomOps) {
  FlatSet<uint64_t> set;
  std::unordered_set<uint64_t> shadow;
  TestRng rng(0x5eed0001);
  for (int op = 0; op < 200000; ++op) {
    uint64_t key = rng.Below(4096);
    switch (rng.Below(4)) {
      case 0:
      case 1: {  // bias toward inserts so the table actually grows
        bool fresh = set.insert(key).second;
        EXPECT_EQ(fresh, shadow.insert(key).second);
        break;
      }
      case 2: {
        bool erased = set.erase(key);
        EXPECT_EQ(erased, shadow.erase(key) == 1);
        break;
      }
      case 3: {
        EXPECT_EQ(set.contains(key), shadow.count(key) == 1);
        break;
      }
    }
    ASSERT_EQ(set.size(), shadow.size());
  }
  // Full-content check both ways.
  for (uint64_t key : shadow) EXPECT_TRUE(set.contains(key));
  size_t iterated = 0;
  for (const uint64_t& key : set) {
    EXPECT_EQ(shadow.count(key), 1u);
    ++iterated;
  }
  EXPECT_EQ(iterated, shadow.size());
}

TEST(FlatSetTest, TombstoneHeavyChurn) {
  // Insert/erase waves over a tiny key space: every slot ends up
  // tombstoned many times over, exercising the reuse-first-tombstone
  // path and the tombstone-triggered rehash policy.
  FlatSet<uint64_t, AwfulHash> set;
  std::unordered_set<uint64_t> shadow;
  TestRng rng(0x5eed0002);
  for (int wave = 0; wave < 400; ++wave) {
    for (int i = 0; i < 64; ++i) {
      uint64_t key = rng.Below(128);
      EXPECT_EQ(set.insert(key).second, shadow.insert(key).second);
    }
    for (int i = 0; i < 64; ++i) {
      uint64_t key = rng.Below(128);
      EXPECT_EQ(set.erase(key), shadow.erase(key) == 1);
    }
    ASSERT_EQ(set.size(), shadow.size());
  }
  for (uint64_t key = 0; key < 128; ++key) {
    EXPECT_EQ(set.contains(key), shadow.count(key) == 1) << "key " << key;
  }
}

TEST(FlatSetTest, DuplicateKeyStorm) {
  // Hammer a handful of keys with repeated inserts: size must stay
  // bounded and the returned slot pointer must point at the same value.
  FlatSet<uint64_t> set;
  std::unordered_set<uint64_t> shadow;
  TestRng rng(0x5eed0003);
  for (int op = 0; op < 100000; ++op) {
    uint64_t key = rng.Below(8);
    auto [slot, fresh] = set.insert(key);
    EXPECT_EQ(*slot, key);
    EXPECT_EQ(fresh, shadow.insert(key).second);
  }
  EXPECT_EQ(set.size(), 8u);
  // 8 keys fit the minimum capacity: only the initial allocation counts.
  EXPECT_LE(set.rehashes(), 1u);
}

TEST(FlatSetTest, GrowBoundaries) {
  // Walk insertion counts across several power-of-two capacity
  // boundaries and verify contents survive each rehash.
  for (size_t n : {7u, 8u, 9u, 15u, 16u, 17u, 31u, 33u, 127u, 129u, 1025u}) {
    FlatSet<uint64_t> set;
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(set.insert(i * 0x10001).second) << "n=" << n << " i=" << i;
    }
    ASSERT_EQ(set.size(), n);
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(set.contains(i * 0x10001)) << "n=" << n << " i=" << i;
    }
    ASSERT_FALSE(set.contains(n * 0x10001));
  }
}

TEST(FlatSetTest, ReserveAvoidsRehash) {
  FlatSet<uint64_t> set;
  set.reserve(1000);
  uint64_t rehashes_after_reserve = set.rehashes();
  for (uint64_t i = 0; i < 1000; ++i) set.insert(i);
  EXPECT_EQ(set.rehashes(), rehashes_after_reserve);
  EXPECT_EQ(set.size(), 1000u);
}

TEST(FlatSetTest, ClearResetsButKeepsWorking) {
  FlatSet<uint64_t> set;
  for (uint64_t i = 0; i < 500; ++i) set.insert(i);
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(3));
  for (uint64_t i = 0; i < 500; ++i) EXPECT_TRUE(set.insert(i).second);
  EXPECT_EQ(set.size(), 500u);
}

TEST(FlatSetTest, CopyPreservesIterationOrder) {
  FlatSet<uint64_t> set;
  TestRng rng(0x5eed0004);
  for (int i = 0; i < 3000; ++i) set.insert(rng.Next());
  for (int i = 0; i < 500; ++i) set.erase(rng.Below(1u << 20));
  FlatSet<uint64_t> copy(set);
  EXPECT_EQ(SetOrder(set), SetOrder(copy));
  FlatSet<uint64_t> assigned;
  assigned.insert(99);
  assigned = set;
  EXPECT_EQ(SetOrder(set), SetOrder(assigned));
}

// The determinism contract: replaying the same op sequence yields the
// same iteration order, in one thread or in eight concurrently (each
// thread owns its table — the chase shards work this way).
TEST(FlatSetTest, IterationDeterministicAcrossThreads) {
  auto build = [](uint64_t seed) {
    FlatSet<uint64_t> set;
    TestRng rng(seed);
    for (int op = 0; op < 20000; ++op) {
      uint64_t key = rng.Below(2048);
      if (rng.Below(3) == 0) {
        set.erase(key);
      } else {
        set.insert(key);
      }
    }
    return SetOrder(set);
  };
  const std::vector<uint64_t> reference = build(0x5eed0005);
  constexpr int kThreads = 8;
  std::vector<std::vector<uint64_t>> orders(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] { orders[t] = build(0x5eed0005); });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(orders[t], reference) << "thread " << t;
  }
}

TEST(FlatSetTest, HeterogeneousProbe) {
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(const std::string& a, std::string_view b) const {
      return a == b;
    }
  };
  FlatSet<std::string, SvHash, SvEq> set;
  set.insert(std::string("guarded"));
  set.insert(std::string("tgd"));
  // Probe with string_view: no std::string temporary is constructed.
  EXPECT_TRUE(set.contains(std::string_view("guarded")));
  EXPECT_FALSE(set.contains(std::string_view("frontier")));
  EXPECT_TRUE(set.erase(std::string_view("tgd")));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlatMapTest, DifferentialRandomOps) {
  FlatMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> shadow;
  TestRng rng(0x5eed0010);
  for (int op = 0; op < 200000; ++op) {
    uint64_t key = rng.Below(4096);
    switch (rng.Below(5)) {
      case 0:
      case 1: {  // operator[] upsert
        uint64_t value = rng.Next();
        map[key] = value;
        shadow[key] = value;
        break;
      }
      case 2: {  // try_emplace: keeps the existing value
        uint64_t value = rng.Next();
        auto [slot, fresh] = map.try_emplace(key, value);
        bool shadow_fresh = shadow.try_emplace(key, value).second;
        EXPECT_EQ(fresh, shadow_fresh);
        EXPECT_EQ(slot->second, shadow.at(key));
        break;
      }
      case 3: {
        EXPECT_EQ(map.erase(key), shadow.erase(key) == 1);
        break;
      }
      case 4: {
        auto it = shadow.find(key);
        const uint64_t* value = map.value(key);
        if (it == shadow.end()) {
          EXPECT_EQ(value, nullptr);
        } else {
          ASSERT_NE(value, nullptr);
          EXPECT_EQ(*value, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), shadow.size());
  }
  size_t iterated = 0;
  for (const auto& [key, value] : map) {
    auto it = shadow.find(key);
    ASSERT_NE(it, shadow.end());
    EXPECT_EQ(value, it->second);
    ++iterated;
  }
  EXPECT_EQ(iterated, shadow.size());
}

TEST(FlatMapTest, OperatorBracketDefaultConstructs) {
  FlatMap<uint64_t, uint64_t> map;
  EXPECT_EQ(map[5], 0u);
  map[5] += 3;
  EXPECT_EQ(map[5], 3u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, TombstoneChurnWithValues) {
  FlatMap<uint64_t, std::string, AwfulHash> map;
  std::unordered_map<uint64_t, std::string> shadow;
  TestRng rng(0x5eed0011);
  for (int op = 0; op < 50000; ++op) {
    uint64_t key = rng.Below(64);
    if (rng.Below(2) == 0) {
      std::string value = "v" + std::to_string(rng.Below(1000));
      map[key] = value;
      shadow[key] = value;
    } else {
      EXPECT_EQ(map.erase(key), shadow.erase(key) == 1);
    }
    ASSERT_EQ(map.size(), shadow.size());
  }
  for (const auto& [key, value] : shadow) {
    const std::string* got = map.value(key);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, value);
  }
}

TEST(FlatMapTest, PointersStableUntilRehash) {
  FlatMap<uint64_t, uint64_t> map;
  map.reserve(256);
  uint64_t rehashes = map.rehashes();
  std::vector<uint64_t*> slots;
  for (uint64_t i = 0; i < 100; ++i) {
    slots.push_back(&map[i]);
    map[i] = i * 3;
  }
  ASSERT_EQ(map.rehashes(), rehashes);  // reserve prevented growth
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(slots[i], &map[i]);
    EXPECT_EQ(*slots[i], i * 3);
  }
}

TEST(FlatMapTest, IterationDeterministicSameSeed) {
  auto build = [](uint64_t seed) {
    FlatMap<uint64_t, uint64_t> map;
    TestRng rng(seed);
    for (int op = 0; op < 20000; ++op) {
      uint64_t key = rng.Below(1024);
      if (rng.Below(4) == 0) {
        map.erase(key);
      } else {
        map[key] = rng.Next();
      }
    }
    std::vector<std::pair<uint64_t, uint64_t>> order;
    for (const auto& entry : map) order.push_back(entry);
    return order;
  };
  EXPECT_EQ(build(0x5eed0012), build(0x5eed0012));
  EXPECT_NE(build(0x5eed0012), build(0x5eed0013));
}

TEST(HashShuffleTest, SpreadsLowEntropyKeys) {
  // Sequential keys must land in distinct slots of a small table: the
  // finalizer has to mix low bits into the whole word.
  std::unordered_set<uint64_t> low_bits;
  for (uint64_t i = 0; i < 1024; ++i) {
    low_bits.insert(HashShuffle(i) & 1023);
  }
  // A perfect hash would fill ~646 of 1024 buckets (coupon collector);
  // anything above 550 is unclustered enough for linear probing.
  EXPECT_GT(low_bits.size(), 550u);
}

}  // namespace
}  // namespace gqe
