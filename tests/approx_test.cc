#include <gtest/gtest.h>

#include "approx/approximation.h"
#include "approx/meta.h"
#include "approx/specialization.h"
#include "cqs/containment.h"
#include "query/containment.h"
#include "parser/parser.h"
#include "query/core.h"

namespace gqe {
namespace {

/// The exact OMQ/CQS of Example 4.4: S = {R1,R2,R3,R4,P},
/// Σ = {R2(x) -> R4(x)}, q the 4-cycle query over P with the four unary
/// markers. The paper: q alone has treewidth 2 (and is a core), but with
/// Σ it is uniformly UCQ_1-equivalent.
Cqs Example44() {
  Cqs cqs;
  cqs.sigma = ParseTgds("xr2(X) -> xr4(X).");
  cqs.query = ParseUcq(R"(
    xq() :- xp(X2, X1), xp(X4, X1), xp(X2, X3), xp(X4, X3),
            xr1(X1), xr2(X2), xr3(X3), xr4(X4).
  )");
  return cqs;
}

TEST(Example44Test, QueryIsACoreOfTreewidth2) {
  Cqs cqs = Example44();
  const CQ& q = cqs.query.disjuncts()[0];
  EXPECT_EQ(q.TreewidthOfExistentialPart(), 2);
  EXPECT_TRUE(IsCore(q));
}

TEST(Example44Test, NotUcq1EquivalentWithoutConstraints) {
  Cqs cqs = Example44();
  Cqs unconstrained{{}, cqs.query};
  MetaResult result = DecideUniformUcqkEquivalenceCqs(unconstrained, 1);
  EXPECT_FALSE(result.equivalent);
}

TEST(Example44Test, Ucq1EquivalentWithConstraints) {
  // The paper's Example 4.4 headline: the constraint R2 ⊆ R4 collapses
  // the 4-cycle to a path of treewidth 1.
  Cqs cqs = Example44();
  MetaResult result = DecideUniformUcqkEquivalenceCqs(cqs, 1);
  EXPECT_TRUE(result.equivalent);
  ASSERT_GT(result.rewriting.num_disjuncts(), 0u);
  EXPECT_LE(result.rewriting.TreewidthOfExistentialPart(), 1);
  // The rewriting really is equivalent under the constraints.
  Cqs rewritten{cqs.sigma, result.rewriting};
  EXPECT_TRUE(CqsEquivalent(cqs, rewritten));
}

TEST(Example44Test, SemanticTreewidth) {
  Cqs cqs = Example44();
  EXPECT_EQ(SemanticTreewidthCqs(cqs, 3), 1);
  Cqs unconstrained{{}, cqs.query};
  EXPECT_EQ(SemanticTreewidthCqs(unconstrained, 3), 2);
}

TEST(Example44Test, SecondOntologyDoesNotCollapse) {
  // Q2 of Example 4.4: Σ' = {S(x) -> R1(x), S(x) -> R3(x)} with full
  // data schema does not make q UCQ_1-equivalent.
  Cqs cqs;
  cqs.sigma = ParseTgds(R"(
    xs(X) -> xr1(X).
    xs(X) -> xr3(X).
  )");
  cqs.query = Example44().query;
  MetaResult result = DecideUniformUcqkEquivalenceCqs(cqs, 1);
  EXPECT_FALSE(result.equivalent);
  // At k = 2 it trivially is (the identity contraction qualifies).
  EXPECT_TRUE(DecideUniformUcqkEquivalenceCqs(cqs, 2).equivalent);
}

TEST(ApproximationTest, ContainedInOriginal) {
  Cqs cqs = Example44();
  Cqs approximation = UcqkApproximationCqs(cqs, 1);
  ASSERT_GT(approximation.query.num_disjuncts(), 0u);
  EXPECT_TRUE(CqsContained(approximation, cqs));
}

TEST(ApproximationTest, EmptyWhenNothingFits) {
  // A clique query on a ternary guard cannot contract to treewidth 1
  // while keeping three distinct answer variables... use a Boolean clique
  // query of treewidth 3 with distinguished relations per edge, which has
  // no treewidth-1 contraction: contractions only merge vertices,
  // creating loops, and the Gaifman graph stays dense until everything
  // merges; at full merge treewidth is 1 though. So instead check the
  // approximation at k=1 is strictly weaker than the original.
  Cqs cqs;
  cqs.sigma = {};
  cqs.query = ParseUcq(R"(
    yq() :- ye1(A, B), ye2(B, C2), ye3(C2, A).
  )");
  MetaResult result = DecideUniformUcqkEquivalenceCqs(cqs, 1);
  EXPECT_FALSE(result.equivalent);
}

TEST(ApproximationTest, MinimumValidK) {
  Cqs cqs = Example44();  // arity 2 schema, single-head rules
  EXPECT_EQ(MinimumValidK(cqs), 1);
  Cqs multi_head;
  multi_head.sigma = ParseTgds("ma2(X) -> mb2(X, Y), mc2(Y, Z).");
  multi_head.query = ParseUcq("mq9() :- mb2(X, Y).");
  EXPECT_EQ(MinimumValidK(multi_head), 2 * 2 - 1);
}

TEST(SpecializationTest, CountForSingleAtomQuery) {
  // q(X) :- E(X, Y): contractions = {identity, Y->X} = 2; V-subsets:
  // identity has 1 existential var (2 subsets), loop has none (1).
  CQ cq = ParseCq("sq(X) :- se9(X, Y).");
  size_t count = ForEachSpecialization(
      cq, [](const Specialization&) { return true; });
  EXPECT_EQ(count, 3u);
}

TEST(SpecializationTest, ComponentsSplitOutsideV) {
  // q() :- E(X,Y), E(Y,Z), E(U,W): with V = {Y}, components of q[V] are
  // {E(X,Y)}, {E(Y,Z)} (connected only through V) and {E(U,W)}.
  CQ cq = ParseCq("sq2() :- se9(X, Y), se9(Y, Z), se9(U, W).");
  std::vector<Term> v = {Term::Variable("Y")};
  auto components = MaximallyConnectedComponents(cq, v);
  EXPECT_EQ(components.size(), 3u);
}

TEST(SpecializationTest, AtomsInsideVDropped) {
  CQ cq = ParseCq("sq3() :- se9(X, Y), sl9(X).");
  std::vector<Term> v = {Term::Variable("X")};
  auto outside = AtomsOutsideV(cq, v);
  ASSERT_EQ(outside.size(), 1u);
  EXPECT_EQ(outside[0].predicate(), predicates::Lookup("se9"));
}

TEST(CoreTest, UcqCoreMinimizesAndFolds) {
  // One redundant disjunct (contained in the other) plus a foldable one.
  UCQ ucq = ParseUcq(R"(
    ucq1() :- uce(X, Y), uce(X, Z).
    ucq1() :- uce(X, Y), uce(Y, Z), uce(X, W).
  )");
  UCQ core = UcqCore(ucq);
  // The 2-path disjunct is contained in the 1-edge disjunct; the
  // survivor folds to a single atom.
  ASSERT_EQ(core.num_disjuncts(), 1u);
  EXPECT_EQ(core.disjuncts()[0].atoms().size(), 1u);
  EXPECT_TRUE(UcqEquivalent(ucq, core));
}

// DOCUMENTED LIMITATION (Example 4.4, second half): when the data schema
// omits a predicate the UCQ mentions (here R1), the paper's Q2 becomes
// UCQ_1-equivalent via a rewriting that swaps R1 for R3 — detecting this
// requires the Definition C.6 approximation over the *restricted* data
// schema, which this library does not implement (DESIGN.md §2.6). Our
// full-data-schema procedure answers "not equivalent", which is correct
// for the full data schema; this test pins that documented behaviour.
TEST(MetaTest, RestrictedDataSchemaCaseIsConservative) {
  Cqs cqs;
  cqs.sigma = ParseTgds(R"(
    xls(X) -> xlr1(X).
    xls(X) -> xlr3(X).
  )");
  cqs.query = ParseUcq(R"(
    xlq() :- xlp(X2,X1), xlp(X4,X1), xlp(X2,X3), xlp(X4,X3),
             xlr1(X1), xlr2(X2), xlr3(X3), xlr4(X4).
  )");
  // Full data schema: not equivalent (matches the paper's Q2 claim).
  EXPECT_FALSE(DecideUniformUcqkEquivalenceCqs(cqs, 1).equivalent);
}

TEST(MetaTest, PathQueryAlwaysTreewidth1) {
  Cqs cqs{{}, ParseUcq("mq10() :- me9(X, Y), me9(Y, Z).")};
  MetaResult result = DecideUniformUcqkEquivalenceCqs(cqs, 1);
  EXPECT_TRUE(result.equivalent);
}

TEST(MetaTest, RedundantGridCollapsesWithoutConstraints) {
  // A "grid" whose two columns are copies: contraction folds it to a
  // path, even with empty Σ (core-style collapse).
  Cqs cqs{{}, ParseUcq(R"(
    mq11() :- mp9(X1, Y1), mp9(X1, Y2), mr9(X2, Y1), mr9(X2, Y2).
  )")};
  // Identifying Y2 with Y1 gives mp9(X1,Y1), mq9(X2,Y1): treewidth 1 and
  // homomorphically equivalent.
  MetaResult result = DecideUniformUcqkEquivalenceCqs(cqs, 1);
  EXPECT_TRUE(result.equivalent);
}

}  // namespace
}  // namespace gqe
