// Partitioned fact storage with self-healing shards (shard/storage_shard):
// the instance is hash-partitioned into per-shard fragments owned by
// long-lived worker processes, derived facts are shipped to their owners
// through sequence-numbered CRC-enveloped exchanges, every shard
// checkpoints its fragment at round boundaries, and the coordinator
// survives kill -9 / OOM / stall / corrupt of any shard by respawning it
// and rebuilding the fragment from the newest good checkpoint plus the
// retained exchange log. The invariant under test everywhere:
// bit-identical results to the in-process chase — facts in insertion
// order, levels, null ids, witness certificates, durable checkpoint
// bytes — at every shard count, under every fault, across mid-run
// resharding and coordinator restart.

#include <gtest/gtest.h>

#include <errno.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "base/serialize.h"
#include "chase/chase.h"
#include "chase/checkpoint.h"
#include "parser/parser.h"
#include "shard/shard_chase.h"
#include "shard/storage_shard.h"
#include "verify/verifier.h"
#include "verify/witness.h"

namespace gqe {
namespace {

/// Same workload as the fork-per-round shard tests: existential rules
/// (labelled nulls, levels) plus transitive closure (several rounds of
/// joins over a growing delta frontier), so any ownership, exchange or
/// replay mistake surfaces as a different instance.
TgdSet StSigma() {
  return ParseTgds(R"(
    stgrad(X) -> ststud(X).
    ststud(X) -> stenr(X, U), stuni(U).
    stenr(X, U) -> stactive(X).
    ste(X, Y), ste(Y, Z) -> ste(X, Z).
  )");
}

Instance StDb() {
  Instance db;
  for (int i = 0; i < 4; ++i) {
    db.Insert(
        Atom::Make("stgrad", {Term::Constant("sts" + std::to_string(i))}));
  }
  for (int i = 0; i < 12; ++i) {
    db.Insert(Atom::Make("ste",
                         {Term::Constant("sta" + std::to_string(i)),
                          Term::Constant("sta" + std::to_string(i + 1))}));
  }
  return db;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "gqe_storage_" +
                    std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectBitIdentical(const ChaseResult& got, const ChaseResult& want,
                        const std::string& label) {
  ASSERT_EQ(got.instance.size(), want.instance.size()) << label;
  for (size_t i = 0; i < want.instance.size(); ++i) {
    ASSERT_EQ(got.instance.atom(i), want.instance.atom(i))
        << label << " fact " << i;
  }
  EXPECT_EQ(got.levels, want.levels) << label;
  EXPECT_EQ(got.complete, want.complete) << label;
  EXPECT_EQ(got.max_level_built, want.max_level_built) << label;
  EXPECT_EQ(got.rounds_completed, want.rounds_completed) << label;
  EXPECT_EQ(InstanceTextCrc(got.instance), InstanceTextCrc(want.instance))
      << label;
}

void ExpectWitnessIdentical(const Instance& db, const TgdSet& sigma,
                            const ChaseResult& got, const ChaseResult& want,
                            const std::string& label) {
  ASSERT_TRUE(got.derivation.collected) << label;
  ASSERT_TRUE(want.derivation.collected) << label;
  EXPECT_TRUE(got.derivation == want.derivation) << label;
  const VerifyResult verdict = VerifyDerivation(db, sigma, got.derivation);
  EXPECT_TRUE(verdict.ok()) << label << ": " << verdict.reason;
}

/// Fast-failure options for tests: tight heartbeat + backoff so injected
/// stalls resolve in ~100ms instead of seconds.
StorageShardOptions FastStorageOptions(int shards) {
  StorageShardOptions options;
  options.shards = shards;
  options.heartbeat_interval_ms = 3.0;
  options.heartbeat_timeout_ms = 400.0;
  options.backoff_base_ms = 1.0;
  options.backoff_cap_ms = 8.0;
  return options;
}

ChaseOptions WitnessChaseOptions() {
  ChaseOptions options;
  options.collect_witness = true;
  return options;
}

void ExpectNoZombies(const std::string& label) {
  errno = 0;
  const pid_t r = ::waitpid(-1, nullptr, WNOHANG);
  EXPECT_TRUE(r == 0 || (r == -1 && errno == ECHILD))
      << label << ": leaked a child (waitpid returned " << r << ")";
}

/// Parses `<prefix><number><suffix>` file names under `dir`, ascending.
std::vector<uint64_t> NumberedFiles(const std::string& dir,
                                    const std::string& prefix,
                                    const std::string& suffix) {
  std::vector<uint64_t> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    out.push_back(std::strtoull(name.c_str() + prefix.size(), nullptr, 10));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// A checkpoint sink that damages a shard's on-disk fragment files at a
/// chosen committed boundary: the newest generation only (recovery must
/// fall back to the previous good one + longer exchange-log replay) or
/// every retained generation (recovery must fail honestly).
class FragmentCorruptingSink : public ChaseCheckpointSink {
 public:
  enum class Damage { kFlipNewest, kTruncateNewest, kFlipAll };

  FragmentCorruptingSink(std::string shard_dir, uint64_t at_rounds,
                         Damage damage)
      : shard_dir_(std::move(shard_dir)),
        at_rounds_(at_rounds),
        damage_(damage) {}

  void Write(const ChaseCheckpointState& state, bool) override {
    if (fired_ || state.rounds_completed != at_rounds_) return;
    fired_ = true;
    const std::vector<uint64_t> gens =
        NumberedFiles(shard_dir_, "fragment-", ".frag");
    ASSERT_FALSE(gens.empty()) << "no fragments to corrupt in " << shard_dir_;
    for (uint64_t gen : gens) {
      if (damage_ != Damage::kFlipAll && gen != gens.back()) continue;
      const std::string path =
          shard_dir_ + "/fragment-" + std::to_string(gen) + ".frag";
      std::string bytes;
      ASSERT_TRUE(ReadFileBytes(path, &bytes).ok()) << path;
      ASSERT_FALSE(bytes.empty()) << path;
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (damage_ == Damage::kTruncateNewest) {
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
      } else {
        bytes[bytes.size() / 2] ^= 0x04;
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      }
    }
    ++corrupted_;
  }

  int corrupted() const { return corrupted_; }

 private:
  std::string shard_dir_;
  uint64_t at_rounds_;
  Damage damage_;
  bool fired_ = false;
  int corrupted_ = 0;
};

TEST(StorageShardTest, FaultNamesAreStable) {
  EXPECT_STREQ(StorageFaultKindName(StorageFault::Kind::kKill), "kill");
  EXPECT_STREQ(StorageFaultKindName(StorageFault::Kind::kOom), "oom");
  EXPECT_STREQ(StorageFaultKindName(StorageFault::Kind::kStall), "stall");
  EXPECT_STREQ(StorageFaultKindName(StorageFault::Kind::kCorrupt), "corrupt");
  EXPECT_STREQ(StorageFaultPhaseName(StorageFault::Phase::kLoad), "load");
  EXPECT_STREQ(StorageFaultPhaseName(StorageFault::Phase::kDiscover),
               "discover");
}

TEST(StorageShardTest, OwnershipIsContentHashPartition) {
  Instance db = StDb();
  for (uint32_t n : {1u, 2u, 8u}) {
    for (size_t f = 0; f < db.size(); ++f) {
      const uint32_t owner = ShardOfFact(db, f, n);
      EXPECT_LT(owner, n);
      // ShardOfFact is ownership by content hash alone — a worker
      // holding only the decoded atom computes the same owner.
      EXPECT_EQ(owner,
                ShardOfContentHash(db.store().hash(static_cast<uint32_t>(f)),
                                   n));
    }
  }
}

TEST(StorageShardTest, AnyShardCountIsBitIdenticalToInProcessChase) {
  Instance db = StDb();
  TgdSet sigma = StSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseResult reference = Chase(db, sigma, WitnessChaseOptions());
  ASSERT_TRUE(reference.complete);
  ASSERT_GE(reference.rounds_completed, 4u);

  for (int shards : {1, 2, 3, 8}) {
    const std::string label = "shards=" + std::to_string(shards);
    Term::SetNextNullId(null_base);
    StorageShardStats stats;
    ChaseResult sharded = StorageShardChase(
        db, sigma, WitnessChaseOptions(), FastStorageOptions(shards), &stats);
    ASSERT_TRUE(sharded.complete) << label;
    ExpectBitIdentical(sharded, reference, label);
    ExpectWitnessIdentical(db, sigma, sharded, reference, label);
    EXPECT_EQ(stats.max_shards_used, shards) << label;
    EXPECT_GE(stats.workers_spawned, static_cast<size_t>(shards)) << label;
    EXPECT_GE(stats.rounds, reference.rounds_completed) << label;
    EXPECT_EQ(stats.corrupt_replies, 0u) << label;
    EXPECT_EQ(stats.bad_acks, 0u) << label;
    EXPECT_GT(stats.max_fragment_facts, 0u) << label;
    EXPECT_LE(stats.max_fragment_facts, reference.instance.size()) << label;
    EXPECT_GT(stats.max_worker_rss_kb, 0) << label;
    EXPECT_GE(stats.logs_written, stats.rounds) << label;
  }
  ExpectNoZombies("storage shard-count sweep");
  Term::SetNextNullId(null_base);
}

/// The durable layout: per-shard fragment checkpoints bounded by
/// keep_generations, and retained exchange logs pruned only once no
/// retained fragment generation could need them to replay forward.
TEST(StorageShardTest, DurableLayoutRetainsFragmentsAndPrunesLogs) {
  Instance db = StDb();
  TgdSet sigma = StSigma();
  const uint32_t null_base = Term::NextNullId();
  const std::string state_dir = FreshDir("layout");

  Term::SetNextNullId(null_base);
  StorageShardOptions options = FastStorageOptions(2);
  options.state_dir = state_dir;
  StorageShardStats stats;
  ChaseResult result =
      StorageShardChase(db, sigma, WitnessChaseOptions(), options, &stats);
  ASSERT_TRUE(result.complete);
  ASSERT_GE(result.rounds_completed, 4u);

  uint64_t min_oldest_gen = ~0ull;
  for (int s = 0; s < 2; ++s) {
    const std::string shard_dir =
        state_dir + "/shard-" + std::to_string(s);
    const std::vector<uint64_t> gens =
        NumberedFiles(shard_dir, "fragment-", ".frag");
    ASSERT_FALSE(gens.empty()) << shard_dir;
    EXPECT_LE(gens.size(),
              static_cast<size_t>(options.keep_generations))
        << shard_dir;
    min_oldest_gen = std::min(min_oldest_gen, gens.front());
  }
  const std::vector<uint64_t> logs =
      NumberedFiles(state_dir + "/logs", "log-", ".log");
  ASSERT_FALSE(logs.empty());
  // Every surviving log is one some retained fragment generation still
  // needs for forward replay; everything older was pruned.
  EXPECT_GT(logs.front(), min_oldest_gen);
  EXPECT_GE(stats.logs_written, stats.rounds);
  EXPECT_GE(stats.logs_pruned, 1u);

  std::filesystem::remove_all(state_dir);
  Term::SetNextNullId(null_base);
}

TEST(StorageShardTest, MidRunReshardIsBitIdentical) {
  Instance db = StDb();
  TgdSet sigma = StSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseResult reference = Chase(db, sigma, WitnessChaseOptions());
  ASSERT_TRUE(reference.complete);

  struct Reshard {
    int from;
    int to;
    int64_t at;
  };
  for (const Reshard& plan : {Reshard{2, 8, 2}, Reshard{8, 3, 1},
                              Reshard{1, 4, 3}}) {
    const std::string label = "reshard " + std::to_string(plan.from) + "->" +
                              std::to_string(plan.to) + "@" +
                              std::to_string(plan.at);
    Term::SetNextNullId(null_base);
    StorageShardOptions options = FastStorageOptions(plan.from);
    options.reshard_at_round = plan.at;
    options.reshard_to = plan.to;
    StorageShardStats stats;
    ChaseResult sharded =
        StorageShardChase(db, sigma, WitnessChaseOptions(), options, &stats);
    ASSERT_TRUE(sharded.complete) << label;
    ExpectBitIdentical(sharded, reference, label);
    ExpectWitnessIdentical(db, sigma, sharded, reference, label);
    EXPECT_EQ(stats.max_shards_used, std::max(plan.from, plan.to)) << label;
    // Resharding retires the fleet and reseeds the new layout's
    // fragments from scratch.
    bool resharded = false;
    for (const StorageShardEvent& event : stats.events) {
      resharded |= event.cause == "reshard";
    }
    EXPECT_TRUE(resharded) << label;
  }
  ExpectNoZombies("storage reshard");
  Term::SetNextNullId(null_base);
}

/// The acceptance-criteria chaos matrix: every fault kind, in both the
/// load and the discover phase, at every round boundary — each run
/// diffed against the fault-free single-process reference, including the
/// durable engine-checkpoint bytes.
TEST(StorageShardTest, ChaosMatrixEveryBoundaryBothPhasesIsBitIdentical) {
  Instance db = StDb();
  TgdSet sigma = StSigma();
  const uint32_t null_base = Term::NextNullId();

  const std::string ref_dir = FreshDir("chaos_ref");
  Term::SetNextNullId(null_base);
  ChaseResult reference =
      ResumeChase(ref_dir, db, sigma, WitnessChaseOptions());
  ASSERT_TRUE(reference.complete);
  const uint64_t rounds = reference.rounds_completed;
  ASSERT_GE(rounds, 4u);
  CheckpointDir ref_checkpoints(ref_dir);
  ASSERT_FALSE(ref_checkpoints.Generations().empty());
  std::string ref_bytes;
  ASSERT_TRUE(ReadFileBytes(ref_checkpoints.GenerationPath(
                                ref_checkpoints.Generations().back()),
                            &ref_bytes)
                  .ok());

  const StorageFault::Kind kinds[] = {
      StorageFault::Kind::kKill, StorageFault::Kind::kOom,
      StorageFault::Kind::kStall, StorageFault::Kind::kCorrupt};
  const StorageFault::Phase phases[] = {StorageFault::Phase::kLoad,
                                        StorageFault::Phase::kDiscover};
  size_t runs = 0;
  auto run_case = [&](int shards, StorageFault::Kind kind,
                      StorageFault::Phase phase, uint64_t boundary) {
    const std::string label =
        std::string("kind=") + StorageFaultKindName(kind) +
        " phase=" + StorageFaultPhaseName(phase) +
        " shards=" + std::to_string(shards) +
        " boundary=" + std::to_string(boundary);
    const std::string dir = FreshDir("chaos_run");
    StorageShardOptions options = FastStorageOptions(shards);
    StorageFault fault;
    fault.boundary = boundary;
    fault.shard = static_cast<uint32_t>(boundary % shards);
    fault.attempt = 1;
    fault.kind = kind;
    fault.phase = phase;
    options.faults.push_back(fault);

    Term::SetNextNullId(null_base);
    StorageShardStats stats;
    ChaseResult chaotic = ResumeStorageShardChase(
        dir, db, sigma, WitnessChaseOptions(), options, nullptr, &stats);
    ASSERT_TRUE(chaotic.complete) << label;
    ExpectBitIdentical(chaotic, reference, label);
    ExpectWitnessIdentical(db, sigma, chaotic, reference, label);
    EXPECT_GE(stats.events.size(), 1u) << label;
    EXPECT_GE(stats.respawns + stats.inline_fallbacks + stats.reseeds, 1u)
        << label;
    if (kind == StorageFault::Kind::kCorrupt) {
      EXPECT_GE(stats.corrupt_replies, 1u) << label;
    }
    if (kind == StorageFault::Kind::kStall) {
      EXPECT_GE(stats.heartbeat_timeouts, 1u) << label;
    }

    CheckpointDir checkpoints(dir);
    ASSERT_FALSE(checkpoints.Generations().empty()) << label;
    std::string chaos_bytes;
    ASSERT_TRUE(ReadFileBytes(checkpoints.GenerationPath(
                                  checkpoints.Generations().back()),
                              &chaos_bytes)
                    .ok())
        << label;
    EXPECT_EQ(chaos_bytes, ref_bytes) << label;

    std::filesystem::remove_all(dir);
    ++runs;
  };

  for (StorageFault::Kind kind : kinds) {
    for (StorageFault::Phase phase : phases) {
      for (uint64_t boundary = 0; boundary <= rounds; ++boundary) {
        run_case(2, kind, phase, boundary);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
  // A wider fleet: the cheap fault kinds across every boundary.
  for (StorageFault::Kind kind :
       {StorageFault::Kind::kKill, StorageFault::Kind::kCorrupt}) {
    for (uint64_t boundary = 0; boundary <= rounds; ++boundary) {
      run_case(8, kind, StorageFault::Phase::kDiscover, boundary);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GE(runs, 8 * (rounds + 1));
  ExpectNoZombies("storage chaos matrix");
  std::filesystem::remove_all(ref_dir);
  Term::SetNextNullId(null_base);
}

/// Satellite regression: a shard killed BETWEEN its round ack and the
/// round commit. The exchange log for the boundary was fsynced before
/// the shard could ack it, so the respawned worker must rebuild from its
/// just-written fragment checkpoint + retained logs — never a reseed.
TEST(StorageShardTest, KillBetweenAckAndCommitRebuildsFromRetainedLog) {
  Instance db = StDb();
  TgdSet sigma = StSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseResult reference = Chase(db, sigma, WitnessChaseOptions());
  ASSERT_TRUE(reference.complete);

  // Discover-phase kill: the load for boundary 2 has been acked (the
  // fragment checkpoint for generation 2 is durable) when the worker is
  // killed; the boundary itself has not committed.
  StorageShardOptions options = FastStorageOptions(2);
  options.faults.push_back(
      {2, 1, 1, StorageFault::Kind::kKill, StorageFault::Phase::kDiscover});
  Term::SetNextNullId(null_base);
  StorageShardStats stats;
  ChaseResult sharded =
      StorageShardChase(db, sigma, WitnessChaseOptions(), options, &stats);
  ASSERT_TRUE(sharded.complete);
  ExpectBitIdentical(sharded, reference, "ack-commit kill");
  ExpectWitnessIdentical(db, sigma, sharded, reference, "ack-commit kill");
  EXPECT_GE(stats.respawns, 1u);
  EXPECT_GE(stats.rebuilds, 1u);
  EXPECT_EQ(stats.reseeds, 0u);
  EXPECT_EQ(stats.bad_acks, 0u);
  ExpectNoZombies("ack-commit kill");
  Term::SetNextNullId(null_base);
}

/// Satellite: fragment-checkpoint corruption. Bit-flip and truncation of
/// the newest generation must push recovery to the previous good
/// generation plus a longer exchange-log replay — still bit-identical.
TEST(StorageShardTest, CorruptNewestFragmentFallsBackToOlderGeneration) {
  Instance db = StDb();
  TgdSet sigma = StSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseResult reference = Chase(db, sigma, WitnessChaseOptions());
  ASSERT_TRUE(reference.complete);
  ASSERT_GE(reference.rounds_completed, 3u);

  for (FragmentCorruptingSink::Damage damage :
       {FragmentCorruptingSink::Damage::kFlipNewest,
        FragmentCorruptingSink::Damage::kTruncateNewest}) {
    const std::string label =
        damage == FragmentCorruptingSink::Damage::kFlipNewest ? "bit-flip"
                                                              : "truncate";
    const std::string state_dir = FreshDir("frag_corrupt_" + label);
    // After boundary 1 commits, damage shard 0's newest fragment
    // (generation 1); then kill shard 0's delta load at boundary 2. The
    // respawned worker must skip the damaged generation and rebuild from
    // generation 0 + logs 1..2.
    StorageShardOptions options = FastStorageOptions(2);
    options.state_dir = state_dir;
    options.faults.push_back(
        {2, 0, 1, StorageFault::Kind::kKill, StorageFault::Phase::kLoad});
    FragmentCorruptingSink sink(state_dir + "/shard-0", 2, damage);
    ChaseOptions chase_options = WitnessChaseOptions();
    chase_options.checkpoint_sink = &sink;

    Term::SetNextNullId(null_base);
    StorageShardStats stats;
    ChaseResult sharded =
        StorageShardChase(db, sigma, chase_options, options, &stats);
    ASSERT_TRUE(sharded.complete) << label;
    EXPECT_EQ(sink.corrupted(), 1) << label;
    ExpectBitIdentical(sharded, reference, label);
    ExpectWitnessIdentical(db, sigma, sharded, reference, label);
    EXPECT_GE(stats.rebuilds, 1u) << label;
    EXPECT_EQ(stats.reseeds, 0u) << label;
    EXPECT_EQ(stats.bad_acks, 0u) << label;
    std::filesystem::remove_all(state_dir);
  }
  ExpectNoZombies("fragment corruption");
  Term::SetNextNullId(null_base);
}

/// Satellite: double failure — every retained fragment generation of a
/// shard damaged, scratch replay impossible (old logs pruned), and no
/// inline fallback allowed. The run must stop honestly with
/// Status::kShardLost at the last committed boundary; a clean rerun over
/// fresh state still converges bit-identically.
TEST(StorageShardTest, DoubleFragmentCorruptionIsShardLostAtBoundary) {
  Instance db = StDb();
  TgdSet sigma = StSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseResult reference = Chase(db, sigma, WitnessChaseOptions());
  ASSERT_TRUE(reference.complete);
  ASSERT_GE(reference.rounds_completed, 4u);

  const std::string state_dir = FreshDir("frag_double");
  StorageShardOptions doomed = FastStorageOptions(2);
  doomed.state_dir = state_dir;
  doomed.inline_fallback = false;
  doomed.max_attempts = 2;
  doomed.faults.push_back(
      {3, 0, 1, StorageFault::Kind::kKill, StorageFault::Phase::kLoad});
  FragmentCorruptingSink sink(state_dir + "/shard-0", 3,
                              FragmentCorruptingSink::Damage::kFlipAll);
  ChaseOptions chase_options = WitnessChaseOptions();
  chase_options.checkpoint_sink = &sink;

  Term::SetNextNullId(null_base);
  StorageShardStats stats;
  ChaseResult lost =
      StorageShardChase(db, sigma, chase_options, doomed, &stats);
  EXPECT_EQ(lost.outcome.status, Status::kShardLost);
  EXPECT_FALSE(lost.complete);
  EXPECT_EQ(lost.rounds_completed, 3u);
  EXPECT_EQ(sink.corrupted(), 1);
  EXPECT_EQ(stats.reseeds, 0u);
  bool rebuild_failed = false;
  bool shard_lost = false;
  for (const StorageShardEvent& event : stats.events) {
    rebuild_failed |= event.cause == "rebuild-failed";
    shard_lost |= event.cause == "shard-lost";
  }
  EXPECT_TRUE(rebuild_failed);
  EXPECT_TRUE(shard_lost);
  ExpectNoZombies("double corruption");

  // The failure is clean: a rerun over fresh durable state converges.
  const std::string fresh_dir = FreshDir("frag_double_fresh");
  StorageShardOptions retry = FastStorageOptions(2);
  retry.state_dir = fresh_dir;
  Term::SetNextNullId(null_base);
  ChaseResult rerun =
      StorageShardChase(db, sigma, WitnessChaseOptions(), retry);
  ASSERT_TRUE(rerun.complete);
  ExpectBitIdentical(rerun, reference, "rerun after shard loss");

  std::filesystem::remove_all(state_dir);
  std::filesystem::remove_all(fresh_dir);
  Term::SetNextNullId(null_base);
}

/// Whole-coordinator crash: kill the run mid-flight (governor fault
/// injector), then restart from the engine checkpoints with the same
/// durable state_dir and layout. The restarted fleet rebuilds its
/// fragments from disk and the run lands bit-identical — including the
/// durable checkpoint bytes.
TEST(StorageShardTest, CoordinatorKillAndRestartRebuildsFromDisk) {
  Instance db = StDb();
  TgdSet sigma = StSigma();
  const uint32_t null_base = Term::NextNullId();

  const std::string ref_dir = FreshDir("restart_ref");
  Term::SetNextNullId(null_base);
  ChaseResult reference =
      ResumeChase(ref_dir, db, sigma, WitnessChaseOptions());
  ASSERT_TRUE(reference.complete);
  CheckpointDir ref_checkpoints(ref_dir);
  std::string ref_bytes;
  ASSERT_TRUE(ReadFileBytes(ref_checkpoints.GenerationPath(
                                ref_checkpoints.Generations().back()),
                            &ref_bytes)
                  .ok());

  const std::string dir = FreshDir("restart_ckpt");
  const std::string state_dir = FreshDir("restart_state");

  // Phase 1: killed mid-run; engine checkpoints and shard fragments
  // survive on disk.
  Term::SetNextNullId(null_base);
  TestFaultInjector injector(Status::kCancelled, 60);
  ExecutionBudget budget;
  budget.max_facts = 0;
  Governor governor(budget, &injector);
  ChaseOptions killed_options = WitnessChaseOptions();
  killed_options.governor = &governor;
  StorageShardOptions options = FastStorageOptions(2);
  options.state_dir = state_dir;
  ChaseResult killed = ResumeStorageShardChase(dir, db, sigma, killed_options,
                                               options);
  ASSERT_EQ(killed.outcome.status, Status::kCancelled);
  ASSERT_FALSE(killed.complete);
  ExpectNoZombies("killed coordinator");

  // Phase 2: same layout, same durable state — the fresh fleet rebuilds
  // from fragment checkpoints + retained logs.
  Term::SetNextNullId(null_base + 7777);
  ResumeInfo info;
  StorageShardStats stats;
  ChaseResult resumed = ResumeStorageShardChase(
      dir, db, sigma, WitnessChaseOptions(), options, &info, &stats);
  EXPECT_TRUE(info.resumed);
  ASSERT_TRUE(resumed.complete);
  ExpectBitIdentical(resumed, reference, "coordinator restart");
  ExpectWitnessIdentical(db, sigma, resumed, reference,
                         "coordinator restart");
  EXPECT_GE(stats.rebuilds + stats.reseeds, 1u);

  CheckpointDir checkpoints(dir);
  ASSERT_FALSE(checkpoints.Generations().empty());
  std::string resumed_bytes;
  ASSERT_TRUE(ReadFileBytes(checkpoints.GenerationPath(
                                checkpoints.Generations().back()),
                            &resumed_bytes)
                  .ok());
  EXPECT_EQ(resumed_bytes, ref_bytes);

  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(state_dir);
  std::filesystem::remove_all(ref_dir);
  ExpectNoZombies("coordinator restart");
  Term::SetNextNullId(null_base);
}

/// Restart under a different layout: the old fragments and logs are
/// unusable under the new shard count, so the fleet reseeds — still
/// bit-identical.
TEST(StorageShardTest, RestartUnderDifferentLayoutReseeds) {
  Instance db = StDb();
  TgdSet sigma = StSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseResult reference = Chase(db, sigma, WitnessChaseOptions());
  ASSERT_TRUE(reference.complete);

  const std::string dir = FreshDir("relayout_ckpt");
  const std::string state_dir = FreshDir("relayout_state");

  Term::SetNextNullId(null_base);
  TestFaultInjector injector(Status::kCancelled, 60);
  ExecutionBudget budget;
  budget.max_facts = 0;
  Governor governor(budget, &injector);
  ChaseOptions killed_options = WitnessChaseOptions();
  killed_options.governor = &governor;
  StorageShardOptions before = FastStorageOptions(2);
  before.state_dir = state_dir;
  ChaseResult killed =
      ResumeStorageShardChase(dir, db, sigma, killed_options, before);
  ASSERT_FALSE(killed.complete);

  Term::SetNextNullId(null_base + 31);
  StorageShardOptions after = FastStorageOptions(8);
  after.state_dir = state_dir;
  ResumeInfo info;
  ChaseResult resumed = ResumeStorageShardChase(
      dir, db, sigma, WitnessChaseOptions(), after, &info);
  EXPECT_TRUE(info.resumed);
  ASSERT_TRUE(resumed.complete);
  ExpectBitIdentical(resumed, reference, "relayout restart");
  ExpectWitnessIdentical(db, sigma, resumed, reference, "relayout restart");

  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(state_dir);
  ExpectNoZombies("relayout restart");
  Term::SetNextNullId(null_base);
}

TEST(StorageShardTest, RetryStormOnOneShardStillConverges) {
  Instance db = StDb();
  TgdSet sigma = StSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseResult reference = Chase(db, sigma, WitnessChaseOptions());

  StorageShardOptions options = FastStorageOptions(2);
  options.faults.push_back(
      {1, 1, 1, StorageFault::Kind::kKill, StorageFault::Phase::kLoad});
  options.faults.push_back(
      {1, 1, 2, StorageFault::Kind::kCorrupt, StorageFault::Phase::kDiscover});
  Term::SetNextNullId(null_base);
  StorageShardStats stats;
  ChaseResult sharded =
      StorageShardChase(db, sigma, WitnessChaseOptions(), options, &stats);
  ASSERT_TRUE(sharded.complete);
  ExpectBitIdentical(sharded, reference, "retry storm");
  EXPECT_GE(stats.respawns, 2u);
  EXPECT_GE(stats.backoff_wait_ms, 0.0);
  Term::SetNextNullId(null_base);
}

TEST(StorageShardTest, ExhaustedRetriesDegradeToInlineFallback) {
  Instance db = StDb();
  TgdSet sigma = StSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseResult reference = Chase(db, sigma, WitnessChaseOptions());

  StorageShardOptions options = FastStorageOptions(2);
  options.max_attempts = 2;
  options.faults.push_back(
      {1, 0, 1, StorageFault::Kind::kKill, StorageFault::Phase::kLoad});
  options.faults.push_back(
      {1, 0, 2, StorageFault::Kind::kKill, StorageFault::Phase::kLoad});
  Term::SetNextNullId(null_base);
  StorageShardStats stats;
  ChaseResult sharded =
      StorageShardChase(db, sigma, WitnessChaseOptions(), options, &stats);
  ASSERT_TRUE(sharded.complete);
  ExpectBitIdentical(sharded, reference, "inline fallback");
  ExpectWitnessIdentical(db, sigma, sharded, reference, "inline fallback");
  EXPECT_GE(stats.inline_fallbacks, 1u);
  Term::SetNextNullId(null_base);
}

TEST(StorageShardTest, CancelledRunPutsFleetDownCleanly) {
  Instance db = StDb();
  TgdSet sigma = StSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseOptions options;
  options.budget.cancel = CancelToken::Create();
  options.budget.cancel.RequestCancel();
  StorageShardStats stats;
  ChaseResult result =
      StorageShardChase(db, sigma, options, FastStorageOptions(4), &stats);
  EXPECT_EQ(result.outcome.status, Status::kCancelled);
  EXPECT_FALSE(result.complete);
  ExpectNoZombies("cancelled storage run");
  Term::SetNextNullId(null_base);
}

}  // namespace
}  // namespace gqe
