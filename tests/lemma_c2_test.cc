// Lemma C.2 (Appendix C.1): every witnessing homomorphism of a certain
// answer decomposes as a *specialization*: variables split into a
// ground-mapped set V and components of q[V] that each live inside the
// chase subtree rooted at a single database atom's bag ("squid
// decomposition"). These tests verify that structure on live chase
// portions, using the bag forest's parentage to identify subtrees.

#include <gtest/gtest.h>

#include <functional>
#include <unordered_map>

#include "guarded/chase_tree.h"
#include "guarded/saturation.h"
#include "parser/parser.h"
#include "query/homomorphism.h"
#include "query/substitution.h"

namespace gqe {
namespace {

/// Root bag (index) of the subtree containing a null, or -1 for ground.
int RootOfNull(const ChaseTree& tree, Term t) {
  if (!t.IsNull()) return -1;
  int bag = tree.BagOfNull(t);
  if (bag < 0) return -1;
  while (tree.bags[bag].parent != -1) bag = tree.bags[bag].parent;
  return bag;
}

/// Verifies the Lemma C.2 shape for one homomorphism: components of the
/// query connected through null-mapped variables must map into a single
/// root subtree each.
bool DecomposesPerLemmaC2(const ChaseTree& tree, const CQ& cq,
                          const Substitution& hom) {
  // Union-find over query variables joined when they share an atom and
  // both map to nulls.
  std::vector<Term> vars = cq.AllVariables();
  std::unordered_map<Term, Term> parent;
  for (Term v : vars) parent[v] = v;
  std::function<Term(Term)> find = [&](Term v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const Atom& atom : cq.atoms()) {
    Term first = Term();
    bool has_first = false;
    for (Term t : atom.args()) {
      if (!t.IsVariable() || !hom.Apply(t).IsNull()) continue;
      if (!has_first) {
        first = t;
        has_first = true;
      } else {
        parent[find(first)] = find(t);
      }
    }
  }
  // Each null-component must live in one root subtree.
  std::unordered_map<Term, int> component_root;
  for (Term v : vars) {
    Term image = hom.Apply(v);
    if (!image.IsNull()) continue;
    const int root = RootOfNull(tree, image);
    if (root < 0) return false;  // untracked null
    Term rep = find(v);
    auto it = component_root.find(rep);
    if (it == component_root.end()) {
      component_root[rep] = root;
    } else if (it->second != root) {
      return false;  // one component spans two subtrees: impossible
    }
  }
  return true;
}

class LemmaC2Test : public ::testing::Test {
 protected:
  /// Checks all witnessing homs of `query_text` over (db, sigma).
  void ExpectDecomposition(const char* db_text, const char* sigma_text,
                           const char* query_text, bool expect_answer) {
    Instance db = ParseDatabase(db_text);
    TgdSet sigma = ParseTgds(sigma_text);
    CQ cq = ParseCq(query_text);
    ChaseTreeOptions options;
    options.blocking_repeats =
        static_cast<int>(cq.AllVariables().size()) + 1;
    ChaseTree tree = BuildChaseTree(db, sigma, options);
    std::vector<Substitution> homs =
        HomomorphismSearch(cq.atoms(), tree.portion).FindAll();
    EXPECT_EQ(!homs.empty(), expect_answer);
    for (const Substitution& hom : homs) {
      EXPECT_TRUE(DecomposesPerLemmaC2(tree, cq, hom));
    }
  }
};

TEST_F(LemmaC2Test, PurelyGroundWitness) {
  ExpectDecomposition("c2r(a, b). c2s(b).", "c2r(X, Y) -> c2t(X).",
                      "c2q() :- c2r(X, Y), c2s(Y), c2t(X).", true);
}

TEST_F(LemmaC2Test, SingleAnonymousComponent) {
  ExpectDecomposition("c2p(u).", "c2p(X) -> c2e(X, Y), c2e(Y, Z).",
                      "c2q2() :- c2e(X, Y), c2e(Y, Z).", true);
}

TEST_F(LemmaC2Test, TwoIndependentComponents) {
  // Two employees get separate anonymous departments: two components,
  // each inside its own subtree.
  ExpectDecomposition("c2emp(e1). c2emp(e2).",
                      "c2emp(X) -> c2w(X, D2).",
                      "c2q3() :- c2w(X, D2), c2w(Y, E2).", true);
}

TEST_F(LemmaC2Test, MixedGroundAndAnonymous) {
  ExpectDecomposition(
      "c2stud(s). c2uni(mit).",
      "c2stud(X) -> c2enr(X, U), c2uni(U).",
      "c2q4() :- c2enr(X, U), c2uni(U), c2uni(W).", true);
}

TEST_F(LemmaC2Test, NoWitnessNoAnswer) {
  ExpectDecomposition("c2lone(z).", "c2p2(X) -> c2e2(X, Y).",
                      "c2q5() :- c2e2(X, Y).", false);
}

TEST_F(LemmaC2Test, DeepSubtreeComponent) {
  ExpectDecomposition(
      "c2seed(r).",
      "c2seed(X) -> c2n(X, Y). c2n(X, Y) -> c2n(Y, Z).",
      "c2q6() :- c2n(A, B), c2n(B, C2), c2n(C2, D2).", true);
}

}  // namespace
}  // namespace gqe
