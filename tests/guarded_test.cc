#include <gtest/gtest.h>

#include "chase/chase.h"
#include "guarded/chase_tree.h"
#include "guarded/omq_eval.h"
#include "guarded/saturation.h"
#include "guarded/type_closure.h"
#include "parser/parser.h"
#include "query/evaluation.h"

namespace gqe {
namespace {

Term C(const char* name) { return Term::Constant(name); }

TEST(TypeClosureTest, FullRulesCloseWithinBag) {
  TgdSet sigma = ParseTgds(R"(
    gr(X, Y) -> gs(Y, X).
    gr(X, Y), gs(Y, X) -> gboth(X).
  )");
  TypeClosureEngine engine(sigma);
  std::vector<Atom> atoms = {Atom::Make("gr", {C("t1"), C("t2")})};
  std::vector<Term> elements = {C("t1"), C("t2")};
  std::vector<Atom> closure = engine.Closure(atoms, elements);
  Instance closed;
  closed.InsertAll(closure);
  EXPECT_TRUE(closed.Contains(Atom::Make("gs", {C("t2"), C("t1")})));
  EXPECT_TRUE(closed.Contains(Atom::Make("gboth", {C("t1")})));
  EXPECT_EQ(closed.size(), 3u);
}

TEST(TypeClosureTest, ExistentialChildPropagatesBack) {
  // person(X) -> exists Y. knows(X,Y), person(Y);
  // knows(X,Y) -> popular(X): popular comes back from the child bag.
  TgdSet sigma = ParseTgds(R"(
    gperson(X) -> gknows(X, Y), gperson(Y).
    gknows(X, Y) -> gpopular(X).
  )");
  TypeClosureEngine engine(sigma);
  std::vector<Atom> atoms = {Atom::Make("gperson", {C("g1")})};
  std::vector<Atom> closure = engine.Closure(atoms, {C("g1")});
  Instance closed;
  closed.InsertAll(closure);
  EXPECT_TRUE(closed.Contains(Atom::Make("gpopular", {C("g1")})));
}

TEST(TypeClosureTest, RecursiveShapesTerminate) {
  // A(X) -> exists Y. E(X,Y), A(Y): infinitely deep chase, finitely many
  // shapes.
  TgdSet sigma = ParseTgds("ga(X) -> ge(X, Y), ga(Y).");
  TypeClosureEngine engine(sigma);
  std::vector<Atom> closure =
      engine.Closure({Atom::Make("ga", {C("g2")})}, {C("g2")});
  EXPECT_GE(closure.size(), 1u);
  EXPECT_LT(engine.num_shapes(), 20u);
}

TEST(TypeClosureTest, MemoizationReusesShapes) {
  TgdSet sigma = ParseTgds("ga(X) -> ge(X, Y), ga(Y).");
  TypeClosureEngine engine(sigma);
  engine.Closure({Atom::Make("ga", {C("g3")})}, {C("g3")});
  const size_t shapes_after_first = engine.num_shapes();
  engine.Closure({Atom::Make("ga", {C("g4")})}, {C("g4")});
  EXPECT_EQ(engine.num_shapes(), shapes_after_first);
}

TEST(TypeClosureTest, DeepPropagationChain) {
  // Ground consequence requiring a two-level round trip:
  // a(X) -> exists Y. e(X,Y); e(X,Y) -> exists Z. f(Y,Z);
  // f(Y,Z) -> done(Y); e(X,Y), done(Y)... done(Y) is about a null.
  // Instead: e(X,Y) -> mark(X); f(Y,Z) -> deep(Y) gives null-level atom;
  // use: a(X) -> e(X,Y); e(X,Y) -> f(X); so f comes straight back.
  TgdSet sigma = ParseTgds(R"(
    ta(X) -> te(X, Y).
    te(X, Y) -> tf(Y, Z).
    tf(Y, Z) -> tg(Y).
    te(X, Y), tg(Y) -> tdone(X).
  )");
  TypeClosureEngine engine(sigma);
  std::vector<Atom> closure =
      engine.Closure({Atom::Make("ta", {C("t5")})}, {C("t5")});
  Instance closed;
  closed.InsertAll(closure);
  EXPECT_TRUE(closed.Contains(Atom::Make("tdone", {C("t5")})));
}

TEST(GroundSaturationTest, MatchesBoundedChaseGroundPart) {
  TgdSet sigma = ParseTgds(R"(
    semployee(X) -> sworks(X, D), sdept(D).
    sworks(X, D) -> sstaff(X).
    smanager(X, Y) -> semployee(X), semployee(Y).
  )");
  Instance db = ParseDatabase(R"(
    smanager(mia, noa).
    semployee(oli).
  )");
  Instance saturated = GroundSaturation(db, sigma);
  // Cross-check against a level-bounded oblivious chase: ground atoms of
  // the chase restricted to dom(D).
  ChaseOptions chase_options;
  chase_options.max_level = 6;
  ChaseResult chased = Chase(db, sigma, chase_options);
  Instance expected;
  for (const Atom& atom : chased.instance.atoms()) {
    bool ground = true;
    for (Term t : atom.args()) {
      if (!db.InDomain(t)) ground = false;
    }
    if (ground) expected.Insert(atom);
  }
  EXPECT_TRUE(expected.SubsetOf(saturated))
      << "missing: chase ground atoms not in saturation";
  EXPECT_TRUE(saturated.SubsetOf(expected) || saturated.size() >= expected.size());
  EXPECT_TRUE(saturated.Contains(Atom::Make("sstaff", {C("mia")})));
  EXPECT_TRUE(saturated.Contains(Atom::Make("sstaff", {C("noa")})));
  EXPECT_TRUE(saturated.Contains(Atom::Make("sstaff", {C("oli")})));
}

TEST(GroundSaturationTest, CrossAtomJoinWithinGuard) {
  // The guard g(X,Y,Z) covers side atoms from different derivations.
  TgdSet sigma = ParseTgds(R"(
    gtri(X, Y, Z) -> gea(X, Y).
    gtri(X, Y, Z) -> geb(Y, Z).
    gtri(X, Y, Z), gea(X, Y), geb(Y, Z) -> gfull(X, Z).
  )");
  Instance db = ParseDatabase("gtri(u, v, w).");
  Instance saturated = GroundSaturation(db, sigma);
  EXPECT_TRUE(saturated.Contains(Atom::Make("gfull", {C("u"), C("w")})));
}

TEST(GroundSaturationTest, MultiRoundGroundPropagation) {
  // Consequences flow between bags over shared constants across rounds.
  TgdSet sigma = ParseTgds(R"(
    ha(X) -> hb(X).
    hlink(X, Y), hb(X) -> hb(Y).
  )");
  Instance db = ParseDatabase(R"(
    ha(h1). hlink(h1, h2). hlink(h2, h3).
  )");
  Instance saturated = GroundSaturation(db, sigma);
  EXPECT_TRUE(saturated.Contains(Atom::Make("hb", {C("h3")})));
}

TEST(CertainAtomTest, EntailedAndNot) {
  TgdSet sigma = ParseTgds("ca(X) -> cb(X).");
  Instance db = ParseDatabase("ca(c9).");
  EXPECT_TRUE(CertainAtom(db, sigma, Atom::Make("cb", {C("c9")})));
  EXPECT_FALSE(CertainAtom(db, sigma, Atom::Make("cb", {C("c_absent")})));
}

TEST(ChaseTreeTest, PortionContainsGroundSaturation) {
  TgdSet sigma = ParseTgds(R"(
    pta(X) -> pte(X, Y), pta(Y).
  )");
  Instance db = ParseDatabase("pta(p1).");
  ChaseTreeOptions options;
  options.blocking_repeats = 2;
  ChaseTree tree = BuildChaseTree(db, sigma, options);
  EXPECT_FALSE(tree.truncated);
  EXPECT_TRUE(tree.portion.Contains(Atom::Make("pta", {C("p1")})));
  // Nulls exist and the forest is finite despite the infinite chase.
  EXPECT_GT(tree.bags.size(), 1u);
  EXPECT_LT(tree.bags.size(), 50u);
}

TEST(ChaseTreeTest, BlockingBoundsDepth) {
  TgdSet sigma = ParseTgds("bta(X) -> bte(X, Y), bta(Y).");
  Instance db = ParseDatabase("bta(b1).");
  ChaseTreeOptions shallow;
  shallow.blocking_repeats = 1;
  ChaseTreeOptions deep;
  deep.blocking_repeats = 4;
  ChaseTree t1 = BuildChaseTree(db, sigma, shallow);
  ChaseTree t4 = BuildChaseTree(db, sigma, deep);
  EXPECT_LT(t1.bags.size(), t4.bags.size());
}

TEST(GuardedCertainAnswersTest, AnswersOverDbConstantsOnly) {
  TgdSet sigma = ParseTgds("qperson(X) -> qparent(X, Y), qperson(Y).");
  Instance db = ParseDatabase("qperson(ada).");
  UCQ q = ParseUcq("qq(X) :- qparent(X, Y).");
  auto answers = GuardedCertainAnswers(db, sigma, q);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], C("ada"));
}

TEST(GuardedCertainAnswersTest, ExistentialJoinInChase) {
  // q() :- parent(X,Y), parent(Y,Z): needs two chase levels.
  TgdSet sigma = ParseTgds("qperson2(X) -> qparent2(X, Y), qperson2(Y).");
  Instance db = ParseDatabase("qperson2(bo).");
  UCQ q = ParseUcq("qb() :- qparent2(X, Y), qparent2(Y, Z).");
  EXPECT_TRUE(GuardedCertainlyHolds(db, sigma, q, {}));
}

TEST(GuardedCertainAnswersTest, NoSpuriousAnswers) {
  // The chase adds anonymous departments; distinct employees get
  // *distinct* anonymous departments, so only reflexive colleague pairs
  // are certain.
  TgdSet sigma = ParseTgds("demp(X) -> dworks(X, D).");
  Instance db = ParseDatabase("demp(eve). demp(fay).");
  UCQ q = ParseUcq("dq(X, Y) :- dworks(X, D), dworks(Y, D).");
  auto answers = GuardedCertainAnswers(db, sigma, q);
  // eve and fay work in *different* anonymous departments; only the
  // reflexive pairs are certain.
  std::vector<std::vector<Term>> expected = {{C("eve"), C("eve")},
                                             {C("fay"), C("fay")}};
  EXPECT_EQ(answers, expected);
}

TEST(GuardedCertainAnswersTest, MatchesChaseOnTerminatingSet) {
  // For a weakly-acyclic guarded set the chase is finite; certain answers
  // from the portion must coincide with direct evaluation on the full
  // chase.
  TgdSet sigma = ParseTgds(R"(
    tstud(X) -> tenr(X, U), tuni(U).
    tenr(X, U) -> tactive(X).
  )");
  Instance db = ParseDatabase("tstud(gil). tstud(hal).");
  UCQ q = ParseUcq("tq(X) :- tactive(X).");
  ChaseResult chased = Chase(db, sigma);
  ASSERT_TRUE(chased.complete);
  auto expected_raw = EvaluateUCQ(q, chased.instance);
  auto actual = GuardedCertainAnswers(db, sigma, q);
  EXPECT_EQ(actual, expected_raw);
}

TEST(GuardedCertainAnswersTest, TreeDpAgreesWithBacktracking) {
  TgdSet sigma = ParseTgds("wperson(X) -> wparent(X, Y), wperson(Y).");
  Instance db = ParseDatabase("wperson(ida).");
  UCQ q = ParseUcq("wq() :- wparent(X, Y), wparent(Y, Z), wparent(Z, W).");
  GuardedEvalOptions plain;
  GuardedEvalOptions with_dp;
  with_dp.use_tree_dp = true;
  EXPECT_EQ(GuardedCertainlyHolds(db, sigma, q, {}, plain),
            GuardedCertainlyHolds(db, sigma, q, {}, with_dp));
  EXPECT_TRUE(GuardedCertainlyHolds(db, sigma, q, {}, with_dp));
}

TEST(GuardedCertainAnswersTest, DisjunctionOfShapes) {
  TgdSet sigma = ParseTgds(R"(
    ucat(X) -> umammal(X).
    udog(X) -> umammal(X).
  )");
  Instance db = ParseDatabase("ucat(kiki). udog(rex). ufish(blub).");
  UCQ q = ParseUcq(R"(
    uq(X) :- umammal(X).
  )");
  auto answers = GuardedCertainAnswers(db, sigma, q);
  EXPECT_EQ(answers.size(), 2u);
}

}  // namespace
}  // namespace gqe
