#include <gtest/gtest.h>

#include "guarded/omq_eval.h"
#include "linear/linear_chase.h"
#include "linear/rewriting.h"
#include "parser/parser.h"
#include "query/containment.h"
#include "query/evaluation.h"

namespace gqe {
namespace {

Term C(const char* name) { return Term::Constant(name); }

TEST(RewritingTest, SingleInclusionDependency) {
  // project(X) -> hasLeader(X, Y): q(X) :- hasLeader(X,Y) rewrites to
  // include q(X) :- project(X).
  TgdSet sigma = ParseTgds("lproject(X) -> lhasleader(X, Y).");
  UCQ q = ParseUcq("lq(X) :- lhasleader(X, Y).");
  RewriteResult result = RewriteUnderLinearTgds(q, sigma);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.rewriting.num_disjuncts(), 2u);
  Instance db = ParseDatabase("lproject(apollo).");
  auto answers = EvaluateUCQ(result.rewriting, db);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], C("apollo"));
}

TEST(RewritingTest, ExistentialBlocksSharedVariable) {
  // r(X) -> s(X, Y): query q(X) :- s(X,Y), t(Y) must NOT rewrite the
  // s-atom alone (Y is shared with t and would absorb an existential).
  TgdSet sigma = ParseTgds("lr(X) -> ls(X, Y).");
  UCQ q = ParseUcq("lq2(X) :- ls(X, Y), lt(Y).");
  RewriteResult result = RewriteUnderLinearTgds(q, sigma);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.rewriting.num_disjuncts(), 1u);  // only the original
}

TEST(RewritingTest, AnswerVariableBlocksExistential) {
  // r(X) -> s(X, Y): q(X, Y) :- s(X, Y) cannot drop Y (it is an answer
  // variable).
  TgdSet sigma = ParseTgds("lr2(X) -> ls2(X, Y).");
  UCQ q = ParseUcq("lq3(X, Y) :- ls2(X, Y).");
  RewriteResult result = RewriteUnderLinearTgds(q, sigma);
  EXPECT_EQ(result.rewriting.num_disjuncts(), 1u);
}

TEST(RewritingTest, TransitiveRewritingChain) {
  // a(X) -> b(X); b(X) -> c(X): q(X) :- c(X) gains b and a variants.
  TgdSet sigma = ParseTgds(R"(
    la(X) -> lb(X).
    lb(X) -> lc(X).
  )");
  UCQ q = ParseUcq("lq4(X) :- lc(X).");
  RewriteResult result = RewriteUnderLinearTgds(q, sigma);
  EXPECT_EQ(result.rewriting.num_disjuncts(), 3u);
}

TEST(RewritingTest, MultiAtomPieceUnification) {
  // r(X) -> s(X,Y), t(Y): the piece {s(X,Z), t(Z)} rewrites jointly to
  // r(X) even though Z is shared between the two atoms.
  TgdSet sigma = ParseTgds("lr3(X) -> ls3(X, Y), lt3(Y).");
  UCQ q = ParseUcq("lq5(X) :- ls3(X, Z), lt3(Z).");
  RewriteResult result = RewriteUnderLinearTgds(q, sigma);
  Instance db = ParseDatabase("lr3(kepler).");
  auto answers = EvaluateUCQ(result.rewriting, db);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], C("kepler"));
}

TEST(RewritingTest, AgreesWithGuardedEngineOnLinearSets) {
  // Linear sets are guarded: the rewriting-based and chase-portion-based
  // evaluations must agree.
  TgdSet sigma = ParseTgds(R"(
    lemp(X) -> lworks(X, Y).
    lworks(X, Y) -> ldept(Y).
    ldept(Y) -> lorg(Y, Z).
  )");
  Instance db = ParseDatabase("lemp(ana). lworks(bob, sales).");
  UCQ q1 = ParseUcq("lqa(X) :- lworks(X, Y).");
  UCQ q2 = ParseUcq("lqb(X) :- lworks(X, Y), lorg(Y, Z).");
  for (const UCQ& q : {q1, q2}) {
    auto via_rewriting = LinearCertainAnswersViaRewriting(db, sigma, q);
    auto via_guarded = GuardedCertainAnswers(db, sigma, q);
    EXPECT_EQ(via_rewriting, via_guarded) << q.ToString();
  }
}

TEST(LinearChaseTest, StabilizationDetected) {
  TgdSet sigma = ParseTgds(R"(
    na(X) -> nb(X).
    nb(X) -> nc(X, Y).
    nc(X, Y) -> nc2(Y, X).
  )");
  Instance db = ParseDatabase("na(n1).");
  UCQ q = ParseUcq("nq(X) :- nc(X, Y).");
  LinearChaseEvalResult result =
      LinearCertainAnswersViaChase(db, sigma, q, /*max_level=*/16);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0][0], C("n1"));
  EXPECT_LE(result.stabilization_level, 4);
}

TEST(LinearChaseTest, InfiniteChaseStillAnswers) {
  // a(X) -> e(X,Y); e(X,Y) -> e(Y,Z): infinite chase; answers stabilize.
  TgdSet sigma = ParseTgds(R"(
    ma(X) -> me(X, Y).
    me(X, Y) -> me(Y, Z).
  )");
  Instance db = ParseDatabase("ma(m1).");
  UCQ q = ParseUcq("mq() :- me(X, Y), me(Y, Z).");
  LinearChaseEvalResult result =
      LinearCertainAnswersViaChase(db, sigma, q, /*max_level=*/12);
  EXPECT_EQ(result.answers.size(), 1u);  // Boolean true: the empty tuple
  auto via_rewriting = LinearCertainAnswersViaRewriting(db, sigma, q);
  EXPECT_EQ(result.answers, via_rewriting);
}

TEST(LinearChaseTest, RewritingMatchesChaseOnMany) {
  // Randomized-ish small sweep: several queries against one linear set.
  TgdSet sigma = ParseTgds(R"(
    sa(X, Y) -> sb(Y, X).
    sb(X, Y) -> sc(X, Z).
    sc(X, Y) -> sd(Y).
  )");
  Instance db = ParseDatabase(R"(
    sa(u1, u2). sa(u2, u3). sb(u3, u4). sc(u5, u6).
  )");
  std::vector<const char*> queries = {
      "zq1(X) :- sb(X, Y).",
      "zq2(X, Y) :- sb(X, Y).",
      "zq3(X) :- sc(X, Y).",
      "zq4() :- sd(X).",
      "zq5(X) :- sb(X, Y), sc(X, Z).",
  };
  for (const char* text : queries) {
    UCQ q = ParseUcq(text);
    auto via_rewriting = LinearCertainAnswersViaRewriting(db, sigma, q);
    auto via_chase = LinearCertainAnswersViaChase(db, sigma, q, 16).answers;
    EXPECT_EQ(via_rewriting, via_chase) << text;
    auto via_guarded = GuardedCertainAnswers(db, sigma, q);
    EXPECT_EQ(via_rewriting, via_guarded) << text;
  }
}

}  // namespace
}  // namespace gqe
