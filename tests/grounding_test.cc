#include <gtest/gtest.h>

#include "approx/grounding.h"
#include "approx/meta.h"
#include "omq/containment.h"
#include "omq/evaluation.h"
#include "parser/parser.h"

namespace gqe {
namespace {

TEST(GroundingTest, GuardAtomDerivesComponent) {
  // Σ = {r(X,Y) -> s(X)} (full, guarded): the piece s(X) is derivable
  // from the single guard atom r(X, Y'), so a grounding with an r-atom
  // must appear.
  TgdSet sigma = ParseTgds("zr(X, Y) -> zs(X).");
  CQ cq = ParseCq("zq() :- zs(X).");
  Schema schema;
  schema.Add("zr", 2);
  schema.Add("zs", 1);
  auto groundings = EnumerateSigmaGroundings(cq, sigma, schema, -1);
  ASSERT_FALSE(groundings.empty());
  bool found_r_grounding = false;
  bool found_s_grounding = false;
  for (const auto& g : groundings) {
    for (const Atom& atom : g.grounding.atoms()) {
      if (atom.predicate() == predicates::Lookup("zr")) {
        found_r_grounding = true;
      }
      if (atom.predicate() == predicates::Lookup("zs")) {
        found_s_grounding = true;
      }
    }
  }
  EXPECT_TRUE(found_r_grounding);
  EXPECT_TRUE(found_s_grounding);
}

TEST(GroundingTest, ApproximationContainedInOriginal) {
  // Lemma C.7 (1): Q_k^a ⊆ Q.
  TgdSet sigma = ParseTgds("zr2(X, Y) -> zs2(X).");
  UCQ q = ParseUcq("zq2(X) :- zs2(X).");
  Omq omq = Omq::WithFullDataSchema(sigma, q);
  Omq approximation = GroundingApproximationOmq(omq, 2);
  ASSERT_GT(approximation.query.num_disjuncts(), 0u);
  EXPECT_TRUE(OmqContainedSameOntology(approximation, omq));
}

TEST(GroundingTest, AgreesOnLowTreewidthDatabases) {
  // Lemma C.7 (2): on databases of treewidth <= k, Q and Q_k^a agree.
  TgdSet sigma = ParseTgds("zr3(X, Y) -> zs3(X).");
  UCQ q = ParseUcq("zq3() :- zs3(X), zr3(X, Y).");
  Omq omq = Omq::WithFullDataSchema(sigma, q);
  Omq approximation = GroundingApproximationOmq(omq, 1);
  ASSERT_GT(approximation.query.num_disjuncts(), 0u);
  // Tree-shaped (treewidth-1) databases.
  Instance db1 = ParseDatabase("zr3(a, b). zr3(b, c).");
  EXPECT_EQ(OmqHolds(omq, db1, {}), OmqHolds(approximation, db1, {}));
  Instance db2 = ParseDatabase("zs3(solo).");
  EXPECT_EQ(OmqHolds(omq, db2, {}), OmqHolds(approximation, db2, {}));
}

TEST(GroundingTest, Example44ViaGroundings) {
  // The grounding-based approximation reaches the same Example 4.4
  // verdict as the contraction-based procedure.
  TgdSet sigma = ParseTgds("zrr2(X) -> zrr4(X).");
  UCQ q = ParseUcq(R"(
    zq4() :- zp(X2,X1), zp(X4,X1), zp(X2,X3), zp(X4,X3),
             zrr1(X1), zrr2(X2), zrr3(X3), zrr4(X4).
  )");
  Omq omq = Omq::WithFullDataSchema(sigma, q);
  Omq approximation = GroundingApproximationOmq(omq, 1);
  ASSERT_GT(approximation.query.num_disjuncts(), 0u);
  // Both directions hold: the OMQ is UCQ_1-equivalent.
  EXPECT_TRUE(OmqContainedSameOntology(approximation, omq));
  EXPECT_TRUE(OmqContainedSameOntology(omq, approximation));
}

TEST(GroundingTest, TreewidthFilterApplies) {
  TgdSet sigma = ParseTgds("zr5(X, Y) -> zs5(X).");
  CQ cq = ParseCq("zq5() :- zp5(A, B), zp5(B, C), zp5(C, A).");
  Schema schema;
  schema.Add("zp5", 2);
  schema.Add("zr5", 2);
  schema.Add("zs5", 1);
  for (const auto& g : EnumerateSigmaGroundings(cq, sigma, schema, 1)) {
    EXPECT_LE(g.grounding.TreewidthOfExistentialPart(), 1);
  }
}

TEST(GroundingTest, MetaDecisionsAgreeAcrossRoutes) {
  // The contraction-based (Prop 5.11 route) and grounding-based
  // (Prop 5.2 route) meta decisions agree on Example 4.4 and friends.
  struct Case {
    const char* sigma;
    const char* query;
    int k;
  };
  const Case cases[] = {
      {"zmr2(X) -> zmr4(X).",
       "zmq1() :- zmp(X2,X1), zmp(X4,X1), zmp(X2,X3), zmp(X4,X3), "
       "zmr1(X1), zmr2(X2), zmr3(X3), zmr4(X4).",
       1},
      {"zmr2(X) -> zmr4(X).", "zmq2() :- zmp(X, Y), zmp(Y, Z).", 1},
      {"zma(X) -> zmb(X).", "zmq3() :- zme(X,Y), zme(Y,Z), zme(Z,X).", 1},
  };
  for (const Case& c : cases) {
    TgdSet sigma = ParseTgds(c.sigma);
    UCQ q = ParseUcq(c.query);
    Omq omq = Omq::WithFullDataSchema(sigma, q);
    MetaResult via_contractions = DecideUcqkEquivalenceOmqFullSchema(omq, c.k);
    MetaResult via_groundings = DecideUcqkEquivalenceOmqViaGroundings(omq, c.k);
    EXPECT_EQ(via_contractions.equivalent, via_groundings.equivalent)
        << c.query;
  }
}

TEST(GroundingTest, RejectsNonFullOntologies) {
  TgdSet sigma = ParseTgds("zr6(X) -> zs6(X, Y).");
  CQ cq = ParseCq("zq6() :- zs6(X, Y).");
  Schema schema;
  schema.Add("zr6", 1);
  schema.Add("zs6", 2);
  EXPECT_DEATH(EnumerateSigmaGroundings(cq, sigma, schema, 1),
               "full guarded");
}

}  // namespace
}  // namespace gqe
