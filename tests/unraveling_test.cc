#include <gtest/gtest.h>

#include "chase/chase.h"
#include "graph/graph.h"
#include "graph/treewidth.h"
#include "guarded/omq_eval.h"
#include "guarded/saturation.h"
#include "guarded/unraveling.h"
#include "omq/evaluation.h"
#include "parser/parser.h"
#include "query/evaluation.h"
#include "query/homomorphism.h"

namespace gqe {
namespace {

Term C(const char* name) { return Term::Constant(name); }

TEST(GuardedUnravelingTest, MapsHomomorphicallyToOriginal) {
  Instance db = ParseDatabase(R"(
    gue(a, b). gue(b, c). gue(c, a).
  )");
  Substitution to_original;
  Instance unraveled =
      GuardedUnraveling(db, {C("a"), C("b")}, /*depth=*/3, &to_original);
  // Every unraveled fact maps to a db fact under the copy map.
  for (const Atom& atom : unraveled.atoms()) {
    std::vector<Term> mapped;
    for (Term t : atom.args()) mapped.push_back(to_original.Apply(t));
    EXPECT_TRUE(db.Contains(Atom(atom.predicate(), mapped)))
        << atom.ToString();
  }
  // The root facts appear uncopied.
  EXPECT_TRUE(unraveled.Contains(Atom::Make("gue", {C("a"), C("b")})));
}

TEST(GuardedUnravelingTest, BreaksCycles) {
  // The triangle unravels into a tree: no copy-level triangle except at
  // the (uncopied) root atoms.
  Instance db = ParseDatabase("gue2(a, b). gue2(b, c). gue2(c, a).");
  Instance unraveled = GuardedUnraveling(db, {C("a"), C("b")}, 4);
  // Treewidth stays 1 away from the root (tree of binary bags).
  std::vector<Term> vertex_terms;
  Graph gaifman = GaifmanGraph(unraveled, &vertex_terms);
  TreewidthResult tw = ComputeTreewidth(gaifman);
  EXPECT_LE(tw.upper_bound, 2);
  EXPECT_GT(unraveled.size(), db.size());
}

TEST(GuardedUnravelingTest, PreservesAtomicConsequencesAtRoot) {
  // Lemma D.7 shape: guarded Σ derives the same root atoms on D and on
  // the unraveling.
  TgdSet sigma = ParseTgds(R"(
    gur(X, Y) -> gum(X).
    gum(X), gur(X, Y) -> gud(Y).
  )");
  Instance db = ParseDatabase("gur(a, b). gur(b, c).");
  Instance unraveled = GuardedUnraveling(db, {C("a"), C("b")}, 4);
  Instance sat_db = GroundSaturation(db, sigma);
  Instance sat_un = GroundSaturation(unraveled, sigma);
  // Atoms over the root elements coincide.
  for (const Atom& atom : sat_db.AtomsOver({C("a"), C("b")})) {
    EXPECT_TRUE(sat_un.Contains(atom)) << atom.ToString();
  }
  for (const Atom& atom : sat_un.AtomsOver({C("a"), C("b")})) {
    EXPECT_TRUE(sat_db.Contains(atom)) << atom.ToString();
  }
}

TEST(KUnravelingTest, TreewidthBoundedUpToAnchors) {
  Instance db = ParseDatabase(R"(
    kue(a, b). kue(b, c). kue(c, d). kue(d, a). kue(a, c).
  )");
  Substitution to_original;
  Instance unraveled = KUnraveling(db, {C("a")}, /*k=*/1, /*depth=*/3, 512,
                                   &to_original);
  // Remove the anchor and check the rest has treewidth <= 1... the
  // Gaifman graph without a is a forest of copied bags.
  std::vector<Term> vertex_terms;
  Graph gaifman = GaifmanGraph(unraveled, &vertex_terms);
  std::vector<int> keep;
  for (size_t i = 0; i < vertex_terms.size(); ++i) {
    if (vertex_terms[i] != C("a")) keep.push_back(static_cast<int>(i));
  }
  Graph without_anchor = gaifman.InducedSubgraph(keep);
  EXPECT_LE(ComputeTreewidth(without_anchor).upper_bound, 1);
  // Homomorphism to D fixing the anchor.
  for (const Atom& atom : unraveled.atoms()) {
    std::vector<Term> mapped;
    for (Term t : atom.args()) mapped.push_back(to_original.Apply(t));
    EXPECT_TRUE(db.Contains(Atom(atom.predicate(), mapped)));
  }
}

TEST(KUnravelingTest, PreservesTreewidth1OmqAnswers) {
  // Lemma C.7(3) infrastructure: a (G, UCQ_1) OMQ true on D stays true on
  // the k=1 unraveling (for the Boolean query case).
  TgdSet sigma = ParseTgds("kur(X, Y) -> kum(X).");
  Instance db = ParseDatabase("kur(a, b). kur(b, c).");
  Omq omq = Omq::WithFullDataSchema(
      sigma, ParseUcq("kuq() :- kum(X), kur(X, Y), kum(Y)."));
  ASSERT_TRUE(OmqHolds(omq, db, {}));
  Instance unraveled = KUnraveling(db, {}, 1, 3, 512);
  EXPECT_TRUE(OmqHolds(omq, unraveled, {}));
}

TEST(DiversifyTest, ExampleD9Untangles) {
  // Example D.9: the shared tag constant b is split per atom because the
  // grid query only needs the first two positions.
  TgdSet sigma = ParseTgds(R"(
    dxp(X, Y, Z) -> dxe(X, Y).
  )");
  Instance db = ParseDatabase(R"(
    dxp(a1, a2, tag). dxp(a2, a3, tag).
  )");
  Omq omq = Omq::WithFullDataSchema(
      sigma, ParseUcq("dxq() :- dxe(X, Y), dxe(Y, Z)."));
  ASSERT_TRUE(OmqHolds(omq, db, {}));
  DiversifyResult result = DiversifyDatabase(db, omq, {C("a1"), C("a2"),
                                                       C("a3")});
  EXPECT_GE(result.splits, 1u);
  EXPECT_TRUE(OmqHolds(omq, result.diversified, {}));
  // The tag column no longer shares a constant across the two atoms.
  Term shared = C("tag");
  int occurrences = 0;
  for (const Atom& atom : result.diversified.atoms()) {
    for (Term t : atom.args()) {
      if (t == shared) ++occurrences;
    }
  }
  EXPECT_LE(occurrences, 1);
}

TEST(DiversifyTest, NeededSharingSurvives) {
  // A join the query relies on cannot be split away.
  Omq omq = Omq::WithFullDataSchema(
      {}, ParseUcq("dyq() :- dye(X, Y), dye(Y, Z)."));
  Instance db = ParseDatabase("dye(u, v). dye(v, w).");
  DiversifyResult result = DiversifyDatabase(db, omq, {});
  EXPECT_TRUE(OmqHolds(omq, result.diversified, {}));
  // v's join position must survive in some form: the query still needs a
  // 2-path.
  EXPECT_EQ(result.diversified.size(), 2u);
}

}  // namespace
}  // namespace gqe
