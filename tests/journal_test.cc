// Write-ahead request journal tests (serve/journal.h): the record codec
// must round-trip every record type and reject every torn, bit-flipped
// or impossible byte sequence without fabricating a record; recovery
// must truncate a torn active tail at *every* byte boundary, skip (and
// count) damage inside sealed segments, rotate and compact losslessly;
// and the engine-level contract — a restarted ServeEngine on the same
// journal dir replays completed results byte-identically, restores the
// retry ladder of in-flight requests, and serves duplicate ids from the
// journal-backed cache without firing a worker.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "serve/journal.h"
#include "serve/request.h"
#include "serve/service.h"

namespace gqe {
namespace {

namespace fs = std::filesystem;

constexpr const char* kChainProgram = R"(
jv0(a). jv0(b). jv0(c).
jvlink(a, b). jvlink(b, c).
jv0(X) -> jv1(X).
jv1(X) -> jv2(X).
jv2(X) -> jv3(X).
jv3(X) -> jv4(X).
jv4(X) -> jv5(X).
jv5(X) -> jv6(X).
jv6(X) -> jv7(X).
jv7(X) -> jv8(X).
jvlink(X, Y) -> jvconn(X, Y).
jvq(X) :- jv8(X).
)";

std::string WriteProgram(const std::string& name) {
  std::string path = ::testing::TempDir() + "gqe_journal_" + name + ".gqe";
  std::FILE* file = std::fopen(path.c_str(), "w");
  EXPECT_NE(file, nullptr) << path;
  if (file != nullptr) {
    std::fputs(kChainProgram, file);
    std::fclose(file);
  }
  return path;
}

/// A fresh, empty journal directory per test case.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "gqe_journal_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

JournalRecord Admitted(const std::string& id, const std::string& line) {
  JournalRecord r;
  r.type = JournalRecordType::kAdmitted;
  r.id = id;
  r.request_line = line;
  return r;
}

JournalRecord Attempt(const std::string& id, uint32_t attempt, bool degraded,
                      const std::string& cause) {
  JournalRecord r;
  r.type = JournalRecordType::kAttempt;
  r.id = id;
  r.attempt = attempt;
  r.degraded = degraded;
  r.cause = cause;
  return r;
}

JournalRecord Result(const std::string& id, TerminalState state,
                     const std::string& line, const std::string& blob) {
  JournalRecord r;
  r.type = JournalRecordType::kResult;
  r.id = id;
  r.state = state;
  r.result_line = line;
  r.worker_result = blob;
  return r;
}

std::vector<JournalRecord> SampleRecords() {
  return {
      Admitted("r1", "id=r1 kind=cq program=/p.gqe query=q"),
      Attempt("r1", 1, false, "sigkill"),
      Attempt("r1", 2, true, "heartbeat-timeout"),
      Result("r1", TerminalState::kDegraded, "result: id=r1 ...\n",
             std::string("\x01\x02\x00\x03", 4)),
      Admitted("r2", "id=r2 kind=chase program=/q.gqe"),
  };
}

std::string Concat(const std::vector<JournalRecord>& records) {
  std::string bytes;
  for (const JournalRecord& r : records) bytes += EncodeJournalRecord(r);
  return bytes;
}

size_t CountSegments(const std::string& dir) {
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Record codec.

TEST(JournalCodec, RoundTripsEveryRecordType) {
  const std::vector<JournalRecord> in = SampleRecords();
  const std::string bytes = Concat(in);

  std::vector<JournalRecord> out;
  std::string error;
  EXPECT_EQ(DecodeJournalSegment(bytes, &out, &error), bytes.size()) << error;
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].type, in[i].type) << i;
    EXPECT_EQ(out[i].id, in[i].id) << i;
    EXPECT_EQ(out[i].request_line, in[i].request_line) << i;
    EXPECT_EQ(out[i].attempt, in[i].attempt) << i;
    EXPECT_EQ(out[i].degraded, in[i].degraded) << i;
    EXPECT_EQ(out[i].cause, in[i].cause) << i;
    EXPECT_EQ(out[i].state, in[i].state) << i;
    EXPECT_EQ(out[i].result_line, in[i].result_line) << i;
    EXPECT_EQ(out[i].worker_result, in[i].worker_result) << i;
  }
}

TEST(JournalCodec, TornTailAtEveryByteBoundary) {
  // Truncate the stream at EVERY length and decode the prefix: the valid
  // prefix must always end on a record boundary, with exactly the records
  // whose bytes arrived whole — a torn tail never yields a partial or
  // fabricated record.
  const std::vector<JournalRecord> in = SampleRecords();
  std::vector<size_t> boundaries = {0};
  for (const JournalRecord& r : in) {
    boundaries.push_back(boundaries.back() + EncodeJournalRecord(r).size());
  }
  const std::string bytes = Concat(in);

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut) {
      ++whole;
    }
    std::vector<JournalRecord> out;
    std::string error;
    const size_t kept =
        DecodeJournalSegment(std::string_view(bytes).substr(0, cut), &out,
                             &error);
    EXPECT_EQ(kept, boundaries[whole]) << "cut " << cut;
    EXPECT_EQ(out.size(), whole) << "cut " << cut;
    if (cut != boundaries[whole]) {
      EXPECT_FALSE(error.empty()) << "cut " << cut;
    } else {
      EXPECT_TRUE(error.empty()) << "cut " << cut << ": " << error;
    }
  }
}

TEST(JournalCodec, EveryBitFlipIsCaught) {
  // One flipped bit anywhere in the stream: decoding must stop early
  // with an error — the CRC envelope (or the length sanity check) always
  // notices, and no record is ever decoded from damaged bytes. The one
  // deliberate exception: the envelope's u16 version field (record
  // offsets 10-11) is a compatibility knob, not data — UnwrapSnapshot
  // accepts any version <= current, so a flip that *lowers* it reads as
  // an old-format record whose payload still passes its CRC.
  const std::vector<JournalRecord> in = SampleRecords();
  std::vector<size_t> starts;
  size_t pos = 0;
  for (const JournalRecord& r : in) {
    starts.push_back(pos);
    pos += EncodeJournalRecord(r).size();
  }
  auto in_version_field = [&](size_t byte) {
    for (size_t start : starts) {
      if (byte == start + 10 || byte == start + 11) return true;
    }
    return false;
  };
  const std::string bytes = Concat(in);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    if (in_version_field(byte)) continue;
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = bytes;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1u << bit));
      std::vector<JournalRecord> out;
      std::string error;
      const size_t kept = DecodeJournalSegment(damaged, &out, &error);
      EXPECT_LT(kept, damaged.size()) << "byte " << byte << " bit " << bit;
      EXPECT_FALSE(error.empty()) << "byte " << byte << " bit " << bit;
      // Only records strictly before the damaged byte survive.
      EXPECT_LE(kept, byte) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(JournalCodec, ImpossibleLengthPrefixRejectedWithoutAllocating) {
  // A length prefix claiming ~2 GiB with 4 bytes behind it: rejected
  // from the prefix alone (distinct from a plausible-but-torn length).
  std::string bytes("\xff\xff\xff\x7f garbage", 12);
  std::vector<JournalRecord> out;
  std::string error;
  EXPECT_EQ(DecodeJournalSegment(bytes, &out, &error), 0u);
  EXPECT_NE(error.find("impossible"), std::string::npos) << error;
  EXPECT_TRUE(out.empty());
}

TEST(JournalApply, FoldsLadderStateAndResult) {
  JournalRecovery recovery;
  ApplyJournalRecords(SampleRecords(), &recovery);
  ASSERT_EQ(recovery.entries.size(), 2u);

  const JournalEntry* r1 = recovery.Find("r1");
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->exact_attempts, 1);
  EXPECT_EQ(r1->degraded_attempts, 1);
  ASSERT_EQ(r1->attempt_records.size(), 2u);
  EXPECT_EQ(r1->attempt_records[0].cause, "sigkill");
  EXPECT_TRUE(r1->has_result);
  EXPECT_EQ(r1->state, TerminalState::kDegraded);
  EXPECT_EQ(r1->result_line, "result: id=r1 ...\n");

  const JournalEntry* r2 = recovery.Find("r2");
  ASSERT_NE(r2, nullptr);
  EXPECT_FALSE(r2->has_result);
  EXPECT_EQ(r2->exact_attempts, 0);
  EXPECT_EQ(recovery.orphan_records, 0u);
  EXPECT_EQ(recovery.duplicate_records, 0u);
}

TEST(JournalApply, OrphansAndDuplicatesCountedNotTrusted) {
  std::vector<JournalRecord> records = {
      Attempt("ghost", 1, false, "sigkill"),  // no ADMITTED: orphan
      Result("ghost", TerminalState::kCompleted, "result: ghost\n", ""),
      Admitted("a", "id=a kind=cq program=/p.gqe"),
      Admitted("a", "id=a kind=cq program=/p.gqe"),  // duplicate
      Result("a", TerminalState::kCompleted, "result: first\n", ""),
      Result("a", TerminalState::kFailed, "result: second\n", ""),  // dup
      Attempt("a", 9, false, "late"),  // attempt after result: ignored
  };
  JournalRecovery recovery;
  ApplyJournalRecords(records, &recovery);
  ASSERT_EQ(recovery.entries.size(), 1u);
  const JournalEntry* a = recovery.Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->has_result);
  EXPECT_EQ(a->result_line, "result: first\n");  // first RESULT wins
  EXPECT_EQ(a->attempt_records.size(), 0u);
  EXPECT_EQ(recovery.orphan_records, 2u);
  EXPECT_EQ(recovery.duplicate_records, 3u);
  EXPECT_EQ(recovery.Find("ghost"), nullptr);
}

// ---------------------------------------------------------------------------
// The journal on disk: recovery, torn tails, rotation, compaction.

TEST(RequestJournal, ReopenRecoversEntriesAcrossRestart) {
  const std::string dir = FreshDir("reopen");
  JournalOptions options;
  options.fsync_each_record = false;  // process exit loses nothing
  {
    RequestJournal journal;
    ASSERT_TRUE(journal.Open(dir, options, nullptr).ok());
    ASSERT_TRUE(
        journal.AppendAdmitted("a", "id=a kind=cq program=/p.gqe").ok());
    ASSERT_TRUE(journal.AppendAttempt("a", 1, false, "sigkill").ok());
    ASSERT_TRUE(journal
                    .AppendResult("a", TerminalState::kCompleted,
                                  "result: id=a ok\n", "blob-bytes")
                    .ok());
    ASSERT_TRUE(
        journal.AppendAdmitted("b", "id=b kind=chase program=/q.gqe").ok());
    EXPECT_EQ(journal.stats().appends, 4u);
  }
  RequestJournal reopened;
  JournalRecovery recovery;
  ASSERT_TRUE(reopened.Open(dir, options, &recovery).ok());
  EXPECT_EQ(recovery.records, 4u);
  EXPECT_EQ(recovery.torn_bytes, 0u);
  ASSERT_EQ(recovery.entries.size(), 2u);
  const JournalEntry* a = recovery.Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->has_result);
  EXPECT_EQ(a->result_line, "result: id=a ok\n");
  EXPECT_EQ(a->worker_result, "blob-bytes");
  const JournalEntry* b = recovery.Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(b->has_result);
  // The reopened journal appends after the recovered records.
  ASSERT_TRUE(reopened.AppendAttempt("b", 1, false, "ok").ok());
}

TEST(RequestJournal, TornActiveTailTruncatedAtEveryByteBoundary) {
  // For every possible torn-write length of the final record, recovery
  // must keep exactly the whole records, report the torn bytes, and
  // physically truncate the segment so the next append starts clean.
  const std::string whole =
      EncodeJournalRecord(Admitted("a", "id=a kind=cq program=/p.gqe")) +
      EncodeJournalRecord(Attempt("a", 1, false, "sigkill"));
  const std::string tail = EncodeJournalRecord(
      Result("a", TerminalState::kCompleted, "result: id=a ok\n", "blob"));

  for (size_t cut = 0; cut < tail.size(); ++cut) {
    const std::string dir =
        FreshDir("torn_" + std::to_string(cut));
    const std::string segment = dir + "/wal-00000001.seg";
    {
      std::FILE* f = std::fopen(segment.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      std::fwrite(whole.data(), 1, whole.size(), f);
      std::fwrite(tail.data(), 1, cut, f);
      std::fclose(f);
    }
    RequestJournal journal;
    JournalRecovery recovery;
    ASSERT_TRUE(journal.Open(dir, JournalOptions(), &recovery).ok())
        << "cut " << cut;
    EXPECT_EQ(recovery.records, 2u) << "cut " << cut;
    EXPECT_EQ(recovery.torn_bytes, cut) << "cut " << cut;
    ASSERT_EQ(recovery.entries.size(), 1u) << "cut " << cut;
    EXPECT_FALSE(recovery.entries[0].has_result) << "cut " << cut;
    EXPECT_EQ(fs::file_size(segment), whole.size()) << "cut " << cut;

    // Appending the record again and re-recovering sees it whole.
    ASSERT_TRUE(journal
                    .AppendResult("a", TerminalState::kCompleted,
                                  "result: id=a ok\n", "blob")
                    .ok());
    RequestJournal again;
    JournalRecovery after;
    ASSERT_TRUE(again.Open(dir, JournalOptions(), &after).ok());
    ASSERT_EQ(after.entries.size(), 1u);
    EXPECT_TRUE(after.entries[0].has_result) << "cut " << cut;
    EXPECT_EQ(after.torn_bytes, 0u) << "cut " << cut;
  }
}

TEST(RequestJournal, RotationSealsSegmentsAndRecoverySpansThem) {
  const std::string dir = FreshDir("rotate");
  JournalOptions options;
  options.segment_bytes = 1;  // rotate after every record
  options.fsync_each_record = false;
  {
    RequestJournal journal;
    ASSERT_TRUE(journal.Open(dir, options, nullptr).ok());
    for (int i = 0; i < 5; ++i) {
      const std::string id = "r" + std::to_string(i);
      ASSERT_TRUE(
          journal.AppendAdmitted(id, "id=" + id + " kind=cq program=/p.gqe")
              .ok());
    }
    EXPECT_GE(journal.stats().rotations, 4u);
  }
  EXPECT_GE(CountSegments(dir), 5u);

  RequestJournal journal;
  JournalRecovery recovery;
  ASSERT_TRUE(journal.Open(dir, options, &recovery).ok());
  EXPECT_GE(recovery.segments, 5u);
  ASSERT_EQ(recovery.entries.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(recovery.Find("r" + std::to_string(i)), nullptr) << i;
  }
}

TEST(RequestJournal, DamagedSealedSegmentSkippedNotFatal) {
  const std::string dir = FreshDir("sealed");
  JournalOptions options;
  options.segment_bytes = 1;
  options.fsync_each_record = false;
  {
    RequestJournal journal;
    ASSERT_TRUE(journal.Open(dir, options, nullptr).ok());
    for (int i = 0; i < 4; ++i) {
      const std::string id = "r" + std::to_string(i);
      ASSERT_TRUE(
          journal.AppendAdmitted(id, "id=" + id + " kind=cq program=/p.gqe")
              .ok());
    }
  }
  // Flip a byte in the middle of segment 2 (sealed: it is not the
  // highest-numbered one). Recovery must count the damage, keep every
  // other record, and NOT truncate a sealed file.
  const std::string victim = dir + "/wal-00000002.seg";
  ASSERT_TRUE(fs::exists(victim));
  const auto size = fs::file_size(victim);
  {
    std::FILE* f = std::fopen(victim.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(size / 2), SEEK_SET);
    std::fputc(0x5a, f);
    std::fclose(f);
  }
  RequestJournal journal;
  JournalRecovery recovery;
  ASSERT_TRUE(journal.Open(dir, options, &recovery).ok());
  EXPECT_GT(recovery.skipped_bytes, 0u);
  EXPECT_EQ(recovery.torn_bytes, 0u);
  EXPECT_EQ(recovery.entries.size(), 3u);
  EXPECT_EQ(fs::file_size(victim), size);  // sealed files are evidence
}

TEST(RequestJournal, CompactionShrinksToOneSegmentLosslessly) {
  const std::string dir = FreshDir("compact");
  JournalOptions options;
  options.segment_bytes = 1;
  options.fsync_each_record = false;

  RequestJournal journal;
  JournalRecovery recovery;
  ASSERT_TRUE(journal.Open(dir, options, &recovery).ok());
  ASSERT_TRUE(
      journal.AppendAdmitted("done", "id=done kind=cq program=/p.gqe").ok());
  ASSERT_TRUE(journal
                  .AppendResult("done", TerminalState::kCompleted,
                                "result: id=done ok\n", "blob")
                  .ok());
  ASSERT_TRUE(
      journal.AppendAdmitted("open", "id=open kind=cq program=/p.gqe").ok());
  ASSERT_TRUE(journal.AppendAttempt("open", 1, false, "sigkill").ok());
  EXPECT_GE(CountSegments(dir), 4u);

  RequestJournal reopened;
  JournalRecovery before;
  ASSERT_TRUE(reopened.Open(dir, options, &before).ok());
  ASSERT_TRUE(reopened.Compact(before.entries).ok());
  EXPECT_EQ(CountSegments(dir), 1u);

  RequestJournal after_journal;
  JournalRecovery after;
  ASSERT_TRUE(after_journal.Open(dir, options, &after).ok());
  ASSERT_EQ(after.entries.size(), 2u);
  const JournalEntry* done = after.Find("done");
  ASSERT_NE(done, nullptr);
  EXPECT_TRUE(done->has_result);
  EXPECT_EQ(done->result_line, "result: id=done ok\n");
  EXPECT_EQ(done->worker_result, "blob");
  const JournalEntry* open = after.Find("open");
  ASSERT_NE(open, nullptr);
  EXPECT_FALSE(open->has_result);
  EXPECT_EQ(open->exact_attempts, 1);
  ASSERT_EQ(open->attempt_records.size(), 1u);
  EXPECT_EQ(open->attempt_records[0].cause, "sigkill");
}

// ---------------------------------------------------------------------------
// Engine-level: restart, byte-identity, ladder restore, idempotency.

ServeOptions JournaledOptions(const std::string& journal_dir) {
  ServeOptions options;
  options.backoff_base_ms = 2.0;
  options.backoff_cap_ms = 20.0;
  options.heartbeat_timeout_ms = 400.0;
  options.journal_dir = journal_dir;
  options.journal_fsync = false;  // tests kill processes, not the power
  return options;
}

EvalRequest CqRequest(const std::string& id, const std::string& program) {
  EvalRequest request;
  request.id = id;
  request.kind = RequestKind::kCq;
  request.program_path = program;
  request.query = "jvq";
  return request;
}

/// Runs one engine until `n` requests finish; returns their rows by id.
std::map<std::string, RequestRow> RunToCompletion(ServeEngine* engine,
                                                  size_t n) {
  std::map<std::string, RequestRow> rows;
  std::vector<ServeEngine::Finished> finished;
  for (int spins = 0; spins < 2000000 && rows.size() < n; ++spins) {
    finished.clear();
    if (!engine->Pump(&finished)) ::usleep(1000);
    for (auto& f : finished) rows[f.row.id] = f.row;
  }
  EXPECT_EQ(rows.size(), n);
  return rows;
}

std::string Line(const RequestRow& row) {
  std::string line;
  AppendResultLine(row, &line);
  return line;
}

TEST(ServeJournal, RestartReplaysCompletedResultsByteIdentically) {
  const std::string program = WriteProgram("restart");
  const std::string dir = FreshDir("engine_restart");
  const EvalRequest r1 = CqRequest("jr1", program);
  EvalRequest r2 = CqRequest("jr2", program);
  r2.budget.max_facts = 50000;  // distinct canonical line

  std::string line1, line2;
  {
    ServeEngine engine(JournaledOptions(dir));
    engine.Submit(r1);
    engine.Submit(r2);
    auto rows = RunToCompletion(&engine, 2);
    line1 = Line(rows["jr1"]);
    line2 = Line(rows["jr2"]);
    ASSERT_EQ(rows["jr1"].state, TerminalState::kCompleted);
  }

  // "kill -9 and restart": a brand-new engine on the same journal dir.
  ServeEngine engine(JournaledOptions(dir));
  const auto info = engine.journal_info();
  EXPECT_TRUE(info.enabled);
  EXPECT_EQ(info.recovered_completed, 2u);
  EXPECT_EQ(info.recovered_inflight, 0u);

  RequestRow row;
  ASSERT_EQ(engine.LookupCompleted(r1, &row), ServeEngine::CacheLookup::kHit);
  EXPECT_EQ(Line(row), line1);
  EXPECT_EQ(row.state, TerminalState::kCompleted);
  ASSERT_EQ(engine.LookupCompleted(r2, &row), ServeEngine::CacheLookup::kHit);
  EXPECT_EQ(Line(row), line2);
  EXPECT_EQ(engine.journal_info().hits, 2u);

  // Same id, different request: an id reuse, rejected not served.
  EvalRequest reuse = r1;
  reuse.query = "";
  EXPECT_EQ(engine.LookupCompleted(reuse, &row),
            ServeEngine::CacheLookup::kMismatch);

  // No worker ever fired in the replaying engine.
  EXPECT_EQ(engine.ActiveJobs(), 0u);
}

TEST(ServeJournal, DuplicateIdServedFromCacheWithinOneRun) {
  // Idempotency holds without any restart: once a request completes, a
  // resend of the same id hits the journal-backed cache in the SAME
  // engine, byte-identically, with no new worker.
  const std::string program = WriteProgram("duplicate");
  const std::string dir = FreshDir("engine_duplicate");
  const EvalRequest request = CqRequest("dup1", program);

  ServeEngine engine(JournaledOptions(dir));
  engine.Submit(request);
  auto rows = RunToCompletion(&engine, 1);
  const std::string first = Line(rows["dup1"]);

  RequestRow row;
  ASSERT_EQ(engine.LookupCompleted(request, &row),
            ServeEngine::CacheLookup::kHit);
  EXPECT_EQ(Line(row), first);
  EXPECT_EQ(engine.ActiveJobs(), 0u);
  EXPECT_EQ(engine.journal_info().hits, 1u);
}

TEST(ServeJournal, CrashMidRunRestoresLadderAndFinishesIdentically) {
  // Reference: the same request, no journal, no crash.
  const std::string program = WriteProgram("midrun");
  EvalRequest request = CqRequest("mid1", program);
  request.fault.type = FaultSpec::Type::kKill;
  request.fault.at_checkpoint = 3;
  std::string golden;
  {
    ServeOptions plain;
    plain.backoff_base_ms = 2.0;
    plain.backoff_cap_ms = 20.0;
    plain.heartbeat_timeout_ms = 400.0;
    ServeEngine engine(plain);
    engine.Submit(request);
    golden = Line(RunToCompletion(&engine, 1)["mid1"]);
  }

  // Journaled engine: admit, let the first (self-killing) attempt get
  // under way, then destroy the engine with the request still in flight —
  // the supervisor dying mid-run.
  const std::string dir = FreshDir("engine_midrun");
  {
    ServeEngine engine(JournaledOptions(dir));
    engine.Submit(request);
    std::vector<ServeEngine::Finished> finished;
    for (int spins = 0; spins < 200000 && engine.InflightWorkers() == 0;
         ++spins) {
      engine.Pump(&finished);
      ASSERT_TRUE(finished.empty()) << "finished before the crash";
    }
    ASSERT_GT(engine.InflightWorkers(), 0u);
  }

  // Restart: the admission is in the journal, so the request resumes
  // (attempt ladder intact) and finishes with the SAME bytes as the
  // crash-free run — the fault-invariance of result lines extended
  // across a supervisor death.
  ServeEngine engine(JournaledOptions(dir));
  EXPECT_EQ(engine.journal_info().recovered_inflight, 1u);
  EXPECT_EQ(engine.ActiveJobs(), 1u);
  auto rows = RunToCompletion(&engine, 1);
  EXPECT_EQ(Line(rows["mid1"]), golden);

  // And a THIRD engine now replays it from the cache.
  ServeEngine third(JournaledOptions(dir));
  EXPECT_EQ(third.journal_info().recovered_completed, 1u);
  RequestRow row;
  ASSERT_EQ(third.LookupCompleted(request, &row),
            ServeEngine::CacheLookup::kHit);
  EXPECT_EQ(Line(row), golden);
}

TEST(ServeJournal, BatchManifestRerunIsServedFromJournal) {
  // The batch front end (ServeManifest) consults the journal too: a
  // rerun of the same manifest against the same journal dir reproduces
  // DeterministicText byte-for-byte without recomputation.
  const std::string program = WriteProgram("batch");
  const std::string dir = FreshDir("engine_batch");
  Manifest manifest;
  std::string error;
  ASSERT_TRUE(ParseManifest("id=b1 kind=cq program=" + program +
                                " query=jvq\n"
                                "id=b2 kind=chase program=" +
                                program + "\n",
                            "", &manifest, &error))
      << error;

  ServeOptions options = JournaledOptions(dir);
  const ServeReport first = ServeManifest(manifest, options);
  ASSERT_EQ(first.completed, 2u);
  const ServeReport second = ServeManifest(manifest, options);
  EXPECT_EQ(second.DeterministicText(), first.DeterministicText());
  EXPECT_EQ(second.completed, 2u);
}

TEST(ServeJournal, VerifyRechecksPersistedWitnessBeforeServing) {
  // With --verify, a journal replay re-checks the persisted witness
  // before serving the cached line. An intact journal passes; a journal
  // whose worker-result blob was damaged (decode failure => no witness
  // to check => witness gone bad is the conservative reading) must NOT
  // be served from the cache.
  const std::string program = WriteProgram("verify");
  const std::string dir = FreshDir("engine_verify");
  const EvalRequest request = CqRequest("v1", program);

  ServeOptions options = JournaledOptions(dir);
  options.verify = true;
  std::string golden;
  {
    ServeEngine engine(options);
    engine.Submit(request);
    auto rows = RunToCompletion(&engine, 1);
    ASSERT_EQ(rows["v1"].state, TerminalState::kCompleted);
    EXPECT_EQ(rows["v1"].verify_outcome, VerifyOutcome::kVerified);
    golden = Line(rows["v1"]);
  }

  ServeEngine engine(options);
  RequestRow row;
  ASSERT_EQ(engine.LookupCompleted(request, &row),
            ServeEngine::CacheLookup::kHit);
  EXPECT_EQ(Line(row), golden);
  EXPECT_EQ(row.verify_outcome, VerifyOutcome::kVerified);
  EXPECT_EQ(engine.journal_info().verify_rejections, 0u);
}

}  // namespace
}  // namespace gqe
