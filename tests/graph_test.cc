#include <gtest/gtest.h>

#include "base/atom.h"
#include "base/instance.h"
#include "graph/graph.h"
#include "graph/minor.h"
#include "graph/tree_decomposition.h"
#include "graph/treewidth.h"

namespace gqe {
namespace {

TEST(GraphTest, BasicEdgeOps) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 1);  // self loop ignored
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(1, 1));
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.Degree(1), 2);
}

TEST(GraphTest, ConnectedComponents) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  auto components = g.ConnectedComponents();
  EXPECT_EQ(components.size(), 3u);
  EXPECT_FALSE(g.IsConnected());
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, InducedSubgraph) {
  Graph g = Graph::Cycle(5);
  std::vector<int> index;
  Graph sub = g.InducedSubgraph({0, 1, 2}, &index);
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.num_edges(), 2);  // 0-1, 1-2; the chord 0-2 is absent in C5
  EXPECT_EQ(index[3], -1);
  EXPECT_EQ(index[1], 1);
}

TEST(GraphTest, CliqueDetection) {
  Graph g = Graph::Clique(4);
  EXPECT_TRUE(g.IsClique({0, 1, 2, 3}));
  Graph p = Graph::Path(4);
  EXPECT_FALSE(p.IsClique({0, 1, 2}));
  EXPECT_TRUE(p.IsClique({0, 1}));
}

TEST(GraphTest, GridShape) {
  Graph g = Graph::Grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_TRUE(g.HasEdge(Graph::GridVertex(3, 4, 1, 1),
                        Graph::GridVertex(3, 4, 1, 2)));
  EXPECT_TRUE(g.HasEdge(Graph::GridVertex(3, 4, 1, 1),
                        Graph::GridVertex(3, 4, 2, 1)));
  EXPECT_FALSE(g.HasEdge(Graph::GridVertex(3, 4, 1, 1),
                         Graph::GridVertex(3, 4, 2, 2)));
}

TEST(GaifmanTest, FromInstance) {
  Instance db;
  Term a = Term::Constant("ga"), b = Term::Constant("gb"),
       c = Term::Constant("gc");
  db.Insert(Atom::Make("GR3", {a, b, c}));
  db.Insert(Atom::Make("GR1", {a}));
  std::vector<Term> terms;
  Graph g = GaifmanGraph(db, &terms);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);  // a triangle from the ternary fact
}

TEST(TreeDecompositionTest, ValidatePathDecomposition) {
  Graph g = Graph::Path(4);
  TreeDecomposition td;
  int b0 = td.AddBag({0, 1});
  int b1 = td.AddBag({1, 2});
  int b2 = td.AddBag({2, 3});
  td.AddTreeEdge(b0, b1);
  td.AddTreeEdge(b1, b2);
  std::string why;
  EXPECT_TRUE(td.Validate(g, &why)) << why;
  EXPECT_EQ(td.Width(), 1);
}

TEST(TreeDecompositionTest, RejectsMissingEdge) {
  Graph g = Graph::Path(3);
  TreeDecomposition td;
  int b0 = td.AddBag({0, 1});
  int b1 = td.AddBag({2});
  td.AddTreeEdge(b0, b1);
  std::string why;
  EXPECT_FALSE(td.Validate(g, &why));
  EXPECT_NE(why.find("edge"), std::string::npos);
}

TEST(TreeDecompositionTest, RejectsDisconnectedOccurrences) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  TreeDecomposition td;
  int b0 = td.AddBag({0, 1});
  int b1 = td.AddBag({1, 2});
  int b2 = td.AddBag({0});  // 0 occurs in b0 and b2, separated by b1
  td.AddTreeEdge(b0, b1);
  td.AddTreeEdge(b1, b2);
  std::string why;
  EXPECT_FALSE(td.Validate(g, &why));
}

TEST(TreeDecompositionTest, EliminationOrderConstruction) {
  Graph g = Graph::Cycle(5);
  TreeDecomposition td =
      DecompositionFromEliminationOrder(g, {0, 1, 2, 3, 4});
  std::string why;
  EXPECT_TRUE(td.Validate(g, &why)) << why;
  EXPECT_EQ(td.Width(), 2);  // cycles have treewidth 2
}

struct TreewidthCase {
  const char* name;
  Graph graph;
  int expected;
};

class TreewidthParamTest : public ::testing::TestWithParam<TreewidthCase> {};

TEST_P(TreewidthParamTest, ExactValue) {
  const TreewidthCase& tc = GetParam();
  TreewidthResult result = ComputeTreewidth(tc.graph);
  EXPECT_TRUE(result.exact()) << tc.name;
  EXPECT_EQ(result.upper_bound, tc.expected) << tc.name;
  std::string why;
  EXPECT_TRUE(result.decomposition.Validate(tc.graph, &why)) << tc.name
                                                             << ": " << why;
  EXPECT_LE(result.decomposition.Width(), tc.expected) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    KnownGraphs, TreewidthParamTest,
    ::testing::Values(
        TreewidthCase{"path5", Graph::Path(5), 1},
        TreewidthCase{"cycle6", Graph::Cycle(6), 2},
        TreewidthCase{"clique4", Graph::Clique(4), 3},
        TreewidthCase{"clique6", Graph::Clique(6), 5},
        TreewidthCase{"grid2x4", Graph::Grid(2, 4), 2},
        TreewidthCase{"grid3x3", Graph::Grid(3, 3), 3},
        TreewidthCase{"grid3x5", Graph::Grid(3, 5), 3},
        TreewidthCase{"grid4x4", Graph::Grid(4, 4), 4},
        TreewidthCase{"single", Graph(1), 0},
        TreewidthCase{"edgeless3", Graph(3), 0}),
    [](const ::testing::TestParamInfo<TreewidthCase>& info) {
      return info.param.name;
    });

TEST(TreewidthTest, PaperConventionEdgeless) {
  EXPECT_EQ(PaperTreewidth(Graph(3)), 1);
  EXPECT_EQ(PaperTreewidth(Graph::Path(4)), 1);
  EXPECT_EQ(PaperTreewidth(Graph::Grid(2, 2)), 2);
}

TEST(TreewidthTest, HeuristicOnLargeGrid) {
  Graph g = Graph::Grid(4, 10);  // 40 vertices: heuristic path
  TreewidthResult result = ComputeTreewidth(g);
  EXPECT_GE(result.upper_bound, 4);
  EXPECT_LE(result.upper_bound, 6);  // min-fill is near-optimal on grids
  std::string why;
  EXPECT_TRUE(result.decomposition.Validate(g, &why)) << why;
  EXPECT_GE(result.lower_bound, 2);
}

TEST(TreewidthTest, DisconnectedGraphTakesMax) {
  Graph g(9);
  // Component 1: a triangle (tw 2). Component 2: K4 (tw 3). Plus isolated.
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  for (int u = 3; u < 7; ++u) {
    for (int v = u + 1; v < 7; ++v) g.AddEdge(u, v);
  }
  TreewidthResult result = ComputeTreewidth(g);
  EXPECT_TRUE(result.exact());
  EXPECT_EQ(result.upper_bound, 3);
  std::string why;
  EXPECT_TRUE(result.decomposition.Validate(g, &why)) << why;
}

TEST(TreewidthTest, DegeneracyLowerBound) {
  EXPECT_EQ(Degeneracy(Graph::Clique(5)), 4);
  EXPECT_EQ(Degeneracy(Graph::Path(5)), 1);
  EXPECT_EQ(Degeneracy(Graph::Grid(3, 3)), 2);
}

TEST(MinorTest, ValidGridBandMap) {
  MinorMap map = GridOntoGridMinorMap(2, 3, 4, 6);
  Graph h = Graph::Grid(2, 3);
  Graph g = Graph::Grid(4, 6);
  std::string why;
  EXPECT_TRUE(map.Validate(h, g, /*onto=*/true, &why)) << why;
}

TEST(MinorTest, IdentityMap) {
  MinorMap map = GridOntoGridMinorMap(3, 3, 3, 3);
  Graph g = Graph::Grid(3, 3);
  std::string why;
  EXPECT_TRUE(map.Validate(g, g, /*onto=*/true, &why)) << why;
}

TEST(MinorTest, ValidatorRejectsDisconnectedBranchSet) {
  Graph h(1);
  Graph g = Graph::Path(3);
  MinorMap map(1);
  map.SetBranchSet(0, {0, 2});  // 0 and 2 are not adjacent in P3
  EXPECT_FALSE(map.Validate(h, g));
}

TEST(MinorTest, ValidatorRejectsMissingEdge) {
  Graph h(2);
  h.AddEdge(0, 1);
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  MinorMap map(2);
  map.SetBranchSet(0, {0, 1});
  map.SetBranchSet(1, {2, 3});
  EXPECT_FALSE(map.Validate(h, g));
}

TEST(MinorTest, BruteForceFindsTriangleInK4) {
  auto map = FindMinorBruteForce(Graph::Clique(3), Graph::Clique(4));
  ASSERT_TRUE(map.has_value());
  EXPECT_TRUE(map->Validate(Graph::Clique(3), Graph::Clique(4)));
}

TEST(MinorTest, BruteForceFindsTriangleMinorOfC5) {
  // C5 contains K3 as a minor (contract two edges).
  auto map = FindMinorBruteForce(Graph::Clique(3), Graph::Cycle(5));
  ASSERT_TRUE(map.has_value());
}

TEST(MinorTest, BruteForceRejectsK3InTree) {
  auto map = FindMinorBruteForce(Graph::Clique(3), Graph::Path(5));
  EXPECT_FALSE(map.has_value());
}

}  // namespace
}  // namespace gqe
