#include <gtest/gtest.h>

#include "chase/chase.h"
#include "grohe/clique.h"
#include "grohe/grohe_db.h"
#include "grohe/reduction.h"
#include "grohe/variant_db.h"
#include "parser/parser.h"
#include "query/core.h"
#include "query/evaluation.h"

namespace gqe {
namespace {

/// A triangle-free graph with edges: the 3x3 rook-free bipartite-ish
/// C6 cycle.
Graph TriangleFree() { return Graph::Cycle(6); }

/// A graph with a triangle (and some noise edges).
Graph WithTriangle() {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);  // triangle 0-1-2
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  return g;
}

TEST(CliqueTest, FindCliqueBasics) {
  EXPECT_TRUE(HasClique(Graph::Clique(5), 5));
  EXPECT_FALSE(HasClique(Graph::Clique(5), 6));
  EXPECT_TRUE(HasClique(WithTriangle(), 3));
  EXPECT_FALSE(HasClique(TriangleFree(), 3));
  auto clique = FindClique(WithTriangle(), 3);
  ASSERT_TRUE(clique.has_value());
  EXPECT_TRUE(WithTriangle().IsClique(*clique));
}

TEST(CliqueTest, BlowUpPreservesCliqueStructure) {
  Graph g = TriangleFree();
  Graph blown = BlowUpGraph(g, 3);
  EXPECT_EQ(blown.num_vertices(), 18);
  // Edges of G become 6-cliques; no triangle in G means no 7-clique here.
  EXPECT_TRUE(HasClique(blown, 6));
  EXPECT_FALSE(HasClique(blown, 7));
  Graph t = WithTriangle();
  Graph blown_t = BlowUpGraph(t, 3);
  EXPECT_TRUE(HasClique(blown_t, 9));
}

TEST(RhoTest, BijectionOnPairs) {
  // k = 4: 6 pairs, lexicographic.
  EXPECT_EQ(RhoPair(4, 1), std::make_pair(1, 2));
  EXPECT_EQ(RhoPair(4, 2), std::make_pair(1, 3));
  EXPECT_EQ(RhoPair(4, 6), std::make_pair(3, 4));
}

TEST(GridReductionTest, GridQueryIsACore) {
  CliqueReduction r = MakeGridCliqueReduction(3, 3, 3, "rh", "rv");
  EXPECT_TRUE(IsCore(r.query));
  EXPECT_EQ(r.query.AllVariables().size(), 9u);
  EXPECT_EQ(r.d.size(), 12u);
}

TEST(GridReductionTest, MinorMapPartitionsGrid) {
  CliqueReduction r = MakeGridCliqueReduction(3, 3, 3, "rh", "rv");
  std::vector<Term> all = MinorMapUnion(r.mu);
  EXPECT_EQ(all.size(), 9u);  // every grid element in exactly one block
}

class VariantReductionIff : public ::testing::TestWithParam<int> {};

TEST_P(VariantReductionIff, CliqueIffQueryHolds) {
  // Theorem 5.13 / Theorem 4.1 shape on k = 3 with several graphs.
  const int seed = GetParam();
  Graph g(6);
  // Deterministic pseudo-random graph from the seed.
  uint32_t state = static_cast<uint32_t>(seed) * 2654435761u + 12345u;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int u = 0; u < 6; ++u) {
    for (int v = u + 1; v < 6; ++v) {
      if (next() % 100 < 45) g.AddEdge(u, v);
    }
  }
  CliqueReduction r = MakeGridCliqueReduction(3, 3, 3, "rh", "rv");
  ReductionOutcome outcome = RunVariantReduction(g, r);
  EXPECT_EQ(outcome.query_holds, HasClique(g, 3)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, VariantReductionIff,
                         ::testing::Range(0, 10));

TEST(VariantReductionTest, KnownGraphs) {
  CliqueReduction r = MakeGridCliqueReduction(3, 3, 3, "rh", "rv");
  EXPECT_FALSE(RunVariantReduction(TriangleFree(), r).query_holds);
  EXPECT_TRUE(RunVariantReduction(WithTriangle(), r).query_holds);
  EXPECT_TRUE(RunVariantReduction(Graph::Clique(4), r).query_holds);
}

TEST(VariantReductionTest, ProjectionValidates) {
  CliqueReduction r = MakeGridCliqueReduction(3, 3, 3, "rh", "rv");
  Graph g = WithTriangle();
  VariantDatabase variant = BuildVariantDatabase(g, r.k, r.d_prime, r.mu);
  std::string why;
  EXPECT_TRUE(variant.ValidateProjection(r.d_prime, &why)) << why;
}

TEST(VariantReductionTest, ConstraintsSatisfiedByDstar) {
  // CQS-flavoured reduction (Theorem 7.1(3) / Lemma H.2(4)): with the
  // decorating constraints h ⊆ e, v ⊆ e, D* satisfies Σ.
  TgdSet sigma = ParseTgds(R"(
    ch(X, Y) -> ce(X, Y).
    cv(X, Y) -> ce(X, Y).
  )");
  CliqueReduction r = MakeGridCliqueReduction(3, 3, 3, "ch", "cv", sigma);
  ASSERT_TRUE(Satisfies(r.d_prime, sigma));
  ReductionOutcome with_clique = RunVariantReduction(WithTriangle(), r);
  EXPECT_TRUE(with_clique.satisfies_sigma);
  EXPECT_TRUE(with_clique.query_holds);
  ReductionOutcome without = RunVariantReduction(TriangleFree(), r);
  EXPECT_TRUE(without.satisfies_sigma);
  EXPECT_FALSE(without.query_holds);
}

TEST(GroheReductionTest, CliqueIffQueryHolds) {
  CliqueReduction r = MakeGridCliqueReduction(3, 3, 3, "gh", "gv");
  EXPECT_TRUE(RunGroheReduction(WithTriangle(), r).query_holds);
  EXPECT_FALSE(RunGroheReduction(TriangleFree(), r).query_holds);
}

TEST(GroheReductionTest, ProjectionValidates) {
  CliqueReduction r = MakeGridCliqueReduction(3, 3, 3, "gh", "gv");
  GroheDatabase grohe = BuildGroheDatabase(WithTriangle(), r.k, r.d, r.mu);
  std::string why;
  EXPECT_TRUE(grohe.ValidateProjection(r.d, &why)) << why;
}

TEST(GroheReductionTest, K2DegeneratesToEdgeSearch) {
  // k=2: K=1, 2x1 grid query = a single v-edge; a 2-clique is an edge.
  CliqueReduction r = MakeGridCliqueReduction(2, 2, 1, "kh", "kv");
  Graph no_edges(4);
  EXPECT_FALSE(RunVariantReduction(no_edges, r).query_holds);
  Graph one_edge(4);
  one_edge.AddEdge(1, 3);
  EXPECT_TRUE(RunVariantReduction(one_edge, r).query_holds);
}

TEST(ReductionSizeTest, OutputPolynomialInGraph) {
  CliqueReduction r = MakeGridCliqueReduction(3, 3, 3, "sh", "sv");
  ReductionOutcome small = RunVariantReduction(Graph::Clique(4), r);
  ReductionOutcome larger = RunVariantReduction(Graph::Clique(6), r);
  EXPECT_GT(larger.dstar_atoms, small.dstar_atoms);
  // f(k) * poly(G): for fixed k the growth is polynomial — sanity bound.
  EXPECT_LT(larger.dstar_atoms,
            small.dstar_atoms * 100);
}

}  // namespace
}  // namespace gqe
