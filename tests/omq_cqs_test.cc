#include <gtest/gtest.h>

#include "cqs/containment.h"
#include "cqs/cqs.h"
#include "chase/chase.h"
#include "cqs/evaluation.h"
#include "omq/containment.h"
#include "omq/evaluation.h"
#include "omq/omq.h"
#include "parser/parser.h"

namespace gqe {
namespace {

Term C(const char* name) { return Term::Constant(name); }

TEST(OmqTest, FullDataSchemaDetection) {
  TgdSet sigma = ParseTgds("oa(X) -> ob(X).");
  UCQ q = ParseUcq("oq(X) :- ob(X).");
  Omq full = Omq::WithFullDataSchema(sigma, q);
  EXPECT_TRUE(full.HasFullDataSchema());
  Omq partial = full;
  partial.data_schema = Schema();
  partial.data_schema.Add("oa", 1);
  EXPECT_FALSE(partial.HasFullDataSchema());
}

TEST(OmqTest, ValidateOntologyClass) {
  TgdSet guarded = ParseTgds("oa(X) -> ob(X).");
  Omq omq = Omq::WithFullDataSchema(guarded, ParseUcq("oq2(X) :- ob(X)."));
  std::string why;
  EXPECT_TRUE(omq.Validate("G", &why)) << why;
  EXPECT_TRUE(omq.Validate("L", &why)) << why;
  TgdSet not_guarded =
      ParseTgds("oe(X, Y), oe(Y, Z) -> of2(X, Z).");
  Omq bad = Omq::WithFullDataSchema(not_guarded, ParseUcq("oq3(X) :- oe(X, Y)."));
  EXPECT_FALSE(bad.Validate("G"));
  EXPECT_FALSE(bad.Validate("FG"));
}

TEST(OmqEvaluationTest, EmptyOntologyIsPlainEvaluation) {
  Omq omq = Omq::WithFullDataSchema({}, ParseUcq("pq(X) :- pedge2(X, Y)."));
  Instance db = ParseDatabase("pedge2(a, b).");
  OmqEvalResult result = EvaluateOmq(omq, db);
  EXPECT_EQ(result.method, "empty-ontology");
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.answers.size(), 1u);
}

TEST(OmqEvaluationTest, GuardedOntologyUsesPortion) {
  TgdSet sigma = ParseTgds("gstud(X) -> genr(X, Y).");
  Omq omq = Omq::WithFullDataSchema(sigma, ParseUcq("gq(X) :- genr(X, Y)."));
  Instance db = ParseDatabase("gstud(sam). genr(tess, uni1).");
  OmqEvalResult result = EvaluateOmq(omq, db);
  EXPECT_EQ(result.method, "guarded-portion");
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.answers.size(), 2u);
}

TEST(OmqEvaluationTest, TerminatingNonGuardedChase) {
  TgdSet sigma = ParseTgds("te2(X, Y), te2(Y, Z) -> tf2(X, Z).");
  ASSERT_FALSE(IsGuardedSet(sigma));
  Omq omq = Omq::WithFullDataSchema(sigma, ParseUcq("tq2(X, Z) :- tf2(X, Z)."));
  Instance db = ParseDatabase("te2(a, b). te2(b, c).");
  OmqEvalResult result = EvaluateOmq(omq, db);
  EXPECT_EQ(result.method, "terminating-chase");
  EXPECT_TRUE(result.exact);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0], (std::vector<Term>{C("a"), C("c")}));
}

TEST(OmqEvaluationTest, NonTerminatingFallbackFlagsApproximation) {
  // Frontier-guarded, not guarded, oblivious chase non-terminating.
  TgdSet sigma = ParseTgds(R"(
    fgr(X, Y), fgr(Y, Z) -> fgs2(X).
    fgr(X, W) -> fgr(W, V).
  )");
  ASSERT_FALSE(IsGuardedSet(sigma));
  ASSERT_TRUE(IsFrontierGuardedSet(sigma));
  ASSERT_FALSE(IsObliviousChaseTerminating(sigma));
  Omq omq = Omq::WithFullDataSchema(sigma, ParseUcq("fq(X) :- fgs2(X)."));
  Instance db = ParseDatabase("fgr(n1, n2).");
  OmqEvalResult result = EvaluateOmq(omq, db);
  EXPECT_EQ(result.method, "bounded-chase");
  EXPECT_FALSE(result.exact);
  // fgs2(n1) via the data edge + a chased edge; fgs2(n2) one level deeper.
  ASSERT_EQ(result.answers.size(), 2u);
}

TEST(OmqEvaluationTest, OmqHoldsAgreesWithEvaluate) {
  TgdSet sigma = ParseTgds("hstud(X) -> henr(X, Y).");
  Omq omq = Omq::WithFullDataSchema(sigma, ParseUcq("hq(X) :- henr(X, Y)."));
  Instance db = ParseDatabase("hstud(kim).");
  EXPECT_TRUE(OmqHolds(omq, db, {C("kim")}));
  EXPECT_FALSE(OmqHolds(omq, db, {C("unknown_person")}));
  OmqEvalOptions with_dp;
  with_dp.use_tree_dp = true;
  EXPECT_TRUE(OmqHolds(omq, db, {C("kim")}, with_dp));
}

TEST(CqsEvaluationTest, ClosedWorldIgnoresChase) {
  // The same Σ, used as integrity constraints: evaluation does NOT chase;
  // the promise means the data already satisfies the constraints.
  TgdSet sigma = ParseTgds("cstud2(X) -> cenr2(X, Y).");
  Cqs cqs{sigma, ParseUcq("cq2(X) :- cenr2(X, Y).")};
  Instance db = ParseDatabase("cstud2(lea). cenr2(lea, uni2).");
  ASSERT_TRUE(Satisfies(db, sigma));
  CqsEvalResult result = EvaluateCqs(cqs, db, /*check_promise=*/true);
  EXPECT_TRUE(result.promise_ok);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0][0], C("lea"));
}

TEST(CqsEvaluationTest, PromiseViolationDetected) {
  TgdSet sigma = ParseTgds("cstud3(X) -> cenr3(X, Y).");
  Cqs cqs{sigma, ParseUcq("cq3(X) :- cenr3(X, Y).")};
  Instance db = ParseDatabase("cstud3(max).");  // no enrollment: violates
  CqsEvalResult result = EvaluateCqs(cqs, db, /*check_promise=*/true);
  EXPECT_FALSE(result.promise_ok);
}

TEST(CqsContainmentTest, ConstraintsEnableContainment) {
  // Under stud(X) -> enr(X,Y), the query enr-projection contains the
  // stud query *on satisfying databases*, though not unconditionally.
  TgdSet sigma = ParseTgds("kstud(X) -> kenr(X, Y).");
  Cqs s_stud{sigma, ParseUcq("kq1(X) :- kstud(X).")};
  Cqs s_enr{sigma, ParseUcq("kq2(X) :- kenr(X, Y).")};
  EXPECT_TRUE(CqsContained(s_stud, s_enr));
  EXPECT_FALSE(CqsContained(s_enr, s_stud));
  // Without constraints the containment fails.
  Cqs p_stud{{}, s_stud.query};
  Cqs p_enr{{}, s_enr.query};
  EXPECT_FALSE(CqsContained(p_stud, p_enr));
}

TEST(CqsContainmentTest, EquivalenceUnderConstraints) {
  // stud(X) -> person(X) and person(X) -> reg(X,Y): on satisfying
  // databases q(X):-stud(X) and q(X):-stud(X),reg(X,Y) coincide.
  TgdSet sigma = ParseTgds(R"(
    qstud(X) -> qperson(X).
    qperson(X) -> qreg(X, Y).
  )");
  Cqs plain{sigma, ParseUcq("qc1(X) :- qstud(X).")};
  Cqs longer{sigma, ParseUcq("qc2(X) :- qstud(X), qreg(X, Y).")};
  EXPECT_TRUE(CqsEquivalent(plain, longer));
}

TEST(OmqContainmentTest, SameOntologyContainment) {
  TgdSet sigma = ParseTgds("ostud(X) -> operson(X).");
  Omq q_stud = Omq::WithFullDataSchema(sigma, ParseUcq("oc1(X) :- ostud(X)."));
  Omq q_person =
      Omq::WithFullDataSchema(sigma, ParseUcq("oc2(X) :- operson(X)."));
  EXPECT_TRUE(OmqContainedSameOntology(q_stud, q_person));
  EXPECT_FALSE(OmqContainedSameOntology(q_person, q_stud));
  EXPECT_FALSE(OmqEquivalentSameOntology(q_stud, q_person));
}

TEST(OmqVsCqsTest, OpenVsClosedWorldDiffer) {
  // The crux of the paper's two facets: same Σ and q, different
  // semantics. OMQ derives enrollment; CQS does not.
  TgdSet sigma = ParseTgds("vstud(X) -> venr(X, Y).");
  UCQ q = ParseUcq("vq(X) :- venr(X, Y).");
  Instance db_violating = ParseDatabase("vstud(zoe).");
  Omq omq = Omq::WithFullDataSchema(sigma, q);
  EXPECT_EQ(EvaluateOmq(omq, db_violating).answers.size(), 1u);
  Cqs cqs{sigma, q};
  EXPECT_EQ(EvaluateCqs(cqs, db_violating).answers.size(), 0u);
  // On a database satisfying the promise, the two coincide.
  Instance db_ok = ParseDatabase("vstud(zoe). venr(zoe, uni3).");
  EXPECT_EQ(EvaluateOmq(omq, db_ok).answers,
            EvaluateCqs(cqs, db_ok).answers);
}

}  // namespace
}  // namespace gqe
