// Certified answers (ISSUE 5): the independent verifiers accept every
// witness the engines actually emit, and reject adversarial ones —
// hand-corrupted homomorphisms, out-of-order or forged derivation logs,
// join trees violating the running-intersection property, unsound
// rewriting provenance — each with a *structured* reason naming the
// violated rule. The checkers are deliberately dumb: they trust nothing
// but the database, Σ and the query.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chase/chase.h"
#include "linear/linear_chase.h"
#include "parser/parser.h"
#include "query/acyclic.h"
#include "query/evaluation.h"
#include "query/tw_evaluation.h"
#include "verify/verifier.h"
#include "verify/witness.h"

namespace gqe {
namespace {

Term C(const char* name) { return Term::Constant(name); }
Term V(const char* name) { return Term::Variable(name); }

// ---------------------------------------------------------------------
// Derivation logs: happy path.

TEST(VerifyDerivationTest, ReplayedChaseIsBitIdentical) {
  Instance db = ParseDatabase("vwgrad(ann). vwgrad(bo). vwe(a, b). vwe(b, c).");
  TgdSet sigma = ParseTgds(R"(
    vwgrad(X) -> vwstud(X).
    vwstud(X) -> vwenr(X, U), vwuni(U).
    vwe(X, Y), vwe(Y, Z) -> vwe(X, Z).
  )");
  ChaseOptions options;
  options.collect_witness = true;
  ChaseResult chased = Chase(db, sigma, options);
  ASSERT_TRUE(chased.complete);
  ASSERT_TRUE(chased.derivation.collected);
  ASSERT_TRUE(chased.derivation.replay_exact);

  Instance replayed;
  DerivationCheckOptions check;
  check.check_model = true;
  VerifyResult result =
      VerifyDerivation(db, sigma, chased.derivation, &replayed, check);
  EXPECT_TRUE(result.ok()) << result.reason;

  // Replay commits the same facts in the same order — nulls included.
  ASSERT_EQ(replayed.size(), chased.instance.size());
  for (size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed.atom(i), chased.instance.atom(i)) << "fact " << i;
  }
}

TEST(VerifyDerivationTest, UncollectedLogIsNoWitness) {
  DerivationWitness witness;  // collected = false
  VerifyResult result = VerifyDerivation({}, {}, witness);
  EXPECT_EQ(result.code, VerifyCode::kNoWitness);
}

// ---------------------------------------------------------------------
// Derivation logs: adversarial.

struct ForgedLog {
  Instance db;
  TgdSet sigma;
  DerivationWitness witness;
};

/// A genuine two-step log — vwfa(1) ⟶ vwfb(1) ⟶ vwfc(1) — collected
/// from a real run, ready to be corrupted.
ForgedLog GenuineChainLog() {
  ForgedLog forged;
  forged.db = ParseDatabase("vwfa(one).");
  forged.sigma = ParseTgds(R"(
    vwfa(X) -> vwfb(X).
    vwfb(X) -> vwfc(X).
  )");
  ChaseOptions options;
  options.collect_witness = true;
  ChaseResult chased = Chase(forged.db, forged.sigma, options);
  forged.witness = chased.derivation;
  return forged;
}

TEST(VerifyDerivationTest, OutOfOrderStepsRejected) {
  ForgedLog forged = GenuineChainLog();
  ASSERT_EQ(forged.witness.steps.size(), 2u);
  // Swap the steps: the vwfb(one) guard of step 1 is now consumed before
  // the step that derives it. A whole-run check would accept this; the
  // step-by-step replay must not.
  std::swap(forged.witness.steps[0], forged.witness.steps[1]);
  VerifyResult result = VerifyDerivation(forged.db, forged.sigma,
                                         forged.witness);
  EXPECT_EQ(result.code, VerifyCode::kBodyNotSatisfied);
  EXPECT_NE(result.reason.find("step 0"), std::string::npos) << result.reason;
}

TEST(VerifyDerivationTest, DuplicateTriggerRejected) {
  ForgedLog forged = GenuineChainLog();
  forged.witness.steps.push_back(forged.witness.steps[0]);
  forged.witness.replay_exact = false;  // dodge the digest checks
  VerifyResult result = VerifyDerivation(forged.db, forged.sigma,
                                         forged.witness);
  EXPECT_EQ(result.code, VerifyCode::kDuplicateStep);
}

TEST(VerifyDerivationTest, TgdIndexOutOfRangeRejected) {
  ForgedLog forged = GenuineChainLog();
  forged.witness.steps[1].tgd_index = 99;
  VerifyResult result = VerifyDerivation(forged.db, forged.sigma,
                                         forged.witness);
  EXPECT_EQ(result.code, VerifyCode::kBadTgdIndex);
}

TEST(VerifyDerivationTest, StaleNullRejected) {
  Instance db = ParseDatabase("vwna(one). vwna(two).");
  TgdSet sigma = ParseTgds("vwna(X) -> vwnp(X, Z).");
  ChaseOptions options;
  options.collect_witness = true;
  ChaseResult chased = Chase(db, sigma, options);
  DerivationWitness witness = chased.derivation;
  ASSERT_EQ(witness.steps.size(), 2u);
  ASSERT_EQ(witness.steps[0].existential_images.size(), 1u);
  // Step 1 reuses step 0's null — a forged log claiming two triggers
  // invented the same labelled null.
  witness.steps[1].existential_images = witness.steps[0].existential_images;
  witness.replay_exact = false;
  VerifyResult result = VerifyDerivation(db, sigma, witness);
  EXPECT_EQ(result.code, VerifyCode::kNullNotFresh);
}

TEST(VerifyDerivationTest, TamperedFactCountAndDigestRejected) {
  ForgedLog forged = GenuineChainLog();
  ASSERT_TRUE(forged.witness.replay_exact);

  DerivationWitness miscounted = forged.witness;
  miscounted.final_facts += 1;
  EXPECT_EQ(VerifyDerivation(forged.db, forged.sigma, miscounted).code,
            VerifyCode::kFactCountMismatch);

  DerivationWitness wrong_digest = forged.witness;
  wrong_digest.instance_crc ^= 0xdeadbeef;
  EXPECT_EQ(VerifyDerivation(forged.db, forged.sigma, wrong_digest).code,
            VerifyCode::kDigestMismatch);
}

TEST(VerifyDerivationTest, ForgedFixpointClaimRejected) {
  // An empty log over a database with an applicable rule, claiming
  // completeness: the replay equals the database, which violates Σ.
  Instance db = ParseDatabase("vwfpa(one).");
  TgdSet sigma = ParseTgds("vwfpa(X) -> vwfpb(X).");
  DerivationWitness witness;
  witness.collected = true;
  witness.complete = true;
  witness.replay_exact = true;
  witness.final_facts = db.size();
  witness.instance_crc = InstanceTextCrc(db);
  DerivationCheckOptions check;
  check.check_model = true;
  VerifyResult result = VerifyDerivation(db, sigma, witness, nullptr, check);
  EXPECT_EQ(result.code, VerifyCode::kNotAFixpoint);
}

// ---------------------------------------------------------------------
// Homomorphism certificates.

TEST(VerifyHomomorphismTest, EngineWitnessesVerify) {
  Instance db = ParseDatabase("vwhe(a, b). vwhe(b, c). vwhl(c).");
  UCQ query = ParseUcq("vwhq(X) :- vwhe(X, Y), vwhl(Y).");
  std::vector<HomWitness> witnesses;
  auto answers = EvaluateUCQWithWitnesses(query, db, &witnesses);
  ASSERT_EQ(answers.size(), 1u);
  ASSERT_EQ(witnesses.size(), 1u);
  EXPECT_EQ(answers[0][0], C("b"));
  VerifyResult result = VerifyHomomorphism(query, db, witnesses[0]);
  EXPECT_TRUE(result.ok()) << result.reason;
}

TEST(VerifyHomomorphismTest, TreeDpWitnessVerifies) {
  // Several bags in play: the stitched assignment must be one coherent
  // homomorphism across bag boundaries.
  Instance db = ParseDatabase(
      "vwte(a, b). vwte(b, c). vwte(c, d). vwtl(d).");
  CQ cq = ParseCq("vwtq(X) :- vwte(X, Y), vwte(Y, Z), vwte(Z, W), vwtl(W).");
  HomWitness witness;
  ASSERT_TRUE(HoldsCqTreeDpWithWitness(cq, db, {C("a")}, &witness));
  VerifyResult result = VerifyHomomorphism(UCQ({cq}), db, witness);
  EXPECT_TRUE(result.ok()) << result.reason;
  EXPECT_EQ(witness.answer, std::vector<Term>{C("a")});
}

TEST(VerifyHomomorphismTest, CorruptedAssignmentRejected) {
  Instance db = ParseDatabase("vwce(a, b). vwcl(b).");
  UCQ query = ParseUcq("vwcq(X) :- vwce(X, Y), vwcl(Y).");
  std::vector<HomWitness> witnesses;
  auto answers = EvaluateUCQWithWitnesses(query, db, &witnesses);
  ASSERT_EQ(witnesses.size(), 1u);
  const HomWitness genuine = witnesses[0];

  // Redirect one variable to a constant that breaks an atom.
  HomWitness corrupted = genuine;
  for (auto& [from, to] : corrupted.assignment) {
    if (to == C("b")) to = C("a");
  }
  EXPECT_EQ(VerifyHomomorphism(query, db, corrupted).code,
            VerifyCode::kAtomNotInInstance);

  // Claim a different answer than the assignment produces.
  HomWitness wrong_answer = genuine;
  wrong_answer.answer = {C("b")};
  EXPECT_EQ(VerifyHomomorphism(query, db, wrong_answer).code,
            VerifyCode::kAnswerMismatch);

  // Name a disjunct the query does not have.
  HomWitness bad_disjunct = genuine;
  bad_disjunct.disjunct = 7;
  EXPECT_EQ(VerifyHomomorphism(query, db, bad_disjunct).code,
            VerifyCode::kBadDisjunct);

  // A non-variable assignment key.
  HomWitness bad_key = genuine;
  bad_key.assignment.push_back({C("a"), C("a")});
  EXPECT_EQ(VerifyHomomorphism(query, db, bad_key).code,
            VerifyCode::kBadAssignment);

  // Drop the whole assignment: the unmapped answer variable no longer
  // reaches the claimed answer.
  HomWitness empty = genuine;
  empty.assignment.clear();
  EXPECT_EQ(VerifyHomomorphism(query, db, empty).code,
            VerifyCode::kAnswerMismatch);
}

// ---------------------------------------------------------------------
// Join-tree certificates.

TEST(VerifyJoinTreeTest, YannakakisCertificatesVerify) {
  Instance db = ParseDatabase("vwye(a, b). vwye(b, c). vwyl(c).");
  CQ cq = ParseCq("vwyq(X) :- vwye(X, Y), vwye(Y, Z), vwyl(Z).");
  JoinTreeWitness tree;
  HomWitness hom;
  auto holds = HoldsAcyclicCq(cq, db, {C("a")}, &tree, &hom);
  ASSERT_TRUE(holds.has_value());
  ASSERT_TRUE(*holds);
  // The tree certifies the candidate-grounded query (acyclic.h).
  CQ grounded = ParseCq("vwyg() :- vwye(a, Y), vwye(Y, Z), vwyl(Z).");
  VerifyResult tree_ok = VerifyJoinTree(grounded, tree);
  EXPECT_TRUE(tree_ok.ok()) << tree_ok.reason;
  VerifyResult hom_ok = VerifyHomomorphism(UCQ({cq}), db, hom);
  EXPECT_TRUE(hom_ok.ok()) << hom_ok.reason;
}

TEST(VerifyJoinTreeTest, RunningIntersectionViolationRejected) {
  // Atoms 0 and 2 share B, but the chain 0 ← 1 ← 2 routes their
  // connection through atom 1, which does not mention B.
  CQ cq = ParseCq("vwrq() :- vwrp(A, B), vwrm(A, D2), vwrr(B, D2).");
  JoinTreeWitness witness;
  witness.parent = {-1, 0, 1};
  witness.order = {2, 1, 0};
  VerifyResult result = VerifyJoinTree(cq, witness);
  EXPECT_EQ(result.code, VerifyCode::kRunningIntersection);
  EXPECT_NE(result.reason.find("B"), std::string::npos) << result.reason;
}

TEST(VerifyJoinTreeTest, MalformedTreesRejected) {
  CQ cq = ParseCq("vwmq() :- vwmp(A, B), vwms(B, D2).");

  // Wrong size.
  JoinTreeWitness short_tree;
  short_tree.parent = {-1};
  short_tree.order = {0};
  EXPECT_EQ(VerifyJoinTree(cq, short_tree).code, VerifyCode::kMalformed);

  // Parent listed before child in the processing order.
  JoinTreeWitness parent_first;
  parent_first.parent = {-1, 0};
  parent_first.order = {0, 1};
  EXPECT_EQ(VerifyJoinTree(cq, parent_first).code, VerifyCode::kBadJoinTree);

  // Self-loop.
  JoinTreeWitness self_loop;
  self_loop.parent = {0, 0};
  self_loop.order = {1, 0};
  EXPECT_EQ(VerifyJoinTree(cq, self_loop).code, VerifyCode::kBadJoinTree);

  // Order repeats an atom.
  JoinTreeWitness repeated;
  repeated.parent = {-1, 0};
  repeated.order = {1, 1};
  EXPECT_EQ(VerifyJoinTree(cq, repeated).code, VerifyCode::kBadJoinTree);
}

// ---------------------------------------------------------------------
// Rewriting provenance.

TEST(VerifyRewriteTest, EngineProvenanceVerifies) {
  TgdSet sigma = ParseTgds(R"(
    vwla(X) -> vwlb(X).
    vwlb(X) -> vwlc(X).
  )");
  UCQ query = ParseUcq("vwlq(X) :- vwlc(X).");
  Instance db = ParseDatabase("vwla(kepler). vwlc(direct).");
  std::vector<RewriteWitness> witnesses;
  auto answers = LinearCertainAnswersViaRewriting(db, sigma, query,
                                                  &witnesses);
  ASSERT_EQ(answers.size(), 2u);
  ASSERT_EQ(witnesses.size(), answers.size());
  for (size_t i = 0; i < witnesses.size(); ++i) {
    VerifyResult result =
        VerifyRewriteProvenance(db, sigma, query, witnesses[i]);
    EXPECT_TRUE(result.ok()) << "answer " << i << ": " << result.reason;
  }
}

TEST(VerifyRewriteTest, UnsoundDisjunctRejected) {
  // A forged disjunct that *does* hold in the database but whose chased
  // image never satisfies the original query: firing it is unsound.
  TgdSet sigma = ParseTgds("vwup(X) -> vwuq(X).");
  UCQ original = ParseUcq("vwuo(X) :- vwuq(X).");
  Instance db = ParseDatabase("vwur(mars).");
  RewriteWitness forged;
  forged.rewritten = ParseCq("vwuo(X) :- vwur(X).");
  forged.chase_depth = 2;
  forged.hom.answer = {C("mars")};
  forged.hom.assignment = {{V("X"), C("mars")}};
  VerifyResult result = VerifyRewriteProvenance(db, sigma, original, forged);
  EXPECT_EQ(result.code, VerifyCode::kRewriteUnsound);
}

TEST(VerifyRewriteTest, ArityMismatchRejected) {
  TgdSet sigma = ParseTgds("vwap(X) -> vwaq(X).");
  UCQ original = ParseUcq("vwao(X) :- vwaq(X).");
  RewriteWitness forged;
  forged.rewritten = ParseCq("vwao2() :- vwap(X).");
  VerifyResult result = VerifyRewriteProvenance({}, sigma, original, forged);
  EXPECT_EQ(result.code, VerifyCode::kMalformed);
}

// ---------------------------------------------------------------------
// Wire codec.

TEST(VerifyWitnessCodecTest, EvalWitnessRoundTrips) {
  EvalWitness witness;
  witness.kind = EvalWitness::Kind::kChaseAndAnswers;
  witness.method = "guarded-portion";
  witness.certified = true;
  witness.derivation.collected = true;
  witness.derivation.complete = true;
  witness.derivation.final_facts = 17;
  witness.derivation.instance_crc = 0xabad1dea;
  DerivationStep step;
  step.tgd_index = 3;
  step.body_images = {C("a"), Term::Null(41)};
  step.existential_images = {Term::Null(42)};
  witness.derivation.steps.push_back(step);
  HomWitness hom;
  hom.query = "vwq";
  hom.disjunct = 1;
  hom.answer = {C("a")};
  hom.assignment = {{V("X"), C("a")}, {V("Y"), Term::Null(42)}};
  witness.answers.push_back(hom);

  const std::string bytes = EncodeEvalWitnessToString(witness);
  EvalWitness decoded;
  SnapshotStatus status = DecodeEvalWitnessFromString(bytes, &decoded);
  ASSERT_TRUE(status.ok()) << status.message;
  EXPECT_EQ(decoded.kind, witness.kind);
  EXPECT_EQ(decoded.method, witness.method);
  EXPECT_EQ(decoded.certified, witness.certified);
  EXPECT_EQ(decoded.derivation, witness.derivation);
  ASSERT_EQ(decoded.answers.size(), 1u);
  EXPECT_EQ(decoded.answers[0], witness.answers[0]);

  // Truncations are decode errors, never crashes or partial accepts.
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    EvalWitness partial;
    EXPECT_FALSE(
        DecodeEvalWitnessFromString(bytes.substr(0, cut), &partial).ok())
        << "cut at " << cut;
  }
}

}  // namespace
}  // namespace gqe
