#include <gtest/gtest.h>

#include <unordered_set>

#include "base/atom.h"
#include "base/instance.h"
#include "base/interner.h"
#include "base/schema.h"
#include "base/term.h"

namespace gqe {
namespace {

TEST(TermTest, ConstantsInternedOnce) {
  Term a1 = Term::Constant("alpha");
  Term a2 = Term::Constant("alpha");
  Term b = Term::Constant("beta");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_TRUE(a1.IsConstant());
  EXPECT_TRUE(a1.IsGround());
  EXPECT_EQ(a1.ToString(), "alpha");
}

TEST(TermTest, VariablesDistinctFromConstants) {
  Term c = Term::Constant("x");
  Term v = Term::Variable("x");
  EXPECT_NE(c, v);
  EXPECT_TRUE(v.IsVariable());
  EXPECT_FALSE(v.IsGround());
  EXPECT_EQ(v.ToString(), "x");
}

TEST(TermTest, NullsAreGroundAndFresh) {
  Term n1 = Term::FreshNull();
  Term n2 = Term::FreshNull();
  EXPECT_NE(n1, n2);
  EXPECT_TRUE(n1.IsNull());
  EXPECT_TRUE(n1.IsGround());
  EXPECT_EQ(Term::Null(n1.id()), n1);
  EXPECT_EQ(n1.ToString().substr(0, 3), "_:n");
}

TEST(TermTest, FreshVariableDoesNotCollide) {
  Term v1 = Term::FreshVariable();
  Term v2 = Term::FreshVariable();
  EXPECT_NE(v1, v2);
  EXPECT_TRUE(v1.IsVariable());
}

TEST(TermTest, RoundTripBits) {
  Term t = Term::Constant("roundtrip");
  EXPECT_EQ(Term::FromBits(t.bits()), t);
}

TEST(TermTest, HashableInUnorderedSet) {
  std::unordered_set<Term> set;
  set.insert(Term::Constant("h1"));
  set.insert(Term::Constant("h1"));
  set.insert(Term::Variable("h1"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(PredicateTest, InternAndLookup) {
  PredicateId r = predicates::Intern("TestRel", 3);
  EXPECT_EQ(predicates::Arity(r), 3);
  EXPECT_EQ(predicates::Name(r), "TestRel");
  EXPECT_EQ(predicates::Lookup("TestRel"), r);
  EXPECT_EQ(predicates::Intern("TestRel", 3), r);
}

TEST(SchemaTest, MaxArityAndContains) {
  Schema schema;
  PredicateId r = schema.Add("SchemaR", 2);
  PredicateId s = schema.Add("SchemaS", 4);
  EXPECT_TRUE(schema.Contains(r));
  EXPECT_TRUE(schema.Contains(s));
  EXPECT_EQ(schema.MaxArity(), 4);
  EXPECT_EQ(schema.size(), 2u);
  schema.Add(r);  // idempotent
  EXPECT_EQ(schema.size(), 2u);
}

TEST(AtomTest, MakeAndPrint) {
  Atom atom = Atom::Make("Edge", {Term::Constant("a"), Term::Constant("b")});
  EXPECT_EQ(atom.arity(), 2);
  EXPECT_TRUE(atom.IsGround());
  EXPECT_EQ(atom.ToString(), "Edge(a,b)");
}

TEST(AtomTest, VariableCollection) {
  Term x = Term::Variable("X");
  Term y = Term::Variable("Y");
  Atom atom = Atom::Make("Tri", {x, y, x});
  std::vector<Term> vars;
  atom.CollectVariables(&vars);
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], x);
  EXPECT_EQ(vars[1], y);
  EXPECT_FALSE(atom.IsGround());
}

TEST(AtomTest, ContainsAll) {
  Term x = Term::Variable("X");
  Term y = Term::Variable("Y");
  Term z = Term::Variable("Z");
  Atom atom = Atom::Make("Tri2", {x, y, x});
  EXPECT_TRUE(atom.ContainsAll({x, y}));
  EXPECT_FALSE(atom.ContainsAll({x, z}));
}

TEST(AtomTest, EqualityAndHash) {
  Atom a1 = Atom::Make("EqR", {Term::Constant("a")});
  Atom a2 = Atom::Make("EqR", {Term::Constant("a")});
  Atom a3 = Atom::Make("EqR", {Term::Constant("b")});
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, a3);
  EXPECT_EQ(AtomHash{}(a1), AtomHash{}(a2));
}

class InstanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = Term::Constant("ia");
    b_ = Term::Constant("ib");
    c_ = Term::Constant("ic");
    db_.Insert(Atom::Make("IEdge", {a_, b_}));
    db_.Insert(Atom::Make("IEdge", {b_, c_}));
    db_.Insert(Atom::Make("ILabel", {a_}));
  }

  Instance db_;
  Term a_, b_, c_;
};

TEST_F(InstanceTest, InsertDeduplicates) {
  EXPECT_EQ(db_.size(), 3u);
  EXPECT_FALSE(db_.Insert(Atom::Make("IEdge", {a_, b_})));
  EXPECT_EQ(db_.size(), 3u);
  EXPECT_TRUE(db_.Insert(Atom::Make("IEdge", {c_, a_})));
  EXPECT_EQ(db_.size(), 4u);
}

TEST_F(InstanceTest, ContainsAndDomain) {
  EXPECT_TRUE(db_.Contains(Atom::Make("IEdge", {a_, b_})));
  EXPECT_FALSE(db_.Contains(Atom::Make("IEdge", {b_, a_})));
  EXPECT_EQ(db_.ActiveDomain().size(), 3u);
  EXPECT_TRUE(db_.InDomain(a_));
  EXPECT_FALSE(db_.InDomain(Term::Constant("not_there")));
}

TEST_F(InstanceTest, PositionIndex) {
  PredicateId edge = predicates::Lookup("IEdge");
  EXPECT_EQ(db_.FactsWith(edge, 0, a_).size(), 1u);
  EXPECT_EQ(db_.FactsWith(edge, 1, b_).size(), 1u);
  EXPECT_EQ(db_.FactsWith(edge, 0, c_).size(), 0u);
  EXPECT_EQ(db_.FactsWithPredicate(edge).size(), 2u);
}

TEST_F(InstanceTest, Restrict) {
  Instance restricted = db_.Restrict({a_, b_});
  EXPECT_EQ(restricted.size(), 2u);  // IEdge(a,b), ILabel(a)
  EXPECT_TRUE(restricted.Contains(Atom::Make("IEdge", {a_, b_})));
  EXPECT_TRUE(restricted.Contains(Atom::Make("ILabel", {a_})));
}

TEST_F(InstanceTest, SubsetAndEquality) {
  Instance copy;
  copy.InsertAll(db_);
  EXPECT_TRUE(copy.SetEquals(db_));
  copy.Insert(Atom::Make("ILabel", {b_}));
  EXPECT_FALSE(copy.SetEquals(db_));
  EXPECT_TRUE(db_.SubsetOf(copy));
  EXPECT_FALSE(copy.SubsetOf(db_));
}

TEST_F(InstanceTest, FactsMentioning) {
  EXPECT_EQ(db_.FactsMentioning(b_).size(), 2u);
  EXPECT_EQ(db_.FactsMentioning(c_).size(), 1u);
}

TEST_F(InstanceTest, InducedSchema) {
  Schema schema = db_.InducedSchema();
  EXPECT_EQ(schema.size(), 2u);
  EXPECT_EQ(schema.MaxArity(), 2);
}

}  // namespace
}  // namespace gqe
