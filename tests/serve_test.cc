// Crash-contained serving tests (serve/*): the chaos matrix — a worker
// killed with SIGKILL, put over its CPU or address-space rlimit, or
// stalled with SIGSTOP mid-run must leave the final report bit-identical
// to a fault-free run of the same manifest; a killed worker's retry must
// resume from its checkpoint instead of recomputing; plus manifest
// parsing, admission-control shedding, the degradation ladder, permanent
// failures and the chaos soak from the acceptance criteria.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "serve/request.h"
#include "serve/service.h"
#include "serve/worker.h"

namespace gqe {
namespace {

/// The 12-stage pipeline (cf. examples/serve/chain.gqe): one chase round
/// per stage, so kill/stall checkpoints in the low tens land mid-run.
constexpr const char* kChainProgram = R"(
sv0(a). sv0(b). sv0(c). sv0(d).
svlink(a, b). svlink(b, c). svlink(c, d).
sv0(X) -> sv1(X).
sv1(X) -> sv2(X).
sv2(X) -> sv3(X).
sv3(X) -> sv4(X).
sv4(X) -> sv5(X).
sv5(X) -> sv6(X).
sv6(X) -> sv7(X).
sv7(X) -> sv8(X).
sv8(X) -> sv9(X).
sv9(X) -> sv10(X).
sv10(X) -> sv11(X).
sv11(X) -> sv12(X).
svlink(X, Y) -> svconn(X, Y).
svconn(X, Y) -> svconn(Y, X).
svq(X) :- sv12(X).
)";

constexpr const char* kUniversityProgram = R"(
sven(ann, cs). sven(bob, math). sven(carol, cs).
svteach(dana, cs).
sven(S, C) -> svteach(P, C), svprof(P).
svteach(P, C) -> svcourse(C).
svprof(P) -> svemp(P).
svuq(C) :- svteach(P, C), svcourse(C).
)";

std::string WriteProgram(const std::string& name, const char* text) {
  std::string path = ::testing::TempDir() + "gqe_serve_" + name + ".gqe";
  std::FILE* file = std::fopen(path.c_str(), "w");
  EXPECT_NE(file, nullptr) << path;
  if (file != nullptr) {
    std::fputs(text, file);
    std::fclose(file);
  }
  return path;
}

EvalRequest ChaseRequest(const std::string& id, const std::string& program) {
  EvalRequest request;
  request.id = id;
  request.kind = RequestKind::kChase;
  request.program_path = program;
  request.budget.max_facts = 100000;
  return request;
}

/// Options tuned for fast tests: short backoff, and a heartbeat timeout
/// short enough that a SIGSTOP stall is reaped quickly but long enough
/// (vs the 20ms beat interval) to never fire on a healthy worker.
ServeOptions FastOptions() {
  ServeOptions options;
  options.backoff_base_ms = 2.0;
  options.backoff_cap_ms = 20.0;
  options.heartbeat_timeout_ms = 400.0;
  return options;
}

const RequestRow& RowById(const ServeReport& report, const std::string& id) {
  for (const RequestRow& row : report.rows) {
    if (row.id == id) return row;
  }
  ADD_FAILURE() << "no row for " << id;
  static RequestRow missing;
  return missing;
}

TEST(ServeManifestParseTest, ParsesKindsBudgetsAndFaults) {
  Manifest manifest;
  std::string error;
  ASSERT_TRUE(ParseManifest(
      "# comment\n"
      "id=r1 kind=chase program=p.gqe max_facts=100 deadline_ms=50\n"
      "id=r2 kind=omq program=/abs/p.gqe query=q as_mb=512\n"
      "id=r3 kind=cqs program=p.gqe query=q fault=kill@8/attempt=2\n"
      "id=r4 kind=cq program=p.gqe fault=cpu\n",
      "/base", &manifest, &error))
      << error;
  ASSERT_EQ(manifest.requests.size(), 4u);
  EXPECT_EQ(manifest.requests[0].program_path, "/base/p.gqe");
  EXPECT_EQ(manifest.requests[0].budget.max_facts, 100u);
  EXPECT_EQ(manifest.requests[0].budget.deadline_ms, 50.0);
  EXPECT_EQ(manifest.requests[1].program_path, "/abs/p.gqe");
  EXPECT_EQ(manifest.requests[1].address_space_mb, 512u);
  EXPECT_EQ(manifest.requests[2].fault.type, FaultSpec::Type::kKill);
  EXPECT_EQ(manifest.requests[2].fault.at_checkpoint, 8u);
  EXPECT_EQ(manifest.requests[2].fault.on_attempt, 2);
  EXPECT_EQ(manifest.requests[3].fault.type, FaultSpec::Type::kCpu);
}

TEST(ServeManifestParseTest, RejectsDuplicateIdsAndUnknownKeys) {
  Manifest manifest;
  std::string error;
  EXPECT_FALSE(ParseManifest(
      "id=r1 kind=chase program=p.gqe\nid=r1 kind=cq program=p.gqe\n", "",
      &manifest, &error));
  EXPECT_NE(error.find("r1"), std::string::npos);
  EXPECT_FALSE(ParseManifest("id=r2 kind=chase program=p.gqe maxfacts=3\n",
                             "", &manifest, &error));
}

TEST(ServeChaosSpecTest, ParsesAndRejects) {
  ChaosConfig config;
  std::string error;
  ASSERT_TRUE(ParseChaosSpec("kill=0.3,oom=0.1,stall=0.25,seed=7", &config,
                             &error))
      << error;
  EXPECT_DOUBLE_EQ(config.kill_p, 0.3);
  EXPECT_DOUBLE_EQ(config.oom_p, 0.1);
  EXPECT_DOUBLE_EQ(config.stall_p, 0.25);
  EXPECT_EQ(config.seed, 7u);
  EXPECT_TRUE(config.enabled());
  EXPECT_FALSE(ParseChaosSpec("kill=2.0", &config, &error));
  EXPECT_FALSE(ParseChaosSpec("frobnicate=0.1", &config, &error));
}

TEST(ServeWorkerResultTest, EncodeDecodeRoundTrip) {
  WorkerResult result;
  result.id = "r-42";
  result.status = Status::kBudgetExceeded;
  result.exact = false;
  result.degraded = true;
  result.method = "omq(fallback)";
  result.answer_count = 17;
  result.answer_crc = 0xdeadbeef;
  result.facts = 123;
  result.rounds_completed = 9;
  result.resumed = true;
  result.resume_generation = 6;
  result.eval_ms = 3.25;
  result.witness = std::string("opaque\0witness\xff", 15);

  const std::string bytes = EncodeWorkerResult(result);
  WorkerResult decoded;
  ASSERT_TRUE(DecodeWorkerResult(bytes, &decoded).ok());
  EXPECT_EQ(decoded.id, result.id);
  EXPECT_EQ(decoded.status, result.status);
  EXPECT_FALSE(decoded.exact);
  EXPECT_TRUE(decoded.degraded);
  EXPECT_EQ(decoded.method, result.method);
  EXPECT_EQ(decoded.answer_count, 17u);
  EXPECT_EQ(decoded.answer_crc, 0xdeadbeefu);
  EXPECT_EQ(decoded.rounds_completed, 9u);
  EXPECT_TRUE(decoded.resumed);
  EXPECT_EQ(decoded.resume_generation, 6u);
  // The witness blob travels opaquely — embedded NULs and all.
  EXPECT_EQ(decoded.witness, result.witness);

  // A truncated blob is diagnosed, never trusted.
  WorkerResult garbage;
  EXPECT_FALSE(
      DecodeWorkerResult(std::string_view(bytes).substr(0, bytes.size() / 2),
                         &garbage)
          .ok());
}

TEST(ServeTest, FaultFreeManifestCompletesEveryKind) {
  const std::string chain = WriteProgram("chain", kChainProgram);
  const std::string univ = WriteProgram("univ", kUniversityProgram);

  Manifest manifest;
  manifest.requests.push_back(ChaseRequest("chase-1", chain));
  EvalRequest cq;
  cq.id = "cq-1";
  cq.kind = RequestKind::kCq;
  cq.program_path = chain;
  cq.query = "svq";
  manifest.requests.push_back(cq);
  EvalRequest omq;
  omq.id = "omq-1";
  omq.kind = RequestKind::kOmq;
  omq.program_path = univ;
  omq.query = "svuq";
  manifest.requests.push_back(omq);
  EvalRequest cqs;
  cqs.id = "cqs-1";
  cqs.kind = RequestKind::kCqs;
  cqs.program_path = univ;
  cqs.query = "svuq";
  manifest.requests.push_back(cqs);

  ServeReport report = ServeManifest(manifest, FastOptions());
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_EQ(report.completed, 4u);
  for (const RequestRow& row : report.rows) {
    EXPECT_EQ(row.state, TerminalState::kCompleted) << row.id;
    EXPECT_EQ(row.attempts.size(), 1u) << row.id;
    EXPECT_EQ(row.attempts[0].cause, "ok") << row.id;
  }
  // The chase saw real multi-round work (one round per pipeline stage).
  EXPECT_GE(RowById(report, "chase-1").result.rounds_completed, 12u);
  // cq answers: the four chain members do NOT reach sv12 without the
  // chase — closed-world evaluation sees only the database.
  EXPECT_EQ(RowById(report, "cq-1").result.answer_count, 0u);
  // omq certain answers consult the ontology.
  EXPECT_GE(RowById(report, "omq-1").result.answer_count, 1u);
}

/// The chaos matrix: every containment path — kill -9, rlimit-CPU,
/// rlimit-AS (OOM), SIGSTOP stall, spurious exit — produces a final
/// report bit-identical to the fault-free run of the same manifest.
TEST(ServeTest, ChaosMatrixReportsBitIdenticalToFaultFree) {
  const std::string chain = WriteProgram("matrix", kChainProgram);

  Manifest clean;
  clean.requests.push_back(ChaseRequest("m-kill", chain));
  clean.requests.push_back(ChaseRequest("m-cpu", chain));
  clean.requests.push_back(ChaseRequest("m-oom", chain));
  clean.requests.push_back(ChaseRequest("m-stall", chain));
  clean.requests.push_back(ChaseRequest("m-exit", chain));

  ServeOptions options = FastOptions();
  const ServeReport clean_report = ServeManifest(clean, options);
  ASSERT_EQ(clean_report.completed, 5u);

  Manifest faulty = clean;
  auto set_fault = [&faulty](size_t i, FaultSpec::Type type,
                             uint64_t checkpoint) {
    faulty.requests[i].fault.type = type;
    faulty.requests[i].fault.at_checkpoint = checkpoint;
  };
  set_fault(0, FaultSpec::Type::kKill, 30);
  set_fault(1, FaultSpec::Type::kCpu, 0);
  set_fault(2, FaultSpec::Type::kOom, 0);
  set_fault(3, FaultSpec::Type::kStall, 30);
  set_fault(4, FaultSpec::Type::kExit, 0);
  faulty.requests[4].fault.exit_code = 3;

  const ServeReport faulty_report = ServeManifest(faulty, options);
  EXPECT_EQ(faulty_report.completed, 5u);

  // The soak criterion, in miniature: deterministic result lines are
  // bit-identical; only the ops story (attempts, causes) differs.
  EXPECT_EQ(faulty_report.DeterministicText(),
            clean_report.DeterministicText());

  EXPECT_EQ(RowById(faulty_report, "m-kill").attempts[0].cause, "sigkill");
  EXPECT_EQ(RowById(faulty_report, "m-cpu").attempts[0].cause, "cpu-limit");
  EXPECT_EQ(RowById(faulty_report, "m-oom").attempts[0].cause, "oom");
  EXPECT_EQ(RowById(faulty_report, "m-stall").attempts[0].cause,
            "heartbeat-timeout");
  EXPECT_EQ(RowById(faulty_report, "m-exit").attempts[0].cause, "exit:3");
  for (const RequestRow& row : faulty_report.rows) {
    ASSERT_EQ(row.attempts.size(), 2u) << row.id;
    EXPECT_EQ(row.attempts[1].cause, "ok") << row.id;
    EXPECT_GT(row.attempts[1].backoff_ms, 0.0) << row.id;
  }
}

/// A worker SIGKILLed mid-chase is retried and must RESUME from its
/// checkpoint directory, not recompute: the retry reports resumed=true
/// with a positive generation, and the total round count matches the
/// fault-free run (the round counters are the resume witness).
TEST(ServeTest, KillRetryResumesFromCheckpoint) {
  const std::string chain = WriteProgram("resume", kChainProgram);

  Manifest clean;
  clean.requests.push_back(ChaseRequest("res-1", chain));
  ServeOptions options = FastOptions();
  const ServeReport clean_report = ServeManifest(clean, options);
  const RequestRow& clean_row = RowById(clean_report, "res-1");
  ASSERT_EQ(clean_row.state, TerminalState::kCompleted);
  EXPECT_FALSE(clean_row.result.resumed);

  Manifest faulty = clean;
  faulty.requests[0].fault.type = FaultSpec::Type::kKill;
  faulty.requests[0].fault.at_checkpoint = 40;
  options.verify = true;
  const ServeReport report = ServeManifest(faulty, options);
  const RequestRow& row = RowById(report, "res-1");

  ASSERT_EQ(row.state, TerminalState::kCompleted);
  ASSERT_EQ(row.attempts.size(), 2u);
  EXPECT_EQ(row.attempts[0].cause, "sigkill");
  EXPECT_TRUE(row.result.resumed);
  EXPECT_GT(row.result.resume_generation, 0u);
  // The resumed run's derivation log (restored from the snapshot) still
  // replays: the supervisor independently verified the retried answer.
  EXPECT_EQ(row.verify_outcome, VerifyOutcome::kVerified)
      << row.verify_reason;
  // Same logical run: same total rounds, same facts, same digest.
  EXPECT_EQ(row.result.rounds_completed, clean_row.result.rounds_completed);
  EXPECT_EQ(row.result.facts, clean_row.result.facts);
  EXPECT_EQ(row.result.answer_crc, clean_row.result.answer_crc);
}

TEST(ServeTest, AdmissionControlShedsBeyondCapacity) {
  const std::string chain = WriteProgram("shed", kChainProgram);
  Manifest manifest;
  for (int i = 0; i < 4; ++i) {
    manifest.requests.push_back(
        ChaseRequest("shed-" + std::to_string(i), chain));
  }
  ServeOptions options = FastOptions();
  options.queue_capacity = 2;
  ServeReport report = ServeManifest(manifest, options);
  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(report.shed, 2u);
  EXPECT_EQ(RowById(report, "shed-2").state, TerminalState::kShed);
  EXPECT_EQ(RowById(report, "shed-3").failure_cause, "queue-full");
}

/// Exact retry budget exhausted -> the degradation ladder answers under
/// the tighter degraded budget, flagged inexact, instead of failing.
TEST(ServeTest, DegradationLadderAnswersAfterRetryBudget) {
  const std::string chain = WriteProgram("ladder", kChainProgram);
  Manifest manifest;
  manifest.requests.push_back(ChaseRequest("lad-1", chain));
  // The fault fires on every exact attempt (attempt 1 of 1).
  manifest.requests[0].fault.type = FaultSpec::Type::kExit;
  manifest.requests[0].fault.exit_code = 9;

  ServeOptions options = FastOptions();
  options.max_attempts = 1;
  ServeReport report = ServeManifest(manifest, options);
  const RequestRow& row = RowById(report, "lad-1");
  ASSERT_EQ(row.state, TerminalState::kDegraded);
  EXPECT_TRUE(row.result.degraded);
  EXPECT_FALSE(row.result.exact);
  ASSERT_EQ(row.attempts.size(), 2u);
  EXPECT_EQ(row.attempts[0].cause, "exit:9");
  EXPECT_TRUE(row.attempts[1].degraded);

  // With the ladder disabled the same request is a structured failure.
  options.enable_degraded_ladder = false;
  ServeReport failed = ServeManifest(manifest, options);
  EXPECT_EQ(RowById(failed, "lad-1").state, TerminalState::kFailed);
  EXPECT_EQ(RowById(failed, "lad-1").failure_cause, "exit:9");
}

TEST(ServeTest, PermanentFailuresAreNotRetried) {
  Manifest manifest;
  manifest.requests.push_back(
      ChaseRequest("gone-1", "/nonexistent/program.gqe"));
  ServeReport report = ServeManifest(manifest, FastOptions());
  const RequestRow& row = RowById(report, "gone-1");
  EXPECT_EQ(row.state, TerminalState::kFailed);
  EXPECT_EQ(row.failure_cause, "parse-error");
  EXPECT_EQ(row.attempts.size(), 1u);
}

/// Certified answers across every request kind: with verify on, a
/// fault-free run independently re-checks each worker's witness — the
/// chase derivation replays, every query answer's homomorphism holds,
/// and the supervisor's digest of the re-checked answers matches the
/// worker's CRC.
TEST(ServeTest, VerifyModeChecksEveryKind) {
  const std::string chain = WriteProgram("vchain", kChainProgram);
  const std::string univ = WriteProgram("vuniv", kUniversityProgram);

  Manifest manifest;
  manifest.requests.push_back(ChaseRequest("v-chase", chain));
  EvalRequest cq;
  cq.id = "v-cq";
  cq.kind = RequestKind::kCq;
  cq.program_path = chain;
  cq.query = "svq";
  manifest.requests.push_back(cq);
  EvalRequest omq;
  omq.id = "v-omq";
  omq.kind = RequestKind::kOmq;
  omq.program_path = univ;
  omq.query = "svuq";
  manifest.requests.push_back(omq);
  EvalRequest cqs;
  cqs.id = "v-cqs";
  cqs.kind = RequestKind::kCqs;
  cqs.program_path = univ;
  cqs.query = "svuq";
  manifest.requests.push_back(cqs);

  ServeOptions options = FastOptions();
  options.verify = true;
  ServeReport report = ServeManifest(manifest, options);
  ASSERT_EQ(report.completed, 4u);
  for (const RequestRow& row : report.rows) {
    EXPECT_EQ(row.verify_outcome, VerifyOutcome::kVerified)
        << row.id << ": " << row.verify_reason;
  }
  EXPECT_EQ(report.verified, 4u);
  EXPECT_EQ(report.unverified, 0u);
  EXPECT_EQ(report.witness_rejections, 0u);

  // The deterministic lines carry the outcome — and verify mode must not
  // perturb the answers themselves, only annotate them.
  const std::string text = report.DeterministicText();
  EXPECT_NE(text.find("verified=yes"), std::string::npos);
  options.verify = false;
  ServeReport plain = ServeManifest(manifest, options);
  std::string plain_text = plain.DeterministicText();
  EXPECT_EQ(plain_text.find("verified="), std::string::npos);
  std::string stripped = text;
  size_t at;
  while ((at = stripped.find(" verified=yes")) != std::string::npos) {
    stripped.erase(at, 13);
  }
  EXPECT_EQ(stripped, plain_text);
}

/// Acceptance-criteria soak: a 50+ request manifest under
/// --chaos kill=0.3,stall=0.1 with verify on. The daemon never crashes,
/// every request reaches a terminal state, completed answers are
/// bit-identical to the fault-free run, and every positive answer's
/// witness was independently re-checked by the supervisor.
TEST(ServeTest, ChaosSoakFiftyRequestsBitIdentical) {
  const std::string chain = WriteProgram("soak_chain", kChainProgram);
  const std::string univ = WriteProgram("soak_univ", kUniversityProgram);

  Manifest manifest;
  for (int i = 0; i < 50; ++i) {
    if (i % 3 == 0) {
      EvalRequest cq;
      cq.id = "soak-" + std::to_string(i);
      cq.kind = i % 2 == 0 ? RequestKind::kCq : RequestKind::kOmq;
      cq.program_path = univ;
      cq.query = "svuq";
      manifest.requests.push_back(cq);
    } else {
      manifest.requests.push_back(
          ChaseRequest("soak-" + std::to_string(i), chain));
    }
  }

  ServeOptions options = FastOptions();
  options.concurrency = 8;
  options.verify = true;
  const ServeReport clean_report = ServeManifest(manifest, options);
  ASSERT_EQ(clean_report.rows.size(), 50u);
  ASSERT_EQ(clean_report.completed, 50u);
  EXPECT_EQ(clean_report.verified, 50u);
  EXPECT_EQ(clean_report.witness_rejections, 0u);

  ASSERT_TRUE(
      ParseChaosSpec("kill=0.3,stall=0.1,seed=11", &options.chaos, nullptr));
  options.chaos.max_checkpoint = 64;  // land inside these small runs
  const ServeReport chaos_report = ServeManifest(manifest, options);

  // Every request terminal (nothing dropped), answers bit-identical.
  ASSERT_EQ(chaos_report.rows.size(), 50u);
  EXPECT_EQ(chaos_report.completed + chaos_report.degraded +
                chaos_report.failed + chaos_report.shed,
            50u);
  EXPECT_EQ(chaos_report.DeterministicText(),
            clean_report.DeterministicText());

  // Every answer-bearing terminal row was independently re-checked —
  // chaos (kills, resumes, retries) must not cost certification.
  for (const RequestRow& row : chaos_report.rows) {
    if (row.state == TerminalState::kCompleted ||
        row.state == TerminalState::kDegraded) {
      EXPECT_EQ(row.verify_outcome, VerifyOutcome::kVerified)
          << row.id << ": " << row.verify_reason;
    }
  }

  // The chaos actually did something: some attempt was injected.
  size_t injected = 0;
  for (const RequestRow& row : chaos_report.rows) {
    for (const AttemptRecord& attempt : row.attempts) {
      if (attempt.chaos) ++injected;
    }
  }
  EXPECT_GT(injected, 0u);

  // And the same chaos seed reproduces the same attempt history.
  const ServeReport again = ServeManifest(manifest, options);
  ASSERT_EQ(again.rows.size(), chaos_report.rows.size());
  for (size_t i = 0; i < again.rows.size(); ++i) {
    ASSERT_EQ(again.rows[i].attempts.size(),
              chaos_report.rows[i].attempts.size())
        << again.rows[i].id;
    for (size_t j = 0; j < again.rows[i].attempts.size(); ++j) {
      EXPECT_EQ(again.rows[i].attempts[j].cause,
                chaos_report.rows[i].attempts[j].cause)
          << again.rows[i].id << " attempt " << j;
    }
  }
}

}  // namespace
}  // namespace gqe
