// Tests for the bump-pointer Arena and the columnar FactStore
// (src/base/arena.h, src/base/fact_store.h), plus the invariants the
// rest of the stack leans on: the columnar mirror inside Instance agrees
// with the row store atom-for-atom, and an instance built through the
// columnar path serializes byte-identically through the checkpoint
// codec (the PR-3 snapshot format must not notice the data-layout swap).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/arena.h"
#include "base/atom.h"
#include "base/fact_store.h"
#include "base/instance.h"
#include "base/serialize.h"
#include "base/term.h"

namespace gqe {
namespace {

bool IsAligned(const void* p, size_t align) {
  return reinterpret_cast<uintptr_t>(p) % align == 0;
}

TEST(ArenaTest, BasicAllocationAndAccounting) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  void* a = arena.Allocate(64);
  void* b = arena.Allocate(64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_GE(arena.bytes_used(), 128u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
  // Written bytes must not overlap.
  std::memset(a, 0xaa, 64);
  std::memset(b, 0xbb, 64);
  EXPECT_EQ(static_cast<unsigned char*>(a)[63], 0xaa);
  EXPECT_EQ(static_cast<unsigned char*>(b)[0], 0xbb);
}

TEST(ArenaTest, OverAlignedAllocations) {
  Arena arena;
  for (size_t align : {8u, 16u, 32u, 64u, 128u, 256u}) {
    for (int i = 0; i < 16; ++i) {
      void* p = arena.Allocate(align / 2 + 1, align);
      ASSERT_NE(p, nullptr);
      EXPECT_TRUE(IsAligned(p, align)) << "align " << align;
    }
    // Interleave odd-sized unaligned requests to skew the bump pointer.
    arena.Allocate(3, 1);
  }
}

TEST(ArenaTest, LargeAllocationsSpanBlocks) {
  Arena arena(/*block_bytes=*/256);
  // Many small allocations force chained blocks...
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(100);
    ASSERT_NE(p, nullptr);
    std::memset(p, i, 100);
  }
  EXPECT_GT(arena.block_count(), 1u);
  // ...and an oversized request (bigger than any block) still succeeds
  // without disturbing subsequent small allocations.
  size_t before = arena.bytes_used();
  void* huge = arena.Allocate(Arena::kMaxBlockBytes + 1024);
  ASSERT_NE(huge, nullptr);
  std::memset(huge, 0xcd, Arena::kMaxBlockBytes + 1024);
  EXPECT_GE(arena.bytes_used(), before + Arena::kMaxBlockBytes + 1024);
  void* small = arena.Allocate(8);
  ASSERT_NE(small, nullptr);
}

TEST(ArenaTest, ResetRecyclesAndBumpsEpoch) {
  Arena arena(/*block_bytes=*/128);
  for (int i = 0; i < 50; ++i) arena.Allocate(64);
  size_t reserved_grown = arena.bytes_reserved();
  uint64_t epoch = arena.epoch();
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.epoch(), epoch + 1);
  // Reset keeps one block: reserved shrinks but stays nonzero.
  EXPECT_GT(arena.bytes_reserved(), 0u);
  EXPECT_LT(arena.bytes_reserved(), reserved_grown);
  EXPECT_EQ(arena.block_count(), 1u);
  // The arena is immediately reusable.
  void* p = arena.Allocate(64);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xee, 64);
}

TEST(ArenaTest, TypedAllocationHelpers) {
  Arena arena;
  uint32_t* run = arena.AllocateArray<uint32_t>(10);
  ASSERT_NE(run, nullptr);
  EXPECT_TRUE(IsAligned(run, alignof(uint32_t)));
  for (int i = 0; i < 10; ++i) run[i] = i;
  struct Pod {
    uint64_t a;
    uint32_t b;
  };
  Pod* pod = arena.New<Pod>(Pod{7, 9});
  ASSERT_NE(pod, nullptr);
  EXPECT_EQ(pod->a, 7u);
  EXPECT_EQ(pod->b, 9u);
  EXPECT_EQ(run[9], 9u);  // earlier allocation untouched
}

TEST(ArenaTest, MoveTransfersOwnership) {
  Arena arena(/*block_bytes=*/128);
  uint32_t* p = arena.AllocateArray<uint32_t>(4);
  p[0] = 41;
  Arena moved(std::move(arena));
  EXPECT_EQ(p[0], 41u);  // storage survives the move
  EXPECT_GT(moved.bytes_used(), 0u);
  uint32_t* q = moved.AllocateArray<uint32_t>(4);
  ASSERT_NE(q, nullptr);
}

#ifndef NDEBUG
TEST(ArenaPinDeathTest, ResetUnderPinAsserts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Arena arena;
        arena.Allocate(16);
        Arena::Pin pin(arena);
        arena.Reset();  // an engine holding pointers across Reset
      },
      "");
}
#endif

TEST(ArenaTest, PinReleaseAllowsReset) {
  Arena arena;
  arena.Allocate(16);
  {
    Arena::Pin pin(arena);
  }
  arena.Reset();  // no live pin: fine
  EXPECT_EQ(arena.bytes_used(), 0u);
}

Term C(int i) { return Term::Constant("fs_c" + std::to_string(i)); }

TEST(FactStoreTest, InsertUniqueAssignsDenseIds) {
  FactStore store;
  Atom a = Atom::Make("fs_p", {C(1), C(2)});
  Atom b = Atom::Make("fs_q", {C(3)});
  auto [id_a, fresh_a] =
      store.InsertUnique(a.predicate(), a.args().data(), 2);
  auto [id_b, fresh_b] =
      store.InsertUnique(b.predicate(), b.args().data(), 1);
  EXPECT_TRUE(fresh_a);
  EXPECT_TRUE(fresh_b);
  EXPECT_EQ(id_a, 0u);
  EXPECT_EQ(id_b, 1u);
  auto [id_dup, fresh_dup] =
      store.InsertUnique(a.predicate(), a.args().data(), 2);
  EXPECT_FALSE(fresh_dup);
  EXPECT_EQ(id_dup, id_a);
  EXPECT_EQ(store.size(), 2u);

  EXPECT_EQ(store.predicate(id_a), a.predicate());
  EXPECT_EQ(store.arity(id_a), 2u);
  ASSERT_EQ(store.args(id_a).size(), 2u);
  EXPECT_EQ(store.args(id_a)[0], C(1));
  EXPECT_EQ(store.args(id_a)[1], C(2));
  EXPECT_EQ(store.arity(id_b), 1u);
}

TEST(FactStoreTest, FindAndZeroArity) {
  FactStore store;
  Atom zero = Atom::Make("fs_flag", {});
  EXPECT_EQ(store.Find(zero.predicate(), nullptr, 0), -1);
  auto [id, fresh] = store.InsertUnique(zero.predicate(), nullptr, 0);
  EXPECT_TRUE(fresh);
  EXPECT_EQ(store.Find(zero.predicate(), nullptr, 0),
            static_cast<int64_t>(id));
  EXPECT_EQ(store.arity(id), 0u);
  EXPECT_TRUE(store.args(id).empty());
  // Same-name different-arity content must not collide.
  Term arg = C(9);
  EXPECT_EQ(store.Find(zero.predicate(), &arg, 1), -1);
}

TEST(FactStoreTest, HashDistinguishesArgOrder) {
  Term x = C(1), y = C(2);
  Term xy[] = {x, y};
  Term yx[] = {y, x};
  Atom p = Atom::Make("fs_ord", {x, y});
  EXPECT_NE(FactStore::HashFact(p.predicate(), xy, 2),
            FactStore::HashFact(p.predicate(), yx, 2));
  FactStore store;
  store.InsertUnique(p.predicate(), xy, 2);
  EXPECT_EQ(store.Find(p.predicate(), yx, 2), -1);
}

TEST(FactStoreTest, CopyAndMoveKeepIndexWorking) {
  FactStore store;
  std::vector<Atom> atoms;
  for (int i = 0; i < 200; ++i) {
    atoms.push_back(Atom::Make("fs_cm", {C(i % 50), C(i % 7)}));
    store.InsertUnique(atoms.back().predicate(), atoms.back().args().data(),
                       2);
  }
  FactStore copy(store);
  FactStore assigned;
  assigned = store;
  FactStore moved(std::move(copy));
  // The dedup index of each holds a back-pointer to its own columns; a
  // stale pointer would make these probes misbehave (or crash ASan).
  for (const Atom& atom : atoms) {
    int64_t want = store.Find(atom.predicate(), atom.args().data(), 2);
    ASSERT_GE(want, 0);
    EXPECT_EQ(assigned.Find(atom.predicate(), atom.args().data(), 2), want);
    EXPECT_EQ(moved.Find(atom.predicate(), atom.args().data(), 2), want);
  }
  // Inserting after copy/move appends into the right object's columns.
  Atom extra = Atom::Make("fs_cm_x", {C(1), C(2)});
  auto [id, fresh] =
      moved.InsertUnique(extra.predicate(), extra.args().data(), 2);
  EXPECT_TRUE(fresh);
  EXPECT_EQ(moved.predicate(id), extra.predicate());
  EXPECT_EQ(store.Find(extra.predicate(), extra.args().data(), 2), -1);
}

TEST(FactStoreTest, ReserveAvoidsIndexRehashes) {
  FactStore store;
  store.Reserve(/*facts=*/2000, /*terms=*/4000);
  uint64_t rehashes = store.index_rehashes();
  for (int i = 0; i < 2000; ++i) {
    Atom atom = Atom::Make("fs_rs", {C(i), C(i + 1)});
    store.InsertUnique(atom.predicate(), atom.args().data(), 2);
  }
  EXPECT_EQ(store.index_rehashes(), rehashes);
  EXPECT_EQ(store.size(), 2000u);
}

TEST(FactStoreTest, ClearThenReuse) {
  FactStore store;
  Atom atom = Atom::Make("fs_cl", {C(4)});
  store.InsertUnique(atom.predicate(), atom.args().data(), 1);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.Find(atom.predicate(), atom.args().data(), 1), -1);
  auto [id, fresh] =
      store.InsertUnique(atom.predicate(), atom.args().data(), 1);
  EXPECT_TRUE(fresh);
  EXPECT_EQ(id, 0u);
}

// ---- The columnar mirror inside Instance ----

Instance BuildMixedInstance() {
  Instance db;
  for (int i = 0; i < 60; ++i) {
    db.Insert(Atom::Make("col_e", {C(i % 12), C((i * 7) % 12)}));
  }
  for (int i = 0; i < 12; ++i) {
    if (i % 3 != 0) db.Insert(Atom::Make("col_u", {C(i)}));
  }
  db.Insert(Atom::Make("col_zero", {}));
  db.Insert(Atom::Make("col_t", {C(0), Term::Null(900001), C(3)}));
  db.Insert(Atom::Make("col_t", {Term::Null(900002), C(1), C(3)}));
  return db;
}

TEST(InstanceColumnarTest, RowAndColumnStoresAgree) {
  Instance db = BuildMixedInstance();
  ASSERT_EQ(db.store().size(), db.atoms().size());
  for (uint32_t i = 0; i < db.atoms().size(); ++i) {
    const Atom& row = db.atoms()[i];
    EXPECT_EQ(db.predicate_of(i), row.predicate());
    std::span<const Term> col = db.args_of(i);
    ASSERT_EQ(col.size(), row.args().size());
    for (size_t j = 0; j < col.size(); ++j) EXPECT_EQ(col[j], row.args()[j]);
    EXPECT_EQ(db.Find(row), static_cast<int64_t>(i));
  }
}

TEST(InstanceColumnarTest, DuplicateInsertRejectedByColumnIndex) {
  Instance db = BuildMixedInstance();
  size_t before = db.size();
  EXPECT_FALSE(db.Insert(Atom::Make("col_e", {C(0), C(0)})));
  EXPECT_FALSE(db.Insert(Atom::Make("col_zero", {})));
  EXPECT_EQ(db.size(), before);
  EXPECT_TRUE(db.Insert(Atom::Make("col_e", {C(0), C(11)})));
  EXPECT_EQ(db.size(), before + 1);
}

TEST(InstanceColumnarTest, SerializesIdenticallyThroughCheckpointCodec) {
  // The snapshot format encodes the atom sequence in insertion order.
  // Build → encode → decode → re-encode must be byte-identical: the
  // columnar mirror must not perturb insertion order or term bits.
  Instance db = BuildMixedInstance();
  BinaryWriter first;
  EncodeInstance(db, &first);

  BinaryReader reader(first.buffer());
  Instance decoded;
  SnapshotStatus status = DecodeInstance(&reader, &decoded);
  ASSERT_TRUE(status.ok()) << status.message;
  ASSERT_EQ(decoded.size(), db.size());
  EXPECT_EQ(decoded.atoms(), db.atoms());

  BinaryWriter second;
  EncodeInstance(decoded, &second);
  EXPECT_EQ(first.buffer(), second.buffer());

  // And the decoded instance's columnar mirror is rebuilt consistently.
  for (uint32_t i = 0; i < decoded.atoms().size(); ++i) {
    EXPECT_EQ(decoded.Find(decoded.atoms()[i]), static_cast<int64_t>(i));
  }
}

TEST(InstanceColumnarTest, ActiveDomainMatchesRowSemantics) {
  Instance db = BuildMixedInstance();
  // ActiveDomain must enumerate exactly the terms present in some fact,
  // and InDomain (now a flat-set probe) must agree with it.
  std::unordered_set<Term, TermHash> expect_domain;
  for (const Atom& atom : db.atoms()) {
    for (const Term& t : atom.args()) expect_domain.insert(t);
  }
  std::unordered_set<Term, TermHash> got_domain;
  for (const Term& t : db.ActiveDomain()) got_domain.insert(t);
  EXPECT_EQ(got_domain, expect_domain);
  for (const Term& t : expect_domain) EXPECT_TRUE(db.InDomain(t));
  EXPECT_FALSE(db.InDomain(Term::Constant("col_absent")));
}

}  // namespace
}  // namespace gqe
