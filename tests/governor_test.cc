// The unified resource governor: deterministic fault injection through
// the chase, homomorphism search and treewidth engines; wall-clock
// deadlines on diverging workloads; graceful degradation. The invariant
// under test everywhere: a governed engine that was cut short reports the
// exact guard rail that stopped it — a truncated result is never labelled
// kCompleted.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/governor.h"
#include "chase/chase.h"
#include "graph/graph.h"
#include "graph/tree_decomposition.h"
#include "graph/treewidth.h"
#include "omq/evaluation.h"
#include "parser/parser.h"
#include "query/homomorphism.h"

namespace gqe {
namespace {

// ---------------------------------------------------------------------
// Governor core.
// ---------------------------------------------------------------------

TEST(GovernorCoreTest, NullTokenNeverCancels) {
  CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.CancelRequested());
  token.RequestCancel();  // no-op
  EXPECT_FALSE(token.CancelRequested());
}

TEST(GovernorCoreTest, TokenCopiesShareOneFlag) {
  CancelToken token = CancelToken::Create();
  CancelToken copy = token;
  EXPECT_FALSE(copy.CancelRequested());
  token.RequestCancel();
  EXPECT_TRUE(copy.CancelRequested());

  ExecutionBudget budget;
  budget.cancel = copy;
  Governor governor(budget);
  EXPECT_EQ(governor.Check(), Status::kCancelled);
}

TEST(GovernorCoreTest, FactBudgetTripsAndSticks) {
  ExecutionBudget budget;
  budget.max_facts = 5;
  Governor governor(budget);
  EXPECT_EQ(governor.ChargeFacts(5), Status::kCompleted);
  EXPECT_EQ(governor.ChargeFacts(1), Status::kBudgetExceeded);
  // Sticky: every later checkpoint reports the same cause.
  EXPECT_EQ(governor.Check(), Status::kBudgetExceeded);
  EXPECT_EQ(governor.ChargeNodes(1), Status::kBudgetExceeded);
  Outcome outcome = governor.MakeOutcome();
  EXPECT_EQ(outcome.status, Status::kBudgetExceeded);
  EXPECT_EQ(outcome.facts_charged, 6u);
  EXPECT_FALSE(outcome.ok());
}

TEST(GovernorCoreTest, NodeBudgetTrips) {
  ExecutionBudget budget;
  budget.max_facts = 0;
  budget.max_search_nodes = 10;
  Governor governor(budget);
  EXPECT_EQ(governor.ChargeNodes(10), Status::kCompleted);
  EXPECT_EQ(governor.ChargeNodes(1), Status::kBudgetExceeded);
}

TEST(GovernorCoreTest, InjectorTripsAtNthCheckpoint) {
  TestFaultInjector injector(Status::kDeadlineExceeded, 3);
  ExecutionBudget budget;
  budget.max_facts = 0;
  Governor governor(budget, &injector);
  EXPECT_EQ(governor.NodeChargeBatch(), 1u);
  EXPECT_EQ(governor.Check(), Status::kCompleted);
  EXPECT_EQ(governor.Check(), Status::kCompleted);
  EXPECT_EQ(governor.Check(), Status::kDeadlineExceeded);
  EXPECT_EQ(governor.MakeOutcome().checkpoints, 3u);
}

// ---------------------------------------------------------------------
// Fault injection through the engines: the injected guard rail must come
// back as the reported status, and the result must never claim natural
// completion.
// ---------------------------------------------------------------------

TgdSet DivergingSigma() {
  // Non-weakly-acyclic: every round invents fresh nulls forever.
  return ParseTgds("gve(X, Y) -> gve(Y, Z).");
}

Instance DivergingDb(int chains) {
  Instance db;
  for (int i = 0; i < chains; ++i) {
    db.Insert(Atom::Make("gve",
                         {Term::Constant("gv" + std::to_string(i)),
                          Term::Constant("gv" + std::to_string(i) + "b")}));
  }
  return db;
}

TEST(GovernorInjectionTest, ChaseReportsTheInjectedCause) {
  for (Status cause : {Status::kBudgetExceeded, Status::kDeadlineExceeded,
                       Status::kCancelled}) {
    TestFaultInjector injector(cause, 40);
    ExecutionBudget budget;
    budget.max_facts = 0;
    Governor governor(budget, &injector);
    ChaseOptions options;
    options.governor = &governor;
    ChaseResult result = Chase(DivergingDb(4), DivergingSigma(), options);
    EXPECT_EQ(result.outcome.status, cause) << StatusName(cause);
    // Never a truncated result labelled kCompleted.
    EXPECT_FALSE(result.complete) << StatusName(cause);
  }
}

TEST(GovernorInjectionTest, UntrippedChaseCompletesWithCompletedStatus) {
  TgdSet sigma = ParseTgds("gvt(X) -> gvu(X).");
  Instance db = ParseDatabase("gvt(gvc).");
  ExecutionBudget budget;
  ChaseOptions options;
  options.budget = budget;
  ChaseResult result = Chase(db, sigma, options);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.outcome.status, Status::kCompleted);
  EXPECT_TRUE(result.outcome.ok());
}

TEST(GovernorInjectionTest, HomSearchStopsWithInjectedStatus) {
  Instance db;
  for (int i = 0; i < 30; ++i) {
    db.Insert(Atom::Make("gvh",
                         {Term::Constant("gh" + std::to_string(i)),
                          Term::Constant("gh" + std::to_string(i + 1))}));
  }
  std::vector<Atom> pattern = {
      Atom::Make("gvh", {Term::Variable("X"), Term::Variable("Y")}),
      Atom::Make("gvh", {Term::Variable("Y"), Term::Variable("Z")})};
  const size_t full = HomomorphismSearch(pattern, db).FindAll().size();
  ASSERT_GT(full, 0u);

  TestFaultInjector injector(Status::kCancelled, 8);
  ExecutionBudget budget;
  budget.max_facts = 0;
  Governor governor(budget, &injector);
  HomOptions options;
  options.governor = &governor;
  HomomorphismSearch search(pattern, db, options);
  std::vector<Substitution> results = search.FindAll();
  EXPECT_EQ(search.status(), Status::kCancelled);
  EXPECT_LT(results.size(), full);
}

TEST(GovernorInjectionTest, HomSearchNodeBudgetWithoutInjector) {
  // Large enough that the search charges well past one 64-node batch.
  Instance db;
  for (int i = 0; i < 300; ++i) {
    db.Insert(Atom::Make("gvn",
                         {Term::Constant("gn" + std::to_string(i)),
                          Term::Constant("gn" + std::to_string(i + 1))}));
  }
  std::vector<Atom> pattern = {
      Atom::Make("gvn", {Term::Variable("X"), Term::Variable("Y")}),
      Atom::Make("gvn", {Term::Variable("Y"), Term::Variable("Z")})};
  ExecutionBudget budget;
  budget.max_facts = 0;
  budget.max_search_nodes = 64;  // one charge batch, trips soon after
  Governor governor(budget);
  HomOptions options;
  options.governor = &governor;
  HomomorphismSearch search(pattern, db, options);
  search.FindAll();
  EXPECT_EQ(search.status(), Status::kBudgetExceeded);
}

TEST(GovernorInjectionTest, TreewidthDegradesToHeuristicOnInjectedTrip) {
  Graph clique = Graph::Clique(12);
  TestFaultInjector injector(Status::kBudgetExceeded, 5);
  ExecutionBudget budget;
  budget.max_facts = 0;
  Governor governor(budget, &injector);
  TreewidthOptions options;
  options.governor = &governor;
  TreewidthResult result = ComputeTreewidth(clique, options);
  EXPECT_EQ(result.status, Status::kBudgetExceeded);
  EXPECT_TRUE(result.degraded);
  // Degraded results are never labelled exact, even though min-fill on a
  // clique matches the degeneracy lower bound.
  EXPECT_FALSE(result.exact());
  EXPECT_EQ(result.upper_bound, 11);
  std::string why;
  EXPECT_TRUE(result.decomposition.Validate(clique, &why)) << why;
}

TEST(GovernorInjectionTest, OmqPipelineSharesOneBudget) {
  // Nested OMQ -> guarded chase tree share one governor: a tiny fact
  // budget on the pipeline cuts the portion build, and the overall result
  // is flagged partial with the budget status — not silently truncated.
  TgdSet sigma = ParseTgds("gvo(X) -> gvp(X, Y), gvo(Y).");
  Omq omq = Omq::WithFullDataSchema(sigma, ParseUcq("gvq(X) :- gvo(X)."));
  Instance db = ParseDatabase("gvo(gvseed).");
  OmqEvalOptions options;
  // Bag-shape blocking keeps the guarded portion finite, so the budget
  // must be tight enough to land inside the first bag expansion.
  options.budget.max_facts = 2;
  OmqEvalResult result = EvaluateOmq(omq, db, options);
  EXPECT_EQ(result.status, Status::kBudgetExceeded);
  EXPECT_TRUE(result.partial);
  EXPECT_FALSE(result.exact);
}

// ---------------------------------------------------------------------
// Wall-clock deadlines (the acceptance scenario): a diverging chase
// under a 100 ms deadline returns kDeadlineExceeded promptly at one and
// at eight threads, with every worker joined by the time Chase returns.
// ---------------------------------------------------------------------

TEST(GovernorDeadlineTest, DivergingChaseHitsDeadlinePromptly) {
  const double deadline_ms = 100.0;
  for (int threads : {1, 8}) {
    ChaseOptions options;
    options.threads = threads;
    options.budget.max_facts = 0;
    options.budget.deadline_ms = deadline_ms;
    ChaseResult result = Chase(DivergingDb(8), DivergingSigma(), options);
    EXPECT_EQ(result.outcome.status, Status::kDeadlineExceeded)
        << "threads " << threads;
    EXPECT_FALSE(result.complete) << "threads " << threads;
    EXPECT_GE(result.outcome.elapsed_ms, deadline_ms) << "threads " << threads;
    // ~2x the deadline, with headroom for sanitizer-slowed checkpoints.
    EXPECT_LE(result.outcome.elapsed_ms, 4 * deadline_ms)
        << "threads " << threads;
  }
}

TEST(GovernorDeadlineTest, CliqueTreewidthDegradesUnderDeadline) {
  // 30-vertex clique: the exact DP would walk ~2^30 subsets; under a
  // deadline it must abandon the DP and still return a *valid* heuristic
  // decomposition (min-fill width 29) flagged non-exact.
  Graph clique = Graph::Clique(30);
  TreewidthOptions options;
  options.exact_vertex_limit = 30;
  options.budget.max_facts = 0;
  options.budget.deadline_ms = 60.0;
  TreewidthResult result = ComputeTreewidth(clique, options);
  EXPECT_EQ(result.status, Status::kDeadlineExceeded);
  EXPECT_TRUE(result.degraded);
  EXPECT_FALSE(result.exact());
  EXPECT_EQ(result.upper_bound, 29);
  std::string why;
  EXPECT_TRUE(result.decomposition.Validate(clique, &why)) << why;
}

TEST(GovernorDeadlineTest, CancelTokenStopsParallelChase) {
  // A pre-cancelled token: the chase must notice at its first checkpoint
  // and return kCancelled without committing any round.
  CancelToken token = CancelToken::Create();
  token.RequestCancel();
  for (int threads : {1, 8}) {
    ChaseOptions options;
    options.threads = threads;
    options.budget.max_facts = 0;
    options.budget.cancel = token;
    Instance db = DivergingDb(4);
    ChaseResult result = Chase(db, DivergingSigma(), options);
    EXPECT_EQ(result.outcome.status, Status::kCancelled)
        << "threads " << threads;
    EXPECT_FALSE(result.complete);
    // Only the input facts were committed.
    EXPECT_EQ(result.instance.size(), db.size());
  }
}

}  // namespace
}  // namespace gqe
