// Guarded reasoning beyond binary relations: the paper stresses that
// arities above two are where its proofs depart from the description-
// logic literature (Section 6.1). These tests drive the type-closure /
// saturation machinery on ternary guards, multi-atom heads, and 0-ary
// predicates.

#include <gtest/gtest.h>

#include <unordered_set>

#include "chase/chase.h"
#include "guarded/omq_eval.h"
#include "guarded/saturation.h"
#include "omq/evaluation.h"
#include "parser/parser.h"
#include "query/evaluation.h"

namespace gqe {
namespace {

Term C(const char* name) { return Term::Constant(name); }

TEST(Arity3Test, TernaryGuardCoversBinaryJoins) {
  // The ternary guard lets non-guarded-looking joins happen inside bags.
  TgdSet sigma = ParseTgds(R"(
    a3t(X, Y, Z) -> a3r(X, Y), a3s(Y, Z).
    a3t(X, Y, Z), a3r(X, Y), a3s(Y, Z) -> a3hit(X, Z).
  )");
  ASSERT_TRUE(IsGuardedSet(sigma));
  Instance db = ParseDatabase("a3t(u, v, w).");
  Instance saturated = GroundSaturation(db, sigma);
  EXPECT_TRUE(saturated.Contains(Atom::Make("a3hit", {C("u"), C("w")})));
}

TEST(Arity3Test, ExistentialTernaryHeads) {
  // Heads inventing two nulls at once inside a ternary relation.
  TgdSet sigma = ParseTgds(R"(
    a3p(X) -> a3t2(X, Y, Z), a3mark(Z).
    a3t2(X, Y, Z) -> a3back(X).
  )");
  Instance db = ParseDatabase("a3p(solo).");
  Instance saturated = GroundSaturation(db, sigma);
  EXPECT_TRUE(saturated.Contains(Atom::Make("a3back", {C("solo")})));
  UCQ q = ParseUcq("a3q() :- a3t2(X, Y, Z), a3mark(Z).");
  EXPECT_TRUE(GuardedCertainlyHolds(db, sigma, q, {}));
}

TEST(Arity3Test, RepeatedVariablesInGuard) {
  TgdSet sigma = ParseTgds("a3g(X, X, Y) -> a3diag(X).");
  Instance db = ParseDatabase("a3g(p, p, q). a3g(r, s, t).");
  Instance saturated = GroundSaturation(db, sigma);
  EXPECT_TRUE(saturated.Contains(Atom::Make("a3diag", {C("p")})));
  EXPECT_EQ(saturated.FactsWithPredicate(predicates::Lookup("a3diag")).size(),
            1u);
}

TEST(Arity3Test, CertainAnswersThroughTernaryChase) {
  // A two-hop derivation through ternary anonymous witnesses.
  TgdSet sigma = ParseTgds(R"(
    a3doc(X) -> a3auth(X, Y, Z), a3pers(Y), a3inst(Z).
    a3auth(X, Y, Z) -> a3credit(Y, X).
  )");
  Instance db = ParseDatabase("a3doc(paper1). a3doc(paper2).");
  UCQ q = ParseUcq("a3q2(X) :- a3auth(X, Y, Z), a3credit(Y, X).");
  auto answers = GuardedCertainAnswers(db, sigma, q);
  EXPECT_EQ(answers.size(), 2u);
}

TEST(ZeroAryTest, PropositionalAtomsFlowThroughBags) {
  // Proposition 3.2's hard case uses 0-ary atoms; exercise them through
  // saturation: flag() is in every bag.
  TgdSet sigma = ParseTgds(R"(
    z0r(X, Y) -> z0flag().
    z0r(X, Y), z0flag() -> z0done(X).
  )");
  ASSERT_TRUE(IsGuardedSet(sigma));
  Instance db = ParseDatabase("z0r(m, n).");
  Instance saturated = GroundSaturation(db, sigma);
  EXPECT_TRUE(saturated.Contains(Atom::Make("z0flag", std::vector<Term>{})));
  EXPECT_TRUE(saturated.Contains(Atom::Make("z0done", {C("m")})));
}

TEST(ZeroAryTest, BooleanAtomicOmq) {
  // The simplest OMQ of Proposition 3.2(2): a propositional goal.
  TgdSet sigma = ParseTgds(R"(
    z1a(X) -> z1b(X, Y).
    z1b(X, Y) -> z1goal().
  )");
  Instance db = ParseDatabase("z1a(c).");
  Omq omq = Omq::WithFullDataSchema(sigma, ParseUcq("z1q() :- z1goal()."));
  EXPECT_TRUE(OmqHolds(omq, db, {}));
  Instance empty_db = ParseDatabase("z1other(c2).");
  EXPECT_FALSE(OmqHolds(omq, empty_db, {}));
}

TEST(MultiHeadTest, SharedExistentialAcrossHeadAtoms) {
  // One null shared by three head atoms (m = 3 head atoms: the FG_m
  // boundary of Theorem 5.12 is about exactly these).
  TgdSet sigma = ParseTgds(R"(
    m3a(X) -> m3r(X, Y), m3s(Y, X), m3t(Y, Y).
  )");
  Instance db = ParseDatabase("m3a(k).");
  EXPECT_EQ(MaxHeadAtoms(sigma), 3);
  UCQ joined = ParseUcq("m3q() :- m3r(X, Y), m3s(Y, X), m3t(Y, Y).");
  EXPECT_TRUE(GuardedCertainlyHolds(db, sigma, joined, {}));
  // But the null is one object: asking for two *distinct* witnesses via a
  // non-symmetric pattern fails.
  UCQ split = ParseUcq("m3q2() :- m3r(X, Y), m3t(Y, Z), m3r(Z, W).");
  EXPECT_FALSE(GuardedCertainlyHolds(db, sigma, split, {}));
}

TEST(MultiHeadTest, ChaseSharesNullsWithinTrigger) {
  TgdSet sigma = ParseTgds("m4a(X) -> m4r(X, Y), m4s(Y).");
  Instance db = ParseDatabase("m4a(h).");
  ChaseResult chased = Chase(db, sigma);
  ASSERT_TRUE(chased.complete);
  // Exactly one null created, shared by both head atoms.
  Term null_term = Term::Null(0);
  int nulls_seen = 0;
  std::unordered_set<uint32_t> distinct;
  for (const Atom& atom : chased.instance.atoms()) {
    for (Term t : atom.args()) {
      if (t.IsNull()) {
        ++nulls_seen;
        distinct.insert(t.id());
      }
    }
  }
  (void)null_term;
  EXPECT_EQ(nulls_seen, 2);
  EXPECT_EQ(distinct.size(), 1u);
}

TEST(Arity4Test, WideGuardsStillTerminate) {
  TgdSet sigma = ParseTgds(R"(
    w4g(X, Y, Z, W) -> w4p(X, W).
    w4p(X, W) -> w4q(W, V).
    w4q(W, V) -> w4leaf(W).
  )");
  Instance db = ParseDatabase("w4g(a, b, c, d). w4g(d, c, b, a).");
  UCQ q = ParseUcq("w4ans(X) :- w4p(X, W), w4leaf(W).");
  auto answers = GuardedCertainAnswers(db, sigma, q);
  EXPECT_EQ(answers.size(), 2u);  // a and d
}

}  // namespace
}  // namespace gqe
