// Fork-isolated worker plumbing (base/subprocess): exit-code and
// signal-death classification, result/heartbeat pipes, setrlimit guard
// rails (CPU and address space), and putting down a SIGSTOP'd worker
// with SIGKILL — the primitives the serve supervisor's containment is
// built from.

#include <gtest/gtest.h>
#include <errno.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <new>
#include <string>
#include <thread>

#include "base/subprocess.h"

namespace gqe {
namespace {

/// Polls until the worker is reaped or `timeout_ms` passes. The timeout
/// turns a would-be hang into a test failure with the worker killed.
bool ReapWithin(WorkerProcess* worker, double timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    worker->DrainResult();
    worker->DrainHeartbeats();
    if (worker->Poll()) {
      worker->DrainResult();
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  worker->Kill(SIGKILL);
  return false;
}

TEST(SubprocessTest, ExitCodeAndResultRoundTrip) {
  WorkerProcess worker;
  std::string error;
  ASSERT_TRUE(WorkerProcess::Spawn(
      WorkerLimits{},
      [](int result_fd, int) {
        return WriteAllToFd(result_fd, "payload-bytes") ? 7 : 1;
      },
      &worker, &error))
      << error;
  ASSERT_TRUE(ReapWithin(&worker, 5000));
  EXPECT_TRUE(worker.exit_status().exited);
  EXPECT_EQ(worker.exit_status().exit_code, 7);
  EXPECT_EQ(worker.result_bytes(), "payload-bytes");
}

TEST(SubprocessTest, SignalDeathIsClassified) {
  WorkerProcess worker;
  std::string error;
  ASSERT_TRUE(WorkerProcess::Spawn(
      WorkerLimits{},
      [](int, int) {
        ::raise(SIGKILL);
        return 0;  // unreachable
      },
      &worker, &error))
      << error;
  ASSERT_TRUE(ReapWithin(&worker, 5000));
  EXPECT_FALSE(worker.exit_status().exited);
  EXPECT_TRUE(worker.exit_status().signaled);
  EXPECT_EQ(worker.exit_status().term_signal, SIGKILL);
}

// Sanitizer allocators abort (or return null) on allocation failure
// instead of throwing std::bad_alloc, so the contract this test observes
// does not exist under them. The production path is unaffected: a
// sanitized worker that hits RLIMIT_AS still *dies*, and supervisors
// classify the death; only the exact exit code differs.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GQE_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GQE_SANITIZED 1
#endif
#endif

TEST(SubprocessTest, AddressSpaceLimitMakesAllocationFail) {
#ifdef GQE_SANITIZED
  GTEST_SKIP() << "sanitizer allocators do not throw std::bad_alloc";
#endif
  WorkerLimits limits;
  limits.address_space_bytes = 64ull << 20;
  WorkerProcess worker;
  std::string error;
  ASSERT_TRUE(WorkerProcess::Spawn(
      limits,
      [](int, int) {
        try {
          // Far past the 64MB cap: must fail no matter what the process
          // image already mapped. Direct operator-new call — a paired
          // new[]/delete[] may be elided by the optimizer entirely.
          void* probe = ::operator new(256ull << 20);
          *static_cast<volatile char*>(probe) = 1;
          ::operator delete(probe);
          return 0;
        } catch (const std::bad_alloc&) {
          return 42;
        }
      },
      &worker, &error))
      << error;
  ASSERT_TRUE(ReapWithin(&worker, 5000));
  EXPECT_TRUE(worker.exit_status().exited);
  EXPECT_EQ(worker.exit_status().exit_code, 42);
}

TEST(SubprocessTest, CpuLimitDeliversSigxcpu) {
  WorkerLimits limits;
  limits.cpu_seconds = 1.0;
  WorkerProcess worker;
  std::string error;
  ASSERT_TRUE(WorkerProcess::Spawn(
      limits,
      [](int, int) {
        // Burn CPU until the kernel steps in.
        volatile uint64_t sink = 0;
        for (;;) sink = sink + 1;
        return 0;
      },
      &worker, &error))
      << error;
  // Soft limit 1s + 1s hard headroom; allow generous wall slack.
  ASSERT_TRUE(ReapWithin(&worker, 30000));
  ASSERT_TRUE(worker.exit_status().signaled);
  EXPECT_EQ(worker.exit_status().term_signal, SIGXCPU);
}

TEST(SubprocessTest, HeartbeatsFlowWhileAlive) {
  WorkerProcess worker;
  std::string error;
  ASSERT_TRUE(WorkerProcess::Spawn(
      WorkerLimits{},
      [](int, int heartbeat_fd) {
        HeartbeatWriter heartbeat(heartbeat_fd, 5.0);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return 0;
      },
      &worker, &error))
      << error;
  size_t beats = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline && !worker.Poll()) {
    beats += worker.DrainHeartbeats();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  beats += worker.DrainHeartbeats();
  EXPECT_GE(beats, 3u);
  EXPECT_TRUE(worker.exit_status().reaped);
}

TEST(SubprocessTest, SigkillReachesAStoppedWorker) {
  WorkerProcess worker;
  std::string error;
  ASSERT_TRUE(WorkerProcess::Spawn(
      WorkerLimits{},
      [](int, int) {
        ::raise(SIGSTOP);  // freeze: only SIGKILL/SIGCONT get through
        return 0;
      },
      &worker, &error))
      << error;
  // Give it a moment to reach the stop, then put it down the way the
  // supervisor's heartbeat timeout does.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(worker.Poll());
  worker.Kill(SIGKILL);
  ASSERT_TRUE(ReapWithin(&worker, 5000));
  EXPECT_TRUE(worker.exit_status().signaled);
  EXPECT_EQ(worker.exit_status().term_signal, SIGKILL);
}

TEST(SubprocessTest, WaitReapedCollectsAnExitingWorker) {
  WorkerProcess worker;
  std::string error;
  ASSERT_TRUE(WorkerProcess::Spawn(
      WorkerLimits{},
      [](int result_fd, int) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return WriteAllToFd(result_fd, "late-bytes") ? 0 : 1;
      },
      &worker, &error))
      << error;
  ASSERT_TRUE(worker.WaitReaped(5000.0));
  EXPECT_TRUE(worker.exit_status().reaped);
  EXPECT_EQ(worker.result_bytes(), "late-bytes");

  // A worker that will not die within the window: WaitReaped reports
  // failure instead of hanging, and SIGKILL + WaitReaped then collects
  // it — the put-down sequence the shard coordinator uses on stalls.
  WorkerProcess stubborn;
  ASSERT_TRUE(WorkerProcess::Spawn(
      WorkerLimits{},
      [](int, int) {
        std::this_thread::sleep_for(std::chrono::seconds(60));
        return 0;
      },
      &stubborn, &error))
      << error;
  EXPECT_FALSE(stubborn.WaitReaped(30.0));
  stubborn.Kill(SIGKILL);
  EXPECT_TRUE(stubborn.WaitReaped(5000.0));
  EXPECT_TRUE(stubborn.exit_status().signaled);
}

TEST(SubprocessTest, SupervisionChurnLeavesNoZombies) {
  // Dozens of workers with mixed fates — clean exit, signal death,
  // SIGKILL while running, destructor reap — and afterwards the test
  // process must have no waitable children at all: the WNOHANG reap
  // loop may never strand a zombie.
  std::string error;
  for (int i = 0; i < 12; ++i) {
    WorkerProcess clean;
    ASSERT_TRUE(WorkerProcess::Spawn(
        WorkerLimits{}, [](int, int) { return 0; }, &clean, &error))
        << error;
    ASSERT_TRUE(clean.WaitReaped(5000.0));

    WorkerProcess suicidal;
    ASSERT_TRUE(WorkerProcess::Spawn(
        WorkerLimits{},
        [](int, int) {
          ::raise(SIGTERM);
          return 0;
        },
        &suicidal, &error))
        << error;
    ASSERT_TRUE(suicidal.WaitReaped(5000.0));

    WorkerProcess murdered;
    ASSERT_TRUE(WorkerProcess::Spawn(
        WorkerLimits{},
        [](int, int) {
          std::this_thread::sleep_for(std::chrono::seconds(60));
          return 0;
        },
        &murdered, &error))
        << error;
    murdered.Kill(SIGKILL);
    ASSERT_TRUE(murdered.WaitReaped(5000.0));

    {
      WorkerProcess abandoned;
      ASSERT_TRUE(WorkerProcess::Spawn(
          WorkerLimits{},
          [](int, int) {
            std::this_thread::sleep_for(std::chrono::seconds(60));
            return 0;
          },
          &abandoned, &error))
          << error;
    }  // destructor path
  }
  errno = 0;
  const pid_t leftover = ::waitpid(-1, nullptr, WNOHANG);
  EXPECT_TRUE(leftover == 0 || (leftover == -1 && errno == ECHILD))
      << "zombie child survived churn (waitpid returned " << leftover << ")";
}

TEST(SubprocessTest, BackoffDelayIsDeterministicBoundedAndGrowing) {
  // Same (attempt, seed, stream) → same delay, replay-stable across
  // processes.
  EXPECT_EQ(BackoffDelayMs(2, 10.0, 1000.0, 7, 3),
            BackoffDelayMs(2, 10.0, 1000.0, 7, 3));
  // Jitter keeps every delay inside [0.5, 1.5) × the exponential step,
  // and the cap clamps the step itself.
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const double step =
        std::min(1000.0, 10.0 * static_cast<double>(1 << (attempt - 1)));
    for (uint64_t stream = 0; stream < 8; ++stream) {
      const double delay = BackoffDelayMs(attempt, 10.0, 1000.0, 1, stream);
      EXPECT_GE(delay, 0.5 * step);
      EXPECT_LT(delay, 1.5 * step);
    }
  }
  // Different streams decorrelate (thundering-herd protection): not all
  // equal.
  EXPECT_NE(BackoffDelayMs(3, 10.0, 1000.0, 1, 0),
            BackoffDelayMs(3, 10.0, 1000.0, 1, 1));
}

TEST(SubprocessTest, DestructorReapsARunningWorker) {
  pid_t pid = -1;
  {
    WorkerProcess worker;
    std::string error;
    ASSERT_TRUE(WorkerProcess::Spawn(
        WorkerLimits{},
        [](int, int) {
          std::this_thread::sleep_for(std::chrono::seconds(60));
          return 0;
        },
        &worker, &error))
        << error;
    pid = worker.pid();
    ASSERT_GT(pid, 0);
  }
  // The destructor SIGKILLed and reaped: the pid must be gone (kill(0)
  // probes existence; ESRCH means no such process).
  EXPECT_EQ(::kill(pid, 0), -1);
}

}  // namespace
}  // namespace gqe
