// Crash-safe checkpoint/resume tests (chase/checkpoint + the engine's
// round-boundary snapshots): kill-and-resume determinism — a chase
// tripped by the governor fault injector at checkpoints 1, 3, 7 (and
// deeper), resumed from disk, produces the bit-identical final instance
// an uninterrupted run produces, at 1 and 8 threads — plus corruption
// handling: flipped bytes and truncations are rejected by checksum with
// a distinct status and recovery falls back to the previous good
// generation (or a fresh run), never a crash or a silently wrong
// instance.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "base/serialize.h"
#include "chase/chase.h"
#include "chase/checkpoint.h"
#include "parser/parser.h"
#include "verify/verifier.h"
#include "verify/witness.h"

namespace gqe {
namespace {

/// University-style existential rules (labelled nulls) plus transitive
/// closure (several rounds of joins): nulls, levels and multi-round
/// delta frontiers are all in play.
TgdSet CkSigma() {
  return ParseTgds(R"(
    ckgrad(X) -> ckstud(X).
    ckstud(X) -> ckenr(X, U), ckuni(U).
    ckenr(X, U) -> ckactive(X).
    cke(X, Y), cke(Y, Z) -> cke(X, Z).
  )");
}

Instance CkDb() {
  Instance db;
  for (int i = 0; i < 6; ++i) {
    db.Insert(
        Atom::Make("ckgrad", {Term::Constant("cks" + std::to_string(i))}));
  }
  for (int i = 0; i < 24; ++i) {
    db.Insert(Atom::Make("cke",
                         {Term::Constant("cka" + std::to_string(i)),
                          Term::Constant("cka" + std::to_string(i + 1))}));
  }
  return db;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "gqe_ckpt_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Bit-identical: same facts in the same insertion order (terms compared
/// by their 32-bit representation, so labelled-null ids count), same
/// levels, same completion.
void ExpectBitIdentical(const ChaseResult& got, const ChaseResult& want,
                        const std::string& label) {
  ASSERT_EQ(got.instance.size(), want.instance.size()) << label;
  for (size_t i = 0; i < want.instance.size(); ++i) {
    ASSERT_EQ(got.instance.atom(i), want.instance.atom(i))
        << label << " fact " << i;
  }
  EXPECT_EQ(got.levels, want.levels) << label;
  EXPECT_EQ(got.complete, want.complete) << label;
  EXPECT_EQ(got.max_level_built, want.max_level_built) << label;
}

/// In-memory sink recording every delivered boundary.
struct CollectingSink : ChaseCheckpointSink {
  std::vector<ChaseCheckpointState> states;
  void Write(const ChaseCheckpointState& state, bool) override {
    states.push_back(state);
  }
};

TEST(CheckpointTest, ResumeFromEveryBoundaryIsBitIdentical) {
  Instance db = CkDb();
  TgdSet sigma = CkSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  CollectingSink sink;
  ChaseOptions options;
  options.checkpoint_sink = &sink;
  ChaseResult reference = Chase(db, sigma, options);
  ASSERT_TRUE(reference.complete);
  ASSERT_GE(sink.states.size(), 3u);
  EXPECT_TRUE(sink.states.back().complete);

  for (size_t i = 0; i < sink.states.size(); ++i) {
    // Clobber the null counter: resume must restore it from the state.
    Term::SetNextNullId(null_base + 1000);
    ChaseResult resumed = ResumeChaseFromState(sink.states[i], sigma);
    ExpectBitIdentical(resumed, reference,
                       "boundary " + std::to_string(i));
    EXPECT_EQ(resumed.rounds_completed, reference.rounds_completed);
  }
  Term::SetNextNullId(null_base);
}

TEST(CheckpointTest, KillAtInjectedCheckpointResumeFromDisk) {
  Instance db = CkDb();
  TgdSet sigma = CkSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseResult reference = Chase(db, sigma);
  ASSERT_TRUE(reference.complete);

  for (uint64_t at : {1u, 3u, 7u, 40u, 400u}) {
    for (int threads : {1, 8}) {
      const std::string label =
          "at=" + std::to_string(at) + " threads=" + std::to_string(threads);
      const std::string dir =
          FreshDir("kill_" + std::to_string(at) + "_" +
                   std::to_string(threads));

      // The "crash": a run whose governor trips kCancelled at a fixed
      // logical checkpoint. Only the snapshots it wrote survive.
      Term::SetNextNullId(null_base);
      TestFaultInjector injector(Status::kCancelled, at);
      ExecutionBudget budget;
      budget.max_facts = 0;
      Governor governor(budget, &injector);
      ChaseOptions killed_options;
      killed_options.threads = threads;
      killed_options.governor = &governor;
      ResumeInfo killed_info;
      ChaseResult killed =
          ResumeChase(dir, db, sigma, killed_options, &killed_info);
      ASSERT_EQ(killed.outcome.status, Status::kCancelled) << label;
      ASSERT_FALSE(killed.complete) << label;

      // The recovery: a fresh entry through ResumeChase, null counter
      // deliberately clobbered — the snapshot must restore it.
      Term::SetNextNullId(null_base + 5000);
      ChaseOptions resume_options;
      resume_options.threads = threads;
      ResumeInfo info;
      ChaseResult resumed = ResumeChase(dir, db, sigma, resume_options, &info);
      EXPECT_TRUE(info.resumed) << label;
      ASSERT_TRUE(resumed.complete) << label;
      ExpectBitIdentical(resumed, reference, label);

      std::filesystem::remove_all(dir);
    }
  }
  Term::SetNextNullId(null_base);
}

TEST(CheckpointTest, CompleteSnapshotShortCircuits) {
  Instance db = CkDb();
  TgdSet sigma = CkSigma();
  const uint32_t null_base = Term::NextNullId();
  const std::string dir = FreshDir("complete");

  Term::SetNextNullId(null_base);
  ResumeInfo first_info;
  ChaseResult first = ResumeChase(dir, db, sigma, {}, &first_info);
  ASSERT_TRUE(first.complete);
  EXPECT_FALSE(first_info.resumed);

  Term::SetNextNullId(null_base + 1234);
  ResumeInfo second_info;
  ChaseResult second = ResumeChase(dir, db, sigma, {}, &second_info);
  EXPECT_TRUE(second_info.resumed);
  EXPECT_TRUE(second_info.resumed_complete);
  ExpectBitIdentical(second, first, "complete-snapshot reuse");

  std::filesystem::remove_all(dir);
  Term::SetNextNullId(null_base);
}

TEST(CheckpointTest, CorruptionIsRejectedWithDistinctStatus) {
  Instance db = CkDb();
  TgdSet sigma = CkSigma();
  const uint32_t null_base = Term::NextNullId();
  const std::string dir = FreshDir("corrupt");

  Term::SetNextNullId(null_base);
  ChaseResult reference = ResumeChase(dir, db, sigma);
  ASSERT_TRUE(reference.complete);

  CheckpointDir checkpoints(dir);
  std::vector<uint64_t> generations = checkpoints.Generations();
  ASSERT_GE(generations.size(), 2u);
  const std::string newest = checkpoints.GenerationPath(generations.back());

  // Flip one payload byte in the newest snapshot.
  std::string bytes;
  ASSERT_TRUE(ReadFileBytes(newest, &bytes).ok());
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteFileAtomic(newest, flipped).ok());

  // The corruption is diagnosed as exactly a checksum mismatch...
  std::string_view payload;
  EXPECT_EQ(UnwrapSnapshot(flipped, kSnapshotKindChase, &payload).error,
            SnapshotError::kChecksumMismatch);

  // ...and recovery silently falls back to the previous good generation,
  // still reproducing the bit-identical final instance.
  ChaseCheckpointState state;
  uint32_t fingerprint = 0;
  uint64_t generation = 0;
  int skipped = 0;
  ASSERT_TRUE(checkpoints
                  .LoadLatest(&state, &fingerprint, &generation, &skipped)
                  .ok());
  EXPECT_EQ(skipped, 1);
  EXPECT_EQ(generation, generations[generations.size() - 2]);

  Term::SetNextNullId(null_base + 777);
  ResumeInfo info;
  ChaseResult resumed = ResumeChase(dir, db, sigma, {}, &info);
  EXPECT_TRUE(info.resumed);
  EXPECT_EQ(info.skipped_generations, 1);
  ExpectBitIdentical(resumed, reference, "fallback after bit flip");

  // Truncate the (rewritten) newest generation mid-payload: kTruncated,
  // same fallback.
  generations = checkpoints.Generations();
  const std::string newest2 = checkpoints.GenerationPath(generations.back());
  ASSERT_TRUE(ReadFileBytes(newest2, &bytes).ok());
  ASSERT_TRUE(WriteFileAtomic(newest2, bytes.substr(0, bytes.size() / 2))
                  .ok());
  EXPECT_EQ(UnwrapSnapshot(bytes.substr(0, bytes.size() / 2),
                           kSnapshotKindChase, &payload)
                .error,
            SnapshotError::kTruncated);
  Term::SetNextNullId(null_base + 778);
  ChaseResult after_truncation = ResumeChase(dir, db, sigma, {}, &info);
  EXPECT_TRUE(info.resumed);
  ExpectBitIdentical(after_truncation, reference, "fallback after truncation");

  // Corrupt every generation: the load fails (with the last distinct
  // reason), ResumeChase starts fresh and the output is still right.
  for (uint64_t g : checkpoints.Generations()) {
    const std::string path = checkpoints.GenerationPath(g);
    ASSERT_TRUE(ReadFileBytes(path, &bytes).ok());
    bytes[bytes.size() - 1] ^= 0xFF;
    ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
  }
  Term::SetNextNullId(null_base);
  ChaseResult fresh = ResumeChase(dir, db, sigma, {}, &info);
  EXPECT_FALSE(info.resumed);
  EXPECT_EQ(info.load_status.error, SnapshotError::kChecksumMismatch);
  ExpectBitIdentical(fresh, reference, "fresh run after total corruption");

  std::filesystem::remove_all(dir);
  Term::SetNextNullId(null_base);
}

TEST(CheckpointTest, ForeignWorkloadIsNotResumed) {
  Instance db = CkDb();
  TgdSet sigma = CkSigma();
  const uint32_t null_base = Term::NextNullId();
  const std::string dir = FreshDir("foreign");

  Term::SetNextNullId(null_base);
  ChaseResult first = ResumeChase(dir, db, sigma);
  ASSERT_TRUE(first.complete);

  // Same directory, different rule set: the fingerprint mismatch is
  // reported and the run starts fresh instead of continuing foreign
  // state.
  TgdSet other = ParseTgds("ckgrad(X) -> ckother(X).");
  Term::SetNextNullId(null_base);
  ResumeInfo info;
  ChaseResult fresh = ResumeChase(dir, db, other, {}, &info);
  EXPECT_FALSE(info.resumed);
  EXPECT_EQ(info.load_status.error, SnapshotError::kFormatError);
  EXPECT_TRUE(fresh.complete);

  std::filesystem::remove_all(dir);
  Term::SetNextNullId(null_base);
}

TEST(CheckpointTest, WitnessLogSurvivesResumeBitIdentically) {
  // Certified answers (ISSUE 5): a witness-collecting chase killed at a
  // checkpoint and resumed from disk reproduces the *same replayable
  // derivation log* as an uninterrupted run — bit-identical steps, same
  // labelled nulls — at 1 and 8 threads, and the independent checker
  // replays it back to the chase instance.
  Instance db = CkDb();
  TgdSet sigma = CkSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  ChaseOptions reference_options;
  reference_options.collect_witness = true;
  ChaseResult reference = Chase(db, sigma, reference_options);
  ASSERT_TRUE(reference.complete);
  ASSERT_TRUE(reference.derivation.collected);
  ASSERT_TRUE(reference.derivation.replay_exact);
  ASSERT_FALSE(reference.derivation.steps.empty());

  for (uint64_t at : {3u, 40u}) {
    for (int threads : {1, 8}) {
      const std::string label =
          "at=" + std::to_string(at) + " threads=" + std::to_string(threads);
      const std::string dir =
          FreshDir("witness_" + std::to_string(at) + "_" +
                   std::to_string(threads));

      Term::SetNextNullId(null_base);
      TestFaultInjector injector(Status::kCancelled, at);
      ExecutionBudget budget;
      budget.max_facts = 0;
      Governor governor(budget, &injector);
      ChaseOptions killed_options;
      killed_options.threads = threads;
      killed_options.collect_witness = true;
      killed_options.governor = &governor;
      ResumeInfo killed_info;
      ChaseResult killed =
          ResumeChase(dir, db, sigma, killed_options, &killed_info);
      ASSERT_FALSE(killed.complete) << label;

      // Resume with a clobbered null counter: the snapshot restores it
      // along with the fired-trigger and null logs.
      Term::SetNextNullId(null_base + 9000);
      ChaseOptions resume_options;
      resume_options.threads = threads;
      resume_options.collect_witness = true;
      ResumeInfo info;
      ChaseResult resumed = ResumeChase(dir, db, sigma, resume_options, &info);
      EXPECT_TRUE(info.resumed) << label;
      ASSERT_TRUE(resumed.complete) << label;
      ASSERT_TRUE(resumed.derivation.collected) << label;
      EXPECT_TRUE(resumed.derivation == reference.derivation) << label;

      Instance replayed;
      VerifyResult check =
          VerifyDerivation(db, sigma, resumed.derivation, &replayed);
      EXPECT_TRUE(check.ok()) << label << ": " << check.reason;
      ASSERT_EQ(replayed.size(), resumed.instance.size()) << label;
      for (size_t i = 0; i < replayed.size(); ++i) {
        ASSERT_EQ(replayed.atom(i), resumed.instance.atom(i))
            << label << " fact " << i;
      }

      std::filesystem::remove_all(dir);
    }
  }
  Term::SetNextNullId(null_base);
}

TEST(CheckpointTest, WitnessFieldsRoundTripThroughSnapshot) {
  // The PR-3 snapshot codec carries the witness half of the state —
  // fired-trigger null draws and the collected flag — field-for-field.
  Instance db = CkDb();
  TgdSet sigma = CkSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  CollectingSink sink;
  ChaseOptions options;
  options.collect_witness = true;
  options.checkpoint_sink = &sink;
  ChaseResult run = Chase(db, sigma, options);
  ASSERT_TRUE(run.complete);
  ASSERT_FALSE(sink.states.empty());

  const ChaseCheckpointState& state = sink.states.back();
  ASSERT_TRUE(state.witness_collected);
  ASSERT_EQ(state.fired_nulls.size(), state.fired.size());

  const std::string payload = EncodeChaseSnapshot(state, 0xBEEF);
  ChaseCheckpointState decoded;
  uint32_t fingerprint = 0;
  ASSERT_TRUE(DecodeChaseSnapshot(payload, &decoded, &fingerprint).ok());
  EXPECT_TRUE(decoded.witness_collected);
  EXPECT_EQ(decoded.fired, state.fired);
  EXPECT_EQ(decoded.fired_nulls, state.fired_nulls);

  Term::SetNextNullId(null_base);
}

TEST(CheckpointTest, ChaseSnapshotPayloadRoundTrips) {
  Instance db = CkDb();
  TgdSet sigma = CkSigma();
  const uint32_t null_base = Term::NextNullId();

  Term::SetNextNullId(null_base);
  CollectingSink sink;
  ChaseOptions options;
  options.checkpoint_sink = &sink;
  ChaseResult run = Chase(db, sigma, options);
  ASSERT_TRUE(run.complete);
  ASSERT_FALSE(sink.states.empty());

  const ChaseCheckpointState& state = sink.states[sink.states.size() / 2];
  const std::string payload = EncodeChaseSnapshot(state, 0xC0FFEE);
  ChaseCheckpointState decoded;
  uint32_t fingerprint = 0;
  ASSERT_TRUE(DecodeChaseSnapshot(payload, &decoded, &fingerprint).ok());
  EXPECT_EQ(fingerprint, 0xC0FFEEu);
  // Equal states re-encode to equal bytes (deterministic encoding).
  EXPECT_EQ(EncodeChaseSnapshot(decoded, 0xC0FFEE), payload);

  // A decode of mangled payload bytes reports kFormatError (the envelope
  // checksum normally catches this first; the decoder must still never
  // crash or fabricate state).
  std::string mangled = payload;
  mangled.resize(mangled.size() / 3);
  EXPECT_FALSE(DecodeChaseSnapshot(mangled, &decoded, &fingerprint).ok());

  Term::SetNextNullId(null_base);
}

}  // namespace
}  // namespace gqe
