// The W[1]-hardness machinery in action: the fpt-reduction from p-Clique
// to (constraint-)query evaluation (Sections 6-7). Builds the paper's
// variant D* of Grohe's database for a 3x3 grid query and shows that the
// query holds on D* exactly when the graph has a 3-clique.

#include <cstdio>

#include "grohe/clique.h"
#include "grohe/reduction.h"
#include "workload/generators.h"
#include "workload/report.h"

int main() {
  const int k = 3;
  gqe::CliqueReduction reduction =
      gqe::MakeGridCliqueReduction(k, 3, 3, "eh", "ev");
  std::printf("query p: Boolean 3x3 grid CQ, %zu atoms, treewidth %d\n",
              reduction.query.atoms().size(),
              reduction.query.TreewidthOfExistentialPart());

  gqe::ReportTable table(
      {"graph", "vertices", "edges", "3-clique?", "D* atoms", "D* |= q?"});
  struct Case {
    const char* name;
    gqe::Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"C6 (triangle-free)", gqe::Graph::Cycle(6)});
  cases.push_back({"K4", gqe::Graph::Clique(4)});
  cases.push_back({"random n=7 p=0.3", gqe::RandomGraph(7, 30, 11)});
  cases.push_back({"random n=7 p=0.6", gqe::RandomGraph(7, 60, 12)});
  cases.push_back({"planted clique n=8", gqe::PlantedCliqueGraph(8, 20, 3, 5)});

  for (const Case& c : cases) {
    const bool has_clique = gqe::HasClique(c.graph, k);
    gqe::ReductionOutcome outcome =
        gqe::RunVariantReduction(c.graph, reduction);
    table.AddRow({c.name, gqe::ReportTable::Cell(c.graph.num_vertices()),
                  gqe::ReportTable::Cell(c.graph.num_edges()),
                  gqe::ReportTable::Cell(has_clique),
                  gqe::ReportTable::Cell(outcome.dstar_atoms),
                  gqe::ReportTable::Cell(outcome.query_holds)});
    if (has_clique != outcome.query_holds) {
      std::fprintf(stderr, "REDUCTION BROKEN on %s\n", c.name);
      return 1;
    }
  }
  table.Print("p-Clique -> evaluation via D*(G, D[p], D[p'], X) [Thm 7.1]");
  std::printf("\nEvery row satisfies: G has a %d-clique  iff  D* |= p.\n", k);
  return 0;
}
