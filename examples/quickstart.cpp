// Quickstart: parse a program, evaluate an ontology-mediated query
// (open world) and the same specification as a constraint-query pair
// (closed world).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "cqs/cqs.h"
#include "cqs/evaluation.h"
#include "omq/evaluation.h"
#include "omq/omq.h"
#include "parser/parser.h"

int main() {
  gqe::ParseResult parsed = gqe::ParseProgram(R"(
    % ---- data ------------------------------------------------------
    employee(ada).  employee(grace).
    manages(ada, grace).
    worksin(grace, compilers).  dept(compilers).

    % ---- rules (guarded TGDs) ---------------------------------------
    employee(X) -> worksin(X, D), dept(D).
    worksin(X, D) -> dept(D).

    % ---- query -------------------------------------------------------
    q(X) :- worksin(X, D), dept(D).
  )");
  if (!parsed.ok) {
    std::fprintf(stderr, "parse error at line %d: %s\n", parsed.error_line,
                 parsed.error.c_str());
    return 1;
  }
  const gqe::Program& program = parsed.program;
  const gqe::UCQ& query = program.queries.at("q");

  // Open world: the rules derive departments for every employee.
  gqe::Omq omq = gqe::Omq::WithFullDataSchema(program.tgds, query);
  gqe::OmqEvalResult open = gqe::EvaluateOmq(omq, program.database);
  std::printf("open-world certain answers (%s):\n", open.method.c_str());
  for (const auto& tuple : open.answers) {
    std::printf("  q(%s)\n", tuple[0].ToString().c_str());
  }

  // Closed world: the rules are integrity constraints; only grace has a
  // recorded department, so the promise D |= Sigma fails for ada.
  gqe::Cqs cqs{program.tgds, query};
  gqe::CqsEvalResult closed =
      gqe::EvaluateCqs(cqs, program.database, /*check_promise=*/true);
  if (!closed.promise_ok) {
    std::printf("closed world: database violates the constraints "
                "(ada has no department on record)\n");
  }
  closed = gqe::EvaluateCqs(cqs, program.database);
  std::printf("closed-world answers:\n");
  for (const auto& tuple : closed.answers) {
    std::printf("  q(%s)\n", tuple[0].ToString().c_str());
  }
  return 0;
}
