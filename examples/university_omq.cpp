// A university-domain ontology-mediated querying scenario: the kind of
// workload the paper's introduction motivates. A guarded ontology
// enriches incomplete enrollment data; certain answers are computed over
// the (infinite) guarded chase via the type-based portion construction.

#include <cstdio>

#include "guarded/type_closure.h"
#include "omq/evaluation.h"
#include "omq/omq.h"
#include "parser/parser.h"

int main() {
  gqe::ParseResult parsed = gqe::ParseProgram(R"(
    % ------- data: partial records --------------------------------
    undergrad(uma). undergrad(ned).
    grad(gil).
    advises(prof_ada, gil).
    teaches(prof_ada, logic101).

    % ------- guarded ontology ---------------------------------------
    undergrad(X) -> student(X).
    grad(X)      -> student(X).
    student(X)   -> enrolled(X, U), university(U).
    advises(P, S) -> professor(P), grad(S).
    teaches(P, C) -> professor(P), course(C).
    professor(P) -> memberof(P, D), dept(D).
    % every grad student has *some* advisor (existential):
    grad(S) -> advises(Q, S), professor(Q).

    % ------- queries ---------------------------------------------------
    students(X)  :- student(X).
    enrolledq(X) :- enrolled(X, U).
    advised(S)   :- advises(P, S), professor(P).
    profdept(P)  :- memberof(P, D), dept(D).
  )");
  if (!parsed.ok) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 1;
  }
  const gqe::Program& program = parsed.program;
  std::printf("ontology: %zu guarded TGDs, database: %zu facts\n",
              program.tgds.size(), program.database.size());
  if (!gqe::IsGuardedSet(program.tgds)) {
    std::fprintf(stderr, "expected a guarded ontology\n");
    return 1;
  }

  for (const auto& [name, query] : program.queries) {
    gqe::Omq omq = gqe::Omq::WithFullDataSchema(program.tgds, query);
    gqe::OmqEvalResult result = gqe::EvaluateOmq(omq, program.database);
    std::printf("\n%s — %zu certain answer(s) [%s]:\n", name.c_str(),
                result.answers.size(), result.method.c_str());
    for (const auto& tuple : result.answers) {
      std::printf("  %s(", name.c_str());
      for (size_t i = 0; i < tuple.size(); ++i) {
        std::printf("%s%s", i ? ", " : "", tuple[i].ToString().c_str());
      }
      std::printf(")\n");
    }
  }

  std::printf("\nNote: enrolledq returns every student even though the "
              "data records no enrollment at all —\nthe ontology "
              "guarantees an anonymous university for each (open-world "
              "reasoning).\n");
  return 0;
}
