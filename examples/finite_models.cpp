// Finite controllability in action (Theorem 6.7 / Definition 6.5): a
// guarded ontology with an *infinite* chase still admits small finite
// models that agree with the chase on every query of bounded size — the
// property the paper's open-to-closed-world reduction (Prop. 5.8) builds
// on. This example constructs the witnesses and probes them with the
// cycle queries they must (and must not) satisfy.

#include <cstdio>

#include "fc/witness.h"
#include "guarded/omq_eval.h"
#include "parser/parser.h"
#include "query/evaluation.h"
#include "workload/report.h"

int main() {
  gqe::TgdSet sigma = gqe::ParseTgds(R"(
    person(X) -> parent(X, Y), person(Y).
  )");
  gqe::Instance db = gqe::ParseDatabase("person(mira).");
  std::printf("ontology: every person has a parent (chase is infinite)\n\n");

  gqe::ReportTable table({"n", "model facts", "folds",
                          "cycle-(n+1) in model?", "path-n agrees"});
  for (int n = 1; n <= 4; ++n) {
    gqe::FiniteWitness witness = gqe::BuildFiniteWitness(db, sigma, n);
    if (!witness.is_model) {
      std::printf("n=%d: witness construction failed validation\n", n);
      continue;
    }
    // The fold closes a parent-cycle of length > n: a cycle query with
    // n+1 edges can see it, one with <= n variables cannot.
    std::vector<gqe::Atom> cycle;
    for (int i = 0; i <= n; ++i) {
      cycle.push_back(gqe::Atom::Make(
          "parent",
          {gqe::Term::Variable("c" + std::to_string(i)),
           gqe::Term::Variable("c" + std::to_string((i + 1) % (n + 1)))}));
    }
    gqe::CQ cycle_query({}, cycle);
    bool cycle_visible = gqe::HoldsBooleanCQ(cycle_query, witness.model);

    gqe::UCQ path_query = gqe::ParseUcq(
        "pq" + std::to_string(n) + "() :- parent(X, Y), parent(Y, Z).");
    bool agrees =
        gqe::WitnessAgreesOnQuery(witness, db, sigma, path_query);
    table.AddRow({gqe::ReportTable::Cell(n),
                  gqe::ReportTable::Cell(witness.model.size()),
                  gqe::ReportTable::Cell(witness.folds),
                  gqe::ReportTable::Cell(cycle_visible),
                  gqe::ReportTable::Cell(agrees)});
  }
  table.Print("Finite witnesses M(D, Sigma, n): cycles hide beyond n");
  std::printf(
      "\nThe witness for parameter n folds the infinite ancestor chain into\n"
      "a cycle longer than n — queries with at most n variables cannot tell\n"
      "it from the real (infinite) chase, which is exactly Definition 6.5.\n");
  return 0;
}
