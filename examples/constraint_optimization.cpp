// Constraint-aware query optimization — the paper's Example 4.4 put to
// work. A treewidth-2 cyclic query is, *under the integrity constraint
// R2 ⊆ R4*, equivalent to a treewidth-1 query; the rewriting found by the
// meta-problem procedure evaluates dramatically faster on databases that
// honor the constraint.

#include <cstdio>

#include "approx/meta.h"
#include "chase/chase.h"
#include "cqs/cqs.h"
#include "parser/parser.h"
#include "query/evaluation.h"
#include "query/tw_evaluation.h"
#include "workload/generators.h"
#include "workload/report.h"

int main() {
  gqe::Cqs cqs;
  cqs.sigma = gqe::ParseTgds("r2(X) -> r4(X).");
  cqs.query = gqe::ParseUcq(R"(
    q() :- p(X2, X1), p(X4, X1), p(X2, X3), p(X4, X3),
           r1(X1), r2(X2), r3(X3), r4(X4).
  )");

  std::printf("query treewidth (existential part): %d\n",
              cqs.query.TreewidthOfExistentialPart());

  gqe::MetaResult meta = gqe::DecideUniformUcqkEquivalenceCqs(cqs, 1);
  std::printf("uniformly UCQ_1-equivalent under Sigma: %s\n",
              meta.equivalent ? "YES" : "no");
  if (!meta.equivalent) return 1;
  std::printf("rewriting (%zu disjunct(s), treewidth %d):\n",
              meta.rewriting.num_disjuncts(),
              meta.rewriting.TreewidthOfExistentialPart());
  std::printf("  %s\n", meta.rewriting.ToString().c_str());

  // Benchmark both forms on growing databases that satisfy the
  // constraint. The original 4-cycle join degrades; the rewriting stays
  // near-linear.
  gqe::ReportTable table({"domain", "facts", "original_ms", "rewritten_ms"});
  for (int n : {40, 80, 160}) {
    gqe::WorkloadRng rng(n);
    gqe::Instance db;
    auto constant = [](int i) {
      return gqe::Term::Constant("c" + std::to_string(i));
    };
    for (int i = 0; i < 8 * n; ++i) {
      db.Insert(gqe::Atom::Make(
          "p", {constant(rng.Below(n)), constant(rng.Below(n))}));
    }
    for (int i = 0; i < n; ++i) {
      if (rng.Chance(50)) db.Insert(gqe::Atom::Make("r1", {constant(i)}));
      if (rng.Chance(50)) {
        db.Insert(gqe::Atom::Make("r2", {constant(i)}));
        db.Insert(gqe::Atom::Make("r4", {constant(i)}));  // honor R2 ⊆ R4
      }
      if (rng.Chance(50)) db.Insert(gqe::Atom::Make("r3", {constant(i)}));
      if (rng.Chance(25)) db.Insert(gqe::Atom::Make("r4", {constant(i)}));
    }
    if (!gqe::Satisfies(db, cqs.sigma)) {
      std::fprintf(stderr, "generator bug: constraint violated\n");
      return 1;
    }
    // Use the guaranteed (Prop. 2.1 tree-DP) algorithms: their cost
    // tracks the treewidth, which is exactly what the rewriting lowers.
    gqe::Stopwatch w1;
    bool original = gqe::HoldsBooleanUcqTreeDp(cqs.query, db);
    double t1 = w1.ElapsedMs();
    gqe::Stopwatch w2;
    bool rewritten = gqe::HoldsBooleanUcqTreeDp(meta.rewriting, db);
    double t2 = w2.ElapsedMs();
    if (original != rewritten) {
      std::fprintf(stderr, "MISMATCH: rewriting is not equivalent!\n");
      return 1;
    }
    table.AddRow({gqe::ReportTable::Cell(n), gqe::ReportTable::Cell(db.size()),
                  gqe::ReportTable::Cell(t1), gqe::ReportTable::Cell(t2)});
  }
  table.Print("Example 4.4: original (tw 2) vs constraint-aware rewriting (tw 1)");
  return 0;
}
