// gqe_net_client: client and socket-level chaos harness for the
// gqe_serve network mode (--listen). Two jobs:
//
//  1. Normal mode: send manifest request lines over one or more
//     connections and print each received "result:" line to stdout in
//     the original request order — byte-comparable against the batch
//     gqe_serve run of the same lines (scripts/serve_net_smoke.sh diffs
//     exactly this).
//
//       gqe_net_client --port 7411 --requests-file reqs.txt
//           --connections 4 --bytes-per-write 1
//
//  2. Fault mode (--fault NAME): open a connection, perform one
//     deliberate protocol violation, and classify the server's
//     reaction. Exit 0 iff the server answered with a structured error
//     frame or a clean close — never a hang (exit 3) or an unexpected
//     byte stream (exit 1). The smoke script runs the whole matrix and
//     then proves the server still answers clean requests.
//
//     Faults: midframe-disconnect truncate bitflip oversize bad-magic
//             bad-version unknown-type stalled-read flood-conns
//             flood-requests ping
//
// All randomness (bit positions, truncation points) derives from
// --seed via splitmix64, so every chaos run is reproducible.

#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "base/subprocess.h"
#include "net/client.h"
#include "net/frame.h"

namespace {

using gqe::Frame;
using gqe::FrameType;
using gqe::NetClient;

constexpr int kExitOk = 0;
constexpr int kExitUnexpected = 1;
constexpr int kExitUsage = 2;
constexpr int kExitHang = 3;

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  std::vector<std::string> requests;
  std::string fault;
  int connections = 1;
  size_t bytes_per_write = 0;  // 0 = single write
  int write_delay_us = 0;
  int timeout_ms = 15000;
  uint64_t seed = 1;
  int count = 0;  // fault repetitions / flood size (0 = fault default)
  // Ride out daemon restarts: on a lost connection, reconnect with
  // backoff and resend every still-unanswered request, for up to this
  // much wall clock. 0 = off (any socket failure is fatal, as before).
  int retry_deadline_ms = 0;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port PORT [options]\n"
      "  --host ADDR           server address (default 127.0.0.1)\n"
      "  --request LINE        one manifest request line (repeatable)\n"
      "  --requests-file PATH  request lines, one per line\n"
      "  --connections N       spread requests round-robin over N conns\n"
      "  --bytes-per-write N   chunk every send into N-byte writes\n"
      "  --write-delay-us N    sleep between chunked writes\n"
      "  --timeout-ms N        per-receive deadline (default 15000)\n"
      "  --retry-deadline-ms N reconnect with backoff and resend unanswered\n"
      "                        requests on connection loss, for up to N ms\n"
      "                        (rides out a daemon crash + restart; 0 = off)\n"
      "  --fault NAME          run one chaos fault instead of requests\n"
      "  --count N             fault repetitions / flood size\n"
      "  --seed N              chaos PRNG seed (default 1)\n",
      argv0);
  return kExitUsage;
}

bool SendBytes(NetClient* client, const Options& options,
               const std::string& bytes) {
  if (options.bytes_per_write > 0) {
    return client->SendRawChunked(bytes, options.bytes_per_write,
                                  options.write_delay_us);
  }
  return client->SendRaw(bytes);
}

double NowMs() {
  struct timespec ts = {};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1000.0 + ts.tv_nsec / 1e6;
}

/// Retry mode (--retry-deadline-ms): drain each connection's share of
/// the requests sequentially, and treat a lost connection as a daemon
/// restart in progress — reconnect with backoff and resend every
/// request that has not been answered yet, in the original order. The
/// request ids make the resends idempotent: a journaled daemon replays
/// completed results byte-identically and reattaches to in-flight ones,
/// so the final stdout matches an uninterrupted run exactly.
int RunRequestsWithRetry(const Options& options) {
  const size_t n_conns =
      options.connections < 1 ? 1 : static_cast<size_t>(options.connections);
  std::vector<std::vector<size_t>> conn_order(n_conns);
  for (size_t i = 0; i < options.requests.size(); ++i) {
    conn_order[i % n_conns].push_back(i);
  }
  // Connections drain sequentially and each one answers FIFO, so slot
  // order IS output order: every response can stream to stdout the
  // moment it arrives (the crash smoke watches this to time its kill)
  // without changing the final bytes.
  bool failed = false;
  const double start_ms = NowMs();
  std::string error;
  for (size_t c = 0; c < n_conns; ++c) {
    const std::vector<size_t>& slots = conn_order[c];
    NetClient client;
    size_t answered = 0;
    bool connected = false;
    while (answered < slots.size()) {
      if (!connected) {
        const int remaining = options.retry_deadline_ms -
                              static_cast<int>(NowMs() - start_ms);
        if (remaining <= 0) {
          std::fprintf(stderr, "gqe_net_client: retry deadline exceeded\n");
          return kExitHang;
        }
        if (!client.ConnectWithRetry(options.host, options.port, remaining,
                                     &error, options.seed + c)) {
          std::fprintf(stderr, "gqe_net_client: connect: %s\n", error.c_str());
          return kExitHang;
        }
        // Resend the unanswered tail, FIFO. No ShutdownWrite: the server
        // answers per frame and this fd may need resends later.
        bool sent = true;
        for (size_t k = answered; k < slots.size() && sent; ++k) {
          sent = SendBytes(&client, options,
                           gqe::EncodeFrame(FrameType::kRequest,
                                            options.requests[slots[k]]));
        }
        if (!sent) {  // raced another crash; back off and reconnect
          client.Close();
          continue;
        }
        connected = true;
      }
      Frame frame;
      switch (client.RecvFrame(&frame, options.timeout_ms, &error)) {
        case NetClient::RecvResult::kFrame:
          break;
        case NetClient::RecvResult::kTimeout:
          std::fprintf(stderr, "gqe_net_client: timed out (request %zu)\n",
                       slots[answered]);
          return kExitHang;
        default:
          // Close, reset or mid-frame EOF: the daemon died under us.
          client.Close();
          connected = false;
          continue;
      }
      if (frame.type == FrameType::kResult) {
        std::fputs(frame.payload.c_str(), stdout);
      } else if (frame.type == FrameType::kError) {
        std::string code, detail;
        gqe::SplitErrorPayload(frame.payload, &code, &detail);
        std::fprintf(stdout, "error: %s %s\n", code.c_str(), detail.c_str());
        failed = true;
      } else {
        std::fprintf(stderr, "gqe_net_client: unexpected %s frame\n",
                     gqe::FrameTypeName(frame.type));
        return kExitUnexpected;
      }
      std::fflush(stdout);
      ++answered;
    }
  }
  return failed ? kExitUnexpected : kExitOk;
}

/// Normal mode: pipeline requests over N connections, then collect each
/// connection's responses (the server guarantees per-connection FIFO
/// order) and print them in the original request order.
int RunRequests(const Options& options) {
  const size_t n_conns =
      options.connections < 1 ? 1 : static_cast<size_t>(options.connections);
  std::vector<NetClient> clients(n_conns);
  std::string error;
  for (size_t c = 0; c < n_conns; ++c) {
    if (!clients[c].Connect(options.host, options.port, options.timeout_ms,
                            &error)) {
      std::fprintf(stderr, "gqe_net_client: connect: %s\n", error.c_str());
      return kExitUnexpected;
    }
  }
  // conn_order[c] lists the original indexes routed to connection c.
  std::vector<std::vector<size_t>> conn_order(n_conns);
  for (size_t i = 0; i < options.requests.size(); ++i) {
    const size_t c = i % n_conns;
    conn_order[c].push_back(i);
    if (!SendBytes(&clients[c], options,
                   gqe::EncodeFrame(FrameType::kRequest,
                                    options.requests[i]))) {
      std::fprintf(stderr, "gqe_net_client: send failed (request %zu)\n", i);
      return kExitUnexpected;
    }
  }
  for (auto& client : clients) client.ShutdownWrite();

  std::vector<std::string> responses(options.requests.size());
  bool failed = false;
  for (size_t c = 0; c < n_conns; ++c) {
    for (size_t slot : conn_order[c]) {
      Frame frame;
      switch (clients[c].RecvFrame(&frame, options.timeout_ms, &error)) {
        case NetClient::RecvResult::kFrame:
          break;
        case NetClient::RecvResult::kTimeout:
          std::fprintf(stderr, "gqe_net_client: timed out (request %zu)\n",
                       slot);
          return kExitHang;
        default:
          std::fprintf(stderr, "gqe_net_client: recv (request %zu): %s\n",
                       slot, error.c_str());
          return kExitUnexpected;
      }
      if (frame.type == FrameType::kResult) {
        responses[slot] = frame.payload;
      } else if (frame.type == FrameType::kError) {
        std::string code, detail;
        gqe::SplitErrorPayload(frame.payload, &code, &detail);
        responses[slot] = "error: " + code + " " + detail + "\n";
        failed = true;
      } else {
        std::fprintf(stderr, "gqe_net_client: unexpected %s frame\n",
                     gqe::FrameTypeName(frame.type));
        return kExitUnexpected;
      }
    }
  }
  for (const std::string& r : responses) std::fputs(r.c_str(), stdout);
  return failed ? kExitUnexpected : kExitOk;
}

/// Waits for the server's reaction to an in-flight fault: a structured
/// error frame followed by (or a bare) clean close are both acceptable;
/// anything else is a verdict against the server.
int AwaitReaction(NetClient* client, const char* fault, int timeout_ms,
                  const char* expect_code) {
  std::string got_code;
  for (;;) {
    Frame frame;
    std::string error;
    switch (client->RecvFrame(&frame, timeout_ms, &error)) {
      case NetClient::RecvResult::kFrame:
        if (frame.type != FrameType::kError) {
          std::printf("fault=%s outcome=unexpected-%s-frame\n", fault,
                      gqe::FrameTypeName(frame.type));
          return kExitUnexpected;
        }
        gqe::SplitErrorPayload(frame.payload, &got_code, nullptr);
        continue;  // the close should follow
      case NetClient::RecvResult::kClosed:
        if (expect_code != nullptr && got_code != expect_code) {
          std::printf("fault=%s outcome=closed code=%s expected=%s\n", fault,
                      got_code.empty() ? "-" : got_code.c_str(), expect_code);
          return kExitUnexpected;
        }
        std::printf("fault=%s outcome=%s%s\n", fault,
                    got_code.empty() ? "clean-close" : "error-then-close:",
                    got_code.c_str());
        return kExitOk;
      case NetClient::RecvResult::kTimeout:
        std::printf("fault=%s outcome=hang\n", fault);
        return kExitHang;
      case NetClient::RecvResult::kError:
        // ECONNRESET counts as a close: the server dropped us, which is
        // an allowed reaction to a protocol violation.
        std::printf("fault=%s outcome=reset\n", fault);
        return kExitOk;
    }
  }
}

int RunFault(const Options& options) {
  const std::string fault = options.fault;
  std::string error;
  // One deterministic stream per (fault, seed): fault names hash into
  // the stream so two faults in one matrix never share randomness.
  uint64_t h = options.seed;
  for (char ch : fault) h = gqe::Mix64(h ^ static_cast<unsigned char>(ch));
  uint64_t rng = h;
  auto next_rand = [&rng]() { return rng = gqe::Mix64(rng); };

  const std::string request =
      options.requests.empty()
          ? "id=chaos kind=cq program=examples/serve/chain.gqe query=q"
          : options.requests[0];
  std::string valid = gqe::EncodeFrame(FrameType::kRequest, request);

  NetClient client;
  if (fault != "flood-conns" &&
      !client.Connect(options.host, options.port, options.timeout_ms,
                      &error)) {
    std::fprintf(stderr, "gqe_net_client: connect: %s\n", error.c_str());
    return kExitUnexpected;
  }

  if (fault == "ping") {
    const std::string payload = "are-you-there";
    if (!client.SendFrame(FrameType::kPing, payload)) return kExitUnexpected;
    Frame frame;
    if (client.RecvFrame(&frame, options.timeout_ms, &error) !=
            NetClient::RecvResult::kFrame ||
        frame.type != FrameType::kPong || frame.payload != payload) {
      std::printf("fault=ping outcome=bad-pong\n");
      return kExitUnexpected;
    }
    std::printf("fault=ping outcome=pong\n");
    return kExitOk;
  }

  if (fault == "midframe-disconnect") {
    // Header plus part of the payload, then a hard close. The server
    // must just reap the connection; the proof it survived is the clean
    // request the smoke script sends afterwards.
    const size_t cut = gqe::kFrameHeaderSize + 1 +
                       next_rand() % (valid.size() - gqe::kFrameHeaderSize - 1);
    if (!client.SendRaw(std::string_view(valid).substr(0, cut))) {
      return kExitUnexpected;
    }
    client.Close();
    std::printf("fault=midframe-disconnect outcome=disconnected cut=%zu\n",
                cut);
    return kExitOk;
  }

  if (fault == "truncate") {
    // Partial frame then EOF: the stream ends mid-frame. Clean close
    // (or TIMEOUT) expected; the incomplete request must never execute.
    const size_t cut = 1 + next_rand() % (valid.size() - 1);
    if (!client.SendRaw(std::string_view(valid).substr(0, cut))) {
      return kExitUnexpected;
    }
    client.ShutdownWrite();
    return AwaitReaction(&client, "truncate", options.timeout_ms, nullptr);
  }

  if (fault == "bitflip") {
    // One flipped payload bit: the CRC must catch it (PROTOCOL), the
    // corrupted request line must never be evaluated.
    std::string damaged = valid;
    const size_t byte =
        gqe::kFrameHeaderSize +
        next_rand() % (damaged.size() - gqe::kFrameHeaderSize);
    damaged[byte] = static_cast<char>(damaged[byte] ^ (1u << (next_rand() % 8)));
    if (!SendBytes(&client, options, damaged)) return kExitUnexpected;
    return AwaitReaction(&client, "bitflip", options.timeout_ms, "PROTOCOL");
  }

  if (fault == "oversize" || fault == "bad-magic" || fault == "bad-version" ||
      fault == "unknown-type") {
    std::string damaged = valid;
    if (fault == "oversize") {
      // A length prefix far past the payload cap: must be rejected from
      // the header alone, without the server ever allocating for it.
      damaged[4] = '\xff';
      damaged[5] = '\xff';
      damaged[6] = '\xff';
      damaged[7] = '\x7f';
    } else if (fault == "bad-magic") {
      damaged[0] = '\x00';
    } else if (fault == "bad-version") {
      damaged[2] = '\x63';
    } else {
      damaged[3] = '\x4d';  // type 77: not a FrameType
    }
    if (!SendBytes(&client, options, damaged)) return kExitUnexpected;
    return AwaitReaction(&client, fault.c_str(), options.timeout_ms,
                         "PROTOCOL");
  }

  if (fault == "stalled-read") {
    // Slow loris: begin a frame, then go silent. The partial-frame
    // deadline must evict us with TIMEOUT; an unbounded server would
    // hold the connection forever.
    if (!client.SendRaw(std::string_view(valid).substr(0, 6))) {
      return kExitUnexpected;
    }
    return AwaitReaction(&client, "stalled-read", options.timeout_ms,
                         "TIMEOUT");
  }

  if (fault == "flood-conns") {
    // Exceed the connection cap: every connection beyond it must get a
    // structured OVERLOADED frame and a close, while earlier ones stay
    // usable (proved by the ping at the end).
    const int total = options.count > 0 ? options.count : 128;
    std::vector<std::unique_ptr<NetClient>> flood;
    int shed = 0, open = 0;
    for (int i = 0; i < total; ++i) {
      auto c = std::make_unique<NetClient>();
      if (!c->Connect(options.host, options.port, options.timeout_ms,
                      &error)) {
        ++shed;  // kernel-level refusal also counts as shedding
        continue;
      }
      flood.push_back(std::move(c));
    }
    for (auto& c : flood) {
      Frame frame;
      std::string code;
      switch (c->RecvFrame(&frame, 50, &error)) {
        case NetClient::RecvResult::kFrame:
          gqe::SplitErrorPayload(frame.payload, &code, nullptr);
          if (frame.type == FrameType::kError && code == "OVERLOADED") {
            ++shed;
          }
          break;
        case NetClient::RecvResult::kClosed:
        case NetClient::RecvResult::kError:
          ++shed;
          break;
        case NetClient::RecvResult::kTimeout:
          ++open;  // under the cap: no unsolicited traffic expected
          break;
      }
    }
    // One of the under-cap connections must still work end to end.
    NetClient* probe = nullptr;
    for (auto& c : flood) {
      if (c->connected()) {
        probe = c.get();
        break;
      }
    }
    bool alive = false;
    if (probe != nullptr && probe->SendFrame(FrameType::kPing, "probe")) {
      Frame frame;
      alive = probe->RecvFrame(&frame, options.timeout_ms, &error) ==
                  NetClient::RecvResult::kFrame &&
              frame.type == FrameType::kPong;
    }
    std::printf("fault=flood-conns total=%d open=%d shed=%d alive=%s\n",
                total, open, shed, alive ? "yes" : "no");
    return (shed > 0 && alive) ? kExitOk : kExitUnexpected;
  }

  if (fault == "flood-requests") {
    // Exceed the request queue capacity on one connection: the server
    // must answer every frame — results for admitted requests,
    // OVERLOADED errors for shed ones — and never stall or drop one.
    const int total = options.count > 0 ? options.count : 64;
    for (int i = 0; i < total; ++i) {
      if (!client.SendRequest(request)) return kExitUnexpected;
    }
    client.ShutdownWrite();
    int results = 0, shed = 0;
    for (int i = 0; i < total; ++i) {
      Frame frame;
      std::string code;
      switch (client.RecvFrame(&frame, options.timeout_ms, &error)) {
        case NetClient::RecvResult::kFrame:
          if (frame.type == FrameType::kResult) {
            ++results;
          } else if (frame.type == FrameType::kError) {
            gqe::SplitErrorPayload(frame.payload, &code, nullptr);
            if (code != "OVERLOADED") {
              std::printf("fault=flood-requests outcome=unexpected-error:%s\n",
                          code.c_str());
              return kExitUnexpected;
            }
            ++shed;
          }
          break;
        case NetClient::RecvResult::kTimeout:
          std::printf("fault=flood-requests outcome=hang after=%d\n", i);
          return kExitHang;
        default:
          std::printf("fault=flood-requests outcome=lost after=%d\n", i);
          return kExitUnexpected;
      }
    }
    std::printf("fault=flood-requests total=%d results=%d shed=%d\n", total,
                results, shed);
    return (results + shed == total && results > 0) ? kExitOk
                                                    : kExitUnexpected;
  }

  std::fprintf(stderr, "gqe_net_client: unknown fault '%s'\n", fault.c_str());
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = value())) {
      options.host = v;
    } else if (arg == "--port" && (v = value())) {
      options.port = std::atoi(v);
    } else if (arg == "--request" && (v = value())) {
      options.requests.push_back(v);
    } else if (arg == "--requests-file" && (v = value())) {
      std::ifstream in(v);
      if (!in) {
        std::fprintf(stderr, "gqe_net_client: cannot read %s\n", v);
        return kExitUsage;
      }
      std::string line;
      while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '#' && line[0] != '%') {
          options.requests.push_back(line);
        }
      }
    } else if (arg == "--connections" && (v = value())) {
      options.connections = std::atoi(v);
    } else if (arg == "--bytes-per-write" && (v = value())) {
      options.bytes_per_write = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--write-delay-us" && (v = value())) {
      options.write_delay_us = std::atoi(v);
    } else if (arg == "--timeout-ms" && (v = value())) {
      options.timeout_ms = std::atoi(v);
    } else if (arg == "--fault" && (v = value())) {
      options.fault = v;
    } else if (arg == "--count" && (v = value())) {
      options.count = std::atoi(v);
    } else if (arg == "--retry-deadline-ms" && (v = value())) {
      options.retry_deadline_ms = std::atoi(v);
    } else if (arg == "--seed" && (v = value())) {
      options.seed = static_cast<uint64_t>(std::atoll(v));
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.port <= 0) return Usage(argv[0]);
  if (!options.fault.empty()) return RunFault(options);
  if (options.requests.empty()) {
    std::fprintf(stderr, "gqe_net_client: no requests\n");
    return Usage(argv[0]);
  }
  if (options.retry_deadline_ms > 0) return RunRequestsWithRetry(options);
  return RunRequests(options);
}
