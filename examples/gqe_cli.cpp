// gqe_cli: load a .gqe program from a file (or stdin) and answer its
// queries under both semantics. The "downstream user" entry point.
//
//   ./build/examples/gqe_cli program.gqe [--closed-world] [--analyze]
//
// Modes:
//   default         open-world certain answers for every query
//   --closed-world  plain evaluation under the constraint promise
//   --analyze       per-query semantic treewidth report

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "approx/meta.h"
#include "chase/chase.h"
#include "cqs/cqs.h"
#include "cqs/evaluation.h"
#include "omq/evaluation.h"
#include "omq/omq.h"
#include "parser/parser.h"

namespace {

void PrintAnswers(const std::string& name,
                  const std::vector<std::vector<gqe::Term>>& answers) {
  std::printf("%s: %zu answer(s)\n", name.c_str(), answers.size());
  for (const auto& tuple : answers) {
    std::printf("  %s(", name.c_str());
    for (size_t i = 0; i < tuple.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", tuple[i].ToString().c_str());
    }
    std::printf(")\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool closed_world = false;
  bool analyze = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--closed-world") == 0) {
      closed_world = true;
    } else if (std::strcmp(argv[i], "--analyze") == 0) {
      analyze = true;
    } else {
      path = argv[i];
    }
  }
  std::string text;
  if (path.empty() || path == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "gqe_cli: cannot open %s\n", path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  gqe::ParseResult parsed = gqe::ParseProgram(text);
  if (!parsed.ok) {
    std::fprintf(stderr, "parse error (line %d, column %d): %s\n",
                 parsed.error_line, parsed.error_column, parsed.error.c_str());
    return 1;
  }
  const gqe::Program& program = parsed.program;
  std::printf("loaded: %zu facts, %zu TGDs (%s), %zu queries\n",
              program.database.size(), program.tgds.size(),
              gqe::IsGuardedSet(program.tgds)       ? "guarded"
              : gqe::IsFrontierGuardedSet(program.tgds) ? "frontier-guarded"
                                                        : "general",
              program.queries.size());

  if (analyze) {
    for (const auto& [name, query] : program.queries) {
      gqe::Cqs cqs{program.tgds, query};
      int syntactic = query.TreewidthOfExistentialPart();
      int semantic = gqe::SemanticTreewidthCqs(cqs, 4);
      std::printf("%s: syntactic treewidth %d, semantic treewidth %s\n",
                  name.c_str(), syntactic,
                  semantic < 0 ? ">4" : std::to_string(semantic).c_str());
    }
    return 0;
  }

  if (closed_world) {
    if (!gqe::Satisfies(program.database, program.tgds)) {
      std::printf("warning: database violates the constraints; the "
                  "closed-world promise does not hold\n");
    }
    for (const auto& [name, query] : program.queries) {
      gqe::Cqs cqs{program.tgds, query};
      PrintAnswers(name, gqe::EvaluateCqs(cqs, program.database).answers);
    }
    return 0;
  }

  for (const auto& [name, query] : program.queries) {
    gqe::Omq omq = gqe::Omq::WithFullDataSchema(program.tgds, query);
    gqe::OmqEvalResult result = gqe::EvaluateOmq(omq, program.database);
    if (!result.exact) {
      std::printf("(%s: bounded-chase approximation)\n", name.c_str());
    }
    PrintAnswers(name, result.answers);
  }
  return 0;
}
