// Semantic treewidth analysis: for each (constraints, query) pair, find
// the least k such that the specification is uniformly UCQ_k-equivalent
// (the notion whose boundedness characterizes tractable evaluation,
// Theorems 5.7 / 5.12).

#include <cstdio>

#include "approx/meta.h"
#include "cqs/cqs.h"
#include "parser/parser.h"
#include "workload/report.h"

int main() {
  struct Case {
    const char* name;
    const char* sigma;
    const char* query;
  };
  const Case cases[] = {
      {"path-3 (no constraints)", "",
       "q1() :- e(X, Y), e(Y, Z), e(Z, W)."},
      {"4-cycle (no constraints)", "",
       "q2() :- e(X, Y), e(Y, Z), e(Z, W), e(W, X)."},
      {"Example 4.4 without Sigma", "",
       "q3() :- p(X2,X1), p(X4,X1), p(X2,X3), p(X4,X3), "
       "r1(X1), r2(X2), r3(X3), r4(X4)."},
      {"Example 4.4 with R2 c R4", "r2(X) -> r4(X).",
       "q4() :- p(X2,X1), p(X4,X1), p(X2,X3), p(X4,X3), "
       "r1(X1), r2(X2), r3(X3), r4(X4)."},
      {"triangle (no constraints)", "",
       "q5() :- e(X, Y), e(Y, Z), e(Z, X)."},
      {"redundant square", "",
       "q6() :- p(X1, Y1), p(X1, Y2), r(X2, Y1), r(X2, Y2)."},
  };

  gqe::ReportTable table(
      {"case", "syntactic tw", "semantic tw", "collapses?"});
  for (const Case& c : cases) {
    gqe::Cqs cqs;
    if (c.sigma[0] != '\0') cqs.sigma = gqe::ParseTgds(c.sigma);
    cqs.query = gqe::ParseUcq(c.query);
    const int syntactic = cqs.query.TreewidthOfExistentialPart();
    const int semantic = gqe::SemanticTreewidthCqs(cqs, 4);
    table.AddRow({c.name, gqe::ReportTable::Cell(syntactic),
                  semantic < 0 ? ">4" : gqe::ReportTable::Cell(semantic),
                  gqe::ReportTable::Cell(semantic >= 0 &&
                                         semantic < syntactic)});
  }
  table.Print("Semantic treewidth under integrity constraints");
  std::printf("\n'collapses?' marks specifications whose constraints (or "
              "redundancy) lower the\neffective treewidth — the "
              "tractability boundary of Theorems 5.7/5.12.\n");
  return 0;
}
