// gqe_serve: batch evaluation daemon. Reads a manifest of chase / cq /
// cqs / omq requests (one per line, see src/serve/request.h for the
// syntax) and runs every request to a terminal state in fork-isolated
// worker processes with setrlimit caps, heartbeat liveness, retry with
// exponential backoff, checkpoint resume and a graceful-degradation
// ladder. The daemon itself survives any worker segfault, OOM or stall.
//
//   ./build/examples/gqe_serve examples/serve/manifest.txt
//   ./build/examples/gqe_serve manifest.txt --chaos kill=0.3,stall=0.1
//
// Output: one deterministic "result:" line per request (bit-identical
// between chaos and fault-free runs of the same manifest — the chaos
// smoke diffs exactly these), then operational tables with attempts,
// exit causes, resume generations and retry latency.

#include <cstdio>
#include <cstring>
#include <string>

#include "serve/request.h"
#include "serve/service.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s MANIFEST [options]\n"
      "  --concurrency N           workers in flight at once (default 4)\n"
      "  --queue-capacity N        shed requests beyond N waiting (0 = off)\n"
      "  --max-attempts N          exact attempts before degrading (default 5)\n"
      "  --backoff-base-ms X       retry backoff base (default 25)\n"
      "  --backoff-cap-ms X        retry backoff cap (default 1000)\n"
      "  --heartbeat-timeout-ms X  reap a silent worker after X ms\n"
      "  --wall-timeout-ms X       per-attempt wall-clock cap (0 = off)\n"
      "  --work-dir PATH           checkpoint root (default: fresh temp dir)\n"
      "  --keep-work-dir           do not delete the checkpoint root\n"
      "  --chaos SPEC              inject faults, e.g. kill=0.3,oom=0.1,stall=0.1\n"
      "  --chaos-seed N            chaos PRNG seed (default 1)\n"
      "  --no-spare-final          let chaos hit the final exact attempt too\n"
      "  --no-degrade              disable the degradation ladder\n"
      "  --verify                  certified answers: workers attach witnesses,\n"
      "                            the supervisor independently re-checks each\n"
      "                            one before emitting the result line\n"
      "  --quiet-ops               print only the deterministic result lines\n"
      "  --verbose                 per-attempt progress lines\n",
      argv0);
  return 2;
}

bool NextValue(int argc, char** argv, int* i, const char** value) {
  const char* arg = argv[*i];
  const char* eq = std::strchr(arg, '=');
  if (eq != nullptr) {
    *value = eq + 1;
    return true;
  }
  if (*i + 1 >= argc) return false;
  *value = argv[++*i];
  return true;
}

bool FlagMatches(const char* arg, const char* name) {
  const size_t n = std::strlen(name);
  return std::strncmp(arg, name, n) == 0 &&
         (arg[n] == '\0' || arg[n] == '=');
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  gqe::ServeOptions options;
  bool quiet_ops = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (FlagMatches(arg, "--concurrency") && NextValue(argc, argv, &i, &value)) {
      options.concurrency = std::atoi(value);
    } else if (FlagMatches(arg, "--queue-capacity") &&
               NextValue(argc, argv, &i, &value)) {
      options.queue_capacity = static_cast<size_t>(std::atoll(value));
    } else if (FlagMatches(arg, "--max-attempts") &&
               NextValue(argc, argv, &i, &value)) {
      options.max_attempts = std::atoi(value);
    } else if (FlagMatches(arg, "--backoff-base-ms") &&
               NextValue(argc, argv, &i, &value)) {
      options.backoff_base_ms = std::atof(value);
    } else if (FlagMatches(arg, "--backoff-cap-ms") &&
               NextValue(argc, argv, &i, &value)) {
      options.backoff_cap_ms = std::atof(value);
    } else if (FlagMatches(arg, "--heartbeat-timeout-ms") &&
               NextValue(argc, argv, &i, &value)) {
      options.heartbeat_timeout_ms = std::atof(value);
    } else if (FlagMatches(arg, "--wall-timeout-ms") &&
               NextValue(argc, argv, &i, &value)) {
      options.wall_timeout_ms = std::atof(value);
    } else if (FlagMatches(arg, "--work-dir") &&
               NextValue(argc, argv, &i, &value)) {
      options.work_dir = value;
    } else if (std::strcmp(arg, "--keep-work-dir") == 0) {
      options.keep_work_dir = true;
    } else if (FlagMatches(arg, "--chaos") &&
               NextValue(argc, argv, &i, &value)) {
      std::string error;
      if (!gqe::ParseChaosSpec(value, &options.chaos, &error)) {
        std::fprintf(stderr, "gqe_serve: %s\n", error.c_str());
        return 2;
      }
    } else if (FlagMatches(arg, "--chaos-seed") &&
               NextValue(argc, argv, &i, &value)) {
      options.chaos.seed = static_cast<uint64_t>(std::atoll(value));
    } else if (std::strcmp(arg, "--no-spare-final") == 0) {
      options.chaos.spare_final_attempt = false;
    } else if (std::strcmp(arg, "--no-degrade") == 0) {
      options.enable_degraded_ladder = false;
    } else if (std::strcmp(arg, "--verify") == 0) {
      options.verify = true;
    } else if (std::strcmp(arg, "--quiet-ops") == 0) {
      quiet_ops = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      options.verbose = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "gqe_serve: unknown flag %s\n", arg);
      return Usage(argv[0]);
    } else if (manifest_path.empty()) {
      manifest_path = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (manifest_path.empty()) return Usage(argv[0]);

  gqe::Manifest manifest;
  std::string error;
  if (!gqe::ParseManifestFile(manifest_path, &manifest, &error)) {
    std::fprintf(stderr, "gqe_serve: %s\n", error.c_str());
    return 2;
  }

  gqe::ServeReport report = gqe::ServeManifest(manifest, options);
  std::fputs(report.DeterministicText().c_str(), stdout);
  if (!quiet_ops) report.PrintOps("serve: " + manifest_path);
  return 0;
}
