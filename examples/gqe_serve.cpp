// gqe_serve: batch evaluation daemon. Reads a manifest of chase / cq /
// cqs / omq requests (one per line, see src/serve/request.h for the
// syntax) and runs every request to a terminal state in fork-isolated
// worker processes with setrlimit caps, heartbeat liveness, retry with
// exponential backoff, checkpoint resume and a graceful-degradation
// ladder. The daemon itself survives any worker segfault, OOM or stall.
//
//   ./build/examples/gqe_serve examples/serve/manifest.txt
//   ./build/examples/gqe_serve manifest.txt --chaos kill=0.3,stall=0.1
//
// Output: one deterministic "result:" line per request (bit-identical
// between chaos and fault-free runs of the same manifest — the chaos
// smoke diffs exactly these), then operational tables with attempts,
// exit causes, resume generations and retry latency.
//
// With --listen PORT the same supervisor serves concurrent TCP clients
// instead: each connection carries length-prefixed frames whose request
// payloads are manifest lines and whose result payloads are the exact
// "result:" lines the batch mode prints (src/net/frame.h). SIGTERM
// drains gracefully: the listener closes, new requests get
// SHUTTING_DOWN, in-flight requests finish and flush, then exit 0.

#include <signal.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "net/server.h"
#include "serve/request.h"
#include "serve/service.h"

namespace {

volatile sig_atomic_t g_drain = 0;

void OnTerm(int) { g_drain = 1; }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s MANIFEST [options]\n"
      "       %s --listen PORT [options]\n"
      "  --concurrency N           workers in flight at once (default 4)\n"
      "  --queue-capacity N        shed requests beyond N waiting (0 = off)\n"
      "  --max-attempts N          exact attempts before degrading (default 5)\n"
      "  --backoff-base-ms X       retry backoff base (default 25)\n"
      "  --backoff-cap-ms X        retry backoff cap (default 1000)\n"
      "  --heartbeat-timeout-ms X  reap a silent worker after X ms\n"
      "  --wall-timeout-ms X       per-attempt wall-clock cap (0 = off)\n"
      "  --work-dir PATH           checkpoint root (default: fresh temp dir)\n"
      "  --keep-work-dir           do not delete the checkpoint root\n"
      "  --chaos SPEC              inject faults, e.g. kill=0.3,oom=0.1,stall=0.1\n"
      "  --chaos-seed N            chaos PRNG seed (default 1)\n"
      "  --no-spare-final          let chaos hit the final exact attempt too\n"
      "  --no-degrade              disable the degradation ladder\n"
      "  --verify                  certified answers: workers attach witnesses,\n"
      "                            the supervisor independently re-checks each\n"
      "                            one before emitting the result line\n"
      "  --journal-dir PATH        durable serving: write-ahead journal of\n"
      "                            admitted/attempted/completed requests; a\n"
      "                            restarted daemon replays completed results\n"
      "                            byte-identically and resumes in-flight work\n"
      "  --no-journal-fsync        journal with write() only (survives kill -9\n"
      "                            but not power loss); removes the per-record\n"
      "                            fsync from the admission path\n"
      "  --journal-segment-bytes N rotate journal segments at N bytes\n"
      "                            (default 4194304)\n"
      "  --quiet-ops               print only the deterministic result lines\n"
      "  --verbose                 per-attempt progress lines\n"
      "network mode (--listen):\n"
      "  --listen PORT             serve the frame protocol on 127.0.0.1:PORT\n"
      "                            (0 = ephemeral; see --port-file)\n"
      "  --bind ADDR               bind address (default 127.0.0.1)\n"
      "  --port-file PATH          write the bound port to PATH once listening\n"
      "  --program-root DIR        resolve request program= paths here (default .)\n"
      "  --max-connections N       connection cap; excess shed (default 64)\n"
      "  --max-frame-bytes N       per-frame payload cap (default 1 MiB)\n"
      "  --read-timeout-ms X       partial-frame (slow-loris) deadline\n"
      "  --idle-timeout-ms X       close silent idle connections after X ms\n"
      "  --write-stall-ms X        close peers that stop reading after X ms\n"
      "  --soft-write-buffer N     pause reading a conn above N buffered bytes\n"
      "  --hard-write-buffer N     close a conn above N buffered bytes\n"
      "  --no-coalesce             do not share one evaluation between\n"
      "                            identical in-flight requests\n",
      argv0, argv0);
  return 2;
}

bool NextValue(int argc, char** argv, int* i, const char** value) {
  const char* arg = argv[*i];
  const char* eq = std::strchr(arg, '=');
  if (eq != nullptr) {
    *value = eq + 1;
    return true;
  }
  if (*i + 1 >= argc) return false;
  *value = argv[++*i];
  return true;
}

bool FlagMatches(const char* arg, const char* name) {
  const size_t n = std::strlen(name);
  return std::strncmp(arg, name, n) == 0 &&
         (arg[n] == '\0' || arg[n] == '=');
}

int RunNetServer(const gqe::ServeOptions& options,
                 const gqe::NetServerOptions& net_options,
                 const std::string& port_file) {
  gqe::NetServer server(options, net_options);
  std::string error;
  if (!server.Listen(&error)) {
    std::fprintf(stderr, "gqe_serve: %s\n", error.c_str());
    return 2;
  }
  std::fprintf(stderr, "gqe_serve: listening on %s:%d\n",
               net_options.bind_address.c_str(), server.port());
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "gqe_serve: cannot write %s\n", port_file.c_str());
      return 2;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }

  struct sigaction sa = {};
  sa.sa_handler = OnTerm;
  // No SA_RESTART: the signal must interrupt epoll_wait (EINTR) so the
  // drain flag is noticed within one loop turn, not one timeout later.
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  const int rc = server.Run(&g_drain);
  std::fprintf(stderr, "gqe_serve: drained %s\n",
               server.stats().ToString().c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // A peer that disappears between our poll and our write must surface
  // as an EPIPE errno on that one connection, never a process-killing
  // signal. Workers re-ignore in their own forked setup.
  ::signal(SIGPIPE, SIG_IGN);

  std::string manifest_path;
  std::string port_file;
  gqe::ServeOptions options;
  gqe::NetServerOptions net_options;
  bool listen_mode = false;
  bool quiet_ops = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (FlagMatches(arg, "--concurrency") && NextValue(argc, argv, &i, &value)) {
      options.concurrency = std::atoi(value);
    } else if (FlagMatches(arg, "--queue-capacity") &&
               NextValue(argc, argv, &i, &value)) {
      options.queue_capacity = static_cast<size_t>(std::atoll(value));
      net_options.queue_capacity = options.queue_capacity;
    } else if (FlagMatches(arg, "--max-attempts") &&
               NextValue(argc, argv, &i, &value)) {
      options.max_attempts = std::atoi(value);
    } else if (FlagMatches(arg, "--backoff-base-ms") &&
               NextValue(argc, argv, &i, &value)) {
      options.backoff_base_ms = std::atof(value);
    } else if (FlagMatches(arg, "--backoff-cap-ms") &&
               NextValue(argc, argv, &i, &value)) {
      options.backoff_cap_ms = std::atof(value);
    } else if (FlagMatches(arg, "--heartbeat-timeout-ms") &&
               NextValue(argc, argv, &i, &value)) {
      options.heartbeat_timeout_ms = std::atof(value);
    } else if (FlagMatches(arg, "--wall-timeout-ms") &&
               NextValue(argc, argv, &i, &value)) {
      options.wall_timeout_ms = std::atof(value);
    } else if (FlagMatches(arg, "--work-dir") &&
               NextValue(argc, argv, &i, &value)) {
      options.work_dir = value;
    } else if (std::strcmp(arg, "--keep-work-dir") == 0) {
      options.keep_work_dir = true;
    } else if (FlagMatches(arg, "--chaos") &&
               NextValue(argc, argv, &i, &value)) {
      std::string error;
      if (!gqe::ParseChaosSpec(value, &options.chaos, &error)) {
        std::fprintf(stderr, "gqe_serve: %s\n", error.c_str());
        return 2;
      }
    } else if (FlagMatches(arg, "--chaos-seed") &&
               NextValue(argc, argv, &i, &value)) {
      options.chaos.seed = static_cast<uint64_t>(std::atoll(value));
    } else if (std::strcmp(arg, "--no-spare-final") == 0) {
      options.chaos.spare_final_attempt = false;
    } else if (std::strcmp(arg, "--no-degrade") == 0) {
      options.enable_degraded_ladder = false;
    } else if (std::strcmp(arg, "--verify") == 0) {
      options.verify = true;
    } else if (FlagMatches(arg, "--journal-dir") &&
               NextValue(argc, argv, &i, &value)) {
      options.journal_dir = value;
    } else if (std::strcmp(arg, "--no-journal-fsync") == 0) {
      options.journal_fsync = false;
    } else if (FlagMatches(arg, "--journal-segment-bytes") &&
               NextValue(argc, argv, &i, &value)) {
      options.journal_segment_bytes = static_cast<size_t>(std::atoll(value));
    } else if (std::strcmp(arg, "--quiet-ops") == 0) {
      quiet_ops = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      options.verbose = true;
      net_options.verbose = true;
    } else if (FlagMatches(arg, "--listen") &&
               NextValue(argc, argv, &i, &value)) {
      listen_mode = true;
      net_options.port = std::atoi(value);
    } else if (FlagMatches(arg, "--bind") &&
               NextValue(argc, argv, &i, &value)) {
      net_options.bind_address = value;
    } else if (FlagMatches(arg, "--port-file") &&
               NextValue(argc, argv, &i, &value)) {
      port_file = value;
    } else if (FlagMatches(arg, "--program-root") &&
               NextValue(argc, argv, &i, &value)) {
      net_options.program_root = value;
    } else if (FlagMatches(arg, "--max-connections") &&
               NextValue(argc, argv, &i, &value)) {
      net_options.max_connections = static_cast<size_t>(std::atoll(value));
    } else if (FlagMatches(arg, "--max-frame-bytes") &&
               NextValue(argc, argv, &i, &value)) {
      net_options.max_frame_payload = static_cast<size_t>(std::atoll(value));
    } else if (FlagMatches(arg, "--read-timeout-ms") &&
               NextValue(argc, argv, &i, &value)) {
      net_options.frame_read_timeout_ms = std::atof(value);
    } else if (FlagMatches(arg, "--idle-timeout-ms") &&
               NextValue(argc, argv, &i, &value)) {
      net_options.idle_timeout_ms = std::atof(value);
    } else if (FlagMatches(arg, "--write-stall-ms") &&
               NextValue(argc, argv, &i, &value)) {
      net_options.write_stall_timeout_ms = std::atof(value);
    } else if (FlagMatches(arg, "--soft-write-buffer") &&
               NextValue(argc, argv, &i, &value)) {
      net_options.write_buffer_soft_limit =
          static_cast<size_t>(std::atoll(value));
    } else if (FlagMatches(arg, "--hard-write-buffer") &&
               NextValue(argc, argv, &i, &value)) {
      net_options.write_buffer_hard_limit =
          static_cast<size_t>(std::atoll(value));
    } else if (std::strcmp(arg, "--no-coalesce") == 0) {
      net_options.coalesce = false;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "gqe_serve: unknown flag %s\n", arg);
      return Usage(argv[0]);
    } else if (manifest_path.empty()) {
      manifest_path = arg;
    } else {
      return Usage(argv[0]);
    }
  }

  if (listen_mode) {
    if (!manifest_path.empty()) {
      std::fprintf(stderr,
                   "gqe_serve: --listen and a manifest file are exclusive\n");
      return Usage(argv[0]);
    }
    return RunNetServer(options, net_options, port_file);
  }
  if (manifest_path.empty()) return Usage(argv[0]);

  gqe::Manifest manifest;
  std::string error;
  if (!gqe::ParseManifestFile(manifest_path, &manifest, &error)) {
    std::fprintf(stderr, "gqe_serve: %s\n", error.c_str());
    return 2;
  }

  gqe::ServeReport report = gqe::ServeManifest(manifest, options);
  std::fputs(report.DeterministicText().c_str(), stdout);
  if (!quiet_ops) report.PrintOps("serve: " + manifest_path);
  return 0;
}
