file(REMOVE_RECURSE
  "libgqe.a"
)
