
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/approx/approximation.cc" "src/CMakeFiles/gqe.dir/approx/approximation.cc.o" "gcc" "src/CMakeFiles/gqe.dir/approx/approximation.cc.o.d"
  "/root/repo/src/approx/grounding.cc" "src/CMakeFiles/gqe.dir/approx/grounding.cc.o" "gcc" "src/CMakeFiles/gqe.dir/approx/grounding.cc.o.d"
  "/root/repo/src/approx/meta.cc" "src/CMakeFiles/gqe.dir/approx/meta.cc.o" "gcc" "src/CMakeFiles/gqe.dir/approx/meta.cc.o.d"
  "/root/repo/src/approx/specialization.cc" "src/CMakeFiles/gqe.dir/approx/specialization.cc.o" "gcc" "src/CMakeFiles/gqe.dir/approx/specialization.cc.o.d"
  "/root/repo/src/base/atom.cc" "src/CMakeFiles/gqe.dir/base/atom.cc.o" "gcc" "src/CMakeFiles/gqe.dir/base/atom.cc.o.d"
  "/root/repo/src/base/instance.cc" "src/CMakeFiles/gqe.dir/base/instance.cc.o" "gcc" "src/CMakeFiles/gqe.dir/base/instance.cc.o.d"
  "/root/repo/src/base/interner.cc" "src/CMakeFiles/gqe.dir/base/interner.cc.o" "gcc" "src/CMakeFiles/gqe.dir/base/interner.cc.o.d"
  "/root/repo/src/base/schema.cc" "src/CMakeFiles/gqe.dir/base/schema.cc.o" "gcc" "src/CMakeFiles/gqe.dir/base/schema.cc.o.d"
  "/root/repo/src/base/term.cc" "src/CMakeFiles/gqe.dir/base/term.cc.o" "gcc" "src/CMakeFiles/gqe.dir/base/term.cc.o.d"
  "/root/repo/src/chase/chase.cc" "src/CMakeFiles/gqe.dir/chase/chase.cc.o" "gcc" "src/CMakeFiles/gqe.dir/chase/chase.cc.o.d"
  "/root/repo/src/cqs/containment.cc" "src/CMakeFiles/gqe.dir/cqs/containment.cc.o" "gcc" "src/CMakeFiles/gqe.dir/cqs/containment.cc.o.d"
  "/root/repo/src/cqs/cqs.cc" "src/CMakeFiles/gqe.dir/cqs/cqs.cc.o" "gcc" "src/CMakeFiles/gqe.dir/cqs/cqs.cc.o.d"
  "/root/repo/src/cqs/evaluation.cc" "src/CMakeFiles/gqe.dir/cqs/evaluation.cc.o" "gcc" "src/CMakeFiles/gqe.dir/cqs/evaluation.cc.o.d"
  "/root/repo/src/fc/witness.cc" "src/CMakeFiles/gqe.dir/fc/witness.cc.o" "gcc" "src/CMakeFiles/gqe.dir/fc/witness.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/gqe.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/gqe.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/minor.cc" "src/CMakeFiles/gqe.dir/graph/minor.cc.o" "gcc" "src/CMakeFiles/gqe.dir/graph/minor.cc.o.d"
  "/root/repo/src/graph/tree_decomposition.cc" "src/CMakeFiles/gqe.dir/graph/tree_decomposition.cc.o" "gcc" "src/CMakeFiles/gqe.dir/graph/tree_decomposition.cc.o.d"
  "/root/repo/src/graph/treewidth.cc" "src/CMakeFiles/gqe.dir/graph/treewidth.cc.o" "gcc" "src/CMakeFiles/gqe.dir/graph/treewidth.cc.o.d"
  "/root/repo/src/grohe/clique.cc" "src/CMakeFiles/gqe.dir/grohe/clique.cc.o" "gcc" "src/CMakeFiles/gqe.dir/grohe/clique.cc.o.d"
  "/root/repo/src/grohe/grohe_db.cc" "src/CMakeFiles/gqe.dir/grohe/grohe_db.cc.o" "gcc" "src/CMakeFiles/gqe.dir/grohe/grohe_db.cc.o.d"
  "/root/repo/src/grohe/reduction.cc" "src/CMakeFiles/gqe.dir/grohe/reduction.cc.o" "gcc" "src/CMakeFiles/gqe.dir/grohe/reduction.cc.o.d"
  "/root/repo/src/grohe/variant_db.cc" "src/CMakeFiles/gqe.dir/grohe/variant_db.cc.o" "gcc" "src/CMakeFiles/gqe.dir/grohe/variant_db.cc.o.d"
  "/root/repo/src/guarded/chase_tree.cc" "src/CMakeFiles/gqe.dir/guarded/chase_tree.cc.o" "gcc" "src/CMakeFiles/gqe.dir/guarded/chase_tree.cc.o.d"
  "/root/repo/src/guarded/omq_eval.cc" "src/CMakeFiles/gqe.dir/guarded/omq_eval.cc.o" "gcc" "src/CMakeFiles/gqe.dir/guarded/omq_eval.cc.o.d"
  "/root/repo/src/guarded/saturation.cc" "src/CMakeFiles/gqe.dir/guarded/saturation.cc.o" "gcc" "src/CMakeFiles/gqe.dir/guarded/saturation.cc.o.d"
  "/root/repo/src/guarded/type_closure.cc" "src/CMakeFiles/gqe.dir/guarded/type_closure.cc.o" "gcc" "src/CMakeFiles/gqe.dir/guarded/type_closure.cc.o.d"
  "/root/repo/src/guarded/unraveling.cc" "src/CMakeFiles/gqe.dir/guarded/unraveling.cc.o" "gcc" "src/CMakeFiles/gqe.dir/guarded/unraveling.cc.o.d"
  "/root/repo/src/linear/linear_chase.cc" "src/CMakeFiles/gqe.dir/linear/linear_chase.cc.o" "gcc" "src/CMakeFiles/gqe.dir/linear/linear_chase.cc.o.d"
  "/root/repo/src/linear/rewriting.cc" "src/CMakeFiles/gqe.dir/linear/rewriting.cc.o" "gcc" "src/CMakeFiles/gqe.dir/linear/rewriting.cc.o.d"
  "/root/repo/src/omq/containment.cc" "src/CMakeFiles/gqe.dir/omq/containment.cc.o" "gcc" "src/CMakeFiles/gqe.dir/omq/containment.cc.o.d"
  "/root/repo/src/omq/evaluation.cc" "src/CMakeFiles/gqe.dir/omq/evaluation.cc.o" "gcc" "src/CMakeFiles/gqe.dir/omq/evaluation.cc.o.d"
  "/root/repo/src/omq/omq.cc" "src/CMakeFiles/gqe.dir/omq/omq.cc.o" "gcc" "src/CMakeFiles/gqe.dir/omq/omq.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/gqe.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/gqe.dir/parser/parser.cc.o.d"
  "/root/repo/src/query/acyclic.cc" "src/CMakeFiles/gqe.dir/query/acyclic.cc.o" "gcc" "src/CMakeFiles/gqe.dir/query/acyclic.cc.o.d"
  "/root/repo/src/query/containment.cc" "src/CMakeFiles/gqe.dir/query/containment.cc.o" "gcc" "src/CMakeFiles/gqe.dir/query/containment.cc.o.d"
  "/root/repo/src/query/contraction.cc" "src/CMakeFiles/gqe.dir/query/contraction.cc.o" "gcc" "src/CMakeFiles/gqe.dir/query/contraction.cc.o.d"
  "/root/repo/src/query/core.cc" "src/CMakeFiles/gqe.dir/query/core.cc.o" "gcc" "src/CMakeFiles/gqe.dir/query/core.cc.o.d"
  "/root/repo/src/query/cq.cc" "src/CMakeFiles/gqe.dir/query/cq.cc.o" "gcc" "src/CMakeFiles/gqe.dir/query/cq.cc.o.d"
  "/root/repo/src/query/evaluation.cc" "src/CMakeFiles/gqe.dir/query/evaluation.cc.o" "gcc" "src/CMakeFiles/gqe.dir/query/evaluation.cc.o.d"
  "/root/repo/src/query/homomorphism.cc" "src/CMakeFiles/gqe.dir/query/homomorphism.cc.o" "gcc" "src/CMakeFiles/gqe.dir/query/homomorphism.cc.o.d"
  "/root/repo/src/query/substitution.cc" "src/CMakeFiles/gqe.dir/query/substitution.cc.o" "gcc" "src/CMakeFiles/gqe.dir/query/substitution.cc.o.d"
  "/root/repo/src/query/tw_evaluation.cc" "src/CMakeFiles/gqe.dir/query/tw_evaluation.cc.o" "gcc" "src/CMakeFiles/gqe.dir/query/tw_evaluation.cc.o.d"
  "/root/repo/src/tgd/tgd.cc" "src/CMakeFiles/gqe.dir/tgd/tgd.cc.o" "gcc" "src/CMakeFiles/gqe.dir/tgd/tgd.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/gqe.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/gqe.dir/workload/generators.cc.o.d"
  "/root/repo/src/workload/report.cc" "src/CMakeFiles/gqe.dir/workload/report.cc.o" "gcc" "src/CMakeFiles/gqe.dir/workload/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
