# Empty compiler generated dependencies file for gqe.
# This may be replaced when dependencies are built.
