file(REMOVE_RECURSE
  "CMakeFiles/unraveling_test.dir/unraveling_test.cc.o"
  "CMakeFiles/unraveling_test.dir/unraveling_test.cc.o.d"
  "unraveling_test"
  "unraveling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unraveling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
