# Empty dependencies file for unraveling_test.
# This may be replaced when dependencies are built.
