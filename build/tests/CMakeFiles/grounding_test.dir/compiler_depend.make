# Empty compiler generated dependencies file for grounding_test.
# This may be replaced when dependencies are built.
