file(REMOVE_RECURSE
  "CMakeFiles/guarded_arity3_test.dir/guarded_arity3_test.cc.o"
  "CMakeFiles/guarded_arity3_test.dir/guarded_arity3_test.cc.o.d"
  "guarded_arity3_test"
  "guarded_arity3_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guarded_arity3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
