# Empty dependencies file for guarded_arity3_test.
# This may be replaced when dependencies are built.
