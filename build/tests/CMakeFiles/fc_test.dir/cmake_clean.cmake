file(REMOVE_RECURSE
  "CMakeFiles/fc_test.dir/fc_test.cc.o"
  "CMakeFiles/fc_test.dir/fc_test.cc.o.d"
  "fc_test"
  "fc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
