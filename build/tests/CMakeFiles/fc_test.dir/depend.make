# Empty dependencies file for fc_test.
# This may be replaced when dependencies are built.
