# Empty compiler generated dependencies file for grohe_test.
# This may be replaced when dependencies are built.
