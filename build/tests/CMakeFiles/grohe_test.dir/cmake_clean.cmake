file(REMOVE_RECURSE
  "CMakeFiles/grohe_test.dir/grohe_test.cc.o"
  "CMakeFiles/grohe_test.dir/grohe_test.cc.o.d"
  "grohe_test"
  "grohe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grohe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
