# Empty compiler generated dependencies file for guarded_test.
# This may be replaced when dependencies are built.
