# Empty compiler generated dependencies file for omq_cqs_test.
# This may be replaced when dependencies are built.
