file(REMOVE_RECURSE
  "CMakeFiles/omq_cqs_test.dir/omq_cqs_test.cc.o"
  "CMakeFiles/omq_cqs_test.dir/omq_cqs_test.cc.o.d"
  "omq_cqs_test"
  "omq_cqs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omq_cqs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
