file(REMOVE_RECURSE
  "CMakeFiles/lemma_c2_test.dir/lemma_c2_test.cc.o"
  "CMakeFiles/lemma_c2_test.dir/lemma_c2_test.cc.o.d"
  "lemma_c2_test"
  "lemma_c2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma_c2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
