# Empty compiler generated dependencies file for lemma_c2_test.
# This may be replaced when dependencies are built.
