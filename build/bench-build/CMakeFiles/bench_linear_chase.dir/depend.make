# Empty dependencies file for bench_linear_chase.
# This may be replaced when dependencies are built.
