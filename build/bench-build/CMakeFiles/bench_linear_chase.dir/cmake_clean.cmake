file(REMOVE_RECURSE
  "../bench/bench_linear_chase"
  "../bench/bench_linear_chase.pdb"
  "CMakeFiles/bench_linear_chase.dir/bench_linear_chase.cc.o"
  "CMakeFiles/bench_linear_chase.dir/bench_linear_chase.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linear_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
