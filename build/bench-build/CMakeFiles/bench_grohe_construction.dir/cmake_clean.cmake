file(REMOVE_RECURSE
  "../bench/bench_grohe_construction"
  "../bench/bench_grohe_construction.pdb"
  "CMakeFiles/bench_grohe_construction.dir/bench_grohe_construction.cc.o"
  "CMakeFiles/bench_grohe_construction.dir/bench_grohe_construction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grohe_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
