# Empty dependencies file for bench_grohe_construction.
# This may be replaced when dependencies are built.
