# Empty dependencies file for bench_cqs_reduction.
# This may be replaced when dependencies are built.
