file(REMOVE_RECURSE
  "../bench/bench_cqs_reduction"
  "../bench/bench_cqs_reduction.pdb"
  "CMakeFiles/bench_cqs_reduction.dir/bench_cqs_reduction.cc.o"
  "CMakeFiles/bench_cqs_reduction.dir/bench_cqs_reduction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cqs_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
