file(REMOVE_RECURSE
  "../bench/bench_acyclic_ablation"
  "../bench/bench_acyclic_ablation.pdb"
  "CMakeFiles/bench_acyclic_ablation.dir/bench_acyclic_ablation.cc.o"
  "CMakeFiles/bench_acyclic_ablation.dir/bench_acyclic_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_acyclic_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
