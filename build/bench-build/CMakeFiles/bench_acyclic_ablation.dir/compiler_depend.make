# Empty compiler generated dependencies file for bench_acyclic_ablation.
# This may be replaced when dependencies are built.
