# Empty compiler generated dependencies file for bench_treewidth_ablation.
# This may be replaced when dependencies are built.
