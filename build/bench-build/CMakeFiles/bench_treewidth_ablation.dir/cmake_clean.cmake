file(REMOVE_RECURSE
  "../bench/bench_treewidth_ablation"
  "../bench/bench_treewidth_ablation.pdb"
  "CMakeFiles/bench_treewidth_ablation.dir/bench_treewidth_ablation.cc.o"
  "CMakeFiles/bench_treewidth_ablation.dir/bench_treewidth_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_treewidth_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
