file(REMOVE_RECURSE
  "../bench/bench_linear_rewriting"
  "../bench/bench_linear_rewriting.pdb"
  "CMakeFiles/bench_linear_rewriting.dir/bench_linear_rewriting.cc.o"
  "CMakeFiles/bench_linear_rewriting.dir/bench_linear_rewriting.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linear_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
