# Empty dependencies file for bench_linear_rewriting.
# This may be replaced when dependencies are built.
