file(REMOVE_RECURSE
  "../bench/bench_omq_dichotomy"
  "../bench/bench_omq_dichotomy.pdb"
  "CMakeFiles/bench_omq_dichotomy.dir/bench_omq_dichotomy.cc.o"
  "CMakeFiles/bench_omq_dichotomy.dir/bench_omq_dichotomy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_omq_dichotomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
