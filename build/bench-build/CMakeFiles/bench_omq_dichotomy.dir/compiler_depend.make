# Empty compiler generated dependencies file for bench_omq_dichotomy.
# This may be replaced when dependencies are built.
