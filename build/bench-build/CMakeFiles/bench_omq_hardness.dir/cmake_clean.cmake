file(REMOVE_RECURSE
  "../bench/bench_omq_hardness"
  "../bench/bench_omq_hardness.pdb"
  "CMakeFiles/bench_omq_hardness.dir/bench_omq_hardness.cc.o"
  "CMakeFiles/bench_omq_hardness.dir/bench_omq_hardness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_omq_hardness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
