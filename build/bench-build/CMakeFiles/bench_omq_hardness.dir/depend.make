# Empty dependencies file for bench_omq_hardness.
# This may be replaced when dependencies are built.
