file(REMOVE_RECURSE
  "../bench/bench_containment"
  "../bench/bench_containment.pdb"
  "CMakeFiles/bench_containment.dir/bench_containment.cc.o"
  "CMakeFiles/bench_containment.dir/bench_containment.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
