file(REMOVE_RECURSE
  "../bench/bench_grohe_dichotomy"
  "../bench/bench_grohe_dichotomy.pdb"
  "CMakeFiles/bench_grohe_dichotomy.dir/bench_grohe_dichotomy.cc.o"
  "CMakeFiles/bench_grohe_dichotomy.dir/bench_grohe_dichotomy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grohe_dichotomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
