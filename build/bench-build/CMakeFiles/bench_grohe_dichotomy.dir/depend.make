# Empty dependencies file for bench_grohe_dichotomy.
# This may be replaced when dependencies are built.
