file(REMOVE_RECURSE
  "../bench/bench_finite_witness"
  "../bench/bench_finite_witness.pdb"
  "CMakeFiles/bench_finite_witness.dir/bench_finite_witness.cc.o"
  "CMakeFiles/bench_finite_witness.dir/bench_finite_witness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_finite_witness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
