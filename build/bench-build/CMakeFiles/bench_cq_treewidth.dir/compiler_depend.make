# Empty compiler generated dependencies file for bench_cq_treewidth.
# This may be replaced when dependencies are built.
