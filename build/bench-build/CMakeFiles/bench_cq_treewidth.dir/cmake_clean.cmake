file(REMOVE_RECURSE
  "../bench/bench_cq_treewidth"
  "../bench/bench_cq_treewidth.pdb"
  "CMakeFiles/bench_cq_treewidth.dir/bench_cq_treewidth.cc.o"
  "CMakeFiles/bench_cq_treewidth.dir/bench_cq_treewidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cq_treewidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
