file(REMOVE_RECURSE
  "../bench/bench_omq_fpt"
  "../bench/bench_omq_fpt.pdb"
  "CMakeFiles/bench_omq_fpt.dir/bench_omq_fpt.cc.o"
  "CMakeFiles/bench_omq_fpt.dir/bench_omq_fpt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_omq_fpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
