# Empty compiler generated dependencies file for bench_omq_fpt.
# This may be replaced when dependencies are built.
