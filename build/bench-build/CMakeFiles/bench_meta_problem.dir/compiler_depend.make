# Empty compiler generated dependencies file for bench_meta_problem.
# This may be replaced when dependencies are built.
