file(REMOVE_RECURSE
  "../bench/bench_meta_problem"
  "../bench/bench_meta_problem.pdb"
  "CMakeFiles/bench_meta_problem.dir/bench_meta_problem.cc.o"
  "CMakeFiles/bench_meta_problem.dir/bench_meta_problem.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_meta_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
