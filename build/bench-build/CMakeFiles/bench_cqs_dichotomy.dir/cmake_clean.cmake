file(REMOVE_RECURSE
  "../bench/bench_cqs_dichotomy"
  "../bench/bench_cqs_dichotomy.pdb"
  "CMakeFiles/bench_cqs_dichotomy.dir/bench_cqs_dichotomy.cc.o"
  "CMakeFiles/bench_cqs_dichotomy.dir/bench_cqs_dichotomy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cqs_dichotomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
