# Empty compiler generated dependencies file for constraint_optimization.
# This may be replaced when dependencies are built.
