file(REMOVE_RECURSE
  "CMakeFiles/constraint_optimization.dir/constraint_optimization.cpp.o"
  "CMakeFiles/constraint_optimization.dir/constraint_optimization.cpp.o.d"
  "constraint_optimization"
  "constraint_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
