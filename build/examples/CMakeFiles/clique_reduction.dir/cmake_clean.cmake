file(REMOVE_RECURSE
  "CMakeFiles/clique_reduction.dir/clique_reduction.cpp.o"
  "CMakeFiles/clique_reduction.dir/clique_reduction.cpp.o.d"
  "clique_reduction"
  "clique_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clique_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
