file(REMOVE_RECURSE
  "CMakeFiles/semantic_treewidth.dir/semantic_treewidth.cpp.o"
  "CMakeFiles/semantic_treewidth.dir/semantic_treewidth.cpp.o.d"
  "semantic_treewidth"
  "semantic_treewidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_treewidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
