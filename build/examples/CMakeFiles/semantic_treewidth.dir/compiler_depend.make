# Empty compiler generated dependencies file for semantic_treewidth.
# This may be replaced when dependencies are built.
