file(REMOVE_RECURSE
  "CMakeFiles/finite_models.dir/finite_models.cpp.o"
  "CMakeFiles/finite_models.dir/finite_models.cpp.o.d"
  "finite_models"
  "finite_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finite_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
