# Empty dependencies file for finite_models.
# This may be replaced when dependencies are built.
