file(REMOVE_RECURSE
  "CMakeFiles/university_omq.dir/university_omq.cpp.o"
  "CMakeFiles/university_omq.dir/university_omq.cpp.o.d"
  "university_omq"
  "university_omq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_omq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
