# Empty compiler generated dependencies file for university_omq.
# This may be replaced when dependencies are built.
