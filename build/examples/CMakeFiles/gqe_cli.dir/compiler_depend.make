# Empty compiler generated dependencies file for gqe_cli.
# This may be replaced when dependencies are built.
