file(REMOVE_RECURSE
  "CMakeFiles/gqe_cli.dir/gqe_cli.cpp.o"
  "CMakeFiles/gqe_cli.dir/gqe_cli.cpp.o.d"
  "gqe_cli"
  "gqe_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
