// Ablation: the treewidth toolbox underlying every semantic-treewidth
// decision — exact Held–Karp DP vs min-fill / min-degree heuristics.
// Rows: width found per algorithm and time, on the graph families the
// paper's constructions use (grids, cliques, random).

#include <cstdio>

#include "graph/treewidth.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

int WidthFromOrder(const Graph& g, const std::vector<int>& order) {
  return DecompositionFromEliminationOrder(g, order).Width();
}

void Run() {
  struct Case {
    std::string name;
    Graph graph;
    int known;  // -1 if unknown
  };
  std::vector<Case> cases = {
      {"path-12", Graph::Path(12), 1},
      {"cycle-12", Graph::Cycle(12), 2},
      {"grid-3x5", Graph::Grid(3, 5), 3},
      {"grid-4x4", Graph::Grid(4, 4), 4},
      {"clique-8", Graph::Clique(8), 7},
      {"G(14,0.3)", RandomGraph(14, 30, 77), -1},
      {"G(14,0.6)", RandomGraph(14, 60, 78), -1},
  };
  ReportTable table({"graph", "known tw", "exact", "exact ms", "min-fill",
                     "min-degree", "degeneracy lb"});
  for (const Case& c : cases) {
    Stopwatch w;
    TreewidthOptions options;
    options.exact_vertex_limit = 16;
    TreewidthResult exact = ComputeTreewidth(c.graph, options);
    double exact_ms = w.ElapsedMs();
    int min_fill = WidthFromOrder(c.graph, MinFillOrder(c.graph));
    int min_degree = WidthFromOrder(c.graph, MinDegreeOrder(c.graph));
    table.AddRow({c.name,
                  c.known >= 0 ? ReportTable::Cell(c.known) : std::string("?"),
                  exact.exact() ? ReportTable::Cell(exact.upper_bound)
                                : std::string("(heuristic)"),
                  ReportTable::Cell(exact_ms), ReportTable::Cell(min_fill),
                  ReportTable::Cell(min_degree),
                  ReportTable::Cell(Degeneracy(c.graph))});
    if (c.known >= 0 && exact.exact() && exact.upper_bound != c.known) {
      std::printf("MISMATCH on %s!\n", c.name.c_str());
    }
  }
  table.Print("Ablation: treewidth algorithms (exact DP vs heuristics)");
}

}  // namespace
}  // namespace gqe

int main() {
  gqe::Run();
  return 0;
}
