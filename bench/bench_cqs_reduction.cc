// E13 (Theorem 7.1, Section 7, Theorem 5.13): the constraint-compatible
// variant D* — the fpt-reduction from p-Clique to CQS evaluation. The
// constructed database must *satisfy the integrity constraints* and the
// query must hold iff the graph has a k-clique.

#include <cstdio>

#include "chase/chase.h"
#include "grohe/clique.h"
#include "grohe/reduction.h"
#include "parser/parser.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

void Run() {
  // Frontier-guarded decorating constraints (FG_1, single-head):
  // every h/v edge is also a generic edge.
  TgdSet sigma = ParseTgds(R"(
    e13h(X, Y) -> e13e(X, Y).
    e13v(X, Y) -> e13e(X, Y).
  )");
  CliqueReduction r = MakeGridCliqueReduction(3, 3, 3, "e13h", "e13v", sigma);

  ReportTable table({"graph", "n", "|D*|", "D* |= Sigma", "clique?",
                     "D* |= q?", "agree", "ms"});
  struct Case {
    std::string name;
    Graph graph;
  };
  std::vector<Case> cases;
  for (int seed = 0; seed < 4; ++seed) {
    cases.push_back({"G(7,0.45) #" + std::to_string(seed),
                     RandomGraph(7, 45, 500 + seed)});
  }
  cases.push_back({"planted(8,0.25,k=3)", PlantedCliqueGraph(8, 25, 3, 9)});
  cases.push_back({"bipartite K3,3", [] {
                     Graph g(6);
                     for (int u = 0; u < 3; ++u) {
                       for (int v = 3; v < 6; ++v) g.AddEdge(u, v);
                     }
                     return g;
                   }()});

  bool all_ok = true;
  for (const Case& c : cases) {
    Stopwatch w;
    ReductionOutcome outcome = RunVariantReduction(c.graph, r);
    double ms = w.ElapsedMs();
    bool clique = HasClique(c.graph, r.k);
    bool agree = clique == outcome.query_holds;
    all_ok = all_ok && agree && outcome.satisfies_sigma;
    table.AddRow({c.name, ReportTable::Cell(c.graph.num_vertices()),
                  ReportTable::Cell(outcome.dstar_atoms),
                  ReportTable::Cell(outcome.satisfies_sigma),
                  ReportTable::Cell(clique),
                  ReportTable::Cell(outcome.query_holds),
                  ReportTable::Cell(agree), ReportTable::Cell(ms)});
  }
  table.Print(
      "E13 / Thm 7.1 + 5.13: constraint-compatible clique reduction for "
      "CQSs");
  std::printf("\nAll rows agree and satisfy Sigma: %s\n",
              all_ok ? "YES" : "NO");
}

}  // namespace
}  // namespace gqe

int main() {
  gqe::Run();
  return 0;
}
