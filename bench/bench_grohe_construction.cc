// E12 (Theorem 6.1, Section 6.1): Grohe's database D_G — properties and
// the (*) equivalence "G has a k-clique iff D_G |= Q". Series over random
// graphs and planted cliques: construction size/time, projection
// validation, and agreement between the clique oracle and query
// evaluation.

#include <cstdio>

#include "grohe/clique.h"
#include "grohe/grohe_db.h"
#include "grohe/reduction.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

void Run() {
  CliqueReduction r = MakeGridCliqueReduction(3, 3, 3, "e12h", "e12v");
  ReportTable table({"graph", "n", "edges", "build ms", "|D_G|", "eval ms",
                     "clique?", "D_G |= q?", "agree"});
  struct Case {
    std::string name;
    Graph graph;
  };
  std::vector<Case> cases;
  for (int seed = 0; seed < 4; ++seed) {
    cases.push_back({"G(7,0.4) #" + std::to_string(seed),
                     RandomGraph(7, 40, 100 + seed)});
  }
  cases.push_back({"planted(9,0.2,k=3)", PlantedCliqueGraph(9, 20, 3, 7)});
  cases.push_back({"C7 (triangle-free)", Graph::Cycle(7)});

  bool all_agree = true;
  for (const Case& c : cases) {
    Stopwatch build_watch;
    GroheDatabase grohe = BuildGroheDatabase(c.graph, r.k, r.d, r.mu);
    double build_ms = build_watch.ElapsedMs();
    std::string why;
    if (!grohe.ValidateProjection(r.d, &why)) {
      std::printf("PROJECTION INVALID (%s): %s\n", c.name.c_str(),
                  why.c_str());
    }
    Stopwatch eval_watch;
    ReductionOutcome outcome = RunGroheReduction(c.graph, r);
    double eval_ms = eval_watch.ElapsedMs();
    bool clique = HasClique(c.graph, r.k);
    bool agree = clique == outcome.query_holds;
    all_agree = all_agree && agree;
    table.AddRow({c.name, ReportTable::Cell(c.graph.num_vertices()),
                  ReportTable::Cell(c.graph.num_edges()),
                  ReportTable::Cell(build_ms),
                  ReportTable::Cell(outcome.dstar_atoms),
                  ReportTable::Cell(eval_ms), ReportTable::Cell(clique),
                  ReportTable::Cell(outcome.query_holds),
                  ReportTable::Cell(agree)});
  }
  table.Print("E12 / Thm 6.1: Grohe construction D_G and the (*) equivalence");
  std::printf("\nAll rows agree: %s\n", all_agree ? "YES" : "NO");
}

}  // namespace
}  // namespace gqe

int main() {
  gqe::Run();
  return 0;
}
