// E14 (Theorem 6.7 / Lemma 6.6 / Proposition 5.8): strong finite
// controllability in practice — finite witnesses M(D, Σ, n) for guarded
// sets with infinite chases, and the OMQ -> CQS reduction D* built from
// them. Rows: witness sizes/folds, validation, and the Lemma 6.8
// identity Q(D) = q(D*).

#include <cstdio>

#include "chase/chase.h"
#include "fc/witness.h"
#include "omq/evaluation.h"
#include "parser/parser.h"
#include "query/evaluation.h"
#include "workload/report.h"

namespace gqe {
namespace {

void Run() {
  // (a) Witness construction across n for an infinite-chase set.
  {
    TgdSet sigma = ParseTgds("e14p(X) -> e14par(X, Y), e14p(Y).");
    Instance db = ParseDatabase("e14p(root).");
    ReportTable table({"n", "model facts", "folds", "is model",
                       "agrees (path q)", "agrees (cycle q)"});
    UCQ path_q = ParseUcq("e14q1() :- e14par(X, Y), e14par(Y, Z).");
    UCQ cycle_q = ParseUcq("e14q2() :- e14par(X, Y), e14par(Y, X).");
    for (int n : {1, 2, 3, 4}) {
      FiniteWitness witness = BuildFiniteWitness(db, sigma, n);
      table.AddRow(
          {ReportTable::Cell(n), ReportTable::Cell(witness.model.size()),
           ReportTable::Cell(witness.folds),
           ReportTable::Cell(witness.is_model),
           ReportTable::Cell(WitnessAgreesOnQuery(witness, db, sigma, path_q)),
           ReportTable::Cell(
               n >= 2 ? WitnessAgreesOnQuery(witness, db, sigma, cycle_q)
                      : true)});
    }
    table.Print("E14a / Thm 6.7: finite witnesses M(D, Sigma, n) by folding");
  }
  // (b) The Proposition 5.8 reduction.
  {
    TgdSet sigma = ParseTgds(R"(
      e14emp(X) -> e14boss(X, Y), e14emp(Y).
      e14boss(X, Y) -> e14senior(Y).
    )");
    ReportTable table({"|D|", "witnesses", "|D*|", "D* |= Sigma", "exact",
                       "Q(D) = q(D*)"});
    for (int n : {1, 3, 6}) {
      Instance db;
      for (int i = 0; i < n; ++i) {
        db.Insert(Atom::Make("e14emp",
                             {Term::Constant("w" + std::to_string(i))}));
      }
      UCQ q = ParseUcq("e14q3(X) :- e14boss(X, Y), e14senior(Y).");
      Omq omq = Omq::WithFullDataSchema(sigma, q);
      OmqToCqsReduction reduction = ReduceOmqToCqs(omq, db);
      bool satisfies = Satisfies(reduction.dstar, sigma);
      auto certain = EvaluateOmq(omq, db).answers;
      std::vector<std::vector<Term>> closed;
      for (auto& tuple : EvaluateUCQ(q, reduction.dstar)) {
        bool over_db = true;
        for (Term t : tuple) {
          if (!db.InDomain(t)) over_db = false;
        }
        if (over_db) closed.push_back(std::move(tuple));
      }
      table.AddRow({ReportTable::Cell(db.size()),
                    ReportTable::Cell(reduction.witness_count),
                    ReportTable::Cell(reduction.dstar.size()),
                    ReportTable::Cell(satisfies),
                    ReportTable::Cell(reduction.exact),
                    ReportTable::Cell(closed == certain)});
    }
    table.Print(
        "E14b / Prop 5.8 + Lemma 6.8: OMQ -> CQS reduction via finite "
        "witnesses");
  }
}

}  // namespace
}  // namespace gqe

int main() {
  gqe::Run();
  return 0;
}
