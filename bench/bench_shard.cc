// Sharded-saturation benchmark + chaos harness driver. Three modes:
//
// Default: a shard-scaling table (shard counts {1, 2, 4, 8} over a
// join-heavy transitive closure and the university ontology, with a
// bit-identity cross-check against the in-process chase) and a
// recovery-latency table (one injected fault of each kind — SIGKILL,
// RLIMIT_AS OOM, SIGSTOP stall, corrupt exchange — with respawn counts
// and recovery wall time).
//
// --json: the machine-readable quick tier, written as BENCH_shard.json
// (ns/op, facts/sec per shard count, plus recovery latency per fault
// kind). Keys are stable across PRs.
//
// --checkpoint-dir=PATH: durable sharded mode for the chaos smoke. The
// workload is the exact deterministic transitive-closure chain
// bench_chase's durable mode runs (--durable-n, default 200), so the
// "final:" line — status/rounds/facts/CRC-32 — must be byte-identical to
// bench_chase's for the same n, at any --shards=N, after any injected
// fault (--chaos-kill/--chaos-oom/--chaos-stall/--chaos-corrupt=
// ROUND:SHARD), and across a kill -9 + resume with a different shard
// count. That invariance is what scripts/shard_chaos_smoke.sh diffs.
//
// --storage: all of the above over the storage-partitioned engine
// (shard/storage_shard.h) instead of the fork-per-round one: long-lived
// workers owning durable instance fragments (--state-dir=PATH, default
// <checkpoint-dir>/storage in durable mode), faults optionally pinned to
// a protocol phase with --chaos-phase=load|discover, and mid-run
// resharding with --reshard-at=ROUND --reshard-to=N. The same "final:"
// invariance holds; scripts/storage_shard_smoke.sh diffs it.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/serialize.h"
#include "chase/chase.h"
#include "chase/checkpoint.h"
#include "parser/parser.h"
#include "shard/shard_chase.h"
#include "shard/storage_shard.h"
#include "workload/report.h"

namespace gqe {
namespace {

ExecutionBudget g_budget;
BenchWatchdog g_watchdog;
CheckpointFlags g_checkpoint;
BenchJsonFlags g_json;
int g_durable_n = 200;
int g_shards = 1;
bool g_storage = false;
std::string g_state_dir;
int64_t g_reshard_at = -1;
int g_reshard_to = 0;
StorageFault::Phase g_chaos_phase = StorageFault::Phase::kDiscover;
std::vector<ShardFault> g_chaos;

TgdSet TransitiveClosure() {
  // Same rule text as bench_chase's durable workload: the final CRC of a
  // sharded durable run must be diffable against the plain engine's.
  return ParseTgds("e3e(X, Y), e3e(Y, Z) -> e3e(X, Z).");
}

Instance ChainDatabase(int n) {
  Instance db;
  for (int i = 0; i < n; ++i) {
    db.Insert(Atom::Make("e3e",
                         {Term::Constant("a" + std::to_string(i)),
                          Term::Constant("a" + std::to_string(i + 1))}));
  }
  return db;
}

TgdSet UniversityOntology() {
  return ParseTgds(R"(
    e3grad(X) -> e3stud(X).
    e3stud(X) -> e3enr(X, U), e3uni(U).
    e3enr(X, U) -> e3active(X).
  )");
}

Instance UniversityDatabase(int n) {
  Instance db;
  for (int i = 0; i < n; ++i) {
    db.Insert(Atom::Make("e3grad", {Term::Constant("s" + std::to_string(i))}));
  }
  return db;
}

ShardOptions BenchShardOptions(int shards) {
  ShardOptions options;
  options.shards = shards;
  options.heartbeat_timeout_ms = 2000.0;
  options.backoff_base_ms = 1.0;
  options.backoff_cap_ms = 20.0;
  return options;
}

StorageShardOptions BenchStorageOptions(int shards) {
  StorageShardOptions options;
  options.shards = shards;
  options.heartbeat_timeout_ms = 2000.0;
  options.backoff_base_ms = 1.0;
  options.backoff_cap_ms = 20.0;
  return options;
}

/// Maps the parsed --chaos-* flags onto storage faults, pinned to the
/// --chaos-phase protocol phase (the fault kinds share enum values).
std::vector<StorageFault> StorageChaos() {
  std::vector<StorageFault> faults;
  for (const ShardFault& fault : g_chaos) {
    StorageFault storage;
    storage.boundary = fault.round;
    storage.shard = fault.shard;
    storage.attempt = fault.attempt;
    storage.kind = static_cast<StorageFault::Kind>(fault.kind);
    storage.phase = g_chaos_phase;
    faults.push_back(storage);
  }
  return faults;
}

bool SameInstance(const ChaseResult& got, const ChaseResult& want) {
  if (got.instance.size() != want.instance.size()) return false;
  for (size_t i = 0; i < got.instance.size(); ++i) {
    if (!(got.instance.atom(i) == want.instance.atom(i))) return false;
  }
  return got.levels == want.levels && got.complete == want.complete;
}

void PrintShardScaling() {
  struct Workload {
    const char* name;
    Instance db;
    TgdSet sigma;
  };
  std::vector<Workload> workloads;
  workloads.push_back(
      {"transitive closure n=40", ChainDatabase(40), TransitiveClosure()});
  workloads.push_back(
      {"university n=512", UniversityDatabase(512), UniversityOntology()});

  ReportTable table({"workload", "shards", "chase ms", "speedup", "workers",
                     "exchanged KB", "identical"});
  for (Workload& w : workloads) {
    const uint32_t null_base = Term::NextNullId();
    Term::SetNextNullId(null_base);
    ChaseOptions chase_options;
    chase_options.budget = g_budget;
    ChaseResult reference = Chase(w.db, w.sigma, chase_options);
    g_watchdog.Record(std::string(w.name) + " in-process",
                      reference.outcome);
    double base_ms = 0.0;
    for (int shards : {1, 2, 4, 8}) {
      Term::SetNextNullId(null_base);
      ShardStats stats;
      Stopwatch watch;
      ChaseResult result = ShardedChase(w.db, w.sigma, chase_options,
                                        BenchShardOptions(shards), &stats);
      const double ms = watch.ElapsedMs();
      g_watchdog.Record(std::string(w.name) + " shards=" +
                            std::to_string(shards),
                        result.outcome);
      if (shards == 1) base_ms = ms;
      table.AddRow({w.name, ReportTable::Cell(shards),
                    ReportTable::Cell(ms),
                    ReportTable::Cell(ms > 0 ? base_ms / ms : 0.0),
                    ReportTable::Cell(stats.workers_spawned),
                    ReportTable::Cell(
                        static_cast<double>(stats.exchanged_bytes) / 1024.0),
                    ReportTable::Cell(SameInstance(result, reference))});
    }
    Term::SetNextNullId(null_base);
  }
  table.Print(
      "E7: shard scaling (hash-partitioned multi-process saturation)");
}

void PrintRecoveryLatency() {
  Instance db = ChainDatabase(40);
  TgdSet sigma = TransitiveClosure();
  const uint32_t null_base = Term::NextNullId();
  Term::SetNextNullId(null_base);
  ChaseOptions chase_options;
  chase_options.budget = g_budget;
  ChaseResult reference = Chase(db, sigma, chase_options);

  ReportTable table({"fault", "chase ms", "recovery ms", "backoff ms",
                     "respawns", "events", "identical"});
  const ShardFault::Kind kinds[] = {
      ShardFault::Kind::kKill, ShardFault::Kind::kOom,
      ShardFault::Kind::kStall, ShardFault::Kind::kCorrupt};
  for (ShardFault::Kind kind : kinds) {
    ShardOptions options = BenchShardOptions(4);
    options.heartbeat_timeout_ms = 250.0;  // stalls resolve quickly
    ShardFault fault;
    fault.round = 1;
    fault.shard = 0;
    fault.attempt = 1;
    fault.kind = kind;
    options.faults.push_back(fault);

    Term::SetNextNullId(null_base);
    ShardStats stats;
    Stopwatch watch;
    ChaseResult result =
        ShardedChase(db, sigma, chase_options, options, &stats);
    const double ms = watch.ElapsedMs();
    g_watchdog.Record(std::string("chaos ") + ShardFaultKindName(kind),
                      result.outcome);
    table.AddRow({ShardFaultKindName(kind), ReportTable::Cell(ms),
                  ReportTable::Cell(stats.recovery_ms),
                  ReportTable::Cell(stats.backoff_wait_ms),
                  ReportTable::Cell(stats.respawns),
                  ReportTable::Cell(stats.events.size()),
                  ReportTable::Cell(SameInstance(result, reference))});
  }
  Term::SetNextNullId(null_base);
  table.Print("E7b: recovery latency per injected fault (4 shards)");
}

/// Storage partitioning: wall time, fragment sizes and worker RSS per
/// shard count — the max-instance-fragment-vs-shard-count story.
void PrintStorageScaling() {
  Instance db = ChainDatabase(40);
  TgdSet sigma = TransitiveClosure();
  const uint32_t null_base = Term::NextNullId();
  Term::SetNextNullId(null_base);
  ChaseOptions chase_options;
  chase_options.budget = g_budget;
  ChaseResult reference = Chase(db, sigma, chase_options);
  const size_t total_facts = reference.instance.size();

  ReportTable table({"shards", "chase ms", "max fragment", "of total %",
                     "worker RSS MB", "exchanged KB", "identical"});
  for (int shards : {1, 2, 4, 8}) {
    Term::SetNextNullId(null_base);
    StorageShardStats stats;
    Stopwatch watch;
    ChaseResult result = StorageShardChase(
        db, sigma, chase_options, BenchStorageOptions(shards), &stats);
    const double ms = watch.ElapsedMs();
    g_watchdog.Record("storage shards=" + std::to_string(shards),
                      result.outcome);
    table.AddRow(
        {ReportTable::Cell(shards), ReportTable::Cell(ms),
         ReportTable::Cell(stats.max_fragment_facts),
         ReportTable::Cell(total_facts > 0
                               ? 100.0 * stats.max_fragment_facts /
                                     static_cast<double>(total_facts)
                               : 0.0),
         ReportTable::Cell(static_cast<double>(stats.max_worker_rss_kb) /
                           1024.0),
         ReportTable::Cell(static_cast<double>(stats.exchanged_bytes) /
                           1024.0),
         ReportTable::Cell(SameInstance(result, reference))});
  }
  Term::SetNextNullId(null_base);
  table.Print(
      "E7c: storage partitioning (per-shard fragments, owner exchange)");
}

/// Storage-shard loss recovery: one injected fault of each kind in each
/// protocol phase, with rebuild counts and recovery wall time.
void PrintStorageRecovery() {
  Instance db = ChainDatabase(40);
  TgdSet sigma = TransitiveClosure();
  const uint32_t null_base = Term::NextNullId();
  Term::SetNextNullId(null_base);
  ChaseOptions chase_options;
  chase_options.budget = g_budget;
  ChaseResult reference = Chase(db, sigma, chase_options);

  ReportTable table({"fault", "phase", "chase ms", "recovery ms",
                     "rebuilds", "respawns", "identical"});
  const StorageFault::Kind kinds[] = {
      StorageFault::Kind::kKill, StorageFault::Kind::kOom,
      StorageFault::Kind::kStall, StorageFault::Kind::kCorrupt};
  for (StorageFault::Phase phase :
       {StorageFault::Phase::kLoad, StorageFault::Phase::kDiscover}) {
    for (StorageFault::Kind kind : kinds) {
      StorageShardOptions options = BenchStorageOptions(4);
      options.heartbeat_timeout_ms = 250.0;  // stalls resolve quickly
      options.faults.push_back({1, 0, 1, kind, phase});

      Term::SetNextNullId(null_base);
      StorageShardStats stats;
      Stopwatch watch;
      ChaseResult result =
          StorageShardChase(db, sigma, chase_options, options, &stats);
      const double ms = watch.ElapsedMs();
      g_watchdog.Record(std::string("storage chaos ") +
                            StorageFaultKindName(kind) + "/" +
                            StorageFaultPhaseName(phase),
                        result.outcome);
      table.AddRow({StorageFaultKindName(kind), StorageFaultPhaseName(phase),
                    ReportTable::Cell(ms),
                    ReportTable::Cell(stats.recovery_ms),
                    ReportTable::Cell(stats.rebuilds),
                    ReportTable::Cell(stats.respawns),
                    ReportTable::Cell(SameInstance(result, reference))});
    }
  }
  Term::SetNextNullId(null_base);
  table.Print("E7d: storage-shard loss recovery (4 shards)");
}

int RunJsonBench() {
  BenchJson json("shard", g_json);
  Instance db = ChainDatabase(40);
  TgdSet sigma = TransitiveClosure();
  ChaseOptions chase_options;
  chase_options.budget = g_budget;
  const uint32_t null_base = Term::NextNullId();

  for (int shards : {1, 2, 4, 8}) {
    const std::string key = "shard_tc/40/s" + std::to_string(shards);
    Term::SetNextNullId(null_base);
    ChaseResult warm =
        ShardedChase(db, sigma, chase_options, BenchShardOptions(shards));
    g_watchdog.Record(key, warm.outcome);
    const double facts = static_cast<double>(warm.instance.size());
    int iters = 0;
    Stopwatch watch;
    do {
      Term::SetNextNullId(null_base);
      ChaseResult result =
          ShardedChase(db, sigma, chase_options, BenchShardOptions(shards));
      benchmark::DoNotOptimize(result.instance.size());
      ++iters;
    } while (iters < 3 || watch.ElapsedMs() < 200.0);
    const double ns_per_op = watch.ElapsedMs() * 1e6 / iters;
    json.Add(key, ns_per_op, facts * 1e9 / ns_per_op);
    std::printf("%-20s %12.0f ns/op  %10.0f facts/s  (%d iters)\n",
                key.c_str(), ns_per_op, facts * 1e9 / ns_per_op, iters);
  }

  // Recovery latency: one run per fault kind, ns/op is the whole chase
  // wall time with the fault injected at round 1.
  const ShardFault::Kind kinds[] = {
      ShardFault::Kind::kKill, ShardFault::Kind::kOom,
      ShardFault::Kind::kStall, ShardFault::Kind::kCorrupt};
  for (ShardFault::Kind kind : kinds) {
    const std::string key =
        std::string("shard_recovery/") + ShardFaultKindName(kind);
    ShardOptions options = BenchShardOptions(4);
    options.heartbeat_timeout_ms = 250.0;
    options.faults.push_back({1, 0, 1, kind});
    Term::SetNextNullId(null_base);
    ShardStats stats;
    Stopwatch watch;
    ChaseResult result = ShardedChase(db, sigma, chase_options, options,
                                      &stats);
    const double ms = watch.ElapsedMs();
    g_watchdog.Record(key, result.outcome);
    json.Add(key, ms * 1e6, stats.recovery_ms);
    std::printf("%-24s %10.1f ms chase  %8.1f ms recovery  %zu respawns\n",
                key.c_str(), ms, stats.recovery_ms, stats.respawns);
  }
  // Storage partitioning: wall time per shard count, plus the memory
  // story — the largest per-shard fragment and worker RSS at 8 shards
  // against the whole instance in one process.
  size_t total_facts = 0;
  for (int shards : {1, 2, 4, 8}) {
    const std::string key = "storage_tc/40/s" + std::to_string(shards);
    Term::SetNextNullId(null_base);
    StorageShardStats stats;
    Stopwatch watch;
    ChaseResult result = StorageShardChase(db, sigma, chase_options,
                                           BenchStorageOptions(shards),
                                           &stats);
    const double ms = watch.ElapsedMs();
    g_watchdog.Record(key, result.outcome);
    total_facts = result.instance.size();
    const double facts = static_cast<double>(result.instance.size());
    json.Add(key, ms * 1e6, facts * 1e3 / ms);
    std::printf("%-20s %12.0f ns/op  %10.0f facts/s  fragment=%zu  "
                "rss=%ldKB\n",
                key.c_str(), ms * 1e6, facts * 1e3 / ms,
                stats.max_fragment_facts, stats.max_worker_rss_kb);
    if (shards == 8) {
      json.Meta("storage_s8_max_fragment_facts",
                static_cast<double>(stats.max_fragment_facts));
      json.Meta("storage_s8_max_worker_rss_kb",
                static_cast<double>(stats.max_worker_rss_kb));
    }
  }
  json.Meta("storage_total_facts", static_cast<double>(total_facts));
  json.Meta("single_process_rss_kb", static_cast<double>(PeakRssKb()));

  // Storage-shard loss recovery per fault kind (discover phase — the
  // fragile window between a shard's ack and the round commit).
  for (ShardFault::Kind kind : kinds) {
    const std::string key =
        std::string("storage_recovery/") + ShardFaultKindName(kind);
    StorageShardOptions options = BenchStorageOptions(4);
    options.heartbeat_timeout_ms = 250.0;
    options.faults.push_back({1, 0, 1,
                              static_cast<StorageFault::Kind>(kind),
                              StorageFault::Phase::kDiscover});
    Term::SetNextNullId(null_base);
    StorageShardStats stats;
    Stopwatch watch;
    ChaseResult result =
        StorageShardChase(db, sigma, chase_options, options, &stats);
    const double ms = watch.ElapsedMs();
    g_watchdog.Record(key, result.outcome);
    json.Add(key, ms * 1e6, stats.recovery_ms);
    std::printf("%-26s %10.1f ms chase  %8.1f ms recovery  %zu rebuilds\n",
                key.c_str(), ms, stats.recovery_ms, stats.rebuilds);
  }

  Term::SetNextNullId(null_base);
  json.Write();
  g_watchdog.Print("E7 watchdog: timeout vs complete");
  return 0;
}

/// Durable sharded mode for scripts/shard_chaos_smoke.sh: the same
/// deterministic chain chase as bench_chase's durable mode, partitioned
/// across --shards workers, resumable from --checkpoint-dir, with
/// optional injected faults. The "final:" line format is bench_chase's.
int RunDurableShardedChase() {
  Instance db = ChainDatabase(g_durable_n);
  TgdSet sigma = TransitiveClosure();
  ChaseOptions options;
  options.budget = g_budget;
  options.checkpoint_every = g_checkpoint.every;

  ShardOptions shard_options = BenchShardOptions(g_shards);
  shard_options.faults = g_chaos;

  ResumeInfo info;
  ShardStats stats;
  Stopwatch watch;
  ChaseResult result = ResumeShardedChase(g_checkpoint.dir, db, sigma,
                                          options, shard_options, &info,
                                          &stats);
  const double ms = watch.ElapsedMs();
  g_watchdog.Record("durable sharded chase n=" + std::to_string(g_durable_n),
                    result.outcome);

  std::printf("durable sharded chase: dir=%s every=%d n=%d shards=%d\n",
              g_checkpoint.dir.c_str(), g_checkpoint.every, g_durable_n,
              g_shards);
  std::printf("resume: resumed=%s generation=%llu skipped=%d (%s)\n",
              info.resumed ? "yes" : "no",
              static_cast<unsigned long long>(info.generation),
              info.skipped_generations,
              info.load_status.ok()
                  ? "ok"
                  : SnapshotErrorName(info.load_status.error));
  std::printf("shards: spawned=%zu respawns=%zu deaths=%zu timeouts=%zu "
              "corrupt=%zu fallbacks=%zu exchanged=%zuB\n",
              stats.workers_spawned, stats.respawns, stats.worker_deaths,
              stats.heartbeat_timeouts, stats.corrupt_exchanges,
              stats.inline_fallbacks, stats.exchanged_bytes);
  for (const ShardEvent& event : stats.events) {
    std::printf("shard event: round=%llu shard=%u attempt=%d cause=%s\n",
                static_cast<unsigned long long>(event.round), event.shard,
                event.attempt, event.cause.c_str());
  }
  std::printf("elapsed: %.1f ms\n", ms);

  BinaryWriter writer;
  EncodeInstance(result.instance, &writer);
  std::printf("final: status=%s complete=%s rounds=%llu facts=%zu "
              "levels=%d crc32=%08x\n",
              StatusName(result.outcome.status),
              result.complete ? "yes" : "no",
              static_cast<unsigned long long>(result.rounds_completed),
              result.instance.size(), result.max_level_built,
              Crc32(writer.buffer()));
  g_watchdog.Print("E7 watchdog: timeout vs complete");
  return 0;
}

/// Durable storage-partitioned mode for scripts/storage_shard_smoke.sh:
/// the same deterministic chain chase, fact store hash-partitioned
/// across long-lived workers with durable fragments under --state-dir,
/// resumable from --checkpoint-dir, with phase-pinned injected faults
/// and optional mid-run resharding. Same "final:" line as bench_chase.
int RunDurableStorageChase() {
  Instance db = ChainDatabase(g_durable_n);
  TgdSet sigma = TransitiveClosure();
  ChaseOptions options;
  options.budget = g_budget;
  options.checkpoint_every = g_checkpoint.every;

  StorageShardOptions storage_options = BenchStorageOptions(g_shards);
  storage_options.state_dir =
      g_state_dir.empty() ? g_checkpoint.dir + "/storage" : g_state_dir;
  storage_options.reshard_at_round = g_reshard_at;
  storage_options.reshard_to = g_reshard_to;
  storage_options.faults = StorageChaos();

  ResumeInfo info;
  StorageShardStats stats;
  Stopwatch watch;
  ChaseResult result = ResumeStorageShardChase(
      g_checkpoint.dir, db, sigma, options, storage_options, &info, &stats);
  const double ms = watch.ElapsedMs();
  g_watchdog.Record("durable storage chase n=" + std::to_string(g_durable_n),
                    result.outcome);

  std::printf("durable storage chase: dir=%s state=%s every=%d n=%d "
              "shards=%d\n",
              g_checkpoint.dir.c_str(), storage_options.state_dir.c_str(),
              g_checkpoint.every, g_durable_n, g_shards);
  std::printf("resume: resumed=%s generation=%llu skipped=%d (%s)\n",
              info.resumed ? "yes" : "no",
              static_cast<unsigned long long>(info.generation),
              info.skipped_generations,
              info.load_status.ok()
                  ? "ok"
                  : SnapshotErrorName(info.load_status.error));
  std::printf("storage: spawned=%zu respawns=%zu deaths=%zu timeouts=%zu "
              "corrupt=%zu rebuilds=%zu reseeds=%zu fallbacks=%zu "
              "logs=%zu/%zu fragment=%zu exchanged=%zuB\n",
              stats.workers_spawned, stats.respawns, stats.worker_deaths,
              stats.heartbeat_timeouts, stats.corrupt_replies, stats.rebuilds,
              stats.reseeds, stats.inline_fallbacks, stats.logs_written,
              stats.logs_pruned, stats.max_fragment_facts,
              stats.exchanged_bytes);
  for (const StorageShardEvent& event : stats.events) {
    std::printf("storage event: boundary=%llu shard=%u attempt=%d cause=%s\n",
                static_cast<unsigned long long>(event.boundary), event.shard,
                event.attempt, event.cause.c_str());
  }
  std::printf("elapsed: %.1f ms\n", ms);

  BinaryWriter writer;
  EncodeInstance(result.instance, &writer);
  std::printf("final: status=%s complete=%s rounds=%llu facts=%zu "
              "levels=%d crc32=%08x\n",
              StatusName(result.outcome.status),
              result.complete ? "yes" : "no",
              static_cast<unsigned long long>(result.rounds_completed),
              result.instance.size(), result.max_level_built,
              Crc32(writer.buffer()));
  g_watchdog.Print("E7 watchdog: timeout vs complete");
  return 0;
}

int ParseIntFlag(int* argc, char** argv, const char* name, int default_value) {
  const std::string prefix = std::string(name) + "=";
  int value = default_value;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      value = std::atoi(arg.c_str() + prefix.size());
      continue;
    }
    if (arg == name && i + 1 < *argc) {
      value = std::atoi(argv[++i]);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return value;
}

bool ParseBoolFlag(int* argc, char** argv, const char* name) {
  bool value = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::string(argv[i]) == name) {
      value = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return value;
}

std::string ParseStringFlag(int* argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  std::string value;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return value;
}

/// --chaos-kill=ROUND:SHARD (and -oom/-stall/-corrupt), repeatable; each
/// injects one fault on attempt 1 of that (round, shard).
std::vector<ShardFault> ParseChaosFlags(int* argc, char** argv) {
  struct KindFlag {
    const char* prefix;
    ShardFault::Kind kind;
  };
  const KindFlag kind_flags[] = {
      {"--chaos-kill=", ShardFault::Kind::kKill},
      {"--chaos-oom=", ShardFault::Kind::kOom},
      {"--chaos-stall=", ShardFault::Kind::kStall},
      {"--chaos-corrupt=", ShardFault::Kind::kCorrupt},
  };
  std::vector<ShardFault> faults;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    bool consumed = false;
    for (const KindFlag& flag : kind_flags) {
      if (arg.rfind(flag.prefix, 0) != 0) continue;
      const std::string spec = arg.substr(std::strlen(flag.prefix));
      const size_t colon = spec.find(':');
      ShardFault fault;
      fault.kind = flag.kind;
      fault.round = std::strtoull(spec.c_str(), nullptr, 10);
      fault.shard = colon == std::string::npos
                        ? 0
                        : static_cast<uint32_t>(
                              std::atoi(spec.c_str() + colon + 1));
      fault.attempt = 1;
      faults.push_back(fault);
      consumed = true;
      break;
    }
    if (!consumed) argv[out++] = argv[i];
  }
  *argc = out;
  return faults;
}

}  // namespace
}  // namespace gqe

int main(int argc, char** argv) {
  gqe::g_budget = gqe::ParseBudgetFlags(&argc, argv);
  gqe::g_checkpoint = gqe::ParseCheckpointFlags(&argc, argv);
  gqe::g_json = gqe::ParseBenchJsonFlags(&argc, argv);
  gqe::g_durable_n = gqe::ParseIntFlag(&argc, argv, "--durable-n", 200);
  gqe::g_shards = gqe::ParseIntFlag(&argc, argv, "--shards", 1);
  gqe::g_storage = gqe::ParseBoolFlag(&argc, argv, "--storage");
  gqe::g_state_dir = gqe::ParseStringFlag(&argc, argv, "--state-dir");
  gqe::g_reshard_at = gqe::ParseIntFlag(&argc, argv, "--reshard-at", -1);
  gqe::g_reshard_to = gqe::ParseIntFlag(&argc, argv, "--reshard-to", 0);
  if (gqe::ParseStringFlag(&argc, argv, "--chaos-phase") == "load") {
    gqe::g_chaos_phase = gqe::StorageFault::Phase::kLoad;
  }
  gqe::g_chaos = gqe::ParseChaosFlags(&argc, argv);
  // SIGINT/SIGTERM cancel cooperatively: the coordinator notices at the
  // round barrier, puts every worker down, writes a final checkpoint in
  // durable mode and still reports. (No watchdog threads here: the
  // coordinator forks without exec and must stay single-threaded.)
  gqe::CancelToken cancel = gqe::CancelToken::Create();
  gqe::g_budget.cancel = cancel;
  gqe::InstallBenchSignalHandlers(cancel);
  if (gqe::g_checkpoint.enabled()) {
    return gqe::g_storage ? gqe::RunDurableStorageChase()
                          : gqe::RunDurableShardedChase();
  }
  if (gqe::g_json.enabled) return gqe::RunJsonBench();
  gqe::PrintShardScaling();
  gqe::PrintRecoveryLatency();
  gqe::PrintStorageScaling();
  gqe::PrintStorageRecovery();
  gqe::g_watchdog.Print("E7 watchdog: timeout vs complete");
  return 0;
}
