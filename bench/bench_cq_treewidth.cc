// E1 (Proposition 2.1): bounded-treewidth CQ evaluation runs in
// O(||D||^{k+1} * ||q||). Series: decision time of path (tw 1) and grid
// (tw 2) queries over growing grid databases, for the generic
// backtracking join vs the tree-decomposition DP. The shape to observe:
// both are polynomial, the DP degrades gracefully with k and |D| while
// exhaustive backtracking depends on instance luck.
//
// Uses google-benchmark for the timing series, then prints the summary
// table EXPERIMENTS.md records.

#include <benchmark/benchmark.h>

#include "query/evaluation.h"
#include "query/homomorphism.h"
#include "query/tw_evaluation.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

int g_threads = 1;

void BM_PathQueryTreeDp(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  Instance db = GridDatabase("e1h", "e1v", side, side);
  CQ query = PathQuery("e1h", 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HoldsBooleanCqTreeDp(query, db));
  }
  state.counters["facts"] = static_cast<double>(db.size());
}
BENCHMARK(BM_PathQueryTreeDp)->Arg(8)->Arg(16)->Arg(32);

void BM_PathQueryBacktracking(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  Instance db = GridDatabase("e1h", "e1v", side, side);
  CQ query = PathQuery("e1h", 4);
  HomOptions options;
  options.threads = g_threads;
  for (auto _ : state) {
    HomomorphismSearch search(query.atoms(), db, options);
    benchmark::DoNotOptimize(search.Exists());
  }
  state.counters["facts"] = static_cast<double>(db.size());
}
BENCHMARK(BM_PathQueryBacktracking)->Arg(8)->Arg(16)->Arg(32);

void BM_GridQueryTreeDp(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  Instance db = GridDatabase("e1h", "e1v", side, side);
  CQ query = GridQuery("e1h", "e1v", 2, 3);  // treewidth 2
  for (auto _ : state) {
    benchmark::DoNotOptimize(HoldsBooleanCqTreeDp(query, db));
  }
  state.counters["facts"] = static_cast<double>(db.size());
}
BENCHMARK(BM_GridQueryTreeDp)->Arg(8)->Arg(16);

void PrintSummary() {
  ReportTable table({"query (tw)", "grid side", "|D|", "tree-DP ms",
                     "backtracking ms", "answer"});
  for (int side : {8, 16, 24, 32}) {
    Instance db = GridDatabase("e1h", "e1v", side, side);
    for (int tw : {1, 2}) {
      CQ query = tw == 1 ? PathQuery("e1h", 6) : GridQuery("e1h", "e1v", 2, 4);
      Stopwatch w1;
      bool dp = HoldsBooleanCqTreeDp(query, db);
      double dp_ms = w1.ElapsedMs();
      Stopwatch w2;
      bool bt = HoldsBooleanCQ(query, db);
      double bt_ms = w2.ElapsedMs();
      if (dp != bt) {
        std::printf("DISAGREEMENT at side=%d tw=%d\n", side, tw);
      }
      table.AddRow({tw == 1 ? "path-6 (1)" : "grid-2x4 (2)",
                    ReportTable::Cell(side), ReportTable::Cell(db.size()),
                    ReportTable::Cell(dp_ms), ReportTable::Cell(bt_ms),
                    ReportTable::Cell(dp)});
    }
  }
  table.Print("E1 / Prop 2.1: CQ_k evaluation scales polynomially in ||D||");
}

void PrintHomThreadScaling() {
  // Parallel homomorphism enumeration: split the root candidate set of a
  // join-heavy grid query across workers and FindAll every embedding.
  // The result list must match the sequential order exactly.
  const int side = 24;
  Instance db = GridDatabase("e1h", "e1v", side, side);
  CQ query = GridQuery("e1h", "e1v", 2, 3);
  ReportTable table({"query", "threads", "FindAll ms", "speedup",
                     "embeddings", "identical"});
  double base_ms = 0.0;
  std::vector<Substitution> reference;
  for (int threads : {1, 2, 4, 8}) {
    HomOptions options;
    options.threads = threads;
    HomomorphismSearch search(query.atoms(), db, options);
    Stopwatch w;
    std::vector<Substitution> all = search.FindAll();
    double ms = w.ElapsedMs();
    bool identical = true;
    if (threads == 1) {
      base_ms = ms;
      reference = std::move(all);
    } else {
      identical = all.size() == reference.size();
      for (size_t i = 0; identical && i < all.size(); ++i) {
        identical = all[i].SameMapping(reference[i]);
      }
    }
    table.AddRow({"grid-2x3", ReportTable::Cell(threads),
                  ReportTable::Cell(ms),
                  ReportTable::Cell(ms > 0 ? base_ms / ms : 0.0),
                  ReportTable::Cell(reference.size()),
                  ReportTable::Cell(identical)});
  }
  table.Print("E1b: parallel homomorphism enumeration (HomOptions::threads)");
}

}  // namespace
}  // namespace gqe

int main(int argc, char** argv) {
  gqe::g_threads = gqe::ParseThreadsFlag(&argc, argv, 1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gqe::PrintSummary();
  gqe::PrintHomThreadScaling();
  return 0;
}
