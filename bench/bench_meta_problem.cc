// E9/E15 (Theorems 5.1/5.6/5.10, Example 4.4): the meta problem —
// deciding whether a CQS / full-data-schema OMQ is uniformly
// UCQ_k-equivalent — and the approximation sizes involved.

#include <cstdio>

#include "approx/approximation.h"
#include "approx/meta.h"
#include "cqs/cqs.h"
#include "parser/parser.h"
#include "workload/report.h"

namespace gqe {
namespace {

void Run() {
  struct Case {
    const char* name;
    const char* sigma;
    const char* query;
    int k;
  };
  const Case cases[] = {
      {"Example 4.4 with Sigma, k=1", "e9r2(X) -> e9r4(X).",
       "e9q1() :- e9p(X2,X1), e9p(X4,X1), e9p(X2,X3), e9p(X4,X3), "
       "e9r1(X1), e9r2(X2), e9r3(X3), e9r4(X4).",
       1},
      {"Example 4.4 without Sigma, k=1", "",
       "e9q2() :- e9p(X2,X1), e9p(X4,X1), e9p(X2,X3), e9p(X4,X3), "
       "e9r1(X1), e9r2(X2), e9r3(X3), e9r4(X4).",
       1},
      {"Example 4.4 Q2 ontology, k=1",
       "e9s(X) -> e9r1(X). e9s(X) -> e9r3(X).",
       "e9q3() :- e9p(X2,X1), e9p(X4,X1), e9p(X2,X3), e9p(X4,X3), "
       "e9r1(X1), e9r2(X2), e9r3(X3), e9r4(X4).",
       1},
      {"triangle, k=1", "", "e9q4() :- e9e(X,Y), e9e(Y,Z), e9e(Z,X).", 1},
      {"triangle, k=2", "", "e9q5() :- e9e(X,Y), e9e(Y,Z), e9e(Z,X).", 2},
      {"path-4, k=1", "", "e9q6() :- e9e(X,Y), e9e(Y,Z), e9e(Z,W).", 1},
      {"2x3 grid, k=1", "",
       "e9q7() :- e9h(A,B), e9h(B,C), e9h(D,E2), e9h(E2,F), "
       "e9v(A,D), e9v(B,E2), e9v(C,F).",
       1},
  };
  ReportTable table({"case", "k valid", "approx disjuncts", "equivalent",
                     "rewriting tw", "ms"});
  for (const Case& c : cases) {
    Cqs cqs;
    if (c.sigma[0] != '\0') cqs.sigma = ParseTgds(c.sigma);
    cqs.query = ParseUcq(c.query);
    Stopwatch w;
    MetaResult result = DecideUniformUcqkEquivalenceCqs(cqs, c.k);
    double ms = w.ElapsedMs();
    table.AddRow(
        {c.name, ReportTable::Cell(result.k_in_valid_range),
         ReportTable::Cell(result.approximation_disjuncts),
         ReportTable::Cell(result.equivalent),
         result.equivalent
             ? ReportTable::Cell(result.rewriting.TreewidthOfExistentialPart())
             : std::string("-"),
         ReportTable::Cell(ms)});
  }
  table.Print(
      "E9+E15 / Thms 5.6, 5.10 + Example 4.4: the UCQ_k-equivalence meta "
      "problem");
}

}  // namespace
}  // namespace gqe

int main() {
  gqe::Run();
  return 0;
}
