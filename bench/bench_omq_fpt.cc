// E4 (Proposition 3.3(3)): evaluating OMQs from (G, UCQ_k) is FPT — time
// ||D||^{O(1)} * f(||Q||). Two series: (a) fixed OMQ, growing data (the
// polynomial factor); (b) fixed data, growing query/ontology (the f(||Q||)
// factor). Shape: (a) grows mildly; (b) grows with query size but is
// independent of |D| growth rate.

#include <cstdio>

#include "guarded/omq_eval.h"
#include "omq/evaluation.h"
#include "omq/omq.h"
#include "parser/parser.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

TgdSet Ontology(int depth) {
  // Unary chain + one existential rule: guarded, infinite chase.
  TgdSet sigma = UnaryChainOntology("e4a", depth);
  sigma.push_back(ParseTgds("e4a" + std::to_string(depth) +
                            "(X) -> e4link(X, Y), e4a0(Y).")[0]);
  return sigma;
}

void Run() {
  // (a) Fixed OMQ, growing data.
  {
    ReportTable table({"|D|", "eval ms (tree-DP)", "eval ms (join)",
                       "answers"});
    TgdSet sigma = Ontology(3);
    UCQ q = ParseUcq("e4q(X) :- e4link(X, Y), e4a0(Y).");
    Omq omq = Omq::WithFullDataSchema(sigma, q);
    for (int n : {20, 40, 80, 160}) {
      Instance db;
      WorkloadRng rng(n);
      for (int i = 0; i < n; ++i) {
        db.Insert(Atom::Make("e4a0",
                             {Term::Constant("u" + std::to_string(i))}));
        if (rng.Chance(40)) {
          db.Insert(Atom::Make(
              "e4link", {Term::Constant("u" + std::to_string(i)),
                         Term::Constant("u" + std::to_string(
                                                  rng.Below(n)))}));
        }
      }
      OmqEvalOptions dp_options;
      dp_options.use_tree_dp = true;
      Stopwatch w1;
      OmqEvalResult r1 = EvaluateOmq(omq, db);
      double join_ms = w1.ElapsedMs();
      Stopwatch w2;
      // The decision-problem flavor with the Prop 2.1 DP (candidate 0).
      std::vector<Term> candidate = {db.ActiveDomain()[0]};
      bool holds = OmqHolds(omq, db, candidate, dp_options);
      double dp_ms = w2.ElapsedMs();
      (void)holds;
      table.AddRow({ReportTable::Cell(db.size()), ReportTable::Cell(dp_ms),
                    ReportTable::Cell(join_ms),
                    ReportTable::Cell(r1.answers.size())});
    }
    table.Print("E4a / Prop 3.3(3): fixed OMQ in (G, UCQ_1), growing data");
  }
  // (b) Fixed data, growing OMQ (ontology depth and query length).
  {
    ReportTable table({"ontology depth", "query len", "||Q||", "eval ms"});
    Instance db;
    WorkloadRng rng(7);
    for (int i = 0; i < 60; ++i) {
      db.Insert(Atom::Make("e4a0", {Term::Constant("v" + std::to_string(i))}));
      db.Insert(Atom::Make("e4link",
                           {Term::Constant("v" + std::to_string(i)),
                            Term::Constant("v" + std::to_string(
                                                     rng.Below(60)))}));
    }
    for (int depth : {2, 4, 8}) {
      for (int len : {1, 2, 3}) {
        TgdSet sigma = Ontology(depth);
        CQ path = PathQuery("e4link", len);
        UCQ q({path});
        Omq omq = Omq::WithFullDataSchema(sigma, q);
        Stopwatch w;
        OmqEvalResult result = EvaluateOmq(omq, db);
        (void)result;
        table.AddRow({ReportTable::Cell(depth), ReportTable::Cell(len),
                      ReportTable::Cell(omq.Size()),
                      ReportTable::Cell(w.ElapsedMs())});
      }
    }
    table.Print("E4b / Prop 3.3(3): fixed data, growing OMQ — the f(||Q||) factor");
  }
}

}  // namespace
}  // namespace gqe

int main() {
  gqe::Run();
  return 0;
}
