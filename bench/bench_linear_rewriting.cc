// E7 (Proposition D.2): linear TGDs are UCQ-rewritable. Series: rewriting
// size and time vs chain depth; evaluation over D directly with the
// rewriting vs the level-bounded chase. Shape: rewriting grows with the
// ontology, but evaluation avoids chasing the data entirely.

#include <cstdio>

#include "linear/linear_chase.h"
#include "linear/rewriting.h"
#include "parser/parser.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

void Run() {
  ReportTable table({"chain depth", "rewriting disjuncts", "rewrite ms",
                     "eval-rewriting ms", "eval-chase ms", "agree"});
  for (int depth : {2, 4, 8}) {
    TgdSet sigma = UnaryChainOntology("e7a", depth);
    // Query over the chain's top predicate.
    UCQ q = ParseUcq("e7q" + std::to_string(depth) + "(X) :- e7a" +
                     std::to_string(depth) + "(X).");
    Stopwatch w_rewrite;
    RewriteResult rewrite = RewriteUnderLinearTgds(q, sigma);
    double rewrite_ms = w_rewrite.ElapsedMs();

    Instance db;
    WorkloadRng rng(depth);
    for (int i = 0; i < 200; ++i) {
      db.Insert(Atom::Make("e7a" + std::to_string(rng.Below(depth)),
                           {Term::Constant("c" + std::to_string(i))}));
    }
    Stopwatch w_eval;
    auto via_rewriting = LinearCertainAnswersViaRewriting(db, sigma, q);
    double eval_ms = w_eval.ElapsedMs();
    Stopwatch w_chase;
    auto via_chase =
        LinearCertainAnswersViaChase(db, sigma, q, depth + 4).answers;
    double chase_ms = w_chase.ElapsedMs();

    table.AddRow({ReportTable::Cell(depth),
                  ReportTable::Cell(rewrite.rewriting.num_disjuncts()),
                  ReportTable::Cell(rewrite_ms), ReportTable::Cell(eval_ms),
                  ReportTable::Cell(chase_ms),
                  ReportTable::Cell(via_rewriting == via_chase)});
  }
  table.Print("E7 / Prop D.2: UCQ rewriting for linear TGDs");

  // Random inclusion dependencies: rewriting completeness under a cap.
  ReportTable random_table({"tgds", "exist%", "disjuncts", "complete",
                            "agree with chase"});
  for (int exist : {0, 30}) {
    TgdSet sigma = RandomInclusionDependencies("e7p", 4, 6, exist, 13 + exist);
    UCQ q = ParseUcq("e7qr" + std::to_string(exist) + "(X) :- e7p0(X, Y).");
    RewriteResult rewrite = RewriteUnderLinearTgds(q, sigma);
    Instance db = RandomBinaryDatabase("e7p1", 30, 60, 5, "r");
    db.InsertAll(RandomBinaryDatabase("e7p2", 30, 60, 6, "r"));
    auto via_rewriting = LinearCertainAnswersViaRewriting(db, sigma, q);
    auto via_chase = LinearCertainAnswersViaChase(db, sigma, q, 12).answers;
    random_table.AddRow(
        {ReportTable::Cell(sigma.size()), ReportTable::Cell(exist),
         ReportTable::Cell(rewrite.rewriting.num_disjuncts()),
         ReportTable::Cell(rewrite.complete),
         ReportTable::Cell(via_rewriting == via_chase)});
  }
  random_table.Print("E7b: random inclusion dependencies");
}

}  // namespace
}  // namespace gqe

int main() {
  gqe::Run();
  return 0;
}
