// Ablation: chase engine — semi-naive (delta-anchored trigger discovery)
// vs naive (full rediscovery per round), oblivious vs restricted, and
// sequential vs parallel trigger discovery. Both discovery modes compute
// the identical instance; the series shows the quadratic rediscovery
// cost the delta frontier removes.
//
// --threads=N applies to every chase in the semi-naive/naive and
// oblivious/restricted tables; the parallel table sweeps thread counts
// itself.

#include <cstdio>

#include "chase/chase.h"
#include "parser/parser.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

int g_threads = 1;

void Run() {
  TgdSet closure = ParseTgds("abe(X, Y), abe(Y, Z) -> abe(X, Z).");
  ReportTable table({"workload", "|D|", "chase facts", "semi-naive ms",
                     "naive ms", "identical"});
  for (int n : {12, 24, 48}) {
    Instance db;
    for (int i = 0; i < n; ++i) {
      db.Insert(Atom::Make("abe",
                           {Term::Constant("a" + std::to_string(i)),
                            Term::Constant("a" + std::to_string(i + 1))}));
    }
    ChaseOptions semi;
    semi.threads = g_threads;
    ChaseOptions naive = semi;
    naive.semi_naive = false;
    Stopwatch w1;
    ChaseResult r_semi = Chase(db, closure, semi);
    double semi_ms = w1.ElapsedMs();
    Stopwatch w2;
    ChaseResult r_naive = Chase(db, closure, naive);
    double naive_ms = w2.ElapsedMs();
    table.AddRow({"transitive closure", ReportTable::Cell(db.size()),
                  ReportTable::Cell(r_semi.instance.size()),
                  ReportTable::Cell(semi_ms), ReportTable::Cell(naive_ms),
                  ReportTable::Cell(
                      r_semi.instance.SetEquals(r_naive.instance))});
  }
  // Deep-chase workload: one trigger per level, so rounds ~= facts and
  // naive rediscovery is quadratic.
  TgdSet deep = ParseTgds("abr(X, Y) -> abr(Y, Z).");
  for (size_t budget : {400, 1200}) {
    Instance db = ParseDatabase("abr(s0, s1).");
    ChaseOptions semi;
    semi.threads = g_threads;
    semi.budget.max_facts = budget;
    ChaseOptions naive = semi;
    naive.semi_naive = false;
    Stopwatch w1;
    ChaseResult r_semi = Chase(db, deep, semi);
    double semi_ms = w1.ElapsedMs();
    Stopwatch w2;
    ChaseResult r_naive = Chase(db, deep, naive);
    double naive_ms = w2.ElapsedMs();
    table.AddRow({"deep chain (budgeted)", ReportTable::Cell(db.size()),
                  ReportTable::Cell(r_semi.instance.size()),
                  ReportTable::Cell(semi_ms), ReportTable::Cell(naive_ms),
                  ReportTable::Cell(r_semi.instance.size() ==
                                    r_naive.instance.size())});
  }
  table.Print("Ablation: semi-naive vs naive trigger discovery");

  // Oblivious vs restricted on a head-satisfied workload.
  TgdSet sigma = ParseTgds("abp(X) -> abq(X, Y).");
  ReportTable modes({"|D|", "oblivious facts", "restricted facts",
                     "oblivious ms", "restricted ms"});
  for (int n : {50, 200}) {
    Instance db;
    for (int i = 0; i < n; ++i) {
      Term c = Term::Constant("b" + std::to_string(i));
      db.Insert(Atom::Make("abp", {c}));
      if (i % 2 == 0) {
        db.Insert(Atom::Make("abq", {c, Term::Constant("w")}));
      }
    }
    ChaseOptions oblivious;
    oblivious.threads = g_threads;
    ChaseOptions restricted = oblivious;
    restricted.restricted = true;
    Stopwatch w1;
    ChaseResult r1 = Chase(db, sigma, oblivious);
    double t1 = w1.ElapsedMs();
    Stopwatch w2;
    ChaseResult r2 = Chase(db, sigma, restricted);
    double t2 = w2.ElapsedMs();
    modes.AddRow({ReportTable::Cell(db.size()),
                  ReportTable::Cell(r1.instance.size()),
                  ReportTable::Cell(r2.instance.size()),
                  ReportTable::Cell(t1), ReportTable::Cell(t2)});
  }
  modes.Print("Ablation: oblivious vs restricted chase (restricted skips "
              "satisfied heads)");

  // Sequential vs parallel trigger discovery on the join-heavy closure
  // workload — parallel must reproduce the sequential instance exactly.
  ReportTable par({"|D|", "threads", "chase ms", "speedup", "identical"});
  for (int n : {24, 48}) {
    Instance db;
    for (int i = 0; i < n; ++i) {
      db.Insert(Atom::Make("abe",
                           {Term::Constant("a" + std::to_string(i)),
                            Term::Constant("a" + std::to_string(i + 1))}));
    }
    double base_ms = 0.0;
    ChaseResult reference;
    for (int threads : {1, 2, 4}) {
      ChaseOptions options;
      options.threads = threads;
      Stopwatch w;
      ChaseResult r = Chase(db, closure, options);
      double ms = w.ElapsedMs();
      bool identical = true;
      if (threads == 1) {
        base_ms = ms;
        reference = std::move(r);
      } else {
        identical = r.instance.SetEquals(reference.instance) &&
                    r.triggers_fired == reference.triggers_fired;
      }
      par.AddRow({ReportTable::Cell(db.size()), ReportTable::Cell(threads),
                  ReportTable::Cell(ms),
                  ReportTable::Cell(ms > 0 ? base_ms / ms : 0.0),
                  ReportTable::Cell(identical)});
    }
  }
  par.Print("Ablation: sequential vs parallel trigger discovery");
}

}  // namespace
}  // namespace gqe

int main(int argc, char** argv) {
  gqe::g_threads = gqe::ParseThreadsFlag(&argc, argv, 1);
  gqe::Run();
  return 0;
}
