// Certified answers (ISSUE 5): the price of a machine-checkable result.
// google-benchmark series compare each engine with and without witness
// collection, and separately time the independent checker, over growing
// chase workloads and query answer sets. The summary table (pasted into
// EXPERIMENTS.md) reports per-workload wall-clock for baseline
// evaluation, witness-collecting evaluation, and verification, plus the
// collection overhead — the quantity the serve daemon's --verify mode
// pays per request.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "parser/parser.h"
#include "query/evaluation.h"
#include "verify/verifier.h"
#include "verify/witness.h"
#include "workload/report.h"

namespace gqe {
namespace {

TgdSet UniversityOntology() {
  return ParseTgds(R"(
    bvgrad(X) -> bvstud(X).
    bvstud(X) -> bvenr(X, U), bvuni(U).
    bvenr(X, U) -> bvactive(X).
  )");
}

Instance UniversityDatabase(int n) {
  Instance db;
  for (int i = 0; i < n; ++i) {
    db.Insert(Atom::Make("bvgrad", {Term::Constant("s" + std::to_string(i))}));
  }
  return db;
}

TgdSet TransitiveClosure() {
  return ParseTgds("bve(X, Y), bve(Y, Z) -> bve(X, Z).");
}

Instance ChainDatabase(int n) {
  Instance db;
  for (int i = 0; i < n; ++i) {
    db.Insert(Atom::Make("bve", {Term::Constant("a" + std::to_string(i)),
                                 Term::Constant("a" + std::to_string(i + 1))}));
  }
  return db;
}

void BM_ChaseBaseline(benchmark::State& state) {
  Instance db = UniversityDatabase(static_cast<int>(state.range(0)));
  TgdSet sigma = UniversityOntology();
  for (auto _ : state) {
    ChaseResult result = Chase(db, sigma);
    benchmark::DoNotOptimize(result.instance.size());
  }
}
BENCHMARK(BM_ChaseBaseline)->Arg(64)->Arg(256)->Arg(1024);

void BM_ChaseCollectWitness(benchmark::State& state) {
  Instance db = UniversityDatabase(static_cast<int>(state.range(0)));
  TgdSet sigma = UniversityOntology();
  ChaseOptions options;
  options.collect_witness = true;
  for (auto _ : state) {
    ChaseResult result = Chase(db, sigma, options);
    benchmark::DoNotOptimize(result.derivation.steps.size());
  }
}
BENCHMARK(BM_ChaseCollectWitness)->Arg(64)->Arg(256)->Arg(1024);

void BM_VerifyDerivation(benchmark::State& state) {
  Instance db = UniversityDatabase(static_cast<int>(state.range(0)));
  TgdSet sigma = UniversityOntology();
  ChaseOptions options;
  options.collect_witness = true;
  ChaseResult chased = Chase(db, sigma, options);
  for (auto _ : state) {
    VerifyResult check = VerifyDerivation(db, sigma, chased.derivation);
    benchmark::DoNotOptimize(check.ok());
  }
  state.counters["steps"] =
      static_cast<double>(chased.derivation.steps.size());
}
BENCHMARK(BM_VerifyDerivation)->Arg(64)->Arg(256)->Arg(1024);

void BM_UcqEvalBaseline(benchmark::State& state) {
  Instance db = ChainDatabase(static_cast<int>(state.range(0)));
  ChaseResult chased = Chase(db, TransitiveClosure());
  UCQ q = ParseUcq("bvq(X, Y) :- bve(X, Y).");
  for (auto _ : state) {
    auto answers = EvaluateUCQ(q, chased.instance);
    benchmark::DoNotOptimize(answers.size());
  }
}
BENCHMARK(BM_UcqEvalBaseline)->Arg(16)->Arg(32)->Arg(64);

void BM_UcqEvalWithWitnesses(benchmark::State& state) {
  Instance db = ChainDatabase(static_cast<int>(state.range(0)));
  ChaseResult chased = Chase(db, TransitiveClosure());
  UCQ q = ParseUcq("bvq(X, Y) :- bve(X, Y).");
  for (auto _ : state) {
    std::vector<HomWitness> witnesses;
    auto answers = EvaluateUCQWithWitnesses(q, chased.instance, &witnesses);
    benchmark::DoNotOptimize(witnesses.size());
  }
}
BENCHMARK(BM_UcqEvalWithWitnesses)->Arg(16)->Arg(32)->Arg(64);

void BM_VerifyHomomorphisms(benchmark::State& state) {
  Instance db = ChainDatabase(static_cast<int>(state.range(0)));
  ChaseResult chased = Chase(db, TransitiveClosure());
  UCQ q = ParseUcq("bvq(X, Y) :- bve(X, Y).");
  std::vector<HomWitness> witnesses;
  auto answers = EvaluateUCQWithWitnesses(q, chased.instance, &witnesses);
  for (auto _ : state) {
    size_t ok = 0;
    for (const HomWitness& w : witnesses) {
      if (VerifyHomomorphism(q, chased.instance, w).ok()) ++ok;
    }
    benchmark::DoNotOptimize(ok);
  }
  state.counters["answers"] = static_cast<double>(witnesses.size());
}
BENCHMARK(BM_VerifyHomomorphisms)->Arg(16)->Arg(32)->Arg(64);

double MedianMs(const std::vector<double>& samples) {
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];
}

template <typename Fn>
double TimeMs(Fn&& fn, int repeats = 5) {
  std::vector<double> samples;
  for (int i = 0; i < repeats; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
  }
  return MedianMs(samples);
}

/// The EXPERIMENTS.md table: per workload, baseline vs collecting vs
/// checking, with the overhead ratio --verify pays end-to-end.
void PrintOverheadTable() {
  ReportTable table({"workload", "baseline ms", "+witness ms", "verify ms",
                     "collect overhead", "witness size"});
  struct Row {
    std::string name;
    Instance db;
    TgdSet sigma;
  };
  std::vector<Row> rows;
  rows.push_back({"university n=256", UniversityDatabase(256),
                  UniversityOntology()});
  rows.push_back({"university n=1024", UniversityDatabase(1024),
                  UniversityOntology()});
  rows.push_back({"closure n=48", ChainDatabase(48), TransitiveClosure()});
  for (Row& row : rows) {
    double baseline = TimeMs([&] {
      ChaseResult r = Chase(row.db, row.sigma);
      benchmark::DoNotOptimize(r.instance.size());
    });
    ChaseOptions collect;
    collect.collect_witness = true;
    DerivationWitness witness;
    double with_witness = TimeMs([&] {
      ChaseResult r = Chase(row.db, row.sigma, collect);
      witness = std::move(r.derivation);
    });
    double verify = TimeMs([&] {
      VerifyResult check = VerifyDerivation(row.db, row.sigma, witness);
      benchmark::DoNotOptimize(check.ok());
    });
    char overhead[32];
    std::snprintf(overhead, sizeof(overhead), "%.2fx",
                  baseline > 0 ? with_witness / baseline : 0.0);
    table.AddRow({row.name, ReportTable::Cell(baseline),
                  ReportTable::Cell(with_witness),
                  ReportTable::Cell(verify), overhead,
                  std::to_string(witness.steps.size()) + " steps"});
  }
  table.Print("Certified answers: witness collection + verification cost");
}

}  // namespace
}  // namespace gqe

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gqe::PrintOverheadTable();
  return 0;
}
