// E11 (Theorem 5.3): the OMQ dichotomy for (G, UCQ). Family A: the
// Example 4.4 pattern scaled up — 4-cycles with unary markers whose
// ontology (R2 ⊆ R4) makes them UCQ_1-equivalent; certain answers via
// the rewriting stay cheap. Family B: the same queries with an inert
// ontology are stuck at treewidth 2. The shape: A's rewriting wins and
// is available; for B no treewidth-1 rewriting exists.
//
// --deadline-ms=X / --budget-facts=N run every configuration under that
// budget; timeout rows show "deadline"/"budget" in the status column and
// the closing watchdog table tallies timeout-vs-complete.
//
// --checkpoint-dir=PATH makes every OMQ evaluation crash-safe: chase
// paths resume from round-boundary snapshots and the guarded path reuses
// a saturated-portion snapshot instead of re-saturating. SIGINT/SIGTERM
// cancel cooperatively, so an interrupted run still prints the partial
// table (with "cancelled" rows) after a final checkpoint.

#include <cstdio>

#include "approx/meta.h"
#include "omq/evaluation.h"
#include "omq/omq.h"
#include "parser/parser.h"
#include "query/evaluation.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

/// The Example 4.4 query with `copies` disjoint 4-cycles conjoined
/// (treewidth 2; with the ontology, collapsible to treewidth 1).
UCQ ScaledQuery(int copies) {
  std::vector<Atom> atoms;
  auto var = [](int c, int i) {
    return Term::Variable("x" + std::to_string(c) + "_" + std::to_string(i));
  };
  for (int c = 0; c < copies; ++c) {
    atoms.push_back(Atom::Make("e11p", {var(c, 2), var(c, 1)}));
    atoms.push_back(Atom::Make("e11p", {var(c, 4), var(c, 1)}));
    atoms.push_back(Atom::Make("e11p", {var(c, 2), var(c, 3)}));
    atoms.push_back(Atom::Make("e11p", {var(c, 4), var(c, 3)}));
    atoms.push_back(Atom::Make("e11r1", {var(c, 1)}));
    atoms.push_back(Atom::Make("e11r2", {var(c, 2)}));
    atoms.push_back(Atom::Make("e11r3", {var(c, 3)}));
    atoms.push_back(Atom::Make("e11r4", {var(c, 4)}));
  }
  return UCQ({CQ({}, std::move(atoms))});
}

Instance MakeData(int n, uint64_t seed) {
  WorkloadRng rng(seed);
  Instance db;
  auto constant = [](uint32_t i) {
    return Term::Constant("e11c" + std::to_string(i));
  };
  for (int i = 0; i < 6 * n; ++i) {
    db.Insert(Atom::Make("e11p", {constant(rng.Below(n)),
                                  constant(rng.Below(n))}));
  }
  for (int i = 0; i < n; ++i) {
    if (rng.Chance(60)) db.Insert(Atom::Make("e11r1", {constant(i)}));
    if (rng.Chance(60)) db.Insert(Atom::Make("e11r2", {constant(i)}));
    if (rng.Chance(60)) db.Insert(Atom::Make("e11r3", {constant(i)}));
    if (rng.Chance(30)) db.Insert(Atom::Make("e11r4", {constant(i)}));
  }
  return db;
}

void Run(const ExecutionBudget& budget, const CheckpointFlags& checkpoint,
         const BenchJsonFlags& json_flags) {
  TgdSet collapsing = ParseTgds("e11r2(X) -> e11r4(X).");
  TgdSet inert = ParseTgds("e11mark(X) -> e11marked(X).");
  BenchWatchdog watchdog;
  BenchJson json("omq", json_flags);

  ReportTable table({"family", "copies", "UCQ_1-equivalent",
                     "eval via rewriting ms", "direct certain ms", "agree",
                     "status"});
  Instance db = MakeData(60, 21);
  for (int copies : {1, 2}) {
    UCQ q = ScaledQuery(copies);
    // Family A: collapsing ontology.
    {
      Governor governor(budget);
      Omq omq = Omq::WithFullDataSchema(collapsing, q);
      MetaResult meta =
          DecideUcqkEquivalenceOmqFullSchema(omq, 1, &governor);
      OmqEvalOptions eval_options;
      eval_options.governor = &governor;
      eval_options.checkpoint_dir = checkpoint.dir;
      double rewriting_ms = -1;
      bool via_rewriting = false;
      if (meta.equivalent) {
        Omq rewritten = Omq::WithFullDataSchema(collapsing, meta.rewriting);
        Stopwatch w;
        via_rewriting = OmqHolds(rewritten, db, {}, eval_options);
        rewriting_ms = w.ElapsedMs();
      }
      Stopwatch w2;
      bool direct = OmqHolds(omq, db, {}, eval_options);
      double direct_ms = w2.ElapsedMs();
      watchdog.Record("A copies=" + std::to_string(copies),
                      governor.MakeOutcome());
      json.Add("omq_A/c" + std::to_string(copies), direct_ms * 1e6);
      if (rewriting_ms >= 0) {
        json.Add("omq_A_rw/c" + std::to_string(copies), rewriting_ms * 1e6);
      }
      table.AddRow({"A: R2 c R4 ontology", ReportTable::Cell(copies),
                    ReportTable::Cell(meta.equivalent),
                    ReportTable::Cell(rewriting_ms),
                    ReportTable::Cell(direct_ms),
                    ReportTable::Cell(!meta.equivalent ||
                                      via_rewriting == direct),
                    StatusName(governor.status())});
    }
    // Family B: inert ontology.
    {
      Governor governor(budget);
      Omq omq = Omq::WithFullDataSchema(inert, q);
      MetaResult meta =
          DecideUcqkEquivalenceOmqFullSchema(omq, 1, &governor);
      OmqEvalOptions eval_options;
      eval_options.governor = &governor;
      eval_options.checkpoint_dir = checkpoint.dir;
      Stopwatch w2;
      bool direct = OmqHolds(omq, db, {}, eval_options);
      double direct_ms = w2.ElapsedMs();
      (void)direct;
      watchdog.Record("B copies=" + std::to_string(copies),
                      governor.MakeOutcome());
      json.Add("omq_B/c" + std::to_string(copies), direct_ms * 1e6);
      table.AddRow({"B: inert ontology", ReportTable::Cell(copies),
                    ReportTable::Cell(meta.equivalent), std::string("-"),
                    ReportTable::Cell(direct_ms), ReportTable::Cell(true),
                    StatusName(governor.status())});
    }
  }
  table.Print(
      "E11 / Thm 5.3: OMQ dichotomy — the ontology decides which side of "
      "the FPT boundary a class sits on");
  watchdog.Print("E11 watchdog: timeout vs complete");
  json.Write();
}

}  // namespace
}  // namespace gqe

int main(int argc, char** argv) {
  gqe::ExecutionBudget budget = gqe::ParseBudgetFlags(&argc, argv);
  gqe::CheckpointFlags checkpoint = gqe::ParseCheckpointFlags(&argc, argv);
  gqe::BenchJsonFlags json = gqe::ParseBenchJsonFlags(&argc, argv);
  gqe::CancelToken cancel = gqe::CancelToken::Create();
  budget.cancel = cancel;
  gqe::InstallBenchSignalHandlers(cancel);
  gqe::Run(budget, checkpoint, json);
  return 0;
}
