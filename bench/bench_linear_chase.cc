// E6 (Lemma A.1): for linear TGDs, UCQ answers over the chase stabilize
// at a level bounded by a function of ||Sigma|| + ||q|| alone (never of
// ||D||). Series: stabilization level as the rule-chain depth grows and
// as the database grows — the level must track the former and ignore the
// latter.

#include <cstdio>

#include "linear/linear_chase.h"
#include "parser/parser.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

/// Binary chain: r0(X,Y) -> r1(X,Y) -> ... -> r_depth(X,Y).
TgdSet BinaryChain(int depth) {
  TgdSet tgds;
  Term x = Term::Variable("X");
  Term y = Term::Variable("Y");
  for (int i = 0; i < depth; ++i) {
    tgds.push_back(Tgd({Atom::Make("e6r" + std::to_string(i), {x, y})},
                       {Atom::Make("e6r" + std::to_string(i + 1), {x, y})}));
  }
  return tgds;
}

void Run() {
  // (a) Stabilization level vs chain depth (fixed database).
  {
    ReportTable table({"chain depth", "stabilization level", "levels built",
                       "answers"});
    for (int depth : {2, 4, 8, 16}) {
      TgdSet sigma = BinaryChain(depth);
      Instance db = ParseDatabase("e6r0(a, b). e6r0(b, c).");
      UCQ q = ParseUcq("e6q" + std::to_string(depth) +
                       "(X) :- e6r" + std::to_string(depth) + "(X, Y).");
      LinearChaseEvalResult result =
          LinearCertainAnswersViaChase(db, sigma, q, depth + 8);
      table.AddRow({ReportTable::Cell(depth),
                    ReportTable::Cell(result.stabilization_level),
                    ReportTable::Cell(result.levels_built),
                    ReportTable::Cell(result.answers.size())});
    }
    table.Print("E6a / Lemma A.1: stabilization level tracks ||Sigma||");
  }
  // (b) Stabilization level vs database size (fixed rules): must be flat.
  {
    ReportTable table({"|D|", "stabilization level", "answers", "ms"});
    TgdSet sigma = BinaryChain(4);
    for (int n : {10, 40, 160}) {
      Instance db;
      WorkloadRng rng(n);
      for (int i = 0; i < n; ++i) {
        db.Insert(Atom::Make("e6r0",
                             {Term::Constant("x" + std::to_string(i)),
                              Term::Constant("x" + std::to_string(
                                                       rng.Below(n)))}));
      }
      UCQ q = ParseUcq("e6qb(X) :- e6r4(X, Y).");
      Stopwatch w;
      LinearChaseEvalResult result =
          LinearCertainAnswersViaChase(db, sigma, q, 12);
      table.AddRow({ReportTable::Cell(db.size()),
                    ReportTable::Cell(result.stabilization_level),
                    ReportTable::Cell(result.answers.size()),
                    ReportTable::Cell(w.ElapsedMs())});
    }
    table.Print("E6b / Lemma A.1: the level bound is independent of ||D||");
  }
}

}  // namespace
}  // namespace gqe

int main() {
  gqe::Run();
  return 0;
}
