// E5 (Propositions 3.2/3.3(1,2)): with unbounded-treewidth actual
// queries, evaluation blows up even for trivial ontologies — clique CQs
// of growing k vs treewidth-1 path queries of the same size. Shape: path
// times stay flat, clique times climb steeply with k (the W[1]-hard
// parameter).

#include <cstdio>

#include "omq/evaluation.h"
#include "omq/omq.h"
#include "parser/parser.h"
#include "query/evaluation.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

void Run() {
  // Random binary data tuned to be clique-sparse so the search space is
  // genuinely explored (large cliques absent: exhaustive refutation).
  Instance db = RandomBinaryDatabase("e5e", 72, 72 * 2, 97, "w");
  // Symmetrize (clique queries need both directions).
  {
    std::vector<Atom> copy = db.atoms();
    for (const Atom& atom : copy) {
      db.Insert(Atom(atom.predicate(), {atom.args()[1], atom.args()[0]}));
    }
  }
  TgdSet sigma = ParseTgds("e5mark(X) -> e5marked(X).");  // inert, guarded

  ReportTable table({"query", "k / len", "tw", "eval ms", "holds"});
  for (int k : {3, 4, 5, 6}) {
    CQ q = CliqueQuery("e5e", k);
    Omq omq = Omq::WithFullDataSchema(sigma, UCQ({q}));
    Stopwatch w;
    bool holds = OmqHolds(omq, db, {});
    table.AddRow({"clique", ReportTable::Cell(k),
                  ReportTable::Cell(q.TreewidthOfExistentialPart()),
                  ReportTable::Cell(w.ElapsedMs()), ReportTable::Cell(holds)});
  }
  for (int len : {3, 6, 12}) {
    CQ q = PathQuery("e5e", len);
    Omq omq = Omq::WithFullDataSchema(sigma, UCQ({q}));
    Stopwatch w;
    bool holds = OmqHolds(omq, db, {});
    table.AddRow({"path", ReportTable::Cell(len), ReportTable::Cell(1),
                  ReportTable::Cell(w.ElapsedMs()), ReportTable::Cell(holds)});
  }
  table.Print(
      "E5 / Prop 3.2-3.3: unbounded query treewidth is the hardness source");
}

}  // namespace
}  // namespace gqe

int main() {
  gqe::Run();
  return 0;
}
