// E8 (Proposition 4.5): containment under constraints via the chase of
// disjuncts. Validation series: the Prop 4.5 decision is compared with a
// sampling-based refutation check (random satisfying databases), plus
// timing.

#include <cstdio>

#include "chase/chase.h"
#include "cqs/containment.h"
#include "cqs/evaluation.h"
#include "parser/parser.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

/// Samples databases satisfying sigma (by chasing random data) and
/// checks q1(D) ⊆ q2(D) on each; returns false iff a counterexample was
/// found.
bool SampledContainment(const Cqs& s1, const Cqs& s2, uint64_t seed) {
  for (int sample = 0; sample < 8; ++sample) {
    Instance raw = RandomBinaryDatabase("e8r", 8, 14, seed * 31 + sample, "s");
    for (uint32_t i = 0; i < 6; ++i) {
      WorkloadRng rng(seed * 17 + sample * 3 + i);
      raw.Insert(Atom::Make("e8u", {Term::Constant(
                                       "s" + std::to_string(rng.Below(8)))}));
    }
    ChaseResult chased = Chase(raw, s1.sigma);
    if (!chased.complete) continue;
    const Instance& db = chased.instance;
    auto a1 = EvaluateCqs(s1, db).answers;
    auto a2 = EvaluateCqs(s2, db).answers;
    for (const auto& tuple : a1) {
      bool found = false;
      for (const auto& other : a2) {
        if (other == tuple) found = true;
      }
      if (!found) return false;
    }
  }
  return true;
}

void Run() {
  TgdSet sigma = ParseTgds(R"(
    e8u(X) -> e8r(X, Y).
    e8r(X, Y) -> e8t(X).
  )");
  struct Pair {
    const char* name;
    const char* q1;
    const char* q2;
    bool expected;
  };
  const Pair pairs[] = {
      {"u ⊆ exists-r", "e8c1(X) :- e8u(X).", "e8c2(X) :- e8r(X, Y).", true},
      {"r ⊆ t", "e8c3(X) :- e8r(X, Y).", "e8c4(X) :- e8t(X).", true},
      {"t ⊆ r", "e8c5(X) :- e8t(X).", "e8c6(X) :- e8r(X, Y).", false},
      {"r ⊆ u", "e8c7(X) :- e8r(X, Y).", "e8c8(X) :- e8u(X).", false},
      {"r-loop ⊆ r", "e8c9(X) :- e8r(X, X).", "e8c10(X) :- e8r(X, Y).",
       true},
  };
  ReportTable table({"pair", "Prop 4.5 verdict", "expected", "sampling agrees",
                     "ms"});
  for (const Pair& p : pairs) {
    Cqs s1{sigma, ParseUcq(p.q1)};
    Cqs s2{sigma, ParseUcq(p.q2)};
    Stopwatch w;
    bool verdict = CqsContained(s1, s2);
    double ms = w.ElapsedMs();
    bool sampled = SampledContainment(s1, s2, 7);
    // Sampling can only *refute*: verdict=true must never meet a sampled
    // counterexample.
    bool consistent = verdict ? sampled : true;
    table.AddRow({p.name, ReportTable::Cell(verdict),
                  ReportTable::Cell(p.expected), ReportTable::Cell(consistent),
                  ReportTable::Cell(ms)});
  }
  table.Print("E8 / Prop 4.5: containment under guarded constraints");
}

}  // namespace
}  // namespace gqe

int main() {
  gqe::Run();
  return 0;
}
