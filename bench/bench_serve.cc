// Serving-layer overheads, file and network paths.
//
// BM_WorkerSpawnRoundTrip isolates the containment tax — fork + pipes +
// setrlimit + result round-trip + reap for a trivial body. The chase
// inside a real worker dwarfs this; the bench proves it.
//
// BM_ServeManifest runs a real manifest of chase requests end to end
// through ServeManifest at varying concurrency.
//
// The network tier is measured by an in-process harness (the epoll
// server and its clients pumped from one thread — the same fork-safe
// discipline the server itself lives under): N connections pipeline
// requests concurrently, and every response is timestamped on arrival.
// The table reports throughput and p50/p95/p99 latency per connection
// count; --json=BENCH_serve.json writes the machine-readable record the
// bench-json CI job uploads per PR.
//
// The durability tier is measured twice: the same network workload with
// the write-ahead journal off / on / on-with-per-record-fsync (what
// durability costs on the hot path), and RequestJournal::Open over
// journals of growing size (what a restart pays before serving its
// first byte).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "base/subprocess.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/journal.h"
#include "serve/request.h"
#include "serve/service.h"
#include "workload/report.h"

namespace {

gqe::BenchJsonFlags g_json;

// The 12-stage pipeline program from examples/serve/chain.gqe, inlined
// so the bench is self-contained and writes its own temp program file.
constexpr const char* kChainProgram = R"(
s0(a). s0(b). s0(c). s0(d).
s0(X) -> s1(X).
s1(X) -> s2(X).
s2(X) -> s3(X).
s3(X) -> s4(X).
s4(X) -> s5(X).
s5(X) -> s6(X).
s6(X) -> s7(X).
s7(X) -> s8(X).
s8(X) -> s9(X).
s9(X) -> s10(X).
s10(X) -> s11(X).
s11(X) -> s12(X).
q(X) :- s12(X).
)";

std::string WriteTempProgram() {
  std::string path =
      std::filesystem::temp_directory_path() / "gqe_bench_serve_chain.gqe";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file != nullptr) {
    std::fputs(kChainProgram, file);
    std::fclose(file);
  }
  return path;
}

void BM_WorkerSpawnRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    gqe::WorkerProcess worker;
    std::string error;
    const bool ok = gqe::WorkerProcess::Spawn(
        gqe::WorkerLimits{},
        [](int result_fd, int heartbeat_fd) {
          (void)heartbeat_fd;
          return gqe::WriteAllToFd(result_fd, "pong") ? 0 : 1;
        },
        &worker, &error);
    if (!ok) state.SkipWithError("spawn failed");
    while (!worker.Poll()) {
      // Spin: the body is trivial, the exit is imminent.
    }
    worker.DrainResult();
    benchmark::DoNotOptimize(worker.result_bytes().size());
  }
}
BENCHMARK(BM_WorkerSpawnRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_ServeManifest(benchmark::State& state) {
  const int concurrency = static_cast<int>(state.range(0));
  const int requests = 8;
  const std::string program = WriteTempProgram();

  gqe::Manifest manifest;
  for (int i = 0; i < requests; ++i) {
    gqe::EvalRequest request;
    request.id = "chase-" + std::to_string(i);
    request.kind = gqe::RequestKind::kChase;
    request.program_path = program;
    request.budget.max_facts = 100000;
    manifest.requests.push_back(request);
  }

  gqe::ServeOptions options;
  options.concurrency = concurrency;
  for (auto _ : state) {
    gqe::ServeReport report = gqe::ServeManifest(manifest, options);
    if (report.completed != static_cast<size_t>(requests)) {
      state.SkipWithError("requests did not complete");
    }
    benchmark::DoNotOptimize(report.rows.size());
  }
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(requests) * state.iterations(),
      benchmark::Counter::kIsRate);
}
// Real time, not CPU: the supervisor sleeps while workers run, so CPU
// time would overstate throughput by orders of magnitude.
BENCHMARK(BM_ServeManifest)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Network tier: concurrent connections against a live epoll server.

struct NetRunResult {
  double wall_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  size_t completed = 0;
  bool ok = false;
};

/// Pipelines `per_conn` cq requests on each of `n_conns` connections
/// against an in-process NetServer, timestamping every response on
/// arrival. The caller thread plays both sides — server turns and
/// nonblocking client reads interleave — which measures the serving
/// tier itself (framing, epoll, supervisor, fork round-trips) without
/// cross-thread scheduling noise.
NetRunResult RunNetWorkload(int n_conns, int per_conn,
                            const std::string& program,
                            const std::string& journal_dir = {},
                            bool journal_fsync = true) {
  NetRunResult out;
  gqe::ServeOptions serve_options;
  serve_options.concurrency = 8;
  serve_options.journal_dir = journal_dir;
  serve_options.journal_fsync = journal_fsync;
  gqe::NetServerOptions net_options;
  net_options.max_connections = static_cast<size_t>(n_conns) + 8;
  net_options.coalesce = false;  // measure real per-request work
  gqe::NetServer server(serve_options, net_options);
  std::string error;
  if (!server.Listen(&error)) return out;

  std::vector<std::unique_ptr<gqe::NetClient>> clients;
  for (int c = 0; c < n_conns; ++c) {
    auto client = std::make_unique<gqe::NetClient>();
    if (!client->Connect("127.0.0.1", server.port(), 2000, &error)) return out;
    clients.push_back(std::move(client));
    server.PollOnce(0);
  }

  const size_t total = static_cast<size_t>(n_conns) * per_conn;
  std::vector<double> send_ms(total), latency_ms;
  latency_ms.reserve(total);
  std::vector<size_t> next_slot(n_conns, 0);
  gqe::Stopwatch wall;

  // Round-robin the sends so every connection is loaded from the start.
  for (int r = 0; r < per_conn; ++r) {
    for (int c = 0; c < n_conns; ++c) {
      const size_t slot = static_cast<size_t>(c) * per_conn + r;
      const std::string line = "id=q" + std::to_string(slot) +
                               " kind=cq program=" + program + " query=q";
      send_ms[slot] = wall.ElapsedMs();
      if (!clients[c]->SendRequest(line)) return out;
    }
  }

  gqe::Frame frame;
  size_t received = 0;
  const double deadline_ms = 60000.0;
  while (received < total && wall.ElapsedMs() < deadline_ms) {
    server.PollOnce(1);
    for (int c = 0; c < n_conns; ++c) {
      for (;;) {
        const auto r = clients[c]->RecvFrame(&frame, 0, &error);
        if (r != gqe::NetClient::RecvResult::kFrame) break;
        if (frame.type != gqe::FrameType::kResult) return out;
        // Per-connection FIFO: responses land in send order.
        const size_t slot =
            static_cast<size_t>(c) * per_conn + next_slot[c]++;
        latency_ms.push_back(wall.ElapsedMs() - send_ms[slot]);
        ++received;
      }
    }
  }
  if (received != total) return out;

  out.wall_ms = wall.ElapsedMs();
  out.completed = received;
  std::sort(latency_ms.begin(), latency_ms.end());
  auto pct = [&](double p) {
    const size_t index = static_cast<size_t>(p * (latency_ms.size() - 1));
    return latency_ms[index];
  };
  out.p50_ms = pct(0.50);
  out.p95_ms = pct(0.95);
  out.p99_ms = pct(0.99);
  out.ok = true;
  return out;
}

constexpr int kNetConnCounts[] = {1, 4, 16};
constexpr int kNetPerConn = 16;

void PrintNetScaling() {
  const std::string program = WriteTempProgram();
  gqe::ReportTable table({"conns", "requests", "wall ms", "req/s", "p50 ms",
                          "p95 ms", "p99 ms"});
  for (int conns : kNetConnCounts) {
    const NetRunResult r = RunNetWorkload(conns, kNetPerConn, program);
    if (!r.ok) {
      std::fprintf(stderr, "bench_serve: net workload failed (%d conns)\n",
                   conns);
      continue;
    }
    table.AddRow({gqe::ReportTable::Cell(conns),
                  gqe::ReportTable::Cell(r.completed),
                  gqe::ReportTable::Cell(r.wall_ms),
                  gqe::ReportTable::Cell(1000.0 * r.completed / r.wall_ms),
                  gqe::ReportTable::Cell(r.p50_ms),
                  gqe::ReportTable::Cell(r.p95_ms),
                  gqe::ReportTable::Cell(r.p99_ms)});
  }
  table.Print(
      "serve/net: concurrent-connection scaling (pipelined cq requests)");
}

// ---------------------------------------------------------------------------
// Durability tier: what the write-ahead journal costs on the hot path,
// and how fast a restart replays it.

struct JournalMode {
  const char* key;
  bool journaled;
  bool fsync;
};
constexpr JournalMode kJournalModes[] = {
    {"off", false, false},
    {"nofsync", true, false},
    {"fsync", true, true},
};
constexpr int kJournalConns = 4;

std::string FreshJournalDir() {
  const std::string dir =
      std::filesystem::temp_directory_path() / "gqe_bench_serve_journal";
  std::filesystem::remove_all(dir);
  return dir;
}

/// The c4 network workload with the journal off / on-without-fsync /
/// on-with-fsync. Every journaled run gets a fresh directory: replaying a
/// previous run's journal would serve cache hits and measure nothing.
NetRunResult RunJournalMode(const JournalMode& mode,
                            const std::string& program) {
  const std::string dir = mode.journaled ? FreshJournalDir() : std::string();
  NetRunResult r =
      RunNetWorkload(kJournalConns, kNetPerConn, program, dir, mode.fsync);
  if (!dir.empty()) std::filesystem::remove_all(dir);
  return r;
}

void PrintJournalOverhead() {
  const std::string program = WriteTempProgram();
  gqe::ReportTable table(
      {"journal", "requests", "wall ms", "req/s", "p50 ms", "p95 ms"});
  for (const JournalMode& mode : kJournalModes) {
    const NetRunResult r = RunJournalMode(mode, program);
    if (!r.ok) {
      std::fprintf(stderr, "bench_serve: journal workload failed (%s)\n",
                   mode.key);
      continue;
    }
    // Raw string cell: Cell(const char*) would resolve to the bool
    // overload and print "yes".
    table.AddRow({std::string(mode.key),
                  gqe::ReportTable::Cell(r.completed),
                  gqe::ReportTable::Cell(r.wall_ms),
                  gqe::ReportTable::Cell(1000.0 * r.completed / r.wall_ms),
                  gqe::ReportTable::Cell(r.p50_ms),
                  gqe::ReportTable::Cell(r.p95_ms)});
  }
  table.Print("serve/journal: write-ahead journal overhead (c4 workload)");
}

/// Builds a journal of `entries` completed requests with realistic
/// record sizes, then times RequestJournal::Open — segment reads, CRC
/// checks and the per-id fold — which is exactly what a restarted daemon
/// pays before it can serve its first byte. Returns -1 on failure;
/// `bytes_out` receives the on-disk journal size.
double MeasureRecoveryMs(size_t entries, size_t* bytes_out) {
  const std::string dir = FreshJournalDir();
  gqe::JournalOptions options;
  options.fsync_each_record = false;
  const std::string result_tail =
      " kind=cq state=completed answer=yes certain=yes facts=4096 ms=12.5\n";
  const std::string worker_blob(256, 'w');
  {
    gqe::RequestJournal journal;
    if (!journal.Open(dir, options, nullptr).ok()) return -1.0;
    for (size_t i = 0; i < entries; ++i) {
      const std::string id = "req-" + std::to_string(i);
      journal.AppendAdmitted(
          id, "id=" + id + " kind=cq program=chain.gqe query=q");
      journal.AppendResult(id, gqe::TerminalState::kCompleted,
                           "result: id=" + id + result_tail, worker_blob);
    }
    if (!journal.Sync().ok()) return -1.0;
  }
  if (bytes_out != nullptr) {
    *bytes_out = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      *bytes_out += std::filesystem::file_size(e.path());
    }
  }
  gqe::Stopwatch watch;
  gqe::RequestJournal journal;
  gqe::JournalRecovery recovery;
  const bool ok = journal.Open(dir, options, &recovery).ok() &&
                  recovery.entries.size() == entries;
  const double ms = watch.ElapsedMs();
  std::filesystem::remove_all(dir);
  return ok ? ms : -1.0;
}

constexpr size_t kRecoverySizes[] = {1000, 10000, 100000};

void PrintRecoveryLatency() {
  gqe::ReportTable table(
      {"entries", "journal MB", "recover ms", "entries/s"});
  for (size_t entries : kRecoverySizes) {
    size_t bytes = 0;
    const double ms = MeasureRecoveryMs(entries, &bytes);
    if (ms < 0) {
      std::fprintf(stderr, "bench_serve: recovery bench failed (%zu)\n",
                   entries);
      continue;
    }
    table.AddRow({gqe::ReportTable::Cell(entries),
                  gqe::ReportTable::Cell(bytes / (1024.0 * 1024.0)),
                  gqe::ReportTable::Cell(ms),
                  gqe::ReportTable::Cell(1000.0 * entries / ms)});
  }
  table.Print("serve/journal: restart recovery latency vs journal size");
}

/// Machine-readable quick tier (--json): the network matrix plus the
/// fork round-trip tax, written as BENCH_serve.json. Keys are stable
/// across PRs; per-connection-count entries carry throughput as the
/// rate and mean latency as ns/op, with p95/p99 as separate keys.
int RunJsonBench() {
  gqe::BenchJson json("serve", g_json);
  const std::string program = WriteTempProgram();

  {
    gqe::Stopwatch watch;
    const int spawns = 32;
    for (int i = 0; i < spawns; ++i) {
      gqe::WorkerProcess worker;
      std::string error;
      if (!gqe::WorkerProcess::Spawn(
              gqe::WorkerLimits{},
              [](int result_fd, int) {
                return gqe::WriteAllToFd(result_fd, "pong") ? 0 : 1;
              },
              &worker, &error)) {
        std::fprintf(stderr, "bench_serve: spawn failed: %s\n", error.c_str());
        return 1;
      }
      while (!worker.Poll()) {
      }
      worker.DrainResult();
    }
    json.Add("serve_spawn_roundtrip", watch.ElapsedMs() * 1e6 / spawns);
  }

  for (int conns : kNetConnCounts) {
    const NetRunResult r = RunNetWorkload(conns, kNetPerConn, program);
    if (!r.ok) {
      std::fprintf(stderr, "bench_serve: net workload failed (%d conns)\n",
                   conns);
      return 1;
    }
    const std::string key = "serve_net/c" + std::to_string(conns);
    const double mean_ns = r.wall_ms * 1e6 / r.completed;
    json.Add(key, mean_ns, 1000.0 * r.completed / r.wall_ms);
    json.Add(key + "/p95", r.p95_ms * 1e6);
    json.Add(key + "/p99", r.p99_ms * 1e6);
  }

  for (const JournalMode& mode : kJournalModes) {
    const NetRunResult r = RunJournalMode(mode, program);
    if (!r.ok) {
      std::fprintf(stderr, "bench_serve: journal workload failed (%s)\n",
                   mode.key);
      return 1;
    }
    const std::string key = std::string("serve_journal/") + mode.key;
    json.Add(key, r.wall_ms * 1e6 / r.completed,
             1000.0 * r.completed / r.wall_ms);
    json.Add(key + "/p95", r.p95_ms * 1e6);
  }

  for (size_t entries : kRecoverySizes) {
    size_t bytes = 0;
    const double ms = MeasureRecoveryMs(entries, &bytes);
    if (ms < 0) {
      std::fprintf(stderr, "bench_serve: recovery bench failed (%zu)\n",
                   entries);
      return 1;
    }
    const std::string key =
        "serve_journal_recovery/n" + std::to_string(entries);
    json.Add(key, ms * 1e6, 1000.0 * entries / ms);
  }
  const std::string path = json.Write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  g_json = gqe::ParseBenchJsonFlags(&argc, argv);
  if (g_json.enabled) return RunJsonBench();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintNetScaling();
  PrintJournalOverhead();
  PrintRecoveryLatency();
  return 0;
}
