// Serving-layer overheads: what does fork isolation cost per request,
// and how does manifest throughput scale with supervisor concurrency?
//
// BM_WorkerSpawnRoundTrip isolates the containment tax — fork + pipes +
// setrlimit + result round-trip + reap for a trivial body. The chase
// inside a real worker dwarfs this; the bench proves it.
//
// BM_ServeManifest runs a real manifest of chase requests end to end
// through ServeManifest at varying concurrency.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "base/subprocess.h"
#include "serve/request.h"
#include "serve/service.h"
#include "workload/report.h"

namespace {

// The 12-stage pipeline program from examples/serve/chain.gqe, inlined
// so the bench is self-contained and writes its own temp program file.
constexpr const char* kChainProgram = R"(
s0(a). s0(b). s0(c). s0(d).
s0(X) -> s1(X).
s1(X) -> s2(X).
s2(X) -> s3(X).
s3(X) -> s4(X).
s4(X) -> s5(X).
s5(X) -> s6(X).
s6(X) -> s7(X).
s7(X) -> s8(X).
s8(X) -> s9(X).
s9(X) -> s10(X).
s10(X) -> s11(X).
s11(X) -> s12(X).
q(X) :- s12(X).
)";

std::string WriteTempProgram() {
  std::string path =
      std::filesystem::temp_directory_path() / "gqe_bench_serve_chain.gqe";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file != nullptr) {
    std::fputs(kChainProgram, file);
    std::fclose(file);
  }
  return path;
}

void BM_WorkerSpawnRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    gqe::WorkerProcess worker;
    std::string error;
    const bool ok = gqe::WorkerProcess::Spawn(
        gqe::WorkerLimits{},
        [](int result_fd, int heartbeat_fd) {
          (void)heartbeat_fd;
          return gqe::WriteAllToFd(result_fd, "pong") ? 0 : 1;
        },
        &worker, &error);
    if (!ok) state.SkipWithError("spawn failed");
    while (!worker.Poll()) {
      // Spin: the body is trivial, the exit is imminent.
    }
    worker.DrainResult();
    benchmark::DoNotOptimize(worker.result_bytes().size());
  }
}
BENCHMARK(BM_WorkerSpawnRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_ServeManifest(benchmark::State& state) {
  const int concurrency = static_cast<int>(state.range(0));
  const int requests = 8;
  const std::string program = WriteTempProgram();

  gqe::Manifest manifest;
  for (int i = 0; i < requests; ++i) {
    gqe::EvalRequest request;
    request.id = "chase-" + std::to_string(i);
    request.kind = gqe::RequestKind::kChase;
    request.program_path = program;
    request.budget.max_facts = 100000;
    manifest.requests.push_back(request);
  }

  gqe::ServeOptions options;
  options.concurrency = concurrency;
  for (auto _ : state) {
    gqe::ServeReport report = gqe::ServeManifest(manifest, options);
    if (report.completed != static_cast<size_t>(requests)) {
      state.SkipWithError("requests did not complete");
    }
    benchmark::DoNotOptimize(report.rows.size());
  }
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(requests) * state.iterations(),
      benchmark::Counter::kIsRate);
}
// Real time, not CPU: the supervisor sleeps while workers run, so CPU
// time would overstate throughput by orders of magnitude.
BENCHMARK(BM_ServeManifest)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
