// Ablation: three evaluation strategies for the tractable query classes —
// Yannakakis (acyclic CQs / hypertree-width 1), the Prop 2.1 tree-DP
// (bounded treewidth), and generic backtracking. Acyclicity and bounded
// treewidth are the two classical tractability islands the paper's
// dichotomies generalize.

#include <cstdio>

#include "query/acyclic.h"
#include "query/evaluation.h"
#include "query/tw_evaluation.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

void Run() {
  ReportTable table({"query", "acyclic?", "|D|", "yannakakis ms",
                     "tree-DP ms", "backtracking ms", "answer"});
  for (int n : {200, 800}) {
    Instance db = RandomBinaryDatabase("ace", 60, n, 11, "ac");
    struct QueryCase {
      const char* name;
      CQ query;
    };
    std::vector<QueryCase> cases;
    cases.push_back({"path-5", PathQuery("ace", 5)});
    cases.push_back({"path-9", PathQuery("ace", 9)});
    cases.push_back({"grid-2x3", GridQuery("ace", "ace", 2, 3)});
    for (auto& c : cases) {
      const bool acyclic = IsAcyclicCq(c.query);
      double yann_ms = -1;
      bool yann = false;
      if (acyclic) {
        Stopwatch w;
        yann = *HoldsAcyclicCq(c.query, db, {});
        yann_ms = w.ElapsedMs();
      }
      Stopwatch w1;
      bool dp = HoldsBooleanCqTreeDp(c.query, db);
      double dp_ms = w1.ElapsedMs();
      Stopwatch w2;
      bool bt = HoldsBooleanCQ(c.query, db);
      double bt_ms = w2.ElapsedMs();
      if ((acyclic && yann != dp) || dp != bt) {
        std::printf("DISAGREEMENT on %s!\n", c.name);
      }
      table.AddRow({c.name, ReportTable::Cell(acyclic),
                    ReportTable::Cell(db.size()), ReportTable::Cell(yann_ms),
                    ReportTable::Cell(dp_ms), ReportTable::Cell(bt_ms),
                    ReportTable::Cell(dp)});
    }
  }
  table.Print("Ablation: Yannakakis vs tree-DP vs backtracking");
}

}  // namespace
}  // namespace gqe

int main() {
  gqe::Run();
  return 0;
}
