// E3 (Proposition 3.1 + chase engine): chase throughput and the identity
// Q(D) = q(chase(D, Σ)). google-benchmark series over growing databases
// and rule sets, then a verification table and a thread-scaling table
// for the parallel trigger-discovery engine.
//
// --threads=N sets ChaseOptions::threads for the benchmark series
// (1 sequential, 0 hardware concurrency); the thread-scaling summary
// always sweeps {1, 2, 4, 8} and cross-checks bit-identical output.
// --deadline-ms=X / --budget-facts=N run every chase under that budget;
// a watchdog table then reports timeout-vs-complete per configuration.
//
// --checkpoint-dir=PATH switches to the durable-chase mode: a fixed
// deterministic workload (--durable-n=N chain, transitive closure) runs
// under round-boundary checkpointing with --checkpoint-every granularity,
// resuming from the directory's latest good snapshot. The final line
// prints status/rounds/facts plus the instance CRC-32, so the CI crash
// recovery smoke can kill -9 the run, resume it, and diff against an
// uninterrupted run. SIGINT/SIGTERM cancel cooperatively: the run stops
// at a round boundary, writes a final checkpoint and still reports.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/serialize.h"
#include "chase/chase.h"
#include "chase/checkpoint.h"
#include "guarded/omq_eval.h"
#include "parser/parser.h"
#include "query/evaluation.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

int g_threads = 1;
ExecutionBudget g_budget;
BenchWatchdog g_watchdog;
CheckpointFlags g_checkpoint;
BenchJsonFlags g_json;
int g_durable_n = 320;

TgdSet TransitiveClosure() {
  return ParseTgds("e3e(X, Y), e3e(Y, Z) -> e3e(X, Z).");
}

TgdSet UniversityOntology() {
  return ParseTgds(R"(
    e3grad(X) -> e3stud(X).
    e3stud(X) -> e3enr(X, U), e3uni(U).
    e3enr(X, U) -> e3active(X).
  )");
}

Instance UniversityDatabase(int n) {
  Instance db;
  for (int i = 0; i < n; ++i) {
    db.Insert(Atom::Make("e3grad", {Term::Constant("s" + std::to_string(i))}));
  }
  return db;
}

void BM_ChaseTransitiveClosure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Instance db;
  for (int i = 0; i < n; ++i) {
    db.Insert(Atom::Make("e3e", {Term::Constant("a" + std::to_string(i)),
                                 Term::Constant("a" + std::to_string(i + 1))}));
  }
  TgdSet sigma = TransitiveClosure();
  ChaseOptions options;
  options.threads = g_threads;
  options.budget = g_budget;
  for (auto _ : state) {
    ChaseResult result = Chase(db, sigma, options);
    benchmark::DoNotOptimize(result.instance.size());
  }
  state.counters["facts_out"] = static_cast<double>(n * (n + 1) / 2);
}
BENCHMARK(BM_ChaseTransitiveClosure)->Arg(8)->Arg(16)->Arg(32);

void BM_ChaseGuardedExistential(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Instance db = UniversityDatabase(n);
  TgdSet sigma = UniversityOntology();
  ChaseOptions options;
  options.threads = g_threads;
  options.budget = g_budget;
  for (auto _ : state) {
    ChaseResult result = Chase(db, sigma, options);
    benchmark::DoNotOptimize(result.complete);
  }
}
BENCHMARK(BM_ChaseGuardedExistential)->Arg(16)->Arg(64)->Arg(256);

void PrintSummary() {
  // Verify Proposition 3.1 on the university workload: certain answers
  // via the guarded engine equal direct evaluation over the finite chase.
  ReportTable table({"|D|", "chase facts", "levels", "certain answers",
                     "Prop 3.1 identity"});
  TgdSet sigma = UniversityOntology();
  UCQ q = ParseUcq("e3q(X) :- e3active(X).");
  for (int n : {4, 16, 64}) {
    Instance db = UniversityDatabase(n);
    ChaseOptions options;
    options.budget = g_budget;
    ChaseResult chased = Chase(db, sigma, options);
    g_watchdog.Record("E3 university n=" + std::to_string(n),
                      chased.outcome);
    auto via_chase = EvaluateUCQ(q, chased.instance);
    auto via_engine = GuardedCertainAnswers(db, sigma, q);
    table.AddRow({ReportTable::Cell(db.size()),
                  ReportTable::Cell(chased.instance.size()),
                  ReportTable::Cell(chased.max_level_built),
                  ReportTable::Cell(via_engine.size()),
                  ReportTable::Cell(via_chase == via_engine)});
  }
  table.Print("E3 / Prop 3.1: Q(D) = q(chase(D, Sigma))");
}

void PrintThreadScaling() {
  // Thread scaling of the parallel trigger-discovery engine: the largest
  // university-workload configuration plus a join-heavy transitive
  // closure. Every row re-runs the identical chase (null counter reset),
  // so "identical" asserts the bit-identical-output guarantee, and
  // discovery/merge columns expose the parallel vs sequential split.
  struct Workload {
    const char* name;
    Instance db;
    TgdSet sigma;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"university n=4096", UniversityDatabase(4096),
                       UniversityOntology()});
  Instance tc_db;
  const int tc_n = 48;
  for (int i = 0; i < tc_n; ++i) {
    tc_db.Insert(Atom::Make("e3e",
                            {Term::Constant("a" + std::to_string(i)),
                             Term::Constant("a" + std::to_string(i + 1))}));
  }
  workloads.push_back({"transitive closure n=48", std::move(tc_db),
                       TransitiveClosure()});

  ReportTable table({"workload", "threads", "chase ms", "speedup",
                     "discovery ms", "merge ms", "identical"});
  for (Workload& w : workloads) {
    const uint32_t null_base = Term::NextNullId();
    double base_ms = 0.0;
    ChaseResult reference;
    for (int threads : {1, 2, 4, 8}) {
      Term::SetNextNullId(null_base);
      ChaseOptions options;
      options.threads = threads;
      options.budget = g_budget;
      Stopwatch watch;
      ChaseResult result = Chase(w.db, w.sigma, options);
      const double ms = watch.ElapsedMs();
      g_watchdog.Record(std::string(w.name) + " threads=" +
                            std::to_string(threads),
                        result.outcome);
      double discovery_ms = 0.0;
      double merge_ms = 0.0;
      for (const ChaseRoundStats& round : result.round_stats) {
        discovery_ms += round.discovery_ms;
        merge_ms += round.merge_ms;
      }
      bool identical = true;
      if (threads == 1) {
        base_ms = ms;
        reference = std::move(result);
      } else {
        identical = result.instance.size() == reference.instance.size() &&
                    result.triggers_fired == reference.triggers_fired &&
                    result.levels == reference.levels;
        for (size_t i = 0; identical && i < result.instance.size(); ++i) {
          identical = result.instance.atom(i) == reference.instance.atom(i);
        }
      }
      table.AddRow({w.name, ReportTable::Cell(threads),
                    ReportTable::Cell(ms),
                    ReportTable::Cell(ms > 0 ? base_ms / ms : 0.0),
                    ReportTable::Cell(discovery_ms),
                    ReportTable::Cell(merge_ms),
                    ReportTable::Cell(identical)});
    }
  }
  table.Print("E3b: chase thread scaling (deterministic parallel discovery)");
}

/// Machine-readable quick tier (--json): a fixed set of chase
/// configurations timed with the process stopwatch, written as
/// BENCH_chase.json (ns/op, facts/sec, peak RSS). Keys are stable across
/// PRs so --json-baseline=KEY=NS attaches the previous trajectory point
/// and the file carries its own speedup column.
int RunJsonBench() {
  BenchJson json("chase", g_json);
  struct Config {
    std::string key;
    Instance db;
    TgdSet sigma;
    int threads;
  };
  std::vector<Config> configs;
  auto tc_db = [](int n) {
    Instance db;
    for (int i = 0; i < n; ++i) {
      db.Insert(Atom::Make("e3e",
                           {Term::Constant("a" + std::to_string(i)),
                            Term::Constant("a" + std::to_string(i + 1))}));
    }
    return db;
  };
  configs.push_back({"chase_tc/32", tc_db(32), TransitiveClosure(), 1});
  configs.push_back({"chase_tc/48", tc_db(48), TransitiveClosure(), 1});
  configs.push_back({"chase_tc/48/t8", tc_db(48), TransitiveClosure(), 8});
  configs.push_back(
      {"chase_univ/256", UniversityDatabase(256), UniversityOntology(), 1});
  configs.push_back({"chase_univ/4096", UniversityDatabase(4096),
                     UniversityOntology(), 1});
  configs.push_back({"chase_univ/4096/t8", UniversityDatabase(4096),
                     UniversityOntology(), 8});
  for (Config& config : configs) {
    ChaseOptions options;
    options.threads = config.threads;
    options.budget = g_budget;
    const uint32_t null_base = Term::NextNullId();
    // Warm-up run (also yields the output size for facts/sec).
    Term::SetNextNullId(null_base);
    ChaseResult warm = Chase(config.db, config.sigma, options);
    g_watchdog.Record(config.key, warm.outcome);
    const double facts = static_cast<double>(warm.instance.size());
    // Measure: at least 3 iterations and 200 ms of work.
    int iters = 0;
    Stopwatch watch;
    do {
      Term::SetNextNullId(null_base);
      ChaseResult result = Chase(config.db, config.sigma, options);
      benchmark::DoNotOptimize(result.instance.size());
      ++iters;
    } while (iters < 3 || watch.ElapsedMs() < 200.0);
    const double ns_per_op = watch.ElapsedMs() * 1e6 / iters;
    json.Add(config.key, ns_per_op, facts * 1e9 / ns_per_op);
    std::printf("%-20s %12.0f ns/op  %10.0f facts/s  (%d iters)\n",
                config.key.c_str(), ns_per_op, facts * 1e9 / ns_per_op,
                iters);
  }
  json.Write();
  g_watchdog.Print("E3 watchdog: timeout vs complete");
  return 0;
}

int ParseDurableN(int* argc, char** argv, int default_n) {
  int n = default_n;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--durable-n=", 0) == 0) {
      n = std::atoi(arg.c_str() + 12);
      continue;
    }
    if (arg == "--durable-n" && i + 1 < *argc) {
      n = std::atoi(argv[++i]);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return n > 0 ? n : default_n;
}

/// Durable-chase mode: one deterministic transitive-closure chase under
/// round-boundary checkpointing. Re-invoking with the same flags after a
/// kill resumes from the newest good snapshot; the "final:" line is
/// invariant under kills and resumes (that is the property the CI smoke
/// diffs).
int RunDurableChase() {
  Instance db;
  for (int i = 0; i < g_durable_n; ++i) {
    db.Insert(Atom::Make("e3e",
                         {Term::Constant("a" + std::to_string(i)),
                          Term::Constant("a" + std::to_string(i + 1))}));
  }
  TgdSet sigma = TransitiveClosure();
  ChaseOptions options;
  options.threads = g_threads;
  options.budget = g_budget;
  options.checkpoint_every = g_checkpoint.every;

  ResumeInfo info;
  Stopwatch watch;
  ChaseResult result = ResumeChase(g_checkpoint.dir, db, sigma, options, &info);
  const double ms = watch.ElapsedMs();
  g_watchdog.Record("durable chase n=" + std::to_string(g_durable_n),
                    result.outcome);

  std::printf("durable chase: dir=%s every=%d n=%d threads=%zu\n",
              g_checkpoint.dir.c_str(), g_checkpoint.every, g_durable_n,
              result.threads_used);
  std::printf("resume: resumed=%s generation=%llu skipped=%d (%s)\n",
              info.resumed ? "yes" : "no",
              static_cast<unsigned long long>(info.generation),
              info.skipped_generations,
              info.load_status.ok()
                  ? "ok"
                  : SnapshotErrorName(info.load_status.error));
  std::printf("elapsed: %.1f ms\n", ms);

  BinaryWriter writer;
  EncodeInstance(result.instance, &writer);
  std::printf("final: status=%s complete=%s rounds=%llu facts=%zu "
              "levels=%d crc32=%08x\n",
              StatusName(result.outcome.status),
              result.complete ? "yes" : "no",
              static_cast<unsigned long long>(result.rounds_completed),
              result.instance.size(), result.max_level_built,
              Crc32(writer.buffer()));
  g_watchdog.Print("E3 watchdog: timeout vs complete");
  return 0;
}

}  // namespace
}  // namespace gqe

int main(int argc, char** argv) {
  gqe::g_threads = gqe::ParseThreadsFlag(&argc, argv, 1);
  gqe::g_budget = gqe::ParseBudgetFlags(&argc, argv);
  gqe::g_checkpoint = gqe::ParseCheckpointFlags(&argc, argv);
  gqe::g_json = gqe::ParseBenchJsonFlags(&argc, argv);
  gqe::g_durable_n = gqe::ParseDurableN(&argc, argv, gqe::g_durable_n);
  // SIGINT/SIGTERM cancel cooperatively: every chase below runs under
  // this token, stops at a round boundary (writing a final checkpoint in
  // durable mode) and the partial tables still print.
  gqe::CancelToken cancel = gqe::CancelToken::Create();
  gqe::g_budget.cancel = cancel;
  gqe::InstallBenchSignalHandlers(cancel);
  if (gqe::g_checkpoint.enabled()) return gqe::RunDurableChase();
  if (gqe::g_json.enabled) return gqe::RunJsonBench();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gqe::PrintSummary();
  gqe::PrintThreadScaling();
  gqe::g_watchdog.Print("E3 watchdog: timeout vs complete");
  return 0;
}
