// E3 (Proposition 3.1 + chase engine): chase throughput and the identity
// Q(D) = q(chase(D, Σ)). google-benchmark series over growing databases
// and rule sets, then a verification table and a thread-scaling table
// for the parallel trigger-discovery engine.
//
// --threads=N sets ChaseOptions::threads for the benchmark series
// (1 sequential, 0 hardware concurrency); the thread-scaling summary
// always sweeps {1, 2, 4, 8} and cross-checks bit-identical output.
// --deadline-ms=X / --budget-facts=N run every chase under that budget;
// a watchdog table then reports timeout-vs-complete per configuration.

#include <benchmark/benchmark.h>

#include "chase/chase.h"
#include "guarded/omq_eval.h"
#include "parser/parser.h"
#include "query/evaluation.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

int g_threads = 1;
ExecutionBudget g_budget;
BenchWatchdog g_watchdog;

TgdSet TransitiveClosure() {
  return ParseTgds("e3e(X, Y), e3e(Y, Z) -> e3e(X, Z).");
}

TgdSet UniversityOntology() {
  return ParseTgds(R"(
    e3grad(X) -> e3stud(X).
    e3stud(X) -> e3enr(X, U), e3uni(U).
    e3enr(X, U) -> e3active(X).
  )");
}

Instance UniversityDatabase(int n) {
  Instance db;
  for (int i = 0; i < n; ++i) {
    db.Insert(Atom::Make("e3grad", {Term::Constant("s" + std::to_string(i))}));
  }
  return db;
}

void BM_ChaseTransitiveClosure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Instance db;
  for (int i = 0; i < n; ++i) {
    db.Insert(Atom::Make("e3e", {Term::Constant("a" + std::to_string(i)),
                                 Term::Constant("a" + std::to_string(i + 1))}));
  }
  TgdSet sigma = TransitiveClosure();
  ChaseOptions options;
  options.threads = g_threads;
  options.budget = g_budget;
  for (auto _ : state) {
    ChaseResult result = Chase(db, sigma, options);
    benchmark::DoNotOptimize(result.instance.size());
  }
  state.counters["facts_out"] = static_cast<double>(n * (n + 1) / 2);
}
BENCHMARK(BM_ChaseTransitiveClosure)->Arg(8)->Arg(16)->Arg(32);

void BM_ChaseGuardedExistential(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Instance db = UniversityDatabase(n);
  TgdSet sigma = UniversityOntology();
  ChaseOptions options;
  options.threads = g_threads;
  options.budget = g_budget;
  for (auto _ : state) {
    ChaseResult result = Chase(db, sigma, options);
    benchmark::DoNotOptimize(result.complete);
  }
}
BENCHMARK(BM_ChaseGuardedExistential)->Arg(16)->Arg(64)->Arg(256);

void PrintSummary() {
  // Verify Proposition 3.1 on the university workload: certain answers
  // via the guarded engine equal direct evaluation over the finite chase.
  ReportTable table({"|D|", "chase facts", "levels", "certain answers",
                     "Prop 3.1 identity"});
  TgdSet sigma = UniversityOntology();
  UCQ q = ParseUcq("e3q(X) :- e3active(X).");
  for (int n : {4, 16, 64}) {
    Instance db = UniversityDatabase(n);
    ChaseOptions options;
    options.budget = g_budget;
    ChaseResult chased = Chase(db, sigma, options);
    g_watchdog.Record("E3 university n=" + std::to_string(n),
                      chased.outcome);
    auto via_chase = EvaluateUCQ(q, chased.instance);
    auto via_engine = GuardedCertainAnswers(db, sigma, q);
    table.AddRow({ReportTable::Cell(db.size()),
                  ReportTable::Cell(chased.instance.size()),
                  ReportTable::Cell(chased.max_level_built),
                  ReportTable::Cell(via_engine.size()),
                  ReportTable::Cell(via_chase == via_engine)});
  }
  table.Print("E3 / Prop 3.1: Q(D) = q(chase(D, Sigma))");
}

void PrintThreadScaling() {
  // Thread scaling of the parallel trigger-discovery engine: the largest
  // university-workload configuration plus a join-heavy transitive
  // closure. Every row re-runs the identical chase (null counter reset),
  // so "identical" asserts the bit-identical-output guarantee, and
  // discovery/merge columns expose the parallel vs sequential split.
  struct Workload {
    const char* name;
    Instance db;
    TgdSet sigma;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"university n=4096", UniversityDatabase(4096),
                       UniversityOntology()});
  Instance tc_db;
  const int tc_n = 48;
  for (int i = 0; i < tc_n; ++i) {
    tc_db.Insert(Atom::Make("e3e",
                            {Term::Constant("a" + std::to_string(i)),
                             Term::Constant("a" + std::to_string(i + 1))}));
  }
  workloads.push_back({"transitive closure n=48", std::move(tc_db),
                       TransitiveClosure()});

  ReportTable table({"workload", "threads", "chase ms", "speedup",
                     "discovery ms", "merge ms", "identical"});
  for (Workload& w : workloads) {
    const uint32_t null_base = Term::NextNullId();
    double base_ms = 0.0;
    ChaseResult reference;
    for (int threads : {1, 2, 4, 8}) {
      Term::SetNextNullId(null_base);
      ChaseOptions options;
      options.threads = threads;
      options.budget = g_budget;
      Stopwatch watch;
      ChaseResult result = Chase(w.db, w.sigma, options);
      const double ms = watch.ElapsedMs();
      g_watchdog.Record(std::string(w.name) + " threads=" +
                            std::to_string(threads),
                        result.outcome);
      double discovery_ms = 0.0;
      double merge_ms = 0.0;
      for (const ChaseRoundStats& round : result.round_stats) {
        discovery_ms += round.discovery_ms;
        merge_ms += round.merge_ms;
      }
      bool identical = true;
      if (threads == 1) {
        base_ms = ms;
        reference = std::move(result);
      } else {
        identical = result.instance.size() == reference.instance.size() &&
                    result.triggers_fired == reference.triggers_fired &&
                    result.levels == reference.levels;
        for (size_t i = 0; identical && i < result.instance.size(); ++i) {
          identical = result.instance.atom(i) == reference.instance.atom(i);
        }
      }
      table.AddRow({w.name, ReportTable::Cell(threads),
                    ReportTable::Cell(ms),
                    ReportTable::Cell(ms > 0 ? base_ms / ms : 0.0),
                    ReportTable::Cell(discovery_ms),
                    ReportTable::Cell(merge_ms),
                    ReportTable::Cell(identical)});
    }
  }
  table.Print("E3b: chase thread scaling (deterministic parallel discovery)");
}

}  // namespace
}  // namespace gqe

int main(int argc, char** argv) {
  gqe::g_threads = gqe::ParseThreadsFlag(&argc, argv, 1);
  gqe::g_budget = gqe::ParseBudgetFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gqe::PrintSummary();
  gqe::PrintThreadScaling();
  gqe::g_watchdog.Print("E3 watchdog: timeout vs complete");
  return 0;
}
