// E3 (Proposition 3.1 + chase engine): chase throughput and the identity
// Q(D) = q(chase(D, Σ)). google-benchmark series over growing databases
// and rule sets, then a verification table.

#include <benchmark/benchmark.h>

#include "chase/chase.h"
#include "guarded/omq_eval.h"
#include "parser/parser.h"
#include "query/evaluation.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

TgdSet TransitiveClosure() {
  return ParseTgds("e3e(X, Y), e3e(Y, Z) -> e3e(X, Z).");
}

TgdSet UniversityOntology() {
  return ParseTgds(R"(
    e3grad(X) -> e3stud(X).
    e3stud(X) -> e3enr(X, U), e3uni(U).
    e3enr(X, U) -> e3active(X).
  )");
}

void BM_ChaseTransitiveClosure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Instance db;
  for (int i = 0; i < n; ++i) {
    db.Insert(Atom::Make("e3e", {Term::Constant("a" + std::to_string(i)),
                                 Term::Constant("a" + std::to_string(i + 1))}));
  }
  TgdSet sigma = TransitiveClosure();
  for (auto _ : state) {
    ChaseResult result = Chase(db, sigma);
    benchmark::DoNotOptimize(result.instance.size());
  }
  state.counters["facts_out"] = static_cast<double>(n * (n + 1) / 2);
}
BENCHMARK(BM_ChaseTransitiveClosure)->Arg(8)->Arg(16)->Arg(32);

void BM_ChaseGuardedExistential(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Instance db;
  for (int i = 0; i < n; ++i) {
    db.Insert(Atom::Make("e3grad", {Term::Constant("s" + std::to_string(i))}));
  }
  TgdSet sigma = UniversityOntology();
  for (auto _ : state) {
    ChaseResult result = Chase(db, sigma);
    benchmark::DoNotOptimize(result.complete);
  }
}
BENCHMARK(BM_ChaseGuardedExistential)->Arg(16)->Arg(64)->Arg(256);

void PrintSummary() {
  // Verify Proposition 3.1 on the university workload: certain answers
  // via the guarded engine equal direct evaluation over the finite chase.
  ReportTable table({"|D|", "chase facts", "levels", "certain answers",
                     "Prop 3.1 identity"});
  TgdSet sigma = UniversityOntology();
  UCQ q = ParseUcq("e3q(X) :- e3active(X).");
  for (int n : {4, 16, 64}) {
    Instance db;
    for (int i = 0; i < n; ++i) {
      db.Insert(
          Atom::Make("e3grad", {Term::Constant("s" + std::to_string(i))}));
    }
    ChaseResult chased = Chase(db, sigma);
    auto via_chase = EvaluateUCQ(q, chased.instance);
    auto via_engine = GuardedCertainAnswers(db, sigma, q);
    table.AddRow({ReportTable::Cell(db.size()),
                  ReportTable::Cell(chased.instance.size()),
                  ReportTable::Cell(chased.max_level_built),
                  ReportTable::Cell(via_engine.size()),
                  ReportTable::Cell(via_chase == via_engine)});
  }
  table.Print("E3 / Prop 3.1: Q(D) = q(chase(D, Sigma))");
}

}  // namespace
}  // namespace gqe

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  gqe::PrintSummary();
  return 0;
}
