// E10 (Theorem 5.7 / 5.12): the dichotomy for CQS classes. Family A is
// uniformly UCQ_1-equivalent (constraints collapse the cycles): its
// evaluation through the rewriting stays polynomial as the parameter
// grows. Family B (true cliques) is not UCQ_k-equivalent for any fixed
// k: direct evaluation cost climbs with the parameter. The crossover IS
// the dichotomy boundary.
//
// --deadline-ms=X / --budget-facts=N run every configuration under that
// budget; timeout rows show "deadline"/"budget" in the status column and
// the closing watchdog table tallies timeout-vs-complete.

#include <cstdio>

#include "approx/meta.h"
#include "cqs/cqs.h"
#include "cqs/evaluation.h"
#include "parser/parser.h"
#include "query/evaluation.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

/// Family A(n): a 2n-cycle over relation e with a chord-inducing
/// constraint-free redundancy — each even vertex also reachable via a
/// duplicated copy, so the cycle folds to a path (semantic treewidth 1).
Cqs FamilyA(int n) {
  // q() :- e(x1,x2), e(x1,x2') duplicated structure: two parallel paths
  // sharing endpoints, foldable onto one (tw 1 after contraction).
  std::vector<Atom> atoms;
  auto var = [](const std::string& s) { return Term::Variable(s); };
  for (int i = 0; i < n; ++i) {
    atoms.push_back(Atom::Make("e10e", {var("a" + std::to_string(i)),
                                        var("a" + std::to_string(i + 1))}));
    atoms.push_back(Atom::Make("e10e", {var("b" + std::to_string(i)),
                                        var("b" + std::to_string(i + 1))}));
  }
  // Glue the endpoints so the two paths form a cycle of length 2n.
  Substitution glue;
  glue.Set(var("b0"), var("a0"));
  glue.Set(var("b" + std::to_string(n)), var("a" + std::to_string(n)));
  Cqs cqs;
  cqs.query = UCQ({CQ({}, glue.Apply(atoms))});
  return cqs;
}

/// Family B(k): the k-clique query (semantic treewidth k-1, a core).
Cqs FamilyB(int k) {
  Cqs cqs;
  cqs.query = UCQ({CliqueQuery("e10e", k)});
  return cqs;
}

void Run(const ExecutionBudget& budget) {
  Instance db = RandomBinaryDatabase("e10e", 40, 400, 3, "t");
  {
    std::vector<Atom> copy = db.atoms();
    for (const Atom& atom : copy) {
      db.Insert(Atom(atom.predicate(), {atom.args()[1], atom.args()[0]}));
    }
  }
  BenchWatchdog watchdog;

  ReportTable table({"family", "param", "UCQ_1-equiv", "direct ms",
                     "rewritten ms", "holds", "status"});
  for (int n : {2, 3, 4}) {
    Governor governor(budget);
    Cqs a = FamilyA(n);
    MetaResult meta = DecideUniformUcqkEquivalenceCqs(a, 1, &governor);
    Stopwatch w1;
    bool direct = HoldsBooleanUCQ(a.query, db, &governor);
    double direct_ms = w1.ElapsedMs();
    double rewritten_ms = -1;
    bool rewritten = direct;
    if (meta.equivalent) {
      Stopwatch w2;
      rewritten = HoldsBooleanUCQ(meta.rewriting, db, &governor);
      rewritten_ms = w2.ElapsedMs();
    }
    watchdog.Record("A n=" + std::to_string(n), governor.MakeOutcome());
    table.AddRow({"A: foldable 2n-cycle", ReportTable::Cell(n),
                  ReportTable::Cell(meta.equivalent),
                  ReportTable::Cell(direct_ms),
                  ReportTable::Cell(rewritten_ms),
                  ReportTable::Cell(direct && rewritten),
                  StatusName(governor.status())});
  }
  for (int k : {3, 4, 5}) {
    Governor governor(budget);
    Cqs b = FamilyB(k);
    MetaResult meta = DecideUniformUcqkEquivalenceCqs(b, 1, &governor);
    Stopwatch w1;
    bool direct = HoldsBooleanUCQ(b.query, db, &governor);
    double direct_ms = w1.ElapsedMs();
    watchdog.Record("B k=" + std::to_string(k), governor.MakeOutcome());
    table.AddRow({"B: k-clique", ReportTable::Cell(k),
                  ReportTable::Cell(meta.equivalent),
                  ReportTable::Cell(direct_ms), std::string("-"),
                  ReportTable::Cell(direct),
                  StatusName(governor.status())});
  }
  table.Print(
      "E10 / Thm 5.7: CQS dichotomy — collapsible classes stay cheap, "
      "clique classes climb");
  watchdog.Print("E10 watchdog: timeout vs complete");
}

}  // namespace
}  // namespace gqe

int main(int argc, char** argv) {
  gqe::ExecutionBudget budget = gqe::ParseBudgetFlags(&argc, argv);
  gqe::Run(budget);
  return 0;
}
