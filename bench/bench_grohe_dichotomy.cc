// E2 (Theorem 4.1, Grohe): classes of CQs over bounded-arity schemas are
// tractable iff their cores have bounded treewidth. Series: evaluation
// time of (a) a bounded-treewidth class (path queries, semantic tw 1) and
// (b) an unbounded class (k x k grid queries, semantic tw k) over the
// *hard* instances produced by the clique reduction. The shape: (a) stays
// flat as the parameter grows, (b) blows up.

#include <cstdio>

#include "grohe/clique.h"
#include "grohe/reduction.h"
#include "query/evaluation.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace gqe {
namespace {

void Run() {
  ReportTable table({"class", "param", "query vars", "query tw", "|D*|",
                     "eval ms", "holds"});
  // Hard instances: D* from the k=3 reduction over a planted-clique graph.
  Graph g = PlantedCliqueGraph(8, 30, 3, 42);
  CliqueReduction r = MakeGridCliqueReduction(3, 3, 3, "e2h", "e2v");
  ReductionOutcome outcome = RunVariantReduction(g, r, /*check_sigma=*/false);
  const Instance& dstar = outcome.dstar;

  // (a) Bounded class: path queries of growing length, treewidth 1.
  for (int len : {2, 4, 8, 16}) {
    CQ q = PathQuery("e2h", len);
    Stopwatch w;
    bool holds = HoldsBooleanCQ(q, dstar);
    table.AddRow({"paths (tw 1)", ReportTable::Cell(len),
                  ReportTable::Cell(q.AllVariables().size()),
                  ReportTable::Cell(q.TreewidthOfExistentialPart()),
                  ReportTable::Cell(dstar.size()),
                  ReportTable::Cell(w.ElapsedMs()), ReportTable::Cell(holds)});
  }
  // (b) Unbounded class: k x k grid queries, treewidth k.
  for (int k : {2, 3}) {
    CQ q = GridQuery("e2h", "e2v", k, k + (k == 3 ? 0 : 0));
    Stopwatch w;
    bool holds = HoldsBooleanCQ(q, dstar);
    table.AddRow({"grids (tw k)", ReportTable::Cell(k),
                  ReportTable::Cell(q.AllVariables().size()),
                  ReportTable::Cell(q.TreewidthOfExistentialPart()),
                  ReportTable::Cell(dstar.size()),
                  ReportTable::Cell(w.ElapsedMs()), ReportTable::Cell(holds)});
  }
  table.Print(
      "E2 / Thm 4.1 (Grohe): bounded vs unbounded treewidth classes on "
      "hard instances");

  // The dichotomy's other face: the reduction makes grid-query evaluation
  // decide clique, so the 3x3 grid query answer must track the planted
  // clique.
  std::printf("\n3x3 grid query on D*: %s — graph has 3-clique: %s\n",
              HoldsBooleanCQ(GridQuery("e2h", "e2v", 3, 3), dstar) ? "true"
                                                                   : "false",
              HasClique(g, 3) ? "true" : "false");
}

}  // namespace
}  // namespace gqe

int main() {
  gqe::Run();
  return 0;
}
