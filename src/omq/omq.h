#ifndef GQE_OMQ_OMQ_H_
#define GQE_OMQ_OMQ_H_

#include <string>

#include "base/schema.h"
#include "query/cq.h"
#include "tgd/tgd.h"

namespace gqe {

/// An ontology-mediated query Q = (S, Σ, q) (Section 3.1): a data schema
/// S, an ontology Σ over an extended schema T ⊇ S, and a UCQ q over T.
/// Q is evaluated over S-databases under certain-answer semantics.
struct Omq {
  Schema data_schema;
  TgdSet sigma;
  UCQ query;

  /// The extended schema T: every predicate in S, Σ and q.
  Schema ExtendedSchema() const;

  /// True if S = T (Section 3.1, "full data schema").
  bool HasFullDataSchema() const;

  /// Builds an OMQ with full data schema from Σ and q (the omq(S)
  /// operator of Section 5.1 applied to a CQS).
  static Omq WithFullDataSchema(TgdSet sigma, UCQ query);

  /// ‖Q‖-ish size measure.
  size_t Size() const;

  /// Well-formedness; also checks the ontology class passed in `require`
  /// ("G", "FG", "L", "" for none).
  bool Validate(const std::string& require = "",
                std::string* why = nullptr) const;

  std::string ToString() const;
};

}  // namespace gqe

#endif  // GQE_OMQ_OMQ_H_
