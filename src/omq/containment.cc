#include "omq/containment.h"

#include <cassert>

#include "guarded/omq_eval.h"

namespace gqe {

bool OmqContainedSameOntology(const Omq& q1, const Omq& q2,
                              TypeClosureEngine* engine, Governor* governor) {
  assert(q1.query.arity() == q2.query.arity());
  for (const CQ& p : q1.query.disjuncts()) {
    Instance canonical = p.CanonicalInstance();
    std::vector<Term> frozen_answer;
    for (Term v : p.answer_vars()) {
      frozen_answer.push_back(CQ::FrozenConstant(v));
    }
    GuardedEvalOptions guarded_options;
    guarded_options.governor = governor;
    if (!GuardedCertainlyHolds(canonical, q1.sigma, q2.query, frozen_answer,
                               guarded_options, engine)) {
      return false;
    }
    if (governor != nullptr && governor->Tripped()) return false;
  }
  return true;
}

bool OmqEquivalentSameOntology(const Omq& q1, const Omq& q2,
                               TypeClosureEngine* engine, Governor* governor) {
  return OmqContainedSameOntology(q1, q2, engine, governor) &&
         OmqContainedSameOntology(q2, q1, engine, governor);
}

}  // namespace gqe
