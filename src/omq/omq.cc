#include "omq/omq.h"

namespace gqe {

Schema Omq::ExtendedSchema() const {
  Schema extended = SchemaOf(sigma);
  for (PredicateId id : data_schema.predicate_ids()) extended.Add(id);
  for (const CQ& cq : query.disjuncts()) {
    for (const Atom& atom : cq.atoms()) extended.Add(atom.predicate());
  }
  return extended;
}

bool Omq::HasFullDataSchema() const {
  Schema extended = ExtendedSchema();
  for (PredicateId id : extended.predicate_ids()) {
    if (!data_schema.Contains(id)) return false;
  }
  return true;
}

Omq Omq::WithFullDataSchema(TgdSet sigma, UCQ query) {
  Omq omq;
  omq.sigma = std::move(sigma);
  omq.query = std::move(query);
  omq.data_schema = omq.ExtendedSchema();
  return omq;
}

size_t Omq::Size() const {
  size_t total = query.Size();
  for (const Tgd& tgd : sigma) {
    for (const Atom& atom : tgd.body()) total += 1 + atom.args().size();
    for (const Atom& atom : tgd.head()) total += 1 + atom.args().size();
  }
  return total;
}

bool Omq::Validate(const std::string& require, std::string* why) const {
  auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (!query.Validate(why)) return false;
  for (const Tgd& tgd : sigma) {
    if (!tgd.Validate(why)) return false;
  }
  if (require == "G" && !IsGuardedSet(sigma)) return fail("ontology not guarded");
  if (require == "FG" && !IsFrontierGuardedSet(sigma)) {
    return fail("ontology not frontier-guarded");
  }
  if (require == "L" && !IsLinearSet(sigma)) return fail("ontology not linear");
  return true;
}

std::string Omq::ToString() const {
  return "OMQ(S=" + data_schema.ToString() + ", |Sigma|=" +
         std::to_string(sigma.size()) + ", q=" + query.ToString() + ")";
}

}  // namespace gqe
