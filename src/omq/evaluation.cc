#include "omq/evaluation.h"

#include <utility>

#include "chase/chase.h"
#include "chase/checkpoint.h"
#include "guarded/omq_eval.h"
#include "query/evaluation.h"
#include "query/tw_evaluation.h"

namespace gqe {

namespace {

std::vector<std::vector<Term>> FilterToDomain(
    std::vector<std::vector<Term>> tuples, const Instance& db) {
  std::vector<std::vector<Term>> out;
  for (auto& tuple : tuples) {
    bool inside = true;
    for (Term t : tuple) {
      if (!db.InDomain(t)) {
        inside = false;
        break;
      }
    }
    if (inside) out.push_back(std::move(tuple));
  }
  return out;
}

/// FilterToDomain keeping the per-answer witness list aligned.
std::vector<std::vector<Term>> FilterToDomainWithWitnesses(
    std::vector<std::vector<Term>> tuples, const Instance& db,
    std::vector<HomWitness>* witnesses) {
  std::vector<std::vector<Term>> out;
  std::vector<HomWitness> kept;
  for (size_t i = 0; i < tuples.size(); ++i) {
    bool inside = true;
    for (Term t : tuples[i]) {
      if (!db.InDomain(t)) {
        inside = false;
        break;
      }
    }
    if (inside) {
      out.push_back(std::move(tuples[i]));
      if (i < witnesses->size()) kept.push_back(std::move((*witnesses)[i]));
    }
  }
  *witnesses = std::move(kept);
  return out;
}

/// Chase with optional crash-safe resume: with a checkpoint directory
/// the saturated (or level-bounded) chase is resumed from its last good
/// snapshot — a complete snapshot short-circuits the whole re-chase.
ChaseResult CheckpointedChase(const std::string& checkpoint_dir,
                              const Instance& db, const TgdSet& sigma,
                              const ChaseOptions& options) {
  if (checkpoint_dir.empty()) return Chase(db, sigma, options);
  return ResumeChase(checkpoint_dir, db, sigma, options);
}

}  // namespace

OmqEvalResult EvaluateOmq(const Omq& omq, const Instance& db,
                          const OmqEvalOptions& options) {
  OmqEvalResult result;
  // One governor spans the whole pipeline (portion build / chase plus
  // the query evaluation over the materialized instance).
  GovernorScope scope(options.governor, options.budget);
  Governor* governor = scope.get();
  const bool collect = options.witness.collect;
  if (omq.sigma.empty()) {
    result.method = "empty-ontology";
    if (collect) {
      result.answers = EvaluateUCQWithWitnesses(
          omq.query, db, &result.witness.answers, /*limit=*/0, governor);
      result.witness.kind = EvalWitness::Kind::kAnswers;
      result.witness.certified = true;
    } else {
      result.answers = EvaluateUCQ(omq.query, db, /*limit=*/0, governor);
    }
  } else if (IsGuardedSet(omq.sigma)) {
    result.method = "guarded-portion";
    GuardedEvalOptions guarded_options;
    guarded_options.governor = governor;
    guarded_options.use_tree_dp = options.use_tree_dp;
    guarded_options.checkpoint_dir = options.checkpoint_dir;
    guarded_options.witness = options.witness;
    GuardedAnswersResult guarded = EvaluateGuardedCertainAnswers(
        db, omq.sigma, omq.query, guarded_options);
    result.answers = std::move(guarded.answers);
    if (guarded.portion_truncated) result.exact = false;
    if (collect) {
      result.witness.kind = EvalWitness::Kind::kChaseAndAnswers;
      result.witness.derivation = std::move(guarded.derivation);
      result.witness.answers = std::move(guarded.witnesses);
      result.witness.certified = guarded.certified;
    }
  } else {
    ChaseOptions chase_options;
    chase_options.governor = governor;
    chase_options.collect_witness = collect;
    if (IsObliviousChaseTerminating(omq.sigma)) {
      result.method = "terminating-chase";
    } else {
      result.method = "bounded-chase";
      result.exact = false;
      chase_options.max_level = options.fallback_chase_level;
    }
    ChaseResult chased =
        CheckpointedChase(options.checkpoint_dir, db, omq.sigma,
                          chase_options);
    if (!chased.complete && result.method == "terminating-chase") {
      // A guard rail fired despite a terminating set.
      result.exact = false;
    }
    if (collect) {
      result.answers = EvaluateUCQWithWitnesses(
          omq.query, chased.instance, &result.witness.answers, /*limit=*/0,
          governor);
      result.answers =
          FilterToDomainWithWitnesses(std::move(result.answers), db,
                                      &result.witness.answers);
      result.witness.kind = EvalWitness::Kind::kChaseAndAnswers;
      result.witness.derivation = std::move(chased.derivation);
      // A checkpoint resume from a witness-less (or pre-witness) snapshot
      // cannot reconstruct the trigger log; the answers stand, but the
      // certificate is incomplete.
      result.witness.certified = result.witness.derivation.collected;
    } else {
      result.answers = FilterToDomain(
          EvaluateUCQ(omq.query, chased.instance, /*limit=*/0, governor), db);
    }
  }
  if (collect) result.witness.method = result.method;
  result.status = governor->status();
  if (result.status != Status::kCompleted) {
    // Partial certain-answer status: the reported tuples are sound, the
    // enumeration was cut short.
    result.partial = true;
    result.exact = false;
  }
  return result;
}

bool OmqHolds(const Omq& omq, const Instance& db,
              const std::vector<Term>& answer,
              const OmqEvalOptions& options) {
  GovernorScope scope(options.governor, options.budget);
  Governor* governor = scope.get();
  if (omq.sigma.empty()) {
    return options.use_tree_dp
               ? HoldsUcqTreeDp(omq.query, db, answer, governor)
               : HoldsUCQ(omq.query, db, answer, governor);
  }
  if (IsGuardedSet(omq.sigma)) {
    GuardedEvalOptions guarded_options;
    guarded_options.governor = governor;
    guarded_options.use_tree_dp = options.use_tree_dp;
    guarded_options.checkpoint_dir = options.checkpoint_dir;
    return GuardedCertainlyHolds(db, omq.sigma, omq.query, answer,
                                 guarded_options);
  }
  ChaseOptions chase_options;
  chase_options.governor = governor;
  if (!IsObliviousChaseTerminating(omq.sigma)) {
    chase_options.max_level = options.fallback_chase_level;
  }
  ChaseResult chased =
      CheckpointedChase(options.checkpoint_dir, db, omq.sigma, chase_options);
  return options.use_tree_dp
             ? HoldsUcqTreeDp(omq.query, chased.instance, answer, governor)
             : HoldsUCQ(omq.query, chased.instance, answer, governor);
}

}  // namespace gqe
