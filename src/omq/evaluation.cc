#include "omq/evaluation.h"

#include "chase/chase.h"
#include "guarded/omq_eval.h"
#include "query/evaluation.h"
#include "query/tw_evaluation.h"

namespace gqe {

namespace {

std::vector<std::vector<Term>> FilterToDomain(
    std::vector<std::vector<Term>> tuples, const Instance& db) {
  std::vector<std::vector<Term>> out;
  for (auto& tuple : tuples) {
    bool inside = true;
    for (Term t : tuple) {
      if (!db.InDomain(t)) {
        inside = false;
        break;
      }
    }
    if (inside) out.push_back(std::move(tuple));
  }
  return out;
}

}  // namespace

OmqEvalResult EvaluateOmq(const Omq& omq, const Instance& db,
                          const OmqEvalOptions& options) {
  OmqEvalResult result;
  if (omq.sigma.empty()) {
    result.method = "empty-ontology";
    result.answers = EvaluateUCQ(omq.query, db);
    return result;
  }
  if (IsGuardedSet(omq.sigma)) {
    result.method = "guarded-portion";
    GuardedEvalOptions guarded_options;
    guarded_options.max_facts = options.max_facts;
    guarded_options.use_tree_dp = options.use_tree_dp;
    result.answers = GuardedCertainAnswers(db, omq.sigma, omq.query,
                                           guarded_options);
    return result;
  }
  ChaseOptions chase_options;
  chase_options.max_facts = options.max_facts;
  if (IsObliviousChaseTerminating(omq.sigma)) {
    result.method = "terminating-chase";
  } else {
    result.method = "bounded-chase";
    result.exact = false;
    chase_options.max_level = options.fallback_chase_level;
  }
  ChaseResult chased = Chase(db, omq.sigma, chase_options);
  if (!chased.complete && result.method == "terminating-chase") {
    // Fact budget hit despite a terminating set.
    result.exact = false;
  }
  result.answers = FilterToDomain(EvaluateUCQ(omq.query, chased.instance), db);
  return result;
}

bool OmqHolds(const Omq& omq, const Instance& db,
              const std::vector<Term>& answer,
              const OmqEvalOptions& options) {
  if (omq.sigma.empty()) {
    return options.use_tree_dp ? HoldsUcqTreeDp(omq.query, db, answer)
                               : HoldsUCQ(omq.query, db, answer);
  }
  if (IsGuardedSet(omq.sigma)) {
    GuardedEvalOptions guarded_options;
    guarded_options.max_facts = options.max_facts;
    guarded_options.use_tree_dp = options.use_tree_dp;
    return GuardedCertainlyHolds(db, omq.sigma, omq.query, answer,
                                 guarded_options);
  }
  ChaseOptions chase_options;
  chase_options.max_facts = options.max_facts;
  if (!IsObliviousChaseTerminating(omq.sigma)) {
    chase_options.max_level = options.fallback_chase_level;
  }
  ChaseResult chased = Chase(db, omq.sigma, chase_options);
  return options.use_tree_dp
             ? HoldsUcqTreeDp(omq.query, chased.instance, answer)
             : HoldsUCQ(omq.query, chased.instance, answer);
}

}  // namespace gqe
