#include "omq/evaluation.h"

#include <utility>

#include "chase/chase.h"
#include "chase/checkpoint.h"
#include "guarded/omq_eval.h"
#include "query/evaluation.h"
#include "query/tw_evaluation.h"

namespace gqe {

namespace {

std::vector<std::vector<Term>> FilterToDomain(
    std::vector<std::vector<Term>> tuples, const Instance& db) {
  std::vector<std::vector<Term>> out;
  for (auto& tuple : tuples) {
    bool inside = true;
    for (Term t : tuple) {
      if (!db.InDomain(t)) {
        inside = false;
        break;
      }
    }
    if (inside) out.push_back(std::move(tuple));
  }
  return out;
}

/// Chase with optional crash-safe resume: with a checkpoint directory
/// the saturated (or level-bounded) chase is resumed from its last good
/// snapshot — a complete snapshot short-circuits the whole re-chase.
ChaseResult CheckpointedChase(const std::string& checkpoint_dir,
                              const Instance& db, const TgdSet& sigma,
                              const ChaseOptions& options) {
  if (checkpoint_dir.empty()) return Chase(db, sigma, options);
  return ResumeChase(checkpoint_dir, db, sigma, options);
}

}  // namespace

OmqEvalResult EvaluateOmq(const Omq& omq, const Instance& db,
                          const OmqEvalOptions& options) {
  OmqEvalResult result;
  // One governor spans the whole pipeline (portion build / chase plus
  // the query evaluation over the materialized instance).
  GovernorScope scope(options.governor, options.budget);
  Governor* governor = scope.get();
  if (omq.sigma.empty()) {
    result.method = "empty-ontology";
    result.answers = EvaluateUCQ(omq.query, db, /*limit=*/0, governor);
  } else if (IsGuardedSet(omq.sigma)) {
    result.method = "guarded-portion";
    GuardedEvalOptions guarded_options;
    guarded_options.governor = governor;
    guarded_options.use_tree_dp = options.use_tree_dp;
    guarded_options.checkpoint_dir = options.checkpoint_dir;
    GuardedAnswersResult guarded = EvaluateGuardedCertainAnswers(
        db, omq.sigma, omq.query, guarded_options);
    result.answers = std::move(guarded.answers);
    if (guarded.portion_truncated) result.exact = false;
  } else {
    ChaseOptions chase_options;
    chase_options.governor = governor;
    if (IsObliviousChaseTerminating(omq.sigma)) {
      result.method = "terminating-chase";
    } else {
      result.method = "bounded-chase";
      result.exact = false;
      chase_options.max_level = options.fallback_chase_level;
    }
    ChaseResult chased =
        CheckpointedChase(options.checkpoint_dir, db, omq.sigma,
                          chase_options);
    if (!chased.complete && result.method == "terminating-chase") {
      // A guard rail fired despite a terminating set.
      result.exact = false;
    }
    result.answers = FilterToDomain(
        EvaluateUCQ(omq.query, chased.instance, /*limit=*/0, governor), db);
  }
  result.status = governor->status();
  if (result.status != Status::kCompleted) {
    // Partial certain-answer status: the reported tuples are sound, the
    // enumeration was cut short.
    result.partial = true;
    result.exact = false;
  }
  return result;
}

bool OmqHolds(const Omq& omq, const Instance& db,
              const std::vector<Term>& answer,
              const OmqEvalOptions& options) {
  GovernorScope scope(options.governor, options.budget);
  Governor* governor = scope.get();
  if (omq.sigma.empty()) {
    return options.use_tree_dp
               ? HoldsUcqTreeDp(omq.query, db, answer, governor)
               : HoldsUCQ(omq.query, db, answer, governor);
  }
  if (IsGuardedSet(omq.sigma)) {
    GuardedEvalOptions guarded_options;
    guarded_options.governor = governor;
    guarded_options.use_tree_dp = options.use_tree_dp;
    guarded_options.checkpoint_dir = options.checkpoint_dir;
    return GuardedCertainlyHolds(db, omq.sigma, omq.query, answer,
                                 guarded_options);
  }
  ChaseOptions chase_options;
  chase_options.governor = governor;
  if (!IsObliviousChaseTerminating(omq.sigma)) {
    chase_options.max_level = options.fallback_chase_level;
  }
  ChaseResult chased =
      CheckpointedChase(options.checkpoint_dir, db, omq.sigma, chase_options);
  return options.use_tree_dp
             ? HoldsUcqTreeDp(omq.query, chased.instance, answer, governor)
             : HoldsUCQ(omq.query, chased.instance, answer, governor);
}

}  // namespace gqe
