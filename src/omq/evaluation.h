#ifndef GQE_OMQ_EVALUATION_H_
#define GQE_OMQ_EVALUATION_H_

#include <string>
#include <vector>

#include "base/governor.h"
#include "base/instance.h"
#include "omq/omq.h"
#include "verify/witness.h"

namespace gqe {

/// How an OMQ was evaluated, with an exactness guarantee.
struct OmqEvalResult {
  std::vector<std::vector<Term>> answers;

  /// True if the method is sound and complete for the ontology class
  /// (guarded / terminating sets); false for the bounded-chase fallback
  /// or any governed (partial) run.
  bool exact = true;

  /// One of "empty-ontology", "guarded-portion", "terminating-chase",
  /// "bounded-chase".
  std::string method;

  /// Why the run ended (a guard rail, or kCompleted).
  Status status = Status::kCompleted;

  /// True when a guard rail tripped somewhere in the pipeline: the
  /// reported answers are a sound under-approximation of the certain
  /// answers, not necessarily all of them.
  bool partial = false;

  /// Machine-checkable certificate (only with options.witness.collect):
  /// per-answer homomorphism witnesses, plus — for the chase-backed
  /// methods — the replayable derivation log of the instance the
  /// homomorphisms target. See verify/verifier.h for the checkers.
  EvalWitness witness;
};

/// Options for OMQ evaluation.
struct OmqEvalOptions {
  /// Level bound for the bounded-chase fallback (non-guarded,
  /// non-terminating ontologies, e.g. general frontier-guarded sets).
  int fallback_chase_level = 16;

  /// One budget for the whole pipeline: the nested engines (guarded
  /// portion build or chase, then query evaluation) share a single
  /// governor, so OMQ → chase no longer multiplies caps. Ignored when
  /// `governor` is set.
  ExecutionBudget budget;

  /// Optional shared governor (see ChaseOptions::governor).
  Governor* governor = nullptr;

  /// Use the Prop. 2.1 tree-decomposition DP when deciding candidate
  /// answers (the Prop. 3.3(3) FPT algorithm when q ∈ UCQ_k).
  bool use_tree_dp = false;

  /// When non-empty, crash-safe evaluation: the chase paths resume from
  /// (and write) round-boundary snapshots in this directory instead of
  /// re-chasing from scratch, and the guarded path reuses a
  /// saturated-portion snapshot. Snapshot kinds share the directory
  /// without clashing (chase-<round>.snap vs portion-<fp>.snap), and a
  /// directory written by a different workload is detected by
  /// fingerprint and ignored.
  std::string checkpoint_dir;

  /// Certificate collection (verify/witness.h). Off by default: the
  /// chase logs every trigger firing and each answer is paired with its
  /// witnessing homomorphism, which costs memory proportional to the
  /// materialized instance.
  WitnessOptions witness;
};

/// Certain answers Q(D) (Section 3.1 / Proposition 3.1). Dispatches by
/// ontology class: direct evaluation (empty Σ), guarded chase portion
/// (Σ ∈ G, exact), full chase (oblivious-terminating Σ, exact), bounded
/// chase (otherwise, sound but possibly incomplete — flagged).
OmqEvalResult EvaluateOmq(const Omq& omq, const Instance& db,
                          const OmqEvalOptions& options = {});

/// Decides c̄ ∈ Q(D) — the paper's OMQ-Evaluation problem.
bool OmqHolds(const Omq& omq, const Instance& db,
              const std::vector<Term>& answer,
              const OmqEvalOptions& options = {});

}  // namespace gqe

#endif  // GQE_OMQ_EVALUATION_H_
