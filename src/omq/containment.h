#ifndef GQE_OMQ_CONTAINMENT_H_
#define GQE_OMQ_CONTAINMENT_H_

#include "base/governor.h"
#include "guarded/type_closure.h"
#include "omq/omq.h"

namespace gqe {

/// Containment Q1 ⊆ Q2 for OMQs with full data schema sharing the same
/// guarded ontology Σ (the case needed by the meta-problem procedures,
/// Sections 4–5): Q1 ⊆ Q2 iff for every disjunct p of q1, the frozen
/// answer tuple of p is a certain answer of q2 over (D[p], Σ)
/// (Proposition 4.5 lifted through Proposition 5.5). Sound and complete
/// for guarded Σ by finite controllability.
///
/// `engine`, when given, must have been built for q1's/q2's shared Σ.
/// The optional shared `governor` bounds every per-disjunct certain-answer
/// check; a tripped run returns false conservatively (check the governor's
/// status before trusting a negative answer).
bool OmqContainedSameOntology(const Omq& q1, const Omq& q2,
                              TypeClosureEngine* engine = nullptr,
                              Governor* governor = nullptr);

bool OmqEquivalentSameOntology(const Omq& q1, const Omq& q2,
                               TypeClosureEngine* engine = nullptr,
                               Governor* governor = nullptr);

}  // namespace gqe

#endif  // GQE_OMQ_CONTAINMENT_H_
