#ifndef GQE_WORKLOAD_GENERATORS_H_
#define GQE_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/instance.h"
#include "graph/graph.h"
#include "query/cq.h"
#include "tgd/tgd.h"

namespace gqe {

/// Deterministic pseudo-random generator for workloads (benches must be
/// reproducible).
class WorkloadRng {
 public:
  explicit WorkloadRng(uint64_t seed) : state_(seed * 2654435761u + 88172645u) {}

  uint32_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return static_cast<uint32_t>(state_ >> 32);
  }

  /// Uniform in [0, bound).
  uint32_t Below(uint32_t bound) { return bound == 0 ? 0 : Next() % bound; }

  bool Chance(int percent) { return static_cast<int>(Below(100)) < percent; }

 private:
  uint64_t state_;
};

// --- Graphs ---------------------------------------------------------------

/// Erdős–Rényi G(n, p) with edge probability `percent`/100.
Graph RandomGraph(int n, int percent, uint64_t seed);

/// A random graph with a planted k-clique (guaranteed to contain one).
Graph PlantedCliqueGraph(int n, int percent, int k, uint64_t seed);

// --- Databases ------------------------------------------------------------

/// A random binary-relation database: `facts` facts over `domain_size`
/// constants using relation `rel`. Constant names are prefixed for
/// isolation between benches.
Instance RandomBinaryDatabase(const std::string& rel, int domain_size,
                              int facts, uint64_t seed,
                              const std::string& prefix = "d");

/// Directed grid data: rows x cols cells with `h_rel` / `v_rel` facts
/// (satisfiable target for grid queries).
Instance GridDatabase(const std::string& h_rel, const std::string& v_rel,
                      int rows, int cols, const std::string& prefix = "g");

// --- Queries ----------------------------------------------------------------

/// Boolean path CQ of `length` edges over `rel` (treewidth 1).
CQ PathQuery(const std::string& rel, int length);

/// Boolean rows x cols grid CQ over `h_rel`/`v_rel` (treewidth
/// min(rows, cols)).
CQ GridQuery(const std::string& h_rel, const std::string& v_rel, int rows,
             int cols);

/// Boolean k-clique CQ over `rel` (treewidth k-1).
CQ CliqueQuery(const std::string& rel, int k);

// --- Ontologies -------------------------------------------------------------

/// A chain of unary inclusion dependencies a0 ⊆ a1 ⊆ ... ⊆ a_depth over
/// predicates `<prefix><i>` (linear, guarded, full).
TgdSet UnaryChainOntology(const std::string& prefix, int depth);

/// Random inclusion dependencies over `num_preds` binary predicates
/// (linear ⊆ guarded), possibly with existential heads.
TgdSet RandomInclusionDependencies(const std::string& prefix, int num_preds,
                                   int num_tgds, int existential_percent,
                                   uint64_t seed);

}  // namespace gqe

#endif  // GQE_WORKLOAD_GENERATORS_H_
