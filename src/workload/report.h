#ifndef GQE_WORKLOAD_REPORT_H_
#define GQE_WORKLOAD_REPORT_H_

#include <chrono>
#include <string>
#include <vector>

#include "base/governor.h"

namespace gqe {

/// A plain-text table printer for benchmark reports (the "rows/series"
/// the experiments print; see EXPERIMENTS.md).
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with 3 significant decimals.
  static std::string Cell(double value);
  static std::string Cell(size_t value);
  static std::string Cell(int value);
  static std::string Cell(bool value);

  /// Prints with aligned columns to stdout.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Outcome of the supervisor's independent witness check of a worker
/// result (serve --verify). Every accepted result carries exactly one:
/// kNotChecked when verification is off, kVerified when the certificate
/// decoded and every check passed, kUnverified when the result stands
/// but no full certificate was available to check (e.g. a resume from a
/// pre-witness snapshot). Rejected certificates never reach a result
/// row — the attempt is retried through the degradation ladder — so
/// kRejected appears only in per-attempt causes.
enum class VerifyOutcome : int {
  kNotChecked = 0,
  kVerified = 1,
  kUnverified = 2,
  kRejected = 3,
};

const char* VerifyOutcomeName(VerifyOutcome outcome);

/// Parses and strips a `--threads=N` / `--threads N` flag from argv
/// (benches share the flag with ChaseOptions::threads / HomOptions
/// semantics: 1 sequential, 0 hardware concurrency). Returns
/// `default_threads` when the flag is absent.
int ParseThreadsFlag(int* argc, char** argv, int default_threads = 1);

/// Parses and strips `--deadline-ms=X` / `--deadline-ms X` and
/// `--budget-facts=N` / `--budget-facts N` flags from argv into an
/// ExecutionBudget (0 in either field means unlimited, the default).
/// Benches pass the result into engine options so entire configurations
/// run under one budget.
ExecutionBudget ParseBudgetFlags(int* argc, char** argv);

/// `--checkpoint-dir=PATH` / `--checkpoint-every=N` bench flags. An
/// empty dir means checkpointing is off (the default); `every` is the
/// round granularity passed to ChaseOptions::checkpoint_every.
struct CheckpointFlags {
  std::string dir;
  int every = 1;

  bool enabled() const { return !dir.empty(); }
};

/// Parses and strips the checkpoint flags from argv.
CheckpointFlags ParseCheckpointFlags(int* argc, char** argv);

/// Routes SIGINT/SIGTERM to the token's cancellation flag. The installed
/// handler is strictly async-signal-safe: it sets a volatile
/// sig_atomic_t and stores through the token's lock-free atomic flag —
/// no stream I/O, no allocation, no shared_ptr operations. Chase rounds
/// are transactional and cancellation trips at a round boundary, so an
/// interrupted bench still writes a final consistent checkpoint and
/// prints its partial report table before exiting — only `kill -9`
/// (untrappable) loses the tail since the last snapshot. Call once per
/// process; a second call rebinds the handlers to the new token.
void InstallBenchSignalHandlers(const CancelToken& token);

/// True once a SIGINT/SIGTERM was delivered to the installed handler
/// (reads the handler's volatile sig_atomic_t flag).
bool BenchSignalCaught();

/// Watchdog for governed bench runs: records each configuration's
/// Outcome and prints a timeout-vs-complete summary. Dichotomy benches
/// use it so a run under `--deadline-ms` shows *which* configurations
/// were cut off rather than silently reporting partial numbers.
class BenchWatchdog {
 public:
  void Record(const std::string& config, const Outcome& outcome);

  /// Number of recorded configurations that did not complete.
  size_t incomplete() const;

  /// Prints config | status | elapsed | facts | nodes rows plus a
  /// one-line timed-out-vs-complete tally. No-op when nothing recorded.
  void Print(const std::string& title) const;

 private:
  struct Entry {
    std::string config;
    Outcome outcome;
  };
  std::vector<Entry> entries_;
};

/// Peak resident set size of this process in kilobytes (getrusage), or 0
/// where unavailable. Recorded in the machine-readable bench output so
/// the memory side of the data-layout work is tracked across PRs.
long PeakRssKb();

/// `--json[=PATH]` bench flag: write a machine-readable benchmark record
/// alongside the human tables. The default path is BENCH_<name>.json in
/// the current directory. `--json-baseline=KEY=NS` flags (repeatable)
/// attach pre-recorded baseline timings so the file carries its own
/// speedup trajectory.
struct BenchJsonFlags {
  bool enabled = false;
  std::string path;  // empty: derive BENCH_<name>.json
  std::vector<std::pair<std::string, double>> baselines;
};

BenchJsonFlags ParseBenchJsonFlags(int* argc, char** argv);

/// Accumulates benchmark entries and writes BENCH_<name>.json: one
/// object per entry with ns/op, optional facts/sec throughput, the
/// attached baseline and speedup, plus a process-wide peak-RSS field.
/// The schema is append-friendly: CI uploads the file per PR and the
/// trajectory is the series of per-PR files.
class BenchJson {
 public:
  /// `name` becomes the default file stem (BENCH_<name>.json).
  BenchJson(std::string name, BenchJsonFlags flags);

  /// Adds one benchmark entry. `ns_per_op` is the per-iteration wall
  /// time; `facts_per_sec` <= 0 omits the throughput field. If a
  /// baseline with the same key was passed via --json-baseline, the
  /// entry records it and the speedup factor.
  void Add(const std::string& key, double ns_per_op,
           double facts_per_sec = 0.0);

  /// Attaches an arbitrary numeric metadata field to the file header.
  void Meta(const std::string& key, double value);

  /// Writes the file (no-op when the flags disabled JSON). Returns the
  /// path written, or an empty string when disabled.
  std::string Write() const;

 private:
  std::string name_;
  BenchJsonFlags flags_;
  struct Entry {
    std::string key;
    double ns_per_op;
    double facts_per_sec;
  };
  std::vector<Entry> entries_;
  std::vector<std::pair<std::string, double>> meta_;
};

/// Wall-clock stopwatch for bench loops.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gqe

#endif  // GQE_WORKLOAD_REPORT_H_
