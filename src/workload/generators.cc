#include "workload/generators.h"

#include <cassert>

#include "base/interner.h"

namespace gqe {

Graph RandomGraph(int n, int percent, uint64_t seed) {
  WorkloadRng rng(seed);
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.Chance(percent)) g.AddEdge(u, v);
    }
  }
  return g;
}

Graph PlantedCliqueGraph(int n, int percent, int k, uint64_t seed) {
  assert(k <= n);
  Graph g = RandomGraph(n, percent, seed);
  WorkloadRng rng(seed ^ 0x5eedf00du);
  // Plant the clique on k distinct random vertices.
  std::vector<int> vertices;
  while (static_cast<int>(vertices.size()) < k) {
    int v = static_cast<int>(rng.Below(static_cast<uint32_t>(n)));
    bool fresh = true;
    for (int u : vertices) {
      if (u == v) fresh = false;
    }
    if (fresh) vertices.push_back(v);
  }
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = i + 1; j < vertices.size(); ++j) {
      g.AddEdge(vertices[i], vertices[j]);
    }
  }
  return g;
}

Instance RandomBinaryDatabase(const std::string& rel, int domain_size,
                              int facts, uint64_t seed,
                              const std::string& prefix) {
  WorkloadRng rng(seed);
  Instance db;
  // The generator IS the workload fingerprint: at most `domain_size`
  // distinct constants and `facts` binary facts. Reserving up front
  // means the bulk load pays zero intermediate rehashes.
  Interner::Global().Reserve(Interner::Pool::kConstant,
                             Interner::Global().PoolSize(
                                 Interner::Pool::kConstant) +
                                 static_cast<size_t>(domain_size));
  db.Reserve(static_cast<size_t>(facts), static_cast<size_t>(facts) * 2);
  auto constant = [&prefix](uint32_t i) {
    return Term::Constant(prefix + std::to_string(i));
  };
  for (int i = 0; i < facts; ++i) {
    db.Insert(Atom::Make(
        rel, {constant(rng.Below(static_cast<uint32_t>(domain_size))),
              constant(rng.Below(static_cast<uint32_t>(domain_size)))}));
  }
  return db;
}

Instance GridDatabase(const std::string& h_rel, const std::string& v_rel,
                      int rows, int cols, const std::string& prefix) {
  Instance db;
  const size_t cells = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  Interner::Global().Reserve(
      Interner::Pool::kConstant,
      Interner::Global().PoolSize(Interner::Pool::kConstant) + cells);
  db.Reserve(cells * 2, cells * 4);
  auto cell = [&prefix](int i, int j) {
    return Term::Constant(prefix + std::to_string(i) + "_" +
                          std::to_string(j));
  };
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (j + 1 < cols) {
        db.Insert(Atom::Make(h_rel, {cell(i, j), cell(i, j + 1)}));
      }
      if (i + 1 < rows) {
        db.Insert(Atom::Make(v_rel, {cell(i, j), cell(i + 1, j)}));
      }
    }
  }
  return db;
}

CQ PathQuery(const std::string& rel, int length) {
  std::vector<Atom> atoms;
  auto var = [&rel](int i) {
    return Term::Variable("p" + rel + std::to_string(i));
  };
  for (int i = 0; i < length; ++i) {
    atoms.push_back(Atom::Make(rel, {var(i), var(i + 1)}));
  }
  return CQ({}, std::move(atoms));
}

CQ GridQuery(const std::string& h_rel, const std::string& v_rel, int rows,
             int cols) {
  std::vector<Atom> atoms;
  auto var = [&h_rel](int i, int j) {
    return Term::Variable("q" + h_rel + std::to_string(i) + "_" +
                          std::to_string(j));
  };
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (j + 1 < cols) {
        atoms.push_back(Atom::Make(h_rel, {var(i, j), var(i, j + 1)}));
      }
      if (i + 1 < rows) {
        atoms.push_back(Atom::Make(v_rel, {var(i, j), var(i + 1, j)}));
      }
    }
  }
  return CQ({}, std::move(atoms));
}

CQ CliqueQuery(const std::string& rel, int k) {
  std::vector<Atom> atoms;
  auto var = [&rel](int i) {
    return Term::Variable("c" + rel + std::to_string(i));
  };
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i != j) atoms.push_back(Atom::Make(rel, {var(i), var(j)}));
    }
  }
  return CQ({}, std::move(atoms));
}

TgdSet UnaryChainOntology(const std::string& prefix, int depth) {
  TgdSet tgds;
  Term x = Term::Variable("X");
  for (int i = 0; i < depth; ++i) {
    tgds.push_back(Tgd({Atom::Make(prefix + std::to_string(i), {x})},
                       {Atom::Make(prefix + std::to_string(i + 1), {x})}));
  }
  return tgds;
}

TgdSet RandomInclusionDependencies(const std::string& prefix, int num_preds,
                                   int num_tgds, int existential_percent,
                                   uint64_t seed) {
  WorkloadRng rng(seed);
  TgdSet tgds;
  Term x = Term::Variable("X");
  Term y = Term::Variable("Y");
  Term z = Term::Variable("Z");
  auto pred = [&prefix](uint32_t i) {
    return prefix + std::to_string(i);
  };
  for (int i = 0; i < num_tgds; ++i) {
    const std::string body_pred = pred(rng.Below(num_preds));
    const std::string head_pred = pred(rng.Below(num_preds));
    // Body R(X, Y); head: permutation or existential variant.
    Atom body = Atom::Make(body_pred, {x, y});
    Atom head = rng.Chance(existential_percent)
                    ? Atom::Make(head_pred, {x, z})   // existential Z
                    : (rng.Chance(50) ? Atom::Make(head_pred, {y, x})
                                      : Atom::Make(head_pred, {x, y}));
    tgds.push_back(Tgd({body}, {head}));
  }
  return tgds;
}

}  // namespace gqe
