#include "workload/report.h"

#include <signal.h>
#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gqe {

ReportTable::ReportTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string ReportTable::Cell(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

std::string ReportTable::Cell(size_t value) { return std::to_string(value); }
std::string ReportTable::Cell(int value) { return std::to_string(value); }
std::string ReportTable::Cell(bool value) { return value ? "yes" : "no"; }

void ReportTable::Print(const std::string& title) const {
  std::printf("\n== %s ==\n", title.c_str());
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto print_row = [&widths](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < widths.size(); ++c) {
    for (size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

const char* VerifyOutcomeName(VerifyOutcome outcome) {
  switch (outcome) {
    case VerifyOutcome::kNotChecked:
      return "not-checked";
    case VerifyOutcome::kVerified:
      return "verified";
    case VerifyOutcome::kUnverified:
      return "unverified";
    case VerifyOutcome::kRejected:
      return "rejected";
  }
  return "unknown";
}

int ParseThreadsFlag(int* argc, char** argv, int default_threads) {
  int threads = default_threads;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
      continue;
    }
    if (arg == "--threads" && i + 1 < *argc) {
      threads = std::atoi(argv[++i]);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return threads;
}

ExecutionBudget ParseBudgetFlags(int* argc, char** argv) {
  ExecutionBudget budget;
  budget.max_facts = 0;  // benches default to unlimited, not engine caps
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--deadline-ms=", 0) == 0) {
      budget.deadline_ms = std::atof(arg.c_str() + 14);
      continue;
    }
    if (arg == "--deadline-ms" && i + 1 < *argc) {
      budget.deadline_ms = std::atof(argv[++i]);
      continue;
    }
    if (arg.rfind("--budget-facts=", 0) == 0) {
      budget.max_facts = static_cast<size_t>(std::atoll(arg.c_str() + 15));
      continue;
    }
    if (arg == "--budget-facts" && i + 1 < *argc) {
      budget.max_facts = static_cast<size_t>(std::atoll(argv[++i]));
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return budget;
}

CheckpointFlags ParseCheckpointFlags(int* argc, char** argv) {
  CheckpointFlags flags;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--checkpoint-dir=", 0) == 0) {
      flags.dir = arg.substr(17);
      continue;
    }
    if (arg == "--checkpoint-dir" && i + 1 < *argc) {
      flags.dir = argv[++i];
      continue;
    }
    if (arg.rfind("--checkpoint-every=", 0) == 0) {
      flags.every = std::atoi(arg.c_str() + 19);
      continue;
    }
    if (arg == "--checkpoint-every" && i + 1 < *argc) {
      flags.every = std::atoi(argv[++i]);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  if (flags.every < 1) flags.every = 1;
  return flags;
}

namespace {

// Signal-handler state. The handler itself touches only async-signal-safe
// primitives: a volatile sig_atomic_t flag and a store through a
// lock-free std::atomic<bool>* loaded from an atomic pointer. It must
// NOT call CancelToken::RequestCancel directly — dereferencing the
// token's shared_ptr control block (and especially rebinding the global
// token while a signal is in flight) is not async-signal-safe. The
// shared_ptr itself is kept alive by g_signal_token, which is only
// assigned *before* the raw pointer is published.
volatile std::sig_atomic_t g_signal_caught = 0;
std::atomic<std::atomic<bool>*> g_signal_flag{nullptr};
CancelToken g_signal_token;  // owns the flag the handler stores through

void BenchSignalHandler(int) {
  g_signal_caught = 1;
  std::atomic<bool>* flag = g_signal_flag.load(std::memory_order_acquire);
  if (flag != nullptr) flag->store(true, std::memory_order_release);
  // No stream I/O, no allocation, no shared_ptr ops here: anything else
  // (a progress message, a checkpoint) happens cooperatively once the
  // engines observe the tripped token at their next governor checkpoint.
}

}  // namespace

void InstallBenchSignalHandlers(const CancelToken& token) {
  // Unpublish the old flag first so a signal landing mid-rebind either
  // sees the old (still-owned) flag or none — never a dangling pointer.
  g_signal_flag.store(nullptr, std::memory_order_release);
  g_signal_token = token;
  g_signal_flag.store(g_signal_token.SignalSafeFlag(),
                      std::memory_order_release);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = BenchSignalHandler;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: slow syscalls return EINTR so bench loops re-check the
  // token promptly instead of blocking through the cancellation.
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

bool BenchSignalCaught() { return g_signal_caught != 0; }

void BenchWatchdog::Record(const std::string& config, const Outcome& outcome) {
  entries_.push_back({config, outcome});
}

size_t BenchWatchdog::incomplete() const {
  size_t n = 0;
  for (const Entry& entry : entries_) {
    if (!entry.outcome.ok()) ++n;
  }
  return n;
}

void BenchWatchdog::Print(const std::string& title) const {
  if (entries_.empty()) return;
  ReportTable table({"configuration", "status", "elapsed ms", "facts",
                     "nodes"});
  for (const Entry& entry : entries_) {
    table.AddRow({entry.config, StatusName(entry.outcome.status),
                  ReportTable::Cell(entry.outcome.elapsed_ms),
                  ReportTable::Cell(entry.outcome.facts_charged),
                  ReportTable::Cell(entry.outcome.nodes_charged)});
  }
  table.Print(title);
  std::printf("watchdog: %zu/%zu configurations timed out or were cut\n",
              incomplete(), entries_.size());
}


long PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<long>(usage.ru_maxrss / 1024);  // bytes on macOS
#else
  return usage.ru_maxrss;  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

BenchJsonFlags ParseBenchJsonFlags(int* argc, char** argv) {
  BenchJsonFlags flags;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      flags.enabled = true;
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      flags.enabled = true;
      flags.path = arg.substr(7);
      continue;
    }
    if (arg.rfind("--json-baseline=", 0) == 0) {
      const std::string kv = arg.substr(16);
      const size_t eq = kv.rfind('=');
      if (eq != std::string::npos) {
        flags.enabled = true;
        flags.baselines.emplace_back(kv.substr(0, eq),
                                     std::atof(kv.c_str() + eq + 1));
      }
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return flags;
}

BenchJson::BenchJson(std::string name, BenchJsonFlags flags)
    : name_(std::move(name)), flags_(std::move(flags)) {}

void BenchJson::Add(const std::string& key, double ns_per_op,
                    double facts_per_sec) {
  entries_.push_back({key, ns_per_op, facts_per_sec});
}

void BenchJson::Meta(const std::string& key, double value) {
  meta_.emplace_back(key, value);
}

std::string BenchJson::Write() const {
  if (!flags_.enabled) return "";
  const std::string path =
      flags_.path.empty() ? "BENCH_" + name_ + ".json" : flags_.path;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench json: cannot open %s\n", path.c_str());
    return "";
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"peak_rss_kb\": %ld",
               name_.c_str(), PeakRssKb());
  for (const auto& [key, value] : meta_) {
    std::fprintf(f, ",\n  \"%s\": %.6g", key.c_str(), value);
  }
  std::fprintf(f, ",\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"ns_per_op\": %.1f",
                 e.key.c_str(), e.ns_per_op);
    if (e.facts_per_sec > 0) {
      std::fprintf(f, ", \"facts_per_sec\": %.1f", e.facts_per_sec);
    }
    for (const auto& [key, baseline_ns] : flags_.baselines) {
      if (key != e.key || baseline_ns <= 0) continue;
      std::fprintf(f, ", \"baseline_ns_per_op\": %.1f, \"speedup\": %.3f",
                   baseline_ns, baseline_ns / e.ns_per_op);
      break;
    }
    std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("bench json: wrote %s\n", path.c_str());
  return path;
}

}  // namespace gqe
