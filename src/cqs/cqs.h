#ifndef GQE_CQS_CQS_H_
#define GQE_CQS_CQS_H_

#include <string>

#include "query/cq.h"
#include "tgd/tgd.h"

namespace gqe {

/// A constraint-query specification S = (Σ, q) (Section 3.2): Σ is a set
/// of integrity constraints and q a UCQ, evaluated under closed-world
/// semantics over databases *promised* to satisfy Σ.
struct Cqs {
  TgdSet sigma;
  UCQ query;

  size_t Size() const;

  /// Well-formedness plus optional class requirement ("G", "FG", "FGm"
  /// with `m` via max_head_atoms, "" for none).
  bool Validate(const std::string& require = "", int max_head_atoms = 0,
                std::string* why = nullptr) const;

  std::string ToString() const;
};

}  // namespace gqe

#endif  // GQE_CQS_CQS_H_
