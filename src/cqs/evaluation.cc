#include "cqs/evaluation.h"

#include "chase/chase.h"
#include "query/evaluation.h"
#include "query/tw_evaluation.h"

namespace gqe {

CqsEvalResult EvaluateCqs(const Cqs& cqs, const Instance& db,
                          bool check_promise, Governor* governor,
                          const WitnessOptions& witness) {
  CqsEvalResult result;
  if (check_promise && !Satisfies(db, cqs.sigma)) {
    result.promise_ok = false;
    return result;
  }
  if (witness.collect) {
    result.answers = EvaluateUCQWithWitnesses(cqs.query, db, &result.witnesses,
                                              /*limit=*/0, governor);
  } else {
    result.answers = EvaluateUCQ(cqs.query, db, /*limit=*/0, governor);
  }
  if (governor != nullptr) result.status = governor->status();
  return result;
}

bool CqsHolds(const Cqs& cqs, const Instance& db,
              const std::vector<Term>& answer, bool use_tree_dp,
              Governor* governor) {
  return use_tree_dp ? HoldsUcqTreeDp(cqs.query, db, answer, governor)
                     : HoldsUCQ(cqs.query, db, answer, governor);
}

}  // namespace gqe
