#ifndef GQE_CQS_CONTAINMENT_H_
#define GQE_CQS_CONTAINMENT_H_

#include "base/governor.h"
#include "cqs/cqs.h"
#include "guarded/type_closure.h"

namespace gqe {

/// Containment under constraints, q1 ⊆_Σ q2 (Section 4.2 /
/// Proposition 4.5): for each disjunct p1 of q1 there is a disjunct p2 of
/// q2 with x̄ ∈ p2(chase(p1, Σ)).
///
/// For guarded Σ the chase evaluation is exact (guarded chase portion).
/// For frontier-guarded Σ beyond G, a level-bounded chase is used: the
/// check is then sound for "contained" answers up to the bound
/// (`fg_chase_level`); all shipped workloads have chases that stabilize
/// well below it.
/// The optional shared `governor` bounds the per-disjunct chase and
/// query evaluation; a tripped run returns false conservatively (check
/// the governor's status before trusting a negative answer).
bool CqsContained(const Cqs& s1, const Cqs& s2,
                  TypeClosureEngine* engine = nullptr,
                  int fg_chase_level = 12, Governor* governor = nullptr);

bool CqsEquivalent(const Cqs& s1, const Cqs& s2,
                   TypeClosureEngine* engine = nullptr,
                   int fg_chase_level = 12, Governor* governor = nullptr);

}  // namespace gqe

#endif  // GQE_CQS_CONTAINMENT_H_
