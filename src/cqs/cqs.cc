#include "cqs/cqs.h"

namespace gqe {

size_t Cqs::Size() const {
  size_t total = query.Size();
  for (const Tgd& tgd : sigma) {
    for (const Atom& atom : tgd.body()) total += 1 + atom.args().size();
    for (const Atom& atom : tgd.head()) total += 1 + atom.args().size();
  }
  return total;
}

bool Cqs::Validate(const std::string& require, int max_head_atoms,
                   std::string* why) const {
  auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (!query.Validate(why)) return false;
  for (const Tgd& tgd : sigma) {
    if (!tgd.Validate(why)) return false;
  }
  if (require == "G" && !IsGuardedSet(sigma)) {
    return fail("constraints not guarded");
  }
  if ((require == "FG" || require == "FGm") &&
      !IsFrontierGuardedSet(sigma)) {
    return fail("constraints not frontier-guarded");
  }
  if (require == "FGm" && MaxHeadAtoms(sigma) > max_head_atoms) {
    return fail("more than m head atoms");
  }
  return true;
}

std::string Cqs::ToString() const {
  return "CQS(|Sigma|=" + std::to_string(sigma.size()) +
         ", q=" + query.ToString() + ")";
}

}  // namespace gqe
