#include "cqs/containment.h"

#include <cassert>

#include "chase/chase.h"
#include "guarded/omq_eval.h"
#include "query/evaluation.h"

namespace gqe {

namespace {

/// x̄ ∈ q2(chase(D[p1], Σ)) — the Proposition 4.5 test for one disjunct.
bool DisjunctContained(const CQ& p1, const UCQ& q2, const TgdSet& sigma,
                       TypeClosureEngine* engine, int fg_chase_level,
                       Governor* governor) {
  Instance canonical = p1.CanonicalInstance();
  std::vector<Term> frozen_answer;
  for (Term v : p1.answer_vars()) {
    frozen_answer.push_back(CQ::FrozenConstant(v));
  }
  if (sigma.empty()) {
    return HoldsUCQ(q2, canonical, frozen_answer, governor);
  }
  if (IsGuardedSet(sigma)) {
    GuardedEvalOptions guarded_options;
    guarded_options.governor = governor;
    return GuardedCertainlyHolds(canonical, sigma, q2, frozen_answer,
                                 guarded_options, engine);
  }
  // Frontier-guarded (or general) fallback: level-bounded chase.
  ChaseOptions options;
  options.max_level = fg_chase_level;
  options.governor = governor;
  ChaseResult chased = Chase(canonical, sigma, options);
  return HoldsUCQ(q2, chased.instance, frozen_answer, governor);
}

}  // namespace

bool CqsContained(const Cqs& s1, const Cqs& s2, TypeClosureEngine* engine,
                  int fg_chase_level, Governor* governor) {
  assert(s1.query.arity() == s2.query.arity());
  for (const CQ& p1 : s1.query.disjuncts()) {
    if (!DisjunctContained(p1, s2.query, s1.sigma, engine, fg_chase_level,
                           governor)) {
      return false;
    }
    if (governor != nullptr && governor->Tripped()) return false;
  }
  return true;
}

bool CqsEquivalent(const Cqs& s1, const Cqs& s2, TypeClosureEngine* engine,
                   int fg_chase_level, Governor* governor) {
  return CqsContained(s1, s2, engine, fg_chase_level, governor) &&
         CqsContained(s2, s1, engine, fg_chase_level, governor);
}

}  // namespace gqe
