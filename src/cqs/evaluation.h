#ifndef GQE_CQS_EVALUATION_H_
#define GQE_CQS_EVALUATION_H_

#include <vector>

#include "base/governor.h"
#include "base/instance.h"
#include "cqs/cqs.h"
#include "verify/witness.h"

namespace gqe {

/// CQS-Evaluation (Section 3.2): the database is *promised* to satisfy
/// the constraints; evaluation is plain closed-world UCQ evaluation.
/// `check_promise` verifies D |= Σ first (aborting the promise violation
/// into a `promise_ok=false` result rather than crashing).
struct CqsEvalResult {
  std::vector<std::vector<Term>> answers;
  bool promise_ok = true;

  /// Why the run ended. A non-Completed status means the answer set may
  /// be incomplete (the enumeration was cut short by a guard rail).
  Status status = Status::kCompleted;

  /// One homomorphism certificate per answer (aligned with `answers`),
  /// filled only when witness collection was requested.
  std::vector<HomWitness> witnesses;
};

CqsEvalResult EvaluateCqs(const Cqs& cqs, const Instance& db,
                          bool check_promise = false,
                          Governor* governor = nullptr,
                          const WitnessOptions& witness = {});

/// Decides c̄ ∈ q(D) under the promise. With `use_tree_dp`, uses the
/// Prop. 2.1 DP — the PTime algorithm behind Theorem 5.7(1) when
/// q ∈ UCQ_k.
bool CqsHolds(const Cqs& cqs, const Instance& db,
              const std::vector<Term>& answer, bool use_tree_dp = false,
              Governor* governor = nullptr);

}  // namespace gqe

#endif  // GQE_CQS_EVALUATION_H_
