#ifndef GQE_PARSER_PARSER_H_
#define GQE_PARSER_PARSER_H_

#include <map>
#include <string>
#include <string_view>

#include "base/instance.h"
#include "query/cq.h"
#include "tgd/tgd.h"

namespace gqe {

/// A parsed program: facts, TGDs and named (U)CQs.
///
/// Surface syntax (Datalog±-style, one statement per '.'):
///
///   % comments run to end of line (also '#')
///   edge(a, b).                          % fact: lowercase args are constants
///   edge(X,Y), edge(Y,Z) -> edge(X,Z).   % TGD; head vars not in the body
///   person(X) -> parent(X,Y).            %   are existentially quantified
///   q(X) :- edge(X,Y), label(Y).         % CQ with answer variables
///   q(X) :- loop(X).                     % same head name: UCQ disjunct
///
/// Identifiers starting with an uppercase letter are variables; everything
/// else (including numbers) is a constant. Predicate arity is fixed by
/// first use.
struct Program {
  Instance database;
  TgdSet tgds;
  std::map<std::string, UCQ> queries;
};

struct ParseResult {
  bool ok = false;
  Program program;
  std::string error;
  int error_line = 0;
};

/// Parses a program from text. On failure, `error`/`error_line` describe
/// the first problem.
ParseResult ParseProgram(std::string_view text);

/// Parses a single statement kind from text (convenience for tests and
/// examples); aborts on parse failure.
Instance ParseDatabase(std::string_view text);
TgdSet ParseTgds(std::string_view text);
UCQ ParseUcq(std::string_view text);
CQ ParseCq(std::string_view text);

}  // namespace gqe

#endif  // GQE_PARSER_PARSER_H_
