#ifndef GQE_PARSER_PARSER_H_
#define GQE_PARSER_PARSER_H_

#include <map>
#include <string>
#include <string_view>

#include "base/instance.h"
#include "query/cq.h"
#include "tgd/tgd.h"

namespace gqe {

/// A parsed program: facts, TGDs and named (U)CQs.
///
/// Surface syntax (Datalog±-style, one statement per '.'):
///
///   % comments run to end of line (also '#')
///   edge(a, b).                          % fact: lowercase args are constants
///   edge(X,Y), edge(Y,Z) -> edge(X,Z).   % TGD; head vars not in the body
///   person(X) -> parent(X,Y).            %   are existentially quantified
///   q(X) :- edge(X,Y), label(Y).         % CQ with answer variables
///   q(X) :- loop(X).                     % same head name: UCQ disjunct
///
/// Identifiers starting with an uppercase letter are variables; everything
/// else (including numbers) is a constant. Predicate arity is fixed by
/// first use.
struct Program {
  Instance database;
  TgdSet tgds;
  std::map<std::string, UCQ> queries;
};

struct ParseResult {
  bool ok = false;
  Program program;
  /// First problem found: message, 1-based line/column of the offending
  /// token, and the token's text (escaped printably; "end of input" when
  /// the program just stops short).
  std::string error;
  int error_line = 0;
  int error_column = 0;
  std::string error_token;
};

/// Parses a program from text. On failure, `error` / `error_line` /
/// `error_column` / `error_token` describe the first problem. Arbitrary
/// bytes — including embedded NULs — are rejected with a diagnostic,
/// never a crash.
///
/// Labelled nulls print as `_:n<id>` (Term::ToString) and parse back to
/// Term::Null(id), so Instance::ToString output round-trips. Parsing a
/// null advances the global null counter past its id, keeping later
/// fresh nulls collision-free.
ParseResult ParseProgram(std::string_view text);

/// Parses a single statement kind from text (convenience for tests and
/// examples); aborts on parse failure.
Instance ParseDatabase(std::string_view text);
TgdSet ParseTgds(std::string_view text);
UCQ ParseUcq(std::string_view text);
CQ ParseCq(std::string_view text);

}  // namespace gqe

#endif  // GQE_PARSER_PARSER_H_
