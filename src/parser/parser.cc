#include "parser/parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace gqe {

namespace {

enum class TokenKind {
  kIdentifier,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kArrow,      // ->
  kTurnstile,  // :-
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  bool Tokenize(std::vector<Token>* out, std::string* error, int* error_line) {
    int line = 1;
    size_t i = 0;
    while (i < text_.size()) {
      const char c = text_[i];
      if (c == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '%' || c == '#') {
        while (i < text_.size() && text_[i] != '\n') ++i;
        continue;
      }
      if (c == '(') {
        out->push_back({TokenKind::kLParen, "(", line});
        ++i;
        continue;
      }
      if (c == ')') {
        out->push_back({TokenKind::kRParen, ")", line});
        ++i;
        continue;
      }
      if (c == ',') {
        out->push_back({TokenKind::kComma, ",", line});
        ++i;
        continue;
      }
      if (c == '.') {
        out->push_back({TokenKind::kDot, ".", line});
        ++i;
        continue;
      }
      if (c == '-' && i + 1 < text_.size() && text_[i + 1] == '>') {
        out->push_back({TokenKind::kArrow, "->", line});
        i += 2;
        continue;
      }
      if (c == ':' && i + 1 < text_.size() && text_[i + 1] == '-') {
        out->push_back({TokenKind::kTurnstile, ":-", line});
        i += 2;
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '@') {
        size_t start = i;
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_' || text_[i] == '@')) {
          ++i;
        }
        out->push_back({TokenKind::kIdentifier,
                        std::string(text_.substr(start, i - start)), line});
        continue;
      }
      *error = std::string("unexpected character '") + c + "'";
      *error_line = line;
      return false;
    }
    out->push_back({TokenKind::kEnd, "", line});
    return true;
  }

 private:
  std::string_view text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  bool Run(Program* program, std::string* error, int* error_line) {
    while (Peek().kind != TokenKind::kEnd) {
      if (!Statement(program)) {
        *error = error_;
        *error_line = error_token_line_;
        return false;
      }
    }
    return true;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t index = pos_ + ahead;
    if (index >= tokens_.size()) index = tokens_.size() - 1;
    return tokens_[index];
  }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) return Fail(std::string("expected ") + what);
    Advance();
    return true;
  }

  bool Fail(const std::string& message) {
    error_ = message + " (got '" + Peek().text + "')";
    error_token_line_ = Peek().line;
    return false;
  }

  static bool IsVariableName(const std::string& name) {
    return !name.empty() && std::isupper(static_cast<unsigned char>(name[0]));
  }

  /// atom := identifier '(' term (',' term)* ')' | identifier '(' ')'
  bool ParseAtom(Atom* out) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Fail("expected predicate name");
    }
    std::string predicate = Advance().text;
    if (!Expect(TokenKind::kLParen, "'('")) return false;
    std::vector<Term> args;
    if (Peek().kind != TokenKind::kRParen) {
      for (;;) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Fail("expected term");
        }
        std::string name = Advance().text;
        args.push_back(IsVariableName(name) ? Term::Variable(name)
                                            : Term::Constant(name));
        if (Peek().kind != TokenKind::kComma) break;
        Advance();
      }
    }
    if (!Expect(TokenKind::kRParen, "')'")) return false;
    const PredicateId existing = predicates::Lookup(predicate);
    if (existing != static_cast<PredicateId>(-1) &&
        predicates::Arity(existing) != static_cast<int>(args.size())) {
      return Fail("predicate '" + predicate + "' used with arity " +
                  std::to_string(args.size()) + " but registered with " +
                  std::to_string(predicates::Arity(existing)));
    }
    *out = Atom::Make(predicate, std::move(args));
    return true;
  }

  bool ParseAtomList(std::vector<Atom>* out) {
    for (;;) {
      Atom atom;
      if (!ParseAtom(&atom)) return false;
      out->push_back(std::move(atom));
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    return true;
  }

  /// statement := fact '.' | tgd '.' | query '.'
  /// tgd := [atomlist] '->' atomlist
  /// query := atom ':-' atomlist
  bool Statement(Program* program) {
    // Empty-body TGD: leading '->'.
    if (Peek().kind == TokenKind::kArrow) {
      Advance();
      std::vector<Atom> head;
      if (!ParseAtomList(&head)) return false;
      if (!Expect(TokenKind::kDot, "'.'")) return false;
      program->tgds.emplace_back(std::vector<Atom>{}, std::move(head));
      return true;
    }
    std::vector<Atom> first;
    Atom head_atom;
    if (!ParseAtom(&head_atom)) return false;
    // Query?
    if (Peek().kind == TokenKind::kTurnstile) {
      Advance();
      std::vector<Atom> body;
      if (!ParseAtomList(&body)) return false;
      if (!Expect(TokenKind::kDot, "'.'")) return false;
      std::vector<Term> answer_vars;
      for (Term t : head_atom.args()) {
        if (!t.IsVariable()) {
          return Fail("query head arguments must be variables");
        }
        answer_vars.push_back(t);
      }
      CQ cq(std::move(answer_vars), std::move(body));
      std::string why;
      if (!cq.Validate(&why)) return Fail("invalid query: " + why);
      std::string name(predicates::Name(head_atom.predicate()));
      auto it = program->queries.find(name);
      if (it == program->queries.end()) {
        program->queries.emplace(name, UCQ({cq}));
      } else {
        if (it->second.arity() != cq.arity()) {
          return Fail("query '" + name + "' redeclared with different arity");
        }
        it->second.AddDisjunct(cq);
      }
      return true;
    }
    first.push_back(std::move(head_atom));
    while (Peek().kind == TokenKind::kComma) {
      Advance();
      Atom atom;
      if (!ParseAtom(&atom)) return false;
      first.push_back(std::move(atom));
    }
    // TGD?
    if (Peek().kind == TokenKind::kArrow) {
      Advance();
      std::vector<Atom> head;
      if (!ParseAtomList(&head)) return false;
      if (!Expect(TokenKind::kDot, "'.'")) return false;
      Tgd tgd(std::move(first), std::move(head));
      std::string why;
      if (!tgd.Validate(&why)) return Fail("invalid TGD: " + why);
      program->tgds.push_back(std::move(tgd));
      return true;
    }
    // Facts. Check groundness before consuming the dot so the error
    // points at the offending statement's line.
    for (const Atom& atom : first) {
      if (!atom.IsGround()) {
        return Fail("fact contains a variable: " + atom.ToString());
      }
    }
    if (!Expect(TokenKind::kDot, "'.', '->' or ':-'")) return false;
    for (const Atom& atom : first) program->database.Insert(atom);
    return true;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::string error_;
  int error_token_line_ = 0;
};

Program MustParse(std::string_view text) {
  ParseResult result = ParseProgram(text);
  if (!result.ok) {
    std::fprintf(stderr, "gqe parse error (line %d): %s\n", result.error_line,
                 result.error.c_str());
    std::abort();
  }
  return std::move(result.program);
}

}  // namespace

ParseResult ParseProgram(std::string_view text) {
  ParseResult result;
  std::vector<Token> tokens;
  Lexer lexer(text);
  if (!lexer.Tokenize(&tokens, &result.error, &result.error_line)) {
    return result;
  }
  Parser parser(std::move(tokens));
  result.ok = parser.Run(&result.program, &result.error, &result.error_line);
  return result;
}

Instance ParseDatabase(std::string_view text) {
  return MustParse(text).database;
}

TgdSet ParseTgds(std::string_view text) { return MustParse(text).tgds; }

UCQ ParseUcq(std::string_view text) {
  Program program = MustParse(text);
  if (program.queries.size() != 1) {
    std::fprintf(stderr, "gqe: expected exactly one query, found %zu\n",
                 program.queries.size());
    std::abort();
  }
  return program.queries.begin()->second;
}

CQ ParseCq(std::string_view text) {
  UCQ ucq = ParseUcq(text);
  if (ucq.num_disjuncts() != 1) {
    std::fprintf(stderr, "gqe: expected a single CQ, found %zu disjuncts\n",
                 ucq.num_disjuncts());
    std::abort();
  }
  return ucq.disjuncts()[0];
}

}  // namespace gqe
