#include "parser/parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace gqe {

namespace {

enum class TokenKind {
  kIdentifier,
  kNull,  // _:n<id> — a labelled null, as printed by Term::ToString
  kLParen,
  kRParen,
  kComma,
  kDot,
  kArrow,      // ->
  kTurnstile,  // :-
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
  int column;
};

/// Renders `text` printably for diagnostics: non-printable bytes
/// (embedded NULs, stray control characters) appear as \xNN escapes so
/// the message itself stays a clean single-line string.
std::string EscapeForMessage(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isprint(u)) {
      out.push_back(c);
    } else {
      static const char kHex[] = "0123456789abcdef";
      out += "\\x";
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xF]);
    }
  }
  return out;
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  bool Tokenize(std::vector<Token>* out, ParseResult* result) {
    int line = 1;
    size_t line_start = 0;
    size_t i = 0;
    const auto column = [&](size_t at) {
      return static_cast<int>(at - line_start) + 1;
    };
    while (i < text_.size()) {
      const char c = text_[i];
      if (c == '\n') {
        ++line;
        ++i;
        line_start = i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '%' || c == '#') {
        while (i < text_.size() && text_[i] != '\n') ++i;
        continue;
      }
      if (c == '(') {
        out->push_back({TokenKind::kLParen, "(", line, column(i)});
        ++i;
        continue;
      }
      if (c == ')') {
        out->push_back({TokenKind::kRParen, ")", line, column(i)});
        ++i;
        continue;
      }
      if (c == ',') {
        out->push_back({TokenKind::kComma, ",", line, column(i)});
        ++i;
        continue;
      }
      if (c == '.') {
        out->push_back({TokenKind::kDot, ".", line, column(i)});
        ++i;
        continue;
      }
      if (c == '-' && i + 1 < text_.size() && text_[i + 1] == '>') {
        out->push_back({TokenKind::kArrow, "->", line, column(i)});
        i += 2;
        continue;
      }
      if (c == ':' && i + 1 < text_.size() && text_[i + 1] == '-') {
        out->push_back({TokenKind::kTurnstile, ":-", line, column(i)});
        i += 2;
        continue;
      }
      // Labelled null `_:n<digits>` (the Term::ToString spelling), checked
      // before the identifier rule so `_` does not swallow the prefix.
      if (c == '_' && i + 2 < text_.size() && text_[i + 1] == ':' &&
          text_[i + 2] == 'n' && i + 3 < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[i + 3]))) {
        size_t start = i;
        i += 3;
        while (i < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[i]))) {
          ++i;
        }
        out->push_back({TokenKind::kNull,
                        std::string(text_.substr(start, i - start)), line,
                        column(start)});
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '@') {
        size_t start = i;
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_' || text_[i] == '@')) {
          ++i;
        }
        out->push_back({TokenKind::kIdentifier,
                        std::string(text_.substr(start, i - start)), line,
                        column(start)});
        continue;
      }
      result->error_token = EscapeForMessage(text_.substr(i, 1));
      result->error = "unexpected character '" + result->error_token + "'";
      result->error_line = line;
      result->error_column = column(i);
      return false;
    }
    out->push_back({TokenKind::kEnd, "", line, column(i)});
    return true;
  }

 private:
  std::string_view text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  bool Run(Program* program, ParseResult* result) {
    while (Peek().kind != TokenKind::kEnd) {
      if (!Statement(program)) {
        result->error = error_;
        result->error_line = error_token_line_;
        result->error_column = error_token_column_;
        result->error_token = error_token_text_;
        return false;
      }
    }
    // Keep later fresh nulls disjoint from every null the program named.
    if (saw_null_ && max_null_id_ + 1 > Term::NextNullId()) {
      Term::SetNextNullId(max_null_id_ + 1);
    }
    return true;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t index = pos_ + ahead;
    if (index >= tokens_.size()) index = tokens_.size() - 1;
    return tokens_[index];
  }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) return Fail(std::string("expected ") + what);
    Advance();
    return true;
  }

  bool Fail(const std::string& message) {
    const Token& at = Peek();
    error_token_text_ = at.kind == TokenKind::kEnd
                            ? "end of input"
                            : EscapeForMessage(at.text);
    error_ = message + (at.kind == TokenKind::kEnd
                            ? " (got end of input)"
                            : " (got '" + error_token_text_ + "')");
    error_token_line_ = at.line;
    error_token_column_ = at.column;
    return false;
  }

  static bool IsVariableName(const std::string& name) {
    return !name.empty() && std::isupper(static_cast<unsigned char>(name[0]));
  }

  /// atom := identifier '(' term (',' term)* ')' | identifier '(' ')'
  bool ParseAtom(Atom* out) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Fail("expected predicate name");
    }
    std::string predicate = Advance().text;
    if (!Expect(TokenKind::kLParen, "'('")) return false;
    std::vector<Term> args;
    if (Peek().kind != TokenKind::kRParen) {
      for (;;) {
        if (Peek().kind == TokenKind::kNull) {
          // `_:n<id>` — digits follow the fixed 3-byte prefix.
          const std::string& text = Peek().text;
          uint64_t id = 0;
          for (size_t d = 3; d < text.size(); ++d) {
            id = id * 10 + static_cast<uint64_t>(text[d] - '0');
            if (id > Term::kMaxId) {
              return Fail("labelled-null id out of range");
            }
          }
          Advance();
          args.push_back(Term::Null(static_cast<uint32_t>(id)));
          saw_null_ = true;
          if (static_cast<uint32_t>(id) > max_null_id_) {
            max_null_id_ = static_cast<uint32_t>(id);
          }
        } else if (Peek().kind == TokenKind::kIdentifier) {
          std::string name = Advance().text;
          args.push_back(IsVariableName(name) ? Term::Variable(name)
                                              : Term::Constant(name));
        } else {
          return Fail("expected term");
        }
        if (Peek().kind != TokenKind::kComma) break;
        Advance();
      }
    }
    if (!Expect(TokenKind::kRParen, "')'")) return false;
    const PredicateId existing = predicates::Lookup(predicate);
    if (existing != static_cast<PredicateId>(-1) &&
        predicates::Arity(existing) != static_cast<int>(args.size())) {
      return Fail("predicate '" + predicate + "' used with arity " +
                  std::to_string(args.size()) + " but registered with " +
                  std::to_string(predicates::Arity(existing)));
    }
    *out = Atom::Make(predicate, std::move(args));
    return true;
  }

  bool ParseAtomList(std::vector<Atom>* out) {
    for (;;) {
      Atom atom;
      if (!ParseAtom(&atom)) return false;
      out->push_back(std::move(atom));
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    return true;
  }

  /// statement := fact '.' | tgd '.' | query '.'
  /// tgd := [atomlist] '->' atomlist
  /// query := atom ':-' atomlist
  bool Statement(Program* program) {
    // Empty-body TGD: leading '->'.
    if (Peek().kind == TokenKind::kArrow) {
      Advance();
      std::vector<Atom> head;
      if (!ParseAtomList(&head)) return false;
      if (!Expect(TokenKind::kDot, "'.'")) return false;
      program->tgds.emplace_back(std::vector<Atom>{}, std::move(head));
      return true;
    }
    std::vector<Atom> first;
    Atom head_atom;
    if (!ParseAtom(&head_atom)) return false;
    // Query?
    if (Peek().kind == TokenKind::kTurnstile) {
      Advance();
      std::vector<Atom> body;
      if (!ParseAtomList(&body)) return false;
      if (!Expect(TokenKind::kDot, "'.'")) return false;
      std::vector<Term> answer_vars;
      for (Term t : head_atom.args()) {
        if (!t.IsVariable()) {
          return Fail("query head arguments must be variables");
        }
        answer_vars.push_back(t);
      }
      CQ cq(std::move(answer_vars), std::move(body));
      std::string why;
      if (!cq.Validate(&why)) return Fail("invalid query: " + why);
      std::string name(predicates::Name(head_atom.predicate()));
      auto it = program->queries.find(name);
      if (it == program->queries.end()) {
        program->queries.emplace(name, UCQ({cq}));
      } else {
        if (it->second.arity() != cq.arity()) {
          return Fail("query '" + name + "' redeclared with different arity");
        }
        it->second.AddDisjunct(cq);
      }
      return true;
    }
    first.push_back(std::move(head_atom));
    while (Peek().kind == TokenKind::kComma) {
      Advance();
      Atom atom;
      if (!ParseAtom(&atom)) return false;
      first.push_back(std::move(atom));
    }
    // TGD?
    if (Peek().kind == TokenKind::kArrow) {
      Advance();
      std::vector<Atom> head;
      if (!ParseAtomList(&head)) return false;
      if (!Expect(TokenKind::kDot, "'.'")) return false;
      Tgd tgd(std::move(first), std::move(head));
      std::string why;
      if (!tgd.Validate(&why)) return Fail("invalid TGD: " + why);
      program->tgds.push_back(std::move(tgd));
      return true;
    }
    // Facts. Check groundness before consuming the dot so the error
    // points at the offending statement's line.
    for (const Atom& atom : first) {
      if (!atom.IsGround()) {
        return Fail("fact contains a variable: " + atom.ToString());
      }
    }
    if (!Expect(TokenKind::kDot, "'.', '->' or ':-'")) return false;
    for (const Atom& atom : first) program->database.Insert(atom);
    return true;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::string error_;
  int error_token_line_ = 0;
  int error_token_column_ = 0;
  std::string error_token_text_;
  bool saw_null_ = false;
  uint32_t max_null_id_ = 0;
};

Program MustParse(std::string_view text) {
  ParseResult result = ParseProgram(text);
  if (!result.ok) {
    std::fprintf(stderr, "gqe parse error (line %d, column %d): %s\n",
                 result.error_line, result.error_column,
                 result.error.c_str());
    std::abort();
  }
  return std::move(result.program);
}

}  // namespace

ParseResult ParseProgram(std::string_view text) {
  ParseResult result;
  std::vector<Token> tokens;
  Lexer lexer(text);
  if (!lexer.Tokenize(&tokens, &result)) {
    return result;
  }
  Parser parser(std::move(tokens));
  result.ok = parser.Run(&result.program, &result);
  return result;
}

Instance ParseDatabase(std::string_view text) {
  return MustParse(text).database;
}

TgdSet ParseTgds(std::string_view text) { return MustParse(text).tgds; }

UCQ ParseUcq(std::string_view text) {
  Program program = MustParse(text);
  if (program.queries.size() != 1) {
    std::fprintf(stderr, "gqe: expected exactly one query, found %zu\n",
                 program.queries.size());
    std::abort();
  }
  return program.queries.begin()->second;
}

CQ ParseCq(std::string_view text) {
  UCQ ucq = ParseUcq(text);
  if (ucq.num_disjuncts() != 1) {
    std::fprintf(stderr, "gqe: expected a single CQ, found %zu disjuncts\n",
                 ucq.num_disjuncts());
    std::abort();
  }
  return ucq.disjuncts()[0];
}

}  // namespace gqe
