#include "guarded/unraveling.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "omq/evaluation.h"

namespace gqe {

namespace {

/// The distinct guarded sets of a database: the (sorted) domains of its
/// facts.
std::vector<std::vector<Term>> GuardedSets(const Instance& db) {
  std::set<std::vector<Term>> sets;
  for (const Atom& atom : db.atoms()) {
    std::vector<Term> elements;
    atom.CollectGroundTerms(&elements);
    std::sort(elements.begin(), elements.end());
    sets.insert(elements);
  }
  return {sets.begin(), sets.end()};
}

struct UnravelNode {
  std::vector<Term> originals;          // guarded set in D (sorted)
  std::unordered_map<Term, Term> copy;  // original -> copy at this node
  int depth = 0;
};

/// Inserts the copies of all D-facts over `node.originals`.
void EmitNodeAtoms(const Instance& db, const UnravelNode& node,
                   Instance* out, Substitution* to_original) {
  for (const Atom& fact : db.AtomsOver(node.originals)) {
    std::vector<Term> args;
    args.reserve(fact.args().size());
    for (Term t : fact.args()) args.push_back(node.copy.at(t));
    out->Insert(Atom(fact.predicate(), args));
  }
  if (to_original != nullptr) {
    for (const auto& [original, copy] : node.copy) {
      to_original->Set(copy, original);
    }
  }
}

}  // namespace

Instance GuardedUnraveling(const Instance& db, const std::vector<Term>& root,
                           int depth, Substitution* to_original,
                           size_t max_nodes) {
  Instance out;
  const std::vector<std::vector<Term>> guarded_sets = GuardedSets(db);

  UnravelNode root_node;
  root_node.originals = root;
  std::sort(root_node.originals.begin(), root_node.originals.end());
  for (Term t : root_node.originals) root_node.copy[t] = t;  // uncopied
  EmitNodeAtoms(db, root_node, &out, to_original);
  if (to_original != nullptr) {
    for (Term t : root) to_original->Set(t, t);
  }

  std::deque<UnravelNode> queue = {root_node};
  size_t nodes = 1;
  while (!queue.empty() && nodes < max_nodes) {
    UnravelNode node = std::move(queue.front());
    queue.pop_front();
    if (node.depth >= depth) continue;
    for (const std::vector<Term>& next : guarded_sets) {
      // Adjacent guarded sets must intersect the current one.
      std::vector<Term> shared;
      std::set_intersection(node.originals.begin(), node.originals.end(),
                            next.begin(), next.end(),
                            std::back_inserter(shared));
      if (shared.empty()) continue;
      if (next == node.originals) continue;  // no self-loops in the tree
      UnravelNode child;
      child.originals = next;
      child.depth = node.depth + 1;
      for (Term t : next) {
        auto it = std::find(shared.begin(), shared.end(), t);
        if (it != shared.end()) {
          child.copy[t] = node.copy.at(t);
        } else {
          Term fresh = Term::FreshNull();
          child.copy[t] = fresh;
        }
      }
      EmitNodeAtoms(db, child, &out, to_original);
      queue.push_back(std::move(child));
      if (++nodes >= max_nodes) break;
    }
  }
  return out;
}

Instance KUnraveling(const Instance& db, const std::vector<Term>& anchors,
                     int k, int depth, size_t max_nodes,
                     Substitution* to_original) {
  Instance out;
  std::unordered_set<Term> anchor_set(anchors.begin(), anchors.end());
  // Bags: maximal (≤ k+1)-subsets of fact domains (so every fact fits in
  // some bag up to truncation).
  std::set<std::vector<Term>> bag_set;
  for (const Atom& atom : db.atoms()) {
    std::vector<Term> elements;
    atom.CollectGroundTerms(&elements);
    std::sort(elements.begin(), elements.end());
    if (static_cast<int>(elements.size()) <= k + 1) {
      bag_set.insert(elements);
    }
  }
  std::vector<std::vector<Term>> bags(bag_set.begin(), bag_set.end());

  UnravelNode root_node;
  if (!bags.empty()) {
    root_node.originals = bags.front();
  }
  for (Term t : root_node.originals) {
    root_node.copy[t] = anchor_set.count(t) ? t : Term::FreshNull();
  }
  // Anchors map to themselves everywhere.
  EmitNodeAtoms(db, root_node, &out, to_original);

  std::deque<UnravelNode> queue = {root_node};
  size_t nodes = 1;
  // Every bag is also seeded as its own root so disconnected parts are
  // covered.
  for (size_t b = 1; b < bags.size(); ++b) {
    UnravelNode seed;
    seed.originals = bags[b];
    for (Term t : seed.originals) {
      seed.copy[t] = anchor_set.count(t) ? t : Term::FreshNull();
    }
    EmitNodeAtoms(db, seed, &out, to_original);
    queue.push_back(std::move(seed));
    ++nodes;
  }
  while (!queue.empty() && nodes < max_nodes) {
    UnravelNode node = std::move(queue.front());
    queue.pop_front();
    if (node.depth >= depth) continue;
    for (const std::vector<Term>& next : bags) {
      if (next == node.originals) continue;
      std::vector<Term> shared;
      std::set_intersection(node.originals.begin(), node.originals.end(),
                            next.begin(), next.end(),
                            std::back_inserter(shared));
      if (shared.empty()) continue;
      UnravelNode child;
      child.originals = next;
      child.depth = node.depth + 1;
      for (Term t : next) {
        if (anchor_set.count(t)) {
          child.copy[t] = t;
        } else if (std::find(shared.begin(), shared.end(), t) !=
                   shared.end()) {
          child.copy[t] = node.copy.at(t);
        } else {
          child.copy[t] = Term::FreshNull();
        }
      }
      EmitNodeAtoms(db, child, &out, to_original);
      queue.push_back(std::move(child));
      if (++nodes >= max_nodes) break;
    }
  }
  if (to_original != nullptr) {
    for (Term t : anchors) to_original->Set(t, t);
  }
  return out;
}

DiversifyResult DiversifyDatabase(const Instance& db, const Omq& query,
                                  const std::vector<Term>& protect) {
  DiversifyResult result;
  std::unordered_set<Term> protect_set(protect.begin(), protect.end());
  Instance current = db;
  bool changed = true;
  while (changed) {
    changed = false;
    // Count occurrences of each constant across (atom, position) slots.
    std::unordered_map<Term, int> occurrences;
    for (const Atom& atom : current.atoms()) {
      for (Term t : atom.args()) ++occurrences[t];
    }
    const std::vector<Atom> snapshot = current.atoms();
    for (size_t a = 0; a < snapshot.size() && !changed; ++a) {
      const Atom& atom = snapshot[a];
      for (int pos = 0; pos < atom.arity(); ++pos) {
        Term t = atom.args()[pos];
        if (protect_set.count(t) > 0 || occurrences[t] <= 1) continue;
        // Candidate: split this occurrence off onto a fresh constant.
        Instance candidate;
        Term fresh = Term::Constant("_dv" + std::to_string(result.splits) +
                                    "_" + t.ToString());
        for (size_t b = 0; b < snapshot.size(); ++b) {
          if (b != a) {
            candidate.Insert(snapshot[b]);
            continue;
          }
          std::vector<Term> args = snapshot[b].args();
          args[pos] = fresh;
          candidate.Insert(Atom(snapshot[b].predicate(), args));
        }
        if (OmqHolds(query, candidate, {})) {
          current = std::move(candidate);
          ++result.splits;
          changed = true;
          break;
        }
      }
    }
  }
  result.diversified = std::move(current);
  return result;
}

}  // namespace gqe
