#ifndef GQE_GUARDED_PORTION_SNAPSHOT_H_
#define GQE_GUARDED_PORTION_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/serialize.h"
#include "guarded/chase_tree.h"

namespace gqe {

/// Deterministic fingerprint of a chase-tree build: the database, the
/// guarded set and the options that shape the portion (blocking repeats,
/// depth cap). A snapshot is only reused for the exact build that wrote
/// it.
uint32_t ChaseTreeWorkloadFingerprint(const Instance& db, const TgdSet& sigma,
                                      const ChaseTreeOptions& options);

/// Encodes a materialized chase tree (portion instance, bag forest,
/// null-home map) plus the interner and the labelled-null counter.
std::string EncodeChaseTreeSnapshot(const ChaseTree& tree,
                                    uint32_t fingerprint);

/// Decodes a payload produced by EncodeChaseTreeSnapshot, validating
/// every id against the (replayed) interner. Advances the global null
/// counter past the snapshot's so later fresh nulls cannot collide with
/// portion nulls.
SnapshotStatus DecodeChaseTreeSnapshot(std::string_view payload,
                                       ChaseTree* tree, uint32_t* fingerprint);

/// What BuildOrLoadChaseTree did.
struct PortionSnapshotInfo {
  /// True iff the portion came from disk (no build ran).
  bool loaded = false;
  /// True iff this call wrote a fresh snapshot.
  bool saved = false;
  /// Status of the load attempt (kNotFound on a cold cache; corruption
  /// and fingerprint mismatches fall through to a rebuild).
  SnapshotStatus load_status;
  /// The snapshot file used or written.
  std::string path;
};

/// BuildChaseTree with a snapshot cache: when `checkpoint_dir` holds a
/// valid snapshot of this exact build (same db, Σ and options), returns
/// it without re-running saturation; otherwise builds the portion and —
/// if it completed untruncated — persists it atomically for the next
/// run. Corrupt or foreign snapshots are rejected by checksum /
/// fingerprint and rebuilt from scratch, never trusted.
ChaseTree BuildOrLoadChaseTree(const std::string& checkpoint_dir,
                               const Instance& db, const TgdSet& sigma,
                               const ChaseTreeOptions& options = {},
                               TypeClosureEngine* engine = nullptr,
                               PortionSnapshotInfo* info = nullptr);

}  // namespace gqe

#endif  // GQE_GUARDED_PORTION_SNAPSHOT_H_
