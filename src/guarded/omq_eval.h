#ifndef GQE_GUARDED_OMQ_EVAL_H_
#define GQE_GUARDED_OMQ_EVAL_H_

#include <vector>

#include "base/instance.h"
#include "guarded/chase_tree.h"
#include "guarded/type_closure.h"
#include "query/cq.h"
#include "tgd/tgd.h"

namespace gqe {

/// Options for guarded certain-answer evaluation.
struct GuardedEvalOptions {
  /// Extra shape repetitions beyond the query's variable count before
  /// blocking (completeness slack; see DESIGN.md §2.3).
  int extra_blocking = 1;

  size_t max_facts = 5000000;
  int max_depth = 128;

  /// Use the Proposition 2.1 tree-decomposition DP to evaluate the UCQ
  /// over the materialized portion (the FPT algorithm of Prop. 3.3(3)
  /// when the query is in UCQ_k); otherwise plain backtracking join.
  bool use_tree_dp = false;
};

/// Certain answers Q(D) = q(chase(D,Σ)) of a UCQ under a guarded set
/// (Proposition 3.1): materializes a finite chase portion with n-fold
/// blocking (n = query variables) and evaluates q over it, keeping only
/// tuples over dom(D).
std::vector<std::vector<Term>> GuardedCertainAnswers(
    const Instance& db, const TgdSet& sigma, const UCQ& query,
    const GuardedEvalOptions& options = {}, TypeClosureEngine* engine = nullptr);

/// Decides c̄ ∈ Q(D) (the paper's OMQ-Evaluation problem for guarded
/// ontologies).
bool GuardedCertainlyHolds(const Instance& db, const TgdSet& sigma,
                           const UCQ& query, const std::vector<Term>& answer,
                           const GuardedEvalOptions& options = {},
                           TypeClosureEngine* engine = nullptr);

}  // namespace gqe

#endif  // GQE_GUARDED_OMQ_EVAL_H_
