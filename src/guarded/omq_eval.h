#ifndef GQE_GUARDED_OMQ_EVAL_H_
#define GQE_GUARDED_OMQ_EVAL_H_

#include <string>
#include <vector>

#include "base/governor.h"
#include "base/instance.h"
#include "guarded/chase_tree.h"
#include "guarded/type_closure.h"
#include "query/cq.h"
#include "tgd/tgd.h"
#include "verify/witness.h"

namespace gqe {

/// Options for guarded certain-answer evaluation.
struct GuardedEvalOptions {
  /// Extra shape repetitions beyond the query's variable count before
  /// blocking (completeness slack; see DESIGN.md §2.3).
  int extra_blocking = 1;

  int max_depth = 128;

  /// Resource limits shared by the portion build and the query
  /// evaluation over it. Ignored when `governor` is set.
  ExecutionBudget budget;

  /// Optional shared governor (see ChaseOptions::governor).
  Governor* governor = nullptr;

  /// Use the Proposition 2.1 tree-decomposition DP to evaluate the UCQ
  /// over the materialized portion (the FPT algorithm of Prop. 3.3(3)
  /// when the query is in UCQ_k); otherwise plain backtracking join.
  bool use_tree_dp = false;

  /// When non-empty, the portion build reuses a saturated-portion
  /// snapshot from this directory (matched by workload fingerprint,
  /// validated by checksum) instead of re-saturating, and persists a
  /// fresh snapshot after a complete build. See guarded/portion_snapshot.h.
  std::string checkpoint_dir;

  /// Certificate collection. The guarded portion itself is not a chase
  /// prefix, so answers are certified independently: an
  /// iteratively-deepened *oblivious* chase (levels 1, 2, 4, … up to
  /// `witness.certify_max_level`, at most `witness.certify_max_facts`
  /// facts) is replayed until every reported answer has a homomorphism
  /// into it. Since chase^l(D,Σ) ⊆ chase(D,Σ), any such homomorphism is
  /// a sound certificate of certain membership.
  WitnessOptions witness;
};

/// Certain answers plus the governed status of the run. When `status` is
/// not kCompleted (or `portion_truncated` is set) the answer set is a
/// sound *under*-approximation: every tuple reported is a certain answer
/// over the materialized portion, but certain answers may be missing.
struct GuardedAnswersResult {
  std::vector<std::vector<Term>> answers;
  Status status = Status::kCompleted;
  bool portion_truncated = false;

  /// Certification (only with options.witness.collect): the derivation
  /// log of the bounded certification chase, one homomorphism witness
  /// per certified answer (aligned with `answers`; uncertified answers
  /// hold an empty assignment), and whether *every* answer was certified
  /// before the deepening caps were reached.
  DerivationWitness derivation;
  std::vector<HomWitness> witnesses;
  bool certified = false;
};

/// Certain answers Q(D) = q(chase(D,Σ)) of a UCQ under a guarded set
/// (Proposition 3.1): materializes a finite chase portion with n-fold
/// blocking (n = query variables) and evaluates q over it, keeping only
/// tuples over dom(D).
GuardedAnswersResult EvaluateGuardedCertainAnswers(
    const Instance& db, const TgdSet& sigma, const UCQ& query,
    const GuardedEvalOptions& options = {},
    TypeClosureEngine* engine = nullptr);

/// Back-compat wrapper returning only the answer tuples.
std::vector<std::vector<Term>> GuardedCertainAnswers(
    const Instance& db, const TgdSet& sigma, const UCQ& query,
    const GuardedEvalOptions& options = {}, TypeClosureEngine* engine = nullptr);

/// Decides c̄ ∈ Q(D) (the paper's OMQ-Evaluation problem for guarded
/// ontologies).
bool GuardedCertainlyHolds(const Instance& db, const TgdSet& sigma,
                           const UCQ& query, const std::vector<Term>& answer,
                           const GuardedEvalOptions& options = {},
                           TypeClosureEngine* engine = nullptr);

}  // namespace gqe

#endif  // GQE_GUARDED_OMQ_EVAL_H_
