#ifndef GQE_GUARDED_UNRAVELING_H_
#define GQE_GUARDED_UNRAVELING_H_

#include <vector>

#include "base/instance.h"
#include "omq/omq.h"
#include "query/substitution.h"

namespace gqe {

/// The guarded unraveling D^ā of a database at a guarded set ā
/// (Appendix D preliminaries), truncated at `depth` levels: a tree of
/// copies of D's guarded sets, adjacent nodes overlapping in shared
/// elements, root elements kept un-copied. By construction the result
/// (i) has a width-(ar(S)-1) tree decomposition (tree-like except the
/// root), (ii) maps homomorphically onto D by the copy map — returned in
/// `to_original` — and (iii) preserves the atomic consequences of guarded
/// ontologies at the root (Lemma D.7; validated in tests).
Instance GuardedUnraveling(const Instance& db, const std::vector<Term>& root,
                           int depth, Substitution* to_original = nullptr,
                           size_t max_nodes = 4096);

/// A treewidth-k unraveling D^k_c̄ of D up to the tuple c̄ (Appendix C.3):
/// a tree of copies of (≤ k+1)-element sub-bags of dom(D), with the
/// elements of c̄ shared globally. Properties (used by Lemma C.7):
/// treewidth ≤ k up to c̄, homomorphism to D fixing c̄, and preservation
/// of (G, UCQ_k) OMQ answers (checked in tests on small inputs).
/// `max_nodes` caps the materialized tree.
Instance KUnraveling(const Instance& db, const std::vector<Term>& anchors,
                     int k, int depth, size_t max_nodes = 4096,
                     Substitution* to_original = nullptr);

/// One greedy diversification pass (Section 6.1, Examples D.8/D.9):
/// repeatedly replaces a single occurrence of a shared, unprotected
/// constant by a fresh constant whenever the Boolean OMQ still holds on
/// the result — approaching the ≼-minimal "untangled" database D1 that
/// the Theorem 5.4 reduction feeds into the Grohe construction.
struct DiversifyResult {
  Instance diversified;
  size_t splits = 0;
};

DiversifyResult DiversifyDatabase(const Instance& db, const Omq& query,
                                  const std::vector<Term>& protect);

}  // namespace gqe

#endif  // GQE_GUARDED_UNRAVELING_H_
