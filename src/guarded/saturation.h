#ifndef GQE_GUARDED_SATURATION_H_
#define GQE_GUARDED_SATURATION_H_

#include "base/instance.h"
#include "guarded/type_closure.h"
#include "tgd/tgd.h"

namespace gqe {

/// Computes D⁺ = D ∪ {R(ā) ∈ chase(D,Σ) | ā ⊆ dom(D)} — the ground part
/// chase↓(D,Σ) of the chase under a guarded set (Section 6.2). Runs in
/// time ‖D‖^{O(1)} · f(‖Σ‖): per guarded fact the engine closes its bag,
/// iterated to a fixpoint over the ground instance.
///
/// `engine`, when provided, is reused across calls (its shape table only
/// depends on Σ); it must have been constructed for the same `sigma`.
Instance GroundSaturation(const Instance& db, const TgdSet& sigma,
                          TypeClosureEngine* engine = nullptr);

/// Certain answers of an *atomic* query over (D, Σ): is `fact` (over
/// dom(D)) entailed? Equivalent to fact ∈ GroundSaturation(db, sigma).
bool CertainAtom(const Instance& db, const TgdSet& sigma, const Atom& fact,
                 TypeClosureEngine* engine = nullptr);

}  // namespace gqe

#endif  // GQE_GUARDED_SATURATION_H_
