#include "guarded/saturation.h"

#include <memory>
#include <unordered_set>

namespace gqe {

Instance GroundSaturation(const Instance& db, const TgdSet& sigma,
                          TypeClosureEngine* engine) {
  std::unique_ptr<TypeClosureEngine> owned;
  if (engine == nullptr) {
    owned = std::make_unique<TypeClosureEngine>(sigma);
    engine = owned.get();
  }
  Instance ground;
  ground.InsertAll(db);
  bool changed = true;
  while (changed) {
    changed = false;
    // Iterate a snapshot: inserting invalidates nothing in atoms() (it is
    // append-only), but we only close the bags of the facts present at
    // the start of the round; new facts get their bags next round.
    const size_t snapshot_size = ground.size();
    for (size_t i = 0; i < snapshot_size; ++i) {
      const Atom guard = ground.atom(i);
      std::vector<Term> elements;
      guard.CollectGroundTerms(&elements);
      // Bag: all current ground atoms over the guard's elements.
      std::vector<Atom> bag_atoms = ground.AtomsOver(elements);
      for (const Atom& atom : engine->Closure(bag_atoms, elements)) {
        if (ground.Insert(atom)) changed = true;
      }
    }
  }
  return ground;
}

bool CertainAtom(const Instance& db, const TgdSet& sigma, const Atom& fact,
                 TypeClosureEngine* engine) {
  return GroundSaturation(db, sigma, engine).Contains(fact);
}

}  // namespace gqe
