#include "guarded/omq_eval.h"

#include <algorithm>

#include "guarded/portion_snapshot.h"
#include "query/evaluation.h"
#include "query/tw_evaluation.h"

namespace gqe {

namespace {

size_t MaxQueryVariables(const UCQ& query) {
  size_t max_vars = 0;
  for (const CQ& cq : query.disjuncts()) {
    max_vars = std::max(max_vars, cq.AllVariables().size());
  }
  return max_vars;
}

ChaseTree BuildPortion(const Instance& db, const TgdSet& sigma,
                       const UCQ& query, const GuardedEvalOptions& options,
                       Governor* governor, TypeClosureEngine* engine) {
  ChaseTreeOptions tree_options;
  tree_options.blocking_repeats =
      static_cast<int>(MaxQueryVariables(query)) + options.extra_blocking;
  tree_options.max_depth = options.max_depth;
  tree_options.governor = governor;
  return BuildOrLoadChaseTree(options.checkpoint_dir, db, sigma, tree_options,
                              engine);
}

}  // namespace

GuardedAnswersResult EvaluateGuardedCertainAnswers(
    const Instance& db, const TgdSet& sigma, const UCQ& query,
    const GuardedEvalOptions& options, TypeClosureEngine* engine) {
  GovernorScope scope(options.governor, options.budget);
  Governor* governor = scope.get();
  GuardedAnswersResult result;
  ChaseTree tree = BuildPortion(db, sigma, query, options, governor, engine);
  result.portion_truncated = tree.truncated;
  std::vector<std::vector<Term>> raw =
      EvaluateUCQ(query, tree.portion, /*limit=*/0, governor);
  // Certain answers range over the constants of the input database only.
  for (auto& tuple : raw) {
    bool over_db = true;
    for (Term t : tuple) {
      if (!db.InDomain(t)) {
        over_db = false;
        break;
      }
    }
    if (over_db) result.answers.push_back(std::move(tuple));
  }
  result.status = governor->status();
  return result;
}

std::vector<std::vector<Term>> GuardedCertainAnswers(
    const Instance& db, const TgdSet& sigma, const UCQ& query,
    const GuardedEvalOptions& options, TypeClosureEngine* engine) {
  return EvaluateGuardedCertainAnswers(db, sigma, query, options, engine)
      .answers;
}

bool GuardedCertainlyHolds(const Instance& db, const TgdSet& sigma,
                           const UCQ& query, const std::vector<Term>& answer,
                           const GuardedEvalOptions& options,
                           TypeClosureEngine* engine) {
  GovernorScope scope(options.governor, options.budget);
  Governor* governor = scope.get();
  ChaseTree tree = BuildPortion(db, sigma, query, options, governor, engine);
  if (options.use_tree_dp) {
    return HoldsUcqTreeDp(query, tree.portion, answer, governor);
  }
  return HoldsUCQ(query, tree.portion, answer, governor);
}

}  // namespace gqe
