#include "guarded/omq_eval.h"

#include <algorithm>
#include <utility>

#include "chase/chase.h"
#include "guarded/portion_snapshot.h"
#include "query/evaluation.h"
#include "query/tw_evaluation.h"

namespace gqe {

namespace {

size_t MaxQueryVariables(const UCQ& query) {
  size_t max_vars = 0;
  for (const CQ& cq : query.disjuncts()) {
    max_vars = std::max(max_vars, cq.AllVariables().size());
  }
  return max_vars;
}

ChaseTree BuildPortion(const Instance& db, const TgdSet& sigma,
                       const UCQ& query, const GuardedEvalOptions& options,
                       Governor* governor, TypeClosureEngine* engine) {
  ChaseTreeOptions tree_options;
  tree_options.blocking_repeats =
      static_cast<int>(MaxQueryVariables(query)) + options.extra_blocking;
  tree_options.max_depth = options.max_depth;
  tree_options.governor = governor;
  return BuildOrLoadChaseTree(options.checkpoint_dir, db, sigma, tree_options,
                              engine);
}

/// Certifies each reported answer with a homomorphism into a bounded
/// oblivious chase (iterative deepening: l = 1, 2, 4, … up to the
/// witness cap, under a local fact budget separate from the request's
/// governor). chase^l(D,Σ) ⊆ chase(D,Σ), so every homomorphism found is
/// a sound certificate even though the full chase may be infinite.
void CertifyAnswers(const Instance& db, const TgdSet& sigma, const UCQ& query,
                    const WitnessOptions& witness_options,
                    GuardedAnswersResult* result) {
  result->certified = false;
  for (int level = 1; level <= witness_options.certify_max_level;
       level *= 2) {
    ChaseOptions chase_options;
    chase_options.max_level = level;
    chase_options.collect_witness = true;
    chase_options.budget.max_facts = witness_options.certify_max_facts;
    ChaseResult chased = Chase(db, sigma, chase_options);
    // Every round re-certifies *all* answers against this chase run:
    // each run draws its own fresh nulls, so homomorphisms from an
    // earlier (shallower) run would not match the derivation log kept
    // here. chase^l ⊆ chase^{2l} semantically, so nothing certified at a
    // shallower level is lost by redoing it deeper.
    result->witnesses.assign(result->answers.size(), HomWitness{});
    size_t found = 0;
    for (size_t i = 0; i < result->answers.size(); ++i) {
      if (FindUcqAnswerWitness(query, chased.instance, result->answers[i],
                               &result->witnesses[i])) {
        ++found;
      }
    }
    result->derivation = std::move(chased.derivation);
    if (found == result->answers.size()) {
      result->certified = true;
      break;
    }
    if (chased.outcome.status != Status::kCompleted) break;  // budget wall
    if (chased.complete) break;  // chase saturated; deeper levels add nothing
  }
}

}  // namespace

GuardedAnswersResult EvaluateGuardedCertainAnswers(
    const Instance& db, const TgdSet& sigma, const UCQ& query,
    const GuardedEvalOptions& options, TypeClosureEngine* engine) {
  GovernorScope scope(options.governor, options.budget);
  Governor* governor = scope.get();
  GuardedAnswersResult result;
  ChaseTree tree = BuildPortion(db, sigma, query, options, governor, engine);
  result.portion_truncated = tree.truncated;
  std::vector<std::vector<Term>> raw =
      EvaluateUCQ(query, tree.portion, /*limit=*/0, governor);
  // Certain answers range over the constants of the input database only.
  for (auto& tuple : raw) {
    bool over_db = true;
    for (Term t : tuple) {
      if (!db.InDomain(t)) {
        over_db = false;
        break;
      }
    }
    if (over_db) result.answers.push_back(std::move(tuple));
  }
  result.status = governor->status();
  if (options.witness.collect) {
    CertifyAnswers(db, sigma, query, options.witness, &result);
  }
  return result;
}

std::vector<std::vector<Term>> GuardedCertainAnswers(
    const Instance& db, const TgdSet& sigma, const UCQ& query,
    const GuardedEvalOptions& options, TypeClosureEngine* engine) {
  return EvaluateGuardedCertainAnswers(db, sigma, query, options, engine)
      .answers;
}

bool GuardedCertainlyHolds(const Instance& db, const TgdSet& sigma,
                           const UCQ& query, const std::vector<Term>& answer,
                           const GuardedEvalOptions& options,
                           TypeClosureEngine* engine) {
  GovernorScope scope(options.governor, options.budget);
  Governor* governor = scope.get();
  ChaseTree tree = BuildPortion(db, sigma, query, options, governor, engine);
  if (options.use_tree_dp) {
    return HoldsUcqTreeDp(query, tree.portion, answer, governor);
  }
  return HoldsUCQ(query, tree.portion, answer, governor);
}

}  // namespace gqe
