#include "guarded/portion_snapshot.h"

#include <filesystem>
#include <utility>
#include <vector>

#include "base/interner.h"
#include "base/term.h"

namespace gqe {

namespace {

/// Validates a stored term against the interner pools: portions contain
/// only constants and labelled nulls.
bool ValidGroundTerm(Term t, size_t num_constants) {
  if (t.kind() == Term::Kind::kConstant) return t.id() < num_constants;
  return t.kind() == Term::Kind::kNull;
}

}  // namespace

uint32_t ChaseTreeWorkloadFingerprint(const Instance& db, const TgdSet& sigma,
                                      const ChaseTreeOptions& options) {
  BinaryWriter writer;
  EncodeInstance(db, &writer);
  writer.WriteString(TgdSetToString(sigma));
  writer.WriteI32(options.blocking_repeats);
  writer.WriteI32(options.max_depth);
  return Crc32(writer.buffer());
}

std::string EncodeChaseTreeSnapshot(const ChaseTree& tree,
                                    uint32_t fingerprint) {
  BinaryWriter writer;
  writer.WriteU32(fingerprint);
  EncodeInterner(&writer);
  writer.WriteU32(Term::NextNullId());
  writer.WriteBool(tree.truncated);
  writer.WriteU32(static_cast<uint32_t>(tree.status));
  EncodeInstance(tree.portion, &writer);
  writer.WriteU64(tree.bags.size());
  for (const ChaseBag& bag : tree.bags) {
    writer.WriteU64(bag.elements.size());
    for (Term t : bag.elements) writer.WriteU32(t.bits());
    writer.WriteI32(bag.parent);
    writer.WriteI32(bag.depth);
    writer.WriteString(bag.shape_key);
    writer.WriteBool(bag.blocked);
  }
  writer.WriteU64(tree.null_home.size());
  for (const auto& [term, bag] : tree.null_home) {
    writer.WriteU32(term.bits());
    writer.WriteI32(bag);
  }
  return writer.Take();
}

SnapshotStatus DecodeChaseTreeSnapshot(std::string_view payload,
                                       ChaseTree* tree,
                                       uint32_t* fingerprint) {
  BinaryReader reader(payload);
  uint32_t stored_fingerprint = 0;
  if (!reader.ReadU32(&stored_fingerprint)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "portion snapshot fingerprint cut short");
  }
  SnapshotStatus status = DecodeInterner(&reader);
  if (!status.ok()) return status;
  const size_t num_constants =
      Interner::Global().PoolSize(Interner::Pool::kConstant);

  ChaseTree decoded;
  uint32_t next_null_id = 0;
  uint32_t status_value = 0;
  if (!reader.ReadU32(&next_null_id) || !reader.ReadBool(&decoded.truncated) ||
      !reader.ReadU32(&status_value)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "portion snapshot header cut short");
  }
  if (status_value > static_cast<uint32_t>(Status::kCancelled)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "portion snapshot has an unknown status");
  }
  decoded.status = static_cast<Status>(status_value);
  status = DecodeInstance(&reader, &decoded.portion);
  if (!status.ok()) return status;

  uint64_t bag_count = 0;
  if (!reader.ReadU64(&bag_count)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "portion snapshot bag count cut short");
  }
  for (uint64_t i = 0; i < bag_count; ++i) {
    ChaseBag bag;
    uint64_t element_count = 0;
    if (!reader.ReadU64(&element_count) ||
        element_count * sizeof(uint32_t) > reader.remaining()) {
      return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                  "portion snapshot bag cut short");
    }
    bag.elements.reserve(element_count);
    for (uint64_t e = 0; e < element_count; ++e) {
      uint32_t bits = 0;
      reader.ReadU32(&bits);
      Term t = Term::FromBits(bits);
      if (!ValidGroundTerm(t, num_constants)) {
        return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                    "portion snapshot bag element invalid");
      }
      bag.elements.push_back(t);
    }
    if (!reader.ReadI32(&bag.parent) || !reader.ReadI32(&bag.depth) ||
        !reader.ReadString(&bag.shape_key) || !reader.ReadBool(&bag.blocked)) {
      return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                  "portion snapshot bag fields cut short");
    }
    if (bag.parent < -1 ||
        (bag.parent >= 0 && static_cast<uint64_t>(bag.parent) >= i)) {
      return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                  "portion snapshot bag parent out of order");
    }
    decoded.bags.push_back(std::move(bag));
  }

  uint64_t home_count = 0;
  if (!reader.ReadU64(&home_count)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "portion snapshot null-home count cut short");
  }
  for (uint64_t i = 0; i < home_count; ++i) {
    uint32_t bits = 0;
    int32_t bag = 0;
    if (!reader.ReadU32(&bits) || !reader.ReadI32(&bag)) {
      return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                  "portion snapshot null-home cut short");
    }
    Term t = Term::FromBits(bits);
    if (!t.IsNull() || bag < 0 ||
        static_cast<uint64_t>(bag) >= decoded.bags.size()) {
      return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                  "portion snapshot null-home entry invalid");
    }
    decoded.null_home.emplace_back(t, static_cast<int>(bag));
  }
  if (!reader.ok() || !reader.AtEnd()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "portion snapshot has trailing bytes");
  }
  if (next_null_id > Term::NextNullId()) {
    Term::SetNextNullId(next_null_id);
  }
  *tree = std::move(decoded);
  if (fingerprint != nullptr) *fingerprint = stored_fingerprint;
  return SnapshotStatus::Ok();
}

ChaseTree BuildOrLoadChaseTree(const std::string& checkpoint_dir,
                               const Instance& db, const TgdSet& sigma,
                               const ChaseTreeOptions& options,
                               TypeClosureEngine* engine,
                               PortionSnapshotInfo* info) {
  PortionSnapshotInfo local_info;
  PortionSnapshotInfo* out = info != nullptr ? info : &local_info;
  *out = PortionSnapshotInfo{};
  if (checkpoint_dir.empty()) {
    return BuildChaseTree(db, sigma, options, engine);
  }

  const uint32_t fingerprint =
      ChaseTreeWorkloadFingerprint(db, sigma, options);
  out->path = checkpoint_dir + "/portion-" + std::to_string(fingerprint) +
              ".snap";

  std::string bytes;
  SnapshotStatus load = ReadFileBytes(out->path, &bytes);
  std::string_view payload;
  if (load.ok()) {
    load = UnwrapSnapshot(bytes, kSnapshotKindChaseTree, &payload);
  }
  ChaseTree cached;
  uint32_t stored_fingerprint = 0;
  if (load.ok()) {
    load = DecodeChaseTreeSnapshot(payload, &cached, &stored_fingerprint);
  }
  if (load.ok() && stored_fingerprint != fingerprint) {
    load = SnapshotStatus::Fail(
        SnapshotError::kFormatError,
        "'" + out->path + "' was written for a different portion build");
  }
  out->load_status = load;
  if (load.ok()) {
    out->loaded = true;
    return cached;
  }

  ChaseTree tree = BuildChaseTree(db, sigma, options, engine);
  // Only a finished, untruncated portion is worth caching: a governed
  // partial build would poison later runs with an under-approximation.
  if (tree.status == Status::kCompleted && !tree.truncated) {
    std::error_code ec;
    std::filesystem::create_directories(checkpoint_dir, ec);
    const std::string snapshot = WrapSnapshot(
        kSnapshotKindChaseTree, EncodeChaseTreeSnapshot(tree, fingerprint));
    out->saved = WriteFileAtomic(out->path, snapshot).ok();
  }
  return tree;
}

}  // namespace gqe
