#ifndef GQE_GUARDED_TYPE_CLOSURE_H_
#define GQE_GUARDED_TYPE_CLOSURE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/atom.h"
#include "base/instance.h"
#include "base/term.h"
#include "tgd/tgd.h"

namespace gqe {

/// Tabled closure computation for guarded TGD sets.
///
/// For guarded Σ every TGD body is covered by a single atom, so all
/// reasoning factors through *bags*: a set of at most w elements together
/// with the atoms over them (w bounded by Σ). This engine computes, for a
/// bag, every atom over its elements entailed by Σ — i.e. the restriction
/// of chase(bag, Σ) to the bag's elements. It memoizes results per
/// canonical bag *shape* (the bag up to renaming of elements), so repeated
/// and recursive shapes are computed once; recursion through existential
/// rules is resolved by a global fixpoint over the shape table.
///
/// This plays the role of the paper's type-based machinery: the types of
/// Lemma A.3 / Appendix A and the atomic rewriting ξ(Σ) of [24] — both
/// compute exactly these closures.
class TypeClosureEngine {
 public:
  /// `sigma` must be guarded (checked). The engine keeps references; the
  /// set must outlive the engine.
  explicit TypeClosureEngine(const TgdSet& sigma);

  /// Returns all atoms over `elements` entailed by Σ from `atoms`. Every
  /// atom in `atoms` must mention only terms from `elements`. The result
  /// contains `atoms` itself.
  std::vector<Atom> Closure(const std::vector<Atom>& atoms,
                            const std::vector<Term>& elements);

  /// Number of distinct canonical shapes in the memo table (a measure of
  /// the type space explored; bounded by a function of Σ only).
  size_t num_shapes() const { return entries_.size(); }

  /// The stable placeholder element used at canonical position `i`.
  static Term Placeholder(int i);

 private:
  struct Entry {
    std::vector<Atom> base_atoms;    // canonical atoms (over placeholders)
    Instance closure;                // current closure (over placeholders)
    int num_elements = 0;
    bool dirty = true;
  };

  /// Canonicalizes a bag: renames `elements` to placeholders minimizing
  /// the serialized atom set. Returns the key; `order` receives the
  /// element order used (order[i] = element mapped to Placeholder(i)).
  std::string Canonicalize(const std::vector<Atom>& atoms,
                           const std::vector<Term>& elements,
                           std::vector<Term>* order) const;

  /// Ensures an entry exists for the canonicalized bag; returns its key.
  std::string InternBag(const std::vector<Atom>& atoms,
                        const std::vector<Term>& elements,
                        std::vector<Term>* order);

  /// Applies all TGDs to one entry; returns true if its closure grew.
  /// May create new (dirty) entries for child bags.
  bool ProcessEntry(const std::string& key);

  /// Runs rounds over all dirty entries until global fixpoint.
  void FixpointAll();

  const TgdSet& sigma_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace gqe

#endif  // GQE_GUARDED_TYPE_CLOSURE_H_
