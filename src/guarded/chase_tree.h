#ifndef GQE_GUARDED_CHASE_TREE_H_
#define GQE_GUARDED_CHASE_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/governor.h"
#include "base/instance.h"
#include "guarded/type_closure.h"
#include "tgd/tgd.h"

namespace gqe {

/// Options for materializing a finite portion of the guarded chase.
struct ChaseTreeOptions {
  /// A child bag whose canonical shape already occurs this many times on
  /// its ancestor path is recorded but not expanded (n-fold blocking).
  /// For certain answers of a CQ with n variables, n+1 repeats suffice:
  /// any homomorphic image that dips below a blocked bag revisits an
  /// ancestor shape often enough to be folded upward.
  int blocking_repeats = 2;

  /// Hard depth cap on the bag forest (safety net).
  int max_depth = 128;

  /// Resource limits: every portion fact is charged against
  /// `budget.max_facts`, and the deadline / cancel token / node budget
  /// govern the bag expansion and its trigger searches. Ignored when
  /// `governor` is set.
  ExecutionBudget budget;

  /// Optional shared governor (see ChaseOptions::governor).
  Governor* governor = nullptr;
};

/// One bag (node) of the materialized chase forest.
struct ChaseBag {
  std::vector<Term> elements;
  int parent = -1;  // -1: root bag (over ground elements)
  int depth = 0;
  std::string shape_key;
  bool blocked = false;  // shape repeated; children not materialized
};

/// A finite, homomorphically faithful portion of chase(D,Σ) for guarded Σ:
/// the ground saturation D⁺ plus the null-generating bag forest unfolded
/// with per-path shape blocking. `portion` is an honest sub-instance of
/// the chase (up to null renaming).
struct ChaseTree {
  Instance portion;
  std::vector<ChaseBag> bags;
  bool truncated = false;  // a safety cap was hit (not just blocking)

  /// Why the build stopped: kCompleted for a full (possibly blocked)
  /// forest — including a max_depth stop, which is a requested bound —
  /// any other value is the guard rail that truncated it.
  Status status = Status::kCompleted;

  /// Index of the bag that introduced each null (by term), -1 for ground.
  int BagOfNull(Term null_term) const;
  std::vector<std::pair<Term, int>> null_home;  // internal map
};

/// Materializes the chase portion. The engine is optional and reusable.
ChaseTree BuildChaseTree(const Instance& db, const TgdSet& sigma,
                         const ChaseTreeOptions& options = {},
                         TypeClosureEngine* engine = nullptr);

/// Canonical shape of a bag (atoms over `elements`) under element
/// renaming. When `order` is non-null it receives the element order
/// realizing the canonical form: bags with equal keys are isomorphic via
/// matching positions of their orders.
std::string BagShapeKey(const std::vector<Atom>& atoms,
                        const std::vector<Term>& elements,
                        std::vector<Term>* order = nullptr);

}  // namespace gqe

#endif  // GQE_GUARDED_CHASE_TREE_H_
