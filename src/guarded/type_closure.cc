#include "guarded/type_closure.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "query/homomorphism.h"
#include "query/substitution.h"

namespace gqe {

namespace {

/// Serializes atoms over placeholder indices for canonical comparison.
std::string SerializeAtoms(const std::vector<Atom>& atoms,
                           const std::unordered_map<Term, int>& index) {
  std::vector<std::string> parts;
  parts.reserve(atoms.size());
  for (const Atom& atom : atoms) {
    std::string s = std::to_string(atom.predicate());
    s += "(";
    for (Term t : atom.args()) {
      s += std::to_string(index.at(t));
      s += ",";
    }
    s += ")";
    parts.push_back(std::move(s));
  }
  std::sort(parts.begin(), parts.end());
  parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
  std::string key;
  for (const auto& p : parts) {
    key += p;
    key += ";";
  }
  return key;
}

}  // namespace

Term TypeClosureEngine::Placeholder(int i) {
  static std::vector<Term>* const kPlaceholders = new std::vector<Term>();
  while (static_cast<int>(kPlaceholders->size()) <= i) {
    kPlaceholders->push_back(Term::FreshNull());
  }
  return (*kPlaceholders)[i];
}

TypeClosureEngine::TypeClosureEngine(const TgdSet& sigma) : sigma_(sigma) {
  if (!IsGuardedSet(sigma)) {
    std::fprintf(stderr, "TypeClosureEngine requires a guarded TGD set\n");
    std::abort();
  }
}

std::string TypeClosureEngine::Canonicalize(const std::vector<Atom>& atoms,
                                            const std::vector<Term>& elements,
                                            std::vector<Term>* order) const {
  std::vector<Term> perm = elements;
  std::sort(perm.begin(), perm.end());
  perm.erase(std::unique(perm.begin(), perm.end()), perm.end());
  std::string best;
  std::vector<Term> best_order;
  std::vector<Term> current = perm;
  // Try all orderings; pick the lexicographically smallest serialization.
  // Bag sizes are bounded by the schema arity / rule width, so the
  // factorial blow-up is a small constant.
  std::sort(current.begin(), current.end());
  do {
    std::unordered_map<Term, int> index;
    for (size_t i = 0; i < current.size(); ++i) {
      index[current[i]] = static_cast<int>(i);
    }
    std::string key = SerializeAtoms(atoms, index);
    if (best.empty() || key < best) {
      best = key;
      best_order = current;
    }
  } while (std::next_permutation(current.begin(), current.end()));
  if (best.empty()) {
    // No elements (0-ary bag).
    std::unordered_map<Term, int> index;
    best = SerializeAtoms(atoms, index);
    best_order.clear();
  }
  *order = best_order;
  return best;
}

std::string TypeClosureEngine::InternBag(const std::vector<Atom>& atoms,
                                         const std::vector<Term>& elements,
                                         std::vector<Term>* order) {
  std::string key = Canonicalize(atoms, elements, order);
  auto it = entries_.find(key);
  if (it != entries_.end()) return key;
  Entry entry;
  entry.num_elements = static_cast<int>(order->size());
  std::unordered_map<Term, Term> rename;
  for (size_t i = 0; i < order->size(); ++i) {
    rename[(*order)[i]] = Placeholder(static_cast<int>(i));
  }
  for (const Atom& atom : atoms) {
    std::vector<Term> args;
    args.reserve(atom.args().size());
    for (Term t : atom.args()) args.push_back(rename.at(t));
    Atom canonical(atom.predicate(), std::move(args));
    entry.base_atoms.push_back(canonical);
    entry.closure.Insert(canonical);
  }
  entries_.emplace(key, std::move(entry));
  return key;
}

bool TypeClosureEngine::ProcessEntry(const std::string& key) {
  // NOTE: InternBag may rehash entries_, so references into the map are
  // re-acquired after every call that can insert.
  bool changed = false;
  const int num_elements = entries_.at(key).num_elements;
  std::unordered_set<Term> parent_set;
  for (int i = 0; i < num_elements; ++i) parent_set.insert(Placeholder(i));

  for (const Tgd& tgd : sigma_) {
    const std::vector<Term> frontier = tgd.Frontier();
    const std::vector<Term> existentials = tgd.ExistentialVariables();
    // Collect triggers first: inserting while iterating the closure's
    // index vectors would invalidate them.
    std::vector<Substitution> triggers =
        HomomorphismSearch(tgd.body(), entries_.at(key).closure).FindAll();
    for (const Substitution& sub : triggers) {
      if (existentials.empty()) {
        Entry& parent = entries_.at(key);
        for (const Atom& head_atom : tgd.head()) {
          if (parent.closure.Insert(sub.Apply(head_atom))) changed = true;
        }
        continue;
      }
      // Existential rule: build the child bag.
      std::vector<Term> frontier_images;
      for (Term x : frontier) {
        Term image = sub.Apply(x);
        if (std::find(frontier_images.begin(), frontier_images.end(),
                      image) == frontier_images.end()) {
          frontier_images.push_back(image);
        }
      }
      Substitution extended = sub;
      std::vector<Term> child_elements = frontier_images;
      for (size_t i = 0; i < existentials.size(); ++i) {
        // Temporary child-local elements, distinct from all parent
        // placeholders.
        Term fresh = Placeholder(num_elements + static_cast<int>(i));
        extended.Set(existentials[i], fresh);
        child_elements.push_back(fresh);
      }
      std::vector<Atom> child_atoms;
      for (const Atom& head_atom : tgd.head()) {
        child_atoms.push_back(extended.Apply(head_atom));
      }
      // The child inherits every known atom over the frontier images.
      for (const Atom& atom : entries_.at(key).closure.atoms()) {
        bool inside = true;
        for (Term t : atom.args()) {
          if (std::find(frontier_images.begin(), frontier_images.end(), t) ==
              frontier_images.end()) {
            inside = false;
            break;
          }
        }
        if (inside) child_atoms.push_back(atom);
      }
      std::vector<Term> child_order;
      const std::string child_key =
          InternBag(child_atoms, child_elements, &child_order);
      // Pull back the child's current closure over the frontier images.
      // child_order[i] is the element of `child_elements` playing
      // Placeholder(i) inside the child entry.
      Substitution back;
      for (size_t i = 0; i < child_order.size(); ++i) {
        back.Set(Placeholder(static_cast<int>(i)), child_order[i]);
      }
      std::vector<Atom> pulled_atoms;
      for (const Atom& atom : entries_.at(child_key).closure.atoms()) {
        Atom pulled = back.Apply(atom);
        bool over_parent = true;
        for (Term t : pulled.args()) {
          if (parent_set.count(t) == 0) {
            over_parent = false;
            break;
          }
        }
        if (over_parent) pulled_atoms.push_back(std::move(pulled));
      }
      Entry& parent = entries_.at(key);
      for (const Atom& atom : pulled_atoms) {
        if (parent.closure.Insert(atom)) changed = true;
      }
    }
  }
  return changed;
}

void TypeClosureEngine::FixpointAll() {
  bool changed = true;
  while (changed) {
    changed = false;
    // Snapshot keys: processing may add entries (picked up next round).
    std::vector<std::string> keys;
    keys.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) keys.push_back(key);
    const size_t entries_before = entries_.size();
    for (const std::string& key : keys) {
      if (ProcessEntry(key)) changed = true;
    }
    // Newly created child entries have not been processed yet.
    if (entries_.size() != entries_before) changed = true;
  }
}

std::vector<Atom> TypeClosureEngine::Closure(
    const std::vector<Atom>& atoms, const std::vector<Term>& elements) {
#ifndef NDEBUG
  std::unordered_set<Term> element_set(elements.begin(), elements.end());
  for (const Atom& atom : atoms) {
    for (Term t : atom.args()) assert(element_set.count(t) > 0);
  }
#endif
  std::vector<Term> order;
  const std::string key = InternBag(atoms, elements, &order);
  FixpointAll();
  const Entry& entry = entries_[key];
  Substitution back;
  for (size_t i = 0; i < order.size(); ++i) {
    back.Set(Placeholder(static_cast<int>(i)), order[i]);
  }
  std::vector<Atom> result;
  result.reserve(entry.closure.size());
  for (const Atom& atom : entry.closure.atoms()) {
    result.push_back(back.Apply(atom));
  }
  return result;
}

}  // namespace gqe
