#include "guarded/chase_tree.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "guarded/saturation.h"
#include "query/homomorphism.h"
#include "query/substitution.h"

namespace gqe {

std::string BagShapeKey(const std::vector<Atom>& atoms,
                        const std::vector<Term>& elements,
                        std::vector<Term>* order) {
  std::vector<Term> perm = elements;
  std::sort(perm.begin(), perm.end());
  perm.erase(std::unique(perm.begin(), perm.end()), perm.end());
  std::string best;
  std::vector<Term> best_order;
  do {
    std::unordered_map<Term, int> index;
    for (size_t i = 0; i < perm.size(); ++i) index[perm[i]] = static_cast<int>(i);
    std::vector<std::string> parts;
    for (const Atom& atom : atoms) {
      std::string s = std::to_string(atom.predicate());
      s += "(";
      for (Term t : atom.args()) {
        s += std::to_string(index.at(t));
        s += ",";
      }
      s += ")";
      parts.push_back(std::move(s));
    }
    std::sort(parts.begin(), parts.end());
    parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
    std::string key;
    for (const auto& p : parts) {
      key += p;
      key += ";";
    }
    if (best.empty() || key < best) {
      best = key;
      best_order = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  if (order != nullptr) *order = best_order;
  return best;
}

namespace {

std::string ShapeKey(const std::vector<Atom>& atoms,
                     const std::vector<Term>& elements) {
  return BagShapeKey(atoms, elements);
}

}  // namespace

int ChaseTree::BagOfNull(Term null_term) const {
  for (const auto& [term, bag] : null_home) {
    if (term == null_term) return bag;
  }
  return -1;
}

ChaseTree BuildChaseTree(const Instance& db, const TgdSet& sigma,
                         const ChaseTreeOptions& options,
                         TypeClosureEngine* engine) {
  std::unique_ptr<TypeClosureEngine> owned;
  if (engine == nullptr) {
    owned = std::make_unique<TypeClosureEngine>(sigma);
    engine = owned.get();
  }
  ChaseTree tree;
  GovernorScope scope(options.governor, options.budget);
  Governor* governor = scope.get();
  tree.portion = GroundSaturation(db, sigma, engine);
  governor->ChargeFacts(tree.portion.size());

  // Gate every portion insertion on the fact budget; a budget trip marks
  // the tree truncated and (via the sticky status) stops the build.
  auto try_insert = [&](const Atom& atom) {
    if (tree.portion.Contains(atom)) return true;
    if (governor->ChargeFacts(1) != Status::kCompleted) {
      tree.truncated = true;
      return false;
    }
    tree.portion.Insert(atom);
    return true;
  };

  // Root bags: one per ground fact (its guarded set).
  std::deque<int> queue;
  std::unordered_set<std::string> root_seen;
  for (const Atom& atom : tree.portion.atoms()) {
    std::vector<Term> elements;
    atom.CollectGroundTerms(&elements);
    std::vector<Atom> bag_atoms = tree.portion.AtomsOver(elements);
    std::string key = ShapeKey(bag_atoms, elements);
    // Deduplicate root bags over identical element sets.
    std::string root_key;
    for (Term t : elements) root_key += std::to_string(t.bits()) + ",";
    if (!root_seen.insert(root_key).second) continue;
    ChaseBag bag;
    bag.elements = elements;
    bag.parent = -1;
    bag.depth = 0;
    bag.shape_key = std::move(key);
    tree.bags.push_back(std::move(bag));
    queue.push_back(static_cast<int>(tree.bags.size()) - 1);
  }

  // Global oblivious-trigger dedup: the same trigger may be discoverable
  // from several bags (shared ground elements); fire it once.
  std::unordered_set<std::string> fired;

  // Expand bags breadth-first.
  while (!queue.empty()) {
    // Per-bag checkpoint: probes the deadline, cancellation and the
    // injector.
    if (governor->Check() != Status::kCompleted) {
      tree.truncated = true;
      break;
    }
    const int bag_index = queue.front();
    queue.pop_front();
    // Copy what we need: tree.bags may reallocate as children are added.
    const std::vector<Term> elements = tree.bags[bag_index].elements;
    const int depth = tree.bags[bag_index].depth;
    if (depth >= options.max_depth) {
      tree.truncated = true;
      continue;
    }
    // Saturate the bag and add everything to the portion.
    std::vector<Atom> bag_atoms = tree.portion.AtomsOver(elements);
    std::vector<Atom> closed = engine->Closure(bag_atoms, elements);
    for (const Atom& atom : closed) {
      if (!try_insert(atom)) break;
    }
    if (governor->Tripped()) break;

    // Fire existential rules one level.
    Instance bag_instance;
    bag_instance.InsertAll(closed);
    for (size_t tgd_index = 0; tgd_index < sigma.size(); ++tgd_index) {
      const Tgd& tgd = sigma[tgd_index];
      if (tgd.IsFull()) continue;  // covered by the closure
      const std::vector<Term> frontier = tgd.Frontier();
      const std::vector<Term> existentials = tgd.ExistentialVariables();
      const std::vector<Term> body_vars = tgd.BodyVariables();
      HomOptions hom_options;
      hom_options.governor = governor;
      std::vector<Substitution> triggers =
          HomomorphismSearch(tgd.body(), bag_instance, hom_options).FindAll();
      for (const Substitution& sub : triggers) {
        std::string trigger_key = std::to_string(tgd_index);
        for (Term v : body_vars) {
          trigger_key += ":" + std::to_string(sub.Apply(v).bits());
        }
        if (!fired.insert(trigger_key).second) continue;
        Substitution extended = sub;
        std::vector<Term> child_elements;
        for (Term x : frontier) {
          Term image = sub.Apply(x);
          if (std::find(child_elements.begin(), child_elements.end(),
                        image) == child_elements.end()) {
            child_elements.push_back(image);
          }
        }
        std::vector<Term> new_nulls;
        for (Term z : existentials) {
          Term null = Term::FreshNull();
          extended.Set(z, null);
          child_elements.push_back(null);
          new_nulls.push_back(null);
        }
        std::vector<Atom> child_atoms;
        for (const Atom& head_atom : tgd.head()) {
          child_atoms.push_back(extended.Apply(head_atom));
        }
        // Inherit parent atoms over the frontier images.
        for (const Atom& atom : bag_instance.AtomsOver(child_elements)) {
          child_atoms.push_back(atom);
        }
        std::vector<Atom> child_closed =
            engine->Closure(child_atoms, child_elements);
        const std::string child_shape = ShapeKey(child_closed, child_elements);

        // Blocking: count this shape on the ancestor path.
        int repeats = 0;
        for (int a = bag_index; a != -1; a = tree.bags[a].parent) {
          if (tree.bags[a].shape_key == child_shape) ++repeats;
        }
        ChaseBag child;
        child.elements = child_elements;
        child.parent = bag_index;
        child.depth = depth + 1;
        child.shape_key = child_shape;
        child.blocked = repeats >= options.blocking_repeats;
        // Materialize the child's atoms either way (the bag exists in the
        // chase); only expansion below it is cut when blocked.
        for (const Atom& atom : child_closed) {
          if (!try_insert(atom)) break;
        }
        for (Term null : new_nulls) {
          tree.null_home.emplace_back(null,
                                      static_cast<int>(tree.bags.size()));
        }
        tree.bags.push_back(child);
        if (!child.blocked) {
          queue.push_back(static_cast<int>(tree.bags.size()) - 1);
        }
        if (governor->Tripped()) break;
      }
      if (governor->Tripped()) break;
    }
    if (governor->Tripped()) {
      tree.truncated = true;
      break;
    }
  }
  if (governor->Tripped()) tree.truncated = true;
  tree.status = governor->status();
  return tree;
}

}  // namespace gqe
