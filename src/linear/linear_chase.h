#ifndef GQE_LINEAR_LINEAR_CHASE_H_
#define GQE_LINEAR_LINEAR_CHASE_H_

#include <vector>

#include "base/instance.h"
#include "query/cq.h"
#include "tgd/tgd.h"
#include "verify/witness.h"

namespace gqe {

/// Result of level-bounded linear-chase evaluation (Lemma A.1: for linear
/// Σ there is a computable level g(‖Σ‖+‖q‖) such that
/// q(chase(D,Σ)) = q(chase^g(D,Σ))).
struct LinearChaseEvalResult {
  std::vector<std::vector<Term>> answers;

  /// The first level at which the answer set became stable (and stayed
  /// stable through the run).
  int stabilization_level = 0;

  /// Levels actually built.
  int levels_built = 0;

  bool hit_level_cap = false;
};

/// Evaluates a UCQ over the level-bounded chase of a linear set,
/// increasing the level until the answer set is unchanged for
/// `stable_window` additional levels (empirically demonstrating the
/// Lemma A.1 bound) or `max_level` is reached.
LinearChaseEvalResult LinearCertainAnswersViaChase(const Instance& db,
                                                   const TgdSet& sigma,
                                                   const UCQ& query,
                                                   int max_level = 32,
                                                   int stable_window = 3);

/// Exact certain answers via UCQ rewriting (Proposition D.2): rewrite
/// first, then evaluate over D directly.
std::vector<std::vector<Term>> LinearCertainAnswersViaRewriting(
    const Instance& db, const TgdSet& sigma, const UCQ& query);

/// Witness-emitting variant: `witnesses` receives one provenance record
/// per answer (aligned index-by-index) — the rewritten disjunct that
/// matched, the homomorphism placing it in D, and the rewriting depth.
/// VerifyRewriteProvenance re-checks each record against the *original*
/// query by chasing the homomorphic image forward, independent of the
/// rewriting procedure that produced it.
std::vector<std::vector<Term>> LinearCertainAnswersViaRewriting(
    const Instance& db, const TgdSet& sigma, const UCQ& query,
    std::vector<RewriteWitness>* witnesses);

}  // namespace gqe

#endif  // GQE_LINEAR_LINEAR_CHASE_H_
