#include "linear/linear_chase.h"

#include <algorithm>

#include "chase/chase.h"
#include "linear/rewriting.h"
#include "query/evaluation.h"

namespace gqe {

namespace {

/// Keeps only tuples over dom(db).
std::vector<std::vector<Term>> FilterToDomain(
    std::vector<std::vector<Term>> tuples, const Instance& db) {
  std::vector<std::vector<Term>> out;
  for (auto& tuple : tuples) {
    bool inside = true;
    for (Term t : tuple) {
      if (!db.InDomain(t)) {
        inside = false;
        break;
      }
    }
    if (inside) out.push_back(std::move(tuple));
  }
  return out;
}

}  // namespace

LinearChaseEvalResult LinearCertainAnswersViaChase(const Instance& db,
                                                   const TgdSet& sigma,
                                                   const UCQ& query,
                                                   int max_level,
                                                   int stable_window) {
  // `stable_window` is retained for API stability but unused: an early
  // exit on a temporarily-stable answer set is unsound (answers can first
  // appear at any level up to the Lemma A.1 bound), so the evaluation
  // always runs to max_level and reports where the answers last changed.
  (void)stable_window;
  LinearChaseEvalResult result;
  ChaseOptions options;
  options.max_level = max_level;
  ChaseResult chased = Chase(db, sigma, options);
  result.levels_built = chased.max_level_built;
  result.hit_level_cap = !chased.complete;

  std::vector<std::vector<Term>> previous;
  int last_change = 0;
  for (int level = 0; level <= chased.max_level_built; ++level) {
    Instance portion = chased.UpToLevel(level);
    std::vector<std::vector<Term>> answers =
        FilterToDomain(EvaluateUCQ(query, portion), db);
    if (level == 0 || answers != previous) last_change = level;
    previous = std::move(answers);
  }
  result.answers = std::move(previous);
  result.stabilization_level = last_change;
  return result;
}

std::vector<std::vector<Term>> LinearCertainAnswersViaRewriting(
    const Instance& db, const TgdSet& sigma, const UCQ& query) {
  RewriteResult rewrite = RewriteUnderLinearTgds(query, sigma);
  return FilterToDomain(EvaluateUCQ(rewrite.rewriting, db), db);
}

std::vector<std::vector<Term>> LinearCertainAnswersViaRewriting(
    const Instance& db, const TgdSet& sigma, const UCQ& query,
    std::vector<RewriteWitness>* witnesses) {
  RewriteResult rewrite = RewriteUnderLinearTgds(query, sigma);
  std::vector<std::vector<Term>> answers =
      FilterToDomain(EvaluateUCQ(rewrite.rewriting, db), db);
  witnesses->clear();
  witnesses->reserve(answers.size());
  for (const auto& answer : answers) {
    RewriteWitness record;
    record.chase_depth = static_cast<uint32_t>(rewrite.rounds);
    if (FindUcqAnswerWitness(rewrite.rewriting, db, answer, &record.hom)) {
      record.disjunct = record.hom.disjunct;
      record.rewritten = rewrite.rewriting.disjuncts()[record.disjunct];
      // The provenance record stands alone: its hom indexes into the
      // single CQ it carries, not into the full rewriting.
      record.hom.disjunct = 0;
    }
    witnesses->push_back(std::move(record));
  }
  return answers;
}

}  // namespace gqe
