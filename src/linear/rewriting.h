#ifndef GQE_LINEAR_REWRITING_H_
#define GQE_LINEAR_REWRITING_H_

#include <cstddef>

#include "query/cq.h"
#include "tgd/tgd.h"

namespace gqe {

/// Options for the backward-rewriting procedure.
struct RewriteOptions {
  /// Cap on the number of CQs generated (safety valve; the rewriting of a
  /// UCQ under linear TGDs is finite but can be exponential).
  size_t max_disjuncts = 20000;

  /// Drop disjuncts subsumed by others in a final minimization pass.
  bool minimize = true;
};

/// Result of rewriting.
struct RewriteResult {
  UCQ rewriting;
  bool complete = true;  // false if max_disjuncts was hit
  size_t rounds = 0;
};

/// UCQ rewriting for *linear* TGDs (Proposition D.2, the XRewrite
/// procedure of [15]): produces a UCQ q' with
/// q(chase(D,Σ)) = q'(D) for every database D. Uses piece unification:
/// a subset of query atoms is unified with the head of a TGD and replaced
/// by its (single) body atom; existential head variables may only absorb
/// query variables that are local to the replaced piece.
RewriteResult RewriteUnderLinearTgds(const UCQ& query, const TgdSet& sigma,
                                     const RewriteOptions& options = {});

}  // namespace gqe

#endif  // GQE_LINEAR_REWRITING_H_
