#include "linear/rewriting.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "query/containment.h"
#include "query/substitution.h"

namespace gqe {

namespace {

/// Union-find over terms for unification. A class is inconsistent if it
/// contains two distinct constants.
class Unifier {
 public:
  Term Find(Term t) {
    auto it = parent_.find(t);
    if (it == parent_.end()) {
      parent_[t] = t;
      return t;
    }
    if (it->second == t) return t;
    Term root = Find(it->second);
    parent_[t] = root;
    return root;
  }

  /// Unions the classes of a and b; returns false on constant clash.
  bool Union(Term a, Term b) {
    Term ra = Find(a);
    Term rb = Find(b);
    if (ra == rb) return true;
    if (ra.IsGround() && rb.IsGround()) return false;  // two constants
    // Keep the ground term (or an arbitrary one) as representative.
    if (rb.IsGround()) std::swap(ra, rb);
    parent_[rb] = ra;
    return true;
  }

  /// The members of each class.
  std::map<Term, std::vector<Term>> Classes() {
    std::map<Term, std::vector<Term>> classes;
    std::vector<Term> keys;
    for (const auto& [t, _] : parent_) keys.push_back(t);
    for (Term t : keys) classes[Find(t)].push_back(t);
    return classes;
  }

 private:
  std::unordered_map<Term, Term> parent_;
};

std::string CanonicalCqKey(const CQ& cq) {
  // Canonicalize variable names by order of first occurrence so that
  // alpha-equivalent CQs deduplicate.
  std::unordered_map<Term, int> index;
  for (Term v : cq.answer_vars()) {
    index.emplace(v, static_cast<int>(index.size()));
  }
  std::vector<std::string> parts;
  // Two passes: assign indexes in a canonical atom order is hard; use
  // first-occurrence order over the (sorted-by-string) atom list.
  std::vector<Atom> atoms = cq.atoms();
  std::sort(atoms.begin(), atoms.end());
  for (const Atom& atom : atoms) {
    for (Term t : atom.args()) {
      if (t.IsVariable()) index.emplace(t, static_cast<int>(index.size()));
    }
  }
  for (const Atom& atom : atoms) {
    std::string s = std::to_string(atom.predicate()) + "(";
    for (Term t : atom.args()) {
      if (t.IsVariable()) {
        s += "v" + std::to_string(index.at(t));
      } else {
        s += t.ToString();
      }
      s += ",";
    }
    s += ")";
    parts.push_back(std::move(s));
  }
  std::sort(parts.begin(), parts.end());
  std::string key;
  for (const auto& p : parts) {
    key += p;
    key += ";";
  }
  return key;
}

/// Renames the variables of a TGD with fresh ones (so repeated
/// applications do not clash with query variables).
Tgd FreshenTgd(const Tgd& tgd) {
  Substitution rename;
  for (Term v : tgd.BodyVariables()) rename.Set(v, Term::FreshVariable());
  for (Term v : tgd.HeadVariables()) {
    if (!rename.Has(v)) rename.Set(v, Term::FreshVariable());
  }
  return Tgd(rename.Apply(tgd.body()), rename.Apply(tgd.head()));
}

/// Attempts one piece rewriting of `cq`: unify the atom subset given by
/// `choice` (query-atom index -> head-atom index) with the head of `tgd`
/// and replace it by the body atom. Returns the rewritten CQ on success.
bool TryPieceRewrite(const CQ& cq, const Tgd& tgd,
                     const std::vector<std::pair<size_t, size_t>>& choice,
                     CQ* out) {
  Unifier unifier;
  for (auto [query_index, head_index] : choice) {
    const Atom& query_atom = cq.atoms()[query_index];
    const Atom& head_atom = tgd.head()[head_index];
    if (query_atom.predicate() != head_atom.predicate()) return false;
    for (int i = 0; i < query_atom.arity(); ++i) {
      if (!unifier.Union(query_atom.args()[i], head_atom.args()[i])) {
        return false;
      }
    }
  }
  // Existential-variable conditions: each class containing an existential
  // head variable may contain (a) no constants, (b) no answer variables,
  // (c) no query variables that occur outside the replaced piece, and
  // (d) no frontier variables of the TGD.
  std::vector<Term> existentials = tgd.ExistentialVariables();
  std::unordered_set<Term> existential_set(existentials.begin(),
                                           existentials.end());
  std::unordered_set<Term> frontier_set;
  for (Term v : tgd.Frontier()) frontier_set.insert(v);
  std::unordered_set<Term> answer_set(cq.answer_vars().begin(),
                                      cq.answer_vars().end());
  std::unordered_set<size_t> replaced;
  for (auto [query_index, _] : choice) replaced.insert(query_index);
  std::unordered_set<Term> outside_vars;  // query vars occurring outside
  for (size_t i = 0; i < cq.atoms().size(); ++i) {
    if (replaced.count(i) > 0) continue;
    for (Term t : cq.atoms()[i].args()) {
      if (t.IsVariable()) outside_vars.insert(t);
    }
  }
  for (auto& [representative, members] : unifier.Classes()) {
    bool has_existential = false;
    for (Term t : members) {
      if (existential_set.count(t) > 0) has_existential = true;
    }
    if (!has_existential) continue;
    for (Term t : members) {
      if (existential_set.count(t) > 0) continue;
      if (t.IsGround()) return false;
      if (answer_set.count(t) > 0) return false;
      if (outside_vars.count(t) > 0) return false;
      if (frontier_set.count(t) > 0) return false;
    }
  }
  // Build the substitution: map every term to its class representative,
  // preferring ground members, then answer variables, then query
  // variables (so answer variables survive).
  Substitution theta;
  for (auto& [representative, members] : unifier.Classes()) {
    Term image = representative;
    for (Term t : members) {
      if (t.IsGround()) {
        image = t;
        break;
      }
      if (answer_set.count(t) > 0) image = t;
    }
    for (Term t : members) {
      if (t != image) theta.Set(t, image);
    }
  }
  // Answer variables must remain distinct (no two merged).
  std::unordered_set<Term> images;
  for (Term a : cq.answer_vars()) {
    if (!images.insert(theta.Apply(a)).second) return false;
    if (!theta.Apply(a).IsVariable()) return false;
  }
  // New CQ: theta(untouched atoms) + theta(body atom).
  std::vector<Atom> new_atoms;
  std::unordered_set<Atom, AtomHash> seen;
  for (size_t i = 0; i < cq.atoms().size(); ++i) {
    if (replaced.count(i) > 0) continue;
    Atom mapped = theta.Apply(cq.atoms()[i]);
    if (seen.insert(mapped).second) new_atoms.push_back(mapped);
  }
  assert(tgd.body().size() == 1);
  Atom body_mapped = theta.Apply(tgd.body()[0]);
  if (seen.insert(body_mapped).second) new_atoms.push_back(body_mapped);
  std::vector<Term> new_answer;
  for (Term a : cq.answer_vars()) new_answer.push_back(theta.Apply(a));
  *out = CQ(std::move(new_answer), std::move(new_atoms));
  return true;
}

/// Enumerates piece choices: non-empty partial maps from query atoms to
/// head atoms (same predicate), and calls TryPieceRewrite on each.
void RewriteStep(const CQ& cq, const Tgd& tgd,
                 std::vector<CQ>* out) {
  const size_t num_query_atoms = cq.atoms().size();
  std::vector<std::pair<size_t, size_t>> choice;
  // Recursive enumeration over query atoms: for each, either skip or
  // unify with one head atom.
  std::vector<size_t> head_candidates;
  std::function<void(size_t)> recurse = [&](size_t index) {
    if (index == num_query_atoms) {
      if (choice.empty()) return;
      CQ rewritten;
      if (TryPieceRewrite(cq, tgd, choice, &rewritten)) {
        out->push_back(std::move(rewritten));
      }
      return;
    }
    // Skip this atom.
    recurse(index + 1);
    // Or unify it with a matching head atom.
    for (size_t h = 0; h < tgd.head().size(); ++h) {
      if (tgd.head()[h].predicate() != cq.atoms()[index].predicate()) {
        continue;
      }
      choice.emplace_back(index, h);
      recurse(index + 1);
      choice.pop_back();
    }
  };
  recurse(0);
}

}  // namespace

RewriteResult RewriteUnderLinearTgds(const UCQ& query, const TgdSet& sigma,
                                     const RewriteOptions& options) {
  if (!IsLinearSet(sigma)) {
    std::fprintf(stderr, "RewriteUnderLinearTgds requires linear TGDs\n");
    std::abort();
  }
  RewriteResult result;
  std::vector<CQ> all;
  std::unordered_set<std::string> seen;
  std::deque<CQ> frontier;
  for (const CQ& cq : query.disjuncts()) {
    if (seen.insert(CanonicalCqKey(cq)).second) {
      all.push_back(cq);
      frontier.push_back(cq);
    }
  }
  while (!frontier.empty()) {
    if (all.size() >= options.max_disjuncts) {
      result.complete = false;
      break;
    }
    CQ cq = std::move(frontier.front());
    frontier.pop_front();
    ++result.rounds;
    for (const Tgd& tgd : sigma) {
      Tgd fresh = FreshenTgd(tgd);
      std::vector<CQ> rewritten;
      RewriteStep(cq, fresh, &rewritten);
      for (CQ& candidate : rewritten) {
        if (seen.insert(CanonicalCqKey(candidate)).second) {
          all.push_back(candidate);
          frontier.push_back(std::move(candidate));
          if (all.size() >= options.max_disjuncts) break;
        }
      }
      if (all.size() >= options.max_disjuncts) break;
    }
  }
  UCQ rewriting(all);
  if (options.minimize && result.complete) {
    rewriting = MinimizeUcq(rewriting);
  }
  result.rewriting = std::move(rewriting);
  return result;
}

}  // namespace gqe
