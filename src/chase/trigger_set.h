#ifndef GQE_CHASE_TRIGGER_SET_H_
#define GQE_CHASE_TRIGGER_SET_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "base/arena.h"
#include "base/flat_table.h"

namespace gqe {

/// Dedup set for oblivious-chase trigger keys (tgd index + body-variable
/// images, a short uint32 run). The old representation — an
/// unordered_set of std::vector<uint32_t> — paid one heap vector per key
/// plus node allocation per entry; here key bytes live contiguously in a
/// bump arena and the open-addressing index stores {pointer, length}
/// slots, so a chase's whole fired-trigger history tears down in O(1).
///
/// Not copyable: slots alias the arena. The chase owns one set per run.
class TriggerKeySet {
 public:
  TriggerKeySet() { table_.ops().set = this; }
  TriggerKeySet(const TriggerKeySet&) = delete;
  TriggerKeySet& operator=(const TriggerKeySet&) = delete;

  static uint64_t HashKey(const uint32_t* data, size_t len) {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (size_t i = 0; i < len; ++i) {
      h = HashShuffle(h ^ data[i]);
    }
    return h;
  }

  /// Inserts the key; returns true if it was new. Key bytes are copied
  /// into the arena only on a fresh insert.
  bool insert(const std::vector<uint32_t>& key) {
    auto [slot, fresh] = table_.InsertWith(key, [&]() {
      uint32_t* stored = arena_.AllocateArray<uint32_t>(key.size());
      if (!key.empty()) {
        std::memcpy(stored, key.data(), key.size() * sizeof(uint32_t));
      }
      return KeyRef{stored, static_cast<uint32_t>(key.size())};
    });
    return fresh;
  }

  bool contains(const std::vector<uint32_t>& key) const {
    return table_.contains(key);
  }

  /// Removes the key (tombstone). The arena bytes are reclaimed at
  /// clear(), not per-erase — erased keys are a small transient set.
  bool erase(const std::vector<uint32_t>& key) { return table_.erase(key); }

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  void reserve(size_t n) { table_.reserve(n); }
  uint64_t rehashes() const { return table_.rehashes(); }
  size_t arena_bytes() const { return arena_.bytes_reserved(); }

  void clear() {
    table_.clear();
    arena_.Reset();
  }

 private:
  struct KeyRef {
    const uint32_t* data;
    uint32_t len;
  };

  struct Ops {
    const TriggerKeySet* set = nullptr;
    uint64_t hash(const KeyRef& ref) const {
      return HashKey(ref.data, ref.len);
    }
    uint64_t hash(const std::vector<uint32_t>& key) const {
      return HashKey(key.data(), key.size());
    }
    bool eq(const KeyRef& slot, const std::vector<uint32_t>& key) const {
      return slot.len == key.size() &&
             (slot.len == 0 ||
              std::memcmp(slot.data, key.data(),
                          slot.len * sizeof(uint32_t)) == 0);
    }
    bool eq(const KeyRef& a, const KeyRef& b) const {
      return a.len == b.len &&
             (a.len == 0 ||
              std::memcmp(a.data, b.data, a.len * sizeof(uint32_t)) == 0);
    }
  };

  Arena arena_;
  flat_internal::RawTable<KeyRef, Ops> table_;
};

}  // namespace gqe

#endif  // GQE_CHASE_TRIGGER_SET_H_
