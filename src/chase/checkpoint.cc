#include "chase/checkpoint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

namespace gqe {

namespace {

constexpr std::string_view kManifestName = "MANIFEST";
constexpr std::string_view kSnapshotPrefix = "chase-";
constexpr std::string_view kSnapshotSuffix = ".snap";

}  // namespace

std::string EncodeChaseSnapshot(const ChaseCheckpointState& state,
                                uint32_t fingerprint) {
  BinaryWriter writer;
  writer.WriteU32(fingerprint);
  EncodeInterner(&writer);
  writer.WriteU32(state.next_null_id);
  writer.WriteU64(state.rounds_completed);
  writer.WriteU64(state.delta_start);
  writer.WriteU64(state.triggers_fired);
  writer.WriteI32(state.max_level_built);
  writer.WriteBool(state.complete);
  EncodeAtomVector(state.atoms, &writer);
  writer.WriteU64(state.levels.size());
  for (int32_t level : state.levels) writer.WriteI32(level);
  writer.WriteU64(state.fired.size());
  for (const std::vector<uint32_t>& key : state.fired) {
    writer.WriteU64(key.size());
    for (uint32_t word : key) writer.WriteU32(word);
  }
  writer.WriteBool(state.witness_collected);
  writer.WriteU64(state.fired_nulls.size());
  for (const std::vector<uint32_t>& nulls : state.fired_nulls) {
    writer.WriteU64(nulls.size());
    for (uint32_t id : nulls) writer.WriteU32(id);
  }
  writer.WriteU64(state.carried.size());
  for (const ChaseCheckpointState::CarriedTrigger& trigger : state.carried) {
    writer.WriteU32(trigger.tgd_index);
    writer.WriteI32(trigger.level);
    writer.WriteU64(trigger.bindings.size());
    for (const auto& [var_bits, term_bits] : trigger.bindings) {
      writer.WriteU32(var_bits);
      writer.WriteU32(term_bits);
    }
  }
  return writer.Take();
}

SnapshotStatus DecodeChaseSnapshot(std::string_view payload,
                                   ChaseCheckpointState* state,
                                   uint32_t* fingerprint) {
  BinaryReader reader(payload);
  uint32_t stored_fingerprint = 0;
  if (!reader.ReadU32(&stored_fingerprint)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "chase snapshot fingerprint cut short");
  }
  SnapshotStatus status = DecodeInterner(&reader);
  if (!status.ok()) return status;

  ChaseCheckpointState decoded;
  uint64_t level_count = 0;
  if (!reader.ReadU32(&decoded.next_null_id) ||
      !reader.ReadU64(&decoded.rounds_completed) ||
      !reader.ReadU64(&decoded.delta_start) ||
      !reader.ReadU64(&decoded.triggers_fired) ||
      !reader.ReadI32(&decoded.max_level_built) ||
      !reader.ReadBool(&decoded.complete)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "chase snapshot header cut short");
  }
  status = DecodeAtomVector(&reader, &decoded.atoms);
  if (!status.ok()) return status;
  if (!reader.ReadU64(&level_count)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "chase snapshot level count cut short");
  }
  if (level_count != decoded.atoms.size()) {
    return SnapshotStatus::Fail(
        SnapshotError::kFormatError,
        "chase snapshot has " + std::to_string(level_count) +
            " levels for " + std::to_string(decoded.atoms.size()) + " facts");
  }
  decoded.levels.reserve(decoded.atoms.size());
  for (uint64_t i = 0; i < level_count; ++i) {
    int32_t level = 0;
    if (!reader.ReadI32(&level)) {
      return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                  "chase snapshot levels cut short");
    }
    decoded.levels.push_back(level);
  }

  uint64_t fired_count = 0;
  if (!reader.ReadU64(&fired_count)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "chase snapshot fired count cut short");
  }
  for (uint64_t i = 0; i < fired_count; ++i) {
    uint64_t key_size = 0;
    if (!reader.ReadU64(&key_size) ||
        key_size * sizeof(uint32_t) > reader.remaining()) {
      return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                  "chase snapshot fired keys cut short");
    }
    std::vector<uint32_t> key;
    key.reserve(key_size);
    for (uint64_t w = 0; w < key_size; ++w) {
      uint32_t word = 0;
      reader.ReadU32(&word);
      key.push_back(word);
    }
    decoded.fired.push_back(std::move(key));
  }

  uint64_t null_list_count = 0;
  if (!reader.ReadBool(&decoded.witness_collected) ||
      !reader.ReadU64(&null_list_count) ||
      null_list_count > reader.remaining()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "chase snapshot null log cut short");
  }
  if (decoded.witness_collected && null_list_count != fired_count) {
    return SnapshotStatus::Fail(
        SnapshotError::kFormatError,
        "chase snapshot null log has " + std::to_string(null_list_count) +
            " entries for " + std::to_string(fired_count) +
            " fired triggers");
  }
  for (uint64_t i = 0; i < null_list_count; ++i) {
    uint64_t null_count = 0;
    if (!reader.ReadU64(&null_count) ||
        null_count * sizeof(uint32_t) > reader.remaining()) {
      return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                  "chase snapshot null draws cut short");
    }
    std::vector<uint32_t> nulls;
    nulls.reserve(null_count);
    for (uint64_t n = 0; n < null_count; ++n) {
      uint32_t id = 0;
      reader.ReadU32(&id);
      nulls.push_back(id);
    }
    decoded.fired_nulls.push_back(std::move(nulls));
  }

  uint64_t carried_count = 0;
  if (!reader.ReadU64(&carried_count)) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "chase snapshot carried count cut short");
  }
  for (uint64_t i = 0; i < carried_count; ++i) {
    ChaseCheckpointState::CarriedTrigger trigger;
    uint64_t binding_count = 0;
    if (!reader.ReadU32(&trigger.tgd_index) ||
        !reader.ReadI32(&trigger.level) ||
        !reader.ReadU64(&binding_count) ||
        binding_count * 2 * sizeof(uint32_t) > reader.remaining()) {
      return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                  "chase snapshot carried triggers cut short");
    }
    trigger.bindings.reserve(binding_count);
    for (uint64_t b = 0; b < binding_count; ++b) {
      uint32_t var_bits = 0, term_bits = 0;
      reader.ReadU32(&var_bits);
      reader.ReadU32(&term_bits);
      trigger.bindings.emplace_back(var_bits, term_bits);
    }
    decoded.carried.push_back(std::move(trigger));
  }
  if (!reader.ok() || !reader.AtEnd()) {
    return SnapshotStatus::Fail(SnapshotError::kFormatError,
                                "chase snapshot has trailing bytes");
  }
  *state = std::move(decoded);
  if (fingerprint != nullptr) *fingerprint = stored_fingerprint;
  return SnapshotStatus::Ok();
}

uint32_t ChaseWorkloadFingerprint(const Instance& db, const TgdSet& tgds,
                                  const ChaseOptions& options) {
  // Only the inputs that determine the chase *output* participate:
  // threads, budgets and checkpoint cadence may differ between the
  // checkpointed run and the resuming run.
  BinaryWriter writer;
  EncodeInstance(db, &writer);
  writer.WriteString(TgdSetToString(tgds));
  writer.WriteBool(options.restricted);
  writer.WriteBool(options.semi_naive);
  writer.WriteI32(options.max_level);
  return Crc32(writer.buffer());
}

CheckpointDir::CheckpointDir(std::string dir, CheckpointDirOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.keep_generations < 2) options_.keep_generations = 2;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // A failure here surfaces as kIoError on the first Save.
}

std::string CheckpointDir::GenerationPath(uint64_t generation) const {
  return dir_ + "/" + std::string(kSnapshotPrefix) +
         std::to_string(generation) + std::string(kSnapshotSuffix);
}

std::vector<uint64_t> CheckpointDir::Generations() const {
  std::vector<uint64_t> generations;
  std::string manifest;
  bool manifest_ok = false;
  if (ReadFileBytes(dir_ + "/" + std::string(kManifestName), &manifest).ok()) {
    manifest_ok = true;
    size_t pos = 0;
    while (pos < manifest.size()) {
      size_t end = manifest.find('\n', pos);
      if (end == std::string::npos) end = manifest.size();
      std::string_view line(manifest.data() + pos, end - pos);
      pos = end + 1;
      if (line.empty()) continue;
      uint64_t value = 0;
      bool numeric = true;
      for (char c : line) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          numeric = false;
          break;
        }
        value = value * 10 + static_cast<uint64_t>(c - '0');
      }
      if (!numeric) {
        // Damaged manifest: distrust it wholesale and scan instead.
        manifest_ok = false;
        generations.clear();
        break;
      }
      generations.push_back(value);
    }
  }
  if (!manifest_ok) {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir_, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() <= kSnapshotPrefix.size() + kSnapshotSuffix.size() ||
          name.compare(0, kSnapshotPrefix.size(), kSnapshotPrefix) != 0 ||
          name.compare(name.size() - kSnapshotSuffix.size(),
                       kSnapshotSuffix.size(), kSnapshotSuffix) != 0) {
        continue;
      }
      std::string_view digits(name.data() + kSnapshotPrefix.size(),
                              name.size() - kSnapshotPrefix.size() -
                                  kSnapshotSuffix.size());
      uint64_t value = 0;
      bool numeric = !digits.empty();
      for (char c : digits) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          numeric = false;
          break;
        }
        value = value * 10 + static_cast<uint64_t>(c - '0');
      }
      if (numeric) generations.push_back(value);
    }
  }
  std::sort(generations.begin(), generations.end());
  generations.erase(std::unique(generations.begin(), generations.end()),
                    generations.end());
  return generations;
}

SnapshotStatus CheckpointDir::WriteManifest(
    const std::vector<uint64_t>& generations) {
  std::string body;
  for (uint64_t generation : generations) {
    body += std::to_string(generation);
    body += '\n';
  }
  return WriteFileAtomic(dir_ + "/" + std::string(kManifestName), body);
}

SnapshotStatus CheckpointDir::Save(const ChaseCheckpointState& state,
                                   uint32_t fingerprint) {
  const std::string bytes = WrapSnapshot(
      kSnapshotKindChase, EncodeChaseSnapshot(state, fingerprint));
  SnapshotStatus status =
      WriteFileAtomic(GenerationPath(state.rounds_completed), bytes);
  if (!status.ok()) return status;

  std::vector<uint64_t> generations = Generations();
  generations.push_back(state.rounds_completed);
  std::sort(generations.begin(), generations.end());
  generations.erase(std::unique(generations.begin(), generations.end()),
                    generations.end());
  std::vector<uint64_t> pruned;
  const size_t keep = static_cast<size_t>(options_.keep_generations);
  while (generations.size() > keep) {
    pruned.push_back(generations.front());
    generations.erase(generations.begin());
  }
  status = WriteManifest(generations);
  if (!status.ok()) return status;
  // Remove pruned files only after the manifest stopped referencing them:
  // a crash in between leaves stale files, never dangling manifest rows.
  for (uint64_t generation : pruned) {
    std::error_code ec;
    std::filesystem::remove(GenerationPath(generation), ec);
  }
  return SnapshotStatus::Ok();
}

SnapshotStatus CheckpointDir::LoadLatest(ChaseCheckpointState* state,
                                         uint32_t* fingerprint,
                                         uint64_t* generation, int* skipped) {
  if (skipped != nullptr) *skipped = 0;
  const std::vector<uint64_t> generations = Generations();
  SnapshotStatus last = SnapshotStatus::Fail(
      SnapshotError::kNotFound, "no snapshot in '" + dir_ + "'");
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const std::string path = GenerationPath(*it);
    std::string bytes;
    SnapshotStatus status = ReadFileBytes(path, &bytes);
    std::string_view payload;
    if (status.ok()) {
      status = UnwrapSnapshot(bytes, kSnapshotKindChase, &payload);
    }
    if (status.ok()) {
      status = DecodeChaseSnapshot(payload, state, fingerprint);
    }
    if (status.ok()) {
      if (generation != nullptr) *generation = *it;
      return status;
    }
    status.message = path + ": " + status.message;
    last = std::move(status);
    if (skipped != nullptr) ++*skipped;
  }
  return last;
}

DirectoryCheckpointSink::DirectoryCheckpointSink(std::string dir,
                                                uint32_t fingerprint,
                                                CheckpointDirOptions options)
    : dir_(std::move(dir), options), fingerprint_(fingerprint) {}

void DirectoryCheckpointSink::Write(const ChaseCheckpointState& state,
                                    bool final_write) {
  (void)final_write;
  last_status_ = dir_.Save(state, fingerprint_);
  ++writes_;
  if (!last_status_.ok()) ++failed_writes_;
}

ChaseResult ResumeChase(const std::string& checkpoint_dir, const Instance& db,
                        const TgdSet& tgds, const ChaseOptions& options,
                        ResumeInfo* info) {
  ResumeInfo local_info;
  ResumeInfo* out = info != nullptr ? info : &local_info;
  *out = ResumeInfo{};

  const uint32_t fingerprint = ChaseWorkloadFingerprint(db, tgds, options);
  CheckpointDir dir(checkpoint_dir);

  ChaseCheckpointState state;
  uint32_t stored_fingerprint = 0;
  uint64_t generation = 0;
  int skipped = 0;
  SnapshotStatus load =
      dir.LoadLatest(&state, &stored_fingerprint, &generation, &skipped);
  if (load.ok() && stored_fingerprint != fingerprint) {
    load = SnapshotStatus::Fail(
        SnapshotError::kFormatError,
        "'" + checkpoint_dir +
            "' holds snapshots of a different workload (fingerprint " +
            std::to_string(stored_fingerprint) + ", expected " +
            std::to_string(fingerprint) + "); starting fresh");
  }
  out->load_status = load;
  out->skipped_generations = skipped;

  DirectoryCheckpointSink sink(checkpoint_dir, fingerprint);
  ChaseOptions run_options = options;
  run_options.checkpoint_sink = &sink;
  if (run_options.checkpoint_every < 1) run_options.checkpoint_every = 1;

  if (load.ok()) {
    out->resumed = true;
    out->generation = generation;
    out->resumed_complete = state.complete;
    return ResumeChaseFromState(state, tgds, run_options);
  }
  return Chase(db, tgds, run_options);
}

}  // namespace gqe
