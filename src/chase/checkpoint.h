#ifndef GQE_CHASE_CHECKPOINT_H_
#define GQE_CHASE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/serialize.h"
#include "chase/chase.h"

namespace gqe {

/// Encodes a round-boundary chase state (plus the interner it depends on
/// and a workload fingerprint) into a snapshot payload. Equal states
/// encode to equal bytes, so the smoke test can diff snapshots directly.
std::string EncodeChaseSnapshot(const ChaseCheckpointState& state,
                                uint32_t fingerprint);

/// Decodes a payload produced by EncodeChaseSnapshot. Replays the
/// embedded interner section first (kInternerConflict when this process
/// already interned conflicting names), then validates every stored atom
/// and trigger against it. `fingerprint` receives the stored workload
/// fingerprint.
SnapshotStatus DecodeChaseSnapshot(std::string_view payload,
                                   ChaseCheckpointState* state,
                                   uint32_t* fingerprint);

/// Deterministic fingerprint of a chase workload: the database facts,
/// the TGD set and the options that change chase semantics (restricted
/// mode, max_level). A checkpoint directory is only resumable for the
/// workload it was written by; the fingerprint is how ResumeChase tells,
/// instead of silently continuing a different run's snapshot.
uint32_t ChaseWorkloadFingerprint(const Instance& db, const TgdSet& tgds,
                                  const ChaseOptions& options);

/// Retention/layout knobs for a checkpoint directory.
struct CheckpointDirOptions {
  /// Snapshot generations kept on disk. Older generations beyond this
  /// many are pruned after each successful save. Must be >= 2 so a crash
  /// during a save (or a corrupted latest file) always leaves a previous
  /// good generation to fall back to; smaller values behave as 2.
  int keep_generations = 3;
};

/// A directory of chase snapshot generations:
///
///   <dir>/chase-<rounds_completed>.snap   one file per generation
///   <dir>/MANIFEST                        generation numbers, ascending
///
/// Every file is written via tmp-file + fsync + rename + directory fsync
/// (WriteFileAtomic), so readers never observe a torn snapshot and the
/// renamed generation / MANIFEST survive power loss, not just process
/// death: a crash at any point leaves
/// the directory with the previous consistent contents. LoadLatest walks
/// generations newest-first and falls back past files that fail the
/// envelope checksum or decode, so one corrupted snapshot costs one
/// generation of progress, not the run.
class CheckpointDir {
 public:
  explicit CheckpointDir(std::string dir, CheckpointDirOptions options = {});

  const std::string& dir() const { return dir_; }

  /// Persists `state` as generation `state.rounds_completed`, updates the
  /// manifest and prunes generations beyond keep_generations.
  SnapshotStatus Save(const ChaseCheckpointState& state,
                      uint32_t fingerprint);

  /// Loads the newest generation that unwraps and decodes cleanly.
  /// `generation` receives its number and `skipped` how many newer
  /// generations were rejected as corrupt on the way (0 = the latest was
  /// good). kNotFound when the directory holds no usable snapshot; the
  /// last rejection reason is reported when all candidates fail.
  SnapshotStatus LoadLatest(ChaseCheckpointState* state,
                            uint32_t* fingerprint,
                            uint64_t* generation = nullptr,
                            int* skipped = nullptr);

  /// Generations with a snapshot file present, ascending. Prefers the
  /// manifest; falls back to a directory scan when the manifest is
  /// missing or damaged (the manifest is an optimisation, not a single
  /// point of failure).
  std::vector<uint64_t> Generations() const;

  /// Path of a generation's snapshot file.
  std::string GenerationPath(uint64_t generation) const;

 private:
  SnapshotStatus WriteManifest(const std::vector<uint64_t>& generations);

  std::string dir_;
  CheckpointDirOptions options_;
};

/// ChaseCheckpointSink that persists every delivered boundary to a
/// CheckpointDir. Persistence failures are remembered (last_status) but
/// do not stop the chase: losing a snapshot degrades crash recovery, not
/// the computation.
class DirectoryCheckpointSink : public ChaseCheckpointSink {
 public:
  DirectoryCheckpointSink(std::string dir, uint32_t fingerprint,
                          CheckpointDirOptions options = {});

  void Write(const ChaseCheckpointState& state, bool final_write) override;

  const SnapshotStatus& last_status() const { return last_status_; }
  size_t writes() const { return writes_; }
  size_t failed_writes() const { return failed_writes_; }

 private:
  CheckpointDir dir_;
  uint32_t fingerprint_;
  SnapshotStatus last_status_;
  size_t writes_ = 0;
  size_t failed_writes_ = 0;
};

/// What ResumeChase found on disk and what it did about it.
struct ResumeInfo {
  /// True iff the run continued from a snapshot (false: started fresh).
  bool resumed = false;
  /// Generation (rounds_completed) resumed from, when resumed.
  uint64_t generation = 0;
  /// Corrupt newer generations skipped before a good one was found.
  int skipped_generations = 0;
  /// The snapshot resumed from was already a fixpoint — no chase work ran.
  bool resumed_complete = false;
  /// Status of the load attempt (kNotFound for an empty/new directory;
  /// a corruption status when every generation was rejected; kFormatError
  /// with a fingerprint message when the directory belongs to a different
  /// workload — all of which fall back to a fresh run).
  SnapshotStatus load_status;
};

/// Crash-safe chase entry point. Looks for a usable snapshot of this
/// exact workload (db + tgds + semantics-relevant options) in
/// `checkpoint_dir`; resumes from the newest good generation, or starts
/// fresh when none is usable. Either way new round-boundary snapshots are
/// written to the directory (every options.checkpoint_every rounds), so
/// the run can itself be killed and resumed. The final instance is
/// bit-identical to an uninterrupted Chase(db, tgds, options) — at every
/// thread count and wherever the previous run was killed.
ChaseResult ResumeChase(const std::string& checkpoint_dir, const Instance& db,
                        const TgdSet& tgds, const ChaseOptions& options = {},
                        ResumeInfo* info = nullptr);

}  // namespace gqe

#endif  // GQE_CHASE_CHECKPOINT_H_
