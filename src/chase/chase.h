#ifndef GQE_CHASE_CHASE_H_
#define GQE_CHASE_CHASE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/atom.h"
#include "base/instance.h"
#include "tgd/tgd.h"

namespace gqe {

/// Options for the chase procedure (paper, Section 2).
struct ChaseOptions {
  /// Stop (incomplete) once the instance holds this many facts.
  size_t max_facts = 1000000;

  /// Build the chase only up to this level (Lemma A.1 levels: database
  /// facts have level 0; a fact created by a trigger has level
  /// 1 + max level of the matched body facts). Negative: unlimited.
  int max_level = -1;

  /// Restricted chase: skip a trigger whose head is already satisfied
  /// with the frontier mapped as the trigger prescribes. The paper's
  /// reference semantics is the *oblivious* chase (false).
  bool restricted = false;

  /// Semi-naive trigger discovery (delta-anchored); disable to rediscover
  /// every trigger each round (the naive engine — same output, used as an
  /// ablation baseline).
  bool semi_naive = true;
};

/// Result of a chase run.
struct ChaseResult {
  Instance instance;

  /// Lemma A.1 s-level of every fact (level-wise chase sequence).
  std::unordered_map<Atom, int, AtomHash> levels;

  /// True iff a fixpoint was reached: no unfired applicable trigger
  /// remains, hence instance |= Σ.
  bool complete = false;

  int max_level_built = 0;
  size_t triggers_fired = 0;

  /// chase^l: the sub-instance of facts with level <= l.
  Instance UpToLevel(int level) const;
};

/// Runs the (oblivious, level-wise) chase of `db` under `tgds`
/// (Section 2). With default options this terminates only when the chase
/// is finite (e.g. full or weakly-acyclic sets); use max_level/max_facts
/// to bound it otherwise.
ChaseResult Chase(const Instance& db, const TgdSet& tgds,
                  const ChaseOptions& options = {});

/// I |= σ: every homomorphism from the body extends to a homomorphism of
/// the head (Section 2, via q_ϕ(I) ⊆ q_ψ(I)).
bool Satisfies(const Instance& instance, const Tgd& tgd);
bool Satisfies(const Instance& instance, const TgdSet& tgds);

}  // namespace gqe

#endif  // GQE_CHASE_CHASE_H_
