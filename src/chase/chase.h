#ifndef GQE_CHASE_CHASE_H_
#define GQE_CHASE_CHASE_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/atom.h"
#include "base/governor.h"
#include "base/instance.h"
#include "query/substitution.h"
#include "tgd/tgd.h"
#include "verify/witness.h"

namespace gqe {

/// The complete engine state at a chase round boundary, sufficient to
/// continue the run and reproduce the bit-identical final instance a
/// straight-through run produces (same facts in the same insertion
/// order, same labelled-null ids, same levels) at every thread count.
/// Round boundaries are the only consistent snapshot points: rounds are
/// transactional (PR 2), so mid-round state never escapes.
struct ChaseCheckpointState {
  /// Value Term::NextNullId() held at the boundary; restored on resume
  /// so re-fired triggers allocate the same labelled nulls.
  uint32_t next_null_id = 0;

  /// Committed rounds so far — the checkpoint's generation number.
  uint64_t rounds_completed = 0;

  /// First fact index of the semi-naive delta frontier.
  uint64_t delta_start = 0;

  uint64_t triggers_fired = 0;
  int32_t max_level_built = 0;

  /// True iff this snapshot is a fixpoint (a saturated chase): loading
  /// it yields chase(D, Σ) with no further work.
  bool complete = false;

  /// Committed facts in insertion order, with their Lemma A.1 levels.
  std::vector<Atom> atoms;
  std::vector<int32_t> levels;

  /// Keys of fired triggers (tgd index + body-variable images), in
  /// firing order.
  std::vector<std::vector<uint32_t>> fired;

  /// When the run collects a derivation witness: the labelled-null ids
  /// each fired trigger invented (parallel to `fired`, in
  /// Tgd::ExistentialVariables() order), so a resumed run reproduces a
  /// bit-identical replayable derivation log. Empty when
  /// `witness_collected` is false.
  std::vector<std::vector<uint32_t>> fired_nulls;
  bool witness_collected = false;

  /// Discovered-but-unfired triggers carried to a later round (their
  /// level's turn has not come). Bindings are (variable bits, term
  /// bits), sorted, so equal states serialize to equal bytes.
  struct CarriedTrigger {
    uint32_t tgd_index = 0;
    int32_t level = 0;
    std::vector<std::pair<uint32_t, uint32_t>> bindings;
  };
  std::vector<CarriedTrigger> carried;
};

/// Receives round-boundary snapshots from a running chase. Implemented
/// by chase/checkpoint.h's DirectoryCheckpointSink (atomic tmp-file +
/// rename persistence); tests plug in in-memory sinks.
class ChaseCheckpointSink {
 public:
  virtual ~ChaseCheckpointSink() = default;

  /// Called with the committed boundary state every
  /// ChaseOptions::checkpoint_every rounds, and once more (`final_write`
  /// true) when the run stops — fixpoint, guard rail or budget. Work
  /// performed after the last delivered boundary is not covered: that is
  /// the time-lost-vs-granularity trade documented in EXPERIMENTS.md.
  virtual void Write(const ChaseCheckpointState& state, bool final_write) = 0;
};

/// One unit of trigger-discovery work: the sequential discovery loop,
/// split at its natural grain. anchor < 0 is the initial full pass over a
/// TGD's body; anchor >= 0 searches with body[anchor] bound onto each
/// fact of [delta_begin, delta_end) — a contiguous chunk of the delta
/// frontier. Units are created — and their outputs merged — in the exact
/// order the sequential loop visits the (tgd, anchor, fact) triples,
/// which is what makes both the parallel and the sharded chase
/// bit-identical to the sequential one.
struct ChaseDiscoveryUnit {
  size_t tgd_index = 0;
  int anchor = -1;
  size_t delta_begin = 0;
  size_t delta_end = 0;
};

/// Runs one discovery unit against a frozen instance, appending every
/// body homomorphism found to `out` in canonical (sequential) order.
/// Read-only on the instance; safe to run concurrently with other units
/// and in forked worker processes.
void RunChaseDiscoveryUnit(const ChaseDiscoveryUnit& unit, const TgdSet& tgds,
                           const Instance& instance, int hom_threads,
                           Governor* governor, std::vector<Substitution>* out);

/// The single-fact slice of an anchored unit: body[anchor] of TGD
/// `tgd_index` is bound onto fact `fact_index` only. Sharded workers use
/// this to emit per-fact candidate groups that the coordinator can
/// reassemble into the canonical per-unit order regardless of which shard
/// owned which fact.
void RunChaseDiscoveryAtFact(size_t tgd_index, int anchor, size_t fact_index,
                             const TgdSet& tgds, const Instance& instance,
                             Governor* governor,
                             std::vector<Substitution>* out);

/// Binds `anchor_atom`'s arguments against one fact (predicate +
/// argument terms), accumulating the variable bindings into `fixed`.
/// Returns false on any mismatch: wrong predicate, a ground argument
/// that differs, or two positions demanding different images for the
/// same variable. This is the exact binding step of
/// RunChaseDiscoveryAtFact, exposed so storage-shard workers can
/// classify and seed per-fact discovery on their fragments with
/// bit-identical semantics.
bool BindDiscoveryAnchor(const Atom& anchor_atom, PredicateId fact_predicate,
                         std::span<const Term> fact_args, Substitution* fixed);

/// Everything a discovery hook needs to produce one round's candidate
/// triggers: the frozen committed instance, the rule set, the round's
/// discovery units in canonical order and the delta frontier they cover.
struct ChaseDiscoveryRound {
  const Instance* instance = nullptr;
  const TgdSet* tgds = nullptr;
  const std::vector<ChaseDiscoveryUnit>* units = nullptr;
  size_t delta_start = 0;
  size_t delta_end = 0;
  /// Committed rounds before this one — the round's generation number.
  uint64_t round = 0;
  Governor* governor = nullptr;
};

/// Replaces the engine's local discovery phase (the shard coordinator's
/// seam). The hook must fill (*found)[u] with exactly the substitutions
/// RunChaseDiscoveryUnit((*round.units)[u], ...) produces, in the same
/// order — the engine's deterministic merge, level assignment, null
/// allocation and fire phase run unchanged on top, which is what makes a
/// distributed discovery bit-identical to the local one by construction.
/// Returning false means the round's candidates could not be produced
/// (e.g. an irrecoverable shard): the engine discards the round, trips
/// the governor with Status::kShardLost and stops at the last committed
/// boundary — from which a later resume can continue.
class ChaseDiscoveryHook {
 public:
  virtual ~ChaseDiscoveryHook() = default;
  virtual bool DiscoverRound(const ChaseDiscoveryRound& round,
                             std::vector<std::vector<Substitution>>* found) = 0;
};

/// Options for the chase procedure (paper, Section 2).
struct ChaseOptions {
  /// Resource limits (fact budget, search-node budget, deadline, cancel
  /// token). Replaces the old `max_facts` field: set
  /// `budget.max_facts` to bound materialization. Ignored when `governor`
  /// is set.
  ExecutionBudget budget;

  /// Optional shared governor (e.g. from an enclosing OMQ evaluation) so
  /// nested engines draw on one budget. When null the chase governs
  /// itself from `budget`.
  Governor* governor = nullptr;

  /// Build the chase only up to this level (Lemma A.1 levels: database
  /// facts have level 0; a fact created by a trigger has level
  /// 1 + max level of the matched body facts). Negative: unlimited.
  int max_level = -1;

  /// Restricted chase: skip a trigger whose head is already satisfied
  /// with the frontier mapped as the trigger prescribes. The paper's
  /// reference semantics is the *oblivious* chase (false).
  bool restricted = false;

  /// Semi-naive trigger discovery (delta-anchored); disable to rediscover
  /// every trigger each round (the naive engine — same output, used as an
  /// ablation baseline).
  bool semi_naive = true;

  /// Worker threads for trigger discovery. Each round, the delta-anchored
  /// discovery units (per TGD × per body-atom anchor) run on a pool;
  /// workers emit candidate triggers into per-unit buffers and a
  /// deterministic sequential merge dedupes, assigns levels, allocates
  /// labelled nulls in canonical order and fires heads. The result is
  /// bit-identical to the sequential chase (same facts in the same
  /// insertion order, same levels, same null ids) at every thread count.
  /// 1 (default) is the sequential code path; 0 means hardware
  /// concurrency.
  int threads = 1;

  /// When set, the engine delivers round-boundary state snapshots to
  /// this sink every `checkpoint_every` rounds plus a final one when the
  /// run stops; the sink owns persistence. Null disables checkpointing
  /// (no tracking overhead is paid).
  ChaseCheckpointSink* checkpoint_sink = nullptr;

  /// Rounds between snapshot deliveries (1 = every round boundary).
  /// Values < 1 behave as 1.
  int checkpoint_every = 1;

  /// When set, the engine delegates each round's trigger discovery to
  /// this hook (see ChaseDiscoveryHook) instead of running the units on
  /// its own pool — the seam the sharded multi-process chase
  /// (shard/shard_chase.h) plugs into. The merge/fire machinery is
  /// unaffected, so results stay bit-identical as long as the hook
  /// honors the per-unit order contract.
  ChaseDiscoveryHook* discovery_hook = nullptr;

  /// Collect a replayable derivation log (verify/witness.h) into
  /// ChaseResult::derivation. Oblivious chase only: the restricted
  /// chase's skipped-trigger semantics has no step-by-step replay, so
  /// the flag is ignored (witness stays uncollected) when `restricted`
  /// is set. Resuming from a snapshot that did not record null draws
  /// also leaves the witness uncollected — the prefix is unknown.
  bool collect_witness = false;
};

/// Per-round instrumentation of the chase engine, for parallel-efficiency
/// reporting (bench_chase --threads).
struct ChaseRoundStats {
  /// Discovery work units the round was split into (first round: one per
  /// TGD; later rounds: one per TGD × body-atom anchor with a non-empty
  /// delta).
  size_t work_units = 0;
  /// Candidate triggers emitted by the units, before deduplication.
  size_t candidates = 0;
  /// Triggers fired after the merge.
  size_t triggers_fired = 0;
  /// Wall-clock time of the (parallel) discovery phase.
  double discovery_ms = 0.0;
  /// Wall-clock time of the sequential merge + fire phase.
  double merge_ms = 0.0;
};

/// Result of a chase run.
struct ChaseResult {
  Instance instance;

  /// Lemma A.1 s-level of every fact (level-wise chase sequence).
  std::unordered_map<Atom, int, AtomHash> levels;

  /// True iff a fixpoint was reached: no unfired applicable trigger
  /// remains, hence instance |= Σ.
  bool complete = false;

  /// Why (and with how much work) the run ended. `outcome.status` is
  /// kCompleted for a fixpoint or a max_level stop (a requested bound,
  /// not a resource trip); any other status means a guard rail fired and
  /// `instance` is the last committed prefix. Chase rounds are
  /// transactional: a cancellation or deadline trip discards the partial
  /// round, so the committed prefix is identical at every thread count.
  Outcome outcome;

  int max_level_built = 0;
  size_t triggers_fired = 0;

  /// Threads the run actually used (after resolving threads == 0).
  size_t threads_used = 1;

  /// Committed rounds over the whole logical run (resumed runs continue
  /// the checkpoint's count, so this is also the generation number of
  /// the last consistent boundary).
  uint64_t rounds_completed = 0;

  /// One entry per chase round, in order.
  std::vector<ChaseRoundStats> round_stats;

  /// Replayable derivation log (ChaseOptions::collect_witness):
  /// re-firing its steps from the database reproduces `instance`
  /// bit-for-bit — VerifyDerivation (verify/verifier.h) is the
  /// independent checker. `derivation.collected` is false when
  /// collection was off, restricted, or resumed from a witness-less
  /// snapshot.
  DerivationWitness derivation;

  /// chase^l: the sub-instance of facts with level <= l.
  Instance UpToLevel(int level) const;
};

/// Runs the (oblivious, level-wise) chase of `db` under `tgds`
/// (Section 2). With default options this terminates only when the chase
/// is finite (e.g. full or weakly-acyclic sets); use max_level or the
/// options' budget (facts / deadline / cancel) to bound it otherwise.
ChaseResult Chase(const Instance& db, const TgdSet& tgds,
                  const ChaseOptions& options = {});

/// Continues a chase from a round-boundary checkpoint state (the
/// in-memory half of crash recovery; chase/checkpoint.h adds the disk
/// layer). Restores the instance, levels, fired-trigger set, carried
/// triggers, delta frontier and the labelled-null counter, then runs the
/// ordinary round loop: killed at any round and resumed, the final
/// instance is bit-identical to an uninterrupted run — at every thread
/// count. `tgds` must be the rule set the checkpointed run used.
ChaseResult ResumeChaseFromState(const ChaseCheckpointState& state,
                                 const TgdSet& tgds,
                                 const ChaseOptions& options = {});

/// I |= σ: every homomorphism from the body extends to a homomorphism of
/// the head (Section 2, via q_ϕ(I) ⊆ q_ψ(I)).
bool Satisfies(const Instance& instance, const Tgd& tgd);
bool Satisfies(const Instance& instance, const TgdSet& tgds);

}  // namespace gqe

#endif  // GQE_CHASE_CHASE_H_
