#ifndef GQE_CHASE_CHASE_H_
#define GQE_CHASE_CHASE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/atom.h"
#include "base/governor.h"
#include "base/instance.h"
#include "tgd/tgd.h"

namespace gqe {

/// Options for the chase procedure (paper, Section 2).
struct ChaseOptions {
  /// Resource limits (fact budget, search-node budget, deadline, cancel
  /// token). Replaces the old `max_facts` field: set
  /// `budget.max_facts` to bound materialization. Ignored when `governor`
  /// is set.
  ExecutionBudget budget;

  /// Optional shared governor (e.g. from an enclosing OMQ evaluation) so
  /// nested engines draw on one budget. When null the chase governs
  /// itself from `budget`.
  Governor* governor = nullptr;

  /// Build the chase only up to this level (Lemma A.1 levels: database
  /// facts have level 0; a fact created by a trigger has level
  /// 1 + max level of the matched body facts). Negative: unlimited.
  int max_level = -1;

  /// Restricted chase: skip a trigger whose head is already satisfied
  /// with the frontier mapped as the trigger prescribes. The paper's
  /// reference semantics is the *oblivious* chase (false).
  bool restricted = false;

  /// Semi-naive trigger discovery (delta-anchored); disable to rediscover
  /// every trigger each round (the naive engine — same output, used as an
  /// ablation baseline).
  bool semi_naive = true;

  /// Worker threads for trigger discovery. Each round, the delta-anchored
  /// discovery units (per TGD × per body-atom anchor) run on a pool;
  /// workers emit candidate triggers into per-unit buffers and a
  /// deterministic sequential merge dedupes, assigns levels, allocates
  /// labelled nulls in canonical order and fires heads. The result is
  /// bit-identical to the sequential chase (same facts in the same
  /// insertion order, same levels, same null ids) at every thread count.
  /// 1 (default) is the sequential code path; 0 means hardware
  /// concurrency.
  int threads = 1;
};

/// Per-round instrumentation of the chase engine, for parallel-efficiency
/// reporting (bench_chase --threads).
struct ChaseRoundStats {
  /// Discovery work units the round was split into (first round: one per
  /// TGD; later rounds: one per TGD × body-atom anchor with a non-empty
  /// delta).
  size_t work_units = 0;
  /// Candidate triggers emitted by the units, before deduplication.
  size_t candidates = 0;
  /// Triggers fired after the merge.
  size_t triggers_fired = 0;
  /// Wall-clock time of the (parallel) discovery phase.
  double discovery_ms = 0.0;
  /// Wall-clock time of the sequential merge + fire phase.
  double merge_ms = 0.0;
};

/// Result of a chase run.
struct ChaseResult {
  Instance instance;

  /// Lemma A.1 s-level of every fact (level-wise chase sequence).
  std::unordered_map<Atom, int, AtomHash> levels;

  /// True iff a fixpoint was reached: no unfired applicable trigger
  /// remains, hence instance |= Σ.
  bool complete = false;

  /// Why (and with how much work) the run ended. `outcome.status` is
  /// kCompleted for a fixpoint or a max_level stop (a requested bound,
  /// not a resource trip); any other status means a guard rail fired and
  /// `instance` is the last committed prefix. Chase rounds are
  /// transactional: a cancellation or deadline trip discards the partial
  /// round, so the committed prefix is identical at every thread count.
  Outcome outcome;

  int max_level_built = 0;
  size_t triggers_fired = 0;

  /// Threads the run actually used (after resolving threads == 0).
  size_t threads_used = 1;

  /// One entry per chase round, in order.
  std::vector<ChaseRoundStats> round_stats;

  /// chase^l: the sub-instance of facts with level <= l.
  Instance UpToLevel(int level) const;
};

/// Runs the (oblivious, level-wise) chase of `db` under `tgds`
/// (Section 2). With default options this terminates only when the chase
/// is finite (e.g. full or weakly-acyclic sets); use max_level or the
/// options' budget (facts / deadline / cancel) to bound it otherwise.
ChaseResult Chase(const Instance& db, const TgdSet& tgds,
                  const ChaseOptions& options = {});

/// I |= σ: every homomorphism from the body extends to a homomorphism of
/// the head (Section 2, via q_ϕ(I) ⊆ q_ψ(I)).
bool Satisfies(const Instance& instance, const Tgd& tgd);
bool Satisfies(const Instance& instance, const TgdSet& tgds);

}  // namespace gqe

#endif  // GQE_CHASE_CHASE_H_
