#include "chase/chase.h"

#include <algorithm>
#include <unordered_set>

#include "query/homomorphism.h"
#include "query/substitution.h"

namespace gqe {

namespace {

struct TriggerKeyHash {
  size_t operator()(const std::vector<uint32_t>& key) const {
    size_t h = 0x9e3779b97f4a7c15ull;
    for (uint32_t v : key) h ^= v + 0x9e3779b9u + (h << 6) + (h >> 2);
    return h;
  }
};

/// Identity of an oblivious-chase trigger: the TGD index plus the images
/// of its body variables (paper: the pair (σ, (c̄, c̄'))).
std::vector<uint32_t> TriggerKey(size_t tgd_index,
                                 const std::vector<Term>& body_vars,
                                 const Substitution& sub) {
  std::vector<uint32_t> key;
  key.reserve(body_vars.size() + 1);
  key.push_back(static_cast<uint32_t>(tgd_index));
  for (Term v : body_vars) key.push_back(sub.Apply(v).bits());
  return key;
}

/// True if the head of `tgd` is satisfied in `instance` with the frontier
/// fixed as in `sub`.
bool HeadSatisfied(const Instance& instance, const Tgd& tgd,
                   const Substitution& sub) {
  HomOptions options;
  for (Term v : tgd.Frontier()) options.fixed.Set(v, sub.Apply(v));
  HomomorphismSearch search(tgd.head(), instance, options);
  return search.Exists();
}

}  // namespace

ChaseResult Chase(const Instance& db, const TgdSet& tgds,
                  const ChaseOptions& options) {
  ChaseResult result;
  result.instance.InsertAll(db);
  for (const Atom& atom : db.atoms()) result.levels[atom] = 0;

  std::unordered_set<std::vector<uint32_t>, TriggerKeyHash> fired;
  std::vector<std::vector<Term>> body_vars(tgds.size());
  std::vector<std::vector<Term>> existentials(tgds.size());
  for (size_t i = 0; i < tgds.size(); ++i) {
    body_vars[i] = tgds[i].BodyVariables();
    existentials[i] = tgds[i].ExistentialVariables();
  }

  struct PendingTrigger {
    size_t tgd_index;
    Substitution sub;
    int level;
  };

  // Semi-naive trigger discovery: after the first full pass, only search
  // for homomorphisms in which at least one body atom maps onto a fact
  // created since the previous round (the delta frontier).
  size_t delta_start = 0;  // first fact index of the current delta
  std::vector<PendingTrigger> carried;  // unfired triggers above min level

  std::unordered_set<std::vector<uint32_t>, TriggerKeyHash> pending_keys;

  for (;;) {
    if (!options.semi_naive) {
      // Naive mode: rediscover everything each round.
      carried.clear();
      pending_keys.clear();
      delta_start = 0;
    }
    std::vector<PendingTrigger> pending = std::move(carried);
    carried.clear();
    auto consider = [&](size_t t, const Substitution& sub) {
      std::vector<uint32_t> key = TriggerKey(t, body_vars[t], sub);
      if (fired.count(key) > 0) return;
      if (!pending_keys.insert(key).second) return;
      int level = 0;
      for (const Atom& body_atom : tgds[t].body()) {
        Atom fact = sub.Apply(body_atom);
        auto it = result.levels.find(fact);
        if (it != result.levels.end()) level = std::max(level, it->second);
      }
      pending.push_back({t, sub, level});
    };
    const size_t delta_end = result.instance.size();
    for (size_t t = 0; t < tgds.size(); ++t) {
      if (delta_start == 0) {
        // Initial full pass.
        HomomorphismSearch search(tgds[t].body(), result.instance);
        search.ForEach([&](const Substitution& sub) {
          consider(t, sub);
          return true;
        });
        continue;
      }
      // Anchor one body atom at each delta fact.
      const auto& body = tgds[t].body();
      if (body.empty()) continue;  // fired during the full pass
      for (size_t anchor = 0; anchor < body.size(); ++anchor) {
        for (size_t f = delta_start; f < delta_end; ++f) {
          const Atom& fact = result.instance.atom(f);
          if (fact.predicate() != body[anchor].predicate()) continue;
          // Bind the anchor atom's variables against this fact.
          HomOptions options;
          bool ok = true;
          for (int pos = 0; pos < fact.arity() && ok; ++pos) {
            Term t_pat = body[anchor].args()[pos];
            Term image = fact.args()[pos];
            if (t_pat.IsGround()) {
              ok = (t_pat == image);
            } else if (options.fixed.Has(t_pat)) {
              ok = (options.fixed.Apply(t_pat) == image);
            } else {
              options.fixed.Set(t_pat, image);
            }
          }
          if (!ok) continue;
          HomomorphismSearch search(body, result.instance, options);
          search.ForEach([&](const Substitution& sub) {
            consider(t, sub);
            return true;
          });
        }
      }
    }
    delta_start = delta_end;
    if (pending.empty()) {
      result.complete = true;
      break;
    }
    // Level-wise: fire only the triggers at the minimum pending level.
    int min_level = pending.front().level;
    for (const auto& trigger : pending) {
      min_level = std::min(min_level, trigger.level);
    }
    if (options.max_level >= 0 && min_level >= options.max_level) {
      // Every remaining trigger would create facts beyond the level
      // budget.
      result.complete = false;
      break;
    }
    bool budget_hit = false;
    for (const auto& trigger : pending) {
      if (trigger.level != min_level) {
        // Keep for a later round (its level's turn has not come).
        carried.push_back(trigger);
        continue;
      }
      std::vector<uint32_t> key =
          TriggerKey(trigger.tgd_index, body_vars[trigger.tgd_index],
                     trigger.sub);
      pending_keys.erase(key);
      if (!fired.insert(key).second) continue;
      const Tgd& tgd = tgds[trigger.tgd_index];
      if (options.restricted &&
          HeadSatisfied(result.instance, tgd, trigger.sub)) {
        continue;
      }
      ++result.triggers_fired;
      Substitution extended = trigger.sub;
      for (Term z : existentials[trigger.tgd_index]) {
        extended.Set(z, Term::FreshNull());
      }
      for (const Atom& head_atom : tgd.head()) {
        Atom fact = extended.Apply(head_atom);
        if (result.instance.Insert(fact)) {
          result.levels[fact] = trigger.level + 1;
          result.max_level_built =
              std::max(result.max_level_built, trigger.level + 1);
        }
      }
      if (result.instance.size() >= options.max_facts) {
        budget_hit = true;
        break;
      }
    }
    if (budget_hit) {
      result.complete = false;
      break;
    }
  }
  return result;
}

Instance ChaseResult::UpToLevel(int level) const {
  Instance out;
  for (const Atom& atom : instance.atoms()) {
    auto it = levels.find(atom);
    if (it != levels.end() && it->second <= level) out.Insert(atom);
  }
  return out;
}

bool Satisfies(const Instance& instance, const Tgd& tgd) {
  bool satisfied = true;
  HomomorphismSearch search(tgd.body(), instance);
  search.ForEach([&](const Substitution& sub) {
    if (!HeadSatisfied(instance, tgd, sub)) {
      satisfied = false;
      return false;
    }
    return true;
  });
  return satisfied;
}

bool Satisfies(const Instance& instance, const TgdSet& tgds) {
  return std::all_of(tgds.begin(), tgds.end(), [&](const Tgd& tgd) {
    return Satisfies(instance, tgd);
  });
}

}  // namespace gqe
