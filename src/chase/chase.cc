#include "chase/chase.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <span>
#include <utility>

#include "base/flat_table.h"
#include "base/thread_pool.h"
#include "chase/trigger_set.h"
#include "query/homomorphism.h"
#include "query/substitution.h"

namespace gqe {

namespace {

/// Identity of an oblivious-chase trigger: the TGD index plus the images
/// of its body variables (paper: the pair (σ, (c̄, c̄'))).
std::vector<uint32_t> TriggerKey(size_t tgd_index,
                                 const std::vector<Term>& body_vars,
                                 const Substitution& sub) {
  std::vector<uint32_t> key;
  key.reserve(body_vars.size() + 1);
  key.push_back(static_cast<uint32_t>(tgd_index));
  for (Term v : body_vars) key.push_back(sub.Apply(v).bits());
  return key;
}

/// True if the head of `tgd` is satisfied in `instance` with the frontier
/// fixed as in `sub`.
bool HeadSatisfied(const Instance& instance, const Tgd& tgd,
                   const Substitution& sub, Governor* governor = nullptr) {
  HomOptions options;
  options.governor = governor;
  for (Term v : tgd.Frontier()) options.fixed.Set(v, sub.Apply(v));
  HomomorphismSearch search(tgd.head(), instance, options);
  return search.Exists();
}

/// Rebuilds a replayable derivation log from the fired-trigger keys and
/// the parallel null-draw log: key[0] is the TGD index, key[1..] the
/// body-variable images (term bits), nulls[i] the labelled nulls step i
/// invented. The digest fields are only meaningful for an exact log.
void BuildDerivationWitness(const std::vector<std::vector<uint32_t>>& keys,
                            const std::vector<std::vector<uint32_t>>& nulls,
                            bool exact, bool complete, ChaseResult* result) {
  DerivationWitness& witness = result->derivation;
  witness.collected = true;
  witness.complete = complete;
  witness.replay_exact = exact;
  witness.steps.clear();
  witness.steps.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    DerivationStep step;
    if (!keys[i].empty()) {
      step.tgd_index = keys[i][0];
      step.body_images.reserve(keys[i].size() - 1);
      for (size_t j = 1; j < keys[i].size(); ++j) {
        step.body_images.push_back(Term::FromBits(keys[i][j]));
      }
    }
    if (i < nulls.size()) {
      step.existential_images.reserve(nulls[i].size());
      for (uint32_t id : nulls[i]) {
        step.existential_images.push_back(Term::Null(id));
      }
    }
    witness.steps.push_back(std::move(step));
  }
  witness.final_facts = result->instance.size();
  witness.instance_crc = exact ? InstanceTextCrc(result->instance) : 0;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Shared implementation of Chase and ResumeChaseFromState: exactly one
/// of `db` (fresh run) / `resume` (continue from a round boundary) is
/// non-null.
ChaseResult ChaseImpl(const Instance* db, const ChaseCheckpointState* resume,
                      const TgdSet& tgds, const ChaseOptions& options) {
  ChaseResult result;
  GovernorScope scope(options.governor, options.budget);
  Governor* governor = scope.get();

  const size_t threads = ThreadPool::ResolveThreads(options.threads);
  result.threads_used = threads;
  ThreadPool pool(threads);

  // Derivation-witness collection (oblivious chase only: the restricted
  // chase's skipped triggers have no replayable step semantics). The
  // null-draw log runs parallel to the fired-key log below.
  bool collecting = options.collect_witness && !options.restricted;
  bool witness_exact = true;

  TriggerKeySet fired;
  std::vector<std::vector<Term>> body_vars(tgds.size());
  std::vector<std::vector<Term>> existentials(tgds.size());
  for (size_t i = 0; i < tgds.size(); ++i) {
    body_vars[i] = tgds[i].BodyVariables();
    existentials[i] = tgds[i].ExistentialVariables();
  }

  struct PendingTrigger {
    size_t tgd_index;
    Substitution sub;
    int level;
  };

  // Semi-naive trigger discovery: after the first full pass, only search
  // for homomorphisms in which at least one body atom maps onto a fact
  // created since the previous round (the delta frontier).
  size_t delta_start = 0;  // first fact index of the current delta
  std::vector<PendingTrigger> carried;  // unfired triggers above min level

  TriggerKeySet pending_keys;

  // Lemma A.1 level of fact i, parallel to the instance's insertion
  // order. The fast-path replacement for the atom-keyed `result.levels`
  // map, which is rebuilt from this vector once at the end of the run.
  std::vector<int32_t> level_by_index;
  auto publish_levels = [&]() {
    result.levels.clear();
    result.levels.reserve(level_by_index.size());
    for (size_t i = 0; i < level_by_index.size(); ++i) {
      result.levels[result.instance.atom(i)] = level_by_index[i];
    }
  };

  if (resume != nullptr) {
    // Rebuild the round-boundary state. Insertion order, levels and the
    // null counter come straight from the snapshot, so the continued run
    // interleaves with the committed prefix exactly as the original
    // would have.
    Term::SetNextNullId(resume->next_null_id);
    result.instance.Reserve(resume->atoms.size(), resume->atoms.size() * 2);
    level_by_index.reserve(resume->atoms.size());
    for (size_t i = 0; i < resume->atoms.size(); ++i) {
      if (result.instance.Insert(resume->atoms[i])) {
        level_by_index.push_back(
            i < resume->levels.size() ? resume->levels[i] : 0);
      }
    }
    // The committed prefix counts toward the fact budget just as the
    // original run charged it, so a resumed run sees the same rails.
    governor->ChargeFacts(resume->atoms.size());
    result.rounds_completed = resume->rounds_completed;
    result.triggers_fired = resume->triggers_fired;
    result.max_level_built = resume->max_level_built;
    delta_start = static_cast<size_t>(resume->delta_start);
    fired.reserve(resume->fired.size());
    for (const auto& key : resume->fired) fired.insert(key);
    for (const ChaseCheckpointState::CarriedTrigger& c : resume->carried) {
      PendingTrigger trigger;
      trigger.tgd_index = c.tgd_index;
      trigger.level = c.level;
      for (const auto& [from, to] : c.bindings) {
        trigger.sub.Set(Term::FromBits(from), Term::FromBits(to));
      }
      if (trigger.tgd_index < tgds.size()) {
        pending_keys.insert(TriggerKey(trigger.tgd_index,
                                       body_vars[trigger.tgd_index],
                                       trigger.sub));
        carried.push_back(std::move(trigger));
      }
    }
  } else {
    result.instance.InsertAll(*db);
    level_by_index.assign(result.instance.size(), 0);
    // Copying the input counts toward the fact budget, so nested engines
    // sharing a governor cannot multiply caps by re-copying.
    governor->ChargeFacts(db->size());
  }

  if (resume != nullptr && resume->complete) {
    // A saturated snapshot: the restored instance is chase(D, Σ). When
    // it recorded null draws the derivation log is rebuilt from it, so
    // a resumed-from-fixpoint run still ships a checkable witness.
    result.complete = true;
    if (collecting && resume->witness_collected &&
        resume->fired_nulls.size() == resume->fired.size()) {
      BuildDerivationWitness(resume->fired, resume->fired_nulls,
                             /*exact=*/true, /*complete=*/true, &result);
    }
    publish_levels();
    result.outcome = governor->MakeOutcome();
    return result;
  }

  // Checkpoint tracking: `boundary` mirrors the state at the most recent
  // round boundary, maintained incrementally (append-only facts and
  // fired keys; carried is replaced). A guard-rail trip mid-round leaves
  // `boundary` untouched, so the final snapshot delivered on a trip is
  // always the last *consistent* state — rounds stay transactional on
  // disk just as they are in memory.
  ChaseCheckpointSink* sink = options.checkpoint_sink;
  const bool tracking = sink != nullptr;
  const uint64_t checkpoint_every =
      options.checkpoint_every < 1
          ? 1
          : static_cast<uint64_t>(options.checkpoint_every);
  ChaseCheckpointState boundary;
  // Fired keys in firing order (tracking or witness collection) and,
  // when collecting, the parallel per-step null draws.
  std::vector<std::vector<uint32_t>> fired_log;
  std::vector<std::vector<uint32_t>> null_log;
  // Generation already delivered to the sink (the resumed-from state is
  // durable by definition).
  uint64_t delivered = resume != nullptr ? resume->rounds_completed
                                         : ~static_cast<uint64_t>(0);
  if (resume != nullptr) {
    if (collecting) {
      if (resume->witness_collected &&
          resume->fired_nulls.size() == resume->fired.size()) {
        null_log = resume->fired_nulls;
      } else if (!resume->fired.empty()) {
        // The committed prefix never recorded its null draws: the log
        // cannot be reconstructed, so the witness stays uncollected.
        collecting = false;
      }
    }
    if (tracking) boundary = *resume;
    if (tracking || collecting) fired_log = resume->fired;
  }
  auto sync_boundary = [&]() {
    for (size_t i = boundary.atoms.size(); i < result.instance.size(); ++i) {
      boundary.atoms.push_back(result.instance.atom(i));
      boundary.levels.push_back(level_by_index[i]);
    }
    for (size_t i = boundary.fired.size(); i < fired_log.size(); ++i) {
      boundary.fired.push_back(fired_log[i]);
    }
    if (collecting) {
      for (size_t i = boundary.fired_nulls.size(); i < null_log.size(); ++i) {
        boundary.fired_nulls.push_back(null_log[i]);
      }
    }
    boundary.witness_collected = collecting;
    boundary.carried.clear();
    for (const PendingTrigger& trigger : carried) {
      ChaseCheckpointState::CarriedTrigger c;
      c.tgd_index = static_cast<uint32_t>(trigger.tgd_index);
      c.level = trigger.level;
      for (const auto& [from, to] : trigger.sub.entries()) {
        c.bindings.emplace_back(from.bits(), to.bits());
      }
      std::sort(c.bindings.begin(), c.bindings.end());
      boundary.carried.push_back(std::move(c));
    }
    boundary.delta_start = delta_start;
    boundary.rounds_completed = result.rounds_completed;
    boundary.triggers_fired = result.triggers_fired;
    boundary.max_level_built = result.max_level_built;
    boundary.next_null_id = Term::NextNullId();
    boundary.complete = result.complete;
  };
  // Delivers the last consistent boundary once when the run ends.
  auto final_checkpoint = [&]() {
    if (!tracking) return;
    if (delivered == boundary.rounds_completed && !boundary.complete) return;
    sink->Write(boundary, /*final_write=*/true);
    delivered = boundary.rounds_completed;
  };

  for (;;) {
    if (tracking) {
      sync_boundary();
      if (result.rounds_completed % checkpoint_every == 0 &&
          delivered != result.rounds_completed) {
        sink->Write(boundary, /*final_write=*/false);
        delivered = result.rounds_completed;
      }
    }
    // Round-boundary checkpoint: probes the deadline, cancellation and the
    // injector. One checkpoint per round, deterministically placed.
    if (governor->Check() != Status::kCompleted) {
      result.complete = false;
      final_checkpoint();
      break;
    }
    if (!options.semi_naive) {
      // Naive mode: rediscover everything each round.
      carried.clear();
      pending_keys.clear();
      delta_start = 0;
    }
    std::vector<PendingTrigger> pending = std::move(carried);
    carried.clear();
    std::vector<Term> image_scratch;
    auto consider = [&](size_t t, const Substitution& sub) {
      std::vector<uint32_t> key = TriggerKey(t, body_vars[t], sub);
      if (fired.contains(key)) return;
      if (!pending_keys.insert(key)) return;
      int level = 0;
      for (const Atom& body_atom : tgds[t].body()) {
        // Columnar level lookup: apply the substitution into a scratch
        // argument run and probe the fact store directly — no Atom (and
        // no heap vector) is materialized per body atom.
        image_scratch.clear();
        for (Term a : body_atom.args()) image_scratch.push_back(sub.Apply(a));
        const int64_t index = result.instance.store().Find(
            body_atom.predicate(), image_scratch.data(),
            static_cast<uint32_t>(image_scratch.size()));
        if (index >= 0) level = std::max(level, level_by_index[index]);
      }
      pending.push_back({t, sub, level});
    };
    const size_t delta_end = result.instance.size();

    // Discovery units in the order the sequential loop visits them. Large
    // deltas are chunked so a round with few TGDs still spreads across
    // the pool; chunk boundaries never affect the merge order (chunks of
    // one TGD × anchor pair are merged in ascending fact order).
    const size_t delta_size = delta_end - delta_start;
    const size_t chunk =
        std::max<size_t>(64, (delta_size + 4 * threads - 1) /
                                 std::max<size_t>(1, 4 * threads));
    std::vector<ChaseDiscoveryUnit> units;
    for (size_t t = 0; t < tgds.size(); ++t) {
      if (delta_start == 0) {
        units.push_back({t, -1, 0, 0});
        continue;
      }
      const auto& body = tgds[t].body();
      if (body.empty()) continue;  // fired during the full pass
      for (size_t anchor = 0; anchor < body.size(); ++anchor) {
        for (size_t begin = delta_start; begin < delta_end; begin += chunk) {
          units.push_back({t, static_cast<int>(anchor), begin,
                           std::min(begin + chunk, delta_end)});
        }
      }
    }

    ChaseRoundStats stats;
    stats.work_units = units.size();
    auto discovery_start = std::chrono::steady_clock::now();
    // Workers only read the (frozen) instance and write their own unit
    // buffer; all shared-state updates happen in the merge below.
#ifndef NDEBUG
    // Discovery workers hold spans into the columnar Term column; any
    // insert or index rehash while they run would dangle those spans.
    const size_t frozen_facts = result.instance.size();
    const uint64_t frozen_rehashes = result.instance.IndexRehashes();
#endif
    std::vector<std::vector<Substitution>> found(units.size());
    if (options.discovery_hook != nullptr) {
      // Distributed discovery: the hook owns this round's units (the
      // sharded chase's coordinator). Its order contract — (*found)[u]
      // holds exactly what RunChaseDiscoveryUnit(units[u]) would emit —
      // keeps the merge below canonical.
      ChaseDiscoveryRound round_ctx;
      round_ctx.instance = &result.instance;
      round_ctx.tgds = &tgds;
      round_ctx.units = &units;
      round_ctx.delta_start = delta_start;
      round_ctx.delta_end = delta_end;
      round_ctx.round = result.rounds_completed;
      round_ctx.governor = governor;
      if (!options.discovery_hook->DiscoverRound(round_ctx, &found)) {
        // The round's candidates could not be produced (an irrecoverable
        // shard): discard the round and stop at the last committed
        // boundary. Trip is sticky, so an earlier deadline/cancel cause
        // is preserved.
        governor->Trip(Status::kShardLost);
        found.assign(units.size(), {});
      }
      found.resize(units.size());
    } else if (delta_start == 0) {
      // First round: one full-pass unit per TGD, each internally
      // parallelized through the homomorphism engine (keeps the pool
      // saturated even for single-rule programs).
      for (size_t u = 0; u < units.size(); ++u) {
        RunChaseDiscoveryUnit(units[u], tgds, result.instance,
                              static_cast<int>(threads), governor, &found[u]);
      }
    } else {
      pool.ParallelFor(units.size(), [&](size_t u) {
        RunChaseDiscoveryUnit(units[u], tgds, result.instance,
                              /*hom_threads=*/1, governor, &found[u]);
      });
    }
#ifndef NDEBUG
    assert(result.instance.size() == frozen_facts &&
           result.instance.IndexRehashes() == frozen_rehashes &&
           "instance mutated during discovery: worker spans dangled");
#endif
    stats.discovery_ms = MsSince(discovery_start);

    // Deterministic sequential merge: visiting units (and candidates
    // within a unit) in canonical order reproduces the pending list —
    // and hence null allocation and fact insertion order — of the
    // sequential engine exactly.
    auto merge_start = std::chrono::steady_clock::now();
    for (size_t u = 0; u < units.size(); ++u) {
      stats.candidates += found[u].size();
      for (const Substitution& sub : found[u]) {
        consider(units[u].tgd_index, sub);
      }
    }
    found.clear();

    delta_start = delta_end;
    // A trip during discovery leaves an incomplete pending list; discard
    // the round rather than fire from it.
    if (governor->Check() != Status::kCompleted) {
      stats.merge_ms = MsSince(merge_start);
      result.round_stats.push_back(stats);
      result.complete = false;
      final_checkpoint();
      break;
    }
    if (pending.empty()) {
      stats.merge_ms = MsSince(merge_start);
      result.round_stats.push_back(stats);
      result.complete = true;
      if (tracking) {
        // Deliver the fixpoint as a *complete* snapshot: loading it
        // yields the saturated chase with no further work (OMQ
        // evaluation resumes from it instead of re-chasing).
        sync_boundary();
        final_checkpoint();
      }
      break;
    }
    // Level-wise: fire only the triggers at the minimum pending level.
    int min_level = pending.front().level;
    for (const auto& trigger : pending) {
      min_level = std::min(min_level, trigger.level);
    }
    if (options.max_level >= 0 && min_level >= options.max_level) {
      // Every remaining trigger would create facts beyond the level
      // budget.
      stats.merge_ms = MsSince(merge_start);
      result.round_stats.push_back(stats);
      result.complete = false;
      final_checkpoint();
      break;
    }
    // Fire phase (sequential, deterministic). Insertions are staged and
    // committed at the round boundary: a cancellation / deadline /
    // injected trip detected at a per-trigger checkpoint discards the
    // partial round, so the committed prefix is identical at every thread
    // count. A fact-budget trip instead commits the staged prefix (the
    // budget gates every insertion — a run never holds more than
    // budget.max_facts facts unless the input database already does, and
    // the sequential fire order makes the kept prefix deterministic too).
    // The restricted chase flushes after each trigger instead of at the
    // round boundary: head-satisfaction checks must see the facts fired
    // earlier in the same round, which is the paper-exact restricted
    // semantics.
    bool budget_hit = false;
    Status abort_status = Status::kCompleted;
    std::vector<std::pair<Atom, int>> staged;
    FlatSet<Atom, AtomHash> staged_set;
    size_t round_fired = 0;
    // An aborted (discarded) round truncates the witness logs back here
    // so the derivation log only ever describes committed facts.
    const size_t round_log_start = fired_log.size();
    auto commit_staged = [&]() {
      for (auto& [fact, level] : staged) {
        if (result.instance.Insert(fact)) level_by_index.push_back(level);
        result.max_level_built = std::max(result.max_level_built, level);
      }
      staged.clear();
      staged_set.clear();
    };
    for (const auto& trigger : pending) {
      if (trigger.level != min_level) {
        // Keep for a later round (its level's turn has not come).
        carried.push_back(trigger);
        continue;
      }
      const Status at_trigger = governor->Check();
      if (at_trigger != Status::kCompleted) {
        abort_status = at_trigger;
        break;
      }
      std::vector<uint32_t> key =
          TriggerKey(trigger.tgd_index, body_vars[trigger.tgd_index],
                     trigger.sub);
      pending_keys.erase(key);
      if (!fired.insert(key)) continue;
      if (tracking || collecting) fired_log.push_back(key);
      const Tgd& tgd = tgds[trigger.tgd_index];
      if (options.restricted &&
          HeadSatisfied(result.instance, tgd, trigger.sub, governor)) {
        continue;
      }
      ++round_fired;
      Substitution extended = trigger.sub;
      std::vector<uint32_t> drawn;
      for (Term z : existentials[trigger.tgd_index]) {
        Term fresh = Term::FreshNull();
        if (collecting) drawn.push_back(fresh.id());
        extended.Set(z, fresh);
      }
      if (collecting) null_log.push_back(std::move(drawn));
      for (const Atom& head_atom : tgd.head()) {
        Atom fact = extended.Apply(head_atom);
        if (result.instance.Contains(fact) || staged_set.count(fact) > 0) {
          continue;
        }
        if (governor->ChargeFacts(1) != Status::kCompleted) {
          budget_hit = true;
          break;
        }
        staged.push_back({fact, trigger.level + 1});
        staged_set.insert(fact);
      }
      if (options.restricted) commit_staged();
      if (budget_hit) break;
    }
    if (abort_status != Status::kCompleted) {
      // Discard the staged partial round (already-flushed restricted-mode
      // triggers stay; restricted rounds are per-trigger transactional).
      staged.clear();
      staged_set.clear();
      if (collecting) {
        fired_log.resize(round_log_start);
        null_log.resize(round_log_start);
      }
      if (options.restricted) {
        result.triggers_fired += round_fired;
        stats.triggers_fired = round_fired;
      }
      stats.merge_ms = MsSince(merge_start);
      result.round_stats.push_back(stats);
      result.complete = false;
      final_checkpoint();
      break;
    }
    commit_staged();
    result.triggers_fired += round_fired;
    stats.triggers_fired = round_fired;
    stats.merge_ms = MsSince(merge_start);
    result.round_stats.push_back(stats);
    if (budget_hit) {
      // The staged prefix is committed in memory but the round is
      // partial: the durable state stays at the previous boundary, so a
      // resume with a larger budget replays and completes the round.
      // The last logged step's head facts are only partially committed,
      // so the derivation log is sound but no longer exact.
      witness_exact = false;
      result.complete = false;
      final_checkpoint();
      break;
    }
    ++result.rounds_completed;
  }
  publish_levels();
  if (collecting) {
    BuildDerivationWitness(fired_log, null_log, witness_exact,
                           result.complete, &result);
  }
  result.outcome = governor->MakeOutcome();
  return result;
}

}  // namespace

bool BindDiscoveryAnchor(const Atom& anchor_atom, PredicateId fact_predicate,
                         std::span<const Term> fact_args,
                         Substitution* fixed) {
  if (fact_predicate != anchor_atom.predicate()) return false;
  for (size_t pos = 0; pos < fact_args.size(); ++pos) {
    Term t_pat = anchor_atom.args()[pos];
    Term image = fact_args[pos];
    if (t_pat.IsGround()) {
      if (!(t_pat == image)) return false;
    } else if (fixed->Has(t_pat)) {
      if (!(fixed->Apply(t_pat) == image)) return false;
    } else {
      fixed->Set(t_pat, image);
    }
  }
  return true;
}

void RunChaseDiscoveryAtFact(size_t tgd_index, int anchor, size_t fact_index,
                             const TgdSet& tgds, const Instance& instance,
                             Governor* governor,
                             std::vector<Substitution>* out) {
  if (governor->Tripped()) return;
  const auto& body = tgds[tgd_index].body();
  const Atom& anchor_atom = body[anchor];
  const uint32_t fi = static_cast<uint32_t>(fact_index);
  // Bind the anchor atom's variables against this fact.
  HomOptions options;
  if (!BindDiscoveryAnchor(anchor_atom, instance.predicate_of(fi),
                           instance.args_of(fi), &options.fixed)) {
    return;
  }
  options.governor = governor;
  HomomorphismSearch search(body, instance, options);
  search.ForEach([&](const Substitution& sub) {
    out->push_back(sub);
    return true;
  });
}

void RunChaseDiscoveryUnit(const ChaseDiscoveryUnit& unit, const TgdSet& tgds,
                           const Instance& instance, int hom_threads,
                           Governor* governor, std::vector<Substitution>* out) {
  if (governor->Tripped()) return;
  if (unit.anchor < 0) {
    // Initial full pass. FindAll's parallel path preserves sequential
    // enumeration order, so sharding here keeps the merge canonical.
    const auto& body = tgds[unit.tgd_index].body();
    HomOptions options;
    options.threads = hom_threads;
    options.governor = governor;
    HomomorphismSearch search(body, instance, options);
    *out = search.FindAll();
    return;
  }
  // Anchor one body atom at each fact of this unit's delta chunk. The
  // predicate filter and binding scan run over the columnar store — a
  // sequential sweep of two flat columns.
  for (size_t f = unit.delta_begin; f < unit.delta_end; ++f) {
    if (governor->Tripped()) return;
    RunChaseDiscoveryAtFact(unit.tgd_index, unit.anchor, f, tgds, instance,
                            governor, out);
  }
}

ChaseResult Chase(const Instance& db, const TgdSet& tgds,
                  const ChaseOptions& options) {
  return ChaseImpl(&db, nullptr, tgds, options);
}

ChaseResult ResumeChaseFromState(const ChaseCheckpointState& state,
                                 const TgdSet& tgds,
                                 const ChaseOptions& options) {
  return ChaseImpl(nullptr, &state, tgds, options);
}

Instance ChaseResult::UpToLevel(int level) const {
  Instance out;
  for (const Atom& atom : instance.atoms()) {
    auto it = levels.find(atom);
    if (it != levels.end() && it->second <= level) out.Insert(atom);
  }
  return out;
}

bool Satisfies(const Instance& instance, const Tgd& tgd) {
  bool satisfied = true;
  HomomorphismSearch search(tgd.body(), instance);
  search.ForEach([&](const Substitution& sub) {
    if (!HeadSatisfied(instance, tgd, sub)) {
      satisfied = false;
      return false;
    }
    return true;
  });
  return satisfied;
}

bool Satisfies(const Instance& instance, const TgdSet& tgds) {
  return std::all_of(tgds.begin(), tgds.end(), [&](const Tgd& tgd) {
    return Satisfies(instance, tgd);
  });
}

}  // namespace gqe
