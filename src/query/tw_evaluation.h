#ifndef GQE_QUERY_TW_EVALUATION_H_
#define GQE_QUERY_TW_EVALUATION_H_

#include <vector>

#include "base/governor.h"
#include "base/instance.h"
#include "query/cq.h"
#include "verify/witness.h"

namespace gqe {

/// Decides c̄ ∈ q(D) by the bounded-treewidth dynamic program of
/// Proposition 2.1 [Chekuri–Rajaraman]: substitute the candidate answer,
/// compute a tree decomposition of the residual query's Gaifman graph,
/// enumerate the satisfying bag assignments (O(‖D‖^{w+1}) per bag) and
/// semijoin them up the tree. Sound and complete for every CQ; runs in
/// time O(‖D‖^{w+1}·‖q‖) where w is the width of the decomposition found.
/// The optional shared `governor` bounds the decomposition search and the
/// per-bag homomorphism enumeration; a tripped run returns false
/// conservatively (check the governor's status before trusting a
/// negative answer).
bool HoldsCqTreeDp(const CQ& cq, const Instance& db,
                   const std::vector<Term>& answer,
                   Governor* governor = nullptr);

bool HoldsUcqTreeDp(const UCQ& ucq, const Instance& db,
                    const std::vector<Term>& answer,
                    Governor* governor = nullptr);

/// Witness-extracting variants: on a positive answer, `witness` receives
/// a full homomorphism assignment stitched top-down out of the DP tables
/// (each bag picks a solution tuple consistent with its parent's pick;
/// the decomposition's connectedness property makes the union a single
/// homomorphism). The certificate is checkable by VerifyHomomorphism
/// with no reference to the decomposition that produced it.
bool HoldsCqTreeDpWithWitness(const CQ& cq, const Instance& db,
                              const std::vector<Term>& answer,
                              HomWitness* witness,
                              Governor* governor = nullptr);
bool HoldsUcqTreeDpWithWitness(const UCQ& ucq, const Instance& db,
                               const std::vector<Term>& answer,
                               HomWitness* witness,
                               Governor* governor = nullptr);

/// Boolean variants.
bool HoldsBooleanCqTreeDp(const CQ& cq, const Instance& db,
                          Governor* governor = nullptr);
bool HoldsBooleanUcqTreeDp(const UCQ& ucq, const Instance& db,
                           Governor* governor = nullptr);

}  // namespace gqe

#endif  // GQE_QUERY_TW_EVALUATION_H_
