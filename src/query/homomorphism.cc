#include "query/homomorphism.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "base/flat_table.h"
#include "base/thread_pool.h"

namespace gqe {

namespace {

/// Backtracking state for one search (one per thread in parallel runs; the
/// substitution and bookkeeping are private to the searcher).
class Searcher {
 public:
  Searcher(const std::vector<Atom>& pattern, const Instance& target,
           const HomOptions& options,
           const std::function<bool(const Substitution&)>& callback)
      : pattern_(pattern),
        target_(target),
        options_(options),
        callback_(callback),
        governor_(options.governor),
        charge_batch_(options.governor != nullptr
                          ? options.governor->NodeChargeBatch()
                          : 0) {}

  /// Seeds the assignment with fixed variables and injectivity
  /// bookkeeping. Returns false if the seed itself is contradictory, in
  /// which case no homomorphism exists.
  bool Seed() {
    processed_.assign(pattern_.size(), false);
    for (const auto& [var, value] : options_.fixed.entries()) {
      assert(var.IsVariable() && value.IsGround());
      assignment_.Set(var, value);
      if (options_.injective && !used_.insert(value).second) return false;
    }
    if (options_.injective) {
      // Ground terms of the pattern map to themselves; they occupy their
      // own images.
      for (Term t : GroundTermsOf(pattern_)) {
        if (!used_.insert(t).second) {
          // A fixed variable already maps onto this constant: only
          // admissible if... it is not (images must be distinct).
          return false;
        }
      }
    }
    return true;
  }

  size_t Run() {
    count_ = 0;
    stopped_ = false;
    Recurse(0);
    FlushNodeCharges();
    return count_;
  }

  /// Runs the search with the given atom forced as the root of the
  /// backtracking tree, mapped only onto candidates[begin, end). Used by
  /// the parallel path to split the root candidate set across workers.
  size_t RunShard(int root, const std::vector<uint32_t>& candidates,
                  size_t begin, size_t end) {
    count_ = 0;
    stopped_ = false;
    ExpandAtom(root, candidates, begin, end, 0);
    FlushNodeCharges();
    return count_;
  }

  /// Exposes the root-atom choice the sequential search would make from
  /// the seeded state: the unprocessed atom with the fewest candidates.
  bool PickRoot(int* atom, std::vector<uint32_t>* candidates) {
    const std::vector<uint32_t>* picked = nullptr;
    if (!PickAtom(atom, &picked)) return false;
    *candidates = *picked;
    return true;
  }

  /// A flag shared between shard searchers: when set, every searcher
  /// abandons its subtree (used by Exists / early-stopping ForEach).
  void set_shared_stop(std::atomic<bool>* stop) { shared_stop_ = stop; }

 private:
  bool Stopped() const {
    return stopped_ ||
           (shared_stop_ != nullptr &&
            shared_stop_->load(std::memory_order_relaxed)) ||
           (governor_ != nullptr && governor_->Tripped());
  }

  /// Accounts one candidate fact tried against the governor's search-node
  /// budget. Charges are batched (batch 1 under a fault injector so
  /// checkpoint counts are sharding-invariant).
  void ChargeNode() {
    if (governor_ == nullptr) return;
    if (++pending_nodes_ >= charge_batch_) FlushNodeCharges();
  }

  void FlushNodeCharges() {
    if (governor_ == nullptr || pending_nodes_ == 0) return;
    governor_->ChargeNodes(pending_nodes_);
    pending_nodes_ = 0;
  }

  /// Picks the unprocessed atom with the fewest candidate facts under the
  /// current partial assignment; returns false if none remain. The
  /// returned pointer aliases an Instance postings list (stable while the
  /// target is not mutated), so no per-node candidate copy is made.
  bool PickAtom(int* best_atom, const std::vector<uint32_t>** best_candidates) {
    size_t best_count = std::numeric_limits<size_t>::max();
    *best_atom = -1;
    for (size_t i = 0; i < pattern_.size(); ++i) {
      if (processed_[i]) continue;
      const Atom& atom = pattern_[i];
      // Find the most selective bound position.
      const std::vector<uint32_t>* candidates = nullptr;
      size_t count = std::numeric_limits<size_t>::max();
      for (int pos = 0; pos < atom.arity(); ++pos) {
        Term t = atom.args()[pos];
        Term bound = t.IsVariable() ? assignment_.Apply(t) : t;
        if (!bound.IsGround()) continue;
        const auto& facts = target_.FactsWith(atom.predicate(), pos, bound);
        if (facts.size() < count) {
          count = facts.size();
          candidates = &facts;
        }
      }
      if (candidates == nullptr) {
        const auto& facts = target_.FactsWithPredicate(atom.predicate());
        count = facts.size();
        candidates = &facts;
      }
      if (count < best_count) {
        best_count = count;
        *best_atom = static_cast<int>(i);
        *best_candidates = candidates;
        if (count == 0) return true;  // dead end; fail fast
      }
    }
    return *best_atom >= 0;
  }

  void Recurse(size_t depth) {
    if (Stopped()) return;
    if (depth == pattern_.size()) {
      ++count_;
      if (!callback_(assignment_)) stopped_ = true;
      return;
    }
    int atom_index;
    const std::vector<uint32_t>* candidates = nullptr;
    if (!PickAtom(&atom_index, &candidates)) return;
    ExpandAtom(atom_index, *candidates, 0, candidates->size(), depth);
  }

  /// Tries every candidate fact for `atom_index` in turn, recursing into
  /// the rest of the pattern on each successful unification.
  void ExpandAtom(int atom_index, const std::vector<uint32_t>& candidates,
                  size_t begin, size_t end, size_t depth) {
    processed_[atom_index] = true;
    const Atom& atom = pattern_[atom_index];
    // Rollback journal, hoisted so the candidate loop reuses its storage.
    std::vector<Term> newly_bound;
    for (size_t c = begin; c < end; ++c) {
      ChargeNode();
      if (Stopped()) break;
      const uint32_t fact_index = candidates[c];
      if (target_.predicate_of(fact_index) != atom.predicate()) continue;
      // Attempt unification against the columnar argument span; record
      // newly bound variables for rollback.
      const std::span<const Term> fact_args = target_.args_of(fact_index);
      newly_bound.clear();
      bool ok = true;
      for (int pos = 0; pos < atom.arity() && ok; ++pos) {
        Term t = atom.args()[pos];
        Term image = fact_args[pos];
        if (t.IsGround()) {
          ok = (t == image);
          continue;
        }
        Term current = assignment_.Apply(t);
        if (current.IsGround()) {
          ok = (current == image);
          continue;
        }
        if (options_.injective && used_.count(image) > 0) {
          ok = false;
          continue;
        }
        assignment_.Set(t, image);
        if (options_.injective) used_.insert(image);
        newly_bound.push_back(t);
      }
      if (ok) Recurse(depth + 1);
      for (Term t : newly_bound) {
        if (options_.injective) used_.erase(assignment_.Apply(t));
        assignment_.Set(t, t);  // unbind: map back to itself
      }
      if (Stopped()) break;
    }
    processed_[atom_index] = false;
  }

  const std::vector<Atom>& pattern_;
  const Instance& target_;
  const HomOptions& options_;
  const std::function<bool(const Substitution&)>& callback_;

  Substitution assignment_;
  std::vector<char> processed_;
  FlatSet<Term> used_;
  std::atomic<bool>* shared_stop_ = nullptr;
  size_t count_ = 0;
  bool stopped_ = false;

  Governor* governor_;
  uint64_t charge_batch_;
  uint64_t pending_nodes_ = 0;
};

/// Contiguous [begin, end) shard bounds splitting `n` candidates as evenly
/// as possible across `shards` workers.
std::pair<size_t, size_t> ShardBounds(size_t n, size_t shards, size_t shard) {
  size_t base = n / shards;
  size_t extra = n % shards;
  size_t begin = shard * base + std::min(shard, extra);
  size_t end = begin + base + (shard < extra ? 1 : 0);
  return {begin, end};
}

}  // namespace

HomomorphismSearch::HomomorphismSearch(const std::vector<Atom>& pattern,
                                       const Instance& target,
                                       HomOptions options)
    : pattern_(pattern), target_(target), options_(std::move(options)) {}

void HomomorphismSearch::RecordStatus() {
  status_ = options_.governor != nullptr ? options_.governor->status()
                                         : Status::kCompleted;
}

std::optional<Substitution> HomomorphismSearch::FindOne() {
  std::optional<Substitution> result;
  const std::function<bool(const Substitution&)> callback =
      [&result](const Substitution& sub) {
        result = sub;
        return false;  // stop after the first
      };
  Searcher searcher(pattern_, target_, options_, callback);
  if (!searcher.Seed()) {
    RecordStatus();
    return std::nullopt;
  }
  searcher.Run();
  RecordStatus();
  return result;
}

size_t HomomorphismSearch::ForEach(
    const std::function<bool(const Substitution&)>& callback) {
  const size_t threads = ThreadPool::ResolveThreads(options_.threads);
  if (threads <= 1 || pattern_.empty()) {
    Searcher searcher(pattern_, target_, options_, callback);
    if (!searcher.Seed()) {
      RecordStatus();
      return 0;
    }
    size_t count = searcher.Run();
    RecordStatus();
    return count;
  }
  size_t count = ParallelForEach(threads, callback);
  RecordStatus();
  return count;
}

size_t HomomorphismSearch::ParallelForEach(
    size_t threads, const std::function<bool(const Substitution&)>& callback) {
  Searcher probe(pattern_, target_, options_, callback);
  if (!probe.Seed()) return 0;
  int root;
  std::vector<uint32_t> candidates;
  if (!probe.PickRoot(&root, &candidates)) return 0;
  if (candidates.size() <= 1) return probe.Run();
  const size_t shards = std::min(threads, candidates.size());

  std::atomic<bool> shared_stop{false};
  std::atomic<size_t> total{0};
  std::mutex callback_mutex;
  const std::function<bool(const Substitution&)> locked_callback =
      [&](const Substitution& sub) {
        std::lock_guard<std::mutex> lock(callback_mutex);
        if (shared_stop.load(std::memory_order_relaxed)) return false;
        if (!callback(sub)) {
          shared_stop.store(true, std::memory_order_relaxed);
          return false;
        }
        return true;
      };

  ThreadPool pool(threads);
  pool.ParallelFor(shards, [&](size_t shard) {
    auto [begin, end] = ShardBounds(candidates.size(), shards, shard);
    Searcher searcher(pattern_, target_, options_, locked_callback);
    if (!searcher.Seed()) return;
    searcher.set_shared_stop(&shared_stop);
    total.fetch_add(searcher.RunShard(root, candidates, begin, end),
                    std::memory_order_relaxed);
  });
  return total.load();
}

std::vector<Substitution> HomomorphismSearch::FindAll(size_t limit) {
  const size_t threads = ThreadPool::ResolveThreads(options_.threads);
  if (threads > 1 && !pattern_.empty()) {
    std::vector<Substitution> all = ParallelFindAll(threads, limit);
    RecordStatus();
    return all;
  }
  std::vector<Substitution> all;
  const std::function<bool(const Substitution&)> callback =
      [&all, limit](const Substitution& sub) {
        all.push_back(sub);
        return limit == 0 || all.size() < limit;
      };
  Searcher searcher(pattern_, target_, options_, callback);
  if (!searcher.Seed()) {
    RecordStatus();
    return all;
  }
  searcher.Run();
  RecordStatus();
  return all;
}

std::vector<Substitution> HomomorphismSearch::ParallelFindAll(size_t threads,
                                                              size_t limit) {
  std::vector<Substitution> all;
  const std::function<bool(const Substitution&)> collect_all =
      [&all](const Substitution& sub) {
        all.push_back(sub);
        return true;
      };
  Searcher probe(pattern_, target_, options_, collect_all);
  if (!probe.Seed()) return all;
  int root;
  std::vector<uint32_t> candidates;
  if (!probe.PickRoot(&root, &candidates)) return all;
  if (candidates.size() <= 1) {
    probe.Run();
    if (limit > 0 && all.size() > limit) all.resize(limit);
    return all;
  }
  const size_t shards = std::min(threads, candidates.size());
  std::vector<std::vector<Substitution>> per_shard(shards);
  ThreadPool pool(threads);
  pool.ParallelFor(shards, [&](size_t shard) {
    auto [begin, end] = ShardBounds(candidates.size(), shards, shard);
    const std::function<bool(const Substitution&)> collect =
        [&per_shard, shard](const Substitution& sub) {
          per_shard[shard].push_back(sub);
          return true;
        };
    Searcher searcher(pattern_, target_, options_, collect);
    if (!searcher.Seed()) return;
    searcher.RunShard(root, candidates, begin, end);
  });
  // Shards are contiguous slices of the root candidate order, so this
  // concatenation reproduces sequential enumeration order exactly.
  for (auto& shard_results : per_shard) {
    for (auto& sub : shard_results) {
      if (limit > 0 && all.size() >= limit) return all;
      all.push_back(std::move(sub));
    }
  }
  return all;
}

bool HomomorphismSearch::Exists() {
  const size_t threads = ThreadPool::ResolveThreads(options_.threads);
  if (threads <= 1 || pattern_.empty()) return FindOne().has_value();
  bool found = ParallelExists(threads);
  RecordStatus();
  return found;
}

bool HomomorphismSearch::ParallelExists(size_t threads) {
  std::atomic<bool> found{false};
  const std::function<bool(const Substitution&)> witness =
      [&found](const Substitution&) {
        found.store(true, std::memory_order_relaxed);
        return false;
      };
  Searcher probe(pattern_, target_, options_, witness);
  if (!probe.Seed()) return false;
  int root;
  std::vector<uint32_t> candidates;
  if (!probe.PickRoot(&root, &candidates)) return false;
  if (candidates.size() <= 1) {
    probe.Run();
    return found.load();
  }
  const size_t shards = std::min(threads, candidates.size());
  ThreadPool pool(threads);
  pool.ParallelFor(shards, [&](size_t shard) {
    if (found.load(std::memory_order_relaxed)) return;
    auto [begin, end] = ShardBounds(candidates.size(), shards, shard);
    Searcher searcher(pattern_, target_, options_, witness);
    if (!searcher.Seed()) return;
    searcher.set_shared_stop(&found);
    searcher.RunShard(root, candidates, begin, end);
  });
  return found.load();
}

std::vector<Atom> PatternFromInstance(
    const Instance& from, const std::vector<Term>& fixed,
    std::unordered_map<Term, Term>* element_to_var) {
  std::unordered_set<Term> fixed_set(fixed.begin(), fixed.end());
  std::unordered_map<Term, Term> to_var;
  std::vector<Atom> pattern;
  pattern.reserve(from.size());
  for (const Atom& fact : from.atoms()) {
    std::vector<Term> args;
    args.reserve(fact.args().size());
    for (Term t : fact.args()) {
      if (fixed_set.count(t) > 0) {
        args.push_back(t);
        continue;
      }
      auto it = to_var.find(t);
      if (it == to_var.end()) {
        it = to_var.emplace(t, Term::FreshVariable()).first;
      }
      args.push_back(it->second);
    }
    pattern.push_back(Atom(fact.predicate(), std::move(args)));
  }
  if (element_to_var != nullptr) *element_to_var = std::move(to_var);
  return pattern;
}

std::optional<Substitution> InstanceHomomorphism(const Instance& from,
                                                 const Instance& to,
                                                 const std::vector<Term>& fixed,
                                                 bool injective) {
  std::unordered_map<Term, Term> element_to_var;
  std::vector<Atom> pattern = PatternFromInstance(from, fixed, &element_to_var);
  HomOptions options;
  options.injective = injective;
  HomomorphismSearch search(pattern, to, options);
  std::optional<Substitution> var_solution = search.FindOne();
  if (!var_solution.has_value()) return std::nullopt;
  // Translate variable assignment back to an element mapping.
  Substitution element_map;
  for (const auto& [element, var] : element_to_var) {
    element_map.Set(element, var_solution->Apply(var));
  }
  for (Term t : fixed) element_map.Set(t, t);
  return element_map;
}

}  // namespace gqe
