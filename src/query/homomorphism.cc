#include "query/homomorphism.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace gqe {

namespace {

/// Backtracking state for one search.
class Searcher {
 public:
  Searcher(const std::vector<Atom>& pattern, const Instance& target,
           const HomOptions& options,
           const std::function<bool(const Substitution&)>& callback)
      : pattern_(pattern),
        target_(target),
        options_(options),
        callback_(callback) {}

  size_t Run() {
    processed_.assign(pattern_.size(), false);
    // Seed the assignment with fixed variables and check pattern ground
    // terms exist in the target where needed.
    for (const auto& [var, value] : options_.fixed.map()) {
      assert(var.IsVariable() && value.IsGround());
      assignment_.Set(var, value);
      if (options_.injective && !used_.insert(value).second) return 0;
    }
    if (options_.injective) {
      // Ground terms of the pattern map to themselves; they occupy their
      // own images.
      for (Term t : GroundTermsOf(pattern_)) {
        if (!used_.insert(t).second) {
          // A fixed variable already maps onto this constant: only
          // admissible if... it is not (images must be distinct).
          return 0;
        }
      }
    }
    count_ = 0;
    stopped_ = false;
    Recurse(0);
    return count_;
  }

 private:
  /// Picks the unprocessed atom with the fewest candidate facts under the
  /// current partial assignment; returns false if none remain.
  bool PickAtom(int* best_atom, std::vector<uint32_t>* best_candidates) {
    size_t best_count = std::numeric_limits<size_t>::max();
    *best_atom = -1;
    for (size_t i = 0; i < pattern_.size(); ++i) {
      if (processed_[i]) continue;
      const Atom& atom = pattern_[i];
      // Find the most selective bound position.
      const std::vector<uint32_t>* candidates = nullptr;
      size_t count = std::numeric_limits<size_t>::max();
      for (int pos = 0; pos < atom.arity(); ++pos) {
        Term t = atom.args()[pos];
        Term bound = t.IsVariable() ? assignment_.Apply(t) : t;
        if (!bound.IsGround()) continue;
        const auto& facts = target_.FactsWith(atom.predicate(), pos, bound);
        if (facts.size() < count) {
          count = facts.size();
          candidates = &facts;
        }
      }
      if (candidates == nullptr) {
        const auto& facts = target_.FactsWithPredicate(atom.predicate());
        count = facts.size();
        candidates = &facts;
      }
      if (count < best_count) {
        best_count = count;
        *best_atom = static_cast<int>(i);
        *best_candidates = *candidates;
        if (count == 0) return true;  // dead end; fail fast
      }
    }
    return *best_atom >= 0;
  }

  void Recurse(size_t depth) {
    if (stopped_) return;
    if (depth == pattern_.size()) {
      ++count_;
      if (!callback_(assignment_)) stopped_ = true;
      return;
    }
    int atom_index;
    std::vector<uint32_t> candidates;
    if (!PickAtom(&atom_index, &candidates)) return;
    processed_[atom_index] = true;
    const Atom& atom = pattern_[atom_index];
    for (uint32_t fact_index : candidates) {
      const Atom& fact = target_.atom(fact_index);
      if (fact.predicate() != atom.predicate()) continue;
      // Attempt unification; record newly bound variables for rollback.
      std::vector<Term> newly_bound;
      bool ok = true;
      for (int pos = 0; pos < atom.arity() && ok; ++pos) {
        Term t = atom.args()[pos];
        Term image = fact.args()[pos];
        if (t.IsGround()) {
          ok = (t == image);
          continue;
        }
        Term current = assignment_.Apply(t);
        if (current.IsGround()) {
          ok = (current == image);
          continue;
        }
        if (options_.injective && used_.count(image) > 0) {
          ok = false;
          continue;
        }
        assignment_.Set(t, image);
        if (options_.injective) used_.insert(image);
        newly_bound.push_back(t);
      }
      if (ok) Recurse(depth + 1);
      for (Term t : newly_bound) {
        if (options_.injective) used_.erase(assignment_.Apply(t));
        assignment_.Set(t, t);  // unbind: map back to itself
      }
      if (stopped_) break;
    }
    processed_[atom_index] = false;
  }

  const std::vector<Atom>& pattern_;
  const Instance& target_;
  const HomOptions& options_;
  const std::function<bool(const Substitution&)>& callback_;

  Substitution assignment_;
  std::vector<char> processed_;
  std::unordered_set<Term> used_;
  size_t count_ = 0;
  bool stopped_ = false;
};

}  // namespace

HomomorphismSearch::HomomorphismSearch(const std::vector<Atom>& pattern,
                                       const Instance& target,
                                       HomOptions options)
    : pattern_(pattern), target_(target), options_(std::move(options)) {}

std::optional<Substitution> HomomorphismSearch::FindOne() {
  std::optional<Substitution> result;
  const std::function<bool(const Substitution&)> callback =
      [&result](const Substitution& sub) {
        result = sub;
        return false;  // stop after the first
      };
  Searcher searcher(pattern_, target_, options_, callback);
  searcher.Run();
  return result;
}

size_t HomomorphismSearch::ForEach(
    const std::function<bool(const Substitution&)>& callback) {
  Searcher searcher(pattern_, target_, options_, callback);
  return searcher.Run();
}

std::vector<Substitution> HomomorphismSearch::FindAll(size_t limit) {
  std::vector<Substitution> all;
  const std::function<bool(const Substitution&)> callback =
      [&all, limit](const Substitution& sub) {
        all.push_back(sub);
        return limit == 0 || all.size() < limit;
      };
  Searcher searcher(pattern_, target_, options_, callback);
  searcher.Run();
  return all;
}

bool HomomorphismSearch::Exists() { return FindOne().has_value(); }

std::vector<Atom> PatternFromInstance(
    const Instance& from, const std::vector<Term>& fixed,
    std::unordered_map<Term, Term>* element_to_var) {
  std::unordered_set<Term> fixed_set(fixed.begin(), fixed.end());
  std::unordered_map<Term, Term> to_var;
  std::vector<Atom> pattern;
  pattern.reserve(from.size());
  for (const Atom& fact : from.atoms()) {
    std::vector<Term> args;
    args.reserve(fact.args().size());
    for (Term t : fact.args()) {
      if (fixed_set.count(t) > 0) {
        args.push_back(t);
        continue;
      }
      auto it = to_var.find(t);
      if (it == to_var.end()) {
        it = to_var.emplace(t, Term::FreshVariable()).first;
      }
      args.push_back(it->second);
    }
    pattern.push_back(Atom(fact.predicate(), std::move(args)));
  }
  if (element_to_var != nullptr) *element_to_var = std::move(to_var);
  return pattern;
}

std::optional<Substitution> InstanceHomomorphism(const Instance& from,
                                                 const Instance& to,
                                                 const std::vector<Term>& fixed,
                                                 bool injective) {
  std::unordered_map<Term, Term> element_to_var;
  std::vector<Atom> pattern = PatternFromInstance(from, fixed, &element_to_var);
  HomOptions options;
  options.injective = injective;
  HomomorphismSearch search(pattern, to, options);
  std::optional<Substitution> var_solution = search.FindOne();
  if (!var_solution.has_value()) return std::nullopt;
  // Translate variable assignment back to an element mapping.
  Substitution element_map;
  for (const auto& [element, var] : element_to_var) {
    element_map.Set(element, var_solution->Apply(var));
  }
  for (Term t : fixed) element_map.Set(t, t);
  return element_map;
}

}  // namespace gqe
