#ifndef GQE_QUERY_CQ_H_
#define GQE_QUERY_CQ_H_

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/atom.h"
#include "base/instance.h"
#include "base/term.h"

namespace gqe {

/// A conjunctive query q(x̄) = ∃ȳ (R1(x̄1) ∧ ... ∧ Rm(x̄m)) (paper,
/// Section 2). Answer variables x̄ are explicit; every other variable is
/// implicitly existentially quantified. Atoms may mention constants.
class CQ {
 public:
  CQ() = default;
  CQ(std::vector<Term> answer_vars, std::vector<Atom> atoms);

  const std::vector<Term>& answer_vars() const { return answer_vars_; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  int arity() const { return static_cast<int>(answer_vars_.size()); }
  bool IsBoolean() const { return answer_vars_.empty(); }

  /// All distinct variables: answer variables first, then existential
  /// variables in order of first occurrence.
  std::vector<Term> AllVariables() const;

  /// The existentially quantified variables ȳ.
  std::vector<Term> ExistentialVariables() const;

  /// ‖q‖-ish size measure: total number of term occurrences.
  size_t Size() const;

  /// Checks well-formedness: at least one atom, answer variables are
  /// distinct variables each occurring in some atom.
  bool Validate(std::string* why = nullptr) const;

  /// The canonical database D[q] (paper, Section 2): variables frozen to
  /// constants. `frozen` (optional) receives the variable-to-constant
  /// mapping; the frozen constant of variable `v` is named `@<v>`.
  Instance CanonicalInstance(
      std::unordered_map<Term, Term>* frozen = nullptr) const;

  /// The frozen constant used by CanonicalInstance for variable `v`.
  static Term FrozenConstant(Term variable);

  /// The paper's query treewidth (Section 2): the treewidth — under the
  /// paper's convention that edgeless graphs have treewidth one — of the
  /// subgraph of the Gaifman graph of q induced by the existential
  /// variables.
  int TreewidthOfExistentialPart() const;

  std::string ToString() const;

 private:
  std::vector<Term> answer_vars_;
  std::vector<Atom> atoms_;
};

std::ostream& operator<<(std::ostream& os, const CQ& cq);

/// A union of conjunctive queries q1(x̄) ∨ ... ∨ qn(x̄): all disjuncts
/// share the answer arity (paper, Section 2). Answer variable *names* may
/// differ across disjuncts; positions align them.
class UCQ {
 public:
  UCQ() = default;
  explicit UCQ(std::vector<CQ> disjuncts);

  const std::vector<CQ>& disjuncts() const { return disjuncts_; }
  std::vector<CQ>& mutable_disjuncts() { return disjuncts_; }
  size_t num_disjuncts() const { return disjuncts_.size(); }
  int arity() const;
  bool IsBoolean() const { return arity() == 0; }

  void AddDisjunct(CQ cq);

  bool Validate(std::string* why = nullptr) const;

  /// Max over disjuncts of the paper's query treewidth; a UCQ is in UCQ_k
  /// iff this is <= k.
  int TreewidthOfExistentialPart() const;

  size_t Size() const;

  std::string ToString() const;

 private:
  std::vector<CQ> disjuncts_;
};

std::ostream& operator<<(std::ostream& os, const UCQ& ucq);

}  // namespace gqe

#endif  // GQE_QUERY_CQ_H_
