#include "query/tw_evaluation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/graph.h"
#include "graph/tree_decomposition.h"
#include "graph/treewidth.h"
#include "query/homomorphism.h"
#include "query/substitution.h"

namespace gqe {

namespace {

struct TupleHash {
  size_t operator()(const std::vector<Term>& tuple) const {
    size_t h = 0x9e3779b97f4a7c15ull;
    for (Term t : tuple) {
      h ^= TermHash{}(t) + 0x9e3779b9u + (h << 6) + (h >> 2);
    }
    return h;
  }
};

using TupleSet = std::unordered_set<std::vector<Term>, TupleHash>;

/// Enumerates all assignments of `bag_vars` such that every atom in
/// `bag_atoms` holds in `db`; variables of the bag not constrained by a
/// bag atom range over the active domain (the paper's |D|^{k+1} step).
std::vector<std::vector<Term>> BagSolutions(
    const std::vector<Term>& bag_vars, const std::vector<Atom>& bag_atoms,
    const Instance& db, Governor* governor) {
  std::vector<std::vector<Term>> solutions;
  // Variables covered by bag atoms.
  std::vector<Term> covered = VariablesOf(bag_atoms);
  std::vector<Term> free_vars;
  for (Term v : bag_vars) {
    if (std::find(covered.begin(), covered.end(), v) == covered.end()) {
      free_vars.push_back(v);
    }
  }
  const std::vector<Term>& domain = db.ActiveDomain();

  auto extend_free = [&](const Substitution& base) {
    // Cross-product the free bag variables with the active domain.
    std::vector<Term> tuple;
    tuple.reserve(bag_vars.size());
    std::vector<size_t> counters(free_vars.size(), 0);
    for (;;) {
      tuple.clear();
      size_t free_index = 0;
      for (Term v : bag_vars) {
        if (std::find(free_vars.begin(), free_vars.end(), v) !=
            free_vars.end()) {
          tuple.push_back(domain[counters[free_index++]]);
        } else {
          tuple.push_back(base.Apply(v));
        }
      }
      solutions.push_back(tuple);
      // Advance the odometer.
      size_t i = 0;
      while (i < counters.size()) {
        if (++counters[i] < domain.size()) break;
        counters[i] = 0;
        ++i;
      }
      if (i == counters.size()) break;
    }
  };

  if (!free_vars.empty() && domain.empty()) return solutions;
  if (bag_atoms.empty()) {
    extend_free(Substitution());
    return solutions;
  }
  HomOptions hom_options;
  hom_options.governor = governor;
  HomomorphismSearch search(bag_atoms, db, hom_options);
  search.ForEach([&](const Substitution& sub) {
    extend_free(sub);
    return true;
  });
  // Distinct homomorphisms can agree on the bag variables; deduplicate.
  std::sort(solutions.begin(), solutions.end());
  solutions.erase(std::unique(solutions.begin(), solutions.end()),
                  solutions.end());
  return solutions;
}

/// Records `sub` restricted to the query's variables as a HomWitness
/// assignment (CQ::AllVariables() order).
void FillWitness(const CQ& cq, const std::vector<Term>& answer,
                 const Substitution& sub, HomWitness* witness) {
  witness->disjunct = 0;
  witness->answer = answer;
  witness->assignment.clear();
  for (Term v : cq.AllVariables()) {
    if (sub.Has(v)) witness->assignment.emplace_back(v, sub.Apply(v));
  }
}

bool HoldsCqTreeDpImpl(const CQ& cq, const Instance& db,
                       const std::vector<Term>& answer, HomWitness* witness,
                       Governor* governor) {
  Substitution candidate;
  for (size_t i = 0; i < cq.answer_vars().size(); ++i) {
    candidate.Set(cq.answer_vars()[i], answer[i]);
  }
  std::vector<Atom> residual;
  for (const Atom& atom : cq.atoms()) {
    Atom grounded = candidate.Apply(atom);
    if (grounded.IsGround()) {
      if (!db.Contains(grounded)) return false;
    } else {
      residual.push_back(grounded);
    }
  }
  if (residual.empty()) {
    if (witness != nullptr) FillWitness(cq, answer, candidate, witness);
    return true;
  }

  // Gaifman graph over the residual variables.
  std::vector<Term> vars = VariablesOf(residual);
  std::unordered_map<Term, int> var_index;
  for (size_t i = 0; i < vars.size(); ++i) {
    var_index[vars[i]] = static_cast<int>(i);
  }
  Graph gaifman(static_cast<int>(vars.size()));
  for (const Atom& atom : residual) {
    const auto& args = atom.args();
    for (size_t i = 0; i < args.size(); ++i) {
      if (!args[i].IsVariable()) continue;
      for (size_t j = i + 1; j < args.size(); ++j) {
        if (!args[j].IsVariable() || args[i] == args[j]) continue;
        gaifman.AddEdge(var_index[args[i]], var_index[args[j]]);
      }
    }
  }
  TreewidthOptions tw_options;
  tw_options.governor = governor;
  TreeDecomposition td = ComputeTreewidth(gaifman, tw_options).decomposition;

  // Assign every residual atom to a bag containing all its variables.
  std::vector<std::vector<Atom>> bag_atoms(td.num_bags());
  for (const Atom& atom : residual) {
    std::vector<int> needed;
    for (Term t : atom.args()) {
      if (t.IsVariable()) needed.push_back(var_index[t]);
    }
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
    int home = -1;
    for (int b = 0; b < td.num_bags(); ++b) {
      const auto& bag = td.bag(b);
      if (std::includes(bag.begin(), bag.end(), needed.begin(),
                        needed.end())) {
        home = b;
        break;
      }
    }
    if (home < 0) return false;  // cannot happen for a valid decomposition
    bag_atoms[home].push_back(atom);
  }

  // Root the decomposition tree at bag 0 and order children-first.
  std::vector<std::vector<int>> adjacency(td.num_bags());
  for (auto [a, b] : td.tree_edges()) {
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
  std::vector<int> order;       // BFS order from the root
  std::vector<int> parent(td.num_bags(), -1);
  std::vector<char> visited(td.num_bags(), 0);
  order.push_back(0);
  visited[0] = 1;
  for (size_t head = 0; head < order.size(); ++head) {
    int b = order[head];
    for (int nb : adjacency[b]) {
      if (!visited[nb]) {
        visited[nb] = 1;
        parent[nb] = b;
        order.push_back(nb);
      }
    }
  }

  // Bottom-up semijoins.
  std::vector<std::vector<std::vector<Term>>> solutions(td.num_bags());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (governor != nullptr && governor->Check() != Status::kCompleted) {
      return false;  // conservative: a tripped run claims nothing
    }
    const int b = *it;
    std::vector<Term> bag_vars;
    for (int v : td.bag(b)) bag_vars.push_back(vars[v]);
    solutions[b] = BagSolutions(bag_vars, bag_atoms[b], db, governor);
    for (int child : adjacency[b]) {
      if (parent[child] != b) continue;
      // Shared variables between this bag and the child.
      std::vector<Term> child_vars;
      for (int v : td.bag(child)) child_vars.push_back(vars[v]);
      std::vector<size_t> parent_pos, child_pos;
      for (size_t i = 0; i < bag_vars.size(); ++i) {
        for (size_t j = 0; j < child_vars.size(); ++j) {
          if (bag_vars[i] == child_vars[j]) {
            parent_pos.push_back(i);
            child_pos.push_back(j);
          }
        }
      }
      TupleSet child_projections;
      for (const auto& tuple : solutions[child]) {
        std::vector<Term> projection;
        for (size_t j : child_pos) projection.push_back(tuple[j]);
        child_projections.insert(projection);
      }
      std::vector<std::vector<Term>> filtered;
      for (const auto& tuple : solutions[b]) {
        std::vector<Term> projection;
        for (size_t i : parent_pos) projection.push_back(tuple[i]);
        if (child_projections.count(projection) > 0) {
          filtered.push_back(tuple);
        }
      }
      solutions[b] = std::move(filtered);
      // Witness extraction stitches the tables top-down afterwards, so
      // child tables must survive; otherwise release the memory.
      if (witness == nullptr) solutions[child].clear();
    }
  }
  if (solutions[0].empty()) return false;
  if (witness != nullptr) {
    // Top-down stitching in BFS order: every bag picks the first of its
    // (children-filtered) solutions consistent with its parent's pick on
    // the shared variables; the decomposition's connectedness property
    // turns the per-bag picks into one homomorphism.
    std::vector<std::vector<Term>> chosen(td.num_bags());
    for (int b : order) {
      std::vector<Term> bag_vars;
      for (int v : td.bag(b)) bag_vars.push_back(vars[v]);
      const int p = parent[b];
      if (p < 0) {
        chosen[b] = solutions[b].front();
      } else {
        std::vector<Term> parent_vars;
        for (int v : td.bag(p)) parent_vars.push_back(vars[v]);
        std::vector<size_t> bag_pos, parent_pos;
        for (size_t i = 0; i < bag_vars.size(); ++i) {
          for (size_t j = 0; j < parent_vars.size(); ++j) {
            if (bag_vars[i] == parent_vars[j]) {
              bag_pos.push_back(i);
              parent_pos.push_back(j);
            }
          }
        }
        for (const auto& tuple : solutions[b]) {
          bool matches = true;
          for (size_t s = 0; s < bag_pos.size() && matches; ++s) {
            matches = tuple[bag_pos[s]] == chosen[p][parent_pos[s]];
          }
          if (matches) {
            chosen[b] = tuple;
            break;
          }
        }
      }
    }
    Substitution assignment = candidate;
    for (int b : order) {
      size_t i = 0;
      for (int v : td.bag(b)) {
        if (i < chosen[b].size()) assignment.Set(vars[v], chosen[b][i]);
        ++i;
      }
    }
    FillWitness(cq, answer, assignment, witness);
  }
  return true;
}

}  // namespace

bool HoldsCqTreeDp(const CQ& cq, const Instance& db,
                   const std::vector<Term>& answer, Governor* governor) {
  return HoldsCqTreeDpImpl(cq, db, answer, nullptr, governor);
}

bool HoldsCqTreeDpWithWitness(const CQ& cq, const Instance& db,
                              const std::vector<Term>& answer,
                              HomWitness* witness, Governor* governor) {
  return HoldsCqTreeDpImpl(cq, db, answer, witness, governor);
}

bool HoldsUcqTreeDp(const UCQ& ucq, const Instance& db,
                    const std::vector<Term>& answer, Governor* governor) {
  for (const CQ& cq : ucq.disjuncts()) {
    if (HoldsCqTreeDp(cq, db, answer, governor)) return true;
    if (governor != nullptr && governor->Tripped()) break;
  }
  return false;
}

bool HoldsUcqTreeDpWithWitness(const UCQ& ucq, const Instance& db,
                               const std::vector<Term>& answer,
                               HomWitness* witness, Governor* governor) {
  for (size_t d = 0; d < ucq.num_disjuncts(); ++d) {
    if (HoldsCqTreeDpWithWitness(ucq.disjuncts()[d], db, answer, witness,
                                 governor)) {
      if (witness != nullptr) witness->disjunct = static_cast<uint32_t>(d);
      return true;
    }
    if (governor != nullptr && governor->Tripped()) break;
  }
  return false;
}

bool HoldsBooleanCqTreeDp(const CQ& cq, const Instance& db,
                          Governor* governor) {
  return HoldsCqTreeDp(cq, db, {}, governor);
}

bool HoldsBooleanUcqTreeDp(const UCQ& ucq, const Instance& db,
                           Governor* governor) {
  return HoldsUcqTreeDp(ucq, db, {}, governor);
}

}  // namespace gqe
