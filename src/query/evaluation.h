#ifndef GQE_QUERY_EVALUATION_H_
#define GQE_QUERY_EVALUATION_H_

#include <vector>

#include "base/governor.h"
#include "base/instance.h"
#include "query/cq.h"
#include "query/substitution.h"
#include "verify/witness.h"

namespace gqe {

/// Evaluates q over an instance: the set of answers q(I) (paper,
/// Section 2). Tuples are returned sorted and deduplicated. `limit` > 0
/// stops after that many distinct answers. All entry points take an
/// optional shared `governor`: homomorphism-search nodes are charged
/// against it and a trip makes the enumeration stop early (check the
/// governor's status; a tripped run may under-report answers).
std::vector<std::vector<Term>> EvaluateCQ(const CQ& cq, const Instance& db,
                                          size_t limit = 0,
                                          Governor* governor = nullptr);

std::vector<std::vector<Term>> EvaluateUCQ(const UCQ& ucq, const Instance& db,
                                           size_t limit = 0,
                                           Governor* governor = nullptr);

/// Witness-collecting evaluation: like EvaluateUCQ, but `witnesses`
/// receives one homomorphism certificate per returned answer, aligned
/// index-by-index with the (sorted, deduplicated) answer list. Each
/// certificate records the first disjunct and the first homomorphism (in
/// deterministic enumeration order) that produced the answer; the full
/// variable assignment lets VerifyHomomorphism re-check it atom-by-atom.
std::vector<std::vector<Term>> EvaluateUCQWithWitnesses(
    const UCQ& ucq, const Instance& db, std::vector<HomWitness>* witnesses,
    size_t limit = 0, Governor* governor = nullptr);

/// Finds a homomorphism certificate for one candidate answer: the first
/// disjunct (and first homomorphism) placing the query in `db` at
/// `answer`. Returns false when the answer does not hold (or the
/// governor tripped first).
bool FindUcqAnswerWitness(const UCQ& ucq, const Instance& db,
                          const std::vector<Term>& answer, HomWitness* out,
                          Governor* governor = nullptr);

/// Decides c̄ ∈ q(I) for a candidate answer (the paper's evaluation
/// problem). A candidate whose arity differs from the query's is never
/// an answer (returns false).
bool HoldsCQ(const CQ& cq, const Instance& db, const std::vector<Term>& answer,
             Governor* governor = nullptr);
bool HoldsUCQ(const UCQ& ucq, const Instance& db,
              const std::vector<Term>& answer, Governor* governor = nullptr);

/// Boolean query satisfaction I |= q.
bool HoldsBooleanCQ(const CQ& cq, const Instance& db,
                    Governor* governor = nullptr);
bool HoldsBooleanUCQ(const UCQ& ucq, const Instance& db,
                     Governor* governor = nullptr);

/// I |=io q(ā) (Appendix D): q holds with answer ā and *every*
/// homomorphism witnessing it is injective.
bool HoldsInjectivelyOnly(const CQ& cq, const Instance& db,
                          const std::vector<Term>& answer,
                          Governor* governor = nullptr);

}  // namespace gqe

#endif  // GQE_QUERY_EVALUATION_H_
