#include "query/cq.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "graph/graph.h"
#include "graph/treewidth.h"

namespace gqe {

CQ::CQ(std::vector<Term> answer_vars, std::vector<Atom> atoms)
    : answer_vars_(std::move(answer_vars)), atoms_(std::move(atoms)) {}

std::vector<Term> CQ::AllVariables() const {
  std::vector<Term> vars = answer_vars_;
  for (const Atom& atom : atoms_) atom.CollectVariables(&vars);
  return vars;
}

std::vector<Term> CQ::ExistentialVariables() const {
  std::vector<Term> all = AllVariables();
  std::vector<Term> existential;
  for (Term v : all) {
    if (std::find(answer_vars_.begin(), answer_vars_.end(), v) ==
        answer_vars_.end()) {
      existential.push_back(v);
    }
  }
  return existential;
}

size_t CQ::Size() const {
  size_t total = 0;
  for (const Atom& atom : atoms_) total += 1 + atom.args().size();
  return total;
}

bool CQ::Validate(std::string* why) const {
  auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (atoms_.empty()) return fail("CQ has no atoms");
  std::vector<Term> body_vars = VariablesOf(atoms_);
  for (size_t i = 0; i < answer_vars_.size(); ++i) {
    if (!answer_vars_[i].IsVariable()) return fail("answer term not a variable");
    for (size_t j = i + 1; j < answer_vars_.size(); ++j) {
      if (answer_vars_[i] == answer_vars_[j]) {
        return fail("duplicate answer variable " + answer_vars_[i].ToString());
      }
    }
    if (std::find(body_vars.begin(), body_vars.end(), answer_vars_[i]) ==
        body_vars.end()) {
      return fail("unsafe answer variable " + answer_vars_[i].ToString());
    }
  }
  return true;
}

Term CQ::FrozenConstant(Term variable) {
  return Term::Constant("@" + variable.ToString());
}

Instance CQ::CanonicalInstance(
    std::unordered_map<Term, Term>* frozen) const {
  Instance db;
  std::unordered_map<Term, Term> map;
  for (const Atom& atom : atoms_) {
    std::vector<Term> args;
    args.reserve(atom.args().size());
    for (Term t : atom.args()) {
      if (t.IsVariable()) {
        auto it = map.find(t);
        if (it == map.end()) {
          it = map.emplace(t, FrozenConstant(t)).first;
        }
        args.push_back(it->second);
      } else {
        args.push_back(t);
      }
    }
    db.Insert(Atom(atom.predicate(), std::move(args)));
  }
  if (frozen != nullptr) *frozen = std::move(map);
  return db;
}

int CQ::TreewidthOfExistentialPart() const {
  std::vector<Term> vertex_terms;
  Graph gaifman = GaifmanGraphOfAtoms(atoms_, &vertex_terms);
  std::vector<Term> existential = ExistentialVariables();
  std::vector<int> keep;
  for (size_t i = 0; i < vertex_terms.size(); ++i) {
    if (std::find(existential.begin(), existential.end(), vertex_terms[i]) !=
        existential.end()) {
      keep.push_back(static_cast<int>(i));
    }
  }
  Graph induced = gaifman.InducedSubgraph(keep);
  return PaperTreewidth(induced);
}

std::string CQ::ToString() const {
  std::ostringstream out;
  out << "q(";
  for (size_t i = 0; i < answer_vars_.size(); ++i) {
    if (i > 0) out << ",";
    out << answer_vars_[i];
  }
  out << ") :- " << AtomsToString(atoms_);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const CQ& cq) {
  return os << cq.ToString();
}

UCQ::UCQ(std::vector<CQ> disjuncts) : disjuncts_(std::move(disjuncts)) {}

int UCQ::arity() const {
  return disjuncts_.empty() ? 0 : disjuncts_.front().arity();
}

void UCQ::AddDisjunct(CQ cq) { disjuncts_.push_back(std::move(cq)); }

bool UCQ::Validate(std::string* why) const {
  auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (disjuncts_.empty()) return fail("UCQ has no disjuncts");
  for (const CQ& cq : disjuncts_) {
    if (!cq.Validate(why)) return false;
    if (cq.arity() != arity()) return fail("disjuncts with differing arity");
  }
  return true;
}

int UCQ::TreewidthOfExistentialPart() const {
  int width = 1;
  for (const CQ& cq : disjuncts_) {
    width = std::max(width, cq.TreewidthOfExistentialPart());
  }
  return width;
}

size_t UCQ::Size() const {
  size_t total = 0;
  for (const CQ& cq : disjuncts_) total += cq.Size();
  return total;
}

std::string UCQ::ToString() const {
  std::string out;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out += "  |  ";
    out += disjuncts_[i].ToString();
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const UCQ& ucq) {
  return os << ucq.ToString();
}

}  // namespace gqe
