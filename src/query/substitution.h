#ifndef GQE_QUERY_SUBSTITUTION_H_
#define GQE_QUERY_SUBSTITUTION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/atom.h"
#include "base/term.h"

namespace gqe {

/// A mapping from terms (usually variables) to terms. Applying a
/// substitution leaves unmapped terms unchanged, so it also serves as a
/// (partial) homomorphism witness.
class Substitution {
 public:
  Substitution() = default;

  void Set(Term from, Term to) { map_[from] = to; }
  bool Has(Term t) const { return map_.count(t) > 0; }

  /// Returns the image of `t`, or `t` itself if unmapped.
  Term Apply(Term t) const {
    auto it = map_.find(t);
    return it == map_.end() ? t : it->second;
  }

  Atom Apply(const Atom& atom) const;
  std::vector<Atom> Apply(const std::vector<Atom>& atoms) const;
  std::vector<Term> Apply(const std::vector<Term>& terms) const;

  size_t size() const { return map_.size(); }
  const std::unordered_map<Term, Term>& map() const { return map_; }

  /// True if no two mapped terms share an image.
  bool IsInjective() const;

  std::string ToString() const;

 private:
  std::unordered_map<Term, Term> map_;
};

}  // namespace gqe

#endif  // GQE_QUERY_SUBSTITUTION_H_
