#ifndef GQE_QUERY_SUBSTITUTION_H_
#define GQE_QUERY_SUBSTITUTION_H_

#include <string>
#include <utility>
#include <vector>

#include "base/atom.h"
#include "base/term.h"

namespace gqe {

/// A mapping from terms (usually variables) to terms. Applying a
/// substitution leaves unmapped terms unchanged, so it also serves as a
/// (partial) homomorphism witness.
///
/// Backed by an insertion-ordered flat vector: substitutions bind a
/// handful of variables, so a linear scan beats a hash map's indirection
/// on the homomorphism hot path, and iteration over `entries()` is
/// deterministic (binding order) instead of hash order.
class Substitution {
 public:
  Substitution() = default;

  void Set(Term from, Term to) {
    for (auto& [f, t] : entries_) {
      if (f == from) {
        t = to;
        return;
      }
    }
    entries_.emplace_back(from, to);
  }

  bool Has(Term t) const {
    for (const auto& [f, _] : entries_) {
      if (f == t) return true;
    }
    return false;
  }

  /// Returns the image of `t`, or `t` itself if unmapped.
  Term Apply(Term t) const {
    for (const auto& [f, to] : entries_) {
      if (f == t) return to;
    }
    return t;
  }

  Atom Apply(const Atom& atom) const;
  std::vector<Atom> Apply(const std::vector<Atom>& atoms) const;
  std::vector<Term> Apply(const std::vector<Term>& terms) const;

  size_t size() const { return entries_.size(); }

  /// The bindings in binding order (first Set of each term).
  const std::vector<std::pair<Term, Term>>& entries() const {
    return entries_;
  }

  /// True if both substitutions bind the same terms to the same images,
  /// regardless of binding order.
  bool SameMapping(const Substitution& other) const;

  /// True if no two mapped terms share an image.
  bool IsInjective() const;

  std::string ToString() const;

 private:
  std::vector<std::pair<Term, Term>> entries_;
};

}  // namespace gqe

#endif  // GQE_QUERY_SUBSTITUTION_H_
