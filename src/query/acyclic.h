#ifndef GQE_QUERY_ACYCLIC_H_
#define GQE_QUERY_ACYCLIC_H_

#include <optional>
#include <vector>

#include "base/instance.h"
#include "query/cq.h"
#include "verify/witness.h"

namespace gqe {

/// A join tree for an acyclic CQ: one node per atom, tree edges, with the
/// connectedness property (shared variables of two atoms appear on the
/// path between them).
struct JoinTree {
  std::vector<int> parent;  // per atom index; -1 for roots
  std::vector<int> order;   // leaves-first elimination order of atoms
};

/// GYO reduction: returns a join tree iff the CQ's hypergraph is
/// alpha-acyclic. Acyclic CQs are exactly the CQs of hypertree-width 1 —
/// the classical tractable class predating bounded treewidth.
std::optional<JoinTree> GyoJoinTree(const CQ& cq);

bool IsAcyclicCq(const CQ& cq);

/// Yannakakis' algorithm: decides c̄ ∈ q(D) for an acyclic CQ in time
/// O(‖q‖ · ‖D‖ · log ‖D‖) via bottom-up semijoin reduction over the join
/// tree. Falls back to std::nullopt if the query is not acyclic.
///
/// Certificates (verify/verifier.h checks them independently):
/// `tree_witness` (optional) receives the join tree the run used
/// whenever the query is acyclic; `hom_witness` (optional) receives a
/// full homomorphism assignment — extracted by the standard Yannakakis
/// top-down traceback over the semijoin-reduced relations — when the
/// answer holds. The join tree is computed for the *candidate-grounded*
/// query (answer variables replaced by `answer`, which is what the run
/// evaluates), so pass that grounding to VerifyJoinTree — a grounding
/// can be alpha-acyclic where the unbound query is not.
std::optional<bool> HoldsAcyclicCq(const CQ& cq, const Instance& db,
                                   const std::vector<Term>& answer,
                                   JoinTreeWitness* tree_witness = nullptr,
                                   HomWitness* hom_witness = nullptr);

}  // namespace gqe

#endif  // GQE_QUERY_ACYCLIC_H_
