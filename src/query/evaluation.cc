#include "query/evaluation.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "query/homomorphism.h"

namespace gqe {

namespace {

void CollectAnswers(const CQ& cq, const Instance& db, size_t limit,
                    Governor* governor,
                    std::set<std::vector<Term>>* answers) {
  HomOptions options;
  options.governor = governor;
  HomomorphismSearch search(cq.atoms(), db, options);
  search.ForEach([&](const Substitution& sub) {
    answers->insert(sub.Apply(cq.answer_vars()));
    return limit == 0 || answers->size() < limit;
  });
}

/// Full-assignment record of a substitution over a disjunct's variables,
/// in CQ::AllVariables() order (deterministic across processes).
std::vector<std::pair<Term, Term>> AssignmentOf(const CQ& cq,
                                                const Substitution& sub) {
  std::vector<std::pair<Term, Term>> assignment;
  for (Term v : cq.AllVariables()) {
    if (sub.Has(v)) assignment.emplace_back(v, sub.Apply(v));
  }
  return assignment;
}

}  // namespace

std::vector<std::vector<Term>> EvaluateCQ(const CQ& cq, const Instance& db,
                                          size_t limit, Governor* governor) {
  std::set<std::vector<Term>> answers;
  CollectAnswers(cq, db, limit, governor, &answers);
  return {answers.begin(), answers.end()};
}

std::vector<std::vector<Term>> EvaluateUCQ(const UCQ& ucq, const Instance& db,
                                           size_t limit, Governor* governor) {
  std::set<std::vector<Term>> answers;
  for (const CQ& cq : ucq.disjuncts()) {
    CollectAnswers(cq, db, limit, governor, &answers);
    if (limit > 0 && answers.size() >= limit) break;
    if (governor != nullptr && governor->Tripped()) break;
  }
  return {answers.begin(), answers.end()};
}

std::vector<std::vector<Term>> EvaluateUCQWithWitnesses(
    const UCQ& ucq, const Instance& db, std::vector<HomWitness>* witnesses,
    size_t limit, Governor* governor) {
  std::map<std::vector<Term>, HomWitness> found;
  for (size_t d = 0; d < ucq.num_disjuncts(); ++d) {
    const CQ& cq = ucq.disjuncts()[d];
    HomOptions options;
    options.governor = governor;
    HomomorphismSearch search(cq.atoms(), db, options);
    search.ForEach([&](const Substitution& sub) {
      std::vector<Term> answer = sub.Apply(cq.answer_vars());
      auto [it, inserted] = found.try_emplace(std::move(answer));
      if (inserted) {
        it->second.disjunct = static_cast<uint32_t>(d);
        it->second.answer = it->first;
        it->second.assignment = AssignmentOf(cq, sub);
      }
      return limit == 0 || found.size() < limit;
    });
    if (limit > 0 && found.size() >= limit) break;
    if (governor != nullptr && governor->Tripped()) break;
  }
  std::vector<std::vector<Term>> answers;
  answers.reserve(found.size());
  if (witnesses != nullptr) {
    witnesses->clear();
    witnesses->reserve(found.size());
  }
  for (auto& [answer, witness] : found) {
    answers.push_back(answer);
    if (witnesses != nullptr) witnesses->push_back(std::move(witness));
  }
  return answers;
}

bool FindUcqAnswerWitness(const UCQ& ucq, const Instance& db,
                          const std::vector<Term>& answer, HomWitness* out,
                          Governor* governor) {
  for (size_t d = 0; d < ucq.num_disjuncts(); ++d) {
    const CQ& cq = ucq.disjuncts()[d];
    if (answer.size() != cq.answer_vars().size()) continue;
    HomOptions options;
    options.governor = governor;
    for (size_t i = 0; i < cq.answer_vars().size(); ++i) {
      options.fixed.Set(cq.answer_vars()[i], answer[i]);
    }
    HomomorphismSearch search(cq.atoms(), db, options);
    std::optional<Substitution> sub = search.FindOne();
    if (sub.has_value()) {
      if (out != nullptr) {
        out->disjunct = static_cast<uint32_t>(d);
        out->answer = answer;
        out->assignment = AssignmentOf(cq, *sub);
      }
      return true;
    }
    if (governor != nullptr && governor->Tripped()) break;
  }
  return false;
}

bool HoldsCQ(const CQ& cq, const Instance& db, const std::vector<Term>& answer,
             Governor* governor) {
  if (answer.size() != cq.answer_vars().size()) return false;
  HomOptions options;
  options.governor = governor;
  for (size_t i = 0; i < cq.answer_vars().size(); ++i) {
    options.fixed.Set(cq.answer_vars()[i], answer[i]);
  }
  HomomorphismSearch search(cq.atoms(), db, options);
  return search.Exists();
}

bool HoldsUCQ(const UCQ& ucq, const Instance& db,
              const std::vector<Term>& answer, Governor* governor) {
  for (const CQ& cq : ucq.disjuncts()) {
    if (HoldsCQ(cq, db, answer, governor)) return true;
    if (governor != nullptr && governor->Tripped()) break;
  }
  return false;
}

bool HoldsBooleanCQ(const CQ& cq, const Instance& db, Governor* governor) {
  return HoldsCQ(cq, db, {}, governor);
}

bool HoldsBooleanUCQ(const UCQ& ucq, const Instance& db, Governor* governor) {
  return HoldsUCQ(ucq, db, {}, governor);
}

bool HoldsInjectivelyOnly(const CQ& cq, const Instance& db,
                          const std::vector<Term>& answer,
                          Governor* governor) {
  HomOptions options;
  options.governor = governor;
  for (size_t i = 0; i < cq.answer_vars().size(); ++i) {
    options.fixed.Set(cq.answer_vars()[i], answer[i]);
  }
  HomomorphismSearch search(cq.atoms(), db, options);
  bool any = false;
  bool all_injective = true;
  search.ForEach([&](const Substitution& sub) {
    any = true;
    if (!sub.IsInjective()) {
      all_injective = false;
      return false;
    }
    // Injectivity with respect to pattern constants: a variable mapping
    // onto a constant of the pattern breaks injectivity of h on D[q].
    for (Term c : GroundTermsOf(cq.atoms())) {
      for (const auto& [var, image] : sub.entries()) {
        if (var != c && image == c) {
          all_injective = false;
          return false;
        }
      }
    }
    return true;
  });
  return any && all_injective;
}

}  // namespace gqe
