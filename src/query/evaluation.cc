#include "query/evaluation.h"

#include <algorithm>
#include <set>

#include "query/homomorphism.h"

namespace gqe {

namespace {

void CollectAnswers(const CQ& cq, const Instance& db, size_t limit,
                    Governor* governor,
                    std::set<std::vector<Term>>* answers) {
  HomOptions options;
  options.governor = governor;
  HomomorphismSearch search(cq.atoms(), db, options);
  search.ForEach([&](const Substitution& sub) {
    answers->insert(sub.Apply(cq.answer_vars()));
    return limit == 0 || answers->size() < limit;
  });
}

}  // namespace

std::vector<std::vector<Term>> EvaluateCQ(const CQ& cq, const Instance& db,
                                          size_t limit, Governor* governor) {
  std::set<std::vector<Term>> answers;
  CollectAnswers(cq, db, limit, governor, &answers);
  return {answers.begin(), answers.end()};
}

std::vector<std::vector<Term>> EvaluateUCQ(const UCQ& ucq, const Instance& db,
                                           size_t limit, Governor* governor) {
  std::set<std::vector<Term>> answers;
  for (const CQ& cq : ucq.disjuncts()) {
    CollectAnswers(cq, db, limit, governor, &answers);
    if (limit > 0 && answers.size() >= limit) break;
    if (governor != nullptr && governor->Tripped()) break;
  }
  return {answers.begin(), answers.end()};
}

bool HoldsCQ(const CQ& cq, const Instance& db, const std::vector<Term>& answer,
             Governor* governor) {
  if (answer.size() != cq.answer_vars().size()) return false;
  HomOptions options;
  options.governor = governor;
  for (size_t i = 0; i < cq.answer_vars().size(); ++i) {
    options.fixed.Set(cq.answer_vars()[i], answer[i]);
  }
  HomomorphismSearch search(cq.atoms(), db, options);
  return search.Exists();
}

bool HoldsUCQ(const UCQ& ucq, const Instance& db,
              const std::vector<Term>& answer, Governor* governor) {
  for (const CQ& cq : ucq.disjuncts()) {
    if (HoldsCQ(cq, db, answer, governor)) return true;
    if (governor != nullptr && governor->Tripped()) break;
  }
  return false;
}

bool HoldsBooleanCQ(const CQ& cq, const Instance& db, Governor* governor) {
  return HoldsCQ(cq, db, {}, governor);
}

bool HoldsBooleanUCQ(const UCQ& ucq, const Instance& db, Governor* governor) {
  return HoldsUCQ(ucq, db, {}, governor);
}

bool HoldsInjectivelyOnly(const CQ& cq, const Instance& db,
                          const std::vector<Term>& answer,
                          Governor* governor) {
  HomOptions options;
  options.governor = governor;
  for (size_t i = 0; i < cq.answer_vars().size(); ++i) {
    options.fixed.Set(cq.answer_vars()[i], answer[i]);
  }
  HomomorphismSearch search(cq.atoms(), db, options);
  bool any = false;
  bool all_injective = true;
  search.ForEach([&](const Substitution& sub) {
    any = true;
    if (!sub.IsInjective()) {
      all_injective = false;
      return false;
    }
    // Injectivity with respect to pattern constants: a variable mapping
    // onto a constant of the pattern breaks injectivity of h on D[q].
    for (Term c : GroundTermsOf(cq.atoms())) {
      for (const auto& [var, image] : sub.map()) {
        if (var != c && image == c) {
          all_injective = false;
          return false;
        }
      }
    }
    return true;
  });
  return any && all_injective;
}

}  // namespace gqe
