#include "query/evaluation.h"

#include <algorithm>
#include <set>

#include "query/homomorphism.h"

namespace gqe {

namespace {

void CollectAnswers(const CQ& cq, const Instance& db, size_t limit,
                    std::set<std::vector<Term>>* answers) {
  HomomorphismSearch search(cq.atoms(), db);
  search.ForEach([&](const Substitution& sub) {
    answers->insert(sub.Apply(cq.answer_vars()));
    return limit == 0 || answers->size() < limit;
  });
}

}  // namespace

std::vector<std::vector<Term>> EvaluateCQ(const CQ& cq, const Instance& db,
                                          size_t limit) {
  std::set<std::vector<Term>> answers;
  CollectAnswers(cq, db, limit, &answers);
  return {answers.begin(), answers.end()};
}

std::vector<std::vector<Term>> EvaluateUCQ(const UCQ& ucq, const Instance& db,
                                           size_t limit) {
  std::set<std::vector<Term>> answers;
  for (const CQ& cq : ucq.disjuncts()) {
    CollectAnswers(cq, db, limit, &answers);
    if (limit > 0 && answers.size() >= limit) break;
  }
  return {answers.begin(), answers.end()};
}

bool HoldsCQ(const CQ& cq, const Instance& db,
             const std::vector<Term>& answer) {
  if (answer.size() != cq.answer_vars().size()) return false;
  HomOptions options;
  for (size_t i = 0; i < cq.answer_vars().size(); ++i) {
    options.fixed.Set(cq.answer_vars()[i], answer[i]);
  }
  HomomorphismSearch search(cq.atoms(), db, options);
  return search.Exists();
}

bool HoldsUCQ(const UCQ& ucq, const Instance& db,
              const std::vector<Term>& answer) {
  for (const CQ& cq : ucq.disjuncts()) {
    if (HoldsCQ(cq, db, answer)) return true;
  }
  return false;
}

bool HoldsBooleanCQ(const CQ& cq, const Instance& db) {
  return HoldsCQ(cq, db, {});
}

bool HoldsBooleanUCQ(const UCQ& ucq, const Instance& db) {
  return HoldsUCQ(ucq, db, {});
}

bool HoldsInjectivelyOnly(const CQ& cq, const Instance& db,
                          const std::vector<Term>& answer) {
  HomOptions options;
  for (size_t i = 0; i < cq.answer_vars().size(); ++i) {
    options.fixed.Set(cq.answer_vars()[i], answer[i]);
  }
  HomomorphismSearch search(cq.atoms(), db, options);
  bool any = false;
  bool all_injective = true;
  search.ForEach([&](const Substitution& sub) {
    any = true;
    if (!sub.IsInjective()) {
      all_injective = false;
      return false;
    }
    // Injectivity with respect to pattern constants: a variable mapping
    // onto a constant of the pattern breaks injectivity of h on D[q].
    for (Term c : GroundTermsOf(cq.atoms())) {
      for (const auto& [var, image] : sub.map()) {
        if (var != c && image == c) {
          all_injective = false;
          return false;
        }
      }
    }
    return true;
  });
  return any && all_injective;
}

}  // namespace gqe
