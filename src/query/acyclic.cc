#include "query/acyclic.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "query/substitution.h"

namespace gqe {

namespace {

std::set<Term> AtomVarSet(const Atom& atom) {
  std::set<Term> vars;
  for (Term t : atom.args()) {
    if (t.IsVariable()) vars.insert(t);
  }
  return vars;
}

}  // namespace

std::optional<JoinTree> GyoJoinTree(const CQ& cq) {
  const size_t n = cq.atoms().size();
  std::vector<std::set<Term>> var_sets(n);
  for (size_t i = 0; i < n; ++i) var_sets[i] = AtomVarSet(cq.atoms()[i]);

  JoinTree tree;
  tree.parent.assign(n, -1);
  std::vector<bool> removed(n, false);
  size_t remaining = n;
  while (remaining > 0) {
    // Count in how many remaining atoms each variable occurs.
    std::unordered_map<Term, int> occurrences;
    for (size_t i = 0; i < n; ++i) {
      if (removed[i]) continue;
      for (Term v : var_sets[i]) ++occurrences[v];
    }
    bool found_ear = false;
    for (size_t i = 0; i < n && !found_ear; ++i) {
      if (removed[i]) continue;
      // Shared variables of atom i (those also in another remaining atom).
      std::set<Term> shared;
      for (Term v : var_sets[i]) {
        if (occurrences[v] >= 2) shared.insert(v);
      }
      if (shared.empty()) {
        // Isolated ear: becomes a root (or child of nothing).
        removed[i] = true;
        --remaining;
        tree.order.push_back(static_cast<int>(i));
        found_ear = true;
        break;
      }
      for (size_t j = 0; j < n; ++j) {
        if (j == i || removed[j]) continue;
        if (std::includes(var_sets[j].begin(), var_sets[j].end(),
                          shared.begin(), shared.end())) {
          tree.parent[i] = static_cast<int>(j);
          removed[i] = true;
          --remaining;
          tree.order.push_back(static_cast<int>(i));
          found_ear = true;
          break;
        }
      }
    }
    if (!found_ear) return std::nullopt;  // cyclic hypergraph
  }
  return tree;
}

bool IsAcyclicCq(const CQ& cq) { return GyoJoinTree(cq).has_value(); }

std::optional<bool> HoldsAcyclicCq(const CQ& cq, const Instance& db,
                                   const std::vector<Term>& answer,
                                   JoinTreeWitness* tree_witness,
                                   HomWitness* hom_witness) {
  Substitution candidate;
  for (size_t i = 0; i < cq.answer_vars().size(); ++i) {
    candidate.Set(cq.answer_vars()[i], answer[i]);
  }
  std::vector<Atom> atoms;
  for (const Atom& atom : cq.atoms()) atoms.push_back(candidate.Apply(atom));
  CQ grounded({}, atoms);
  std::optional<JoinTree> tree = GyoJoinTree(grounded);
  if (!tree.has_value()) return std::nullopt;
  if (tree_witness != nullptr) {
    tree_witness->parent.assign(tree->parent.begin(), tree->parent.end());
    tree_witness->order.assign(tree->order.begin(), tree->order.end());
  }

  // Per-atom relations: tuples of variable bindings matching the atom.
  const size_t n = atoms.size();
  std::vector<std::vector<Term>> var_lists(n);
  std::vector<std::vector<std::vector<Term>>> relations(n);
  for (size_t i = 0; i < n; ++i) {
    const Atom& atom = atoms[i];
    atom.CollectVariables(&var_lists[i]);
    for (uint32_t fact_index : db.FactsWithPredicate(atom.predicate())) {
      const Atom& fact = db.atom(fact_index);
      Substitution binding;
      bool ok = true;
      for (int pos = 0; pos < atom.arity() && ok; ++pos) {
        Term t = atom.args()[pos];
        Term image = fact.args()[pos];
        if (t.IsGround()) {
          ok = (t == image);
        } else if (binding.Has(t)) {
          ok = (binding.Apply(t) == image);
        } else {
          binding.Set(t, image);
        }
      }
      if (!ok) continue;
      std::vector<Term> tuple;
      for (Term v : var_lists[i]) tuple.push_back(binding.Apply(v));
      relations[i].push_back(std::move(tuple));
    }
    std::sort(relations[i].begin(), relations[i].end());
    relations[i].erase(std::unique(relations[i].begin(), relations[i].end()),
                       relations[i].end());
  }

  // Bottom-up semijoins in GYO removal order (leaves first).
  for (int child : tree->order) {
    const int parent = tree->parent[child];
    if (parent < 0) {
      if (relations[child].empty()) return false;
      continue;
    }
    // Shared variable positions.
    std::vector<size_t> child_pos, parent_pos;
    for (size_t a = 0; a < var_lists[child].size(); ++a) {
      for (size_t b = 0; b < var_lists[parent].size(); ++b) {
        if (var_lists[child][a] == var_lists[parent][b]) {
          child_pos.push_back(a);
          parent_pos.push_back(b);
        }
      }
    }
    std::set<std::vector<Term>> child_projections;
    for (const auto& tuple : relations[child]) {
      std::vector<Term> projection;
      for (size_t a : child_pos) projection.push_back(tuple[a]);
      child_projections.insert(std::move(projection));
    }
    std::vector<std::vector<Term>> filtered;
    for (const auto& tuple : relations[parent]) {
      std::vector<Term> projection;
      for (size_t b : parent_pos) projection.push_back(tuple[b]);
      if (child_projections.count(projection) > 0) {
        filtered.push_back(tuple);
      }
    }
    relations[parent] = std::move(filtered);
    if (relations[parent].empty()) return false;
  }
  if (hom_witness != nullptr) {
    // Yannakakis traceback, parents before children (reverse GYO
    // order): each atom picks a tuple consistent with its parent's
    // choice on the shared variables. The join tree's connectedness
    // property propagates equality along paths, so the union of choices
    // plus the candidate grounding is a single homomorphism.
    std::vector<std::vector<Term>> chosen(n);
    for (auto it = tree->order.rbegin(); it != tree->order.rend(); ++it) {
      const size_t i = static_cast<size_t>(*it);
      const int parent = tree->parent[i];
      if (parent < 0) {
        chosen[i] = relations[i].front();
        continue;
      }
      std::vector<size_t> child_pos, parent_pos;
      for (size_t a = 0; a < var_lists[i].size(); ++a) {
        for (size_t b = 0; b < var_lists[parent].size(); ++b) {
          if (var_lists[i][a] == var_lists[parent][b]) {
            child_pos.push_back(a);
            parent_pos.push_back(b);
          }
        }
      }
      for (const auto& tuple : relations[i]) {
        bool matches = true;
        for (size_t p = 0; p < child_pos.size() && matches; ++p) {
          matches = tuple[child_pos[p]] == chosen[parent][parent_pos[p]];
        }
        if (matches) {
          chosen[i] = tuple;
          break;
        }
      }
    }
    Substitution assignment = candidate;
    for (size_t i = 0; i < n; ++i) {
      for (size_t a = 0; a < var_lists[i].size() && a < chosen[i].size();
           ++a) {
        assignment.Set(var_lists[i][a], chosen[i][a]);
      }
    }
    hom_witness->disjunct = 0;
    hom_witness->answer = answer;
    hom_witness->assignment.clear();
    for (Term v : cq.AllVariables()) {
      if (assignment.Has(v)) {
        hom_witness->assignment.emplace_back(v, assignment.Apply(v));
      }
    }
  }
  return true;
}

}  // namespace gqe
