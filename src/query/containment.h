#ifndef GQE_QUERY_CONTAINMENT_H_
#define GQE_QUERY_CONTAINMENT_H_

#include "query/cq.h"

namespace gqe {

/// Chandra–Merlin containment: q1 ⊆ q2 iff there is a homomorphism from
/// q2 to the canonical database of q1 mapping answer variables
/// positionally (q1 and q2 must have equal arity).
bool CqContained(const CQ& q1, const CQ& q2);

bool CqEquivalent(const CQ& q1, const CQ& q2);

/// UCQ containment: every disjunct of q1 is contained in some disjunct of
/// q2 (sound and complete for UCQs).
bool UcqContained(const UCQ& q1, const UCQ& q2);

bool UcqEquivalent(const UCQ& q1, const UCQ& q2);

/// Removes disjuncts contained in other disjuncts (keeps the first of any
/// equivalent pair), yielding an equivalent, irredundant UCQ.
UCQ MinimizeUcq(const UCQ& ucq);

}  // namespace gqe

#endif  // GQE_QUERY_CONTAINMENT_H_
