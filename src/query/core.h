#ifndef GQE_QUERY_CORE_H_
#define GQE_QUERY_CORE_H_

#include "query/cq.h"

namespace gqe {

/// Computes the core of a CQ (Section 4): a ⊆-minimal subquery equivalent
/// to q. Implemented by repeatedly finding proper retractions
/// (endomorphisms of the canonical database fixing the answer variables
/// whose image is a proper subset) and restricting to the image.
/// Exponential in query size; intended for query-sized inputs.
CQ CqCore(const CQ& cq);

/// True if the CQ is its own core (every answer-preserving endomorphism
/// is surjective).
bool IsCore(const CQ& cq);

/// The core of a UCQ: drops disjuncts contained in other disjuncts and
/// replaces each survivor with its CQ core — the canonical equivalent
/// form used when reasoning about classes of UCQs (Section 4).
UCQ UcqCore(const UCQ& ucq);

}  // namespace gqe

#endif  // GQE_QUERY_CORE_H_
