#include "query/substitution.h"

#include "base/flat_table.h"

namespace gqe {

Atom Substitution::Apply(const Atom& atom) const {
  std::vector<Term> args;
  args.reserve(atom.args().size());
  for (Term t : atom.args()) args.push_back(Apply(t));
  return Atom(atom.predicate(), std::move(args));
}

std::vector<Atom> Substitution::Apply(const std::vector<Atom>& atoms) const {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& atom : atoms) out.push_back(Apply(atom));
  return out;
}

std::vector<Term> Substitution::Apply(const std::vector<Term>& terms) const {
  std::vector<Term> out;
  out.reserve(terms.size());
  for (Term t : terms) out.push_back(Apply(t));
  return out;
}

bool Substitution::SameMapping(const Substitution& other) const {
  if (entries_.size() != other.entries_.size()) return false;
  for (const auto& [from, to] : entries_) {
    if (!other.Has(from) || other.Apply(from) != to) return false;
  }
  return true;
}

bool Substitution::IsInjective() const {
  FlatSet<Term> images(entries_.size());
  for (const auto& [from, to] : entries_) {
    if (!images.insert(to).second) return false;
  }
  return true;
}

std::string Substitution::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [from, to] : entries_) {
    if (!first) out += ", ";
    first = false;
    out += from.ToString() + "->" + to.ToString();
  }
  out += "}";
  return out;
}

}  // namespace gqe
