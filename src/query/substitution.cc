#include "query/substitution.h"

#include <unordered_set>

namespace gqe {

Atom Substitution::Apply(const Atom& atom) const {
  std::vector<Term> args;
  args.reserve(atom.args().size());
  for (Term t : atom.args()) args.push_back(Apply(t));
  return Atom(atom.predicate(), std::move(args));
}

std::vector<Atom> Substitution::Apply(const std::vector<Atom>& atoms) const {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& atom : atoms) out.push_back(Apply(atom));
  return out;
}

std::vector<Term> Substitution::Apply(const std::vector<Term>& terms) const {
  std::vector<Term> out;
  out.reserve(terms.size());
  for (Term t : terms) out.push_back(Apply(t));
  return out;
}

bool Substitution::IsInjective() const {
  std::unordered_set<Term> images;
  for (const auto& [from, to] : map_) {
    if (!images.insert(to).second) return false;
  }
  return true;
}

std::string Substitution::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [from, to] : map_) {
    if (!first) out += ", ";
    first = false;
    out += from.ToString() + "->" + to.ToString();
  }
  out += "}";
  return out;
}

}  // namespace gqe
