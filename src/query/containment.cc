#include "query/containment.h"

#include <cassert>

#include "query/homomorphism.h"

namespace gqe {

bool CqContained(const CQ& q1, const CQ& q2) {
  assert(q1.arity() == q2.arity());
  Instance canonical = q1.CanonicalInstance();
  HomOptions options;
  for (int i = 0; i < q2.arity(); ++i) {
    Term target = q1.answer_vars()[i].IsVariable()
                      ? CQ::FrozenConstant(q1.answer_vars()[i])
                      : q1.answer_vars()[i];
    options.fixed.Set(q2.answer_vars()[i], target);
  }
  HomomorphismSearch search(q2.atoms(), canonical, options);
  return search.Exists();
}

bool CqEquivalent(const CQ& q1, const CQ& q2) {
  return CqContained(q1, q2) && CqContained(q2, q1);
}

bool UcqContained(const UCQ& q1, const UCQ& q2) {
  for (const CQ& p1 : q1.disjuncts()) {
    bool contained = false;
    for (const CQ& p2 : q2.disjuncts()) {
      if (CqContained(p1, p2)) {
        contained = true;
        break;
      }
    }
    if (!contained) return false;
  }
  return true;
}

bool UcqEquivalent(const UCQ& q1, const UCQ& q2) {
  return UcqContained(q1, q2) && UcqContained(q2, q1);
}

UCQ MinimizeUcq(const UCQ& ucq) {
  const auto& disjuncts = ucq.disjuncts();
  std::vector<bool> keep(disjuncts.size(), true);
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (!keep[i]) continue;
    for (size_t j = 0; j < disjuncts.size(); ++j) {
      if (i == j || !keep[j]) continue;
      // Drop disjunct j if it is contained in disjunct i (j's answers are
      // already produced by i).
      if (CqContained(disjuncts[j], disjuncts[i])) {
        keep[j] = false;
      }
    }
  }
  UCQ out;
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (keep[i]) out.AddDisjunct(disjuncts[i]);
  }
  return out;
}

}  // namespace gqe
