#include "query/contraction.h"

#include <algorithm>
#include <unordered_set>

namespace gqe {

namespace {

/// Recursively assigns each variable to an existing block or a fresh one.
/// Blocks carry at most one answer variable.
class ContractionEnumerator {
 public:
  ContractionEnumerator(
      const CQ& cq,
      const std::function<bool(const CQ&, const Substitution&)>& callback)
      : cq_(cq),
        callback_(callback),
        vars_(cq.AllVariables()),
        is_answer_(vars_.size(), false) {
    for (size_t i = 0; i < vars_.size(); ++i) {
      is_answer_[i] =
          std::find(cq.answer_vars().begin(), cq.answer_vars().end(),
                    vars_[i]) != cq.answer_vars().end();
    }
  }

  size_t Run() {
    count_ = 0;
    stopped_ = false;
    Recurse(0);
    return count_;
  }

 private:
  void Recurse(size_t index) {
    if (stopped_) return;
    if (index == vars_.size()) {
      Emit();
      return;
    }
    // Join an existing block.
    for (size_t b = 0; b < blocks_.size() && !stopped_; ++b) {
      if (is_answer_[index] && block_has_answer_[b]) continue;
      blocks_[b].push_back(index);
      const bool had_answer = block_has_answer_[b];
      block_has_answer_[b] = block_has_answer_[b] || is_answer_[index];
      Recurse(index + 1);
      block_has_answer_[b] = had_answer;
      blocks_[b].pop_back();
    }
    if (stopped_) return;
    // Open a fresh block.
    blocks_.push_back({index});
    block_has_answer_.push_back(is_answer_[index]);
    Recurse(index + 1);
    blocks_.pop_back();
    block_has_answer_.pop_back();
  }

  void Emit() {
    Substitution identify;
    for (size_t b = 0; b < blocks_.size(); ++b) {
      // Representative: the answer variable if present, else the first.
      size_t rep = blocks_[b][0];
      for (size_t i : blocks_[b]) {
        if (is_answer_[i]) {
          rep = i;
          break;
        }
      }
      for (size_t i : blocks_[b]) {
        if (i != rep) identify.Set(vars_[i], vars_[rep]);
      }
    }
    std::vector<Atom> atoms;
    std::unordered_set<Atom, AtomHash> seen;
    for (const Atom& atom : cq_.atoms()) {
      Atom mapped = identify.Apply(atom);
      if (seen.insert(mapped).second) atoms.push_back(mapped);
    }
    CQ contraction(cq_.answer_vars(), std::move(atoms));
    ++count_;
    if (!callback_(contraction, identify)) stopped_ = true;
  }

  const CQ& cq_;
  const std::function<bool(const CQ&, const Substitution&)>& callback_;
  std::vector<Term> vars_;
  std::vector<bool> is_answer_;
  std::vector<std::vector<size_t>> blocks_;
  std::vector<bool> block_has_answer_;
  size_t count_ = 0;
  bool stopped_ = false;
};

std::string CanonicalKey(const CQ& cq) {
  std::vector<std::string> atom_strings;
  for (const Atom& atom : cq.atoms()) atom_strings.push_back(atom.ToString());
  std::sort(atom_strings.begin(), atom_strings.end());
  std::string key;
  for (const auto& s : atom_strings) key += s + ";";
  return key;
}

}  // namespace

size_t ForEachContraction(
    const CQ& cq,
    const std::function<bool(const CQ&, const Substitution&)>& callback) {
  ContractionEnumerator enumerator(cq, callback);
  return enumerator.Run();
}

std::vector<CQ> AllContractions(const CQ& cq) {
  std::vector<CQ> out;
  std::unordered_set<std::string> seen;
  ForEachContraction(cq, [&](const CQ& contraction, const Substitution&) {
    if (seen.insert(CanonicalKey(contraction)).second) {
      out.push_back(contraction);
    }
    return true;
  });
  return out;
}

std::vector<CQ> ContractionsWithTreewidthAtMost(const CQ& cq, int k) {
  std::vector<CQ> out;
  std::unordered_set<std::string> seen;
  ForEachContraction(cq, [&](const CQ& contraction, const Substitution&) {
    if (contraction.TreewidthOfExistentialPart() <= k &&
        seen.insert(CanonicalKey(contraction)).second) {
      out.push_back(contraction);
    }
    return true;
  });
  return out;
}

}  // namespace gqe
