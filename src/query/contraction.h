#ifndef GQE_QUERY_CONTRACTION_H_
#define GQE_QUERY_CONTRACTION_H_

#include <functional>
#include <vector>

#include "query/cq.h"
#include "query/substitution.h"

namespace gqe {

/// Enumerates the contractions of a CQ (Section 5.2 / Appendix C): CQs
/// obtained by identifying variables, where identifying an answer
/// variable x with a non-answer variable yields x, and identifying two
/// answer variables is not allowed. The identity contraction (q itself)
/// is included. Invokes `callback(contraction, identification)` for each;
/// stop early by returning false. Returns the number visited.
///
/// The number of contractions is the Bell-number-sized set of admissible
/// variable partitions; keep queries small (≤ 10 variables).
size_t ForEachContraction(
    const CQ& cq,
    const std::function<bool(const CQ&, const Substitution&)>& callback);

/// Collects all contractions (syntactic duplicates removed).
std::vector<CQ> AllContractions(const CQ& cq);

/// Collects the contractions whose existential-part treewidth is at most
/// k — the UCQ_k-approximation building block of Proposition 5.11.
std::vector<CQ> ContractionsWithTreewidthAtMost(const CQ& cq, int k);

}  // namespace gqe

#endif  // GQE_QUERY_CONTRACTION_H_
