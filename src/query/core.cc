#include "query/core.h"

#include <unordered_set>

#include "query/containment.h"
#include "query/homomorphism.h"

namespace gqe {

namespace {

/// Searches for an endomorphism of q (a homomorphism from q's atoms to
/// q's canonical database fixing the answer variables) whose image omits
/// at least one existential variable. Returns the image CQ on success.
bool TryShrink(const CQ& cq, CQ* out) {
  std::unordered_map<Term, Term> frozen;
  Instance canonical = cq.CanonicalInstance(&frozen);
  HomOptions options;
  for (Term v : cq.answer_vars()) {
    options.fixed.Set(v, CQ::FrozenConstant(v));
  }
  const size_t num_terms = canonical.ActiveDomain().size();
  bool shrunk = false;
  HomomorphismSearch search(cq.atoms(), canonical, options);
  search.ForEach([&](const Substitution& sub) {
    std::unordered_set<Term> image;
    for (const auto& [var, value] : sub.entries()) image.insert(value);
    // Ground terms of the query map to themselves.
    for (Term t : GroundTermsOf(cq.atoms())) image.insert(t);
    if (image.size() >= num_terms) return true;  // surjective; keep looking
    // Build the retract: apply the endomorphism to every atom, then
    // translate frozen constants back to variables.
    Substitution unfreeze;
    for (const auto& [var, constant] : frozen) unfreeze.Set(constant, var);
    std::vector<Atom> new_atoms;
    std::unordered_set<std::string> seen;
    for (const Atom& atom : cq.atoms()) {
      Atom mapped = unfreeze.Apply(sub.Apply(atom));
      if (seen.insert(mapped.ToString()).second) new_atoms.push_back(mapped);
    }
    *out = CQ(cq.answer_vars(), std::move(new_atoms));
    shrunk = true;
    return false;
  });
  return shrunk;
}

}  // namespace

CQ CqCore(const CQ& cq) {
  CQ current = cq;
  CQ next;
  while (TryShrink(current, &next)) current = next;
  return current;
}

bool IsCore(const CQ& cq) {
  CQ scratch;
  return !TryShrink(cq, &scratch);
}

UCQ UcqCore(const UCQ& ucq) {
  UCQ minimized = MinimizeUcq(ucq);
  UCQ out;
  for (const CQ& disjunct : minimized.disjuncts()) {
    out.AddDisjunct(CqCore(disjunct));
  }
  return out;
}

}  // namespace gqe
