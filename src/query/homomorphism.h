#ifndef GQE_QUERY_HOMOMORPHISM_H_
#define GQE_QUERY_HOMOMORPHISM_H_

#include <functional>
#include <optional>
#include <vector>

#include "base/atom.h"
#include "base/instance.h"
#include "query/substitution.h"

namespace gqe {

/// Options for homomorphism search.
struct HomOptions {
  /// Require the mapping to be injective over variables *and* with respect
  /// to the constants/nulls occurring in the pattern (the paper's |=io
  /// checks need full injectivity of h on dom(D[q])).
  bool injective = false;

  /// Pre-assigned variables (e.g. candidate answers). Assignments must map
  /// variables to ground terms.
  Substitution fixed;
};

/// Backtracking homomorphism search: maps the variables of `pattern` into
/// the active domain of `target` such that every instantiated atom is a
/// fact of `target`. Constants and nulls occurring in `pattern` must map
/// to themselves (freeze non-fixed elements as variables to relax this;
/// see PatternFromInstance).
class HomomorphismSearch {
 public:
  HomomorphismSearch(const std::vector<Atom>& pattern, const Instance& target,
                     HomOptions options = {});

  /// Finds one homomorphism, if any.
  std::optional<Substitution> FindOne();

  /// Invokes `callback` for every homomorphism until it returns false.
  /// Returns the number of homomorphisms visited.
  size_t ForEach(const std::function<bool(const Substitution&)>& callback);

  /// Collects up to `limit` homomorphisms (0 = all).
  std::vector<Substitution> FindAll(size_t limit = 0);

  bool Exists();

 private:
  const std::vector<Atom>& pattern_;
  const Instance& target_;
  HomOptions options_;
};

/// Convenience: is there a homomorphism from `from` to `to` (instances),
/// treating every domain element of `from` except those in `fixed` as a
/// variable, and requiring elements of `fixed` to map to themselves?
/// Returns the witnessing element mapping.
std::optional<Substitution> InstanceHomomorphism(
    const Instance& from, const Instance& to,
    const std::vector<Term>& fixed = {}, bool injective = false);

/// Rewrites the facts of `from` into a pattern where every domain element
/// not in `fixed` becomes a variable. `element_to_var` receives the
/// element-to-variable correspondence.
std::vector<Atom> PatternFromInstance(
    const Instance& from, const std::vector<Term>& fixed,
    std::unordered_map<Term, Term>* element_to_var);

}  // namespace gqe

#endif  // GQE_QUERY_HOMOMORPHISM_H_
