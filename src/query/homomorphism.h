#ifndef GQE_QUERY_HOMOMORPHISM_H_
#define GQE_QUERY_HOMOMORPHISM_H_

#include <functional>
#include <optional>
#include <vector>

#include "base/atom.h"
#include "base/governor.h"
#include "base/instance.h"
#include "query/substitution.h"

namespace gqe {

/// Options for homomorphism search.
struct HomOptions {
  /// Require the mapping to be injective over variables *and* with respect
  /// to the constants/nulls occurring in the pattern (the paper's |=io
  /// checks need full injectivity of h on dom(D[q])).
  bool injective = false;

  /// Pre-assigned variables (e.g. candidate answers). Assignments must map
  /// variables to ground terms.
  Substitution fixed;

  /// Worker threads for ForEach/FindAll/Exists: the candidate facts of the
  /// most selective atom are split across workers, each running the
  /// backtracking core on a private substitution. 1 (default) is the
  /// sequential code path; 0 means hardware concurrency. FindAll returns
  /// the same substitutions in the same order at every thread count;
  /// ForEach callbacks are serialized but arrive in unspecified order.
  int threads = 1;

  /// Optional shared resource governor. Every candidate fact tried is a
  /// search node charged against the governor's budget; once the governor
  /// trips, all searchers (including parallel shards) abandon their
  /// subtrees promptly and the enumeration is incomplete — check
  /// HomomorphismSearch::status() or the governor itself.
  Governor* governor = nullptr;
};

/// Backtracking homomorphism search: maps the variables of `pattern` into
/// the active domain of `target` such that every instantiated atom is a
/// fact of `target`. Constants and nulls occurring in `pattern` must map
/// to themselves (freeze non-fixed elements as variables to relax this;
/// see PatternFromInstance).
class HomomorphismSearch {
 public:
  HomomorphismSearch(const std::vector<Atom>& pattern, const Instance& target,
                     HomOptions options = {});

  /// Finds one homomorphism, if any. Always sequential (the witness is
  /// the first one in deterministic enumeration order).
  std::optional<Substitution> FindOne();

  /// Invokes `callback` for every homomorphism until it returns false.
  /// Returns the number of homomorphisms visited. With threads > 1 the
  /// callback is invoked (serialized) from pool threads in unspecified
  /// order, and an early stop may count homomorphisms the callback never
  /// saw.
  size_t ForEach(const std::function<bool(const Substitution&)>& callback);

  /// Collects up to `limit` homomorphisms (0 = all). Deterministic at any
  /// thread count: the parallel path concatenates shard results in
  /// candidate order, which equals sequential enumeration order.
  std::vector<Substitution> FindAll(size_t limit = 0);

  bool Exists();

  /// Status of the most recent FindOne/ForEach/FindAll/Exists call:
  /// kCompleted for a full enumeration, else the governor's trip cause
  /// (the results seen so far are a sound subset).
  Status status() const { return status_; }

 private:
  /// Records the governed status after a public entry point ran.
  void RecordStatus();
  size_t ParallelForEach(
      size_t threads, const std::function<bool(const Substitution&)>& callback);
  std::vector<Substitution> ParallelFindAll(size_t threads, size_t limit);
  bool ParallelExists(size_t threads);

  const std::vector<Atom>& pattern_;
  const Instance& target_;
  HomOptions options_;
  Status status_ = Status::kCompleted;
};

/// Convenience: is there a homomorphism from `from` to `to` (instances),
/// treating every domain element of `from` except those in `fixed` as a
/// variable, and requiring elements of `fixed` to map to themselves?
/// Returns the witnessing element mapping.
std::optional<Substitution> InstanceHomomorphism(
    const Instance& from, const Instance& to,
    const std::vector<Term>& fixed = {}, bool injective = false);

/// Rewrites the facts of `from` into a pattern where every domain element
/// not in `fixed` becomes a variable. `element_to_var` receives the
/// element-to-variable correspondence.
std::vector<Atom> PatternFromInstance(
    const Instance& from, const std::vector<Term>& fixed,
    std::unordered_map<Term, Term>* element_to_var);

}  // namespace gqe

#endif  // GQE_QUERY_HOMOMORPHISM_H_
