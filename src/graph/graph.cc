#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>
#include <unordered_map>

namespace gqe {

int Graph::num_edges() const {
  int total = 0;
  for (const auto& nbrs : adjacency_) total += static_cast<int>(nbrs.size());
  return total / 2;
}

void Graph::AddEdge(int u, int v) {
  assert(u >= 0 && u < num_vertices() && v >= 0 && v < num_vertices());
  if (u == v) return;
  adjacency_[u].insert(v);
  adjacency_[v].insert(u);
}

bool Graph::HasEdge(int u, int v) const {
  if (u < 0 || v < 0 || u >= num_vertices() || v >= num_vertices()) {
    return false;
  }
  return adjacency_[u].count(v) > 0;
}

int Graph::AddVertex() {
  adjacency_.emplace_back();
  return num_vertices() - 1;
}

std::vector<std::pair<int, int>> Graph::Edges() const {
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < num_vertices(); ++u) {
    for (int v : adjacency_[u]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

std::vector<std::vector<int>> Graph::ConnectedComponents() const {
  std::vector<int> component(num_vertices(), -1);
  std::vector<std::vector<int>> components;
  for (int start = 0; start < num_vertices(); ++start) {
    if (component[start] != -1) continue;
    const int id = static_cast<int>(components.size());
    components.emplace_back();
    std::vector<int> stack = {start};
    component[start] = id;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      components[id].push_back(v);
      for (int w : adjacency_[v]) {
        if (component[w] == -1) {
          component[w] = id;
          stack.push_back(w);
        }
      }
    }
  }
  return components;
}

bool Graph::IsConnected() const {
  return num_vertices() == 0 || ConnectedComponents().size() == 1;
}

Graph Graph::InducedSubgraph(const std::vector<int>& vertices,
                             std::vector<int>* out_index) const {
  std::vector<int> index(num_vertices(), -1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    index[vertices[i]] = static_cast<int>(i);
  }
  Graph sub(static_cast<int>(vertices.size()));
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (int w : adjacency_[vertices[i]]) {
      if (index[w] >= 0) sub.AddEdge(static_cast<int>(i), index[w]);
    }
  }
  if (out_index != nullptr) *out_index = std::move(index);
  return sub;
}

bool Graph::IsClique(const std::vector<int>& vertices) const {
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = i + 1; j < vertices.size(); ++j) {
      if (vertices[i] != vertices[j] && !HasEdge(vertices[i], vertices[j])) {
        return false;
      }
    }
  }
  return true;
}

std::string Graph::ToString() const {
  std::ostringstream out;
  out << "Graph(n=" << num_vertices() << ", edges=[";
  bool first = true;
  for (auto [u, v] : Edges()) {
    if (!first) out << ", ";
    first = false;
    out << u << "-" << v;
  }
  out << "])";
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Graph& graph) {
  return os << graph.ToString();
}

Graph Graph::Grid(int k, int l) {
  Graph g(k * l);
  for (int i = 1; i <= k; ++i) {
    for (int j = 1; j <= l; ++j) {
      if (i + 1 <= k) g.AddEdge(GridVertex(k, l, i, j), GridVertex(k, l, i + 1, j));
      if (j + 1 <= l) g.AddEdge(GridVertex(k, l, i, j), GridVertex(k, l, i, j + 1));
    }
  }
  return g;
}

int Graph::GridVertex(int k, int l, int i, int j) {
  assert(i >= 1 && i <= k && j >= 1 && j <= l);
  (void)k;
  return (i - 1) * l + (j - 1);
}

Graph Graph::Clique(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  return g;
}

Graph Graph::Path(int n) {
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1);
  return g;
}

Graph Graph::Cycle(int n) {
  Graph g = Path(n);
  if (n >= 3) g.AddEdge(n - 1, 0);
  return g;
}

namespace {

Graph GaifmanFromTermAtoms(const std::vector<Atom>& atoms,
                           std::vector<Term>* vertex_terms,
                           bool ground_only) {
  std::vector<Term> terms;
  std::unordered_map<Term, int> index;
  for (const Atom& atom : atoms) {
    for (Term t : atom.args()) {
      if (ground_only && !t.IsGround()) continue;
      if (index.emplace(t, static_cast<int>(terms.size())).second) {
        terms.push_back(t);
      }
    }
  }
  Graph g(static_cast<int>(terms.size()));
  for (const Atom& atom : atoms) {
    const auto& args = atom.args();
    for (size_t i = 0; i < args.size(); ++i) {
      auto it_i = index.find(args[i]);
      if (it_i == index.end()) continue;
      for (size_t j = i + 1; j < args.size(); ++j) {
        auto it_j = index.find(args[j]);
        if (it_j == index.end()) continue;
        if (it_i->second != it_j->second) g.AddEdge(it_i->second, it_j->second);
      }
    }
  }
  if (vertex_terms != nullptr) *vertex_terms = std::move(terms);
  return g;
}

}  // namespace

Graph GaifmanGraph(const Instance& instance, std::vector<Term>* vertex_terms) {
  return GaifmanFromTermAtoms(instance.atoms(), vertex_terms,
                              /*ground_only=*/true);
}

Graph GaifmanGraphOfAtoms(const std::vector<Atom>& atoms,
                          std::vector<Term>* vertex_terms) {
  return GaifmanFromTermAtoms(atoms, vertex_terms, /*ground_only=*/false);
}

}  // namespace gqe
