#ifndef GQE_GRAPH_MINOR_H_
#define GQE_GRAPH_MINOR_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace gqe {

/// A minor map mu from a graph H to a graph G (Appendix D/H of the paper):
/// mu assigns to each H-vertex a nonempty, connected, pairwise-disjoint
/// branch set of G-vertices such that every H-edge has adjacent
/// representatives. H is a minor of G iff such a map exists.
class MinorMap {
 public:
  MinorMap() = default;
  explicit MinorMap(int h_vertices) : branch_sets_(h_vertices) {}

  void SetBranchSet(int h_vertex, std::vector<int> g_vertices);
  const std::vector<int>& BranchSet(int h_vertex) const {
    return branch_sets_[h_vertex];
  }
  int num_h_vertices() const { return static_cast<int>(branch_sets_.size()); }

  /// All G-vertices used by some branch set.
  std::vector<int> UsedVertices() const;

  /// Checks the three minor-map conditions. `onto` additionally requires
  /// the branch sets to cover all of G (paper: "onto minor map").
  bool Validate(const Graph& h, const Graph& g, bool onto = false,
                std::string* why = nullptr) const;

 private:
  std::vector<std::vector<int>> branch_sets_;
};

/// Brute-force minor test for tiny graphs: searches for a minor map from
/// `h` into `g`. Exponential; intended for validation on graphs with at
/// most ~8+8 vertices.
std::optional<MinorMap> FindMinorBruteForce(const Graph& h, const Graph& g);

/// The canonical *onto* minor map from the k x kk grid to the n x m grid
/// (requires n >= k, m >= kk): rows and columns are partitioned into
/// consecutive bands and branch set (i, p) is the (i, p) band block. Grid
/// vertex ids follow Graph::GridVertex.
MinorMap GridOntoGridMinorMap(int k, int kk, int n, int m);

}  // namespace gqe

#endif  // GQE_GRAPH_MINOR_H_
