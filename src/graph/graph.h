#ifndef GQE_GRAPH_GRAPH_H_
#define GQE_GRAPH_GRAPH_H_

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "base/instance.h"
#include "base/term.h"

namespace gqe {

/// A finite simple undirected graph over vertices 0..n-1 (no self loops,
/// matching the paper's Gaifman-graph definition).
class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_vertices) : adjacency_(num_vertices) {}

  int num_vertices() const { return static_cast<int>(adjacency_.size()); }
  int num_edges() const;

  /// Adds an undirected edge {u, v}. Self loops are ignored.
  void AddEdge(int u, int v);
  bool HasEdge(int u, int v) const;

  const std::set<int>& Neighbors(int v) const { return adjacency_[v]; }
  int Degree(int v) const { return static_cast<int>(adjacency_[v].size()); }

  /// Adds a fresh isolated vertex and returns its index.
  int AddVertex();

  /// All edges as (u, v) pairs with u < v.
  std::vector<std::pair<int, int>> Edges() const;

  /// Connected components as vertex lists; singleton vertices form their
  /// own components.
  std::vector<std::vector<int>> ConnectedComponents() const;

  bool IsConnected() const;

  /// The subgraph induced by `vertices`; out_index maps old vertex ids to
  /// new ids (-1 for dropped vertices) when non-null.
  Graph InducedSubgraph(const std::vector<int>& vertices,
                        std::vector<int>* out_index = nullptr) const;

  /// True if `vertices` forms a clique (every pair adjacent).
  bool IsClique(const std::vector<int>& vertices) const;

  std::string ToString() const;

  // --- Standard constructions -------------------------------------------

  /// The k x l grid graph: vertices (i,j), i in [k], j in [l], edges
  /// between orthogonally adjacent cells (paper, Section 6). Vertex id of
  /// (i, j) is (i-1)*l + (j-1) for 1-based i, j.
  static Graph Grid(int k, int l);
  static int GridVertex(int k, int l, int i, int j);

  /// The complete graph on n vertices.
  static Graph Clique(int n);

  /// The path on n vertices.
  static Graph Path(int n);

  /// The cycle on n vertices.
  static Graph Cycle(int n);

 private:
  std::vector<std::set<int>> adjacency_;
};

std::ostream& operator<<(std::ostream& os, const Graph& graph);

/// The Gaifman graph of an instance: vertices are domain elements, with an
/// edge whenever two distinct elements co-occur in a fact (paper,
/// Section 2). `vertex_terms` receives the term of each vertex id.
Graph GaifmanGraph(const Instance& instance,
                   std::vector<Term>* vertex_terms);

/// Gaifman graph of an atom list containing variables and/or ground terms;
/// every distinct term becomes a vertex.
Graph GaifmanGraphOfAtoms(const std::vector<Atom>& atoms,
                          std::vector<Term>* vertex_terms);

}  // namespace gqe

#endif  // GQE_GRAPH_GRAPH_H_
