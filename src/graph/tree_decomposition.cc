#include "graph/tree_decomposition.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

namespace gqe {

int TreeDecomposition::AddBag(std::vector<int> bag) {
  std::sort(bag.begin(), bag.end());
  bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
  bags_.push_back(std::move(bag));
  return num_bags() - 1;
}

void TreeDecomposition::AddTreeEdge(int a, int b) {
  assert(a >= 0 && a < num_bags() && b >= 0 && b < num_bags() && a != b);
  tree_edges_.emplace_back(a, b);
}

int TreeDecomposition::Width() const {
  int width = -1;
  for (const auto& bag : bags_) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

bool TreeDecomposition::Validate(const Graph& graph, std::string* why) const {
  auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (bags_.empty()) {
    return graph.num_vertices() == 0 ? true : fail("no bags");
  }
  // Tree structure: connected and acyclic over bags.
  if (static_cast<int>(tree_edges_.size()) != num_bags() - 1) {
    return fail("edge count is not |bags|-1");
  }
  std::vector<std::vector<int>> adj(num_bags());
  for (auto [a, b] : tree_edges_) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<int> seen(num_bags(), 0);
  std::vector<int> stack = {0};
  seen[0] = 1;
  int count = 0;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    ++count;
    for (int w : adj[v]) {
      if (!seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
  }
  if (count != num_bags()) return fail("decomposition tree not connected");

  // (1) vertex coverage.
  std::vector<char> covered(graph.num_vertices(), 0);
  for (const auto& bag : bags_) {
    for (int v : bag) {
      if (v < 0 || v >= graph.num_vertices()) return fail("bag vertex out of range");
      covered[v] = 1;
    }
  }
  for (int v = 0; v < graph.num_vertices(); ++v) {
    if (!covered[v]) return fail("vertex " + std::to_string(v) + " uncovered");
  }
  // (2) edge coverage.
  for (auto [u, v] : graph.Edges()) {
    bool found = false;
    for (const auto& bag : bags_) {
      if (std::binary_search(bag.begin(), bag.end(), u) &&
          std::binary_search(bag.begin(), bag.end(), v)) {
        found = true;
        break;
      }
    }
    if (!found) {
      return fail("edge " + std::to_string(u) + "-" + std::to_string(v) +
                  " not in any bag");
    }
  }
  // (3) connectivity of occurrences.
  for (int v = 0; v < graph.num_vertices(); ++v) {
    std::vector<int> holders;
    for (int b = 0; b < num_bags(); ++b) {
      if (std::binary_search(bags_[b].begin(), bags_[b].end(), v)) {
        holders.push_back(b);
      }
    }
    if (holders.empty()) continue;
    std::set<int> holder_set(holders.begin(), holders.end());
    std::set<int> reached = {holders[0]};
    std::vector<int> frontier = {holders[0]};
    while (!frontier.empty()) {
      int b = frontier.back();
      frontier.pop_back();
      for (int nb : adj[b]) {
        if (holder_set.count(nb) && !reached.count(nb)) {
          reached.insert(nb);
          frontier.push_back(nb);
        }
      }
    }
    if (reached.size() != holder_set.size()) {
      return fail("occurrences of vertex " + std::to_string(v) +
                  " not connected");
    }
  }
  return true;
}

std::string TreeDecomposition::ToString() const {
  std::ostringstream out;
  out << "TD(width=" << Width() << ", bags=[";
  for (int b = 0; b < num_bags(); ++b) {
    if (b > 0) out << " ";
    out << "{";
    for (size_t i = 0; i < bags_[b].size(); ++i) {
      if (i > 0) out << ",";
      out << bags_[b][i];
    }
    out << "}";
  }
  out << "])";
  return out.str();
}

TreeDecomposition DecompositionFromEliminationOrder(
    const Graph& graph, const std::vector<int>& order) {
  const int n = graph.num_vertices();
  assert(static_cast<int>(order.size()) == n);
  TreeDecomposition td;
  if (n == 0) return td;

  // Fill graph maintained as adjacency sets; position[v] = elimination
  // index of v.
  std::vector<std::set<int>> adj(n);
  for (auto [u, v] : graph.Edges()) {
    adj[u].insert(v);
    adj[v].insert(u);
  }
  std::vector<int> position(n);
  for (int i = 0; i < n; ++i) position[order[i]] = i;

  std::vector<int> bag_of(n, -1);
  std::vector<std::vector<int>> later_neighbors(n);
  for (int i = 0; i < n; ++i) {
    const int v = order[i];
    std::vector<int> later;
    for (int w : adj[v]) {
      if (position[w] > i) later.push_back(w);
    }
    later_neighbors[v] = later;
    std::vector<int> bag = later;
    bag.push_back(v);
    bag_of[v] = td.AddBag(bag);
    // Eliminate: make the later neighbors a clique.
    for (size_t a = 0; a < later.size(); ++a) {
      for (size_t b = a + 1; b < later.size(); ++b) {
        adj[later[a]].insert(later[b]);
        adj[later[b]].insert(later[a]);
      }
      adj[later[a]].erase(v);
    }
  }
  // Connect each bag to the bag of its earliest-later neighbor; chain any
  // roots together so the result is a single tree.
  std::vector<int> roots;
  for (int i = 0; i < n; ++i) {
    const int v = order[i];
    const auto& later = later_neighbors[v];
    if (later.empty()) {
      roots.push_back(bag_of[v]);
      continue;
    }
    int earliest = later[0];
    for (int w : later) {
      if (position[w] < position[earliest]) earliest = w;
    }
    td.AddTreeEdge(bag_of[v], bag_of[earliest]);
  }
  for (size_t i = 1; i < roots.size(); ++i) {
    td.AddTreeEdge(roots[i - 1], roots[i]);
  }
  return td;
}

}  // namespace gqe
