#ifndef GQE_GRAPH_TREE_DECOMPOSITION_H_
#define GQE_GRAPH_TREE_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace gqe {

/// A tree decomposition (T, chi) of a graph (paper, Section 2): a tree
/// whose nodes carry bags of vertices such that (1) bags cover all
/// vertices, (2) every edge is inside some bag, and (3) the bags
/// containing any fixed vertex form a connected subtree.
class TreeDecomposition {
 public:
  TreeDecomposition() = default;

  /// Adds a bag and returns its node id.
  int AddBag(std::vector<int> bag);

  /// Connects two decomposition nodes.
  void AddTreeEdge(int a, int b);

  int num_bags() const { return static_cast<int>(bags_.size()); }
  const std::vector<int>& bag(int node) const { return bags_[node]; }
  const std::vector<std::pair<int, int>>& tree_edges() const {
    return tree_edges_;
  }

  /// max |bag| - 1, or -1 when there are no bags.
  int Width() const;

  /// Checks the three tree-decomposition conditions against `graph`, plus
  /// that the decomposition's own edge structure is a tree (acyclic and
  /// connected over bags). Failure reason in `*why` when provided.
  bool Validate(const Graph& graph, std::string* why = nullptr) const;

  std::string ToString() const;

 private:
  std::vector<std::vector<int>> bags_;
  std::vector<std::pair<int, int>> tree_edges_;
};

/// Builds a tree decomposition by eliminating vertices of `graph` in
/// `order` (a permutation of the vertices): the classic fill-in
/// construction. The resulting width equals the maximum back-degree of
/// the order in the fill graph.
TreeDecomposition DecompositionFromEliminationOrder(
    const Graph& graph, const std::vector<int>& order);

}  // namespace gqe

#endif  // GQE_GRAPH_TREE_DECOMPOSITION_H_
