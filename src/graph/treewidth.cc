#include "graph/treewidth.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <set>
#include <unordered_map>

namespace gqe {

namespace {

/// Memoization table over elimination-prefix bitmasks. Dense for small n
/// (one byte per subset); sparse above kDenseLimit, where the dense table
/// would cost 2^n bytes up front — under a governor the DP on such
/// components is expected to trip long before visiting most subsets, and
/// the sparse table keeps the abandoned attempt cheap in both time and
/// memory.
class PrefixMemo {
 public:
  static constexpr int kDenseLimit = 24;

  explicit PrefixMemo(int n) : dense_(n <= kDenseLimit) {
    if (dense_) vec_.assign(static_cast<size_t>(1) << n, -2);
  }

  int8_t Get(uint32_t s) const {
    if (dense_) return vec_[s];
    auto it = map_.find(s);
    return it == map_.end() ? int8_t{-2} : it->second;
  }

  void Set(uint32_t s, int8_t value) {
    if (dense_) {
      vec_[s] = value;
    } else {
      map_[s] = value;
    }
  }

 private:
  bool dense_;
  std::vector<int8_t> vec_;
  std::unordered_map<uint32_t, int8_t> map_;
};

/// Number of vertices outside S and distinct from v that are reachable
/// from v by a path whose internal vertices all lie in S. This equals the
/// back-degree of v in the fill graph when the vertices of S are
/// eliminated first.
int ReachThrough(const Graph& g, uint32_t s_mask, int v) {
  const int n = g.num_vertices();
  std::vector<char> visited(n, 0);
  visited[v] = 1;
  std::vector<int> stack = {v};
  int count = 0;
  while (!stack.empty()) {
    int u = stack.back();
    stack.pop_back();
    for (int w : g.Neighbors(u)) {
      if (visited[w]) continue;
      visited[w] = 1;
      if (s_mask & (1u << w)) {
        stack.push_back(w);
      } else {
        ++count;
      }
    }
  }
  return count;
}

/// Held–Karp style DP over elimination prefixes; returns the exact
/// treewidth of a graph with <= 30 vertices and (optionally) an optimal
/// elimination order. Every frame visit is charged as a search node
/// against `governor`; on a trip the DP abandons its work and sets
/// `*aborted` (the caller degrades to a heuristic).
int ExactTreewidthDp(const Graph& g, std::vector<int>* order_out,
                     Governor* governor, bool* aborted) {
  *aborted = false;
  const int n = g.num_vertices();
  assert(n <= 30);
  if (n == 0) {
    if (order_out != nullptr) order_out->clear();
    return -1;
  }
  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  // memo[s] = treewidth contribution of eliminating the remaining
  // vertices, given s already eliminated; -2 = unknown.
  PrefixMemo memo(n);
  memo.Set(full, -1);  // nothing left: no bag created beyond those so far

  const uint64_t charge_batch = governor->NodeChargeBatch();
  uint64_t pending_nodes = 0;

  // Bottom-up over decreasing popcount is awkward; use explicit stack
  // recursion instead.
  struct Frame {
    uint32_t s;
    int v;        // next candidate vertex to try
    int best;     // best value so far
  };
  std::vector<Frame> stack;
  stack.push_back({0u, 0, std::numeric_limits<int>::max()});
  while (!stack.empty()) {
    if (++pending_nodes >= charge_batch) {
      governor->ChargeNodes(pending_nodes);
      pending_nodes = 0;
    }
    if (governor->Tripped()) {
      *aborted = true;
      return -1;
    }
    Frame& f = stack.back();
    if (memo.Get(f.s) != -2) {
      stack.pop_back();
      continue;
    }
    bool descended = false;
    while (f.v < n) {
      if (f.s & (1u << f.v)) {
        ++f.v;
        continue;
      }
      const uint32_t child = f.s | (1u << f.v);
      if (memo.Get(child) == -2) {
        stack.push_back({child, 0, std::numeric_limits<int>::max()});
        descended = true;
        break;
      }
      const int q = ReachThrough(g, f.s, f.v);
      const int value = std::max(q, static_cast<int>(memo.Get(child)));
      f.best = std::min(f.best, value);
      ++f.v;
    }
    if (!descended) {
      memo.Set(f.s,
               static_cast<int8_t>(f.best == std::numeric_limits<int>::max()
                                       ? -1
                                       : f.best));
      stack.pop_back();
    }
  }
  if (pending_nodes > 0) governor->ChargeNodes(pending_nodes);

  if (order_out != nullptr) {
    order_out->clear();
    uint32_t s = 0;
    while (s != full) {
      int best_v = -1;
      int best_val = std::numeric_limits<int>::max();
      for (int v = 0; v < n; ++v) {
        if (s & (1u << v)) continue;
        const uint32_t child = s | (1u << v);
        const int value = std::max(ReachThrough(g, s, v),
                                   static_cast<int>(memo.Get(child)));
        if (value < best_val) {
          best_val = value;
          best_v = v;
        }
      }
      order_out->push_back(best_v);
      s |= (1u << best_v);
    }
  }
  return memo.Get(0);
}

/// Greedy elimination order minimizing a per-step score.
template <typename ScoreFn>
std::vector<int> GreedyOrder(const Graph& graph, ScoreFn score) {
  const int n = graph.num_vertices();
  std::vector<std::set<int>> adj(n);
  for (auto [u, v] : graph.Edges()) {
    adj[u].insert(v);
    adj[v].insert(u);
  }
  std::vector<char> eliminated(n, 0);
  std::vector<int> order;
  order.reserve(n);
  for (int step = 0; step < n; ++step) {
    int best = -1;
    long best_score = std::numeric_limits<long>::max();
    for (int v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      const long s = score(adj, v);
      if (s < best_score) {
        best_score = s;
        best = v;
      }
    }
    order.push_back(best);
    eliminated[best] = 1;
    std::vector<int> nbrs(adj[best].begin(), adj[best].end());
    for (size_t a = 0; a < nbrs.size(); ++a) {
      adj[nbrs[a]].erase(best);
      for (size_t b = a + 1; b < nbrs.size(); ++b) {
        adj[nbrs[a]].insert(nbrs[b]);
        adj[nbrs[b]].insert(nbrs[a]);
      }
    }
    adj[best].clear();
  }
  return order;
}

}  // namespace

std::vector<int> MinFillOrder(const Graph& graph) {
  return GreedyOrder(graph, [](const std::vector<std::set<int>>& adj, int v) {
    long fill = 0;
    std::vector<int> nbrs(adj[v].begin(), adj[v].end());
    for (size_t a = 0; a < nbrs.size(); ++a) {
      for (size_t b = a + 1; b < nbrs.size(); ++b) {
        if (adj[nbrs[a]].count(nbrs[b]) == 0) ++fill;
      }
    }
    return fill;
  });
}

std::vector<int> MinDegreeOrder(const Graph& graph) {
  return GreedyOrder(graph, [](const std::vector<std::set<int>>& adj, int v) {
    return static_cast<long>(adj[v].size());
  });
}

int Degeneracy(const Graph& graph) {
  const int n = graph.num_vertices();
  std::vector<std::set<int>> adj(n);
  for (auto [u, v] : graph.Edges()) {
    adj[u].insert(v);
    adj[v].insert(u);
  }
  std::vector<char> removed(n, 0);
  int degeneracy = 0;
  for (int step = 0; step < n; ++step) {
    int best = -1;
    size_t best_deg = std::numeric_limits<size_t>::max();
    for (int v = 0; v < n; ++v) {
      if (!removed[v] && adj[v].size() < best_deg) {
        best_deg = adj[v].size();
        best = v;
      }
    }
    degeneracy = std::max(degeneracy, static_cast<int>(best_deg));
    removed[best] = 1;
    for (int w : adj[best]) adj[w].erase(best);
    adj[best].clear();
  }
  return degeneracy;
}

TreewidthResult ComputeTreewidth(const Graph& graph,
                                 const TreewidthOptions& options) {
  TreewidthResult result;
  GovernorScope scope(options.governor, options.budget);
  Governor* governor = scope.get();
  const int n = graph.num_vertices();
  if (n == 0) {
    result.lower_bound = result.upper_bound = -1;
    result.status = governor->status();
    return result;
  }

  // Work per connected component; treewidth is the max over components.
  int lower = 0;
  int upper = 0;
  bool all_exact = true;
  std::vector<int> global_order;
  for (const std::vector<int>& component : graph.ConnectedComponents()) {
    governor->Check();  // probe the deadline once per component
    Graph sub = graph.InducedSubgraph(component);
    std::vector<int> sub_order;
    const bool wants_exact =
        sub.num_vertices() <= options.exact_vertex_limit;
    bool exact_ok = false;
    if (wants_exact && !governor->Tripped()) {
      bool aborted = false;
      const int tw = ExactTreewidthDp(sub, &sub_order, governor, &aborted);
      if (!aborted) {
        lower = std::max(lower, tw);
        upper = std::max(upper, tw);
        exact_ok = true;
      }
    }
    if (!exact_ok) {
      // A component the exact DP would have solved was pre-empted by a
      // trip (mid-DP or before it started): the answer is degraded even
      // if the heuristic bounds happen to coincide. The heuristic itself
      // is polynomial and runs ungoverned — a tripped governor must not
      // block it.
      if (wants_exact) result.degraded = true;
      sub_order = MinFillOrder(sub);
      TreeDecomposition td = DecompositionFromEliminationOrder(sub, sub_order);
      upper = std::max(upper, td.Width());
      lower = std::max(lower, Degeneracy(sub));
      all_exact = false;
    }
    for (int v : sub_order) global_order.push_back(component[v]);
  }
  result.lower_bound = std::max(lower, 0);
  result.upper_bound = upper;
  if (!all_exact) result.lower_bound = std::min(lower, upper);
  result.decomposition = DecompositionFromEliminationOrder(graph, global_order);
  // The merged decomposition realizes the max component width.
  result.upper_bound = std::max(result.upper_bound, result.decomposition.Width());
  result.status = governor->status();
  return result;
}

int TreewidthExact(const Graph& graph) {
  TreewidthOptions options;
  options.exact_vertex_limit = 30;
  TreewidthResult result = ComputeTreewidth(graph, options);
  assert(result.exact());
  return result.upper_bound;
}

int PaperTreewidth(const Graph& graph) {
  if (graph.num_edges() == 0) return 1;
  return std::max(1, ComputeTreewidth(graph).upper_bound);
}

}  // namespace gqe
