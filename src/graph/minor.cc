#include "graph/minor.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <set>

namespace gqe {

void MinorMap::SetBranchSet(int h_vertex, std::vector<int> g_vertices) {
  assert(h_vertex >= 0 && h_vertex < num_h_vertices());
  std::sort(g_vertices.begin(), g_vertices.end());
  g_vertices.erase(std::unique(g_vertices.begin(), g_vertices.end()),
                   g_vertices.end());
  branch_sets_[h_vertex] = std::move(g_vertices);
}

std::vector<int> MinorMap::UsedVertices() const {
  std::vector<int> used;
  for (const auto& set : branch_sets_) {
    used.insert(used.end(), set.begin(), set.end());
  }
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used;
}

bool MinorMap::Validate(const Graph& h, const Graph& g, bool onto,
                        std::string* why) const {
  auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (num_h_vertices() != h.num_vertices()) {
    return fail("branch-set count differs from |V(H)|");
  }
  std::vector<int> owner(g.num_vertices(), -1);
  for (int hv = 0; hv < num_h_vertices(); ++hv) {
    const auto& set = branch_sets_[hv];
    if (set.empty()) return fail("empty branch set");
    for (int gv : set) {
      if (gv < 0 || gv >= g.num_vertices()) return fail("vertex out of range");
      if (owner[gv] != -1) return fail("branch sets not disjoint");
      owner[gv] = hv;
    }
    // Connectivity of the branch set in G.
    std::set<int> in_set(set.begin(), set.end());
    std::set<int> reached = {set[0]};
    std::vector<int> stack = {set[0]};
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      for (int w : g.Neighbors(v)) {
        if (in_set.count(w) && !reached.count(w)) {
          reached.insert(w);
          stack.push_back(w);
        }
      }
    }
    if (reached.size() != in_set.size()) {
      return fail("branch set " + std::to_string(hv) + " not connected");
    }
  }
  for (auto [hu, hv] : h.Edges()) {
    bool adjacent = false;
    for (int gu : branch_sets_[hu]) {
      for (int gv : branch_sets_[hv]) {
        if (g.HasEdge(gu, gv)) {
          adjacent = true;
          break;
        }
      }
      if (adjacent) break;
    }
    if (!adjacent) {
      return fail("H-edge " + std::to_string(hu) + "-" + std::to_string(hv) +
                  " not represented");
    }
  }
  if (onto) {
    for (int gv = 0; gv < g.num_vertices(); ++gv) {
      if (owner[gv] == -1) {
        return fail("not onto: G-vertex " + std::to_string(gv) + " unused");
      }
    }
  }
  return true;
}

std::optional<MinorMap> FindMinorBruteForce(const Graph& h, const Graph& g) {
  const int hn = h.num_vertices();
  const int gn = g.num_vertices();
  // Assign each G-vertex an owner in {-1, 0..hn-1}; check validity.
  // Exponential (hn+1)^gn: keep gn tiny.
  std::vector<int> owner(gn, -1);
  MinorMap result(hn);
  std::function<bool(int)> assign = [&](int gv) -> bool {
    if (gv == gn) {
      MinorMap candidate(hn);
      std::vector<std::vector<int>> sets(hn);
      for (int v = 0; v < gn; ++v) {
        if (owner[v] >= 0) sets[owner[v]].push_back(v);
      }
      for (int hv = 0; hv < hn; ++hv) {
        if (sets[hv].empty()) return false;
        candidate.SetBranchSet(hv, sets[hv]);
      }
      if (candidate.Validate(h, g)) {
        result = candidate;
        return true;
      }
      return false;
    }
    for (int choice = -1; choice < hn; ++choice) {
      owner[gv] = choice;
      if (assign(gv + 1)) return true;
    }
    owner[gv] = -1;
    return false;
  };
  if (assign(0)) return result;
  return std::nullopt;
}

MinorMap GridOntoGridMinorMap(int k, int kk, int n, int m) {
  assert(n >= k && m >= kk);
  MinorMap map(k * kk);
  // Partition rows 1..n into k consecutive bands and columns 1..m into kk
  // bands, as evenly as possible.
  auto band = [](int total, int parts, int index) {
    // Rows of band `index` (0-based): balanced partition.
    const int base = total / parts;
    const int extra = total % parts;
    const int start = index * base + std::min(index, extra);
    const int size = base + (index < extra ? 1 : 0);
    return std::make_pair(start + 1, start + size);  // 1-based inclusive
  };
  for (int i = 1; i <= k; ++i) {
    for (int p = 1; p <= kk; ++p) {
      auto [r0, r1] = band(n, k, i - 1);
      auto [c0, c1] = band(m, kk, p - 1);
      std::vector<int> block;
      for (int r = r0; r <= r1; ++r) {
        for (int c = c0; c <= c1; ++c) {
          block.push_back(Graph::GridVertex(n, m, r, c));
        }
      }
      map.SetBranchSet(Graph::GridVertex(k, kk, i, p), std::move(block));
    }
  }
  return map;
}

}  // namespace gqe
