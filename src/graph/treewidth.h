#ifndef GQE_GRAPH_TREEWIDTH_H_
#define GQE_GRAPH_TREEWIDTH_H_

#include <optional>
#include <vector>

#include "base/governor.h"
#include "graph/graph.h"
#include "graph/tree_decomposition.h"

namespace gqe {

/// Result of a treewidth computation. `lower_bound == upper_bound` means
/// the value is exact; `decomposition` always realizes `upper_bound`.
struct TreewidthResult {
  int lower_bound = 0;
  int upper_bound = 0;
  TreeDecomposition decomposition;

  /// Why the computation stopped. A non-Completed status never aborts the
  /// call: the decomposition is still valid (graceful degradation — the
  /// exact DP is abandoned and the min-fill heuristic answer is returned
  /// with exact() == false).
  Status status = Status::kCompleted;

  /// True iff at least one component the exact DP would have solved fell
  /// back to the heuristic because a guard rail tripped.
  bool degraded = false;

  /// A degraded result is never reported exact, even when the heuristic
  /// bounds happen to coincide: the caller asked for the exact DP and a
  /// guard rail pre-empted it.
  bool exact() const { return !degraded && lower_bound == upper_bound; }
};

struct TreewidthOptions {
  /// Maximum number of vertices (per connected component) for which the
  /// exact exponential DP runs; larger components fall back to heuristics.
  int exact_vertex_limit = 16;

  /// Resource limits: every DP frame expansion is charged as a search
  /// node. On a trip the exact DP degrades to the (ungoverned,
  /// polynomial) min-fill heuristic instead of aborting. Ignored when
  /// `governor` is set.
  ExecutionBudget budget;

  /// Optional shared governor (see ChaseOptions::governor).
  Governor* governor = nullptr;
};

/// Computes the treewidth of `graph`: exact via the Held–Karp style
/// elimination-ordering DP on small components, min-fill heuristic plus a
/// degeneracy lower bound on large ones. Standard convention: the empty
/// graph / edgeless graphs have treewidth 0; trees have treewidth 1.
TreewidthResult ComputeTreewidth(const Graph& graph,
                                 const TreewidthOptions& options = {});

/// Exact treewidth; aborts if any component exceeds the exact limit.
int TreewidthExact(const Graph& graph);

/// The paper's convention (Section 2): if the graph has no edges its
/// treewidth is *one*; otherwise the standard minimum width.
int PaperTreewidth(const Graph& graph);

/// Min-fill elimination order (heuristic upper bound).
std::vector<int> MinFillOrder(const Graph& graph);

/// Min-degree elimination order (heuristic upper bound).
std::vector<int> MinDegreeOrder(const Graph& graph);

/// Degeneracy of the graph: a lower bound on treewidth.
int Degeneracy(const Graph& graph);

}  // namespace gqe

#endif  // GQE_GRAPH_TREEWIDTH_H_
