#include "fc/witness.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "chase/chase.h"
#include "guarded/chase_tree.h"
#include "guarded/omq_eval.h"
#include "guarded/saturation.h"
#include "guarded/type_closure.h"
#include "query/evaluation.h"
#include "query/homomorphism.h"
#include "query/substitution.h"

namespace gqe {

namespace {

struct WitnessBag {
  std::vector<Term> elements;
  int parent = -1;
  std::string shape;
  std::vector<Term> order;  // canonical order matching `shape`
};

}  // namespace

FiniteWitness BuildFiniteWitness(const Instance& db, const TgdSet& sigma,
                                 int n, const FiniteWitnessOptions& options) {
  FiniteWitness witness;
  GovernorScope scope(options.governor, options.budget);
  Governor* governor = scope.get();

  // Attempt 1: a terminating restricted chase is a perfect witness (it is
  // a sub-instance of the oblivious chase and a model). The probe runs on
  // a sub-budget of its own so it cannot drain the shared budget; it
  // inherits the cancel token (a cancelled build stops here too) but gets
  // a fresh deadline window.
  {
    ChaseOptions chase_options;
    chase_options.restricted = true;
    chase_options.budget = governor->budget();
    chase_options.budget.max_facts = options.restricted_chase_facts;
    ChaseResult result = Chase(db, sigma, chase_options);
    if (result.complete) {
      witness.model = std::move(result.instance);
      witness.is_model = true;
      witness.from_terminating_chase = true;
      witness.status = governor->status();
      return witness;
    }
    if (result.outcome.status == Status::kCancelled) {
      witness.status = Status::kCancelled;
      return witness;
    }
  }

  // Attempt 2: fold the guarded chase at repeated shapes. Cycle lengths
  // exceed the blocking threshold, so queries with <= n variables cannot
  // distinguish the folded model from the chase.
  TypeClosureEngine engine(sigma);
  Instance portion = GroundSaturation(db, sigma, &engine);
  governor->ChargeFacts(portion.size());
  auto try_insert = [&](const Atom& atom) {
    if (portion.Contains(atom)) return true;
    if (governor->ChargeFacts(1) != Status::kCompleted) return false;
    portion.Insert(atom);
    return true;
  };
  std::vector<WitnessBag> bags;
  std::deque<int> queue;
  std::unordered_set<std::string> roots_seen;
  const int blocking_repeats = n + 1;

  for (const Atom& atom : portion.atoms()) {
    std::vector<Term> elements;
    atom.CollectGroundTerms(&elements);
    std::string root_key;
    for (Term t : elements) root_key += std::to_string(t.bits()) + ",";
    if (!roots_seen.insert(root_key).second) continue;
    WitnessBag bag;
    bag.elements = elements;
    std::vector<Atom> bag_atoms = portion.AtomsOver(elements);
    bag.shape = BagShapeKey(bag_atoms, elements, &bag.order);
    bags.push_back(std::move(bag));
    queue.push_back(static_cast<int>(bags.size()) - 1);
  }

  std::unordered_set<std::string> fired;
  while (!queue.empty()) {
    if (governor->Check() != Status::kCompleted) break;
    const int bag_index = queue.front();
    queue.pop_front();
    const std::vector<Term> elements = bags[bag_index].elements;
    std::vector<Atom> closed =
        engine.Closure(portion.AtomsOver(elements), elements);
    for (const Atom& atom : closed) {
      if (!try_insert(atom)) break;
    }
    if (governor->Tripped()) break;
    Instance bag_instance;
    bag_instance.InsertAll(closed);

    for (size_t tgd_index = 0; tgd_index < sigma.size(); ++tgd_index) {
      const Tgd& tgd = sigma[tgd_index];
      if (tgd.IsFull()) continue;
      const std::vector<Term> frontier = tgd.Frontier();
      const std::vector<Term> existentials = tgd.ExistentialVariables();
      const std::vector<Term> body_vars = tgd.BodyVariables();
      HomOptions hom_options;
      hom_options.governor = governor;
      std::vector<Substitution> triggers =
          HomomorphismSearch(tgd.body(), bag_instance, hom_options).FindAll();
      for (const Substitution& sub : triggers) {
        if (governor->Tripped()) break;
        std::string trigger_key = std::to_string(tgd_index);
        for (Term v : body_vars) {
          trigger_key += ":" + std::to_string(sub.Apply(v).bits());
        }
        if (!fired.insert(trigger_key).second) continue;

        Substitution extended = sub;
        std::vector<Term> child_elements;
        for (Term x : frontier) {
          Term image = sub.Apply(x);
          if (std::find(child_elements.begin(), child_elements.end(),
                        image) == child_elements.end()) {
            child_elements.push_back(image);
          }
        }
        std::vector<Term> new_nulls;
        for (Term z : existentials) {
          Term null = Term::FreshNull();
          extended.Set(z, null);
          child_elements.push_back(null);
          new_nulls.push_back(null);
        }
        std::vector<Atom> child_atoms;
        for (const Atom& head_atom : tgd.head()) {
          child_atoms.push_back(extended.Apply(head_atom));
        }
        for (const Atom& atom : bag_instance.AtomsOver(child_elements)) {
          child_atoms.push_back(atom);
        }
        std::vector<Atom> child_closed =
            engine.Closure(child_atoms, child_elements);
        std::vector<Term> child_order;
        const std::string child_shape =
            BagShapeKey(child_closed, child_elements, &child_order);

        // Count the shape on the ancestor path and remember the topmost
        // occurrence.
        int repeats = 0;
        int topmost = -1;
        for (int a = bag_index; a != -1; a = bags[a].parent) {
          if (bags[a].shape == child_shape) {
            ++repeats;
            topmost = a;
          }
        }
        if (repeats >= blocking_repeats && topmost >= 0) {
          // Fold: redirect the existential witnesses to the topmost
          // same-shape ancestor via the canonical isomorphism.
          const WitnessBag& target = bags[topmost];
          Substitution fold = sub;
          for (size_t z = 0; z < existentials.size(); ++z) {
            Term null = new_nulls[z];
            auto it = std::find(child_order.begin(), child_order.end(), null);
            const size_t position =
                static_cast<size_t>(it - child_order.begin());
            fold.Set(existentials[z], target.order[position]);
          }
          for (const Atom& head_atom : tgd.head()) {
            if (!try_insert(fold.Apply(head_atom))) break;
          }
          ++witness.folds;
          continue;
        }
        // Materialize the child normally.
        for (const Atom& atom : child_closed) {
          if (!try_insert(atom)) break;
        }
        WitnessBag child;
        child.elements = child_elements;
        child.parent = bag_index;
        child.shape = child_shape;
        child.order = child_order;
        bags.push_back(std::move(child));
        queue.push_back(static_cast<int>(bags.size()) - 1);
      }
    }
  }

  // Attempt 3: patch residual violations (folding can expose new guarded
  // sets) with a bounded restricted chase, sharing the same governor (the
  // patch draws on whatever budget the fold loop left).
  ChaseOptions patch_options;
  patch_options.restricted = true;
  patch_options.governor = governor;
  ChaseResult patched = Chase(portion, sigma, patch_options);
  witness.model = std::move(patched.instance);
  witness.is_model = patched.complete;
  witness.status = governor->status();
  if (witness.status != Status::kCompleted) witness.is_model = false;
  return witness;
}

bool WitnessAgreesOnQuery(const FiniteWitness& witness, const Instance& db,
                          const TgdSet& sigma, const UCQ& query) {
  std::vector<std::vector<Term>> closed_world;
  for (auto& tuple : EvaluateUCQ(query, witness.model)) {
    bool over_db = true;
    for (Term t : tuple) {
      if (!db.InDomain(t)) {
        over_db = false;
        break;
      }
    }
    if (over_db) closed_world.push_back(std::move(tuple));
  }
  std::vector<std::vector<Term>> certain =
      GuardedCertainAnswers(db, sigma, query);
  return closed_world == certain;
}

OmqToCqsReduction ReduceOmqToCqs(const Omq& omq, const Instance& db,
                                 const FiniteWitnessOptions& options) {
  OmqToCqsReduction reduction;
  TypeClosureEngine engine(omq.sigma);
  Instance dplus = GroundSaturation(db, omq.sigma, &engine);

  // A: the maximal guarded tuples of D⁺.
  std::vector<std::vector<Term>> guarded_sets;
  for (const Atom& atom : dplus.atoms()) {
    std::vector<Term> elements;
    atom.CollectGroundTerms(&elements);
    std::sort(elements.begin(), elements.end());
    if (std::find(guarded_sets.begin(), guarded_sets.end(), elements) ==
        guarded_sets.end()) {
      guarded_sets.push_back(std::move(elements));
    }
  }
  std::vector<std::vector<Term>> maximal;
  for (const auto& candidate : guarded_sets) {
    bool strictly_inside = false;
    for (const auto& other : guarded_sets) {
      if (candidate.size() < other.size() &&
          std::includes(other.begin(), other.end(), candidate.begin(),
                        candidate.end())) {
        strictly_inside = true;
        break;
      }
    }
    if (!strictly_inside) maximal.push_back(candidate);
  }

  int n = 0;
  for (const CQ& cq : omq.query.disjuncts()) {
    n = std::max(n, static_cast<int>(cq.AllVariables().size()));
  }

  reduction.dstar.InsertAll(dplus);
  reduction.exact = true;
  reduction.witness_count = maximal.size();
  for (const auto& guarded_set : maximal) {
    if (options.governor != nullptr && options.governor->Tripped()) {
      reduction.exact = false;
      break;
    }
    Instance restricted;
    restricted.InsertAll(dplus.AtomsOver(guarded_set));
    FiniteWitness witness =
        BuildFiniteWitness(restricted, omq.sigma, n, options);
    if (!witness.is_model) reduction.exact = false;
    reduction.dstar.InsertAll(witness.model);
  }
  return reduction;
}

}  // namespace gqe
