#ifndef GQE_FC_WITNESS_H_
#define GQE_FC_WITNESS_H_

#include <string>

#include "base/governor.h"
#include "base/instance.h"
#include "omq/omq.h"
#include "query/cq.h"
#include "tgd/tgd.h"

namespace gqe {

/// A finite model M(D, Σ, n) in the sense of Definition 6.5 (strong
/// finite controllability): M ⊇ D, M |= Σ, and q(M) = q(chase(D,Σ)) for
/// every UCQ q with at most n variables. The paper obtains such witnesses
/// non-constructively through GNFO's 2^2^poly finite-model property
/// (Theorem 6.7); this module builds them constructively by *folding* the
/// guarded chase: the bag forest is unfolded until a bag shape repeats
/// n+1 times on a path, and the blocked bag's existential witnesses are
/// redirected to the path-topmost bag of the same shape, closing cycles
/// of length > n that no n-variable query can see.
struct FiniteWitness {
  Instance model;

  /// Validated: model |= Σ. When folding leaves residual violations a
  /// bounded restricted chase patches them; if violations survive even
  /// that, this is false and the witness must not be used.
  bool is_model = false;

  /// True when the witness came straight from a terminating restricted
  /// chase (exact for every query, not just n-variable ones).
  bool from_terminating_chase = false;

  size_t folds = 0;

  /// Why the build ended; non-Completed implies is_model == false.
  Status status = Status::kCompleted;
};

struct FiniteWitnessOptions {
  int max_depth = 64;

  /// Resource limits for the fold loop and the validation patch chase.
  /// Ignored when `governor` is set.
  ExecutionBudget budget;

  /// Optional shared governor (see ChaseOptions::governor). The initial
  /// restricted-chase probe always runs under its own sub-budget governor
  /// (capped at `restricted_chase_facts`, inheriting the cancel token but
  /// with a fresh deadline window) so an aggressive probe cannot drain
  /// the shared budget.
  Governor* governor = nullptr;

  /// Fact budget for the initial restricted-chase attempt.
  size_t restricted_chase_facts = 5000;
};

/// Builds M(D, Σ, n) for guarded Σ.
FiniteWitness BuildFiniteWitness(const Instance& db, const TgdSet& sigma,
                                 int n, const FiniteWitnessOptions& options = {});

/// Checks the Definition 6.5 property for one concrete query: the
/// witness's closed-world answers over dom(D) coincide with the certain
/// answers over (D, Σ).
bool WitnessAgreesOnQuery(const FiniteWitness& witness, const Instance& db,
                          const TgdSet& sigma, const UCQ& query);

/// The Proposition 5.8 / Lemma 6.8 fpt-reduction from OMQ evaluation to
/// CQS evaluation: builds D* = D⁺ ∪ ⋃_{ā∈A} M(D⁺|ā, Σ, n) with
/// (1) D* |= Σ and (2) Q(D) = q(D*) (closed-world).
struct OmqToCqsReduction {
  Instance dstar;
  bool exact = false;        // all witnesses validated
  size_t witness_count = 0;  // |A|
};

OmqToCqsReduction ReduceOmqToCqs(const Omq& omq, const Instance& db,
                                 const FiniteWitnessOptions& options = {});

}  // namespace gqe

#endif  // GQE_FC_WITNESS_H_
